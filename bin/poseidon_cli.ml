(* poseidon-cli: drive the PMem graph engine from the command line.

   Subcommands:
     generate   build an SNB-like dataset and print its statistics
     sr         run the interactive short-read workload
     iu         run the interactive update workload
     crash      crash/recovery drill with invariant checks
     stats      media/cost-model statistics for a workload mix
     faults     exhaustive crash-schedule sweep + SSD fault drill
     htap       concurrent writers + analytic readers, JSON metrics
     recover-bench  serial-vs-parallel crash-to-ready latency + battery
                    (--lazy adds checkpointed recovery and TTFQ/TTFW)
     checkpoint force incremental checkpoints, show shadow-slot state
     analytics  snapshot CSR export + BFS/PageRank/WCC kernels
     analytics-bench  1/2/4-domain analytics table + writer-storm drill,
                    JSON metrics

   Examples:
     poseidon_cli generate --sf 0.5
     poseidon_cli sr --sf 0.2 --mode jit --access index --runs 20
     poseidon_cli iu --sf 0.2 --runs 50
     poseidon_cli crash --sf 0.1 --evict 0.5
     poseidon_cli faults --variants 2 --stride 25 *)

open Cmdliner
module Value = Storage.Value
module Engine = Jit.Engine
module SR = Snb.Short_reads
module IU = Snb.Updates

let mk_db ~mode ~sf ~indexed =
  let db = Core.create ~mode ~pool_size:(1 lsl 27) () in
  let ds =
    Snb.Gen.generate ~params:{ Snb.Gen.default_params with sf } (Core.store db)
  in
  if indexed then
    List.iter
      (fun l -> ignore (Core.create_index db ~label:l ~prop:"id" ()))
      [ "Person"; "Post"; "Comment"; "Forum"; "Place"; "Tag" ];
  (db, ds)

(* --- common options --------------------------------------------------- *)

let sf_t =
  let doc = "Scale factor (1.0 ~ 1000 persons)." in
  Arg.(value & opt float 0.1 & info [ "sf" ] ~doc)

let runs_t =
  let doc = "Runs per query (different parameters each)." in
  Arg.(value & opt int 10 & info [ "runs" ] ~doc)

let mode_t =
  let doc = "Storage mode: pmem or dram." in
  let storage_conv = Arg.enum [ ("pmem", `Pmem); ("dram", `Dram) ] in
  Arg.(value & opt storage_conv `Pmem & info [ "storage" ] ~doc)

let engine_t =
  let doc = "Execution mode: aot, jit or adaptive." in
  let engine_conv =
    Arg.enum
      [ ("aot", Engine.Interp); ("jit", Engine.Jit); ("adaptive", Engine.Adaptive) ]
  in
  Arg.(value & opt engine_conv Engine.Interp & info [ "mode" ] ~doc)

let access_t =
  let doc = "Access path for parameter lookups: scan or index." in
  let access_conv = Arg.enum [ ("scan", `Scan); ("index", `Index) ] in
  Arg.(value & opt access_conv `Index & info [ "access" ] ~doc)

let seed_t =
  let doc = "Random seed for parameter selection." in
  Arg.(value & opt int 7 & info [ "seed" ] ~doc)

(* --- generate ---------------------------------------------------------- *)

let generate sf storage =
  let db, ds = mk_db ~mode:storage ~sf ~indexed:false in
  Printf.printf "dataset (sf=%.2f, %s):\n" sf
    (match storage with `Pmem -> "pmem" | `Dram -> "dram");
  Printf.printf "  persons       %8d\n" (Array.length ds.Snb.Gen.persons);
  Printf.printf "  posts         %8d\n" (Array.length ds.Snb.Gen.posts);
  Printf.printf "  comments      %8d\n" (Array.length ds.Snb.Gen.comments);
  Printf.printf "  forums        %8d\n" (Array.length ds.Snb.Gen.forums);
  Printf.printf "  nodes total   %8d\n" (Core.node_count db);
  Printf.printf "  rels total    %8d\n" (Core.rel_count db);
  let s = Pmem.Media.stats (Core.media db) in
  Printf.printf "  line writes   %8d\n" s.Pmem.Media.writes;
  Printf.printf "  flushes       %8d\n" s.Pmem.Media.flushes;
  Printf.printf "  allocations   %8d\n" s.Pmem.Media.allocs;
  Printf.printf "  sim load time %8.1f ms\n"
    (float_of_int (Pmem.Media.clock (Core.media db)) /. 1e6)

(* --- sr ------------------------------------------------------------------ *)

let sr sf storage engine access runs seed =
  let db, ds = mk_db ~mode:storage ~sf ~indexed:true in
  let sc = ds.Snb.Gen.schema in
  let config =
    { Engine.default_config with prop_tag = Snb.Schema.prop_tag sc }
  in
  let media = Core.media db in
  let rng = Random.State.make [| seed |] in
  Printf.printf "%-8s%14s%10s\n" "query" "avg sim-us" "rows";
  List.iter
    (fun spec ->
      let rows_total = ref 0 in
      (* warm-up *)
      let p0 = SR.draw_param ds rng spec in
      List.iter
        (fun plan ->
          ignore (Core.query db ~mode:engine ~config ~params:[| p0 |] plan))
        (spec.SR.plans ~access);
      let c0 = Pmem.Media.clock media in
      for _ = 1 to runs do
        let param = SR.draw_param ds rng spec in
        List.iter
          (fun plan ->
            let rows, _ = Core.query db ~mode:engine ~config ~params:[| param |] plan in
            rows_total := !rows_total + List.length rows)
          (spec.SR.plans ~access)
      done;
      let avg = (Pmem.Media.clock media - c0) / runs in
      Printf.printf "%-8s%14.1f%10d\n" spec.SR.name
        (float_of_int avg /. 1e3)
        (!rows_total / runs))
    (SR.all sc)

(* --- iu ------------------------------------------------------------------- *)

let iu sf storage engine runs seed =
  let db, ds = mk_db ~mode:storage ~sf ~indexed:true in
  let sc = ds.Snb.Gen.schema in
  let config =
    { Engine.default_config with prop_tag = Snb.Schema.prop_tag sc }
  in
  let media = Core.media db in
  let rng = Random.State.make [| seed |] in
  let ctx = IU.make_ctx () in
  Printf.printf "%-8s%14s%14s\n" "query" "exec sim-us" "commit sim-us";
  List.iter
    (fun spec ->
      let exec_total = ref 0 and commit_total = ref 0 in
      for _ = 1 to runs do
        let params = spec.IU.draw ds rng ctx in
        let c0 = Pmem.Media.clock media in
        let _, _, commit_ns =
          Core.execute_update db ~mode:engine ~config ~params (spec.IU.plan sc)
        in
        let total = Pmem.Media.clock media - c0 in
        exec_total := !exec_total + total - commit_ns;
        commit_total := !commit_total + commit_ns
      done;
      Printf.printf "%-8s%14.1f%14.1f\n" spec.IU.name
        (float_of_int (!exec_total / runs) /. 1e3)
        (float_of_int (!commit_total / runs) /. 1e3))
    IU.all;
  let stats = Core.txn_stats db in
  Printf.printf "commits %d, aborts %d\n" stats.Mvcc.Mvto.commits
    stats.Mvcc.Mvto.aborts

(* --- crash ------------------------------------------------------------------ *)

let crash sf evict seed =
  let db, ds = mk_db ~mode:`Pmem ~sf ~indexed:true in
  let sc = ds.Snb.Gen.schema in
  let rng = Random.State.make [| seed |] in
  let ctx = IU.make_ctx () in
  (* commit some updates *)
  List.iter
    (fun spec ->
      let params = spec.IU.draw ds rng ctx in
      ignore (Core.execute_update db ~params (spec.IU.plan sc)))
    IU.all;
  let nodes = Core.node_count db and rels = Core.rel_count db in
  (* leave one transaction in flight *)
  let txn = Core.begin_txn db in
  ignore (Core.create_node db txn ~label:"Person" ~props:[]);
  Printf.printf "pre-crash: %d nodes, %d rels (+1 uncommitted)\n" nodes rels;
  Core.crash ~evict_prob:evict db;
  let t0 = Unix.gettimeofday () in
  let db = Core.reopen db in
  Printf.printf "recovered in %.1f ms (wall)\n"
    ((Unix.gettimeofday () -. t0) *. 1e3);
  Printf.printf "post-recovery: %d nodes, %d rels\n" (Core.node_count db)
    (Core.rel_count db);
  if Core.node_count db = nodes && Core.rel_count db = rels then
    print_endline "OK: committed data durable, uncommitted insert reclaimed"
  else begin
    print_endline "FAILED: counts diverged";
    exit 1
  end;
  (* run a query through the recovered indexes *)
  let param = Value.Int ds.Snb.Gen.person_ids.(0) in
  let rows, _ = Core.query db ~params:[| param |] (SR.is1 sc ~access:`Index) in
  Printf.printf "IS1 through recovered hybrid index: %d row(s)\n"
    (List.length rows)

let evict_t =
  let doc = "Probability that an unflushed line persists anyway (cache eviction)." in
  Arg.(value & opt float 0.5 & info [ "evict" ] ~doc)

(* --- stats ------------------------------------------------------------------- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_or_print out content =
  match out with
  | None -> print_string content
  | Some path ->
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> output_string oc content);
      Printf.printf "wrote %s (%d bytes)\n" path (String.length content)

let stats sf format out validate =
  match validate with
  | Some path -> (
      (* standalone: check an existing Prometheus exposition file *)
      match Obs.Expo.validate_prometheus (read_file path) with
      | Ok () -> Printf.printf "OK: %s is valid Prometheus exposition\n" path
      | Error msg ->
          Printf.printf "FAILED: %s: %s\n" path msg;
          exit 1)
  | None ->
      let db, ds = mk_db ~mode:`Pmem ~sf ~indexed:true in
      let sc = ds.Snb.Gen.schema in
      let media = Core.media db in
      (* resets the media counters AND the metrics registry/trace ring,
         so everything below is a delta over the mixed workload *)
      Pmem.Media.reset media;
      let rng = Random.State.make [| 3 |] in
      let ctx = IU.make_ctx () in
      (* a mixed workload: reads and updates *)
      for _ = 1 to 50 do
        let spec = List.nth (SR.all sc) (Random.State.int rng 12) in
        let param = SR.draw_param ds rng spec in
        List.iter
          (fun plan -> ignore (Core.query db ~params:[| param |] plan))
          (spec.SR.plans ~access:`Index)
      done;
      for _ = 1 to 20 do
        let spec = List.nth IU.all (Random.State.int rng 8) in
        let params = spec.IU.draw ds rng ctx in
        ignore (Core.execute_update db ~params (spec.IU.plan sc))
      done;
      let samples = Obs.Metrics.snapshot (Pmem.Media.registry media) in
      (match format with
      | `Prom -> write_or_print out (Obs.Expo.to_prometheus samples)
      | `Json -> write_or_print out (Obs.Expo.to_json samples)
      | `Text ->
          let s = Pmem.Media.stats media in
          Printf.printf "mixed workload (50 SR + 20 IU) media profile:\n";
          Printf.printf "  line reads      %10d\n" s.Pmem.Media.reads;
          Printf.printf "  line writes     %10d\n" s.Pmem.Media.writes;
          Printf.printf "  clwb flushes    %10d\n" s.Pmem.Media.flushes;
          Printf.printf "  sfences         %10d\n" s.Pmem.Media.fences;
          Printf.printf "  allocations     %10d\n" s.Pmem.Media.allocs;
          Printf.printf "  pptr derefs     %10d\n" s.Pmem.Media.derefs;
          Printf.printf "  bytes read      %10d\n" s.Pmem.Media.bytes_read;
          Printf.printf "  bytes written   %10d\n" s.Pmem.Media.bytes_written;
          Printf.printf "  injected faults %10d\n" s.Pmem.Media.faults;
          Printf.printf "  retries         %10d\n" s.Pmem.Media.retries;
          Printf.printf "  sim time        %10.2f ms\n"
            (float_of_int (Pmem.Media.clock media) /. 1e6);
          Printf.printf "  registry        %10d metric families\n"
            (List.length samples))

(* --- faults ------------------------------------------------------------------- *)

module CE = Pmem.Crash_explorer
module Faults = Pmem.Faults
module BP = Diskdb.Buffer_pool

(* A deterministic transactional workload for the crash-schedule sweep:
   one seed node, then [steps] committed insert+rel transactions.  The
   check tolerates the one transaction in flight at the cut landing on
   either side of its commit point - but nothing in between. *)
type fault_drill = {
  mutable db : Core.t;
  mutable committed : (int * int) list; (* node id, expected "v" *)
  mutable in_flight : bool;
  root : int;
}

let drill_steps = 4

let drill_fresh () =
  let db = Core.create ~mode:`Pmem ~pool_size:(1 lsl 24) ~chunk_capacity:64 () in
  ignore (Core.create_index db ~label:"N" ~prop:"id" ());
  let root =
    Core.with_txn db (fun txn ->
        Core.create_node db txn ~label:"N"
          ~props:[ ("id", Value.Int 0); ("v", Value.Int 1) ])
  in
  { db; committed = [ (root, 1) ]; in_flight = false; root }

let drill_run st =
  for k = 1 to drill_steps do
    st.in_flight <- true;
    let id =
      Core.with_txn st.db (fun txn ->
          let id =
            Core.create_node st.db txn ~label:"N"
              ~props:[ ("id", Value.Int k); ("v", Value.Int (10 * k)) ]
          in
          ignore (Core.create_rel st.db txn ~label:"E" ~src:id ~dst:st.root ~props:[]);
          id)
    in
    st.committed <- (id, 10 * k) :: st.committed;
    st.in_flight <- false
  done

let drill_check st =
  let fail fmt = Printf.ksprintf (fun s -> print_endline ("FAILED: " ^ s); exit 1) fmt in
  Core.with_txn st.db (fun txn ->
      List.iter
        (fun (id, v) ->
          match Core.node_prop st.db txn id ~key:"v" with
          | Some (Value.Int v') when v' = v -> ()
          | _ -> fail "committed node %d lost or corrupted" id)
        st.committed;
      let live = ref 0 in
      Mvcc.Mvto.scan_nodes (Core.mgr st.db) txn (fun _ -> incr live);
      let base = List.length st.committed in
      let ok = !live = base || (st.in_flight && !live = base + 1) in
      if not ok then fail "%d live nodes, %d committed (in-flight=%b)" !live base st.in_flight);
  (* the engine must stay operational after recovery *)
  let probe =
    Core.with_txn st.db (fun txn -> Core.create_node st.db txn ~label:"P" ~props:[])
  in
  Core.with_txn st.db (fun txn -> Core.delete_node st.db txn probe);
  Core.with_txn st.db (fun _ -> ())

let faults variants stride seed =
  (* 1. exhaustive crash-schedule sweep *)
  let target =
    {
      CE.fresh = drill_fresh;
      pool = (fun st -> Core.pool st.db);
      run = drill_run;
      recover =
        (fun st ->
          st.db <- Core.reopen st.db;
          st);
      check = drill_check;
    }
  in
  let t0 = Unix.gettimeofday () in
  let r = CE.explore ~evict_variants:variants ~flush_stride:stride ~seed target in
  Printf.printf "crash-schedule sweep (%d insert txns):\n" drill_steps;
  Printf.printf "  persist trace   %6d stores, %d flushes, %d fences\n"
    r.CE.trace_stores r.CE.trace_flushes r.CE.trace_fences;
  Printf.printf "  schedules       %6d (%d fence cuts, %d variants, %d flush cuts)\n"
    r.CE.schedules r.CE.fence_schedules r.CE.variant_schedules r.CE.flush_schedules;
  Printf.printf "  crashes         %6d, all recovered with invariants intact\n"
    r.CE.crashes_triggered;
  Printf.printf "  wall time       %6.1f ms\n" ((Unix.gettimeofday () -. t0) *. 1e3);
  (* 2. transient-SSD-fault drill: every injected error must be absorbed *)
  let media = Pmem.Media.create () in
  let bp = BP.create ~capacity:128 ~max_retries:10 media in
  let plan = Faults.plan ~ssd_read_fail:0.2 ~ssd_write_fail:0.2 ~seed () in
  Faults.install media plan;
  let surfaced = ref 0 in
  for i = 0 to 1999 do
    try BP.touch bp ~off:(i * 8192) ~rw:(if i mod 3 = 0 then `W else `R)
    with Faults.Ssd_fault _ -> incr surfaced
  done;
  (try BP.wal_commit bp ~bytes:65536 with Faults.Ssd_fault _ -> incr surfaced);
  Faults.uninstall media;
  let fs = Faults.stats plan in
  Printf.printf "transient SSD faults (p=0.2 read/write, 2000 accesses):\n";
  Printf.printf "  injected        %6d (%d read, %d write)\n"
    (fs.Faults.ssd_read_faults + fs.Faults.ssd_write_faults)
    fs.Faults.ssd_read_faults fs.Faults.ssd_write_faults;
  Printf.printf "  absorbed        %6d by buffer-pool retries\n" (BP.retries bp);
  Printf.printf "  surfaced        %6d\n" !surfaced;
  if !surfaced > 0 then begin
    print_endline "FAILED: transient faults escaped the retry budget";
    exit 1
  end;
  print_endline "OK: all crash schedules recovered; all transient faults absorbed"

(* --- htap ------------------------------------------------------------------------ *)

let htap sf storage engine writers readers duration workers seed out profile
    metrics_out min_adaptive_ratio max_flushes_per_commit max_fences_per_commit
    =
  let cfg =
    {
      Htap.sf;
      writers;
      readers;
      duration_ms = duration;
      seed;
      mode = engine;
      storage;
      pool_workers = workers;
      profile;
    }
  in
  let r = Htap.run cfg in
  Htap.print_summary r;
  Htap.write_json out r;
  (match metrics_out with
  | None -> ()
  | Some path -> (
      match Obs.Expo.validate_prometheus r.Htap.metrics_prom with
      | Error msg ->
          Printf.printf "FAILED: metrics exposition invalid: %s\n" msg;
          exit 1
      | Ok () ->
          let oc = open_out path in
          Fun.protect
            ~finally:(fun () -> close_out oc)
            (fun () -> output_string oc r.Htap.metrics_prom);
          Printf.printf "wrote %s (%d bytes, validated)\n" path
            (String.length r.Htap.metrics_prom)));
  match
    Htap.validate_file ?min_adaptive_ratio ?max_flushes_per_commit
      ?max_fences_per_commit out
  with
  | Ok () -> Printf.printf "OK: %s written and validated\n" out
  | Error msg ->
      Printf.printf "FAILED: %s invalid: %s\n" out msg;
      exit 1

let writers_t =
  let doc = "Concurrent writer domains issuing SNB updates." in
  Arg.(value & opt int 2 & info [ "writers" ] ~doc)

let readers_t =
  let doc = "Concurrent reader domains running analytic queries." in
  Arg.(value & opt int 2 & info [ "readers" ] ~doc)

let duration_t =
  let doc = "Run duration in simulated milliseconds (media clock)." in
  Arg.(value & opt float 20. & info [ "duration" ] ~doc)

let workers_t =
  let doc = "Shared morsel-pool workers for parallel reads (<=1 disables)." in
  Arg.(value & opt int 2 & info [ "workers" ] ~doc)

let out_t =
  let doc = "Output path for the machine-readable results." in
  Arg.(value & opt string "BENCH_htap.json" & info [ "out" ] ~doc)

let profile_t =
  let doc =
    "Per-operator profiling: report tuple counts and elapsed simulated \
     ticks for each operator of the executed plan(s), in both the \
     interpreted and JIT-compiled engines where applicable."
  in
  Arg.(value & flag & info [ "profile" ] ~doc)

let metrics_out_t =
  let doc =
    "Also write the final metrics-registry snapshot as Prometheus text \
     exposition to $(docv) (validated before writing)."
  in
  Arg.(value & opt (some string) None & info [ "metrics-out" ] ~docv:"FILE" ~doc)

let min_adaptive_ratio_t =
  let doc =
    "Gate the Fig. 10 block: at the highest domain count, per-worker \
     adaptive throughput must be at least $(docv) x the serial-AOT \
     throughput (and compiled-parallel must not be slower than \
     interpreter-parallel); the run fails otherwise."
  in
  Arg.(
    value
    & opt (some float) None
    & info [ "min-adaptive-ratio" ] ~docv:"RATIO" ~doc)

let max_flushes_per_commit_t =
  let doc =
    "Gate the persist discipline: media line flushes amortised per \
     committed transaction must not exceed $(docv); the run fails \
     otherwise."
  in
  Arg.(
    value
    & opt (some float) None
    & info [ "max-flushes-per-commit" ] ~docv:"N" ~doc)

let max_fences_per_commit_t =
  let doc =
    "Gate the persist discipline: fence drains amortised per committed \
     transaction must not exceed $(docv); the run fails otherwise."
  in
  Arg.(
    value
    & opt (some float) None
    & info [ "max-fences-per-commit" ] ~docv:"N" ~doc)

(* --- recover-bench ------------------------------------------------------------- *)

let recover_bench sf seed threads battery_points min_speedup lazy_ min_ttfq out =
  let rec doubling n = if n >= threads then [ threads ] else n :: doubling (n * 2) in
  let threads_list = if threads <= 1 then [ 1 ] else 1 :: doubling 2 in
  let cfg =
    {
      Recovery_bench.default_config with
      sf;
      seed;
      threads = threads_list;
      battery_points;
      min_speedup;
      measure_lazy = lazy_ || min_ttfq > 0.;
      min_ttfq_speedup = min_ttfq;
    }
  in
  (match Recovery_bench.run cfg with
  | r ->
      Recovery_bench.print_summary r;
      Recovery_bench.write_json out r;
      (match
         Recovery_bench.validate_file ~min_speedup ~min_ttfq_speedup:min_ttfq
           out
       with
      | Ok () -> Printf.printf "OK: %s written and validated\n" out
      | Error msg ->
          Printf.printf "FAILED: %s invalid: %s\n" out msg;
          exit 1)
  | exception Recovery_bench.Battery_failure msg ->
      Printf.printf "FAILED: recovery battery: %s\n" msg;
      exit 1)

let rb_threads_t =
  let doc =
    "Maximum recovery domains; the bench measures 1,2,4,...,$(docv)."
  in
  Arg.(value & opt int 4 & info [ "threads" ] ~docv:"N" ~doc)

let rb_points_t =
  let doc = "Randomized crash points to sample (0 disables the battery)." in
  Arg.(value & opt int 0 & info [ "battery-points" ] ~doc)

let rb_min_speedup_t =
  let doc =
    "Fail unless parallel recovery is at least $(docv) times faster than \
     serial (0 disables the check)."
  in
  Arg.(value & opt float 0. & info [ "min-speedup" ] ~docv:"X" ~doc)

let rb_lazy_t =
  let doc =
    "Also measure instant restart: checkpoint-accelerated eager recovery \
     plus a lazy reopen's time-to-first-query and time-to-fully-warm."
  in
  Arg.(value & flag & info [ "lazy" ] ~doc)

let rb_min_ttfq_t =
  let doc =
    "Fail unless lazy time-to-first-query beats serial full rebuild by \
     $(docv)x (implies --lazy; 0 disables)."
  in
  Arg.(value & opt float 0. & info [ "min-ttfq-speedup" ] ~docv:"X" ~doc)

let rb_out_t =
  let doc = "Output path for the machine-readable results." in
  Arg.(value & opt string "BENCH_recovery.json" & info [ "out" ] ~doc)

(* --- checkpoint ---------------------------------------------------------------- *)

let checkpoint_run sf seed cycles ops =
  let db, ds = mk_db ~mode:`Pmem ~sf ~indexed:true in
  let sc = ds.Snb.Gen.schema in
  let rng = Random.State.make [| seed; 0xCE |] in
  let ctx = IU.make_ctx () in
  let media = Core.media db in
  let nspec = List.length IU.all in
  for cycle = 1 to max 1 cycles do
    for _ = 1 to ops do
      let spec = List.nth IU.all (Random.State.int rng nspec) in
      let params = spec.IU.draw ds rng ctx in
      ignore (Core.execute_update db ~params (spec.IU.plan sc))
    done;
    let c0 = Pmem.Media.clock media in
    let seq = Core.checkpoint db in
    Printf.printf
      "checkpoint %d/%d: generation %d committed in %.1f sim-us (epoch now %d)\n"
      cycle (max 1 cycles) seq
      (float_of_int (Pmem.Media.clock media - c0) /. 1e3)
      (Core.checkpoint_epoch db)
  done;
  match Core.checkpoint_info db with
  | None ->
      print_endline "FAILED: no checkpoint region";
      exit 1
  | Some i ->
      Printf.printf "region epoch %d, shadow slots:\n" i.Checkpoint.i_epoch;
      Array.iteri
        (fun k (s : Checkpoint.slot_info) ->
          if s.Checkpoint.si_seq = 0 && not s.Checkpoint.si_valid then
            Printf.printf "  slot %d: empty\n" k
          else
            Printf.printf
              "  slot %d: %s gen=%d snap_epoch=%d age=%d epoch(s) blob=%d B\n"
              k
              (if s.Checkpoint.si_valid then "valid  " else "INVALID")
              s.Checkpoint.si_seq s.Checkpoint.si_snap_epoch
              (i.Checkpoint.i_epoch - s.Checkpoint.si_snap_epoch)
              s.Checkpoint.si_blob_len)
        i.Checkpoint.i_slots

let cycles_t =
  let doc = "Checkpoints to take (updates run between each)." in
  Arg.(value & opt int 2 & info [ "cycles" ] ~doc)

let ckpt_ops_t =
  let doc = "SNB update transactions before each checkpoint." in
  Arg.(value & opt int 20 & info [ "ops" ] ~doc)

(* --- analytics ----------------------------------------------------------------- *)

let analytics_run sf mode algo source iterations threads validate =
  let db, ds = mk_db ~mode ~sf ~indexed:false in
  let media = Core.media db and mgr = Core.mgr db in
  ignore (Pmem.Media.install_meter media);
  let pool =
    if threads <= 1 then None
    else Some (Exec.Task_pool.create ~media ~nworkers:threads ())
  in
  Fun.protect ~finally:(fun () -> Option.iter Exec.Task_pool.shutdown pool)
  @@ fun () ->
  let txn = Core.begin_txn db in
  let sw = Analytics.Par.stopwatch media pool in
  let csr = Analytics.Csr.export ?pool mgr txn in
  let export_ns = sw () in
  Printf.printf "export: %s  (%d sim-ns @ %d domain%s)\n"
    (Format.asprintf "%a" Analytics.Csr.pp_stats csr)
    export_ns threads
    (if threads = 1 then "" else "s");
  let src_vertex =
    let phys =
      if source < 0 then ds.Snb.Gen.persons.(0)
      else
        let n = Array.length ds.Snb.Gen.person_ids in
        let rec find j =
          if j >= n then failwith (Printf.sprintf "no person with id %d" source)
          else if ds.Snb.Gen.person_ids.(j) = source then ds.Snb.Gen.persons.(j)
          else find (j + 1)
        in
        find 0
    in
    match Analytics.Csr.index_of_node csr phys with
    | Some v -> v
    | None -> failwith "source person is not in the exported vertex set"
  in
  let mismatches = ref 0 in
  let check name ok = if not ok then begin incr mismatches;
      Printf.printf "MISMATCH: %s diverged from its serial reference\n" name end
    else if validate then Printf.printf "validated: %s == reference\n" name
  in
  let want k = algo = "all" || algo = k in
  let timed f =
    let sw = Analytics.Par.stopwatch media pool in
    let r = f () in
    (r, sw ())
  in
  if want "bfs" then begin
    let b, ns = timed (fun () -> Analytics.Kernels.bfs ?pool media csr ~source:src_vertex) in
    let reached =
      Array.fold_left (fun a l -> if l >= 0 then a + 1 else a) 0 b.Analytics.Kernels.levels
    in
    Printf.printf "bfs: reached %d/%d vertices in %d rounds (%d edges, %d sim-ns)\n"
      reached csr.Analytics.Csr.n b.Analytics.Kernels.bfs_rounds
      b.Analytics.Kernels.bfs_edges ns;
    if validate then
      check "bfs"
        (Analytics.Kernels.bfs_reference csr ~source:src_vertex
        = b.Analytics.Kernels.levels)
  end;
  if want "pagerank" then begin
    let pr, ns =
      timed (fun () ->
          Analytics.Kernels.pagerank ?pool ~max_iters:iterations media csr)
    in
    Printf.printf "pagerank: %d iterations, residual %.3e (%d sim-ns)\n"
      pr.Analytics.Kernels.pr_iterations pr.Analytics.Kernels.pr_residual ns;
    let ranked =
      Array.mapi (fun v r -> (r, csr.Analytics.Csr.vertices.(v))) pr.Analytics.Kernels.ranks
    in
    Array.sort (fun (a, _) (b, _) -> compare b a) ranked;
    for i = 0 to min 4 (Array.length ranked - 1) do
      let r, node = ranked.(i) in
      Printf.printf "  #%d node %d  rank %.6f\n" (i + 1) node r
    done;
    if validate then begin
      let ref_ranks, _ =
        Analytics.Kernels.pagerank_reference ~max_iters:iterations csr
      in
      let ok = ref true in
      Array.iteri
        (fun v r ->
          if abs_float (r -. pr.Analytics.Kernels.ranks.(v)) > 1e-9 then
            ok := false)
        ref_ranks;
      check "pagerank" !ok
    end
  end;
  if want "wcc" then begin
    let w, ns = timed (fun () -> Analytics.Kernels.wcc ?pool media csr) in
    Printf.printf "wcc: %d components in %d rounds (%d sim-ns)\n"
      w.Analytics.Kernels.components w.Analytics.Kernels.wcc_rounds ns;
    if validate then
      check "wcc" (Analytics.Kernels.wcc_reference csr = w.Analytics.Kernels.labels)
  end;
  Core.commit db txn;
  if !mismatches > 0 then exit 1

let analytics_bench_run sf seed threads writers min_kernel_speedup out =
  let rec doubling n = if n >= threads then [ threads ] else n :: doubling (n * 2) in
  let threads_list = if threads <= 1 then [ 1 ] else 1 :: doubling 2 in
  let cfg =
    {
      Analytics_bench.default_config with
      sf;
      seed;
      threads = threads_list;
      storm_writers = writers;
    }
  in
  match Analytics_bench.run cfg with
  | r ->
      Analytics_bench.print_summary r;
      Analytics_bench.write_json out r;
      (match Analytics_bench.validate_file ~min_kernel_speedup out with
      | Ok () -> Printf.printf "OK: %s written and validated\n" out
      | Error msg ->
          Printf.printf "FAILED: %s invalid: %s\n" out msg;
          exit 1)
  | exception Analytics_bench.Battery_failure msg ->
      Printf.printf "FAILED: analytics battery: %s\n" msg;
      exit 1

let algo_t =
  let doc = "Kernel to run: bfs, pagerank, wcc or all." in
  Arg.(
    value
    & opt (enum [ ("bfs", "bfs"); ("pagerank", "pagerank"); ("wcc", "wcc"); ("all", "all") ]) "all"
    & info [ "algo" ] ~doc)

let source_t =
  let doc = "LDBC person id of the BFS source (default: first person)." in
  Arg.(value & opt int (-1) & info [ "source" ] ~doc)

let iterations_t =
  let doc = "PageRank iteration cap." in
  Arg.(value & opt int 50 & info [ "iterations" ] ~doc)

let an_threads_t =
  let doc = "Worker domains for export and kernels (1 = serial)." in
  Arg.(value & opt int 1 & info [ "threads" ] ~doc)

let an_validate_t =
  let doc = "Check every kernel against its serial reference; exit 1 on mismatch." in
  Arg.(value & flag & info [ "validate" ] ~doc)

let ab_sf_t =
  let doc = "Scale factor of the bench dataset." in
  Arg.(value & opt float 0.5 & info [ "sf" ] ~doc)

let ab_threads_t =
  let doc = "Maximum kernel domains; the bench measures 1,2,4,...,$(docv)." in
  Arg.(value & opt int 4 & info [ "threads" ] ~docv:"N" ~doc)

let ab_writers_t =
  let doc = "Writer domains in the snapshot storm drill." in
  Arg.(value & opt int 2 & info [ "writers" ] ~doc)

let ab_min_kernel_speedup_t =
  let doc =
    "Fail unless the highest-domain PageRank and BFS are at least $(docv) \
     times faster than serial (0 disables the check)."
  in
  Arg.(value & opt float 0. & info [ "min-kernel-speedup" ] ~docv:"X" ~doc)

let ab_out_t =
  let doc = "Output JSON path." in
  Arg.(value & opt string "BENCH_analytics.json" & info [ "out" ] ~doc)

(* --- query (Cypher-like) -------------------------------------------------------- *)

let query_run sf storage engine qstr params explain profile =
  let db, ds = mk_db ~mode:storage ~sf ~indexed:true in
  let sc = ds.Snb.Gen.schema in
  let config = { Engine.default_config with prop_tag = Snb.Schema.prop_tag sc } in
  let params = Array.of_list (List.map (fun i -> Value.Int i) params) in
  let media = Core.media db in
  Core.with_txn db (fun txn ->
      let g = Core.source db txn in
      let indexed ~label ~key =
        Core.index_lookup_fn db ~label ~key <> None
      in
      let plan = Query.Cypher.compile ~indexed g qstr in
      if explain then begin
        print_endline "plan:";
        Fmt.pr "%a" (Query.Algebra.pp_plan ~dict:(Core.decode db)) plan
      end;
      let prof =
        if profile then
          Some
            (Obs.Profile.create
               ~tick:(fun () -> Pmem.Media.clock media)
               (Query.Algebra.op_names plan))
        else None
      in
      let rows, report =
        Engine.run ~cache:(Core.jit_cache db) ~media ?prof ~mode:engine ~config
          g ~params plan
      in
      List.iter
        (fun row ->
          let cell = function
            | Value.Str c -> Core.decode db c
            | v -> Value.to_string v
          in
          print_endline (String.concat " | " (Array.to_list (Array.map cell row))))
        rows;
      Printf.printf "-- %d row(s), engine=%s%s\n" (List.length rows)
        (Fmt.to_to_string Engine.pp_mode engine)
        (if report.Engine.fell_back then " (fell back to aot)" else "");
      match prof with
      | None -> ()
      | Some p ->
          print_string
            (Obs.Profile.render
               ~header:
                 (Printf.sprintf "operator profile (engine=%s, ticks=sim ns)"
                    (Fmt.to_to_string Engine.pp_mode engine))
               p))

let qstr_t =
  let doc = "Cypher-like query string." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"QUERY" ~doc)

let qparams_t =
  let doc = "Positional integer parameters ($0, $1, ...)." in
  Arg.(value & opt_all int [] & info [ "p"; "param" ] ~doc)

let explain_t =
  let doc = "Print the compiled operator tree before executing." in
  Arg.(value & flag & info [ "explain" ] ~doc)

(* --- command wiring ------------------------------------------------------------ *)

let generate_cmd =
  Cmd.v
    (Cmd.info "generate" ~doc:"Generate an SNB-like dataset and print statistics")
    Term.(const generate $ sf_t $ mode_t)

let sr_cmd =
  Cmd.v
    (Cmd.info "sr" ~doc:"Run the LDBC interactive short-read workload")
    Term.(const sr $ sf_t $ mode_t $ engine_t $ access_t $ runs_t $ seed_t)

let iu_cmd =
  Cmd.v
    (Cmd.info "iu" ~doc:"Run the LDBC interactive update workload")
    Term.(const iu $ sf_t $ mode_t $ engine_t $ runs_t $ seed_t)

let crash_cmd =
  Cmd.v
    (Cmd.info "crash" ~doc:"Crash/recovery drill with invariant checks")
    Term.(const crash $ sf_t $ evict_t $ seed_t)

let format_t =
  let doc =
    "Output format: $(b,text) (human-readable media profile), $(b,prom) \
     (Prometheus text exposition of the metrics registry) or $(b,json)."
  in
  Arg.(
    value
    & opt (enum [ ("text", `Text); ("prom", `Prom); ("json", `Json) ]) `Text
    & info [ "format" ] ~docv:"FMT" ~doc)

let stats_out_t =
  let doc = "Write the exposition to $(docv) instead of stdout." in
  Arg.(value & opt (some string) None & info [ "out" ] ~docv:"FILE" ~doc)

let validate_t =
  let doc =
    "Validate an existing Prometheus exposition file and exit (no \
     workload is run); non-zero exit status on malformed input."
  in
  Arg.(value & opt (some string) None & info [ "validate" ] ~docv:"FILE" ~doc)

let stats_cmd =
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Media/cost-model statistics and metrics-registry exposition for \
          a mixed workload")
    Term.(const stats $ sf_t $ format_t $ stats_out_t $ validate_t)

let variants_t =
  let doc = "Randomized eviction/torn-line variants per fence cut." in
  Arg.(value & opt int 1 & info [ "variants" ] ~doc)

let stride_t =
  let doc = "Also cut at every Nth clwb (0 disables flush-boundary cuts)." in
  Arg.(value & opt int 0 & info [ "stride" ] ~doc)

let faults_cmd =
  Cmd.v
    (Cmd.info "faults"
       ~doc:
         "Deterministic fault-injection drill: exhaustive crash-schedule \
          sweep plus transient-SSD-fault absorption")
    Term.(const faults $ variants_t $ stride_t $ seed_t)

let htap_cmd =
  Cmd.v
    (Cmd.info "htap"
       ~doc:
         "Concurrent HTAP driver: writer domains issuing SNB updates \
          against reader domains running analytic queries; emits \
          BENCH_htap.json and checks snapshot-isolation invariants")
    Term.(
      const htap $ sf_t $ mode_t $ engine_t $ writers_t $ readers_t
      $ duration_t $ workers_t $ seed_t $ out_t $ profile_t $ metrics_out_t
      $ min_adaptive_ratio_t $ max_flushes_per_commit_t
      $ max_fences_per_commit_t)

let recover_bench_cmd =
  Cmd.v
    (Cmd.info "recover-bench"
       ~doc:
         "Crash-to-ready recovery benchmark: serial-vs-parallel latency \
          table with per-phase breakdown, optional randomized crash-point \
          battery; emits BENCH_recovery.json")
    Term.(
      const recover_bench $ sf_t $ seed_t $ rb_threads_t $ rb_points_t
      $ rb_min_speedup_t $ rb_lazy_t $ rb_min_ttfq_t $ rb_out_t)

let checkpoint_cmd =
  Cmd.v
    (Cmd.info "checkpoint"
       ~doc:
         "Force incremental checkpoints of the volatile accelerators and \
          show the shadow-slot generations (sequence, epoch, age, blob \
          size)")
    Term.(const checkpoint_run $ sf_t $ seed_t $ cycles_t $ ckpt_ops_t)

let query_cmd =
  Cmd.v
    (Cmd.info "query"
       ~doc:"Run a Cypher-like query over a generated dataset"
       ~man:
         [
           `S Manpage.s_examples;
           `P
             "poseidon_cli query \"MATCH (p:Person {id: \\$0})-[:KNOWS]->(f) \
              RETURN f.id\" -p 1000042";
         ])
    Term.(
      const query_run $ sf_t $ mode_t $ engine_t $ qstr_t $ qparams_t
      $ explain_t $ profile_t)

let analytics_cmd =
  Cmd.v
    (Cmd.info "analytics"
       ~doc:
         "Export a snapshot-consistent CSR and run BFS / PageRank / WCC \
          (optionally validated against serial references)")
    Term.(
      const analytics_run $ sf_t $ mode_t $ algo_t $ source_t $ iterations_t
      $ an_threads_t $ an_validate_t)

let analytics_bench_cmd =
  Cmd.v
    (Cmd.info "analytics-bench"
       ~doc:
         "Measure CSR export + kernels at 1/2/4 domains, assert the \
          determinism and writer-storm snapshot contracts, emit \
          BENCH_analytics.json")
    Term.(
      const analytics_bench_run $ ab_sf_t $ seed_t $ ab_threads_t
      $ ab_writers_t $ ab_min_kernel_speedup_t $ ab_out_t)

let () =
  let info =
    Cmd.info "poseidon_cli" ~version:"1.0"
      ~doc:"Transactional graph processing in (simulated) persistent memory"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            generate_cmd; sr_cmd; iu_cmd; crash_cmd; stats_cmd; faults_cmd;
            htap_cmd; recover_bench_cmd; checkpoint_cmd; analytics_cmd;
            analytics_bench_cmd; query_cmd;
          ]))
