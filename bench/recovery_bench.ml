(* Crash-to-ready recovery benchmark (recover-bench).

   Two parts:

   1. Latency table: seed an SNB dataset, dirty it with a seeded update
      mix, then for each domain count crash the engine and measure the
      simulated crash-to-ready latency of [Core.reopen] (per-phase
      breakdown from [Recovery.report]).  A serial repair pass runs
      before the first measurement so every measured recovery starts
      from the same durable image.

   2. Randomized battery: record the persist trace of a deterministic
      SNB update mix, sample crash points uniformly over its
      store/clwb/sfence events, and for each point cut power there
      (via [Pmem.Faults]), recover once per domain count, check a
      structural oracle and assert that every domain count rebuilds
      bit-identical volatile state (dictionary codes, free-slot lists,
      index contents, MVTO watermark).

   Results are emitted as BENCH_recovery.json. *)

module Json = Htap.Json
module Pool = Pmem.Pool
module Faults = Pmem.Faults
module CE = Pmem.Crash_explorer
module G = Storage.Graph_store
module Table = Storage.Table
module Dict = Storage.Dict
module Props = Storage.Props
module Value = Storage.Value
module Mvto = Mvcc.Mvto
module Index = Gindex.Index
module Btree = Gindex.Btree
module IU = Snb.Updates

type config = {
  sf : float;  (** scale factor of the latency-table dataset *)
  seed : int;
  threads : int list;  (** domain counts to measure; must include 1 *)
  battery_points : int;  (** sampled crash points; 0 disables the battery *)
  battery_sf : float;  (** scale factor of the battery drill dataset *)
  min_speedup : float;  (** required serial/parallel ratio; 0 disables *)
}

let default_config =
  {
    sf = 0.05;
    seed = 42;
    threads = [ 1; 2; 4 ];
    battery_points = 0;
    battery_sf = 0.01;
    min_speedup = 0.;
  }

type battery_result = {
  points : int;
  fired : int;  (** plans whose crash point actually cut power *)
  domain_counts : int list;
  trace_stores : int;
  trace_flushes : int;
  trace_fences : int;
}

type result = {
  cfg : config;
  runs : Recovery.report list;  (** one per [cfg.threads] entry, in order *)
  speedup : float;
      (** serial crash-to-ready latency over the best parallel one *)
  battery : battery_result option;
}

exception Battery_failure of string

let failf fmt = Printf.ksprintf (fun s -> raise (Battery_failure s)) fmt

(* --- shared workload pieces --------------------------------------------- *)

let indexed_labels = [ "Person"; "Post"; "Comment"; "Forum"; "Place"; "Tag" ]

let update_mix db ds ~seed ~ops =
  let sc = ds.Snb.Gen.schema in
  let rng = Random.State.make [| seed; 0xD411 |] in
  let ctx = IU.make_ctx () in
  let nspec = List.length IU.all in
  for _ = 1 to ops do
    let spec = List.nth IU.all (Random.State.int rng nspec) in
    let params = spec.IU.draw ds rng ctx in
    ignore (Core.execute_update db ~params (spec.IU.plan sc))
  done

(* --- 1. latency table ---------------------------------------------------- *)

let measure cfg =
  let db = Core.create ~mode:`Pmem ~pool_size:(1 lsl 27) () in
  let ds =
    Snb.Gen.generate
      ~params:{ Snb.Gen.default_params with sf = cfg.sf }
      (Core.store db)
  in
  List.iter
    (fun l -> ignore (Core.create_index db ~label:l ~prop:"id" ()))
    indexed_labels;
  update_mix db ds ~seed:cfg.seed ~ops:30;
  (* repair pass: reclaim/scrub once so each measured run below starts
     from the same durable image and does the same amount of work *)
  Core.crash db;
  let db = ref (Core.reopen db) in
  let reports =
    List.map
      (fun n ->
        (* leave one transaction in flight so the mvcc phase has a lock
           to scrub and an insert to reclaim *)
        let txn = Core.begin_txn !db in
        ignore
          (Core.create_node !db txn ~label:"Person"
             ~props:[ ("id", Value.Int (-1)) ]);
        Core.crash !db;
        db := Core.reopen ~recovery_threads:n !db;
        match Core.last_recovery !db with
        | Some r -> r
        | None -> assert false)
      cfg.threads
  in
  let serial =
    try List.find (fun r -> r.Recovery.r_threads = 1) reports
    with Not_found -> invalid_arg "recover-bench: threads must include 1"
  in
  let best_parallel =
    List.fold_left
      (fun acc r ->
        if r.Recovery.r_threads > 1 then min acc r.Recovery.r_total_ns else acc)
      max_int reports
  in
  let speedup =
    if best_parallel = max_int then 1.
    else float_of_int serial.Recovery.r_total_ns /. float_of_int best_parallel
  in
  (reports, speedup)

(* --- 2. randomized crash-point battery ----------------------------------- *)

type drill = { db : Core.t; ds : Snb.Gen.dataset }

(* Deterministic drill instance covering all three index placements. *)
let drill_fresh cfg () =
  let db = Core.create ~mode:`Pmem ~pool_size:(1 lsl 25) ~chunk_capacity:256 () in
  let ds =
    Snb.Gen.generate
      ~params:{ Snb.Gen.default_params with sf = cfg.battery_sf }
      (Core.store db)
  in
  (* all three index placements recover through different paths *)
  ignore
    (Core.create_index ~placement:Gindex.Node_store.Persistent db ~label:"Post"
       ~prop:"id" ());
  ignore
    (Core.create_index ~placement:Gindex.Node_store.Volatile db
       ~label:"Comment" ~prop:"id" ());
  List.iter
    (fun l -> ignore (Core.create_index db ~label:l ~prop:"id" ()))
    [ "Person"; "Forum"; "Place"; "Tag" ];
  { db; ds }

let drill_mix cfg st = update_mix st.db st.ds ~seed:cfg.seed ~ops:10

let drill_indexes = [ "Person"; "Post"; "Comment" ]

(* Volatile-state fingerprint of a recovered engine: equal fingerprints
   mean recovery rebuilt identical dictionary codes, free-slot lists,
   index contents and MVTO watermark. *)
let signature db =
  let buf = Buffer.create 4096 in
  let store = Core.store db in
  let dict = G.dict store in
  Buffer.add_string buf (Printf.sprintf "dict/count=%d\n" (Dict.count dict));
  for c = 1 to (2 * Dict.count dict) + 16 do
    match Dict.decode dict c with
    | s -> Buffer.add_string buf (Printf.sprintf "dict/%d=%s\n" c s)
    | exception _ -> ()
  done;
  List.iter
    (fun (name, tbl) ->
      Buffer.add_string buf
        (Printf.sprintf "free/%s=%s\n" name
           (String.concat ","
              (List.map string_of_int (Table.free_slots tbl)))))
    [
      ("nodes", G.node_table store);
      ("rels", G.rel_table store);
      ("props", Props.table (G.prop_store store));
    ];
  Buffer.add_string buf
    (Printf.sprintf "mvto/next_ts=%d\n" (Mvto.next_ts (Core.mgr db)));
  List.iter
    (fun label ->
      match (Dict.lookup dict label, Dict.lookup dict "id") with
      | Some lc, Some kc -> (
          match Core.index_lookup_fn db ~label:lc ~key:kc with
          | None -> Buffer.add_string buf (Printf.sprintf "idx/%s=absent\n" label)
          | Some idx ->
              Buffer.add_string buf
                (Printf.sprintf "idx/%s/count=%d\n" label (Index.count idx));
              Btree.iter_all (Index.tree idx) (fun k v ->
                  Buffer.add_string buf
                    (Printf.sprintf "idx/%s/%Ld=%Ld\n" label k v)))
      | _ -> Buffer.add_string buf (Printf.sprintf "idx/%s=nocode\n" label))
    drill_indexes;
  Buffer.contents buf

(* Structural oracle over a recovered drill: the engine serves
   transactions, every index satisfies the B+-tree invariants and agrees
   exactly with a storage scan of its (label, "id") population. *)
let drill_oracle db =
  let store = Core.store db in
  let dict = G.dict store in
  List.iter
    (fun label ->
      match (Dict.lookup dict label, Dict.lookup dict "id") with
      | Some lc, Some kc -> (
          match Core.index_lookup_fn db ~label:lc ~key:kc with
          | None -> failf "index on (%s, id) missing after recovery" label
          | Some idx ->
              Btree.check_invariants (Index.tree idx);
              let expect = ref [] in
              G.iter_nodes store (fun id ->
                  if G.node_label store id = lc then
                    match G.node_prop store id kc with
                    | Some v -> expect := (v, id) :: !expect
                    | None -> ());
              let n = List.length !expect in
              if Index.count idx <> n then
                failf "(%s, id): index has %d entries, storage has %d" label
                  (Index.count idx) n;
              List.iter
                (fun (v, id) ->
                  if not (List.mem id (Index.lookup idx v)) then
                    failf "(%s, id): node %d missing under %s" label id
                      (Value.to_string v))
                !expect)
      | _ -> failf "dictionary lost the codes for (%s, id)" label)
    drill_indexes;
  let probe =
    Core.with_txn db (fun txn -> Core.create_node db txn ~label:"Probe" ~props:[])
  in
  Core.with_txn db (fun txn -> Core.delete_node db txn probe);
  Core.with_txn db (fun _ -> ())

(* Cut power at [plan]'s crash point during the drill mix, recover with
   [threads] domains; returns whether the plan fired plus the
   fingerprint (computed before the oracle's probe transactions). *)
let battery_run cfg ~threads ~plan =
  let st = drill_fresh cfg () in
  let pool = Core.pool st.db in
  let media = Core.media st.db in
  Faults.install ~pool media plan;
  let fired =
    Fun.protect ~finally:(fun () -> Faults.uninstall media) @@ fun () ->
    match drill_mix cfg st with
    | () -> false
    | exception Faults.Crash_point _ -> true
  in
  Pool.crash pool;
  let db = Core.reopen ~recovery_threads:threads st.db in
  let s = signature db in
  drill_oracle db;
  (fired, s)

let battery cfg =
  let domain_counts = cfg.threads in
  (* one clean run to capture the persist trace of the update mix *)
  let st0 = drill_fresh cfg () in
  let trace =
    CE.record (Core.media st0.db) (fun () -> drill_mix cfg st0)
  in
  drill_oracle (Core.reopen st0.db);
  let ns = CE.stores trace
  and nf = CE.flushes trace
  and nfe = CE.fences trace in
  let total = ns + nf + nfe in
  if total = 0 then failf "empty persist trace";
  let rng = Random.State.make [| cfg.seed; 0xBA77 |] in
  let fired_total = ref 0 in
  for point = 1 to cfg.battery_points do
    (* uniform over all trace events, mapped to (kind, 1-based ordinal) *)
    let j = Random.State.int rng total in
    let kind, ordinal =
      if j < ns then (`Write, j + 1)
      else if j < ns + nf then (`Flush, j - ns + 1)
      else (`Fence, j - ns - nf + 1)
    in
    (* every 4th point also evicts/tears still-dirty lines at the cut;
       the plan seed is shared across domain counts so the frozen image
       is identical for each of them *)
    let mk_plan () =
      if point mod 4 = 0 then
        Faults.plan ~crash_at:(kind, ordinal) ~evict_prob:0.5 ~torn_prob:0.25
          ~seed:(cfg.seed + (7919 * point))
          ()
      else Faults.plan ~crash_at:(kind, ordinal) ()
    in
    let outcomes =
      List.map
        (fun n -> (n, battery_run cfg ~threads:n ~plan:(mk_plan ())))
        domain_counts
    in
    (match outcomes with
    | [] -> ()
    | (n0, (fired0, sig0)) :: rest ->
        if fired0 then incr fired_total;
        List.iter
          (fun (n, (fired, s)) ->
            if fired <> fired0 then
              failf "point %d: plan fired with %d domains but not with %d"
                point
                (if fired then n else n0)
                (if fired then n0 else n);
            if s <> sig0 then
              failf
                "point %d (%s #%d): %d-domain recovery diverged from \
                 %d-domain recovery"
                point
                (match kind with
                | `Write -> "store"
                | `Flush -> "clwb"
                | `Fence -> "sfence")
                ordinal n n0)
          rest)
  done;
  {
    points = cfg.battery_points;
    fired = !fired_total;
    domain_counts;
    trace_stores = ns;
    trace_flushes = nf;
    trace_fences = nfe;
  }

(* --- driver and JSON ------------------------------------------------------ *)

let run cfg =
  let runs, speedup = measure cfg in
  let battery =
    if cfg.battery_points > 0 then Some (battery cfg) else None
  in
  { cfg; runs; speedup; battery }

let json_of_report (r : Recovery.report) =
  Json.Obj
    [
      ("threads", Json.Int r.Recovery.r_threads);
      ("total_ns", Json.Int r.Recovery.r_total_ns);
      ("records_scanned", Json.Int r.Recovery.r_scanned);
      ( "phases",
        Json.List
          (List.map
             (fun p ->
               Json.Obj
                 [
                   ("name", Json.Str p.Recovery.ph_name);
                   ("ns", Json.Int p.Recovery.ph_ns);
                   ("records", Json.Int p.Recovery.ph_records);
                 ])
             r.Recovery.r_phases) );
    ]

let to_json r =
  let battery =
    match r.battery with
    | None -> Json.Null
    | Some b ->
        Json.Obj
          [
            ("points", Json.Int b.points);
            ("fired", Json.Int b.fired);
            ("domain_counts", Json.List (List.map (fun n -> Json.Int n) b.domain_counts));
            ("trace_stores", Json.Int b.trace_stores);
            ("trace_flushes", Json.Int b.trace_flushes);
            ("trace_fences", Json.Int b.trace_fences);
          ]
  in
  Json.to_string
    (Json.Obj
       [
         ("schema", Json.Str "poseidon/recovery-bench/v1");
         ( "config",
           Json.Obj
             [
               ("sf", Json.Float r.cfg.sf);
               ("seed", Json.Int r.cfg.seed);
               ( "threads",
                 Json.List (List.map (fun n -> Json.Int n) r.cfg.threads) );
               ("battery_points", Json.Int r.cfg.battery_points);
               ("battery_sf", Json.Float r.cfg.battery_sf);
               ("min_speedup", Json.Float r.cfg.min_speedup);
             ] );
         ("runs", Json.List (List.map json_of_report r.runs));
         ("speedup", Json.Float r.speedup);
         ("battery", battery);
       ])

let write_json path r =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_json r);
      output_char oc '\n')

let phase_names = [ "pmdk_log"; "tables"; "dict"; "mvcc"; "indexes" ]

let validate ?(min_speedup = 0.) s =
  let ( let* ) = Result.bind in
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  match Json.parse s with
  | exception Json.Parse_error m -> err "parse error: %s" m
  | doc ->
      let* () =
        match Json.member "schema" doc with
        | Some (Json.Str "poseidon/recovery-bench/v1") -> Ok ()
        | _ -> err "missing or unexpected schema tag"
      in
      let* runs =
        match Json.member "runs" doc with
        | Some (Json.List (_ :: _ as l)) -> Ok l
        | _ -> err "runs missing or empty"
      in
      let* () =
        List.fold_left
          (fun acc run ->
            let* () = acc in
            let* total =
              match Json.to_int (Json.member "total_ns" run) with
              | Some t when t > 0 -> Ok t
              | _ -> err "run without positive total_ns"
            in
            let* phases =
              match Json.member "phases" run with
              | Some (Json.List l) -> Ok l
              | _ -> err "run without phases"
            in
            let names =
              List.filter_map
                (fun p ->
                  match Json.member "name" p with
                  | Some (Json.Str n) -> Some n
                  | _ -> None)
                phases
            in
            let* () =
              if List.for_all (fun n -> List.mem n names) phase_names then
                Ok ()
              else err "run is missing a recovery phase"
            in
            let sum =
              List.fold_left
                (fun a p ->
                  match Json.to_int (Json.member "ns" p) with
                  | Some ns -> a + ns
                  | None -> a)
                0 phases
            in
            if sum = total then Ok ()
            else err "phase timings do not sum to total_ns")
          (Ok ()) runs
      in
      let* () =
        let has_serial =
          List.exists
            (fun run -> Json.to_int (Json.member "threads" run) = Some 1)
            runs
        in
        if has_serial then Ok () else err "no serial (threads=1) run"
      in
      let* sp =
        match Json.member "speedup" doc with
        | Some (Json.Float f) -> Ok f
        | Some (Json.Int i) -> Ok (float_of_int i)
        | _ -> err "speedup missing"
      in
      if sp +. 1e-9 < min_speedup then
        err "speedup %.2fx below required %.2fx" sp min_speedup
      else Ok ()

let validate_file ?min_speedup path =
  let ic = open_in_bin path in
  let s =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  validate ?min_speedup s

let print_summary r =
  Printf.printf "crash-to-ready recovery (sf=%.2f, seed=%d):\n" r.cfg.sf
    r.cfg.seed;
  Printf.printf "  %-8s%14s%12s%12s%12s%12s%12s\n" "domains" "total sim-us"
    "pmdk_log" "tables" "dict" "mvcc" "indexes";
  List.iter
    (fun (rep : Recovery.report) ->
      let phase_us name =
        match
          List.find_opt (fun p -> p.Recovery.ph_name = name) rep.Recovery.r_phases
        with
        | Some p -> float_of_int p.Recovery.ph_ns /. 1e3
        | None -> 0.
      in
      Printf.printf "  %-8d%14.1f%12.1f%12.1f%12.1f%12.1f%12.1f\n"
        rep.Recovery.r_threads
        (float_of_int rep.Recovery.r_total_ns /. 1e3)
        (phase_us "pmdk_log") (phase_us "tables") (phase_us "dict")
        (phase_us "mvcc") (phase_us "indexes"))
    r.runs;
  Printf.printf "  speedup (serial / best parallel): %.2fx\n" r.speedup;
  match r.battery with
  | None -> ()
  | Some b ->
      Printf.printf
        "  battery: %d crash points (%d fired) over a %d-store / %d-clwb / \
         %d-sfence trace, domain counts %s: all recoveries equivalent\n"
        b.points b.fired b.trace_stores b.trace_flushes b.trace_fences
        (String.concat "," (List.map string_of_int b.domain_counts))
