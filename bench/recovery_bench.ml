(* Crash-to-ready recovery benchmark (recover-bench).

   Three parts:

   1. Latency table: seed an SNB dataset, dirty it with a seeded update
      mix, then for each domain count crash the engine and measure the
      simulated crash-to-ready latency of [Core.reopen] (per-phase
      breakdown from [Recovery.report]).  A serial repair pass runs
      before the first measurement so every measured recovery starts
      from the same durable image.  No checkpoint exists yet, so these
      rows are pure full rebuilds.

   2. Instant restart (with [measure_lazy]): take a checkpoint, dirty a
      small delta, crash, and measure (a) eager recovery accelerated by
      the checkpoint and (b) lazy recovery's time-to-first-query and
      time-to-fully-warm.  [min_ttfq_speedup] gates the ratio of the
      serial full rebuild over TTFQ.

   3. Randomized battery: record the persist trace of a deterministic
      SNB update mix with a checkpoint in the middle (so sampled points
      also cut mid-checkpoint), sample crash points uniformly over its
      store/clwb/sfence events, and for each point cut power there
      (via [Pmem.Faults]), recover once per domain count plus once
      lazily, check a structural oracle and assert that every recovery
      rebuilds bit-identical volatile state (dictionary codes,
      free-slot lists, index contents, MVTO watermark).

   Results are emitted as BENCH_recovery.json (schema v2). *)

module Json = Htap.Json
module Pool = Pmem.Pool
module Faults = Pmem.Faults
module CE = Pmem.Crash_explorer
module G = Storage.Graph_store
module Table = Storage.Table
module Dict = Storage.Dict
module Props = Storage.Props
module Value = Storage.Value
module Mvto = Mvcc.Mvto
module Index = Gindex.Index
module Btree = Gindex.Btree
module IU = Snb.Updates

type config = {
  sf : float;  (** scale factor of the latency-table dataset *)
  seed : int;
  threads : int list;  (** domain counts to measure; must include 1 *)
  battery_points : int;  (** sampled crash points; 0 disables the battery *)
  battery_sf : float;  (** scale factor of the battery drill dataset *)
  min_speedup : float;  (** required serial/parallel ratio; 0 disables *)
  measure_lazy : bool;
      (** also measure checkpointed eager recovery and lazy instant
          restart (TTFQ / TTFW) *)
  min_ttfq_speedup : float;
      (** required (serial full rebuild / TTFQ) ratio; 0 disables *)
}

let default_config =
  {
    sf = 0.05;
    seed = 42;
    threads = [ 1; 2; 4 ];
    battery_points = 0;
    battery_sf = 0.01;
    min_speedup = 0.;
    measure_lazy = false;
    min_ttfq_speedup = 0.;
  }

type battery_result = {
  points : int;
  fired : int;  (** plans whose crash point actually cut power *)
  domain_counts : int list;
  modes : string list;  (** recovery modes exercised per point *)
  trace_stores : int;
  trace_flushes : int;
  trace_fences : int;
}

type instant_result = {
  ckpt_run : Recovery.report;
      (** serial eager recovery accelerated by a fresh checkpoint *)
  ttfq_ns : int;  (** lazy restart: simulated time to first query *)
  ttfw_ns : int;  (** lazy restart: simulated time to fully warm *)
  ttfq_speedup : float;  (** serial full rebuild / TTFQ *)
}

type result = {
  cfg : config;
  runs : Recovery.report list;  (** one per [cfg.threads] entry, in order *)
  speedup : float;
      (** serial crash-to-ready latency over the best parallel one *)
  instant : instant_result option;
  battery : battery_result option;
}

exception Battery_failure of string

let failf fmt = Printf.ksprintf (fun s -> raise (Battery_failure s)) fmt

(* --- shared workload pieces --------------------------------------------- *)

let indexed_labels = [ "Person"; "Post"; "Comment"; "Forum"; "Place"; "Tag" ]

let update_mix db ds ~seed ~ops =
  let sc = ds.Snb.Gen.schema in
  let rng = Random.State.make [| seed; 0xD411 |] in
  let ctx = IU.make_ctx () in
  let nspec = List.length IU.all in
  for _ = 1 to ops do
    let spec = List.nth IU.all (Random.State.int rng nspec) in
    let params = spec.IU.draw ds rng ctx in
    ignore (Core.execute_update db ~params (spec.IU.plan sc))
  done

(* --- 1. latency table ---------------------------------------------------- *)

let measure cfg =
  let db = Core.create ~mode:`Pmem ~pool_size:(1 lsl 27) () in
  let ds =
    Snb.Gen.generate
      ~params:{ Snb.Gen.default_params with sf = cfg.sf }
      (Core.store db)
  in
  List.iter
    (fun l -> ignore (Core.create_index db ~label:l ~prop:"id" ()))
    indexed_labels;
  update_mix db ds ~seed:cfg.seed ~ops:30;
  (* repair pass: reclaim/scrub once so each measured run below starts
     from the same durable image and does the same amount of work *)
  Core.crash db;
  let db = ref (Core.reopen db) in
  let reports =
    List.map
      (fun n ->
        (* leave one transaction in flight so the mvcc phase has a lock
           to scrub and an insert to reclaim *)
        let txn = Core.begin_txn !db in
        ignore
          (Core.create_node !db txn ~label:"Person"
             ~props:[ ("id", Value.Int (-1)) ]);
        Core.crash !db;
        db := Core.reopen ~recovery_threads:n !db;
        match Core.last_recovery !db with
        | Some r -> r
        | None -> assert false)
      cfg.threads
  in
  let serial =
    try List.find (fun r -> r.Recovery.r_threads = 1) reports
    with Not_found -> invalid_arg "recover-bench: threads must include 1"
  in
  let best_parallel =
    List.fold_left
      (fun acc r ->
        if r.Recovery.r_threads > 1 then min acc r.Recovery.r_total_ns else acc)
      max_int reports
  in
  let speedup =
    if best_parallel = max_int then 1.
    else float_of_int serial.Recovery.r_total_ns /. float_of_int best_parallel
  in
  (reports, speedup, db, ds)

(* --- 1b. instant restart: checkpoint + lazy TTFQ/TTFW -------------------- *)

(* Continue on [measure]'s dataset: checkpoint at quiescence, dirty a
   small delta, crash, and measure first the checkpoint-accelerated
   eager recovery, then a lazy reopen's time-to-first-query and (after
   [Core.warm_all]) time-to-fully-warm. *)
let measure_instant cfg db ds ~serial_full_ns =
  ignore (Core.checkpoint !db);
  update_mix !db ds ~seed:(cfg.seed + 1) ~ops:10;
  let dirty_and_crash () =
    (* same in-flight transaction shape as the latency table *)
    let txn = Core.begin_txn !db in
    ignore
      (Core.create_node !db txn ~label:"Person" ~props:[ ("id", Value.Int (-1)) ]);
    Core.crash !db
  in
  dirty_and_crash ();
  db := Core.reopen ~recovery_threads:1 !db;
  let ckpt_run =
    match Core.last_recovery !db with Some r -> r | None -> assert false
  in
  (* fresh snapshot for the lazy pass, so both measure the same
     checkpoint-plus-small-delta shape *)
  ignore (Core.checkpoint !db);
  update_mix !db ds ~seed:(cfg.seed + 2) ~ops:10;
  dirty_and_crash ();
  db := Core.reopen ~recovery_mode:Recovery.Lazy !db;
  let ttfq_ns =
    match Core.last_recovery !db with
    | Some r -> r.Recovery.r_ttfq_ns
    | None -> assert false
  in
  Core.warm_all !db;
  let ttfw_ns =
    match
      Obs.Metrics.value
        (Pmem.Media.registry (Core.media !db))
        "time_to_fully_warm_ns"
    with
    | Some v -> v
    | None -> 0
  in
  {
    ckpt_run;
    ttfq_ns;
    ttfw_ns;
    ttfq_speedup =
      (if ttfq_ns <= 0 then 0.
       else float_of_int serial_full_ns /. float_of_int ttfq_ns);
  }

(* --- 2. randomized crash-point battery ----------------------------------- *)

type drill = { db : Core.t; ds : Snb.Gen.dataset }

(* Deterministic drill instance covering all three index placements. *)
let drill_fresh cfg () =
  let db = Core.create ~mode:`Pmem ~pool_size:(1 lsl 25) ~chunk_capacity:256 () in
  let ds =
    Snb.Gen.generate
      ~params:{ Snb.Gen.default_params with sf = cfg.battery_sf }
      (Core.store db)
  in
  (* all three index placements recover through different paths *)
  ignore
    (Core.create_index ~placement:Gindex.Node_store.Persistent db ~label:"Post"
       ~prop:"id" ());
  ignore
    (Core.create_index ~placement:Gindex.Node_store.Volatile db
       ~label:"Comment" ~prop:"id" ());
  List.iter
    (fun l -> ignore (Core.create_index db ~label:l ~prop:"id" ()))
    [ "Person"; "Forum"; "Place"; "Tag" ];
  { db; ds }

(* Checkpoint in the middle: uniformly sampled crash points then also
   land inside the checkpoint's own write window, so the battery
   exercises torn-generation recovery too. *)
let drill_mix cfg st =
  update_mix st.db st.ds ~seed:cfg.seed ~ops:5;
  ignore (Core.checkpoint st.db);
  update_mix st.db st.ds ~seed:(cfg.seed + 1) ~ops:5

let drill_indexes = [ "Person"; "Post"; "Comment" ]

(* Volatile-state fingerprint of a recovered engine: equal fingerprints
   mean recovery rebuilt identical dictionary codes, free-slot lists,
   index contents and MVTO watermark. *)
let signature db =
  let buf = Buffer.create 4096 in
  let store = Core.store db in
  let dict = G.dict store in
  Buffer.add_string buf (Printf.sprintf "dict/count=%d\n" (Dict.count dict));
  for c = 1 to (2 * Dict.count dict) + 16 do
    match Dict.decode dict c with
    | s -> Buffer.add_string buf (Printf.sprintf "dict/%d=%s\n" c s)
    | exception _ -> ()
  done;
  List.iter
    (fun (name, tbl) ->
      Buffer.add_string buf
        (Printf.sprintf "free/%s=%s\n" name
           (String.concat ","
              (List.map string_of_int (Table.free_slots tbl)))))
    [
      ("nodes", G.node_table store);
      ("rels", G.rel_table store);
      ("props", Props.table (G.prop_store store));
    ];
  Buffer.add_string buf
    (Printf.sprintf "mvto/next_ts=%d\n" (Mvto.next_ts (Core.mgr db)));
  List.iter
    (fun label ->
      match (Dict.lookup dict label, Dict.lookup dict "id") with
      | Some lc, Some kc -> (
          match Core.index_lookup_fn db ~label:lc ~key:kc with
          | None -> Buffer.add_string buf (Printf.sprintf "idx/%s=absent\n" label)
          | Some idx ->
              Buffer.add_string buf
                (Printf.sprintf "idx/%s/count=%d\n" label (Index.count idx));
              Btree.iter_all (Index.tree idx) (fun k v ->
                  Buffer.add_string buf
                    (Printf.sprintf "idx/%s/%Ld=%Ld\n" label k v)))
      | _ -> Buffer.add_string buf (Printf.sprintf "idx/%s=nocode\n" label))
    drill_indexes;
  Buffer.contents buf

(* Structural oracle over a recovered drill: the engine serves
   transactions, every index satisfies the B+-tree invariants and agrees
   exactly with a storage scan of its (label, "id") population. *)
let drill_oracle db =
  let store = Core.store db in
  let dict = G.dict store in
  List.iter
    (fun label ->
      match (Dict.lookup dict label, Dict.lookup dict "id") with
      | Some lc, Some kc -> (
          match Core.index_lookup_fn db ~label:lc ~key:kc with
          | None -> failf "index on (%s, id) missing after recovery" label
          | Some idx ->
              Btree.check_invariants (Index.tree idx);
              let expect = ref [] in
              G.iter_nodes store (fun id ->
                  if G.node_label store id = lc then
                    match G.node_prop store id kc with
                    | Some v -> expect := (v, id) :: !expect
                    | None -> ());
              let n = List.length !expect in
              if Index.count idx <> n then
                failf "(%s, id): index has %d entries, storage has %d" label
                  (Index.count idx) n;
              List.iter
                (fun (v, id) ->
                  if not (List.mem id (Index.lookup idx v)) then
                    failf "(%s, id): node %d missing under %s" label id
                      (Value.to_string v))
                !expect)
      | _ -> failf "dictionary lost the codes for (%s, id)" label)
    drill_indexes;
  let probe =
    Core.with_txn db (fun txn -> Core.create_node db txn ~label:"Probe" ~props:[])
  in
  Core.with_txn db (fun txn -> Core.delete_node db txn probe);
  Core.with_txn db (fun _ -> ())

(* Cut power at [plan]'s crash point during the drill mix, recover with
   [threads] domains (or lazily, forced fully warm); returns whether the
   plan fired plus the fingerprint (computed before the oracle's probe
   transactions). *)
let battery_run cfg ~threads ~mode ~plan =
  let st = drill_fresh cfg () in
  let pool = Core.pool st.db in
  let media = Core.media st.db in
  Faults.install ~pool media plan;
  let fired =
    Fun.protect ~finally:(fun () -> Faults.uninstall media) @@ fun () ->
    match drill_mix cfg st with
    | () -> false
    | exception Faults.Crash_point _ -> true
  in
  Pool.crash pool;
  let db =
    Core.reopen ~recovery_threads:threads ~recovery_mode:mode st.db
  in
  if mode = Recovery.Lazy then Core.warm_all db;
  let s = signature db in
  drill_oracle db;
  (fired, s)

let battery cfg =
  let domain_counts = cfg.threads in
  (* one clean run to capture the persist trace of the update mix *)
  let st0 = drill_fresh cfg () in
  let trace =
    CE.record (Core.media st0.db) (fun () -> drill_mix cfg st0)
  in
  drill_oracle (Core.reopen st0.db);
  let ns = CE.stores trace
  and nf = CE.flushes trace
  and nfe = CE.fences trace in
  let total = ns + nf + nfe in
  if total = 0 then failf "empty persist trace";
  let rng = Random.State.make [| cfg.seed; 0xBA77 |] in
  let fired_total = ref 0 in
  for point = 1 to cfg.battery_points do
    (* uniform over all trace events, mapped to (kind, 1-based ordinal) *)
    let j = Random.State.int rng total in
    let kind, ordinal =
      if j < ns then (`Write, j + 1)
      else if j < ns + nf then (`Flush, j - ns + 1)
      else (`Fence, j - ns - nf + 1)
    in
    (* every 4th point also evicts/tears still-dirty lines at the cut;
       the plan seed is shared across domain counts so the frozen image
       is identical for each of them *)
    let mk_plan () =
      if point mod 4 = 0 then
        Faults.plan ~crash_at:(kind, ordinal) ~evict_prob:0.5 ~torn_prob:0.25
          ~seed:(cfg.seed + (7919 * point))
          ()
      else Faults.plan ~crash_at:(kind, ordinal) ()
    in
    let variants =
      List.map (fun n -> (n, Recovery.Eager)) domain_counts
      @ [ (1, Recovery.Lazy) ]
    in
    let vname (n, mode) =
      Printf.sprintf "%d-domain %s" n (Recovery.mode_name mode)
    in
    let outcomes =
      List.map
        (fun (n, mode) ->
          ((n, mode), battery_run cfg ~threads:n ~mode ~plan:(mk_plan ())))
        variants
    in
    (match outcomes with
    | [] -> ()
    | (v0, (fired0, sig0)) :: rest ->
        if fired0 then incr fired_total;
        List.iter
          (fun (v, (fired, s)) ->
            if fired <> fired0 then
              failf "point %d: plan fired with %s but not with %s" point
                (vname (if fired then v else v0))
                (vname (if fired then v0 else v));
            if s <> sig0 then
              failf "point %d (%s #%d): %s recovery diverged from %s recovery"
                point
                (match kind with
                | `Write -> "store"
                | `Flush -> "clwb"
                | `Fence -> "sfence")
                ordinal (vname v) (vname v0))
          rest)
  done;
  {
    points = cfg.battery_points;
    fired = !fired_total;
    domain_counts;
    modes = [ "eager"; "lazy" ];
    trace_stores = ns;
    trace_flushes = nf;
    trace_fences = nfe;
  }

(* --- driver and JSON ------------------------------------------------------ *)

let run cfg =
  let runs, speedup, db, ds = measure cfg in
  let instant =
    if cfg.measure_lazy || cfg.min_ttfq_speedup > 0. then
      let serial_full_ns =
        (List.find (fun r -> r.Recovery.r_threads = 1) runs).Recovery.r_total_ns
      in
      Some (measure_instant cfg db ds ~serial_full_ns)
    else None
  in
  let battery =
    if cfg.battery_points > 0 then Some (battery cfg) else None
  in
  { cfg; runs; speedup; instant; battery }

let json_of_report (r : Recovery.report) =
  Json.Obj
    [
      ("threads", Json.Int r.Recovery.r_threads);
      ("total_ns", Json.Int r.Recovery.r_total_ns);
      ("records_scanned", Json.Int r.Recovery.r_scanned);
      ( "phases",
        Json.List
          (List.map
             (fun p ->
               Json.Obj
                 [
                   ("name", Json.Str p.Recovery.ph_name);
                   ("ns", Json.Int p.Recovery.ph_ns);
                   ("records", Json.Int p.Recovery.ph_records);
                 ])
             r.Recovery.r_phases) );
    ]

let to_json r =
  let battery =
    match r.battery with
    | None -> Json.Null
    | Some b ->
        Json.Obj
          [
            ("points", Json.Int b.points);
            ("fired", Json.Int b.fired);
            ("domain_counts", Json.List (List.map (fun n -> Json.Int n) b.domain_counts));
            ("modes", Json.List (List.map (fun m -> Json.Str m) b.modes));
            ("trace_stores", Json.Int b.trace_stores);
            ("trace_flushes", Json.Int b.trace_flushes);
            ("trace_fences", Json.Int b.trace_fences);
          ]
  in
  let instant =
    match r.instant with
    | None -> Json.Null
    | Some l ->
        Json.Obj
          [
            ("checkpoint_run", json_of_report l.ckpt_run);
            ("ttfq_ns", Json.Int l.ttfq_ns);
            ("ttfw_ns", Json.Int l.ttfw_ns);
            ("ttfq_speedup", Json.Float l.ttfq_speedup);
          ]
  in
  Json.to_string
    (Json.Obj
       [
         ("schema", Json.Str "poseidon/recovery-bench/v2");
         ( "config",
           Json.Obj
             [
               ("sf", Json.Float r.cfg.sf);
               ("seed", Json.Int r.cfg.seed);
               ( "threads",
                 Json.List (List.map (fun n -> Json.Int n) r.cfg.threads) );
               ("battery_points", Json.Int r.cfg.battery_points);
               ("battery_sf", Json.Float r.cfg.battery_sf);
               ("min_speedup", Json.Float r.cfg.min_speedup);
               ("measure_lazy", Json.Bool r.cfg.measure_lazy);
               ("min_ttfq_speedup", Json.Float r.cfg.min_ttfq_speedup);
             ] );
         ("runs", Json.List (List.map json_of_report r.runs));
         ("speedup", Json.Float r.speedup);
         ("instant", instant);
         ("battery", battery);
       ])

let write_json path r =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_json r);
      output_char oc '\n')

let phase_names = [ "pmdk_log"; "tables"; "dict"; "mvcc"; "indexes" ]
let ckpt_phase = "checkpoint"

let validate ?(min_speedup = 0.) ?(min_ttfq_speedup = 0.) s =
  let ( let* ) = Result.bind in
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  match Json.parse s with
  | exception Json.Parse_error m -> err "parse error: %s" m
  | doc ->
      let* () =
        match Json.member "schema" doc with
        | Some (Json.Str "poseidon/recovery-bench/v2") -> Ok ()
        | _ -> err "missing or unexpected schema tag"
      in
      (* a run must be fully phase-timed: every expected phase present
         and the per-phase timings summing exactly to total_ns *)
      let check_run ~extra run =
        let* total =
          match Json.to_int (Json.member "total_ns" run) with
          | Some t when t > 0 -> Ok t
          | _ -> err "run without positive total_ns"
        in
        let* phases =
          match Json.member "phases" run with
          | Some (Json.List l) -> Ok l
          | _ -> err "run without phases"
        in
        let names =
          List.filter_map
            (fun p ->
              match Json.member "name" p with
              | Some (Json.Str n) -> Some n
              | _ -> None)
            phases
        in
        let* () =
          if List.for_all (fun n -> List.mem n names) (phase_names @ extra)
          then Ok ()
          else err "run is missing a recovery phase"
        in
        let sum =
          List.fold_left
            (fun a p ->
              match Json.to_int (Json.member "ns" p) with
              | Some ns -> a + ns
              | None -> a)
            0 phases
        in
        if sum = total then Ok ()
        else err "phase timings do not sum to total_ns"
      in
      let* runs =
        match Json.member "runs" doc with
        | Some (Json.List (_ :: _ as l)) -> Ok l
        | _ -> err "runs missing or empty"
      in
      let* () =
        List.fold_left
          (fun acc run ->
            let* () = acc in
            check_run ~extra:[] run)
          (Ok ()) runs
      in
      let* () =
        let has_serial =
          List.exists
            (fun run -> Json.to_int (Json.member "threads" run) = Some 1)
            runs
        in
        if has_serial then Ok () else err "no serial (threads=1) run"
      in
      let* sp =
        match Json.member "speedup" doc with
        | Some (Json.Float f) -> Ok f
        | Some (Json.Int i) -> Ok (float_of_int i)
        | _ -> err "speedup missing"
      in
      let* () =
        if sp +. 1e-9 < min_speedup then
          err "speedup %.2fx below required %.2fx" sp min_speedup
        else Ok ()
      in
      (* instant-restart block: checkpoint-accelerated eager run (with
         the extra checkpoint phase) plus lazy TTFQ / TTFW *)
      match Json.member "instant" doc with
      | None | Some Json.Null ->
          if min_ttfq_speedup > 0. then
            err "min-ttfq-speedup set but no instant-restart measurement"
          else Ok ()
      | Some inst ->
          let* () =
            match Json.member "checkpoint_run" inst with
            | Some run -> check_run ~extra:[ ckpt_phase ] run
            | None -> err "instant without checkpoint_run"
          in
          let* ttfq =
            match Json.to_int (Json.member "ttfq_ns" inst) with
            | Some t when t > 0 -> Ok t
            | _ -> err "instant without positive ttfq_ns"
          in
          let* () =
            match Json.to_int (Json.member "ttfw_ns" inst) with
            | Some t when t >= ttfq -> Ok ()
            | Some _ -> err "ttfw_ns below ttfq_ns"
            | None -> err "instant without ttfw_ns"
          in
          let* tsp =
            match Json.member "ttfq_speedup" inst with
            | Some (Json.Float f) -> Ok f
            | Some (Json.Int i) -> Ok (float_of_int i)
            | _ -> err "ttfq_speedup missing"
          in
          if tsp +. 1e-9 < min_ttfq_speedup then
            err "TTFQ speedup %.2fx below required %.2fx" tsp min_ttfq_speedup
          else Ok ()

let validate_file ?min_speedup ?min_ttfq_speedup path =
  let ic = open_in_bin path in
  let s =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  validate ?min_speedup ?min_ttfq_speedup s

let print_summary r =
  Printf.printf "crash-to-ready recovery (sf=%.2f, seed=%d):\n" r.cfg.sf
    r.cfg.seed;
  Printf.printf "  %-8s%14s%12s%12s%12s%12s%12s\n" "domains" "total sim-us"
    "pmdk_log" "tables" "dict" "mvcc" "indexes";
  List.iter
    (fun (rep : Recovery.report) ->
      let phase_us name =
        match
          List.find_opt (fun p -> p.Recovery.ph_name = name) rep.Recovery.r_phases
        with
        | Some p -> float_of_int p.Recovery.ph_ns /. 1e3
        | None -> 0.
      in
      Printf.printf "  %-8d%14.1f%12.1f%12.1f%12.1f%12.1f%12.1f\n"
        rep.Recovery.r_threads
        (float_of_int rep.Recovery.r_total_ns /. 1e3)
        (phase_us "pmdk_log") (phase_us "tables") (phase_us "dict")
        (phase_us "mvcc") (phase_us "indexes"))
    r.runs;
  Printf.printf "  speedup (serial / best parallel): %.2fx\n" r.speedup;
  (match r.instant with
  | None -> ()
  | Some l ->
      let phase_us (rep : Recovery.report) name =
        match
          List.find_opt (fun p -> p.Recovery.ph_name = name) rep.Recovery.r_phases
        with
        | Some p -> float_of_int p.Recovery.ph_ns /. 1e3
        | None -> 0.
      in
      Printf.printf
        "  with checkpoint (serial eager): %.1f sim-us total (checkpoint \
         load %.1f, tables %.1f, dict %.1f, indexes %.1f)\n"
        (float_of_int l.ckpt_run.Recovery.r_total_ns /. 1e3)
        (phase_us l.ckpt_run "checkpoint")
        (phase_us l.ckpt_run "tables")
        (phase_us l.ckpt_run "dict")
        (phase_us l.ckpt_run "indexes");
      Printf.printf
        "  lazy instant restart: time-to-first-query %.1f sim-us, \
         time-to-fully-warm %.1f sim-us (TTFQ %.1fx under serial full \
         rebuild)\n"
        (float_of_int l.ttfq_ns /. 1e3)
        (float_of_int l.ttfw_ns /. 1e3)
        l.ttfq_speedup);
  match r.battery with
  | None -> ()
  | Some b ->
      Printf.printf
        "  battery: %d crash points (%d fired) over a %d-store / %d-clwb / \
         %d-sfence trace (checkpoint mid-mix), domain counts %s + lazy: \
         all recoveries equivalent\n"
        b.points b.fired b.trace_stores b.trace_flushes b.trace_fences
        (String.concat "," (List.map string_of_int b.domain_counts))
