(** Snapshot-consistent analytics benchmark (BENCH_analytics.json).

    Seeds an SNB dataset at the configured scale factor, then for each
    domain count exports a CSR snapshot and runs the three kernels,
    timing each stage on the per-domain media meters (coordinator delta
    + max worker delta — parallel-schedule elapsed, not busy-time sum).
    Asserts the determinism and correctness contracts along the way:
    export fingerprints and kernel outputs must be identical across
    domain counts, kernels must match their serial references, and a
    CSR export racing an IU1-IU8 writer storm must equal a quiesced
    re-export under the same transaction (the snapshot claim).  Emits
    schema [poseidon/analytics/v1]. *)

type config = {
  sf : float;
  seed : int;
  threads : int list;  (** domain counts to measure; must include 1 *)
  pr_eps : float;  (** PageRank L1-residual convergence threshold *)
  pr_max_iters : int;
  storm_writers : int;  (** writer domains in the snapshot drill *)
}

val default_config : config

type export_row = { e_domains : int; e_ns : int }

type kernel_row = {
  k_kernel : string;  (** bfs / pagerank / wcc *)
  k_domains : int;
  k_ns : int;
  k_edges : int;  (** edges processed across all rounds *)
  k_edges_per_s : float;  (** on the simulated clock *)
  k_iterations : int;  (** rounds (BFS/WCC) or iterations (PageRank) *)
}

type storm_result = {
  st_commits : int;  (** IU commits overlapping the export *)
  st_aborts : int;
  st_equal : bool;  (** storm export == quiesced re-export, same txn *)
  st_fingerprint : int;
}

type result = {
  cfg : config;
  nodes : int;
  rels : int;
  csr_n : int;
  csr_m : int;
  fingerprint : int;
  fingerprints_equal : bool;  (** across all domain counts *)
  exports : export_row list;
  kernels : kernel_row list;
  pr_iterations : int;
  pr_residual : float;
  bfs_rounds : int;
  wcc_rounds : int;
  components : int;
  diff_ok : bool;  (** parallel == serial reference differentials *)
  max_rank_delta : float;  (** parallel PageRank vs serial reference *)
  export_speedup : float;  (** serial ns / highest-domain ns *)
  bfs_speedup : float;
  pagerank_speedup : float;
  wcc_speedup : float;
  storm : storm_result;
}

exception Battery_failure of string

val run : config -> result
(** @raise Battery_failure when a determinism or snapshot assertion
    fails (fingerprint divergence, kernel mismatch, storm export
    diverging from the quiesced copy). *)

val to_json : result -> string
val write_json : string -> result -> unit

val validate :
  ?min_kernel_speedup:float -> string -> (unit, string) Stdlib.result
(** Validate a BENCH_analytics.json document: schema tag, an export row
    and all three kernel rows per configured domain count with positive
    timings, green differential/fingerprint/storm flags, nonzero storm
    commits and convergence counts.  [min_kernel_speedup] additionally
    gates the highest-domain PageRank {e and} BFS speedups. *)

val validate_file :
  ?min_kernel_speedup:float -> string -> (unit, string) Stdlib.result

val print_summary : result -> unit
