(** Crash-to-ready recovery benchmark: a serial-vs-parallel latency
    table for {!Core.reopen} (per-phase breakdown from
    {!Recovery.report}), an optional instant-restart measurement
    (checkpoint-accelerated eager recovery plus lazy time-to-first-query
    and time-to-fully-warm) and a randomized crash-point battery — with
    a checkpoint taken mid-mix, so sampled cuts also land inside the
    checkpoint write — asserting that recovery at every domain count and
    in lazy mode rebuilds identical volatile state.  Results are emitted
    as BENCH_recovery.json (schema v2). *)

type config = {
  sf : float;  (** scale factor of the latency-table dataset *)
  seed : int;
  threads : int list;  (** domain counts to measure; must include 1 *)
  battery_points : int;  (** sampled crash points; 0 disables the battery *)
  battery_sf : float;  (** scale factor of the battery drill dataset *)
  min_speedup : float;  (** required serial/parallel ratio; 0 disables *)
  measure_lazy : bool;
      (** also measure checkpointed eager recovery and lazy instant
          restart (TTFQ / TTFW) *)
  min_ttfq_speedup : float;
      (** required (serial full rebuild / TTFQ) ratio; 0 disables *)
}

val default_config : config

type battery_result = {
  points : int;
  fired : int;  (** plans whose crash point actually cut power *)
  domain_counts : int list;
  modes : string list;  (** recovery modes exercised per point *)
  trace_stores : int;
  trace_flushes : int;
  trace_fences : int;
}

type instant_result = {
  ckpt_run : Recovery.report;
      (** serial eager recovery accelerated by a fresh checkpoint *)
  ttfq_ns : int;  (** lazy restart: simulated time to first query *)
  ttfw_ns : int;  (** lazy restart: simulated time to fully warm *)
  ttfq_speedup : float;  (** serial full rebuild / TTFQ *)
}

type result = {
  cfg : config;
  runs : Recovery.report list;  (** one per [cfg.threads] entry, in order *)
  speedup : float;
      (** serial crash-to-ready latency over the best parallel one *)
  instant : instant_result option;
  battery : battery_result option;
}

exception Battery_failure of string
(** A sampled crash point violated the oracle, or two recovery
    strategies rebuilt different state. *)

val run : config -> result
(** Raises {!Battery_failure} on the first violated crash point; the
    speedups themselves are reported, not enforced (see {!validate}). *)

val to_json : result -> string
val write_json : string -> result -> unit

val validate :
  ?min_speedup:float ->
  ?min_ttfq_speedup:float ->
  string ->
  (unit, string) Stdlib.result
(** Validate an emitted BENCH_recovery.json document: parses, has a
    serial run, every run carries all five base recovery phases (the
    checkpointed run additionally the [checkpoint] phase) with timings
    summing to its total, the parallel speedup reaches [min_speedup],
    and — when the instant block is present — TTFQ is positive,
    TTFW >= TTFQ and the TTFQ speedup reaches [min_ttfq_speedup]. *)

val validate_file :
  ?min_speedup:float ->
  ?min_ttfq_speedup:float ->
  string ->
  (unit, string) Stdlib.result

val print_summary : result -> unit
