(** Crash-to-ready recovery benchmark: a serial-vs-parallel latency
    table for {!Core.reopen} (per-phase breakdown from
    {!Recovery.report}) plus a randomized crash-point battery asserting
    that recovery at every domain count rebuilds identical volatile
    state.  Results are emitted as BENCH_recovery.json. *)

type config = {
  sf : float;  (** scale factor of the latency-table dataset *)
  seed : int;
  threads : int list;  (** domain counts to measure; must include 1 *)
  battery_points : int;  (** sampled crash points; 0 disables the battery *)
  battery_sf : float;  (** scale factor of the battery drill dataset *)
  min_speedup : float;  (** required serial/parallel ratio; 0 disables *)
}

val default_config : config

type battery_result = {
  points : int;
  fired : int;  (** plans whose crash point actually cut power *)
  domain_counts : int list;
  trace_stores : int;
  trace_flushes : int;
  trace_fences : int;
}

type result = {
  cfg : config;
  runs : Recovery.report list;  (** one per [cfg.threads] entry, in order *)
  speedup : float;
      (** serial crash-to-ready latency over the best parallel one *)
  battery : battery_result option;
}

exception Battery_failure of string
(** A sampled crash point violated the oracle, or two domain counts
    rebuilt different state. *)

val run : config -> result
(** Raises {!Battery_failure} on the first violated crash point; the
    speedup itself is reported, not enforced (see {!validate}). *)

val to_json : result -> string
val write_json : string -> result -> unit

val validate : ?min_speedup:float -> string -> (unit, string) Stdlib.result
(** Validate an emitted BENCH_recovery.json document: parses, has a
    serial run, every run carries all five recovery phases with timings
    summing to its total, and the speedup reaches [min_speedup]. *)

val validate_file :
  ?min_speedup:float -> string -> (unit, string) Stdlib.result

val print_summary : result -> unit
