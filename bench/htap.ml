(* Concurrent HTAP workload driver - the paper's headline claim (Sections
   5-8): MVTO transactional updates running concurrently with
   morsel-parallel analytic reads on (simulated) persistent memory.

   N writer domains issue LDBC-SNB interactive updates (IU1..IU8, plus a
   read-modify-write counter transaction that provokes write-write
   conflicts) through [Core.with_txn_retry]; M reader domains run the
   interactive short reads, IC-style complex reads and morsel-parallel
   aggregation probes over the database's shared [Exec.Task_pool].  The
   run length is measured on the simulated media clock, so results are
   reproducible across machines.

   The driver doubles as the snapshot-isolation stress harness:
   - lost updates: the counter's final value must equal the number of
     committed increments;
   - monotone reads: per-reader aggregate totals must never decrease
     across snapshots;
   - conservation: per-label node counts and the relationship count must
     grow by exactly the committed update mix (each update plan's
     CreateNode/CreateRel population is derived from the plan itself).

   Results are emitted as machine-readable JSON (BENCH_htap.json); a
   minimal JSON parser/validator lives here too so CI can smoke-test the
   output without external dependencies. *)

module Media = Pmem.Media
module Value = Storage.Value
module A = Query.Algebra
module E = Query.Expr
module Engine = Jit.Engine
module SR = Snb.Short_reads
module CR = Snb.Complex_reads
module IU = Snb.Updates
module Mvto = Mvcc.Mvto

(* --- Minimal JSON ---------------------------------------------------------- *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  let escape b s =
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | '\t' -> Buffer.add_string b "\\t"
        | '\r' -> Buffer.add_string b "\\r"
        | c when Char.code c < 0x20 ->
            Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s

  let to_string t =
    let b = Buffer.create 1024 in
    let pad n = Buffer.add_string b (String.make n ' ') in
    let rec emit ind = function
      | Null -> Buffer.add_string b "null"
      | Bool v -> Buffer.add_string b (if v then "true" else "false")
      | Int i -> Buffer.add_string b (string_of_int i)
      | Float f ->
          if Float.is_integer f && Float.abs f < 1e15 then
            Buffer.add_string b (Printf.sprintf "%.1f" f)
          else Buffer.add_string b (Printf.sprintf "%.6g" f)
      | Str s ->
          Buffer.add_char b '"';
          escape b s;
          Buffer.add_char b '"'
      | List [] -> Buffer.add_string b "[]"
      | List items ->
          Buffer.add_string b "[";
          List.iteri
            (fun i item ->
              if i > 0 then Buffer.add_string b ", ";
              emit ind item)
            items;
          Buffer.add_string b "]"
      | Obj [] -> Buffer.add_string b "{}"
      | Obj kvs ->
          Buffer.add_string b "{\n";
          List.iteri
            (fun i (k, v) ->
              if i > 0 then Buffer.add_string b ",\n";
              pad (ind + 2);
              Buffer.add_char b '"';
              escape b k;
              Buffer.add_string b "\": ";
              emit (ind + 2) v)
            kvs;
          Buffer.add_char b '\n';
          pad ind;
          Buffer.add_char b '}'
    in
    emit 0 t;
    Buffer.add_char b '\n';
    Buffer.contents b

  exception Parse_error of string

  let parse (s : string) : t =
    let n = String.length s in
    let pos = ref 0 in
    let fail msg = raise (Parse_error (Printf.sprintf "%s at %d" msg !pos)) in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = incr pos in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') ->
          advance ();
          skip_ws ()
      | _ -> ()
    in
    let expect c =
      if peek () = Some c then advance ()
      else fail (Printf.sprintf "expected '%c'" c)
    in
    let literal word v =
      if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
      then begin
        pos := !pos + String.length word;
        v
      end
      else fail ("expected " ^ word)
    in
    let parse_string () =
      expect '"';
      let b = Buffer.create 16 in
      let rec go () =
        if !pos >= n then fail "unterminated string";
        let c = s.[!pos] in
        advance ();
        match c with
        | '"' -> Buffer.contents b
        | '\\' -> (
            if !pos >= n then fail "unterminated escape";
            let e = s.[!pos] in
            advance ();
            match e with
            | '"' | '\\' | '/' ->
                Buffer.add_char b e;
                go ()
            | 'n' ->
                Buffer.add_char b '\n';
                go ()
            | 't' ->
                Buffer.add_char b '\t';
                go ()
            | 'r' ->
                Buffer.add_char b '\r';
                go ()
            | 'b' ->
                Buffer.add_char b '\b';
                go ()
            | 'f' ->
                Buffer.add_char b '\012';
                go ()
            | 'u' ->
                if !pos + 4 > n then fail "bad \\u escape";
                let code = int_of_string ("0x" ^ String.sub s !pos 4) in
                pos := !pos + 4;
                (* BMP only; enough for our own output *)
                if code < 0x80 then Buffer.add_char b (Char.chr code)
                else Buffer.add_char b '?';
                go ()
            | _ -> fail "bad escape")
        | c ->
            Buffer.add_char b c;
            go ()
      in
      go ()
    in
    let parse_number () =
      let start = !pos in
      let is_num_char c =
        match c with
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while !pos < n && is_num_char s.[!pos] do
        advance ()
      done;
      let tok = String.sub s start (!pos - start) in
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> (
          match float_of_string_opt tok with
          | Some f -> Float f
          | None -> fail ("bad number " ^ tok))
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | Some '{' ->
          advance ();
          skip_ws ();
          if peek () = Some '}' then begin
            advance ();
            Obj []
          end
          else
            let rec members acc =
              skip_ws ();
              let k = parse_string () in
              skip_ws ();
              expect ':';
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  advance ();
                  members ((k, v) :: acc)
              | Some '}' ->
                  advance ();
                  Obj (List.rev ((k, v) :: acc))
              | _ -> fail "expected ',' or '}'"
            in
            members []
      | Some '[' ->
          advance ();
          skip_ws ();
          if peek () = Some ']' then begin
            advance ();
            List []
          end
          else
            let rec items acc =
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  advance ();
                  items (v :: acc)
              | Some ']' ->
                  advance ();
                  List (List.rev (v :: acc))
              | _ -> fail "expected ',' or ']'"
            in
            items []
      | Some '"' -> Str (parse_string ())
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some _ -> parse_number ()
      | None -> fail "unexpected end of input"
    in
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v

  let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None

  let path t keys =
    List.fold_left (fun acc k -> Option.bind acc (member k)) (Some t) keys

  let to_int = function
    | Some (Int i) -> Some i
    | Some (Float f) -> Some (int_of_float f)
    | _ -> None
end

(* --- Configuration and result ---------------------------------------------- *)

type config = {
  sf : float;
  writers : int;
  readers : int;
  duration_ms : float; (* simulated milliseconds on the media clock *)
  seed : int;
  mode : Engine.mode; (* execution mode for queries and update plans *)
  storage : [ `Dram | `Pmem ];
  pool_workers : int; (* shared morsel pool size; <= 1 disables *)
  profile : bool; (* post-run per-operator interp-vs-jit profile *)
}

let default_config =
  {
    sf = 0.05;
    writers = 2;
    readers = 2;
    duration_ms = 20.;
    seed = 7;
    mode = Engine.Jit;
    storage = `Pmem;
    pool_workers = 2;
    profile = false;
  }

type class_stats = {
  cls : string;
  ops : int;
  p50_ns : int;
  p95_ns : int;
  p99_ns : int;
  max_ns : int;
}

(* Per-operator interp-vs-jit comparison of one analytic plan, recorded
   on the quiesced database after the concurrent phase; rows are in
   preorder-id order and tuple counts must agree between the engines. *)
type plan_profile = {
  p_name : string;
  p_interp : Obs.Profile.row list;
  p_jit : Obs.Profile.row list;
}

(* One row of the Fig. 10 reproduction: the analytic probes executed on
   the quiesced database at a fixed worker-domain count, per tier.
   Values are simulated ns per probe execution on the global media
   clock (parallel tiers are normalised per worker at comparison time,
   matching the harness's Fig. 10 convention).  The jit column is
   steady state: compilation and replay capture happen in a warm-up run
   outside the measurement window, so every measured execution is
   served by the capture/replay tier. *)
type fig10_row = {
  f_domains : int;
  f_aot_serial_ns : int; (* serial interpreter *)
  f_interp_par_ns : int; (* interpreter over the morsel pool *)
  f_jit_par_ns : int; (* compiled-parallel, replay steady state *)
  f_adaptive_ns : int; (* adaptive (replay-served once compiled) *)
  f_replay_hits : int; (* replay-tier hits during the jit/adaptive runs *)
}

type result = {
  cfg : config;
  sim_elapsed_ns : int;
  committed_updates : int; (* IU commits + counter commits *)
  failed_updates : int;
  updates_by_query : (string * int) list;
  counter_commits : int;
  analytic_reads : int;
  read_rows : int;
  read_aborts : int;
  classes : class_stats list;
  commits : int;
  aborts : int;
  retries : int;
  media_reads : int;
  media_writes : int;
  media_flushes : int;
  media_fences : int;
  media_bytes_read : int;
  media_bytes_written : int;
  jit_cache_hits : int;
  jit_cached_plans : int;
  monotone_violations : int;
  counter_lost : int;
  conservation_failures : int;
  (* registry-sourced deltas (metrics subsystem, not the raw media
     counters): media flush/fence traffic, the MVTO abort taxonomy and
     the compiled-query cache counters over the concurrent phase *)
  reg_flushes : int;
  reg_fences : int;
  abort_taxonomy : (string * int) list;
  reg_jit_hits : int;
  reg_jit_misses : int;
  reg_jit_stores : int;
  (* per-tier JIT metrics: replay hits and parallel compiled morsels
     over the concurrent phase, modeled compile ns over the whole run
     (including the Fig. 10 warm-ups, so it is nonzero in every mode) *)
  reg_replay_hits : int;
  reg_parallel_morsels : int;
  reg_compile_ns : int;
  fig10 : fig10_row list; (* quiesced per-tier comparison, see above *)
  profiles : plan_profile list; (* nonempty iff [cfg.profile] *)
  metrics_prom : string; (* Prometheus exposition of the final registry *)
}

let si_violations r =
  r.monotone_violations + r.counter_lost + r.conservation_failures

let per_sim_second count ns =
  if ns <= 0 then 0. else float_of_int count *. 1e9 /. float_of_int ns

(* Latency percentiles from a registry histogram's merged snapshot:
   nearest-rank over log buckets (<= 25% relative error, monotone),
   replacing the full-retention per-domain latency lists this driver
   used to sort after the run. *)
let mk_class_stats cls hist =
  let s = Obs.Histogram.snapshot hist in
  {
    cls;
    ops = s.Obs.Histogram.count;
    p50_ns = Obs.Histogram.quantile s 0.5;
    p95_ns = Obs.Histogram.quantile s 0.95;
    p99_ns = Obs.Histogram.quantile s 0.99;
    max_ns = s.Obs.Histogram.max_;
  }

(* CreateRel population of an update plan: how many relationships one
   committed execution inserts (every IU pipeline produces exactly one
   tuple per operator level: index lookups are on unique ids). *)
let count_create_rels plan =
  let rec go acc = function
    | A.CreateRel { child; _ } -> go (acc + 1) child
    | A.NodeScan _ | A.NodeById _ | A.RelScan _ | A.IndexScan _
    | A.IndexRange _ | A.Unit ->
        acc
    | A.Expand { child; _ }
    | A.EndPoint { child; _ }
    | A.WalkToRoot { child; _ }
    | A.AttachByIndex { child; _ }
    | A.Filter { child; _ }
    | A.Project { child; _ }
    | A.Limit { child; _ }
    | A.Sort { child; _ }
    | A.Distinct { child }
    | A.CountAgg { child }
    | A.GroupCount { child }
    | A.CreateNode { child; _ }
    | A.SetNodeProp { child; _ }
    | A.SetRelProp { child; _ }
    | A.DeleteNode { child; _ }
    | A.DeleteRel { child; _ } ->
        go acc child
    | A.NestedLoopJoin { left; right; _ } | A.HashJoin { left; right; _ } ->
        go (go acc left) right
  in
  go 0 plan

(* --- Per-domain outputs ----------------------------------------------------- *)

type writer_out = {
  w_committed : int array; (* per IU spec *)
  w_counter : int;
  w_failed : int;
  w_hits : int;
}

type reader_out = {
  r_reads : int;
  r_rows : int;
  r_hits : int;
  r_mono : int;
  r_aborts : int;
}

(* --- The driver -------------------------------------------------------------- *)

(* Every worker's RNG stream is a pure function of (seed, role, worker
   ordinal): a run is replayable from its config alone, and any failure
   report can name the seed that reproduces it. *)
let writer_rng ~seed k = Random.State.make [| seed; 101 * (k + 1) |]
let reader_rng ~seed k = Random.State.make [| seed; 211 * (k + 1) |]

let run (cfg : config) : result =
  let db =
    Core.create ~mode:cfg.storage ~pool_size:(1 lsl 27) ~chunk_capacity:256 ()
  in
  let ds =
    Snb.Gen.generate
      ~params:{ Snb.Gen.default_params with sf = cfg.sf; seed = cfg.seed }
      (Core.store db)
  in
  List.iter
    (fun l -> ignore (Core.create_index db ~label:l ~prop:"id" ()))
    [ "Person"; "Post"; "Comment"; "Forum"; "Place"; "Tag" ];
  if cfg.pool_workers > 1 then Core.set_workers db cfg.pool_workers;
  let parallel = cfg.pool_workers > 1 in
  let sc = ds.Snb.Gen.schema in
  let ecfg = { Engine.default_config with prop_tag = Snb.Schema.prop_tag sc } in
  let media = Core.media db in
  let cache = Core.jit_cache db in
  (* seed node for the classic lost-update probe *)
  let counter =
    Core.with_txn db (fun txn ->
        Core.create_node db txn ~label:"Counter" ~props:[ ("v", Value.Int 0) ])
  in
  let specs = Array.of_list IU.all in
  let nspecs = Array.length specs in
  let created_labels =
    Array.map (fun s -> Option.map (fun f -> f sc) s.IU.creates) specs
  in
  let rel_creates = Array.map (fun s -> count_create_rels (s.IU.plan sc)) specs in
  let count_plan label = A.CountAgg { child = A.NodeScan { label = Some label } } in
  let count_label label =
    match Core.query db ~params:[||] (count_plan label) with
    | [ [| Value.Int n |] ], _ -> n
    | _ -> -1
  in
  let count_rels () =
    match Core.query db ~params:[||] (A.CountAgg { child = A.RelScan { label = None } }) with
    | [ [| Value.Int n |] ], _ -> n
    | _ -> -1
  in
  let watched_labels =
    List.sort_uniq compare
      (List.filter_map Fun.id (Array.to_list created_labels))
  in
  let init_label_counts = List.map (fun l -> (l, count_label l)) watched_labels in
  let init_rels = count_rels () in
  (* baselines: the stats records are mutable and shared, snapshot fields *)
  let t0 = Core.txn_stats db in
  let base_commits = t0.Mvto.commits
  and base_aborts = t0.Mvto.aborts
  and base_retries = t0.Mvto.retries in
  let m0 = Media.stats media in
  let base_reads = m0.Media.reads
  and base_writes = m0.Media.writes
  and base_flushes = m0.Media.flushes
  and base_fences = m0.Media.fences
  and base_bytes_read = m0.Media.bytes_read
  and base_bytes_written = m0.Media.bytes_written in
  (* registry-side baselines: same instants, read through the metrics
     subsystem so the emitted deltas exercise it end to end *)
  let reg = Media.registry media in
  let mval ?labels name =
    Option.value ~default:0 (Obs.Metrics.value reg ?labels name)
  in
  let taxonomy = [ "validation"; "transient"; "fatal"; "user" ] in
  let tax_val c = mval ~labels:[ ("class", c) ] "mvto_txn_aborts_total" in
  let base_tax = List.map (fun c -> (c, tax_val c)) taxonomy in
  let base_reg_flushes = mval "pmem_media_flushes_total"
  and base_reg_fences = mval "pmem_media_fences_total"
  and base_jit_hits = mval "jit_cache_hits_total"
  and base_jit_misses = mval "jit_cache_misses_total"
  and base_jit_stores = mval "jit_cache_store_total"
  and base_replay_hits = mval "jit_replay_hits_total"
  and base_parallel_morsels = mval "jit_parallel_morsels_total" in
  let compile_ns_sum () =
    (Obs.Histogram.snapshot (Obs.Metrics.histogram reg "jit_compile_ns"))
      .Obs.Histogram.sum
  in
  let base_compile_ns = compile_ns_sum () in
  (* shared latency histograms: one family, labelled by workload class;
     each domain records into its own shard, merged on snapshot *)
  let lat_hist cls =
    Obs.Metrics.histogram reg
      ~labels:[ ("class", cls) ]
      ~help:"operation latency by workload class (sim ns)" "htap_latency_ns"
  in
  let h_update = lat_hist "update"
  and h_sr = lat_hist "short_read"
  and h_cr = lat_hist "complex_read"
  and h_probe = lat_hist "agg_probe" in
  let duration_ns = int_of_float (cfg.duration_ms *. 1e6) in
  let c0 = Media.clock media in
  let stop () = Media.clock media - c0 >= duration_ns in
  (* [draw]s share the id context so concurrent writers never mint the
     same LDBC id; the drawing itself is cheap next to plan execution *)
  let draw_mu = Mutex.create () in
  let locked f =
    Mutex.lock draw_mu;
    Fun.protect ~finally:(fun () -> Mutex.unlock draw_mu) f
  in
  let ctx = IU.make_ctx () in
  (* analytic probes exercising the parallel-aggregation breakers *)
  let person_count_plan = count_plan sc.Snb.Schema.person in
  let gender_groups_plan =
    A.GroupCount
      {
        child =
          A.Project
            {
              exprs =
                [ E.Prop { col = 0; kind = E.KNode; key = sc.Snb.Schema.k_gender } ];
              child = A.NodeScan { label = Some sc.Snb.Schema.person };
            };
      }
  in
  let writer k () =
    let rng = writer_rng ~seed:cfg.seed k in
    let committed = Array.make nspecs 0 in
    let counter_commits = ref 0 in
    let failed = ref 0 in
    let hits = ref 0 in
    let i = ref 0 in
    while not (stop ()) do
      incr i;
      let op0 = Media.clock media in
      (try
         if !i mod 4 = 0 then begin
           (* read-modify-write on the shared counter: the canonical
              lost-update shape; conflicts are absorbed by the retry loop *)
           Core.with_txn_retry ~rng db (fun txn ->
               let v =
                 match Core.node_prop db txn counter ~key:"v" with
                 | Some (Value.Int v) -> v
                 | _ -> 0
               in
               Core.set_node_prop db txn counter ~key:"v" (Value.Int (v + 1)));
           incr counter_commits
         end
         else begin
           let si, params =
             locked (fun () ->
                 let si = Random.State.int rng nspecs in
                 (si, specs.(si).IU.draw ds rng ctx))
           in
           let report =
             Core.with_txn_retry ~rng db (fun txn ->
                 let _, report =
                   Engine.run ~cache ~media ~config:ecfg ~mode:cfg.mode
                     (Core.source db txn) ~params
                     (specs.(si).IU.plan sc)
                 in
                 report)
           in
           if report.Engine.cache_hit then incr hits;
           committed.(si) <- committed.(si) + 1
         end
       with Core.Abort _ -> incr failed);
      Obs.Histogram.observe h_update (Media.clock media - op0)
    done;
    {
      w_committed = committed;
      w_counter = !counter_commits;
      w_failed = !failed;
      w_hits = !hits;
    }
  in
  let reader k () =
    let rng = reader_rng ~seed:cfg.seed k in
    let sr_specs = Array.of_list (SR.all sc) in
    let cr_specs = Array.of_list (CR.all sc) in
    let reads = ref 0 and rows_total = ref 0 and hits = ref 0 in
    let mono = ref 0 and last_total = ref (-1) in
    let aborted = ref 0 in
    let i = ref 0 in
    let note_report (report : Engine.report) =
      if report.Engine.cache_hit then incr hits
    in
    while not (stop ()) do
      incr i;
      let op0 = Media.clock media in
      let cls = ref h_probe in
      (try
         if !i mod 4 = 0 then begin
           (* aggregation probe: runs morsel-parallel through the merged
              partial states; the total seen must be monotone across this
              reader's snapshots *)
           let plan =
             if !i mod 8 = 0 then gender_groups_plan else person_count_plan
           in
           let rows, report =
             Core.query db ~mode:cfg.mode ~config:ecfg ~parallel ~params:[||]
               plan
           in
           note_report report;
           let total =
             List.fold_left
               (fun acc row ->
                 match row.(Array.length row - 1) with
                 | Value.Int n -> acc + n
                 | _ -> acc)
               0 rows
           in
           if total < !last_total then incr mono;
           if total > !last_total then last_total := total;
           incr reads;
           rows_total := !rows_total + List.length rows
         end
         else if !i mod 4 = 2 && Array.length cr_specs > 0 then begin
           cls := h_cr;
           let spec = cr_specs.(Random.State.int rng (Array.length cr_specs)) in
           let params = CR.draw_params ds rng spec in
           let rows, report =
             Core.query db ~mode:cfg.mode ~config:ecfg ~parallel ~params
               (spec.CR.plan ~access:`Index)
           in
           note_report report;
           incr reads;
           rows_total := !rows_total + List.length rows
         end
         else begin
           cls := h_sr;
           let spec = sr_specs.(Random.State.int rng (Array.length sr_specs)) in
           let param = SR.draw_param ds rng spec in
           List.iter
             (fun plan ->
               let rows, report =
                 Core.query db ~mode:cfg.mode ~config:ecfg ~parallel
                   ~params:[| param |] plan
               in
               note_report report;
               rows_total := !rows_total + List.length rows)
             (spec.SR.plans ~access:`Index);
           incr reads
         end
       with Core.Abort _ ->
         (* a scan can hit a record locked by a committing writer; the
            transaction aborts and the reader simply moves on *)
         incr aborted);
      Obs.Histogram.observe !cls (Media.clock media - op0)
    done;
    {
      r_reads = !reads;
      r_rows = !rows_total;
      r_hits = !hits;
      r_mono = !mono;
      r_aborts = !aborted;
    }
  in
  let writer_domains = List.init cfg.writers (fun k -> Domain.spawn (writer k)) in
  let reader_domains = List.init cfg.readers (fun k -> Domain.spawn (reader k)) in
  let ws = List.map Domain.join writer_domains in
  let rs = List.map Domain.join reader_domains in
  let sim_elapsed_ns = Media.clock media - c0 in
  (* merge per-domain outputs *)
  let committed_per_spec = Array.make nspecs 0 in
  List.iter
    (fun w ->
      Array.iteri
        (fun i n -> committed_per_spec.(i) <- committed_per_spec.(i) + n)
        w.w_committed)
    ws;
  let sum f l = List.fold_left (fun acc x -> acc + f x) 0 l in
  let counter_commits = sum (fun w -> w.w_counter) ws in
  let failed_updates = sum (fun w -> w.w_failed) ws in
  let iu_commits = Array.fold_left ( + ) 0 committed_per_spec in
  let analytic_reads = sum (fun r -> r.r_reads) rs in
  let read_rows = sum (fun r -> r.r_rows) rs in
  let read_aborts = sum (fun r -> r.r_aborts) rs in
  let monotone_violations = sum (fun r -> r.r_mono) rs in
  let jit_cache_hits = sum (fun w -> w.w_hits) ws + sum (fun r -> r.r_hits) rs in
  (* snapshot-isolation invariants on the quiesced database *)
  let counter_final =
    Core.with_txn db (fun txn ->
        match Core.node_prop db txn counter ~key:"v" with
        | Some (Value.Int v) -> v
        | _ -> -1)
  in
  let counter_lost = abs (counter_commits - counter_final) in
  let expected_label_delta l =
    let acc = ref 0 in
    Array.iteri
      (fun i created ->
        if created = Some l then acc := !acc + committed_per_spec.(i))
      created_labels;
    !acc
  in
  let conservation_failures =
    List.fold_left
      (fun acc (l, init) ->
        if count_label l - init <> expected_label_delta l then acc + 1 else acc)
      0 init_label_counts
    +
    let expected_rels = ref 0 in
    Array.iteri
      (fun i n -> expected_rels := !expected_rels + (n * committed_per_spec.(i)))
      rel_creates;
    if count_rels () - init_rels <> !expected_rels then 1 else 0
  in
  let classes =
    [
      mk_class_stats "update" h_update;
      mk_class_stats "short_read" h_sr;
      mk_class_stats "complex_read" h_cr;
      mk_class_stats "agg_probe" h_probe;
    ]
  in
  let t1 = Core.txn_stats db in
  let m1 = Media.stats media in
  (* registry deltas for the concurrent phase, taken at the same point
     as the raw baselines above *)
  let abort_taxonomy =
    List.map (fun (c, b) -> (c, tax_val c - b)) base_tax
  in
  let reg_flushes = mval "pmem_media_flushes_total" - base_reg_flushes
  and reg_fences = mval "pmem_media_fences_total" - base_reg_fences
  and reg_jit_hits = mval "jit_cache_hits_total" - base_jit_hits
  and reg_jit_misses = mval "jit_cache_misses_total" - base_jit_misses
  and reg_jit_stores = mval "jit_cache_store_total" - base_jit_stores
  and reg_replay_hits = mval "jit_replay_hits_total" - base_replay_hits
  and reg_parallel_morsels =
    mval "jit_parallel_morsels_total" - base_parallel_morsels
  in
  (* per-operator interp-vs-jit profile of the analytic probes, on the
     quiesced database so both engines see the same snapshot *)
  let profile_plan name plan =
    let run_prof mode =
      let p =
        Obs.Profile.create ~tick:(fun () -> Media.clock media) (A.op_names plan)
      in
      ignore (Core.query db ~mode ~config:ecfg ~prof:p ~params:[||] plan);
      Obs.Profile.rows p
    in
    {
      p_name = name;
      p_interp = run_prof Engine.Interp;
      p_jit = run_prof Engine.Jit;
    }
  in
  let profiles =
    if not cfg.profile then []
    else
      [
        profile_plan "person_count" person_count_plan;
        profile_plan "gender_groups" gender_groups_plan;
      ]
  in
  (* Fig. 10 reproduction on the quiesced database: both analytic probes
     per tier at 1/2/4 worker domains.  Each tier gets one warm-up
     execution outside the window - for the jit tier that is where
     compilation runs and the replay entry is captured (keyed by plan
     fingerprint + degree), so the measured executions are pure
     capture/replay steady state; the adaptive tier then replay-hits the
     same entries.  Reported ns are global-clock deltas per probe
     execution, as in the harness's Fig. 10 bench. *)
  let fig10 =
    let probes = [ person_count_plan; gender_groups_plan ] in
    let reps = 3 in
    let measure mode =
      let go () =
        List.iter
          (fun plan ->
            ignore
              (Core.query db ~mode ~config:ecfg ~parallel:true ~params:[||]
                 plan))
          probes
      in
      go () (* warm-up: compile + replay capture, outside the window *);
      let t0 = Media.clock media in
      for _ = 1 to reps do
        go ()
      done;
      (Media.clock media - t0) / (reps * List.length probes)
    in
    Core.set_workers db 1 (* no pool: the serial-AOT baseline *);
    let aot_serial = measure Engine.Interp in
    List.map
      (fun d ->
        Core.set_workers db d;
        let interp_par = measure Engine.Interp in
        let rh0 = mval "jit_replay_hits_total" in
        let jit = measure Engine.Jit in
        let adaptive = measure Engine.Adaptive in
        {
          f_domains = d;
          f_aot_serial_ns = aot_serial;
          f_interp_par_ns = interp_par;
          f_jit_par_ns = jit;
          f_adaptive_ns = adaptive;
          f_replay_hits = mval "jit_replay_hits_total" - rh0;
        })
      [ 1; 2; 4 ]
  in
  let reg_compile_ns = compile_ns_sum () - base_compile_ns in
  let metrics_prom = Obs.Expo.to_prometheus (Obs.Metrics.snapshot reg) in
  let result =
    {
      cfg;
      sim_elapsed_ns;
      committed_updates = iu_commits + counter_commits;
      failed_updates;
      updates_by_query =
        Array.to_list
          (Array.mapi (fun i s -> (s.IU.name, committed_per_spec.(i))) specs);
      counter_commits;
      analytic_reads;
      read_rows;
      read_aborts;
      classes;
      commits = t1.Mvto.commits - base_commits;
      aborts = t1.Mvto.aborts - base_aborts;
      retries = t1.Mvto.retries - base_retries;
      media_reads = m1.Media.reads - base_reads;
      media_writes = m1.Media.writes - base_writes;
      media_flushes = m1.Media.flushes - base_flushes;
      media_fences = m1.Media.fences - base_fences;
      media_bytes_read = m1.Media.bytes_read - base_bytes_read;
      media_bytes_written = m1.Media.bytes_written - base_bytes_written;
      jit_cache_hits;
      jit_cached_plans = Jit.Cache.count cache;
      monotone_violations;
      counter_lost;
      conservation_failures;
      reg_flushes;
      reg_fences;
      abort_taxonomy;
      reg_jit_hits;
      reg_jit_misses;
      reg_jit_stores;
      reg_replay_hits;
      reg_parallel_morsels;
      reg_compile_ns;
      fig10;
      profiles;
      metrics_prom;
    }
  in
  Core.shutdown db;
  result

(* --- Reporting --------------------------------------------------------------- *)

let mode_name m = Fmt.to_to_string Engine.pp_mode m

let to_json (r : result) : string =
  let open Json in
  let class_json c =
    ( c.cls,
      Obj
        [
          ("ops", Int c.ops);
          ("p50", Int c.p50_ns);
          ("p95", Int c.p95_ns);
          ("p99", Int c.p99_ns);
          ("max", Int c.max_ns);
        ] )
  in
  let fig10_json f =
    Obj
      [
        ("domains", Int f.f_domains);
        ("aot_serial_ns", Int f.f_aot_serial_ns);
        ("interp_parallel_ns", Int f.f_interp_par_ns);
        ("jit_parallel_ns", Int f.f_jit_par_ns);
        ("adaptive_ns", Int f.f_adaptive_ns);
        ("replay_hits", Int f.f_replay_hits);
      ]
  in
  to_string
    (Obj
       ([
          ("bench", Str "htap");
          ("schema", Str "htap/v2");
         ( "config",
           Obj
             [
               ("sf", Float r.cfg.sf);
               ("writers", Int r.cfg.writers);
               ("readers", Int r.cfg.readers);
               ("duration_ms", Float r.cfg.duration_ms);
               ("seed", Int r.cfg.seed);
               ("mode", Str (mode_name r.cfg.mode));
               ( "storage",
                 Str (match r.cfg.storage with `Pmem -> "pmem" | `Dram -> "dram") );
               ("pool_workers", Int r.cfg.pool_workers);
             ] );
         ("sim_elapsed_ms", Float (float_of_int r.sim_elapsed_ns /. 1e6));
         ( "updates",
           Obj
             [
               ("committed", Int r.committed_updates);
               ("failed", Int r.failed_updates);
               ("counter_commits", Int r.counter_commits);
               ( "per_sim_second",
                 Float (per_sim_second r.committed_updates r.sim_elapsed_ns) );
               ( "by_query",
                 Obj (List.map (fun (k, v) -> (k, Int v)) r.updates_by_query) );
             ] );
         ( "reads",
           Obj
             [
               ("analytic", Int r.analytic_reads);
               ("rows", Int r.read_rows);
               ("aborted", Int r.read_aborts);
               ( "per_sim_second",
                 Float (per_sim_second r.analytic_reads r.sim_elapsed_ns) );
             ] );
         ("latency_ns", Obj (List.map class_json r.classes));
         ( "txn",
           Obj
             [
               ("commits", Int r.commits);
               ("aborts", Int r.aborts);
               ("retries", Int r.retries);
             ] );
         ( "media",
           Obj
             [
               ("reads", Int r.media_reads);
               ("writes", Int r.media_writes);
               ("flushes", Int r.media_flushes);
               ("fences", Int r.media_fences);
               ("bytes_read", Int r.media_bytes_read);
               ("bytes_written", Int r.media_bytes_written);
             ] );
         ( "jit",
           Obj
             [
               ("cache_hits", Int r.jit_cache_hits);
               ("cached_plans", Int r.jit_cached_plans);
             ] );
         ( "metrics",
           Obj
             [
               ("flushes_total", Int r.reg_flushes);
               ("fences_total", Int r.reg_fences);
               ( "aborts_by_class",
                 Obj (List.map (fun (c, n) -> (c, Int n)) r.abort_taxonomy) );
               ("jit_cache_hits_total", Int r.reg_jit_hits);
               ("jit_cache_misses_total", Int r.reg_jit_misses);
               ("jit_cache_store_total", Int r.reg_jit_stores);
               ("jit_replay_hits_total", Int r.reg_replay_hits);
               ("jit_parallel_morsels_total", Int r.reg_parallel_morsels);
               ("jit_compile_ns", Int r.reg_compile_ns);
             ] );
         ("fig10", List (List.map fig10_json r.fig10));
         ( "invariants",
           Obj
             [
               ("si_violations", Int (si_violations r));
               ("monotone_violations", Int r.monotone_violations);
               ("counter_lost_updates", Int r.counter_lost);
               ("conservation_failures", Int r.conservation_failures);
             ] );
        ]
       @
       if r.profiles = [] then []
       else
         [
           ( "profiles",
             List
               (List.map
                  (fun p ->
                    let row (x : Obs.Profile.row) =
                      Obj
                        [
                          ("id", Int x.Obs.Profile.id);
                          ("op", Str x.Obs.Profile.op);
                          ("tuples", Int x.Obs.Profile.tuples);
                          ("ticks_ns", Int x.Obs.Profile.ticks);
                        ]
                    in
                    Obj
                      [
                        ("plan", Str p.p_name);
                        ("interp", List (List.map row p.p_interp));
                        ("jit", List (List.map row p.p_jit));
                      ])
                  r.profiles) );
         ]))

let write_json path r =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_json r))

(* Schema validation of an emitted BENCH_htap.json (schema htap/v2);
   with [require_nonzero], also insist the smoke run did real concurrent
   work and that the capture/replay tier served the Fig. 10 steady
   state.  [min_adaptive_ratio] additionally gates the Fig. 10 rows at
   the highest domain count: per-worker adaptive throughput must be at
   least [ratio] x the serial-AOT throughput, and compiled-parallel must
   be at least as fast as interpreter-parallel. *)
let validate ?(require_nonzero = true) ?min_adaptive_ratio
    ?max_flushes_per_commit ?max_fences_per_commit (content : string) :
    (unit, string) Stdlib.result =
  match Json.parse content with
  | exception Json.Parse_error msg -> Error ("JSON parse error: " ^ msg)
  | j -> (
      let get keys = Json.to_int (Json.path j keys) in
      let fig10_int row k = Json.to_int (Json.member k row) in
      let fig10_keys =
        [
          "domains";
          "aot_serial_ns";
          "interp_parallel_ns";
          "jit_parallel_ns";
          "adaptive_ns";
          "replay_hits";
        ]
      in
      (* the Fig. 10 block: present, well-formed, replay-served in
         steady state, and (optionally) the throughput gates at the
         highest domain count *)
      let check_fig10 () =
        match Json.path j [ "fig10" ] with
        | Some (Json.List (_ :: _ as rows)) ->
            if
              List.exists
                (fun row ->
                  List.exists (fun k -> fig10_int row k = None) fig10_keys)
                rows
            then Error "fig10: row with missing fields"
            else
              let last = List.nth rows (List.length rows - 1) in
              let v k = Option.value ~default:0 (fig10_int last k) in
              let replay_total =
                List.fold_left
                  (fun acc row ->
                    acc + Option.value ~default:0 (fig10_int row "replay_hits"))
                  0 rows
              in
              if require_nonzero && replay_total <= 0 then
                Error "fig10: no replay-tier hits in steady state"
              else (
                match min_adaptive_ratio with
                | None -> Ok ()
                | Some ratio ->
                    let d = v "domains"
                    and aot = v "aot_serial_ns"
                    and interp = v "interp_parallel_ns"
                    and jit = v "jit_parallel_ns"
                    and adaptive = v "adaptive_ns" in
                    if aot <= 0 || adaptive <= 0 then
                      Error "fig10: nonpositive timings"
                    else if
                      (* per-worker throughput: d / adaptive_ns vs
                         1 / aot_serial_ns *)
                      float_of_int (d * aot) < ratio *. float_of_int adaptive
                    then
                      Error
                        (Printf.sprintf
                           "fig10: adaptive throughput below %.2fx serial \
                            AOT at %d domains (adaptive %d ns/probe vs aot \
                            %d ns/probe)"
                           ratio d adaptive aot)
                    else if jit > interp then
                      Error
                        (Printf.sprintf
                           "fig10: compiled-parallel slower than \
                            interpreter-parallel at %d domains (%d vs %d \
                            ns/probe)"
                           d jit interp)
                    else Ok ())
        | _ -> Error "fig10: missing or empty"
      in
      let check_class c =
        match (get [ "latency_ns"; c; "p50" ], get [ "latency_ns"; c; "p99" ]) with
        | Some p50, Some p99 when p50 <= p99 -> None
        | Some _, Some _ -> Some (c ^ ": p50 > p99")
        | _ -> Some (c ^ ": missing percentiles")
      in
      (* persist-discipline budget: media flushes / fences amortised per
         committed transaction must stay under the CI caps, so a
         regression that reintroduces per-store persists trips the smoke
         gate rather than only showing up in the nightly numbers *)
      let check_persist_budget () =
        let committed =
          Option.value ~default:0 (get [ "updates"; "committed" ])
        in
        if committed <= 0 then Ok ()
        else
          let gate cap name keys =
            match cap with
            | None -> Ok ()
            | Some cap ->
                let n = Option.value ~default:0 (get keys) in
                let per = float_of_int n /. float_of_int committed in
                if per <= cap then Ok ()
                else
                  Error
                    (Printf.sprintf
                       "%s per committed txn %.2f exceeds budget %.2f (%d \
                        over %d commits)"
                       name per cap n committed)
          in
          match
            gate max_flushes_per_commit "media flushes" [ "media"; "flushes" ]
          with
          | Error _ as e -> e
          | Ok () ->
              gate max_fences_per_commit "media fences" [ "media"; "fences" ]
      in
      let check_fig10 () =
        match check_persist_budget () with
        | Error _ as e -> e
        | Ok () -> check_fig10 ()
      in
      match Json.path j [ "bench" ] with
      | Some (Json.Str "htap") -> (
          let missing =
            List.filter_map
              (fun keys ->
                if get keys = None then Some (String.concat "." keys) else None)
              [
                [ "updates"; "committed" ];
                [ "reads"; "analytic" ];
                [ "txn"; "aborts" ];
                [ "txn"; "retries" ];
                [ "media"; "reads" ];
                [ "media"; "flushes" ];
                [ "jit"; "cache_hits" ];
                [ "metrics"; "flushes_total" ];
                [ "metrics"; "fences_total" ];
                [ "metrics"; "aborts_by_class"; "transient" ];
                [ "metrics"; "aborts_by_class"; "validation" ];
                [ "metrics"; "jit_cache_hits_total" ];
                [ "metrics"; "jit_cache_misses_total" ];
                [ "metrics"; "jit_replay_hits_total" ];
                [ "metrics"; "jit_parallel_morsels_total" ];
                [ "metrics"; "jit_compile_ns" ];
                [ "invariants"; "si_violations" ];
              ]
          in
          match missing with
          | _ :: _ -> Error ("missing fields: " ^ String.concat ", " missing)
          | [] -> (
              match
                List.filter_map check_class
                  [ "update"; "short_read"; "complex_read"; "agg_probe" ]
              with
              | err :: _ -> Error err
              | [] ->
                  if not require_nonzero then check_fig10 ()
                  else if Option.value ~default:0 (get [ "updates"; "committed" ]) <= 0
                  then Error "no committed updates"
                  else if Option.value ~default:0 (get [ "reads"; "analytic" ]) <= 0
                  then Error "no analytic reads"
                  else if
                    Option.value ~default:1
                      (get [ "invariants"; "si_violations" ])
                    <> 0
                  then Error "snapshot-isolation violations reported"
                  else check_fig10 ()))
      | _ -> Error "not a BENCH_htap document")

let validate_file ?require_nonzero ?min_adaptive_ratio ?max_flushes_per_commit
    ?max_fences_per_commit path =
  let ic = open_in_bin path in
  let content =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  validate ?require_nonzero ?min_adaptive_ratio ?max_flushes_per_commit
    ?max_fences_per_commit content

let print_summary (r : result) =
  Printf.printf
    "htap: sf=%.2f %dw/%dr mode=%s storage=%s, %.1f sim-ms elapsed\n"
    r.cfg.sf r.cfg.writers r.cfg.readers (mode_name r.cfg.mode)
    (match r.cfg.storage with `Pmem -> "pmem" | `Dram -> "dram")
    (float_of_int r.sim_elapsed_ns /. 1e6);
  Printf.printf
    "  updates   %6d committed (%d counter, %d failed), %.0f/sim-s\n"
    r.committed_updates r.counter_commits r.failed_updates
    (per_sim_second r.committed_updates r.sim_elapsed_ns);
  Printf.printf "  reads     %6d analytic (%d rows, %d aborted), %.0f/sim-s\n"
    r.analytic_reads r.read_rows r.read_aborts
    (per_sim_second r.analytic_reads r.sim_elapsed_ns);
  List.iter
    (fun c ->
      Printf.printf "  %-12s %6d ops  p50 %8d  p95 %8d  p99 %8d sim-ns\n" c.cls
        c.ops c.p50_ns c.p95_ns c.p99_ns)
    r.classes;
  Printf.printf "  txn       %d commits, %d aborts, %d retries\n" r.commits
    r.aborts r.retries;
  Printf.printf "  media     %d reads, %d writes, %d flushes, %d fences\n"
    r.media_reads r.media_writes r.media_flushes r.media_fences;
  Printf.printf "  jit       %d cache hits, %d cached plans\n" r.jit_cache_hits
    r.jit_cached_plans;
  Printf.printf
    "  tiers     %d replay hits, %d parallel morsels, %.2f sim-ms compiling\n"
    r.reg_replay_hits r.reg_parallel_morsels
    (float_of_int r.reg_compile_ns /. 1e6);
  if r.fig10 <> [] then begin
    Printf.printf "  fig10 (sim-ns per probe, quiesced)\n";
    Printf.printf "    %7s %12s %12s %12s %12s %7s\n" "domains" "aot-serial"
      "interp-par" "jit-par" "adaptive" "replay";
    List.iter
      (fun f ->
        Printf.printf "    %7d %12d %12d %12d %12d %7d\n" f.f_domains
          f.f_aot_serial_ns f.f_interp_par_ns f.f_jit_par_ns f.f_adaptive_ns
          f.f_replay_hits)
      r.fig10
  end;
  Printf.printf "  metrics   %d flushes, %d fences; aborts by class: %s\n"
    r.reg_flushes r.reg_fences
    (String.concat ", "
       (List.map (fun (c, n) -> Printf.sprintf "%s=%d" c n) r.abort_taxonomy));
  Printf.printf "  SI        %d violations (%d monotone, %d lost, %d conservation)\n"
    (si_violations r) r.monotone_violations r.counter_lost
    r.conservation_failures;
  List.iter
    (fun p ->
      Printf.printf "  profile %s (per-operator, aot vs jit):\n" p.p_name;
      Printf.printf "    %3s %-14s %12s %12s %14s %14s\n" "id" "operator"
        "tuples(aot)" "tuples(jit)" "ticks(aot)ns" "ticks(jit)ns";
      List.iter2
        (fun (a : Obs.Profile.row) (j : Obs.Profile.row) ->
          Printf.printf "    %3d %-14s %12d %12d %14d %14d%s\n" a.Obs.Profile.id
            a.Obs.Profile.op a.Obs.Profile.tuples j.Obs.Profile.tuples
            a.Obs.Profile.ticks j.Obs.Profile.ticks
            (if a.Obs.Profile.tuples <> j.Obs.Profile.tuples then
               "  <- MISMATCH"
             else ""))
        p.p_interp p.p_jit)
    r.profiles
