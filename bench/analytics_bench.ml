(* Snapshot-consistent analytics benchmark (analytics-bench).

   Stages:

   1. Seed an SNB dataset (sf >= 0.5 by default so chunk-directory and
      allocator behaviour at size is visible) and quiesce.

   2. For each domain count: export the CSR and run BFS / PageRank /
      WCC, timing each stage as coordinator-meter delta + max
      worker-meter delta.  Exports must be fingerprint-identical and
      kernel outputs bitwise-identical across domain counts (the
      fixed-morsel determinism contract); kernels must match their
      serial references (BFS levels and WCC labels exactly, PageRank
      within 1e-9).

   3. Snapshot drill: begin a transaction, let IU1-IU8 writer domains
      commit concurrently, export under the storm, stop the writers and
      re-export under the *same* transaction from the quiesced store.
      Both exports — and the pre-storm snapshot — must be structurally
      equal: analytics runs on a frozen snapshot while SNB writers keep
      committing.

   Results are emitted as BENCH_analytics.json (poseidon/analytics/v1). *)

module Json = Htap.Json
module Media = Pmem.Media
module Task_pool = Exec.Task_pool
module Value = Storage.Value
module Csr = Analytics.Csr
module Kernels = Analytics.Kernels
module Par = Analytics.Par
module IU = Snb.Updates

type config = {
  sf : float;
  seed : int;
  threads : int list;
  pr_eps : float;
  pr_max_iters : int;
  storm_writers : int;
}

let default_config =
  {
    sf = 0.5;
    seed = 42;
    threads = [ 1; 2; 4 ];
    pr_eps = 1e-8;
    pr_max_iters = 50;
    storm_writers = 2;
  }

type export_row = { e_domains : int; e_ns : int }

type kernel_row = {
  k_kernel : string;
  k_domains : int;
  k_ns : int;
  k_edges : int;
  k_edges_per_s : float;
  k_iterations : int;
}

type storm_result = {
  st_commits : int;
  st_aborts : int;
  st_equal : bool;
  st_fingerprint : int;
}

type result = {
  cfg : config;
  nodes : int;
  rels : int;
  csr_n : int;
  csr_m : int;
  fingerprint : int;
  fingerprints_equal : bool;
  exports : export_row list;
  kernels : kernel_row list;
  pr_iterations : int;
  pr_residual : float;
  bfs_rounds : int;
  wcc_rounds : int;
  components : int;
  diff_ok : bool;
  max_rank_delta : float;
  export_speedup : float;
  bfs_speedup : float;
  pagerank_speedup : float;
  wcc_speedup : float;
  storm : storm_result;
}

exception Battery_failure of string

let failf fmt = Printf.ksprintf (fun s -> raise (Battery_failure s)) fmt

let indexed_labels = [ "Person"; "Post"; "Comment"; "Forum"; "Place"; "Tag" ]

let edges_per_s edges ns =
  if ns <= 0 then 0. else float_of_int edges *. 1e9 /. float_of_int ns

(* --- measurement -------------------------------------------------------- *)

type run_outputs = {
  o_fp : int;
  o_levels : int array;
  o_ranks : float array;
  o_labels : int array;
}

let run cfg =
  if not (List.mem 1 cfg.threads) then failf "threads must include 1";
  let db = Core.create ~mode:`Pmem ~pool_size:(1 lsl 27) ~chunk_capacity:256 () in
  let ds =
    Snb.Gen.generate
      ~params:{ Snb.Gen.default_params with sf = cfg.sf; seed = cfg.seed }
      (Core.store db)
  in
  List.iter
    (fun l -> ignore (Core.create_index db ~label:l ~prop:"id" ()))
    indexed_labels;
  let media = Core.media db in
  let mgr = Core.mgr db in
  ignore (Media.install_meter media);
  let exports = ref [] and kernels = ref [] in
  let serial : run_outputs option ref = ref None in
  let stats = ref (0, 0., 0, 0, 0) in
  let max_rank_delta = ref 0. in
  let measure t =
    let pool =
      if t <= 1 then None else Some (Task_pool.create ~media ~nworkers:t ())
    in
    Fun.protect ~finally:(fun () -> Option.iter Task_pool.shutdown pool)
    @@ fun () ->
    let txn = Core.begin_txn db in
    let sw = Par.stopwatch media pool in
    let csr = Csr.export ?pool mgr txn in
    let e_ns = sw () in
    let source =
      match Csr.index_of_node csr ds.Snb.Gen.persons.(0) with
      | Some v -> v
      | None -> failf "first person missing from the CSR"
    in
    let time f =
      let sw = Par.stopwatch media pool in
      let r = f () in
      (r, sw ())
    in
    let bfs, bfs_ns = time (fun () -> Kernels.bfs ?pool media csr ~source) in
    let pr, pr_ns =
      time (fun () ->
          Kernels.pagerank ?pool ~eps:cfg.pr_eps ~max_iters:cfg.pr_max_iters
            media csr)
    in
    let wcc, wcc_ns = time (fun () -> Kernels.wcc ?pool media csr) in
    Core.commit db txn;
    exports := { e_domains = t; e_ns } :: !exports;
    let row name ns edges iters =
      kernels :=
        {
          k_kernel = name;
          k_domains = t;
          k_ns = ns;
          k_edges = edges;
          k_edges_per_s = edges_per_s edges ns;
          k_iterations = iters;
        }
        :: !kernels
    in
    row "bfs" bfs_ns bfs.Kernels.bfs_edges bfs.Kernels.bfs_rounds;
    row "pagerank" pr_ns pr.Kernels.pr_edges pr.Kernels.pr_iterations;
    row "wcc" wcc_ns wcc.Kernels.wcc_edges wcc.Kernels.wcc_rounds;
    let fp = Csr.fingerprint csr in
    (match !serial with
    | None ->
        (* serial run: check against the textbook references *)
        let ref_levels = Kernels.bfs_reference csr ~source in
        if ref_levels <> bfs.Kernels.levels then
          failf "serial BFS diverged from its reference";
        let ref_ranks, _ =
          Kernels.pagerank_reference ~eps:cfg.pr_eps
            ~max_iters:cfg.pr_max_iters csr
        in
        Array.iteri
          (fun v r ->
            max_rank_delta :=
              Float.max !max_rank_delta (abs_float (r -. pr.Kernels.ranks.(v))))
          ref_ranks;
        if !max_rank_delta > 1e-9 then
          failf "PageRank diverged from its reference by %g" !max_rank_delta;
        if Kernels.wcc_reference csr <> wcc.Kernels.labels then
          failf "WCC labels diverged from their reference";
        stats :=
          ( pr.Kernels.pr_iterations,
            pr.Kernels.pr_residual,
            bfs.Kernels.bfs_rounds,
            wcc.Kernels.wcc_rounds,
            wcc.Kernels.components );
        serial :=
          Some
            {
              o_fp = fp;
              o_levels = bfs.Kernels.levels;
              o_ranks = pr.Kernels.ranks;
              o_labels = wcc.Kernels.labels;
            }
    | Some s ->
        (* parallel runs must be bitwise-identical to the serial one *)
        if fp <> s.o_fp then failf "export fingerprint diverged at %d domains" t;
        if bfs.Kernels.levels <> s.o_levels then
          failf "BFS levels diverged at %d domains" t;
        if pr.Kernels.ranks <> s.o_ranks then
          failf "PageRank ranks diverged at %d domains" t;
        if wcc.Kernels.labels <> s.o_labels then
          failf "WCC labels diverged at %d domains" t);
    (csr, e_ns)
  in
  let first = ref None in
  List.iter
    (fun t ->
      let csr, _ = measure t in
      if !first = None then first := Some csr)
    cfg.threads;
  let csr = Option.get !first in
  let exports = List.rev !exports and kernels = List.rev !kernels in
  (* dataset stats before the storm mutates it, matching the exports *)
  let nodes = Core.node_count db and rels = Core.rel_count db in
  (* --- snapshot drill: export races an IU1-IU8 writer storm ------------- *)
  let storm =
    let sc = ds.Snb.Gen.schema in
    let specs = Array.of_list IU.all in
    let nspecs = Array.length specs in
    let ctx = IU.make_ctx () in
    let draw_mu = Mutex.create () in
    let stop = Atomic.make false in
    let writer k () =
      let rng = Random.State.make [| cfg.seed; 977 * (k + 1) |] in
      let committed = ref 0 and failed = ref 0 in
      while not (Atomic.get stop) do
        let si = Random.State.int rng nspecs in
        let params =
          Mutex.lock draw_mu;
          Fun.protect
            ~finally:(fun () -> Mutex.unlock draw_mu)
            (fun () -> specs.(si).IU.draw ds rng ctx)
        in
        try
          ignore (Core.execute_update db ~params (specs.(si).IU.plan sc));
          incr committed
        with Core.Abort _ -> incr failed
      done;
      (!committed, !failed)
    in
    let txn = Core.begin_txn db in
    let doms =
      List.init (max 1 cfg.storm_writers) (fun k -> Domain.spawn (writer k))
    in
    let under_storm =
      Fun.protect
        ~finally:(fun () -> Atomic.set stop true)
        (fun () -> Csr.export mgr txn)
    in
    let counts = List.map Domain.join doms in
    let commits = List.fold_left (fun a (c, _) -> a + c) 0 counts in
    let aborts = List.fold_left (fun a (_, f) -> a + f) 0 counts in
    let quiesced = Csr.export mgr txn in
    Core.commit db txn;
    let fp = Csr.fingerprint under_storm in
    let equal =
      Csr.equal under_storm quiesced && fp = Csr.fingerprint quiesced
    in
    if not equal then failf "storm export diverged from the quiesced copy";
    if fp <> Csr.fingerprint csr then
      failf "storm snapshot diverged from the pre-storm exports";
    { st_commits = commits; st_aborts = aborts; st_equal = equal;
      st_fingerprint = fp }
  in
  let ns_at t rows f =
    match List.find_opt (fun r -> f r = t) rows with
    | Some r -> r
    | None -> failf "missing row for %d domains" t
  in
  let tmax = List.fold_left max 1 cfg.threads in
  let speedup serial best = float_of_int serial /. float_of_int (max 1 best) in
  let export_speedup =
    speedup
      (ns_at 1 exports (fun r -> r.e_domains)).e_ns
      (ns_at tmax exports (fun r -> r.e_domains)).e_ns
  in
  let kspeed name =
    let rows = List.filter (fun r -> r.k_kernel = name) kernels in
    speedup
      (ns_at 1 rows (fun r -> r.k_domains)).k_ns
      (ns_at tmax rows (fun r -> r.k_domains)).k_ns
  in
  let pr_iterations, pr_residual, bfs_rounds, wcc_rounds, components = !stats in
  Core.shutdown db;
  {
    cfg;
    nodes;
    rels;
    csr_n = csr.Csr.n;
    csr_m = csr.Csr.m;
    fingerprint = Csr.fingerprint csr;
    fingerprints_equal = true;
    exports;
    kernels;
    pr_iterations;
    pr_residual;
    bfs_rounds;
    wcc_rounds;
    components;
    diff_ok = true;
    max_rank_delta = !max_rank_delta;
    export_speedup;
    bfs_speedup = kspeed "bfs";
    pagerank_speedup = kspeed "pagerank";
    wcc_speedup = kspeed "wcc";
    storm;
  }

(* --- JSON --------------------------------------------------------------- *)

let to_json r =
  let open Json in
  let cfg = r.cfg in
  to_string
    (Obj
       [
         ("schema", Str "poseidon/analytics/v1");
         ( "config",
           Obj
             [
               ("sf", Float cfg.sf);
               ("seed", Int cfg.seed);
               ("threads", List (List.map (fun t -> Int t) cfg.threads));
               ("pr_eps", Float cfg.pr_eps);
               ("pr_max_iters", Int cfg.pr_max_iters);
               ("storm_writers", Int cfg.storm_writers);
             ] );
         ( "graph",
           Obj
             [
               ("nodes", Int r.nodes);
               ("rels", Int r.rels);
               ("csr_n", Int r.csr_n);
               ("csr_m", Int r.csr_m);
               ("fingerprint", Int r.fingerprint);
             ] );
         ( "exports",
           List
             (List.map
                (fun e ->
                  Obj [ ("domains", Int e.e_domains); ("ns", Int e.e_ns) ])
                r.exports) );
         ( "kernels",
           List
             (List.map
                (fun k ->
                  Obj
                    [
                      ("kernel", Str k.k_kernel);
                      ("domains", Int k.k_domains);
                      ("ns", Int k.k_ns);
                      ("edges", Int k.k_edges);
                      ("edges_per_s", Float k.k_edges_per_s);
                      ("iterations", Int k.k_iterations);
                    ])
                r.kernels) );
         ( "convergence",
           Obj
             [
               ("pagerank_iterations", Int r.pr_iterations);
               ("pagerank_residual", Float r.pr_residual);
               ("bfs_rounds", Int r.bfs_rounds);
               ("wcc_rounds", Int r.wcc_rounds);
               ("components", Int r.components);
             ] );
         ( "differentials",
           Obj
             [
               ("fingerprints_equal", Bool r.fingerprints_equal);
               ("reference_ok", Bool r.diff_ok);
               ("max_rank_delta", Float r.max_rank_delta);
             ] );
         ( "speedups",
           Obj
             [
               ("export", Float r.export_speedup);
               ("bfs", Float r.bfs_speedup);
               ("pagerank", Float r.pagerank_speedup);
               ("wcc", Float r.wcc_speedup);
             ] );
         ( "storm",
           Obj
             [
               ("commits", Int r.storm.st_commits);
               ("aborts", Int r.storm.st_aborts);
               ("equal", Bool r.storm.st_equal);
               ("fingerprint", Int r.storm.st_fingerprint);
             ] );
       ])

let write_json path r =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_json r))

(* --- validation --------------------------------------------------------- *)

let kernel_names = [ "bfs"; "pagerank"; "wcc" ]

let validate ?(min_kernel_speedup = 0.) s =
  let ( let* ) = Result.bind in
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let to_float = function
    | Some (Json.Float f) -> Some f
    | Some (Json.Int i) -> Some (float_of_int i)
    | _ -> None
  in
  match Json.parse s with
  | exception Json.Parse_error m -> err "parse error: %s" m
  | doc ->
      let* () =
        match Json.member "schema" doc with
        | Some (Json.Str "poseidon/analytics/v1") -> Ok ()
        | _ -> err "missing or unexpected schema tag"
      in
      let* threads =
        match Json.path doc [ "config"; "threads" ] with
        | Some (Json.List l) ->
            let ts =
              List.filter_map (function Json.Int t -> Some t | _ -> None) l
            in
            if ts = [] || not (List.mem 1 ts) then
              err "config.threads must be nonempty and include 1"
            else Ok ts
        | _ -> err "missing config.threads"
      in
      let* csr_m =
        match Json.to_int (Json.path doc [ "graph"; "csr_m" ]) with
        | Some m when m > 0 -> Ok m
        | _ -> err "graph.csr_m must be positive"
      in
      let* exports =
        match Json.member "exports" doc with
        | Some (Json.List l) -> Ok l
        | _ -> err "missing exports"
      in
      let find_row rows t =
        List.find_opt
          (fun rw -> Json.to_int (Json.member "domains" rw) = Some t)
          rows
      in
      let* () =
        List.fold_left
          (fun acc t ->
            let* () = acc in
            match find_row exports t with
            | Some rw -> (
                match Json.to_int (Json.member "ns" rw) with
                | Some ns when ns > 0 -> Ok ()
                | _ -> err "export row for %d domains lacks positive ns" t)
            | None -> err "missing export row for %d domains" t)
          (Ok ()) threads
      in
      let* kernels =
        match Json.member "kernels" doc with
        | Some (Json.List l) -> Ok l
        | _ -> err "missing kernels"
      in
      let kernel_rows name =
        List.filter
          (fun rw -> Json.member "kernel" rw = Some (Json.Str name))
          kernels
      in
      let* () =
        List.fold_left
          (fun acc name ->
            let* () = acc in
            let rows = kernel_rows name in
            List.fold_left
              (fun acc t ->
                let* () = acc in
                match find_row rows t with
                | Some rw -> (
                    match
                      ( Json.to_int (Json.member "ns" rw),
                        Json.to_int (Json.member "edges" rw),
                        to_float (Json.member "edges_per_s" rw),
                        Json.to_int (Json.member "iterations" rw) )
                    with
                    | Some ns, Some edges, Some eps, Some iters
                      when ns > 0 && edges > 0
                           && (name = "bfs" || edges >= csr_m)
                           && eps > 0. && iters >= 1 ->
                        Ok ()
                    | _ -> err "%s row for %d domains is malformed" name t)
                | None -> err "missing %s row for %d domains" name t)
              (Ok ()) threads)
          (Ok ()) kernel_names
      in
      let* () =
        match
          ( Json.path doc [ "differentials"; "fingerprints_equal" ],
            Json.path doc [ "differentials"; "reference_ok" ] )
        with
        | Some (Json.Bool true), Some (Json.Bool true) -> Ok ()
        | _ -> err "differential flags are not green"
      in
      let* () =
        match to_float (Json.path doc [ "differentials"; "max_rank_delta" ]) with
        | Some d when d <= 1e-9 -> Ok ()
        | _ -> err "max_rank_delta exceeds 1e-9"
      in
      let* () =
        match
          ( Json.path doc [ "storm"; "equal" ],
            Json.to_int (Json.path doc [ "storm"; "commits" ]) )
        with
        | Some (Json.Bool true), Some c when c > 0 -> Ok ()
        | _ -> err "storm drill not green (equal snapshot + nonzero commits)"
      in
      let* () =
        match
          Json.to_int (Json.path doc [ "convergence"; "pagerank_iterations" ])
        with
        | Some i when i >= 1 -> Ok ()
        | _ -> err "pagerank never iterated"
      in
      if min_kernel_speedup <= 0. then Ok ()
      else
        let sp name =
          match to_float (Json.path doc [ "speedups"; name ]) with
          | Some s -> Ok s
          | None -> err "missing speedups.%s" name
        in
        List.fold_left
          (fun acc name ->
            let* () = acc in
            let* s = sp name in
            if s >= min_kernel_speedup then Ok ()
            else
              err "%s speedup %.2f below required %.2f" name s
                min_kernel_speedup)
          (Ok ()) [ "pagerank"; "bfs" ]

let validate_file ?min_kernel_speedup path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  validate ?min_kernel_speedup s

let print_summary r =
  Printf.printf "analytics bench: sf=%.2f seed=%d\n" r.cfg.sf r.cfg.seed;
  Printf.printf "  graph: %d nodes, %d rels -> csr n=%d m=%d fp=%x\n" r.nodes
    r.rels r.csr_n r.csr_m r.fingerprint;
  List.iter
    (fun e -> Printf.printf "  export @%d domains: %d sim-ns\n" e.e_domains e.e_ns)
    r.exports;
  List.iter
    (fun k ->
      Printf.printf "  %-8s @%d domains: %9d sim-ns  %8.0f edges/s  (%d iters)\n"
        k.k_kernel k.k_domains k.k_ns k.k_edges_per_s k.k_iterations)
    r.kernels;
  Printf.printf
    "  convergence: pagerank %d iters (residual %.2e), bfs %d rounds, wcc %d \
     rounds, %d components\n"
    r.pr_iterations r.pr_residual r.bfs_rounds r.wcc_rounds r.components;
  Printf.printf "  speedups: export %.2fx bfs %.2fx pagerank %.2fx wcc %.2fx\n"
    r.export_speedup r.bfs_speedup r.pagerank_speedup r.wcc_speedup;
  Printf.printf "  storm: %d commits, %d aborts, snapshot %s\n"
    r.storm.st_commits r.storm.st_aborts
    (if r.storm.st_equal then "stable" else "DIVERGED");
  Printf.printf "  differentials: %s (max rank delta %.2e)\n"
    (if r.diff_ok then "green" else "RED")
    r.max_rank_delta
