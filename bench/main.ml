(* Benchmark harness: regenerates every table/figure of the paper's
   evaluation (Section 7) on the simulated substrates, plus the
   design-goal ablations from DESIGN.md.

   Figures:
     fig5   SR latencies: DRAM-s/p/i vs PMem-s/p/i vs DISK-i  (sim time)
     fig6   IU latencies incl. commit, hot and cold            (sim time)
     fig7   SR: AOT vs JIT vs JIT+compile, single-threaded     (wall, spin)
     fig8   index lookups: DRAM vs PMem vs Hybrid + recovery   (sim + wall)
     fig9   IU: AOT vs JIT cold/hot                            (wall, spin)
     fig10  adaptive vs multi-threaded AOT on DRAM and PMem    (wall, spin)
     ablations  DG3 / DG5 / DG6 / dict / JIT opt levels

   Time bases: the DRAM/PMem/disk comparisons report the simulated media
   clock (deterministic, calibrated to the device ratios); the JIT
   figures report wall-clock with media spin enabled, so CPU-side engine
   differences and media latency appear on the same axis.  Parallel
   figures report aggregate-media-time / workers as the elapsed estimate.

   Usage: main.exe [all|fig5|fig6|fig7|fig8|fig9|fig10|ablations|bechamel]
                   [--sf F] [--runs N] [--workers N] *)

module Media = Pmem.Media
module Pool = Pmem.Pool
module Value = Storage.Value
module A = Query.Algebra
module Engine = Jit.Engine
module SR = Snb.Short_reads
module IU = Snb.Updates
module Mvto = Mvcc.Mvto
module G = Storage.Graph_store

let sf = ref 0.1
let runs = ref 25
let nworkers = ref 2

let now_ns () = int_of_float (Unix.gettimeofday () *. 1e9)
let us ns = float_of_int ns /. 1e3
let ms ns = float_of_int ns /. 1e6

(* --- Setups ------------------------------------------------------------------ *)

let index_specs = [ "Person"; "Post"; "Comment"; "Forum"; "Place"; "Tag" ]

let mk_core mode =
  let db = Core.create ~mode ~pool_size:(1 lsl 27) () in
  let ds =
    Snb.Gen.generate ~params:{ Snb.Gen.default_params with sf = !sf } (Core.store db)
  in
  List.iter (fun l -> ignore (Core.create_index db ~label:l ~prop:"id" ())) index_specs;
  (db, ds)

let mk_disk () =
  let disk = Diskdb.Disk_graph.create ~pool_size:(1 lsl 27) () in
  let ds =
    Snb.Gen.generate
      ~params:{ Snb.Gen.default_params with sf = !sf }
      (Diskdb.Disk_graph.store disk)
  in
  let idx = Snb.Gen.build_indexes ~placement:Gindex.Node_store.Volatile ds in
  (disk, ds, idx)

let sr_params ds rng spec = Array.init !runs (fun _ -> SR.draw_param ds rng spec)

let pick_array rng arr = arr.(Random.State.int rng (Array.length arr))

let jit_config ds =
  { Engine.default_config with prop_tag = Snb.Schema.prop_tag ds.Snb.Gen.schema }

(* run all plans of a SR spec once on a Core db *)
let run_sr db ~mode ~config ~access ~parallel spec param =
  List.iter
    (fun plan ->
      ignore (Core.query db ~mode ~config ~parallel ~params:[| param |] plan))
    (spec.SR.plans ~access)

let sim_avg media f n =
  let c0 = Media.clock media in
  for i = 0 to n - 1 do
    f i
  done;
  (Media.clock media - c0) / max 1 n

let wall_avg f n =
  let t0 = now_ns () in
  for i = 0 to n - 1 do
    f i
  done;
  (now_ns () - t0) / max 1 n

let header title cols =
  Printf.printf "\n== %s ==\n%-8s" title "query";
  List.iter (Printf.printf "%12s") cols;
  print_newline ();
  Printf.printf "%s\n" (String.make (8 + (12 * List.length cols)) '-')

let row name cells =
  Printf.printf "%-8s" name;
  List.iter (fun v -> Printf.printf "%12.1f" v) cells;
  print_newline ()

(* --- Fig 5: interactive short reads ------------------------------------------- *)

let fig5 () =
  Printf.printf
    "\n\
     #### Fig 5: SR query latencies (avg of %d hot runs, simulated us) ####\n\
     (DRAM/PMem: -s single-thread scan, -p %d-worker scan, -i indexed;\n\
    \ DISK-i: page-cache engine, hot, indexed)\n"
    !runs !nworkers;
  let dram, dram_ds = mk_core `Dram in
  let pmem, pmem_ds = mk_core `Pmem in
  let disk, disk_ds, disk_idx = mk_disk () in
  Core.set_workers dram !nworkers;
  Core.set_workers pmem !nworkers;
  let rng = Random.State.make [| 1 |] in
  header "Fig 5"
    [ "dram-s"; "dram-p"; "dram-i"; "pmem-s"; "pmem-p"; "pmem-i"; "disk-i" ];
  let specs = SR.all pmem_ds.Snb.Gen.schema in
  List.iter
    (fun spec ->
      let params = sr_params pmem_ds rng spec in
      let core_case (db, ds) ~access ~parallel =
        let media = Core.media db in
        let config = jit_config ds in
        run_sr db ~mode:Engine.Interp ~config ~access ~parallel spec params.(0);
        let avg =
          sim_avg media
            (fun i ->
              run_sr db ~mode:Engine.Interp ~config ~access ~parallel spec
                params.(i mod Array.length params))
            !runs
        in
        if parallel then avg / !nworkers else avg
      in
      let disk_case () =
        let media = Diskdb.Disk_graph.media disk in
        let spec_d =
          List.find (fun s -> s.SR.name = spec.SR.name)
            (SR.all disk_ds.Snb.Gen.schema)
        in
        let run param =
          Mvto.with_txn (Diskdb.Disk_graph.mgr disk) (fun txn ->
              let g =
                Diskdb.Disk_graph.source
                  ~indexes:(Snb.Gen.index_lookup_fn disk_ds disk_idx)
                  disk txn
              in
              List.iter
                (fun plan -> ignore (Query.Interp.run g ~params:[| param |] plan))
                (spec_d.SR.plans ~access:`Index))
        in
        Array.iter run params (* warm the page cache: hot runs *);
        sim_avg media (fun i -> run params.(i mod Array.length params)) !runs
      in
      let cells =
        [
          us (core_case (dram, dram_ds) ~access:`Scan ~parallel:false);
          us (core_case (dram, dram_ds) ~access:`Scan ~parallel:true);
          us (core_case (dram, dram_ds) ~access:`Index ~parallel:false);
          us (core_case (pmem, pmem_ds) ~access:`Scan ~parallel:false);
          us (core_case (pmem, pmem_ds) ~access:`Scan ~parallel:true);
          us (core_case (pmem, pmem_ds) ~access:`Index ~parallel:false);
          us (disk_case ());
        ]
      in
      row spec.SR.name cells)
    specs;
  Core.shutdown dram;
  Core.shutdown pmem

(* --- Fig 6: interactive updates ------------------------------------------------ *)

let fig6 () =
  Printf.printf
    "\n\
     #### Fig 6: IU latencies, indexed (avg of %d runs, simulated us) ####\n\
     (exec = update execution, commit = persisting at commit;\n\
    \ disk-cold = empty page cache per run, disk-hot = warmed)\n"
    !runs;
  let dram, dram_ds = mk_core `Dram in
  let pmem, pmem_ds = mk_core `Pmem in
  let disk, disk_ds, disk_idx = mk_disk () in
  let rng = Random.State.make [| 2 |] in
  header "Fig 6"
    [ "dram-exec"; "dram-cmt"; "pmem-exec"; "pmem-cmt"; "disk-hot"; "disk-cold" ];
  List.iter
    (fun spec ->
      let core_case (db, ds) =
        let sc = ds.Snb.Gen.schema in
        let media = Core.media db in
        let ctx = IU.make_ctx () in
        let exec_total = ref 0 and commit_total = ref 0 in
        for _ = 1 to !runs do
          let params = spec.IU.draw ds rng ctx in
          let c0 = Media.clock media in
          let _, _, commit_ns = Core.execute_update db ~params (spec.IU.plan sc) in
          let total = Media.clock media - c0 in
          exec_total := !exec_total + (total - commit_ns);
          commit_total := !commit_total + commit_ns
        done;
        (!exec_total / !runs, !commit_total / !runs)
      in
      let disk_case ~cold =
        let sc = disk_ds.Snb.Gen.schema in
        let media = Diskdb.Disk_graph.media disk in
        let ctx = IU.make_ctx () in
        let total = ref 0 in
        for _ = 1 to !runs do
          if cold then Diskdb.Disk_graph.drop_caches disk;
          let params = spec.IU.draw disk_ds rng ctx in
          let c0 = Media.clock media in
          Diskdb.Disk_graph.with_txn disk (fun txn ->
              let g =
                Diskdb.Disk_graph.source
                  ~indexes:(Snb.Gen.index_lookup_fn disk_ds disk_idx)
                  disk txn
              in
              ignore (Query.Interp.run g ~params (spec.IU.plan sc)));
          total := !total + (Media.clock media - c0)
        done;
        !total / !runs
      in
      let de, dc = core_case (dram, dram_ds) in
      let pe, pc = core_case (pmem, pmem_ds) in
      let dhot = disk_case ~cold:false in
      let dcold = disk_case ~cold:true in
      row spec.IU.name [ us de; us dc; us pe; us pc; us dhot; us dcold ])
    IU.all;
  Core.shutdown dram;
  Core.shutdown pmem

(* --- Fig 8: index placements and recovery --------------------------------------- *)

let fig8 () =
  Printf.printf "\n#### Fig 8: Person-id index lookups by placement + recovery ####\n";
  let media = Media.create () in
  let pool = Pool.create ~kind:`Pmem ~media ~id:1 ~size:(1 lsl 27) () in
  let store = G.format pool in
  let ds = Snb.Gen.generate ~params:{ Snb.Gen.default_params with sf = !sf } store in
  let sc = ds.Snb.Gen.schema in
  (* pad the index to a realistic SF10-like entry count so the trees have
     full depth regardless of the graph scale factor *)
  let n = max 50_000 (Array.length ds.Snb.Gen.persons) in
  let mk placement =
    let idx =
      Gindex.Index.create pool ~placement ~label:sc.Snb.Schema.person
        ~key:sc.Snb.Schema.k_id
    in
    for i = 0 to n - 1 do
      Gindex.Index.insert idx
        (Value.Int (Snb.Gen.person_base + i))
        (i mod max 1 (Array.length ds.Snb.Gen.persons))
    done;
    idx
  in
  let vol = mk Gindex.Node_store.Volatile in
  let per = mk Gindex.Node_store.Persistent in
  let hyb = mk Gindex.Node_store.Hybrid in
  let lookups = 2000 in
  let bench idx =
    sim_avg media
      (fun i ->
        ignore
          (Gindex.Index.lookup idx
             (Value.Int (Snb.Gen.person_base + (i * 7919 mod n)))))
      lookups
  in
  Printf.printf "%-12s%18s\n" "placement" "lookup (sim ns)";
  Printf.printf "%s\n" (String.make 30 '-');
  Printf.printf "%-12s%18d\n" "dram" (bench vol);
  Printf.printf "%-12s%18d\n" "pmem" (bench per);
  Printf.printf "%-12s%18d\n" "hybrid" (bench hyb);
  let c0 = Media.clock media in
  let w0 = now_ns () in
  let hyb' =
    Gindex.Index.open_ pool ~desc:(Gindex.Index.descriptor hyb)
      ~rebuild:(fun _ -> assert false)
  in
  let hyb_sim = Media.clock media - c0 and hyb_wall = now_ns () - w0 in
  let c1 = Media.clock media in
  let w1 = now_ns () in
  let vol2 =
    Gindex.Index.create pool ~placement:Gindex.Node_store.Volatile
      ~label:sc.Snb.Schema.person ~key:sc.Snb.Schema.k_id
  in
  (* full rebuild: scan the (PMem) node records and re-insert all [n]
     entries - the paper's 671 ms comparator *)
  let np = Array.length ds.Snb.Gen.persons in
  for i = 0 to n - 1 do
    let node = ds.Snb.Gen.persons.(i mod np) in
    ignore (G.read_node store node);
    ignore (G.node_prop store node sc.Snb.Schema.k_id);
    Gindex.Index.insert vol2 (Value.Int (Snb.Gen.person_base + i)) node
  done;
  let vol_sim = Media.clock media - c1 and vol_wall = now_ns () - w1 in
  Printf.printf "\nrecovery after restart (%d entries):\n" (Gindex.Index.count hyb');
  Printf.printf
    "  hybrid (rebuild inner from PMem leaves): %8.3f sim-ms  %8.3f wall-ms\n"
    (ms hyb_sim) (ms hyb_wall);
  Printf.printf
    "  volatile (full rebuild from node table): %8.3f sim-ms  %8.3f wall-ms\n"
    (ms vol_sim) (ms vol_wall);
  Printf.printf "  ratio (volatile / hybrid, sim):          %8.1fx\n"
    (float_of_int vol_sim /. float_of_int (max 1 hyb_sim));
  ignore vol

(* --- Fig 7: SR with the JIT engine ----------------------------------------------- *)

let fig7 () =
  let reps = max 5 (!runs / 3) in
  Printf.printf
    "\n\
     #### Fig 7: SR with JIT engine, single-thread, no index ####\n\
     (avg of %d hot runs, wall us with media spin; jit+comp pays the\n\
    \ modeled backend latency each run, jit hits the persistent code cache)\n"
    reps;
  let pmem, ds = mk_core `Pmem in
  let media = Core.media pmem in
  let config = jit_config ds in
  let rng = Random.State.make [| 3 |] in
  Media.set_spin media true;
  header "Fig 7" [ "aot"; "jit"; "jit+comp" ];
  List.iter
    (fun spec ->
      let params = sr_params ds rng spec in
      let aot =
        wall_avg
          (fun i ->
            run_sr pmem ~mode:Engine.Interp ~config ~access:`Scan ~parallel:false
              spec
              params.(i mod Array.length params))
          reps
      in
      (* jit+compile: a cacheless engine pays codegen+passes+backend each run *)
      let jit_comp =
        wall_avg
          (fun i ->
            Core.with_txn pmem (fun txn ->
                List.iter
                  (fun plan ->
                    ignore
                      (Engine.run ~media ~config ~mode:Engine.Jit
                         (Core.source pmem txn)
                         ~params:[| params.(i mod Array.length params) |]
                         plan))
                  (spec.SR.plans ~access:`Scan)))
          reps
      in
      (* jit hot: persistent cache primed, only link + execution *)
      run_sr pmem ~mode:Engine.Jit ~config ~access:`Scan ~parallel:false spec
        params.(0);
      let jit =
        wall_avg
          (fun i ->
            run_sr pmem ~mode:Engine.Jit ~config ~access:`Scan ~parallel:false spec
              params.(i mod Array.length params))
          reps
      in
      row spec.SR.name [ us aot; us jit; us jit_comp ])
    (SR.all ds.Snb.Gen.schema);
  Media.set_spin media false;
  Core.shutdown pmem

(* --- Fig 9: IU with the JIT engine ------------------------------------------------ *)

let fig9 () =
  let reps = max 5 (!runs / 3) in
  Printf.printf
    "\n\
     #### Fig 9: IU with JIT engine, indexed (wall us with media spin) ####\n\
     (jit-cold = every run compiles; jit-hot = persistent code cache hit)\n";
  let pmem, ds = mk_core `Pmem in
  let media = Core.media pmem in
  let sc = ds.Snb.Gen.schema in
  let config = jit_config ds in
  let rng = Random.State.make [| 4 |] in
  Media.set_spin media true;
  header "Fig 9" [ "aot"; "jit-cold"; "jit-hot" ];
  List.iter
    (fun spec ->
      let ctx = IU.make_ctx () in
      let aot =
        wall_avg
          (fun _ ->
            let params = spec.IU.draw ds rng ctx in
            ignore
              (Core.execute_update pmem ~mode:Engine.Interp ~config ~params
                 (spec.IU.plan sc)))
          reps
      in
      let jit_cold =
        wall_avg
          (fun _ ->
            let params = spec.IU.draw ds rng ctx in
            Core.with_txn pmem (fun txn ->
                ignore
                  (Engine.run ~media ~config ~mode:Engine.Jit (Core.source pmem txn)
                     ~params (spec.IU.plan sc))))
          reps
      in
      (let params = spec.IU.draw ds rng ctx in
       ignore
         (Core.execute_update pmem ~mode:Engine.Jit ~config ~params (spec.IU.plan sc)));
      let jit_hot =
        wall_avg
          (fun _ ->
            let params = spec.IU.draw ds rng ctx in
            ignore
              (Core.execute_update pmem ~mode:Engine.Jit ~config ~params
                 (spec.IU.plan sc)))
          reps
      in
      row spec.IU.name [ us aot; us jit_cold; us jit_hot ])
    IU.all;
  Media.set_spin media false;
  Core.shutdown pmem

(* --- Fig 10: adaptive execution ----------------------------------------------------- *)

let fig10 () =
  let reps = max 3 (!runs / 5) in
  Printf.printf
    "\n\
     #### Fig 10: adaptive execution vs multi-threaded AOT (%d workers) ####\n\
     (avg of %d runs, simulated us per worker; media spin stays on so the\n\
    \ interp->compiled switch races real compilation, but the reported\n\
    \ time is the deterministic media clock - compilation runs on a\n\
    \ background domain and charges the workers nothing)\n"
    !nworkers reps;
  let dram, dram_ds = mk_core `Dram in
  let pmem, pmem_ds = mk_core `Pmem in
  Core.set_workers dram !nworkers;
  Core.set_workers pmem !nworkers;
  header "Fig 10" [ "dram-aot"; "dram-adp"; "pmem-aot"; "pmem-adp" ];
  let rng = Random.State.make [| 5 |] in
  List.iter
    (fun spec ->
      let cells =
        List.concat_map
          (fun (db, ds) ->
            let media = Core.media db in
            let config = jit_config ds in
            let params = sr_params ds rng spec in
            Media.set_spin media true;
            let run mode i =
              run_sr db ~mode ~config ~access:`Scan ~parallel:true spec
                params.(i mod Array.length params)
            in
            run Engine.Interp 0;
            let aot = sim_avg media (run Engine.Interp) reps / !nworkers in
            run Engine.Adaptive 0;
            let adp = sim_avg media (run Engine.Adaptive) reps / !nworkers in
            Media.set_spin media false;
            [ us aot; us adp ])
          [ (dram, dram_ds); (pmem, pmem_ds) ]
      in
      row spec.SR.name cells)
    (SR.all pmem_ds.Snb.Gen.schema);
  Core.shutdown dram;
  Core.shutdown pmem

(* --- Ablations (DESIGN.md section 5) -------------------------------------------------- *)

let ablations () =
  Printf.printf "\n#### Ablations: design goals on the simulated substrate ####\n";
  let media = Media.create () in
  let pool = Pool.create ~kind:`Pmem ~media ~id:1 ~size:(1 lsl 26) () in
  let store = G.format pool in
  let ds = Snb.Gen.generate ~params:{ Snb.Gen.default_params with sf = !sf } store in
  let g = ds.Snb.Gen.store in
  let n_nodes = Storage.Table.nchunks (G.node_table g) * Storage.Table.chunk_capacity (G.node_table g) in
  (* DG3: sequential chunk scan vs random access of the same records *)
  let seq =
    sim_avg media
      (fun _ -> G.iter_nodes g (fun id -> ignore (G.node_label g id)))
      3
  in
  let ids = Array.init n_nodes (fun i -> i * 7919 mod n_nodes) in
  let rand =
    sim_avg media
      (fun _ ->
        Array.iter
          (fun id -> if G.node_live g id then ignore (G.node_label g id))
          ids)
      3
  in
  Printf.printf
    "DG3  access pattern  : sequential scan %8.1f sim-us vs random %8.1f sim-us (%.2fx)\n"
    (us seq) (us rand)
    (float_of_int rand /. float_of_int (max 1 seq));
  (* DG5: slot reuse vs fresh chunk growth *)
  let count_allocs f =
    let a0 = (Media.stats media).Media.allocs in
    let c0 = Media.clock media in
    f ();
    ((Media.stats media).Media.allocs - a0, Media.clock media - c0)
  in
  let t = Storage.Table.create pool ~capacity:64 ~record_size:64 () in
  let ids = ref [] in
  let fresh_allocs, fresh_ns =
    count_allocs (fun () ->
        for _ = 1 to 2048 do
          let id, _ = Storage.Table.reserve t in
          Storage.Table.publish t id;
          ids := id :: !ids
        done)
  in
  List.iter (Storage.Table.delete t) !ids;
  let reuse_allocs, reuse_ns =
    count_allocs (fun () ->
        for _ = 1 to 2048 do
          let id, _ = Storage.Table.reserve t in
          Storage.Table.publish t id
        done)
  in
  Printf.printf
    "DG5  slot reuse      : fresh %2d allocs %8.1f sim-us vs reuse %2d allocs %8.1f sim-us\n"
    fresh_allocs (us fresh_ns) reuse_allocs (us reuse_ns);
  (* DG6: offset-mirror iteration vs pptr-chain iteration *)
  let mirror =
    sim_avg media (fun _ -> Storage.Table.iter (G.node_table g) (fun _ _ -> ())) 5
  in
  let chain =
    sim_avg media
      (fun _ -> Storage.Table.iter_via_chain (G.node_table g) (G.registry g) (fun _ _ -> ()))
      5
  in
  Printf.printf
    "DG6  addressing      : DRAM-mirror offsets %8.1f sim-us vs pptr chain %8.1f sim-us\n"
    (us mirror) (us chain);
  (* dict placement: hybrid (DRAM mirror) vs pmem-only decodes *)
  let media2 = Media.create () in
  let pool2 = Pool.create ~kind:`Pmem ~media:media2 ~id:2 ~size:(1 lsl 24) () in
  Pmem.Alloc.format pool2;
  let mk_dict hybrid =
    let d = Storage.Dict.create ~hybrid pool2 in
    for i = 0 to 999 do
      ignore (Storage.Dict.encode d (Printf.sprintf "word-%04d" i))
    done;
    d
  in
  let d_hybrid = mk_dict true and d_pmem = mk_dict false in
  let decode_cost d =
    sim_avg media2 (fun i -> ignore (Storage.Dict.decode d (1 + (i * 37 mod 999)))) 5000
  in
  Printf.printf
    "dict placement       : hybrid decode %6d sim-ns vs pmem-only %6d sim-ns\n"
    (decode_cost d_hybrid) (decode_cost d_pmem);
  (* DG1/DG2: dirty versions in DRAM (the paper's design) vs persisted on
     every modification (the rejected pure-PMem alternative) *)
  let dg1 ~write_through =
    let db, ds2 = mk_core `Pmem in
    Mvcc.Mvto.set_write_through (Core.mgr db) write_through;
    let sc = ds2.Snb.Gen.schema in
    let mediad = Core.media db in
    let rng = Random.State.make [| 77 |] in
    ignore sc;
    let persons = ds2.Snb.Gen.persons in
    let f0 = (Media.stats mediad).Media.flushes in
    let c0 = Media.clock mediad in
    let txns = 400 in
    for _ = 1 to txns do
      (* update transaction touching one person's properties three times -
         in the paper's design all three happen at DRAM latency and one
         persist runs at commit; write-through persists each *)
      let p = persons.(Random.State.int rng (Array.length persons)) in
      Core.with_txn db (fun txn ->
          (* a longer-running transaction revising its writes: the paper's
             design keeps all of this at DRAM latency until commit *)
          for i = 1 to 10 do
            Core.set_node_prop db txn p ~key:"birthday" (Value.Int i)
          done;
          Core.set_node_prop db txn p ~key:"browserUsed" (Value.Text "Opera");
          Core.set_node_prop db txn p ~key:"locationIP" (Value.Text "10.0.0.1"))
    done;
    let flushes = (Media.stats mediad).Media.flushes - f0 in
    let ns = Media.clock mediad - c0 in
    Core.shutdown db;
    (flushes / txns, ns / txns)
  in
  let fl_dram, ns_dram = dg1 ~write_through:false in
  let fl_wt, ns_wt = dg1 ~write_through:true in
  Printf.printf
    "DG1  dirty versions  : DRAM-resident %3d flushes/txn %8.1f sim-us vs write-through %3d flushes/txn %8.1f sim-us\n"
    fl_dram (us ns_dram) fl_wt (us ns_wt);
  (* rts durability (Section 5.1 discussion): flushing the read timestamp
     on every first read vs relaxed stores *)
  let rts ~durable =
    let db, ds2 = mk_core `Pmem in
    Mvcc.Mvto.set_durable_rts (Core.mgr db) durable;
    let sc = ds2.Snb.Gen.schema in
    let mediad = Core.media db in
    let rng = Random.State.make [| 78 |] in
    let plan = SR.is3 sc ~access:`Scan in
    let c0 = Media.clock mediad in
    for _ = 1 to 20 do
      let param = Value.Int (pick_array rng ds2.Snb.Gen.person_ids) in
      List.iter
        (fun p -> ignore (Core.query db ~params:[| param |] p))
        plan
    done;
    let ns = (Media.clock mediad - c0) / 20 in
    Core.shutdown db;
    ns
  in
  let rts_relaxed = rts ~durable:false in
  let rts_durable = rts ~durable:true in
  Printf.printf
    "rts durability       : relaxed %8.1f sim-us vs flushed %8.1f sim-us per IS3 scan (%.2fx)\n"
    (us rts_relaxed) (us rts_durable)
    (float_of_int rts_durable /. float_of_int (max 1 rts_relaxed));
  (* JIT optimisation levels on the most complex query *)
  let pmemdb, ds2 = mk_core `Pmem in
  let mediap = Core.media pmemdb in
  let sc = ds2.Snb.Gen.schema in
  let plan = SR.is7 sc ~access:`Scan ~msg:`Cmt in
  let param = Value.Int ds2.Snb.Gen.comment_ids.(0) in
  (* pure CPU effect of the pass cascade: spin off *)
  let lvl level =
    let config = { (jit_config ds2) with Engine.opt_level = level } in
    ignore (Core.query pmemdb ~mode:Engine.Jit ~config ~params:[| param |] plan);
    let w =
      wall_avg
        (fun _ ->
          ignore (Core.query pmemdb ~mode:Engine.Jit ~config ~params:[| param |] plan))
        25
    in
    let _, report = Core.query pmemdb ~mode:Engine.Jit ~config ~params:[| param |] plan in
    (w, report.Engine.ir_instrs)
  in
  let w0, i0 = lvl Jit.Passes.O0 in
  let w1, i1 = lvl Jit.Passes.O1 in
  let w3, i3 = lvl Jit.Passes.O3 in
  ignore mediap;
  Printf.printf
    "JIT opt levels (IS7) : O0 %8.1f us (%3d instrs)  O1 %8.1f us (%3d)  O3 %8.1f us (%3d)\n"
    (us w0) i0 (us w1) i1 (us w3) i3;
  Core.shutdown pmemdb

(* --- Complex reads (extension): where JIT pays off most --------------------------------- *)

let complex () =
  let reps = max 5 (!runs / 5) in
  Printf.printf
    "\n\
     #### Complex reads (IC-style extension): long-running traversals ####\n\
     (avg of %d hot runs, wall us with media spin; the paper expects JIT\n\
    \ gains to grow with query complexity - these queries test that)\n"
    reps;
  let pmem, ds = mk_core `Pmem in
  let media = Core.media pmem in
  let sc = ds.Snb.Gen.schema in
  let config = jit_config ds in
  let rng = Random.State.make [| 8 |] in
  Media.set_spin media true;
  header "Complex" [ "aot"; "jit"; "speedup" ];
  List.iter
    (fun spec ->
      let params =
        Array.init !runs (fun _ -> Snb.Complex_reads.draw_params ds rng spec)
      in
      let run mode i =
        ignore
          (Core.query pmem ~mode ~config
             ~params:params.(i mod Array.length params)
             (spec.Snb.Complex_reads.plan ~access:`Scan))
      in
      run Engine.Interp 0;
      run Engine.Jit 0;
      let aot = wall_avg (run Engine.Interp) reps in
      let jit = wall_avg (run Engine.Jit) reps in
      Printf.printf "%-8s%12.1f%12.1f%11.2fx\n" spec.Snb.Complex_reads.name
        (us aot) (us jit)
        (float_of_int aot /. float_of_int (max 1 jit)))
    (Snb.Complex_reads.all sc);
  Media.set_spin media false;
  Core.shutdown pmem

(* --- Concurrency (paper Section 8, ongoing work): update throughput -------------------- *)

let concurrency () =
  Printf.printf
    "\n\
     #### Concurrent updates (paper future work): IU throughput ####\n\
     (IU2/IU3/IU8 mix, wall-clock, MVTO with retry-on-abort)\n";
  Printf.printf "%-10s%14s%14s%12s\n" "domains" "txns/s" "aborts" "retries";
  List.iter
    (fun ndomains ->
      let db, ds = mk_core `Pmem in
      let sc = ds.Snb.Gen.schema in
      let per_domain = 400 in
      let aborts = Atomic.make 0 in
      let worker k () =
        let rng = Random.State.make [| 100 + k |] in
        let ctx = IU.make_ctx () in
        let specs = [ List.nth IU.all 1; List.nth IU.all 2; List.nth IU.all 7 ] in
        for _ = 1 to per_domain do
          let spec = List.nth specs (Random.State.int rng 3) in
          let params = spec.IU.draw ds rng ctx in
          let rec attempt n =
            match Core.execute_update db ~params (spec.IU.plan sc) with
            | _ -> ()
            | exception Core.Abort _ when n < 8 ->
                Atomic.incr aborts;
                attempt (n + 1)
          in
          attempt 0
        done
      in
      (* best of two rounds: wall-clock on a small shared box is noisy *)
      let round () =
        let t0 = now_ns () in
        let domains = List.init ndomains (fun k -> Domain.spawn (worker k)) in
        List.iter Domain.join domains;
        float_of_int (ndomains * per_domain)
        /. (float_of_int (now_ns () - t0) /. 1e9)
      in
      let tput = max (round ()) (round ()) in
      Printf.printf "%-10d%14.0f%14d%12s\n" ndomains tput (Atomic.get aborts) "-";
      Core.shutdown db)
    [ 1; 2 ]

(* --- HTAP: concurrent writers + analytic readers (the paper's headline claim) ----------- *)

let htap () =
  Printf.printf
    "\n\
     #### HTAP: concurrent SNB updates + analytic reads (sim clock) ####\n\
     (%d writers, %d readers over a shared morsel pool; emits BENCH_htap.json)\n"
    2 !nworkers;
  let cfg =
    {
      Htap.default_config with
      Htap.sf = !sf;
      pool_workers = !nworkers;
      mode = Engine.Jit;
    }
  in
  let r = Htap.run cfg in
  Htap.print_summary r;
  Htap.write_json "BENCH_htap.json" r;
  match Htap.validate_file "BENCH_htap.json" with
  | Ok () -> print_endline "OK: BENCH_htap.json written and validated"
  | Error msg ->
      print_endline ("FAILED: BENCH_htap.json invalid: " ^ msg);
      exit 1

(* --- Bechamel micro-benchmarks: one Test per figure ------------------------------------ *)

let bechamel () =
  Printf.printf "\n#### Bechamel wall-clock microbenchmarks (ns/run, OLS) ####\n";
  let open Bechamel in
  let pmem, ds = mk_core `Pmem in
  let sc = ds.Snb.Gen.schema in
  let config = jit_config ds in
  let param () = Value.Int ds.Snb.Gen.person_ids.(7) in
  let msg_param () = Value.Int ds.Snb.Gen.post_ids.(3) in
  let is1 = SR.is1 sc ~access:`Index in
  let is4 = SR.is4 sc ~access:`Index ~msg:`Post in
  let ctx = IU.make_ctx () in
  let rng = Random.State.make [| 6 |] in
  let iu8 = List.nth IU.all 7 in
  (* prime the jit cache so the cached figures measure steady state *)
  ignore (Core.query pmem ~mode:Engine.Jit ~config ~params:[| msg_param () |] is4);
  let tests =
    [
      Test.make ~name:"fig5/is1-index"
        (Staged.stage (fun () -> ignore (Core.query pmem ~params:[| param () |] is1)));
      Test.make ~name:"fig6/iu8-update"
        (Staged.stage (fun () ->
             let params = iu8.IU.draw ds rng ctx in
             ignore (Core.execute_update pmem ~params (iu8.IU.plan sc))));
      Test.make ~name:"fig7/is4-jit"
        (Staged.stage (fun () ->
             ignore
               (Core.query pmem ~mode:Engine.Jit ~config ~params:[| msg_param () |] is4)));
      Test.make ~name:"fig8/index-lookup"
        (Staged.stage (fun () ->
             match
               Core.index_lookup_fn pmem ~label:sc.Snb.Schema.person
                 ~key:sc.Snb.Schema.k_id
             with
             | Some idx -> ignore (Gindex.Index.lookup idx (param ()))
             | None -> ()));
      Test.make ~name:"fig9/iu8-jit"
        (Staged.stage (fun () ->
             let params = iu8.IU.draw ds rng ctx in
             ignore
               (Core.execute_update pmem ~mode:Engine.Jit ~config ~params
                  (iu8.IU.plan sc))));
      Test.make ~name:"fig10/is1-adaptive"
        (Staged.stage (fun () ->
             ignore
               (Core.query pmem ~mode:Engine.Adaptive ~config ~params:[| param () |]
                  (SR.is1 sc ~access:`Scan))));
    ]
  in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~stabilize:false () in
  let ols = Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |] in
  List.iter
    (fun test ->
      let raw = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] test in
      let res = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
      Hashtbl.iter
        (fun name est ->
          match Analyze.OLS.estimates est with
          | Some [ v ] -> Printf.printf "%-24s %12.0f ns/run\n" name v
          | _ -> Printf.printf "%-24s %12s\n" name "n/a")
        res)
    tests;
  Core.shutdown pmem

(* --- Driver ------------------------------------------------------------------------------ *)

let () =
  let which = ref [] in
  let rec parse = function
    | [] -> ()
    | "--sf" :: v :: rest ->
        sf := float_of_string v;
        parse rest
    | "--runs" :: v :: rest ->
        runs := int_of_string v;
        parse rest
    | "--workers" :: v :: rest ->
        nworkers := int_of_string v;
        parse rest
    | x :: rest ->
        which := x :: !which;
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let which = if !which = [] then [ "all" ] else List.rev !which in
  let run name f =
    if List.mem "all" which || List.mem name which then begin
      let t0 = now_ns () in
      f ();
      Printf.printf "[%s done in %.1fs]\n%!" name
        (float_of_int (now_ns () - t0) /. 1e9)
    end
  in
  Printf.printf "Poseidon-reproduction benchmarks (sf=%.2f, runs=%d, workers=%d)\n"
    !sf !runs !nworkers;
  run "fig5" fig5;
  run "fig6" fig6;
  run "fig7" fig7;
  run "fig8" fig8;
  run "fig9" fig9;
  run "fig10" fig10;
  run "ablations" ablations;
  run "complex" complex;
  run "concurrency" concurrency;
  run "htap" htap;
  run "bechamel" bechamel
