(** Concurrent HTAP workload driver (the paper's headline claim): writer
    domains issuing LDBC-SNB interactive updates through MVTO with
    retries, concurrently with reader domains running short/complex reads
    and morsel-parallel aggregation probes over a shared task pool.  The
    run length is measured on the simulated media clock; results are
    emitted as machine-readable JSON and double as a snapshot-isolation
    stress check. *)

(** Minimal JSON (emit + parse), hand-rolled to stay dependency-free. *)
module Json : sig
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  exception Parse_error of string

  val to_string : t -> string
  val parse : string -> t
  val member : string -> t -> t option
  val path : t -> string list -> t option
  val to_int : t option -> int option
end

type config = {
  sf : float;
  writers : int;
  readers : int;
  duration_ms : float;  (** simulated milliseconds on the media clock *)
  seed : int;
  mode : Jit.Engine.mode;
  storage : [ `Dram | `Pmem ];
  pool_workers : int;  (** shared morsel-pool size; <= 1 disables *)
  profile : bool;
      (** after the concurrent phase, profile the analytic probe plans
          per operator in both engines (interp vs jit) *)
}

val default_config : config

type class_stats = {
  cls : string;
  ops : int;
  p50_ns : int;
  p95_ns : int;
  p99_ns : int;
  max_ns : int;
}

(** Per-operator interp-vs-jit comparison of one analytic plan; rows in
    preorder-id order, tuple counts must agree between engines. *)
type plan_profile = {
  p_name : string;
  p_interp : Obs.Profile.row list;
  p_jit : Obs.Profile.row list;
}

(** One row of the Fig. 10 reproduction, measured on the quiesced
    database after the concurrent phase: simulated ns per analytic-probe
    execution per tier at a fixed worker-domain count.  The jit column
    is capture/replay steady state (compilation happens in a warm-up
    outside the measurement window); parallel tiers are normalised per
    worker at comparison time. *)
type fig10_row = {
  f_domains : int;
  f_aot_serial_ns : int;  (** serial interpreter *)
  f_interp_par_ns : int;  (** interpreter over the morsel pool *)
  f_jit_par_ns : int;  (** compiled-parallel, replay steady state *)
  f_adaptive_ns : int;  (** adaptive (replay-served once compiled) *)
  f_replay_hits : int;  (** replay hits during the jit/adaptive runs *)
}

type result = {
  cfg : config;
  sim_elapsed_ns : int;
  committed_updates : int;
  failed_updates : int;
  updates_by_query : (string * int) list;
  counter_commits : int;
  analytic_reads : int;
  read_rows : int;
  read_aborts : int;
  classes : class_stats list;
  commits : int;
  aborts : int;
  retries : int;
  media_reads : int;
  media_writes : int;
  media_flushes : int;
  media_fences : int;
  media_bytes_read : int;
  media_bytes_written : int;
  jit_cache_hits : int;
  jit_cached_plans : int;
  monotone_violations : int;
  counter_lost : int;
  conservation_failures : int;
  reg_flushes : int;  (** metrics-registry deltas over the run *)
  reg_fences : int;
  abort_taxonomy : (string * int) list;
      (** aborts by class: validation / transient / fatal / user *)
  reg_jit_hits : int;
  reg_jit_misses : int;
  reg_jit_stores : int;
  reg_replay_hits : int;
      (** capture/replay-tier hits over the concurrent phase *)
  reg_parallel_morsels : int;
      (** compiled morsels executed over the pool, concurrent phase *)
  reg_compile_ns : int;
      (** modeled compile ns over the whole run (incl. Fig. 10 warm-ups) *)
  fig10 : fig10_row list;
      (** per-tier comparison at 1/2/4 domains, see {!fig10_row} *)
  profiles : plan_profile list;  (** nonempty iff [cfg.profile] *)
  metrics_prom : string;
      (** Prometheus exposition of the final registry snapshot *)
}

val si_violations : result -> int
(** Sum of monotone-read, lost-update and conservation violations. *)

val writer_rng : seed:int -> int -> Random.State.t
val reader_rng : seed:int -> int -> Random.State.t
(** The RNG stream of writer/reader domain [k]: a pure function of
    [(seed, role, k)], so any run - and any reported SI violation - is
    replayable from its config's seed alone. *)

val run : config -> result
(** Seed a dataset, run the concurrent workload for the configured
    simulated duration, quiesce, and check the snapshot-isolation
    invariants. *)

val to_json : result -> string
val write_json : string -> result -> unit

val validate :
  ?require_nonzero:bool ->
  ?min_adaptive_ratio:float ->
  ?max_flushes_per_commit:float ->
  ?max_fences_per_commit:float ->
  string ->
  (unit, string) Stdlib.result
(** Validate an emitted BENCH_htap.json document (schema htap/v2):
    parses, has the expected fields (including the per-tier JIT metrics
    and the Fig. 10 block) and ordered percentiles; with
    [require_nonzero] (default), also requires committed updates,
    analytic reads, zero snapshot-isolation violations and replay-tier
    hits in the Fig. 10 steady state.  [min_adaptive_ratio] gates the
    highest-domain Fig. 10 row: per-worker adaptive throughput must be
    >= ratio x serial-AOT throughput, and compiled-parallel must not be
    slower than interpreter-parallel.  [max_flushes_per_commit] /
    [max_fences_per_commit] cap the media flushes / fences amortised per
    committed transaction - the CI tripwire for persist-discipline
    regressions. *)

val validate_file :
  ?require_nonzero:bool ->
  ?min_adaptive_ratio:float ->
  ?max_flushes_per_commit:float ->
  ?max_fences_per_commit:float ->
  string ->
  (unit, string) Stdlib.result
val print_summary : result -> unit
