(** Parallel crash-to-ready recovery.

    Discovers every rebuildable volatile structure from the pool's
    persistent anchors — table directory mirrors and free-slot lists,
    the dictionary hash, B+-tree inner levels per catalogued index, the
    MVTO watermark and lock state — and rebuilds them phase by phase,
    fanning the read-heavy work out over [Exec.Task_pool] domains.
    When the pool carries a valid checkpoint generation, structures
    whose epoch stamps prove them unchanged since the snapshot restore
    from the blob instead of rescanning primary data, and the
    reconciliation diffs are restricted to epoch-dirty chunks.

    Phases (in order): [pmdk_log], [checkpoint] (only when a checkpoint
    region exists), [tables], [dict], [mvcc], [indexes].  Each phase
    publishes [recovery_phase_ns{phase=...}] and adds to
    [recovery_records_scanned_total] in the media's metrics registry and
    runs inside a [recovery:<phase>] trace span.  All recovery metrics
    (including the warm gauges below) are reset at the start of every
    {!run}, so they always describe the current recovery.

    {!Lazy} mode runs only [pmdk_log] and [mvcc] before returning: the
    engine is query-ready (the [time_to_first_query_ns] gauge) and each
    table free-list, the dict hash and every index warms on first touch
    — or all at once via {!warm_all} — using the same
    checkpoint-or-full-rebuild logic.  The [recovery_mode] gauge stays 1
    until the last structure warms, when [time_to_fully_warm_ns] is
    published.  Touching a structure mid-warm blocks on charged capped
    backoff; it never errors.

    Recovery with N domains produces state identical to serial recovery:
    parallel stages are pure reads or writes over disjoint 512 B-aligned
    regions, and their results are consumed serially in deterministic
    chunk order.  Lazy warms replay the identical operation sequences
    serially, so lazy == eager == serial state holds by construction
    (and the checkpoint crash battery asserts it). *)

type mode = Eager | Lazy

val mode_name : mode -> string

type phase_report = { ph_name : string; ph_ns : int; ph_records : int }

type report = {
  r_threads : int;
  r_mode : mode;
  r_total_ns : int;  (** simulated latency of the phases that ran *)
  r_ttfq_ns : int;  (** simulated time to first query (= [r_total_ns]) *)
  r_phases : phase_report list;  (** in execution order *)
  r_scanned : int;
}

type warm_item = {
  wi_name : string;  (** e.g. ["table:nodes"], ["dict"], ["index:0x..."] *)
  wi_warmed : unit -> bool;
  wi_ensure : unit -> unit;
}

type t

val run : ?threads:int -> ?mode:mode -> ?use_checkpoint:bool -> Pmem.Pool.t -> t
(** Recover a formatted pool.  [threads <= 1] (the default) runs every
    stage serially on the calling domain without spawning a pool;
    [threads = n] spawns an n-domain task pool for the parallel stages
    and shuts it down before returning.  [mode] defaults to {!Eager};
    [use_checkpoint] (default [true]) set to [false] forces full
    rebuilds even when a valid generation exists. *)

val store : t -> Storage.Graph_store.t
val mgr : t -> Mvcc.Mvto.t
val indexes : t -> Gindex.Index.t list
(** Recovered secondary indexes, in catalog order.  In lazy mode these
    are cold handles that warm on first use. *)

val catalog : t -> int
(** Persistent index-catalog offset (attached during the index phase). *)

val report : t -> report
val mode : t -> mode

val warm_items : t -> warm_item list
(** The deferred structures of a lazy recovery (empty for eager), in
    deterministic order: tables, dict, then indexes in catalog order. *)

val warm_pending : t -> int
(** Number of structures still cold. *)

val warm_all : ?threads:int -> t -> unit
(** Force every deferred structure warm now; with [threads] > 1 the
    per-structure warms run on a task pool (structures are disjoint, so
    completion order cannot change the final state). *)
