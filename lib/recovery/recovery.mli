(** Parallel crash-to-ready recovery.

    Discovers every rebuildable volatile structure from the pool's
    persistent anchors — table directory mirrors and free-slot lists,
    the dictionary hash, B+-tree inner levels per catalogued index, the
    MVTO watermark and lock state — and rebuilds them phase by phase,
    fanning the read-heavy work out over [Exec.Task_pool] domains.

    Phases (in order): [pmdk_log], [tables], [dict], [mvcc], [indexes].
    Each phase publishes [recovery_phase_ns{phase=...}] and adds to
    [recovery_records_scanned_total] in the media's metrics registry and
    runs inside a [recovery:<phase>] trace span.

    Recovery with N domains produces state identical to serial recovery:
    parallel stages are pure reads or writes over disjoint 512 B-aligned
    regions, and their results are consumed serially in deterministic
    chunk order. *)

type phase_report = { ph_name : string; ph_ns : int; ph_records : int }

type report = {
  r_threads : int;
  r_total_ns : int;  (** simulated crash-to-ready latency *)
  r_phases : phase_report list;  (** in execution order *)
  r_scanned : int;
}

type t

val run : ?threads:int -> Pmem.Pool.t -> t
(** Recover a formatted pool.  [threads <= 1] (the default) runs every
    stage serially on the calling domain without spawning a pool;
    [threads = n] spawns an n-domain task pool for the parallel stages
    and shuts it down before returning. *)

val store : t -> Storage.Graph_store.t
val mgr : t -> Mvcc.Mvto.t
val indexes : t -> Gindex.Index.t list
(** Recovered secondary indexes, in catalog order. *)

val catalog : t -> int
(** Persistent index-catalog offset (attached during the index phase). *)

val report : t -> report
