(* Parallel crash-to-ready recovery orchestrator.

   The paper's selective-persistence design (hybrid B+-trees with DRAM
   inner nodes, DRAM dirty-version lists, volatile chunk mirrors, DRAM
   dictionary mirror) trades restart work for runtime speed: every
   reattach must rebuild those volatile structures before serving a
   query.  This module discovers all of them from the pool's persistent
   anchors and rebuilds them phase by phase, fanning the read-heavy work
   out over [Exec.Task_pool] domains:

     pmdk_log   PMDK undo-log rollback + DRAM directory mirrors (serial)
     tables     free-slot lists of the node/rel/prop tables, one chunk
                bitmap scan per task
     dict       dictionary hash rebuild from the code array: parallel
                string reads, serial DRAM probe layout, parallel writes
                over disjoint 512 B-aligned hash regions
     mvcc       MVTO header scans per chunk, merged in chunk order,
                then the serial lock-scrub / reclaim / oracle restart
                (before indexes, so reclaimed uncommitted inserts never
                enter the index rebuild scans)
     indexes    per the catalog: hybrid/persistent leaf reads by leaf
                ranges plus node-table population scans by chunk;
                inner-node construction, leaf-vs-population
                reconciliation and corrupt-chain fallback rebuilds stay
                serial (the node store's heap allocator is not
                thread-safe)

   Every parallel stage is either pure charged reads or writes over
   regions partitioned on absolute 512-byte boundaries (one dirty-bitmap
   byte covers one 512 B block), so tasks never race on simulated media
   state.  Serial stages consume per-task results in deterministic chunk
   order, so recovery with N domains yields state identical to serial
   recovery — the property test battery asserts exactly that.

   Phase timing uses per-domain media meters: a phase's simulated cost is
   the coordinator's own charge delta plus the maximum per-worker delta
   (workers run disjoint task subsets concurrently, so the slowest worker
   bounds the phase). *)

module Media = Pmem.Media
module Pool = Pmem.Pool
module G = Storage.Graph_store
module Table = Storage.Table
module Dict = Storage.Dict
module Props = Storage.Props
module Value = Storage.Value
module Mvto = Mvcc.Mvto
module Index = Gindex.Index
module Btree = Gindex.Btree
module Node_store = Gindex.Node_store
module Task_pool = Exec.Task_pool

let log_src =
  Logs.Src.create "poseidon.recovery" ~doc:"parallel crash-to-ready recovery"

module Log = (val Logs.src_log log_src : Logs.LOG)

type phase_report = { ph_name : string; ph_ns : int; ph_records : int }

type report = {
  r_threads : int;
  r_total_ns : int;
  r_phases : phase_report list; (* in execution order *)
  r_scanned : int;
}

type t = {
  store : G.t;
  mgr : Mvto.t;
  indexes : Index.t list; (* catalog order *)
  catalog : int;
  report : report;
}

let store t = t.store
let mgr t = t.mgr
let indexes t = t.indexes
let catalog t = t.catalog
let report t = t.report

(* --- Phase harness ------------------------------------------------------ *)

type ctx = {
  media : Media.t;
  coord : int; (* coordinator's meter id *)
  workers : Task_pool.t option;
  scanned : int Atomic.t; (* recovery_records_scanned_total *)
  mutable phases : phase_report list; (* reversed *)
}

(* Run the tasks over the worker domains, one round-robin group per
   worker.  Tasks cost simulated time but almost no real time, so letting
   workers race on the shared queue would leave the whole batch on
   whichever domain wakes first and the per-worker meters would report no
   overlap; the rendezvous barrier pins exactly one group to each domain
   (a worker holding a group cannot pop a second one while blocked), so
   max-per-worker busy time reflects a genuine parallel schedule. *)
let par_run ctx tasks =
  match ctx.workers with
  | None -> List.iter (fun f -> f ()) tasks
  | Some p ->
      let nw = Task_pool.size p in
      let groups = Array.make nw [] in
      List.iteri (fun i f -> groups.(i mod nw) <- f :: groups.(i mod nw)) tasks;
      let mu = Mutex.create () in
      let cv = Condition.create () in
      let arrived = ref 0 in
      let composite group () =
        Mutex.lock mu;
        incr arrived;
        if !arrived = nw then Condition.broadcast cv
        else while !arrived < nw do Condition.wait cv mu done;
        Mutex.unlock mu;
        List.iter (fun f -> f ()) (List.rev group)
      in
      Task_pool.run p (List.map composite (Array.to_list groups))

(* Task count heuristic: a few tasks per worker so stragglers even out. *)
let fanout ctx = match ctx.workers with None -> 4 | Some p -> Task_pool.size p * 4

(* Run [f] as a named phase: trace span, simulated-ns timing via the
   domain meters, metrics, report entry.  [f] returns (records, result). *)
let phase ctx name f =
  let worker_ids =
    match ctx.workers with Some p -> Task_pool.worker_meters p | None -> []
  in
  Obs.Trace.with_span (Media.tracer ctx.media) ("recovery:" ^ name)
  @@ fun () ->
  let c0 = Media.meter_value ctx.media ctx.coord in
  let w0 = List.map (fun id -> Media.meter_value ctx.media id) worker_ids in
  let records, result = f () in
  let dc = Media.meter_value ctx.media ctx.coord - c0 in
  let dw =
    List.fold_left2
      (fun acc id v0 -> max acc (Media.meter_value ctx.media id - v0))
      0 worker_ids w0
  in
  let ns = dc + dw in
  let reg = Media.registry ctx.media in
  Obs.Metrics.set
    (Obs.Metrics.gauge reg "recovery_phase_ns"
       ~labels:[ ("phase", name) ]
       ~help:"simulated ns spent in the recovery phase")
    ns;
  Obs.Metrics.add ctx.scanned records;
  ctx.phases <- { ph_name = name; ph_ns = ns; ph_records = records } :: ctx.phases;
  result

(* --- Phases ------------------------------------------------------------- *)

(* Free-slot lists of all three tables: one bitmap scan task per chunk,
   results installed serially in chunk order (queue order must match the
   serial rebuild exactly). *)
let tables_phase ctx store =
  let tables =
    [ G.node_table store; G.rel_table store; Props.table (G.prop_store store) ]
  in
  let work =
    List.map
      (fun tbl ->
        let n = Table.nchunks tbl in
        let results = Array.make n [] in
        let tasks =
          List.init n (fun ci () -> results.(ci) <- Table.chunk_free_slots tbl ci)
        in
        (tbl, results, tasks))
      tables
  in
  par_run ctx (List.concat_map (fun (_, _, ts) -> ts) work);
  List.iter
    (fun (tbl, results, _) ->
      Array.iter (fun ids -> Table.add_free_slots tbl ids) results)
    work;
  let slots =
    List.fold_left
      (fun acc tbl -> acc + (Table.nchunks tbl * Table.chunk_capacity tbl))
      0 tables
  in
  (slots, ())

let dict_phase ctx store =
  let dict = G.dict store in
  let n = Dict.count dict in
  let grain = max 64 ((n / fanout ctx) + 1) in
  let plan, reads = Dict.rebuild_read_tasks dict ~grain in
  par_run ctx reads;
  let writes = Dict.rebuild_write_tasks dict plan ~grain:(max 256 grain) in
  par_run ctx writes;
  Dict.rebuild_finish dict plan;
  (n, ())

(* Per-index staged work: charged reads first (parallel), construction
   and reconciliation second (serial). *)
type idx_work =
  | Leafy of {
      desc : int;
      nstore : Node_store.t;
      first_leaf : int;
      infos : Btree.leaf_info array;
      per_chunk : (Value.t * int) list array; (* expected population *)
    }
  | Vol of {
      desc : int;
      nstore : Node_store.t;
      per_chunk : (Value.t * int) list array;
    }

(* One task per node chunk collecting the index's expected population,
   ((value, id) in ascending id order) from the node table. *)
let population_tasks store pool ~desc per_chunk =
  let label = Pool.read_int pool (desc + 24) in
  let key = Pool.read_int pool (desc + 32) in
  List.init
    (Array.length per_chunk)
    (fun ci () ->
      let acc = ref [] in
      G.iter_nodes_chunk store ci (fun id ->
          if G.node_label store id = label then
            match G.node_prop store id key with
            | Some v -> acc := (v, id) :: !acc
            | None -> ());
      per_chunk.(ci) <- List.rev !acc)

(* Commit and secondary-index maintenance are not crash-atomic: a cut
   between a durable commit and its index update leaves the persistent
   leaves missing a committed entry, or holding a stale one for a since
   reclaimed or re-keyed record.  Diff the rebuilt tree against the node
   table (both sides were read by the parallel stage; [li_pairs] avoids
   a second charged pass over the leaves) and apply the rare fixes
   serially, in deterministic order: stale removals in leaf order, then
   missing inserts in chunk order. *)
(* A power cut tears unflushed leaf lines at the 8-byte store granularity
   the hardware keeps atomic: every word reads back old-or-new, so next
   pointers and entry counts stay in range, but an interrupted in-place
   shift can leave a leaf's visible key prefix unsorted (or a mid-split
   tear can splice duplicated runs into the chain out of order).  Such a
   chain cannot seed a rebuild; the tree falls back to re-insertion from
   the node-table population, abandoning the old nodes (a crash-time
   allocation leak, the classic PMem trade). *)
let leaves_sorted infos =
  let prev = ref Int64.min_int in
  Array.for_all
    (fun li ->
      Array.for_all
        (fun (k, _) ->
          let ok = Int64.compare k !prev >= 0 in
          prev := k;
          ok)
        li.Btree.li_pairs)
    infos

let reconcile idx infos per_chunk =
  let expected = Hashtbl.create 256 in
  Array.iter
    (List.iter (fun (v, id) -> Hashtbl.replace expected id (Value.index_key v)))
    per_chunk;
  let stale = ref [] in
  Array.iter
    (fun li ->
      Array.iter
        (fun (k, idv) ->
          let id = Int64.to_int idv in
          match Hashtbl.find_opt expected id with
          | Some k' when k' = k -> Hashtbl.remove expected id
          | _ -> stale := (k, id) :: !stale)
        li.Btree.li_pairs)
    infos;
  List.iter (fun (k, id) -> ignore (Index.remove_entry idx k id)) (List.rev !stale);
  Array.iter
    (List.iter (fun (v, id) ->
         if Hashtbl.mem expected id then Index.insert idx v id))
    per_chunk

let indexes_phase ctx store pool =
  let catalog = Index.Catalog.attach pool ~root_slot:G.root_index in
  let descs = Index.Catalog.list pool ~catalog in
  let media = Pool.media pool in
  let dummy =
    { Btree.li_handle = 0; li_min = 0L; li_entries = 0; li_pairs = [||] }
  in
  let nchunks = G.node_chunks store in
  let work_of desc =
    let per_chunk = Array.make nchunks [] in
    let pop_tasks = population_tasks store pool ~desc per_chunk in
    match Index.desc_placement pool ~desc with
    | (Node_store.Hybrid | Node_store.Persistent) as placement ->
        let nstore = Node_store.make placement ~pool ~media in
        let first_leaf = Index.desc_first_leaf pool ~desc in
        let handles = Btree.leaf_handles nstore ~first_leaf in
        let infos = Array.make (Array.length handles) dummy in
        let nleaves = Array.length handles in
        let grain = max 1 ((nleaves / fanout ctx) + 1) in
        let tasks = ref [] and lo = ref 0 in
        while !lo < nleaves do
          let l = !lo and h = min nleaves (!lo + grain) in
          tasks :=
            (fun () ->
              for i = l to h - 1 do
                infos.(i) <- Btree.read_leaf_info nstore handles.(i)
              done)
            :: !tasks;
          lo := h
        done;
        (Leafy { desc; nstore; first_leaf; infos; per_chunk },
          List.rev !tasks @ pop_tasks )
    | Node_store.Volatile ->
        let nstore = Node_store.make Node_store.Volatile ~pool ~media in
        (Vol { desc; nstore; per_chunk }, pop_tasks)
  in
  let work = List.map work_of descs in
  par_run ctx (List.concat_map snd work);
  let records = ref 0 in
  let indexes =
    List.map
      (fun (w, _) ->
        match w with
        | Leafy { desc; nstore; first_leaf; infos; per_chunk } ->
            let entries =
              Array.fold_left (fun a li -> a + li.Btree.li_entries) 0 infos
            in
            records := !records + entries;
            if leaves_sorted infos then begin
              (* The inner levels are rebuilt from the chain for both
                 placements: a cut between a leaf split's persist and its
                 parent's update leaves durable inner nodes that miss the
                 new leaf, so even a persistent root cannot be attached
                 unverified.  The old persistent inner nodes leak. *)
              let tree = Btree.build_from_leaf_infos nstore ~first_leaf infos in
              let idx = Index.attach_tree pool ~desc tree in
              Index.sync_meta idx;
              reconcile idx infos per_chunk;
              idx
            end
            else begin
              (* torn leaf: abandon the chain, re-insert everything *)
              let idx = Index.attach_tree pool ~desc (Btree.create nstore) in
              Index.sync_meta idx;
              Array.iter
                (List.iter (fun (v, id) -> Index.insert idx v id))
                per_chunk;
              Index.sync_meta idx;
              idx
            end
        | Vol { desc; nstore; per_chunk } ->
            let idx = Index.attach_tree pool ~desc (Btree.create nstore) in
            Array.iter
              (fun pairs ->
                List.iter
                  (fun (v, id) ->
                    records := !records + 1;
                    Index.insert idx v id)
                  pairs)
              per_chunk;
            idx)
      work
  in
  (!records, (indexes, catalog))

let mvcc_phase ctx store =
  let nn = G.node_chunks store and nr = G.rel_chunks store in
  let nres = Array.make (max nn 1) Mvto.empty_scan in
  let rres = Array.make (max nr 1) Mvto.empty_scan in
  let tasks =
    List.init nn (fun ci () -> nres.(ci) <- Mvto.scan_node_chunk store ci)
    @ List.init nr (fun ci () -> rres.(ci) <- Mvto.scan_rel_chunk store ci)
  in
  par_run ctx tasks;
  let sc = Array.fold_left Mvto.merge_scans Mvto.empty_scan nres in
  let sc = Array.fold_left Mvto.merge_scans sc rres in
  (sc.Mvto.sc_scanned, Mvto.apply_scan store sc)

(* --- Orchestrator ------------------------------------------------------- *)

let run ?(threads = 1) pool =
  let media = Pool.media pool in
  let coord = Media.install_meter media in
  let workers =
    if threads <= 1 then None
    else Some (Task_pool.create ~media ~nworkers:threads ())
  in
  let scanned =
    Obs.Metrics.counter (Media.registry media) "recovery_records_scanned_total"
      ~help:"records scanned during recovery"
  in
  let ctx = { media; coord; workers; scanned; phases = [] } in
  Fun.protect
    ~finally:(fun () ->
      match workers with Some p -> Task_pool.shutdown p | None -> ())
  @@ fun () ->
  let store = phase ctx "pmdk_log" (fun () -> (0, G.open_deferred pool)) in
  phase ctx "tables" (fun () -> tables_phase ctx store);
  phase ctx "dict" (fun () -> dict_phase ctx store);
  (* mvcc must precede indexes: reclaiming uncommitted inserts first
     keeps them out of the volatile-index rebuild scans *)
  let mgr = phase ctx "mvcc" (fun () -> mvcc_phase ctx store) in
  let indexes, catalog =
    phase ctx "indexes" (fun () -> indexes_phase ctx store pool)
  in
  let phases = List.rev ctx.phases in
  let total = List.fold_left (fun a p -> a + p.ph_ns) 0 phases in
  let scanned_total =
    List.fold_left (fun a p -> a + p.ph_records) 0 phases
  in
  let report =
    {
      r_threads = max threads 1;
      r_total_ns = total;
      r_phases = phases;
      r_scanned = scanned_total;
    }
  in
  Log.info (fun m ->
      m "crash-to-ready in %d simulated us over %d domain(s): %s" (total / 1000)
        (max threads 1)
        (String.concat ", "
           (List.map
              (fun p -> Printf.sprintf "%s %dus" p.ph_name (p.ph_ns / 1000))
              phases)));
  { store; mgr; indexes; catalog; report }
