(* Parallel crash-to-ready recovery orchestrator.

   The paper's selective-persistence design (hybrid B+-trees with DRAM
   inner nodes, DRAM dirty-version lists, volatile chunk mirrors, DRAM
   dictionary mirror) trades restart work for runtime speed: every
   reattach must rebuild those volatile structures before serving a
   query.  This module discovers all of them from the pool's persistent
   anchors and rebuilds them phase by phase, fanning the read-heavy work
   out over [Exec.Task_pool] domains:

     pmdk_log   PMDK undo-log rollback + DRAM directory mirrors (serial)
     checkpoint load the newest valid checkpoint generation (when one
                exists): slot commit word and blob checksum verified,
                torn blobs fall back to the older generation
     tables     free-slot lists of the node/rel/prop tables, one chunk
                bitmap scan per task; chunks whose epoch stamp proves
                them unchanged since the checkpoint take their list
                from the blob with zero media reads
     dict       dictionary hash restore from the checkpoint image plus
                a delta replay of the codes assigned since, or the full
                rebuild from the code array: parallel string reads,
                serial DRAM probe layout, parallel writes over disjoint
                512 B-aligned hash regions
     mvcc       MVTO header scans per chunk, merged in chunk order,
                then the serial lock-scrub / reclaim / oracle restart
                (before indexes, so reclaimed uncommitted inserts never
                enter the index rebuild scans)
     indexes    per the catalog: an index whose epoch stamp is within
                the checkpoint rebuilds its inner levels from the
                blob's leaf summaries (volatile trees replay the blob's
                pair list) and reconciles only epoch-dirty node chunks;
                otherwise hybrid/persistent leaf reads by leaf ranges
                plus node-table population scans by chunk, with
                inner-node construction, leaf-vs-population
                reconciliation and corrupt-chain fallback rebuilds
                serial (the node store's heap allocator is not
                thread-safe)

   Lazy mode (instant restart) runs only pmdk_log and mvcc before
   declaring the engine query-ready: every table free-list, the dict
   hash and every index is parked behind a warm closure that runs the
   same checkpoint-restore-or-full-rebuild logic on first touch (or via
   {!warm_all}).  Touching a structure mid-warm blocks on charged
   capped backoff inside the structure itself - it never errors.  The
   [recovery_mode] gauge stays 1 until the last structure warms, when
   [time_to_fully_warm_ns] is published next to
   [time_to_first_query_ns].

   Every parallel stage is either pure charged reads or writes over
   regions partitioned on absolute 512-byte boundaries (one dirty-bitmap
   byte covers one 512 B block), so tasks never race on simulated media
   state.  Serial stages consume per-task results in deterministic chunk
   order, so recovery with N domains yields state identical to serial
   recovery — the property test battery asserts exactly that, and the
   checkpoint battery extends it to lazy == eager == serial.

   Phase timing uses per-domain media meters: a phase's simulated cost is
   the coordinator's own charge delta plus the maximum per-worker delta
   (workers run disjoint task subsets concurrently, so the slowest worker
   bounds the phase). *)

module Media = Pmem.Media
module Pool = Pmem.Pool
module G = Storage.Graph_store
module Table = Storage.Table
module Dict = Storage.Dict
module Props = Storage.Props
module Value = Storage.Value
module Layout = Storage.Layout
module Mvto = Mvcc.Mvto
module Index = Gindex.Index
module Btree = Gindex.Btree
module Node_store = Gindex.Node_store
module Task_pool = Exec.Task_pool
module Ckpt = Checkpoint

let log_src =
  Logs.Src.create "poseidon.recovery" ~doc:"parallel crash-to-ready recovery"

module Log = (val Logs.src_log log_src : Logs.LOG)

type mode = Eager | Lazy

let mode_name = function Eager -> "eager" | Lazy -> "lazy"

type phase_report = { ph_name : string; ph_ns : int; ph_records : int }

type report = {
  r_threads : int;
  r_mode : mode;
  r_total_ns : int;
  r_ttfq_ns : int; (* = r_total_ns; first-queryable point of this run *)
  r_phases : phase_report list; (* in execution order *)
  r_scanned : int;
}

type warm_item = {
  wi_name : string;
  wi_warmed : unit -> bool;
  wi_ensure : unit -> unit;
}

type t = {
  store : G.t;
  mgr : Mvto.t;
  indexes : Index.t list; (* catalog order *)
  catalog : int;
  report : report;
  t_mode : mode;
  warm_items : warm_item list; (* empty in eager mode *)
  warm_left : int Atomic.t;
}

let store t = t.store
let mgr t = t.mgr
let indexes t = t.indexes
let catalog t = t.catalog
let report t = t.report
let mode t = t.t_mode
let warm_items t = t.warm_items
let warm_pending t = Atomic.get t.warm_left

(* --- Metrics ------------------------------------------------------------ *)

let phase_names = [ "pmdk_log"; "checkpoint"; "tables"; "dict"; "mvcc"; "indexes" ]

let phase_gauge reg name =
  Obs.Metrics.gauge reg "recovery_phase_ns"
    ~labels:[ ("phase", name) ]
    ~help:"simulated ns spent in the recovery phase"

let scanned_counter reg =
  Obs.Metrics.counter reg "recovery_records_scanned_total"
    ~help:"records scanned during recovery"

let mode_gauge reg =
  Obs.Metrics.gauge reg "recovery_mode"
    ~help:"1 while lazily warming after a restart, 0 once fully warm"

let ttfq_gauge reg =
  Obs.Metrics.gauge reg "time_to_first_query_ns"
    ~help:"simulated ns from reopen until the engine can serve queries"

let ttfw_gauge reg =
  Obs.Metrics.gauge reg "time_to_fully_warm_ns"
    ~help:"simulated ns from reopen until every volatile structure is warm"

(* Every reopen starts from a clean slate: phase gauges, the scanned
   counter and the warm gauges all describe the CURRENT recovery, never
   a stale previous one. *)
let reset_metrics reg =
  List.iter (fun name -> Obs.Metrics.set (phase_gauge reg name) 0) phase_names;
  Obs.Metrics.set (scanned_counter reg) 0;
  Obs.Metrics.set (mode_gauge reg) 0;
  Obs.Metrics.set (ttfq_gauge reg) 0;
  Obs.Metrics.set (ttfw_gauge reg) 0

(* --- Phase harness ------------------------------------------------------ *)

type ctx = {
  media : Media.t;
  coord : int; (* coordinator's meter id *)
  workers : Task_pool.t option;
  scanned : int Atomic.t; (* recovery_records_scanned_total *)
  mutable phases : phase_report list; (* reversed *)
}

(* Run the tasks over the worker domains, one round-robin group per
   worker.  Tasks cost simulated time but almost no real time, so letting
   workers race on the shared queue would leave the whole batch on
   whichever domain wakes first and the per-worker meters would report no
   overlap; the rendezvous barrier pins exactly one group to each domain
   (a worker holding a group cannot pop a second one while blocked), so
   max-per-worker busy time reflects a genuine parallel schedule. *)
let par_run ctx tasks =
  match ctx.workers with
  | None -> List.iter (fun f -> f ()) tasks
  | Some p ->
      let nw = Task_pool.size p in
      let groups = Array.make nw [] in
      List.iteri (fun i f -> groups.(i mod nw) <- f :: groups.(i mod nw)) tasks;
      let mu = Mutex.create () in
      let cv = Condition.create () in
      let arrived = ref 0 in
      let composite group () =
        Mutex.lock mu;
        incr arrived;
        if !arrived = nw then Condition.broadcast cv
        else while !arrived < nw do Condition.wait cv mu done;
        Mutex.unlock mu;
        List.iter (fun f -> f ()) (List.rev group)
      in
      Task_pool.run p (List.map composite (Array.to_list groups))

(* Task count heuristic: a few tasks per worker so stragglers even out. *)
let fanout ctx = match ctx.workers with None -> 4 | Some p -> Task_pool.size p * 4

(* Run [f] as a named phase: trace span, simulated-ns timing via the
   domain meters, metrics, report entry.  [f] returns (records, result). *)
let phase ctx name f =
  let worker_ids =
    match ctx.workers with Some p -> Task_pool.worker_meters p | None -> []
  in
  Obs.Trace.with_span (Media.tracer ctx.media) ("recovery:" ^ name)
  @@ fun () ->
  let c0 = Media.meter_value ctx.media ctx.coord in
  let w0 = List.map (fun id -> Media.meter_value ctx.media id) worker_ids in
  let records, result = f () in
  let dc = Media.meter_value ctx.media ctx.coord - c0 in
  let dw =
    List.fold_left2
      (fun acc id v0 -> max acc (Media.meter_value ctx.media id - v0))
      0 worker_ids w0
  in
  let ns = dc + dw in
  Obs.Metrics.set (phase_gauge (Media.registry ctx.media) name) ns;
  Obs.Metrics.add ctx.scanned records;
  ctx.phases <- { ph_name = name; ph_ns = ns; ph_records = records } :: ctx.phases;
  result

(* --- Checkpoint validity helpers ---------------------------------------- *)

(* A node chunk may differ from the generation's snapshot when it did
   not exist at checkpoint time or its epoch stamp exceeds the
   generation's snapshot epoch (mark-before-mutate guarantees every
   post-checkpoint mutation bumped the stamp first). *)
let dirty_node_flags store gen =
  let tbl = G.node_table store in
  let snap = gen.Ckpt.g_snap_epoch in
  let ck = Array.length gen.Ckpt.g_tables.(0) in
  Array.init (Table.nchunks tbl) (fun ci ->
      ci >= ck || Table.chunk_epoch tbl ci > snap)

(* Free-slot list of one chunk: from the blob when the chunk provably
   did not change since the checkpoint, else a charged bitmap rescan.
   Both yield the canonical ascending order the serial rebuild uses. *)
let table_chunk_ids gen_opt ti tbl ci =
  match gen_opt with
  | Some gen
    when ci < Array.length gen.Ckpt.g_tables.(ti)
         && Table.chunk_epoch tbl ci <= gen.Ckpt.g_snap_epoch ->
      gen.Ckpt.g_tables.(ti).(ci)
  | _ -> Table.chunk_free_slots tbl ci

(* --- Phases ------------------------------------------------------------- *)

let store_tables store =
  [ G.node_table store; G.rel_table store; Props.table (G.prop_store store) ]

(* Free-slot lists of all three tables: one bitmap scan task per dirty
   chunk (checkpoint-clean chunks come straight from the blob), results
   installed serially in chunk order (queue order must match the serial
   rebuild exactly). *)
let tables_phase ctx store gen_opt =
  let tables = store_tables store in
  let work =
    List.mapi
      (fun ti tbl ->
        let n = Table.nchunks tbl in
        let results = Array.make n [] in
        let tasks =
          List.filter_map Fun.id
            (List.init n (fun ci ->
                 match gen_opt with
                 | Some gen
                   when ci < Array.length gen.Ckpt.g_tables.(ti)
                        && Table.chunk_epoch tbl ci <= gen.Ckpt.g_snap_epoch ->
                     results.(ci) <- gen.Ckpt.g_tables.(ti).(ci);
                     None
                 | _ ->
                     Some
                       (fun () ->
                         results.(ci) <- Table.chunk_free_slots tbl ci)))
        in
        (tbl, results, tasks))
      tables
  in
  par_run ctx (List.concat_map (fun (_, _, ts) -> ts) work);
  List.iter
    (fun (tbl, results, _) ->
      Array.iter (fun ids -> Table.add_free_slots tbl ids) results)
    work;
  let slots =
    List.fold_left
      (fun acc tbl -> acc + (Table.nchunks tbl * Table.chunk_capacity tbl))
      0 tables
  in
  (slots, ())

let dict_full_rebuild ctx store =
  let dict = G.dict store in
  let n = Dict.count dict in
  let grain = max 64 ((n / fanout ctx) + 1) in
  let plan, reads = Dict.rebuild_read_tasks dict ~grain in
  par_run ctx reads;
  let writes = Dict.rebuild_write_tasks dict plan ~grain:(max 256 grain) in
  par_run ctx writes;
  Dict.rebuild_finish dict plan

let dict_phase ctx store gen_opt =
  let dict = G.dict store in
  let restored =
    match gen_opt with
    | Some gen -> Dict.restore dict gen.Ckpt.g_dict ~snap_epoch:gen.Ckpt.g_snap_epoch
    | None -> false
  in
  if not restored then dict_full_rebuild ctx store;
  (Dict.count dict, ())

(* Records whose versions must not enter an index rebuild: an
   uncommitted insert (write lock still equals its begin stamp - the
   mvcc phase reclaims it) and a committed delete awaiting GC (the live
   engine removed its index entries at delete-commit, so resurrecting
   them would diverge from both the pre-crash index and any checkpoint
   of it).  One touch charges the header line; field reads are raw. *)
let node_indexable store id =
  let pool = G.pool store in
  let off = G.node_off store id in
  Pool.touch_read pool ~off:(off + Layout.Node.txn_id) ~len:24;
  let txn = Pool.raw_read_int pool (off + Layout.Node.txn_id) in
  let bts = Pool.raw_read_int pool (off + Layout.Node.bts) in
  let ets = Pool.raw_read_int pool (off + Layout.Node.ets) in
  (not (txn <> 0 && bts = txn)) && ets = Layout.inf_ts

(* The index's expected population from one node chunk, (value, id) in
   ascending id order. *)
let chunk_population store ~label ~key ci =
  let acc = ref [] in
  G.iter_nodes_chunk store ci (fun id ->
      if node_indexable store id && G.node_label store id = label then
        match G.node_prop store id key with
        | Some v -> acc := (v, id) :: !acc
        | None -> ());
  List.rev !acc

let desc_label pool desc = Pool.read_int pool (desc + 24)
let desc_key pool desc = Pool.read_int pool (desc + 32)

(* Commit and secondary-index maintenance are not crash-atomic: a cut
   between a durable commit and its index update leaves the persistent
   leaves missing a committed entry, or holding a stale one for a since
   reclaimed or re-keyed record.  Diff the tree's leaves against the
   node table and apply the rare fixes serially, in deterministic order:
   stale removals in leaf order, then missing inserts in chunk order.

   [dirty] restricts the diff to epoch-dirty node chunks: entries of
   clean chunks provably match (the checkpoint was taken at quiescence,
   when index and population agreed, and neither side changed since), so
   skipping them yields the identical operation sequence to the full
   diff.  Returns the number of fixes applied. *)
let reconcile_tree tree infos per_chunk ~cap ~dirty =
  let is_dirty ci = ci >= Array.length dirty || dirty.(ci) in
  let expected = Hashtbl.create 256 in
  Array.iteri
    (fun ci entries ->
      if is_dirty ci then
        List.iter
          (fun (v, id) -> Hashtbl.replace expected id (Value.index_key v))
          entries)
    per_chunk;
  let stale = ref [] in
  Array.iter
    (fun li ->
      Array.iter
        (fun (k, idv) ->
          let id = Int64.to_int idv in
          if is_dirty (id / cap) then
            match Hashtbl.find_opt expected id with
            | Some k' when k' = k -> Hashtbl.remove expected id
            | _ -> stale := (k, id) :: !stale)
        li.Btree.li_pairs)
    infos;
  let fixes = ref 0 in
  List.iter
    (fun (k, id) ->
      incr fixes;
      ignore (Btree.remove tree k (Int64.of_int id)))
    (List.rev !stale);
  Array.iteri
    (fun ci entries ->
      if is_dirty ci then
        List.iter
          (fun (v, id) ->
            if Hashtbl.mem expected id then begin
              incr fixes;
              Btree.insert tree (Value.index_key v) (Int64.of_int id)
            end)
          entries)
    per_chunk;
  !fixes

(* A power cut tears unflushed leaf lines at the 8-byte store granularity
   the hardware keeps atomic: every word reads back old-or-new, so next
   pointers and entry counts stay in range, but an interrupted in-place
   shift can leave a leaf's visible key prefix unsorted (or a mid-split
   tear can splice duplicated runs into the chain out of order).  Such a
   chain cannot seed a rebuild; the tree falls back to re-insertion from
   the node-table population, abandoning the old nodes (a crash-time
   allocation leak, the classic PMem trade). *)
let leaves_sorted infos =
  let prev = ref Int64.min_int in
  Array.for_all
    (fun li ->
      Array.for_all
        (fun (k, _) ->
          let ok = Int64.compare k !prev >= 0 in
          prev := k;
          ok)
        li.Btree.li_pairs)
    infos

let all_dirty = [||] (* out-of-range chunks count as dirty *)

(* The volatile-tree replay order: checkpoint pairs for clean chunks
   merged with the current population of dirty chunks, ascending record
   id overall - exactly the sequence the from-scratch rebuild inserts,
   so duplicate-key scan order matches it bit for bit. *)
let merge_vol_pairs pairs per_chunk ~cap ~dirty =
  let kept =
    Array.to_list pairs
    |> List.filter (fun (_, id) ->
           let ci = id / cap in
           ci < Array.length dirty && not dirty.(ci))
  in
  let extra = ref [] in
  Array.iteri
    (fun ci entries ->
      if ci >= Array.length dirty || dirty.(ci) then
        List.iter
          (fun (v, id) -> extra := (Value.index_key v, id) :: !extra)
          entries)
    per_chunk;
  List.sort (fun (_, a) (_, b) -> compare a b) (kept @ List.rev !extra)

(* Per-index staged work: charged reads first (parallel), construction
   and reconciliation second (serial). *)
type idx_work =
  | Leafy of {
      desc : int;
      nstore : Node_store.t;
      first_leaf : int;
      infos : Btree.leaf_info array;
      per_chunk : (Value.t * int) list array; (* expected population *)
    }
  | Vol of {
      desc : int;
      nstore : Node_store.t;
      per_chunk : (Value.t * int) list array;
    }
  | Ck_leafy of {
      desc : int;
      nstore : Node_store.t;
      first_leaf : int; (* from the blob *)
      infos : Btree.leaf_info array; (* from the blob *)
      per_chunk : (Value.t * int) list array; (* dirty chunks only *)
      dirty : bool array;
    }
  | Ck_vol of {
      desc : int;
      nstore : Node_store.t;
      pairs : (int64 * int) array; (* from the blob *)
      per_chunk : (Value.t * int) list array; (* dirty chunks only *)
      dirty : bool array;
    }

(* One population task per node chunk (restricted to [dirty] when the
   index restores from a checkpoint). *)
let population_tasks store pool ~desc ?dirty per_chunk =
  let label = desc_label pool desc in
  let key = desc_key pool desc in
  let wanted ci =
    match dirty with
    | None -> true
    | Some d -> ci >= Array.length d || d.(ci)
  in
  List.filter_map Fun.id
    (List.init
       (Array.length per_chunk)
       (fun ci ->
         if wanted ci then
           Some (fun () -> per_chunk.(ci) <- chunk_population store ~label ~key ci)
         else None))

let indexes_phase ctx store pool gen_opt epoch =
  let catalog = Index.Catalog.attach pool ~root_slot:G.root_index in
  let descs = Index.Catalog.list pool ~catalog in
  let media = Pool.media pool in
  let dummy =
    { Btree.li_handle = 0; li_min = 0L; li_entries = 0; li_pairs = [||] }
  in
  let nchunks = G.node_chunks store in
  let cap = Table.chunk_capacity (G.node_table store) in
  let node_dirty =
    match gen_opt with Some gen -> Some (dirty_node_flags store gen) | None -> None
  in
  (* An index restores from the generation when the blob carries it and
     its epoch stamp proves no mutation happened since the snapshot. *)
  let snap_of desc =
    match (gen_opt, node_dirty) with
    | Some gen, Some dirty when Index.desc_epoch pool ~desc <= gen.Ckpt.g_snap_epoch
      -> (
        match List.assoc_opt desc gen.Ckpt.g_indexes with
        | Some snap -> Some (snap, dirty)
        | None -> None)
    | _ -> None
  in
  let work_of desc =
    let per_chunk = Array.make nchunks [] in
    match (Index.desc_placement pool ~desc, snap_of desc) with
    | ( (Node_store.Hybrid | Node_store.Persistent),
        Some (Ckpt.Leaves { first_leaf; infos }, dirty) ) ->
        let nstore = Node_store.make (Index.desc_placement pool ~desc) ~pool ~media in
        let pop_tasks = population_tasks store pool ~desc ~dirty per_chunk in
        (Ck_leafy { desc; nstore; first_leaf; infos; per_chunk; dirty }, pop_tasks)
    | Node_store.Volatile, Some (Ckpt.Pairs pairs, dirty) ->
        let nstore = Node_store.make Node_store.Volatile ~pool ~media in
        let pop_tasks = population_tasks store pool ~desc ~dirty per_chunk in
        (Ck_vol { desc; nstore; pairs; per_chunk; dirty }, pop_tasks)
    | (Node_store.Hybrid | Node_store.Persistent) as placement, _ ->
        let pop_tasks = population_tasks store pool ~desc per_chunk in
        let nstore = Node_store.make placement ~pool ~media in
        let first_leaf = Index.desc_first_leaf pool ~desc in
        let handles = Btree.leaf_handles nstore ~first_leaf in
        let infos = Array.make (Array.length handles) dummy in
        let nleaves = Array.length handles in
        let grain = max 1 ((nleaves / fanout ctx) + 1) in
        let tasks = ref [] and lo = ref 0 in
        while !lo < nleaves do
          let l = !lo and h = min nleaves (!lo + grain) in
          tasks :=
            (fun () ->
              for i = l to h - 1 do
                infos.(i) <- Btree.read_leaf_info nstore handles.(i)
              done)
            :: !tasks;
          lo := h
        done;
        (Leafy { desc; nstore; first_leaf; infos; per_chunk },
          List.rev !tasks @ pop_tasks )
    | Node_store.Volatile, _ ->
        let pop_tasks = population_tasks store pool ~desc per_chunk in
        let nstore = Node_store.make Node_store.Volatile ~pool ~media in
        (Vol { desc; nstore; per_chunk }, pop_tasks)
  in
  let work = List.map work_of descs in
  par_run ctx (List.concat_map snd work);
  let records = ref 0 in
  let finish_leafy ~desc ~nstore ~first_leaf ~infos ~per_chunk ~dirty =
    let entries = Array.fold_left (fun a li -> a + li.Btree.li_entries) 0 infos in
    records := !records + entries;
    if leaves_sorted infos then begin
      (* The inner levels are rebuilt from the chain for both
         placements: a cut between a leaf split's persist and its
         parent's update leaves durable inner nodes that miss the
         new leaf, so even a persistent root cannot be attached
         unverified.  The old persistent inner nodes leak. *)
      let tree = Btree.build_from_leaf_infos nstore ~first_leaf infos in
      let idx = Index.attach_tree pool ~desc tree in
      Index.sync_meta idx;
      let fixes = reconcile_tree tree infos per_chunk ~cap ~dirty in
      if fixes > 0 then begin
        (* the leaves changed under a possibly-clean stamp: re-anchor
           and invalidate the stamp against the loaded generation *)
        Index.sync_meta idx;
        if epoch > 0 then Index.mark_desc pool ~desc epoch
      end;
      idx
    end
    else begin
      (* torn leaf: abandon the chain, re-insert everything *)
      let idx = Index.attach_tree pool ~desc (Btree.create nstore) in
      Index.sync_meta idx;
      Array.iter
        (List.iter (fun (v, id) -> Index.insert idx v id))
        per_chunk;
      Index.sync_meta idx;
      if epoch > 0 then Index.mark_desc pool ~desc epoch;
      idx
    end
  in
  let built =
    List.map
      (fun (w, _) ->
        match w with
        | Leafy { desc; nstore; first_leaf; infos; per_chunk } ->
            finish_leafy ~desc ~nstore ~first_leaf ~infos ~per_chunk
              ~dirty:all_dirty
        | Ck_leafy { desc; nstore; first_leaf; infos; per_chunk; dirty } ->
            finish_leafy ~desc ~nstore ~first_leaf ~infos ~per_chunk ~dirty
        | Vol { desc; nstore; per_chunk } ->
            let idx = Index.attach_tree pool ~desc (Btree.create nstore) in
            Array.iter
              (fun pairs ->
                List.iter
                  (fun (v, id) ->
                    records := !records + 1;
                    Index.insert idx v id)
                  pairs)
              per_chunk;
            idx
        | Ck_vol { desc; nstore; pairs; per_chunk; dirty } ->
            let idx = Index.attach_tree pool ~desc (Btree.create nstore) in
            let all = merge_vol_pairs pairs per_chunk ~cap ~dirty in
            List.iter
              (fun (k, id) ->
                records := !records + 1;
                Btree.insert (Index.tree idx) k (Int64.of_int id))
              all;
            idx)
      work
  in
  List.iter (fun idx -> Index.set_epoch_cache idx epoch) built;
  (!records, (built, catalog))

let mvcc_phase ctx store =
  let nn = G.node_chunks store and nr = G.rel_chunks store in
  let nres = Array.make (max nn 1) Mvto.empty_scan in
  let rres = Array.make (max nr 1) Mvto.empty_scan in
  let tasks =
    List.init nn (fun ci () -> nres.(ci) <- Mvto.scan_node_chunk store ci)
    @ List.init nr (fun ci () -> rres.(ci) <- Mvto.scan_rel_chunk store ci)
  in
  par_run ctx tasks;
  let sc = Array.fold_left Mvto.merge_scans Mvto.empty_scan nres in
  let sc = Array.fold_left Mvto.merge_scans sc rres in
  (sc.Mvto.sc_scanned, Mvto.apply_scan store sc)

(* --- Lazy warm closures ------------------------------------------------- *)

(* The generation blob is loaded (and checksum-verified) at most once,
   by whichever structure warms first; the others block on the mutex for
   the load's duration.  Keeping the load out of the critical restart
   path is the point: time-to-first-query excludes it. *)
let lazy_gen pool use_checkpoint =
  let mu = Mutex.create () in
  let cell = ref None in
  fun () ->
    match !cell with
    | Some g -> g
    | None ->
        Mutex.lock mu;
        let g =
          match !cell with
          | Some g -> g
          | None ->
              let g = if use_checkpoint then Ckpt.load pool else None in
              cell := Some g;
              g
        in
        Mutex.unlock mu;
        g

(* Serial (single-toucher) variants of the phase bodies, run on first
   touch.  Identical decision logic and operation order to the eager
   phases, so lazy == eager == serial state holds by construction. *)

let warm_dict_fn store gen =
  let dict = G.dict store in
  let restored =
    match gen () with
    | Some g -> Dict.restore dict g.Ckpt.g_dict ~snap_epoch:g.Ckpt.g_snap_epoch
    | None -> false
  in
  if not restored then begin
    let n = Dict.count dict in
    let grain = max 64 ((n / 4) + 1) in
    let plan, reads = Dict.rebuild_read_tasks dict ~grain in
    List.iter (fun f -> f ()) reads;
    List.iter (fun f -> f ()) (Dict.rebuild_write_tasks dict plan ~grain:(max 256 grain));
    Dict.rebuild_finish dict plan
  end

let warm_table_fn ti tbl gen () =
  let g = gen () in
  List.concat (List.init (Table.nchunks tbl) (fun ci -> table_chunk_ids g ti tbl ci))

let warm_index_fn store pool ~desc gen epoch () =
  let media = Pool.media pool in
  let nchunks = G.node_chunks store in
  let cap = Table.chunk_capacity (G.node_table store) in
  let label = desc_label pool desc in
  let key = desc_key pool desc in
  let populate dirty =
    Array.init nchunks (fun ci ->
        if ci >= Array.length dirty || dirty.(ci) then
          chunk_population store ~label ~key ci
        else [])
  in
  let snap =
    match gen () with
    | Some g when Index.desc_epoch pool ~desc <= g.Ckpt.g_snap_epoch -> (
        match List.assoc_opt desc g.Ckpt.g_indexes with
        | Some s -> Some (s, dirty_node_flags store g)
        | None -> None)
    | _ -> None
  in
  match (Index.desc_placement pool ~desc, snap) with
  | ( ((Node_store.Hybrid | Node_store.Persistent) as placement),
      Some (Ckpt.Leaves { first_leaf; infos }, dirty) ) ->
      let nstore = Node_store.make placement ~pool ~media in
      let tree = Btree.build_from_leaf_infos nstore ~first_leaf infos in
      let per_chunk = populate dirty in
      let fixes = reconcile_tree tree infos per_chunk ~cap ~dirty in
      if fixes > 0 && epoch > 0 then Index.mark_desc pool ~desc epoch;
      tree
  | Node_store.Volatile, Some (Ckpt.Pairs pairs, dirty) ->
      let nstore = Node_store.make Node_store.Volatile ~pool ~media in
      let tree = Btree.create nstore in
      let per_chunk = populate dirty in
      List.iter
        (fun (k, id) -> Btree.insert tree k (Int64.of_int id))
        (merge_vol_pairs pairs per_chunk ~cap ~dirty);
      tree
  | (Node_store.Hybrid | Node_store.Persistent) as placement, _ ->
      let nstore = Node_store.make placement ~pool ~media in
      let first_leaf = Index.desc_first_leaf pool ~desc in
      let handles = Btree.leaf_handles nstore ~first_leaf in
      let infos = Array.map (Btree.read_leaf_info nstore) handles in
      let per_chunk = populate all_dirty in
      if leaves_sorted infos then begin
        let tree = Btree.build_from_leaf_infos nstore ~first_leaf infos in
        let fixes = reconcile_tree tree infos per_chunk ~cap ~dirty:all_dirty in
        if fixes > 0 && epoch > 0 then Index.mark_desc pool ~desc epoch;
        tree
      end
      else begin
        let tree = Btree.create nstore in
        Array.iter
          (List.iter (fun (v, id) ->
               Btree.insert tree (Value.index_key v) (Int64.of_int id)))
          per_chunk;
        if epoch > 0 then Index.mark_desc pool ~desc epoch;
        tree
      end
  | Node_store.Volatile, _ ->
      let nstore = Node_store.make Node_store.Volatile ~pool ~media in
      let tree = Btree.create nstore in
      Array.iter
        (List.iter (fun (v, id) ->
             Btree.insert tree (Value.index_key v) (Int64.of_int id)))
        (populate all_dirty);
      tree

(* --- Orchestrator ------------------------------------------------------- *)

let run ?(threads = 1) ?(mode = Eager) ?(use_checkpoint = true) pool =
  let media = Pool.media pool in
  let reg = Media.registry media in
  reset_metrics reg;
  let coord = Media.install_meter media in
  let workers =
    if threads <= 1 then None
    else Some (Task_pool.create ~media ~nworkers:threads ())
  in
  let scanned = scanned_counter reg in
  let ctx = { media; coord; workers; scanned; phases = [] } in
  Fun.protect
    ~finally:(fun () ->
      match workers with Some p -> Task_pool.shutdown p | None -> ())
  @@ fun () ->
  let store = phase ctx "pmdk_log" (fun () -> (0, G.open_deferred pool)) in
  let epoch = Ckpt.current_epoch pool in
  G.set_epoch_cache store epoch;
  let mgr, built, catalog, warm_items, warm_left =
    match mode with
    | Eager ->
        let gen =
          if use_checkpoint && Ckpt.region pool <> 0 then
            phase ctx "checkpoint" (fun () -> (0, Ckpt.load pool))
          else None
        in
        phase ctx "tables" (fun () -> tables_phase ctx store gen);
        phase ctx "dict" (fun () -> dict_phase ctx store gen);
        (* mvcc must precede indexes: reclaiming uncommitted inserts first
           keeps them out of the index rebuild scans *)
        let mgr = phase ctx "mvcc" (fun () -> mvcc_phase ctx store) in
        let built, catalog =
          phase ctx "indexes" (fun () -> indexes_phase ctx store pool gen epoch)
        in
        (mgr, built, catalog, [], Atomic.make 0)
    | Lazy ->
        let gen = lazy_gen pool use_checkpoint in
        let ttfq_cell = ref 0 in
        let warm_ns = Atomic.make 0 in
        let items = ref [] in
        let left = Atomic.make 0 in
        (* Wrap a warm body with simulated-cost accounting: the last
           structure to warm flips recovery_mode back to 0 and publishes
           the cumulative time_to_fully_warm_ns. *)
        let wrap fn () =
          let id = Media.install_meter media in
          let v0 = Media.meter_value media id in
          Fun.protect
            ~finally:(fun () ->
              ignore
                (Atomic.fetch_and_add warm_ns (Media.meter_value media id - v0));
              if Atomic.fetch_and_add left (-1) = 1 then begin
                Obs.Metrics.set (mode_gauge reg) 0;
                Obs.Metrics.set (ttfw_gauge reg)
                  (!ttfq_cell + Atomic.get warm_ns)
              end)
            fn
        in
        let add_item name warmed ensure =
          Atomic.incr left;
          items := { wi_name = name; wi_warmed = warmed; wi_ensure = ensure } :: !items
        in
        (* Defer every rebuild BEFORE the mvcc phase: its reclaim frees
           slots through Table.delete, which must land in the pending
           queues so the eventual warm reproduces the serial free-queue
           order (pre-reclaim canonical scan, then reclaim order). *)
        List.iteri
          (fun ti tbl ->
            let name = [| "table:nodes"; "table:rels"; "table:props" |].(ti) in
            Table.defer_warm tbl (wrap (warm_table_fn ti tbl gen));
            add_item name
              (fun () -> Table.warmed tbl)
              (fun () -> Table.ensure_warm tbl))
          (store_tables store);
        let dict = G.dict store in
        Dict.defer_warm dict (wrap (fun () -> warm_dict_fn store gen));
        add_item "dict"
          (fun () -> Dict.warmed dict)
          (fun () -> Dict.ensure_warm dict);
        let catalog = Index.Catalog.attach pool ~root_slot:G.root_index in
        let built =
          List.map
            (fun desc ->
              let idx =
                Index.lazy_attach pool ~desc
                  ~warm:(wrap (warm_index_fn store pool ~desc gen epoch))
              in
              Index.set_epoch_cache idx epoch;
              add_item (Printf.sprintf "index:%#x" desc)
                (fun () -> Index.warmed idx)
                (fun () -> Index.ensure_warm idx);
              idx)
            (Index.Catalog.list pool ~catalog)
        in
        let mgr = phase ctx "mvcc" (fun () -> mvcc_phase ctx store) in
        let items = List.rev !items in
        (* publish ttfq into the wrappers once the phases are costed *)
        let total =
          List.fold_left (fun a p -> a + p.ph_ns) 0 (List.rev ctx.phases)
        in
        ttfq_cell := total;
        (mgr, built, catalog, items, left)
  in
  let phases = List.rev ctx.phases in
  let total = List.fold_left (fun a p -> a + p.ph_ns) 0 phases in
  let scanned_total = List.fold_left (fun a p -> a + p.ph_records) 0 phases in
  Obs.Metrics.set (ttfq_gauge reg) total;
  (match mode with
  | Eager ->
      Obs.Metrics.set (mode_gauge reg) 0;
      Obs.Metrics.set (ttfw_gauge reg) total
  | Lazy -> Obs.Metrics.set (mode_gauge reg) 1);
  let report =
    {
      r_threads = max threads 1;
      r_mode = mode;
      r_total_ns = total;
      r_ttfq_ns = total;
      r_phases = phases;
      r_scanned = scanned_total;
    }
  in
  Log.info (fun m ->
      m "%s crash-to-ready in %d simulated us over %d domain(s): %s"
        (mode_name mode) (total / 1000) (max threads 1)
        (String.concat ", "
           (List.map
              (fun p -> Printf.sprintf "%s %dus" p.ph_name (p.ph_ns / 1000))
              phases)));
  {
    store;
    mgr;
    indexes = built;
    catalog;
    report;
    t_mode = mode;
    warm_items;
    warm_left;
  }

(* Force every deferred structure warm; with [threads] > 1 the
   independent warms (each serialized by its own structure mutex) run on
   a task pool.  Structures are disjoint, so completion order cannot
   change the final state. *)
let warm_all ?(threads = 1) t =
  let ensures = List.map (fun wi -> wi.wi_ensure) t.warm_items in
  if threads <= 1 then List.iter (fun f -> f ()) ensures
  else begin
    let media = G.media t.store in
    let p = Task_pool.create ~media ~nworkers:threads () in
    Fun.protect ~finally:(fun () -> Task_pool.shutdown p) @@ fun () ->
    Task_pool.run p ensures
  end
