(* Incremental checkpoints of the volatile accelerators (dict hash
   region, B+-tree inner levels / volatile trees, table free-slot maps,
   MVTO watermark) into a dedicated pmem region.

   Shadow-slot write protocol: the region header carries the global
   checkpoint epoch plus TWO generation slots.  A checkpoint serializes
   everything into one blob extent, then publishes it through the LOSER
   slot (the invalid one, or the one with the lower sequence number):
   zero the slot's commit word, persist the slot fields, persist the
   blob, and only then store the commit word (an FNV-1a digest of the
   other slot fields) with a failure-atomic 8-byte write.  A crash at
   any point leaves the other slot - the previous generation - intact
   and valid, so recovery always finds at most one torn generation and
   at least the older complete one.

   Epoch protocol (mark-before-mutate): mutators stamp each structure
   with the cached global epoch BEFORE touching it.  A checkpoint, taken
   at transaction quiescence, first bumps the persistent global epoch
   from E to E+1 and refreshes every cache, then snapshots; the
   generation records snap_epoch = E.  At recovery a structure is
   unchanged since the checkpoint iff its stamp is <= snap_epoch: any
   post-checkpoint mutation stamped it E+1 or later.  A crash between
   the bump and the commit-word flip only over-approximates dirtiness
   against the previous generation. *)

module Pool = Pmem.Pool
module Alloc = Pmem.Alloc
module G = Storage.Graph_store
module Dict = Storage.Dict
module Table = Storage.Table
module Props = Storage.Props
module Index = Gindex.Index
module Btree = Gindex.Btree
module Node_store = Gindex.Node_store

let src = Logs.Src.create "poseidon.checkpoint" ~doc:"Incremental checkpoints"

module Log = (val Logs.src_log src : Logs.LOG)

(* ------------------------------------------------------------------ *)
(* Region layout                                                      *)
(* ------------------------------------------------------------------ *)

let magic = 0x504F534B50543031 (* "POSKPT01" *)

(* Header extent: magic u64, global epoch u64, then two 64-byte
   generation slots at 64 and 128. *)
let hdr_bytes = 192
let f_magic = 0
let f_epoch = 8
let slot_off = [| 64; 128 |]

(* Slot fields (offsets within a slot). *)
let s_seq = 0
let s_snap_epoch = 8
let s_watermark = 16
let s_next_ts = 24
let s_blob_off = 32
let s_blob_len = 40
let s_blob_sum = 48
let s_commit = 56

(* ------------------------------------------------------------------ *)
(* FNV-1a                                                             *)
(* ------------------------------------------------------------------ *)

let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let fnv1a_bytes b =
  let h = ref fnv_offset in
  for i = 0 to Bytes.length b - 1 do
    h := Int64.mul (Int64.logxor !h (Int64.of_int (Bytes.get_uint8 b i))) fnv_prime
  done;
  !h

let fnv1a_ints ints =
  let b = Bytes.create (8 * List.length ints) in
  List.iteri (fun i v -> Bytes.set_int64_le b (8 * i) (Int64.of_int v)) ints;
  fnv1a_bytes b

(* ------------------------------------------------------------------ *)
(* Region bootstrap / epoch                                           *)
(* ------------------------------------------------------------------ *)

let region pool = Alloc.get_root pool G.root_ckpt

let ensure_region pool =
  let r = region pool in
  if r <> 0 then r
  else begin
    let off = Alloc.alloc pool hdr_bytes in
    Pool.fill pool ~off ~len:hdr_bytes '\000';
    Pool.write_int pool (off + f_magic) magic;
    Pool.write_int pool (off + f_epoch) 1;
    Pool.persist pool ~off ~len:hdr_bytes;
    Alloc.set_root pool G.root_ckpt off;
    Log.info (fun m -> m "checkpoint region created at %#x" off);
    off
  end

let current_epoch pool =
  let r = region pool in
  if r = 0 then 0 else Pool.raw_read_int pool (r + f_epoch)

let bump_epoch pool =
  let r = ensure_region pool in
  let e = Pool.raw_read_int pool (r + f_epoch) in
  Pool.atomic_write_int pool (r + f_epoch) (e + 1);
  e + 1

(* ------------------------------------------------------------------ *)
(* Generation payload                                                 *)
(* ------------------------------------------------------------------ *)

type idx_snap =
  | Leaves of { first_leaf : int; infos : Btree.leaf_info array }
  | Pairs of (int64 * int) array

type gen = {
  g_seq : int;
  g_snap_epoch : int;
  g_watermark : int;
  g_next_ts : int;
  g_dict : Dict.image;
  g_tables : int list array array;
  g_indexes : (int * idx_snap) list;
}

(* --- serialization (8-byte little-endian words via Buffer) -------- *)

let buf_int b v = Buffer.add_int64_le b (Int64.of_int v)
let buf_i64 b v = Buffer.add_int64_le b v

let serialize g =
  let b = Buffer.create 4096 in
  (* dict: the decoded string table in code order *)
  let im = g.g_dict in
  buf_int b im.Dict.im_next_code;
  buf_int b im.Dict.im_epoch;
  buf_int b (Array.length im.Dict.im_strings);
  Array.iter
    (fun s ->
      buf_int b (String.length s);
      Buffer.add_string b s)
    im.Dict.im_strings;
  (* tables: nodes, rels, props - in the recovery tables_phase order *)
  buf_int b (Array.length g.g_tables);
  Array.iter
    (fun chunks ->
      buf_int b (Array.length chunks);
      Array.iter
        (fun ids ->
          buf_int b (List.length ids);
          List.iter (fun id -> buf_int b id) ids)
        chunks)
    g.g_tables;
  (* indexes, keyed by descriptor offset *)
  buf_int b (List.length g.g_indexes);
  List.iter
    (fun (desc, snap) ->
      buf_int b desc;
      match snap with
      | Leaves { first_leaf; infos } ->
        buf_int b 1;
        buf_int b first_leaf;
        buf_int b (Array.length infos);
        Array.iter
          (fun (li : Btree.leaf_info) ->
            buf_int b li.Btree.li_handle;
            buf_i64 b li.Btree.li_min;
            buf_int b li.Btree.li_entries;
            buf_int b (Array.length li.Btree.li_pairs);
            Array.iter
              (fun (k, v) ->
                buf_i64 b k;
                buf_i64 b v)
              li.Btree.li_pairs)
          infos
      | Pairs pairs ->
        buf_int b 0;
        buf_int b (Array.length pairs);
        Array.iter
          (fun (k, id) ->
            buf_i64 b k;
            buf_int b id)
          pairs)
    g.g_indexes;
  Buffer.to_bytes b

type cursor = { cb : Bytes.t; mutable cp : int }

let cur_i64 c =
  let v = Bytes.get_int64_le c.cb c.cp in
  c.cp <- c.cp + 8;
  v

let cur_int c = Int64.to_int (cur_i64 c)

let deserialize ~seq ~snap_epoch ~watermark ~next_ts bytes =
  let c = { cb = bytes; cp = 0 } in
  let im_next_code = cur_int c in
  let im_epoch = cur_int c in
  let nstrings = cur_int c in
  let im_strings =
    Array.init nstrings (fun _ ->
        let len = cur_int c in
        let s = Bytes.sub_string c.cb c.cp len in
        c.cp <- c.cp + len;
        s)
  in
  let ntables = cur_int c in
  let tables =
    Array.init ntables (fun _ ->
        let nchunks = cur_int c in
        Array.init nchunks (fun _ ->
            let n = cur_int c in
            List.init n (fun _ -> cur_int c)))
  in
  let nidx = cur_int c in
  let indexes =
    List.init nidx (fun _ ->
        let desc = cur_int c in
        let tag = cur_int c in
        if tag = 1 then begin
          let first_leaf = cur_int c in
          let nleaves = cur_int c in
          let infos =
            Array.init nleaves (fun _ ->
                let li_handle = cur_int c in
                let li_min = cur_i64 c in
                let li_entries = cur_int c in
                let npairs = cur_int c in
                let li_pairs =
                  Array.init npairs (fun _ ->
                      let k = cur_i64 c in
                      let v = cur_i64 c in
                      (k, v))
                in
                { Btree.li_handle; li_min; li_entries; li_pairs })
          in
          (desc, Leaves { first_leaf; infos })
        end
        else begin
          let n = cur_int c in
          let pairs =
            Array.init n (fun _ ->
                let k = cur_i64 c in
                let id = cur_int c in
                (k, id))
          in
          (desc, Pairs pairs)
        end)
  in
  {
    g_seq = seq;
    g_snap_epoch = snap_epoch;
    g_watermark = watermark;
    g_next_ts = next_ts;
    g_dict = { Dict.im_next_code; im_epoch; im_strings };
    g_tables = tables;
    g_indexes = indexes;
  }

(* ------------------------------------------------------------------ *)
(* Slot I/O                                                           *)
(* ------------------------------------------------------------------ *)

type slot = {
  sl_seq : int;
  sl_snap_epoch : int;
  sl_watermark : int;
  sl_next_ts : int;
  sl_blob_off : int;
  sl_blob_len : int;
  sl_blob_sum : int64;
  sl_valid : bool;
}

let slot_digest ~seq ~snap_epoch ~watermark ~next_ts ~blob_off ~blob_len
    ~blob_sum =
  (* Never 0, so an all-zero slot cannot masquerade as committed. *)
  let d =
    fnv1a_ints
      [
        seq;
        snap_epoch;
        watermark;
        next_ts;
        blob_off;
        blob_len;
        Int64.to_int blob_sum;
      ]
  in
  if Int64.equal d 0L then 1L else d

let read_slot pool region i =
  let s = region + slot_off.(i) in
  let seq = Pool.raw_read_int pool (s + s_seq) in
  let snap_epoch = Pool.raw_read_int pool (s + s_snap_epoch) in
  let watermark = Pool.raw_read_int pool (s + s_watermark) in
  let next_ts = Pool.raw_read_int pool (s + s_next_ts) in
  let blob_off = Pool.raw_read_int pool (s + s_blob_off) in
  let blob_len = Pool.raw_read_int pool (s + s_blob_len) in
  let blob_sum = Pool.raw_read_i64 pool (s + s_blob_sum) in
  let commit = Pool.raw_read_i64 pool (s + s_commit) in
  let digest =
    slot_digest ~seq ~snap_epoch ~watermark ~next_ts ~blob_off ~blob_len
      ~blob_sum
  in
  {
    sl_seq = seq;
    sl_snap_epoch = snap_epoch;
    sl_watermark = watermark;
    sl_next_ts = next_ts;
    sl_blob_off = blob_off;
    sl_blob_len = blob_len;
    sl_blob_sum = blob_sum;
    sl_valid = (not (Int64.equal commit 0L)) && Int64.equal commit digest;
  }

(* ------------------------------------------------------------------ *)
(* Write (shadow-slot publish)                                        *)
(* ------------------------------------------------------------------ *)

let write pool g =
  let r = ensure_region pool in
  let a = read_slot pool r 0 and b = read_slot pool r 1 in
  (* Loser slot: prefer an invalid one, else the lower sequence. *)
  let target =
    if not a.sl_valid then 0
    else if not b.sl_valid then 1
    else if a.sl_seq <= b.sl_seq then 0
    else 1
  in
  let loser = if target = 0 then a else b in
  let seq =
    1 + max (if a.sl_valid then a.sl_seq else 0) (if b.sl_valid then b.sl_seq else 0)
  in
  let bytes = serialize g in
  let blob_len = Bytes.length bytes in
  let blob_sum = fnv1a_bytes bytes in
  let blob_off = Alloc.alloc pool blob_len in
  Pool.write_bytes pool blob_off bytes;
  Pool.persist pool ~off:blob_off ~len:blob_len;
  let s = r + slot_off.(target) in
  (* Invalidate the target slot first: a crash while its fields are torn
     must not leave a committed-looking slot. *)
  Pool.atomic_write_i64 pool (s + s_commit) 0L;
  Pool.write_int pool (s + s_seq) seq;
  Pool.write_int pool (s + s_snap_epoch) g.g_snap_epoch;
  Pool.write_int pool (s + s_watermark) g.g_watermark;
  Pool.write_int pool (s + s_next_ts) g.g_next_ts;
  Pool.write_int pool (s + s_blob_off) blob_off;
  Pool.write_int pool (s + s_blob_len) blob_len;
  Pool.write_i64 pool (s + s_blob_sum) blob_sum;
  Pool.persist pool ~off:s ~len:64;
  let digest =
    slot_digest ~seq ~snap_epoch:g.g_snap_epoch ~watermark:g.g_watermark
      ~next_ts:g.g_next_ts ~blob_off ~blob_len ~blob_sum
  in
  (* Commit point: one failure-atomic 8-byte store. *)
  Pool.atomic_write_i64 pool (s + s_commit) digest;
  (* The displaced generation's blob is unreachable now; reclaim it.  A
     crash before this point leaks the extent, which is acceptable. *)
  if loser.sl_valid && loser.sl_blob_off <> 0 then
    Alloc.free pool ~off:loser.sl_blob_off ~size:loser.sl_blob_len;
  Log.info (fun m ->
      m "checkpoint generation %d committed (epoch %d, blob %d B)" seq
        g.g_snap_epoch blob_len);
  seq

(* ------------------------------------------------------------------ *)
(* Load                                                               *)
(* ------------------------------------------------------------------ *)

let load_slot pool sl =
  let bytes = Pool.read_bytes pool sl.sl_blob_off sl.sl_blob_len in
  if not (Int64.equal (fnv1a_bytes bytes) sl.sl_blob_sum) then None
  else
    Some
      (deserialize ~seq:sl.sl_seq ~snap_epoch:sl.sl_snap_epoch
         ~watermark:sl.sl_watermark ~next_ts:sl.sl_next_ts bytes)

let load pool =
  let r = region pool in
  if r = 0 || Pool.raw_read_int pool (r + f_magic) <> magic then None
  else begin
    let a = read_slot pool r 0 and b = read_slot pool r 1 in
    let ranked =
      List.filter (fun s -> s.sl_valid) [ a; b ]
      |> List.sort (fun x y -> compare y.sl_seq x.sl_seq)
    in
    (* Newest valid slot first; a torn/corrupt blob (checksummed) falls
       back to the older generation rather than being trusted. *)
    List.fold_left
      (fun acc sl ->
        match acc with
        | Some _ -> acc
        | None ->
          let g = load_slot pool sl in
          if g = None then
            Log.warn (fun m ->
                m "checkpoint generation %d blob checksum mismatch; skipped"
                  sl.sl_seq);
          g)
      None ranked
  end

(* ------------------------------------------------------------------ *)
(* Introspection (CLI)                                                *)
(* ------------------------------------------------------------------ *)

type slot_info = {
  si_seq : int;
  si_snap_epoch : int;
  si_blob_len : int;
  si_valid : bool;
}

type info = { i_epoch : int; i_slots : slot_info array }

let info pool =
  let r = region pool in
  if r = 0 then None
  else
    Some
      {
        i_epoch = Pool.raw_read_int pool (r + f_epoch);
        i_slots =
          Array.init 2 (fun i ->
              let s = read_slot pool r i in
              {
                si_seq = s.sl_seq;
                si_snap_epoch = s.sl_snap_epoch;
                si_blob_len = s.sl_blob_len;
                si_valid = s.sl_valid;
              });
      }

(* ------------------------------------------------------------------ *)
(* Capture                                                            *)
(* ------------------------------------------------------------------ *)

let table_snapshot t =
  Array.init (Table.nchunks t) (fun ci -> Table.chunk_free_slots t ci)

let index_snapshot pool idx =
  let desc = Index.descriptor idx in
  match Index.placement idx with
  | Node_store.Volatile ->
    let acc = ref [] in
    Btree.iter_all (Index.tree idx) (fun k v -> acc := (k, Int64.to_int v) :: !acc);
    let pairs = Array.of_list !acc in
    (* Ascending record id = the order the serial fallback rebuild
       inserts them, so a restore replays the identical sequence. *)
    Array.sort (fun (_, a) (_, b) -> compare a b) pairs;
    (desc, Pairs pairs)
  | (Node_store.Persistent | Node_store.Hybrid) as placement ->
    let media = Pool.media pool in
    let nstore = Node_store.make placement ~pool ~media in
    let first_leaf = Btree.first_leaf (Index.tree idx) in
    let handles = Btree.leaf_handles nstore ~first_leaf in
    let infos = Array.map (Btree.read_leaf_info nstore) handles in
    (desc, Leaves { first_leaf; infos })

let take pool ~store ~mgr ~indexes =
  if Mvcc.Mvto.active_count mgr > 0 then
    invalid_arg "Checkpoint.take: active transactions";
  ignore (ensure_region pool);
  (* Bump E -> E+1 and refresh every cache BEFORE snapshotting: any
     mutation racing or following the snapshot stamps E+1, which exceeds
     this generation's snap_epoch = E. *)
  let snap_epoch = current_epoch pool in
  let e' = bump_epoch pool in
  G.set_epoch_cache store e';
  Table.set_epoch_cache (Props.table (G.prop_store store)) e';
  List.iter (fun idx -> Index.set_epoch_cache idx e') indexes;
  let g =
    {
      g_seq = 0;
      g_snap_epoch = snap_epoch;
      g_watermark = Mvcc.Mvto.watermark mgr;
      g_next_ts = Mvcc.Mvto.next_ts mgr;
      g_dict = Dict.snapshot (G.dict store);
      g_tables =
        [|
          table_snapshot (G.node_table store);
          table_snapshot (G.rel_table store);
          table_snapshot (Props.table (G.prop_store store));
        |];
      g_indexes = List.map (index_snapshot pool) indexes;
    }
  in
  write pool g
