(** Incremental checkpoints of the volatile accelerators into a
    dedicated pmem region (anchored at {!Storage.Graph_store.root_ckpt}).

    A generation snapshots the dict hash region, the three tables'
    free-slot maps, every index (persistent/hybrid leaf summaries, or
    the full pair set for volatile trees) and the MVTO watermark, all
    stamped with the global checkpoint epoch.  Publication uses a
    two-slot shadow protocol whose commit point is a single
    failure-atomic 8-byte store: a crash mid-checkpoint always leaves
    the previous generation intact and valid.

    Epoch protocol: mutators stamp structures with the cached global
    epoch {e before} mutating.  {!take} bumps the persistent epoch from
    E to E+1, refreshes all caches, then snapshots and records
    snap_epoch = E - so at recovery a structure is unchanged since the
    checkpoint iff its stamp is <= snap_epoch. *)

(** {1 Region / epoch} *)

val region : Pmem.Pool.t -> int
(** Region header offset; 0 when no checkpoint region exists yet. *)

val ensure_region : Pmem.Pool.t -> int
val current_epoch : Pmem.Pool.t -> int
(** 0 when no region exists (stamping disabled); >= 1 otherwise. *)

val bump_epoch : Pmem.Pool.t -> int
(** Failure-atomically advance the global epoch; returns the new value. *)

(** {1 Generations} *)

type idx_snap =
  | Leaves of { first_leaf : int; infos : Gindex.Btree.leaf_info array }
      (** Persistent / hybrid placement: per-leaf summaries of the PMem
          leaf chain, as {!Gindex.Btree.build_from_leaf_infos} input. *)
  | Pairs of (int64 * int) array
      (** Volatile placement: every (index key, record id) pair, sorted
          by ascending record id (the serial rebuild insertion order). *)

type gen = {
  g_seq : int;  (** generation sequence number (assigned by {!write}) *)
  g_snap_epoch : int;
  g_watermark : int;
  g_next_ts : int;
  g_dict : Storage.Dict.image;
  g_tables : int list array array;
      (** per-chunk canonical free-slot lists for nodes, rels, props -
          in that order (the recovery tables phase order) *)
  g_indexes : (int * idx_snap) list;  (** keyed by descriptor offset *)
}

val write : Pmem.Pool.t -> gen -> int
(** Serialize, persist and publish a generation through the shadow
    slot; returns the assigned sequence number.  The displaced
    generation's blob is freed after the commit flip. *)

val load : Pmem.Pool.t -> gen option
(** Newest valid generation: both the slot commit word and the blob
    checksum must verify; a torn blob falls back to the older
    generation, never trusted. *)

val take :
  Pmem.Pool.t ->
  store:Storage.Graph_store.t ->
  mgr:Mvcc.Mvto.t ->
  indexes:Gindex.Index.t list ->
  int
(** Full checkpoint at transaction quiescence: bump the epoch, refresh
    all epoch caches, snapshot every structure and {!write}.  Returns
    the generation sequence number.
    @raise Invalid_argument when transactions are active. *)

(** {1 Introspection} *)

type slot_info = {
  si_seq : int;
  si_snap_epoch : int;
  si_blob_len : int;
  si_valid : bool;
}

type info = { i_epoch : int; i_slots : slot_info array }

val info : Pmem.Pool.t -> info option
