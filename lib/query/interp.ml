(* Push-based query interpretation - the AOT execution mode (Section 6.1).

   Every operator is an AOT-compiled stream transformer; interpreting a
   plan means composing these transformers and pushing tuples through the
   resulting chain.  Each tuple materialises a fresh [Value.t array] per
   operator hop and every expression is evaluated by a boxed tree walk -
   exactly the dynamic dispatch overhead the JIT engine removes.

   Parallel execution follows the morsel-driven model: the leaf scan is
   split into chunk morsels executed by the task pool; operators above the
   first pipeline breaker (Sort, Limit, Distinct, CountAgg, joins) run
   serially over the merged morsel output. *)

module Value = Storage.Value
open Algebra

type row = Value.t array
type stream = (row -> unit) -> unit

exception Limit_stop

let append tuple v =
  let n = Array.length tuple in
  let out = Array.make (n + 1) Value.Null in
  Array.blit tuple 0 out 0 n;
  out.(n) <- v;
  out

let label_ok label got = match label with None -> true | Some l -> l = got

(* --- Leaf access paths ---------------------------------------------------- *)

let produce_leaf (g : Source.t) ~params ?chunk plan : stream =
 fun yield ->
  match plan with
  | NodeScan { label } ->
      let emit id =
        if label_ok label (g.node_label id) then yield [| Value.Int id |]
      in
      (match chunk with
      | Some ci -> g.scan_nodes_chunk ci emit
      | None -> g.scan_nodes emit)
  | RelScan { label } ->
      let emit id =
        if label_ok label (g.rel_label id) then yield [| Value.Int id |]
      in
      g.scan_rels emit
  | NodeById { id } -> (
      match Expr.eval g ~params [||] id with
      | Value.Int nid when nid >= 0 && g.node_exists nid ->
          yield [| Value.Int nid |]
      | _ -> ())
  | IndexScan { label; key; value } ->
      let v = Expr.eval g ~params [||] value in
      g.index_lookup ~label ~key v (fun id -> yield [| Value.Int id |])
  | IndexRange { label; key; lo; hi } ->
      let lo = Expr.eval g ~params [||] lo and hi = Expr.eval g ~params [||] hi in
      g.index_range ~label ~key ~lo ~hi (fun id -> yield [| Value.Int id |])
  | Unit -> yield [||]
  | _ -> invalid_arg "Interp.produce_leaf: not an access path"

let is_leaf = function
  | NodeScan _ | NodeById _ | RelScan _ | IndexScan _ | IndexRange _ | Unit ->
      true
  | _ -> false

let chunkable = function NodeScan _ -> true | _ -> false

(* --- Streaming (pipelined) operators -------------------------------------- *)

let expand_stream (g : Source.t) ~col ~dir ~label : stream -> stream =
 fun src yield ->
  src (fun tuple ->
      let id = Expr.col_id tuple col in
      let iter = match dir with Out -> g.out_rels | In -> g.in_rels in
      iter id (fun rid ->
          if label_ok label (g.rel_label rid) then
            yield (append tuple (Value.Int rid))))

let endpoint_stream (g : Source.t) ~col ~which : stream -> stream =
 fun src yield ->
  src (fun tuple ->
      let rid = Expr.col_id tuple col in
      let nid = match which with `Src -> g.rel_src rid | `Dst -> g.rel_dst rid in
      yield (append tuple (Value.Int nid)))

let walk_to_root_stream (g : Source.t) ~col ~rel_label : stream -> stream =
 fun src yield ->
  src (fun tuple ->
      let rec walk id =
        let next = ref None in
        g.out_rels id (fun rid ->
            if !next = None && g.rel_label rid = rel_label then
              next := Some (g.rel_dst rid));
        match !next with None -> id | Some n -> walk n
      in
      yield (append tuple (Value.Int (walk (Expr.col_id tuple col)))))

let attach_by_index_stream (g : Source.t) ~params ~label ~key ~value :
    stream -> stream =
 fun src yield ->
  src (fun tuple ->
      let v = Expr.eval g ~params tuple value in
      g.index_lookup ~label ~key v (fun id -> yield (append tuple (Value.Int id))))

let filter_stream g ~params pred : stream -> stream =
 fun src yield ->
  src (fun tuple -> if Expr.eval_bool g ~params tuple pred then yield tuple)

let project_stream g ~params exprs : stream -> stream =
 fun src yield ->
  src (fun tuple ->
      yield (Array.of_list (List.map (Expr.eval g ~params tuple) exprs)))

let create_node_stream (g : Source.t) ~params ~label ~props : stream -> stream =
 fun src yield ->
  src (fun tuple ->
      let props = List.map (fun (k, e) -> (k, Expr.eval g ~params tuple e)) props in
      let id = g.create_node ~label ~props in
      yield (append tuple (Value.Int id)))

let create_rel_stream (g : Source.t) ~params ~label ~src:s ~dst ~props :
    stream -> stream =
 fun src yield ->
  src (fun tuple ->
      let props = List.map (fun (k, e) -> (k, Expr.eval g ~params tuple e)) props in
      let id =
        g.create_rel ~label ~src:(Expr.col_id tuple s) ~dst:(Expr.col_id tuple dst)
          ~props
      in
      yield (append tuple (Value.Int id)))

let set_prop_stream (g : Source.t) ~params ~kind ~col ~key ~value :
    stream -> stream =
 fun src yield ->
  src (fun tuple ->
      let v = Expr.eval g ~params tuple value in
      let id = Expr.col_id tuple col in
      (match kind with
      | Expr.KNode -> g.set_node_prop id ~key v
      | Expr.KRel -> g.set_rel_prop id ~key v);
      yield tuple)

let delete_stream (g : Source.t) ~kind ~col : stream -> stream =
 fun src yield ->
  src (fun tuple ->
      let id = Expr.col_id tuple col in
      (match kind with
      | Expr.KNode -> g.delete_node id
      | Expr.KRel -> g.delete_rel id);
      yield tuple)

(* --- Pipeline breakers ----------------------------------------------------- *)

let sort_stream g ~params keys : stream -> stream =
 fun src yield ->
  let acc = ref [] in
  src (fun tuple -> acc := tuple :: !acc);
  let cmp a b =
    let rec go = function
      | [] -> 0
      | (e, dir) :: rest ->
          let c =
            Value.compare (Expr.eval g ~params a e) (Expr.eval g ~params b e)
          in
          let c = match dir with `Asc -> c | `Desc -> -c in
          if c <> 0 then c else go rest
    in
    go keys
  in
  List.iter yield (List.stable_sort cmp !acc)

let limit_stream n : stream -> stream =
 fun src yield ->
  let count = ref 0 in
  try
    src (fun tuple ->
        if !count < n then begin
          incr count;
          yield tuple
        end;
        if !count >= n then raise Limit_stop)
  with Limit_stop -> ()

let distinct_stream : stream -> stream =
 fun src yield ->
  let seen = Hashtbl.create 64 in
  src (fun tuple ->
      let key = Array.to_list tuple in
      if not (Hashtbl.mem seen key) then begin
        Hashtbl.add seen key ();
        yield tuple
      end)

let count_stream : stream -> stream =
 fun src yield ->
  let n = ref 0 in
  src (fun _ -> incr n);
  yield [| Value.Int !n |]

let group_count_stream : stream -> stream =
 fun src yield ->
  let groups = Hashtbl.create 64 in
  let order = ref [] in
  src (fun tuple ->
      let key = Array.to_list tuple in
      match Hashtbl.find_opt groups key with
      | Some n -> Hashtbl.replace groups key (n + 1)
      | None ->
          Hashtbl.add groups key 1;
          order := tuple :: !order);
  List.iter
    (fun tuple ->
      let n = Hashtbl.find groups (Array.to_list tuple) in
      yield (append tuple (Value.Int n)))
    (List.rev !order)

let materialize (src : stream) =
  let acc = ref [] in
  src (fun t -> acc := t :: !acc);
  List.rev !acc

let nl_join_stream g ~params ~pred right_rows : stream -> stream =
 fun src yield ->
  src (fun lt ->
      List.iter
        (fun rt ->
          let tuple = Array.append lt rt in
          match pred with
          | None -> yield tuple
          | Some p -> if Expr.eval_bool g ~params tuple p then yield tuple)
        right_rows)

let hash_join_stream g ~params ~lkey ~rkey right_rows : stream -> stream =
  let table = Hashtbl.create 256 in
  List.iter
    (fun rt ->
      let k = Expr.eval g ~params rt rkey in
      Hashtbl.add table k rt)
    right_rows;
  fun src yield ->
    src (fun lt ->
        let k = Expr.eval g ~params lt lkey in
        List.iter
          (fun rt -> yield (Array.append lt rt))
          (List.rev (Hashtbl.find_all table k)))

(* --- Serial execution ------------------------------------------------------ *)

(* Operator profiling: wrap a stream at the operator's output, counting
   yielded tuples (the same point where generated code places its
   [ProfHook]) and charging the inclusive simulated ticks spent while
   the operator's stream was live.  Operator ids are preorder over the
   plan (root 0; unary child id+1; binary right child
   id+1+operator_count(left)), matching [Algebra.op_names]. *)
let prof_wrap prof id (s : stream) : stream =
  match prof with
  | None -> s
  | Some p ->
      fun yield ->
        let t0 = Obs.Profile.now p in
        s (fun row ->
            Obs.Profile.hit p id;
            yield row);
        Obs.Profile.add_ticks p id (Obs.Profile.now p - t0)

let rec produce_at ?prof ~id (g : Source.t) ~params ?chunk plan : stream =
  let sub ~id c = produce_at ?prof ~id g ~params ?chunk c in
  let s =
    match plan with
    | NodeScan _ | NodeById _ | RelScan _ | IndexScan _ | IndexRange _ | Unit ->
        produce_leaf g ~params ?chunk plan
    | Expand { col; dir; label; child } ->
        expand_stream g ~col ~dir ~label (sub ~id:(id + 1) child)
    | EndPoint { col; which; child } ->
        endpoint_stream g ~col ~which (sub ~id:(id + 1) child)
    | WalkToRoot { col; rel_label; child } ->
        walk_to_root_stream g ~col ~rel_label (sub ~id:(id + 1) child)
    | AttachByIndex { label; key; value; child } ->
        attach_by_index_stream g ~params ~label ~key ~value
          (sub ~id:(id + 1) child)
    | Filter { pred; child } ->
        filter_stream g ~params pred (sub ~id:(id + 1) child)
    | Project { exprs; child } ->
        project_stream g ~params exprs (sub ~id:(id + 1) child)
    | Limit { n; child } -> limit_stream n (sub ~id:(id + 1) child)
    | Sort { keys; child } -> sort_stream g ~params keys (sub ~id:(id + 1) child)
    | Distinct { child } -> distinct_stream (sub ~id:(id + 1) child)
    | CountAgg { child } -> count_stream (sub ~id:(id + 1) child)
    | GroupCount { child } -> group_count_stream (sub ~id:(id + 1) child)
    | NestedLoopJoin { pred; left; right } ->
        let right_rows =
          materialize
            (produce_at ?prof
               ~id:(id + 1 + operator_count left)
               g ~params right)
        in
        nl_join_stream g ~params ~pred right_rows (sub ~id:(id + 1) left)
    | HashJoin { lkey; rkey; left; right } ->
        let right_rows =
          materialize
            (produce_at ?prof
               ~id:(id + 1 + operator_count left)
               g ~params right)
        in
        hash_join_stream g ~params ~lkey ~rkey right_rows (sub ~id:(id + 1) left)
    | CreateNode { label; props; child } ->
        create_node_stream g ~params ~label ~props (sub ~id:(id + 1) child)
    | CreateRel { label; src; dst; props; child } ->
        create_rel_stream g ~params ~label ~src ~dst ~props
          (sub ~id:(id + 1) child)
    | SetNodeProp { col; key; value; child } ->
        set_prop_stream g ~params ~kind:Expr.KNode ~col ~key ~value
          (sub ~id:(id + 1) child)
    | SetRelProp { col; key; value; child } ->
        set_prop_stream g ~params ~kind:Expr.KRel ~col ~key ~value
          (sub ~id:(id + 1) child)
    | DeleteNode { col; child } ->
        delete_stream g ~kind:Expr.KNode ~col (sub ~id:(id + 1) child)
    | DeleteRel { col; child } ->
        delete_stream g ~kind:Expr.KRel ~col (sub ~id:(id + 1) child)
  in
  prof_wrap prof id s

let produce ?prof (g : Source.t) ~params ?chunk plan : stream =
  produce_at ?prof ~id:0 g ~params ?chunk plan

(* --- Morsel-parallel execution --------------------------------------------- *)

(* Split a plan into a chunk-parallel part (rooted at a chunkable scan,
   containing only pipelined operators) and a serial stream transformer
   applied to the merged morsel output.

   Aggregation breakers (CountAgg, GroupCount) get a third shape: when
   the breaker sits directly on a chunk-parallel pipeline, each worker
   folds its morsels into a private partial state and the partials are
   merged at the barrier (in chunk-index order, so the result is
   deterministic and identical to the serial interpretation).  Operators
   above the aggregation still run as a serial tail over the merged
   aggregate output.

   Tails are *staged*: the split is a pure function of the plan and the
   returned transformers take the source and parameters at application
   time.  A split can therefore be computed once and re-applied against
   any transaction snapshot - the property the JIT's capture/replay tier
   relies on to skip the plan walk entirely on steady-state queries. *)
type agg = ACount | AGroup
type tail = Source.t -> params:row -> stream -> stream
type split =
  | Par of plan
  | Ser of plan * tail
  | ParAgg of plan * agg * tail

let agg_serial = function ACount -> count_stream | AGroup -> group_count_stream

(* Per-chunk partial aggregation state and its barrier merge: the
   ACount partial is a running count; the AGroup partial keeps the
   chunk-local group table plus first-appearance order.  [agg_merge]
   folds the partials in array (= chunk-index) order, so the merged
   output - including group first-appearance order - is identical to
   the serial interpretation regardless of task scheduling.  Both the
   interpreter's morsel path and the JIT's compiled-parallel path feed
   these, which keeps the two engines under one merge contract. *)
type agg_partial =
  | PCount of int ref
  | PGroup of row list ref * (Value.t list, int) Hashtbl.t

let agg_partial = function
  | ACount -> PCount (ref 0)
  | AGroup -> PGroup (ref [], Hashtbl.create 64)

let agg_feed partial tuple =
  match partial with
  | PCount n -> incr n
  | PGroup (order, groups) -> (
      let key = Array.to_list tuple in
      match Hashtbl.find_opt groups key with
      | Some n -> Hashtbl.replace groups key (n + 1)
      | None ->
          Hashtbl.add groups key 1;
          order := tuple :: !order)

let agg_merge agg partials : stream =
  match agg with
  | ACount ->
      let total =
        Array.fold_left
          (fun acc -> function PCount n -> acc + !n | PGroup _ -> acc)
          0 partials
      in
      fun yield -> yield [| Value.Int total |]
  | AGroup ->
      let merged = Hashtbl.create 64 in
      let order = ref [] in
      Array.iter
        (function
          | PCount _ -> ()
          | PGroup (ord, tbl) ->
              List.iter
                (fun tuple ->
                  let key = Array.to_list tuple in
                  let n = Hashtbl.find tbl key in
                  match Hashtbl.find_opt merged key with
                  | Some m -> Hashtbl.replace merged key (m + n)
                  | None ->
                      Hashtbl.add merged key n;
                      order := tuple :: !order)
                (List.rev !ord))
        partials;
      fun yield ->
        List.iter
          (fun tuple ->
            yield
              (append tuple (Value.Int (Hashtbl.find merged (Array.to_list tuple)))))
          (List.rev !order)

(* Collapse any split back to the (parallel core, serial tail) contract:
   engines without a parallel aggregation path keep breakers - including
   aggregations - in the AOT tail. *)
let split_serial = function
  | Par p -> (p, fun _ ~params:_ (s : stream) -> s)
  | Ser (p, tr) -> (p, tr)
  | ParAgg (p, agg, tail) ->
      (p, fun g ~params s -> tail g ~params (agg_serial agg s))

(* With [?prof], the serial-tail transformers are wrapped at each
   operator's preorder id; the parallel core stays untouched (when the
   JIT compiles it, [ProfHook]s cover the core's operators; the
   interpreter profiles through [produce] instead). *)
let rec split_plan_at ?prof ~id plan : split =
  let unary child ~rebuild ~(serial_tr : tail) =
    let wrap = prof_wrap prof id in
    match split_plan_at ?prof ~id:(id + 1) child with
    | Par _ -> rebuild ()
    | Ser (p, tr) ->
        Ser (p, fun g ~params s -> wrap (serial_tr g ~params (tr g ~params s)))
    | ParAgg (p, agg, tail) ->
        ParAgg
          (p, agg, fun g ~params s -> wrap (serial_tr g ~params (tail g ~params s)))
  in
  match plan with
  | NodeScan _ | NodeById _ | RelScan _ | IndexScan _ | IndexRange _ | Unit ->
      Par plan
  | Expand { col; dir; label; child } ->
      unary child
        ~rebuild:(fun () -> Par plan)
        ~serial_tr:(fun g ~params:_ -> expand_stream g ~col ~dir ~label)
  | EndPoint { col; which; child } ->
      unary child ~rebuild:(fun () -> Par plan)
        ~serial_tr:(fun g ~params:_ -> endpoint_stream g ~col ~which)
  | WalkToRoot { col; rel_label; child } ->
      unary child ~rebuild:(fun () -> Par plan)
        ~serial_tr:(fun g ~params:_ -> walk_to_root_stream g ~col ~rel_label)
  | AttachByIndex { label; key; value; child } ->
      unary child ~rebuild:(fun () -> Par plan)
        ~serial_tr:(fun g ~params ->
          attach_by_index_stream g ~params ~label ~key ~value)
  | Filter { pred; child } ->
      unary child ~rebuild:(fun () -> Par plan)
        ~serial_tr:(fun g ~params -> filter_stream g ~params pred)
  | Project { exprs; child } ->
      unary child ~rebuild:(fun () -> Par plan)
        ~serial_tr:(fun g ~params -> project_stream g ~params exprs)
  | CreateNode { label; props; child } ->
      unary child ~rebuild:(fun () -> Par plan)
        ~serial_tr:(fun g ~params -> create_node_stream g ~params ~label ~props)
  | CreateRel { label; src; dst; props; child } ->
      unary child ~rebuild:(fun () -> Par plan)
        ~serial_tr:(fun g ~params ->
          create_rel_stream g ~params ~label ~src ~dst ~props)
  | SetNodeProp { col; key; value; child } ->
      unary child ~rebuild:(fun () -> Par plan)
        ~serial_tr:(fun g ~params ->
          set_prop_stream g ~params ~kind:Expr.KNode ~col ~key ~value)
  | SetRelProp { col; key; value; child } ->
      unary child ~rebuild:(fun () -> Par plan)
        ~serial_tr:(fun g ~params ->
          set_prop_stream g ~params ~kind:Expr.KRel ~col ~key ~value)
  | DeleteNode { col; child } ->
      unary child ~rebuild:(fun () -> Par plan)
        ~serial_tr:(fun g ~params:_ -> delete_stream g ~kind:Expr.KNode ~col)
  | DeleteRel { col; child } ->
      unary child ~rebuild:(fun () -> Par plan)
        ~serial_tr:(fun g ~params:_ -> delete_stream g ~kind:Expr.KRel ~col)
  (* pipeline breakers: everything from here up runs serially *)
  | Limit { n; child } ->
      breaker ?prof ~id child (fun _ ~params:_ -> limit_stream n)
  | Sort { keys; child } ->
      breaker ?prof ~id child (fun g ~params -> sort_stream g ~params keys)
  | Distinct { child } ->
      breaker ?prof ~id child (fun _ ~params:_ -> distinct_stream)
  | CountAgg { child } -> agg_breaker ?prof ~id child ACount
  | GroupCount { child } -> agg_breaker ?prof ~id child AGroup
  | NestedLoopJoin { pred; left; right } ->
      let rid = id + 1 + operator_count left in
      (* the right side materialises when the joined stream runs - once
         per application, against that application's snapshot *)
      breaker ?prof ~id left (fun g ~params s yield ->
          let right_rows =
            materialize (produce_at ?prof ~id:rid g ~params right)
          in
          nl_join_stream g ~params ~pred right_rows s yield)
  | HashJoin { lkey; rkey; left; right } ->
      let rid = id + 1 + operator_count left in
      breaker ?prof ~id left (fun g ~params s yield ->
          let right_rows =
            materialize (produce_at ?prof ~id:rid g ~params right)
          in
          hash_join_stream g ~params ~lkey ~rkey right_rows s yield)

and breaker ?prof ~id child (tr : tail) =
  let wrap = prof_wrap prof id in
  match split_plan_at ?prof ~id:(id + 1) child with
  | Par p -> Ser (p, fun g ~params s -> wrap (tr g ~params s))
  | Ser (p, tr') ->
      Ser (p, fun g ~params s -> wrap (tr g ~params (tr' g ~params s)))
  | ParAgg (p, agg, tail) ->
      ParAgg (p, agg, fun g ~params s -> wrap (tr g ~params (tail g ~params s)))

and agg_breaker ?prof ~id child agg =
  let wrap = prof_wrap prof id in
  match split_plan_at ?prof ~id:(id + 1) child with
  | Par p -> ParAgg (p, agg, fun _ ~params:_ s -> wrap s)
  | Ser (p, tr) ->
      Ser (p, fun g ~params s -> wrap (agg_serial agg (tr g ~params s)))
  (* aggregation above an aggregation: the inner one already forces the
     barrier, so the outer one runs serially over the merged output *)
  | ParAgg (p, inner, tail) ->
      ParAgg
        (p, inner, fun g ~params s -> wrap (agg_serial agg (tail g ~params s)))

let split_plan ?prof plan : split = split_plan_at ?prof ~id:0 plan

(* Run the chunk-parallel part over all morsels, collecting rows. *)
let run_parallel_part (g : Source.t) ~params pool plan =
  let acc = ref [] in
  let mu = Mutex.create () in
  let nchunks = g.node_chunks () in
  let tasks =
    List.init nchunks (fun ci () ->
        let local = ref [] in
        produce g ~params ~chunk:ci plan (fun t -> local := t :: !local);
        Mutex.lock mu;
        acc := List.rev_append !local !acc;
        Mutex.unlock mu)
  in
  Exec.Task_pool.run pool tasks;
  !acc

(* Run the chunk-parallel core of a [ParAgg] split: each task folds its
   morsel into a per-chunk partial aggregation state (no row list is ever
   materialised); the partials are merged in chunk-index order at the
   barrier, which makes the output - including group first-appearance
   order - identical to the serial interpretation regardless of task
   scheduling. *)
let run_parallel_agg (g : Source.t) ~params pool plan agg : stream =
  let nchunks = g.node_chunks () in
  let partials = Array.init (max 1 nchunks) (fun _ -> agg_partial agg) in
  let tasks =
    List.init nchunks (fun ci () ->
        produce g ~params ~chunk:ci plan (agg_feed partials.(ci)))
  in
  Exec.Task_pool.run pool tasks;
  agg_merge agg partials

let rec leftmost_leaf = function
  | NodeScan _ | NodeById _ | RelScan _ | IndexScan _ | IndexRange _ | Unit as p
    ->
      p
  | Expand { child; _ }
  | EndPoint { child; _ }
  | WalkToRoot { child; _ }
  | AttachByIndex { child; _ }
  | Filter { child; _ }
  | Project { child; _ }
  | Limit { child; _ }
  | Sort { child; _ }
  | Distinct { child }
  | CountAgg { child }
  | GroupCount { child }
  | CreateNode { child; _ }
  | CreateRel { child; _ }
  | SetNodeProp { child; _ }
  | SetRelProp { child; _ }
  | DeleteNode { child; _ }
  | DeleteRel { child; _ } ->
      leftmost_leaf child
  | NestedLoopJoin { left; _ } | HashJoin { left; _ } -> leftmost_leaf left

(* Execute a plan; with [pool], the scan is morsel-parallelised.  A
   profiled run ([?prof]) always interprets serially so that per-operator
   tick attribution stays meaningful. *)
let run ?pool ?prof (g : Source.t) ~params plan =
  let rows = ref [] in
  let yield t = rows := t :: !rows in
  (match (if Option.is_none prof then pool else None) with
  | None -> produce ?prof g ~params plan yield
  | Some pool when chunkable (leftmost_leaf plan) -> (
      match split_plan plan with
      | Par p ->
          let collected = run_parallel_part g ~params pool p in
          List.iter yield collected
      | Ser (p, tr) ->
          let collected = run_parallel_part g ~params pool p in
          tr g ~params (fun k -> List.iter k collected) yield
      | ParAgg (p, agg, tail) ->
          tail g ~params (run_parallel_agg g ~params pool p agg) yield)
  | Some _ -> produce g ~params plan yield);
  List.rev !rows

let count ?pool g ~params plan = List.length (run ?pool g ~params plan)
