(* Graph algebra (Section 6.1).

   Plans are operator trees with graph-specific operators (NodeScan,
   ForeachRelationship - here [Expand] - IndexScan, ...) plus standard
   relational ones.  Access paths are the leaves; every other operator
   consumes the tuples its child pushes.  Tuples grow to the right: an
   operator that "appends" adds one slot at the end of the child's tuple.

   [width] computes the tuple arity produced by a plan, used by both
   engines to allocate register files / projection buffers. *)

module Value = Storage.Value

type dir = Out | In

type plan =
  (* access paths *)
  | NodeScan of { label : int option }
  | NodeById of { id : Expr.t } (* direct offset access; emits one tuple *)
  | RelScan of { label : int option }
  | IndexScan of { label : int; key : int; value : Expr.t }
  | IndexRange of { label : int; key : int; lo : Expr.t; hi : Expr.t }
  (* graph traversal *)
  | Expand of { col : int; dir : dir; label : int option; child : plan }
    (* ForeachRelationship: for the node in [col], push one tuple per
       (visible) incident relationship; appends the relationship slot *)
  | EndPoint of { col : int; which : [ `Src | `Dst ]; child : plan }
    (* appends the source/destination node of the relationship in [col] *)
  | WalkToRoot of { col : int; rel_label : int; child : plan }
    (* follow out-relationships with [rel_label] transitively from the
       node in [col] until none remains; appends the terminal node
       (e.g. REPLY_OF chains from a comment to its root post) *)
  | AttachByIndex of { label : int; key : int; value : Expr.t; child : plan }
    (* mid-pipeline index lookup: for each input tuple, push one output
       tuple per matching node, appending the node slot (used by the
       interactive-update plans to fetch their second endpoint) *)
  (* relational *)
  | Filter of { pred : Expr.t; child : plan }
  | Project of { exprs : Expr.t list; child : plan }
  | Limit of { n : int; child : plan }
  | Sort of { keys : (Expr.t * [ `Asc | `Desc ]) list; child : plan }
  | Distinct of { child : plan }
  | CountAgg of { child : plan }
  | GroupCount of { child : plan }
    (* group identical tuples; emits each distinct tuple with its
       multiplicity appended (the group-by-count of the IC-style
       workloads) *)
  | NestedLoopJoin of { pred : Expr.t option; left : plan; right : plan }
    (* right side materialised; output = left tuple ++ right tuple *)
  | HashJoin of { lkey : Expr.t; rkey : Expr.t; left : plan; right : plan }
  (* updates (Create access path & friends, Section 6.2) *)
  | CreateNode of { label : int; props : (int * Expr.t) list; child : plan }
  | CreateRel of {
      label : int;
      src : int; (* tuple slot of source node *)
      dst : int;
      props : (int * Expr.t) list;
      child : plan;
    }
  | SetNodeProp of { col : int; key : int; value : Expr.t; child : plan }
  | SetRelProp of { col : int; key : int; value : Expr.t; child : plan }
  | DeleteNode of { col : int; child : plan }
  | DeleteRel of { col : int; child : plan }
  (* a leaf producing exactly one empty tuple: the access path of pure
     insert statements (Create in Cypher without a match part) *)
  | Unit

let rec width = function
  | NodeScan _ | NodeById _ | RelScan _ | IndexScan _ | IndexRange _ -> 1
  | Unit -> 0
  | Expand { child; _ }
  | EndPoint { child; _ }
  | WalkToRoot { child; _ }
  | AttachByIndex { child; _ } ->
      width child + 1
  | Filter { child; _ }
  | Limit { child; _ }
  | Sort { child; _ }
  | Distinct { child }
  | SetNodeProp { child; _ }
  | SetRelProp { child; _ }
  | DeleteNode { child; _ }
  | DeleteRel { child; _ } ->
      width child
  | Project { exprs; _ } -> List.length exprs
  | CountAgg _ -> 1
  | GroupCount { child } -> width child + 1
  | NestedLoopJoin { left; right; _ } | HashJoin { left; right; _ } ->
      width left + width right
  | CreateNode { child; _ } | CreateRel { child; _ } -> width child + 1

(* Structural identity of a plan: the query identifier used to look up
   previously compiled code in the persistent JIT cache (Section 6.2). *)
let rec fingerprint = function
  | NodeScan { label } ->
      Printf.sprintf "nscan(%s)" (match label with None -> "*" | Some l -> string_of_int l)
  | NodeById { id } -> Printf.sprintf "nbyid(%s)" (Expr.fingerprint id)
  | RelScan { label } ->
      Printf.sprintf "rscan(%s)" (match label with None -> "*" | Some l -> string_of_int l)
  | IndexScan { label; key; value } ->
      Printf.sprintf "iscan(%d,%d,%s)" label key (Expr.fingerprint value)
  | IndexRange { label; key; lo; hi } ->
      Printf.sprintf "irange(%d,%d,%s,%s)" label key (Expr.fingerprint lo)
        (Expr.fingerprint hi)
  | Unit -> "unit"
  | Expand { col; dir; label; child } ->
      Printf.sprintf "expand(%d,%s,%s)<-%s" col
        (match dir with Out -> "out" | In -> "in")
        (match label with None -> "*" | Some l -> string_of_int l)
        (fingerprint child)
  | EndPoint { col; which; child } ->
      Printf.sprintf "end(%d,%s)<-%s" col
        (match which with `Src -> "src" | `Dst -> "dst")
        (fingerprint child)
  | WalkToRoot { col; rel_label; child } ->
      Printf.sprintf "walk(%d,%d)<-%s" col rel_label (fingerprint child)
  | AttachByIndex { label; key; value; child } ->
      Printf.sprintf "attach(%d,%d,%s)<-%s" label key (Expr.fingerprint value)
        (fingerprint child)
  | Filter { pred; child } ->
      Printf.sprintf "filter(%s)<-%s" (Expr.fingerprint pred) (fingerprint child)
  | Project { exprs; child } ->
      Printf.sprintf "proj(%s)<-%s"
        (String.concat "," (List.map Expr.fingerprint exprs))
        (fingerprint child)
  | Limit { n; child } -> Printf.sprintf "limit(%d)<-%s" n (fingerprint child)
  | Sort { keys; child } ->
      Printf.sprintf "sort(%s)<-%s"
        (String.concat ","
           (List.map
              (fun (e, d) ->
                Expr.fingerprint e ^ match d with `Asc -> "+" | `Desc -> "-")
              keys))
        (fingerprint child)
  | Distinct { child } -> Printf.sprintf "distinct<-%s" (fingerprint child)
  | CountAgg { child } -> Printf.sprintf "count<-%s" (fingerprint child)
  | GroupCount { child } -> Printf.sprintf "gcount<-%s" (fingerprint child)
  | NestedLoopJoin { pred; left; right } ->
      Printf.sprintf "nlj(%s)[%s|%s]"
        (match pred with None -> "" | Some p -> Expr.fingerprint p)
        (fingerprint left) (fingerprint right)
  | HashJoin { lkey; rkey; left; right } ->
      Printf.sprintf "hj(%s,%s)[%s|%s]" (Expr.fingerprint lkey)
        (Expr.fingerprint rkey) (fingerprint left) (fingerprint right)
  | CreateNode { label; props; child } ->
      Printf.sprintf "cnode(%d,%s)<-%s" label
        (String.concat ","
           (List.map (fun (k, e) -> Printf.sprintf "%d=%s" k (Expr.fingerprint e)) props))
        (fingerprint child)
  | CreateRel { label; src; dst; props; child } ->
      Printf.sprintf "crel(%d,%d,%d,%s)<-%s" label src dst
        (String.concat ","
           (List.map (fun (k, e) -> Printf.sprintf "%d=%s" k (Expr.fingerprint e)) props))
        (fingerprint child)
  | SetNodeProp { col; key; value; child } ->
      Printf.sprintf "setn(%d,%d,%s)<-%s" col key (Expr.fingerprint value)
        (fingerprint child)
  | SetRelProp { col; key; value; child } ->
      Printf.sprintf "setr(%d,%d,%s)<-%s" col key (Expr.fingerprint value)
        (fingerprint child)
  | DeleteNode { col; child } ->
      Printf.sprintf "deln(%d)<-%s" col (fingerprint child)
  | DeleteRel { col; child } ->
      Printf.sprintf "delr(%d)<-%s" col (fingerprint child)

(* Count operators - the paper reports compilation time growing with the
   number of operators. *)
let rec operator_count = function
  | NodeScan _ | NodeById _ | RelScan _ | IndexScan _ | IndexRange _ | Unit -> 1
  | Expand { child; _ }
  | EndPoint { child; _ }
  | WalkToRoot { child; _ }
  | AttachByIndex { child; _ }
  | Filter { child; _ }
  | Project { child; _ }
  | Limit { child; _ }
  | Sort { child; _ }
  | Distinct { child }
  | CountAgg { child }
  | GroupCount { child }
  | CreateNode { child; _ }
  | CreateRel { child; _ }
  | SetNodeProp { child; _ }
  | SetRelProp { child; _ }
  | DeleteNode { child; _ }
  | DeleteRel { child; _ } ->
      1 + operator_count child
  | NestedLoopJoin { left; right; _ } | HashJoin { left; right; _ } ->
      1 + operator_count left + operator_count right

let op_name = function
  | NodeScan _ -> "NodeScan"
  | NodeById _ -> "NodeById"
  | RelScan _ -> "RelScan"
  | IndexScan _ -> "IndexScan"
  | IndexRange _ -> "IndexRange"
  | Expand _ -> "Expand"
  | EndPoint _ -> "EndPoint"
  | WalkToRoot _ -> "WalkToRoot"
  | AttachByIndex _ -> "AttachByIndex"
  | Filter _ -> "Filter"
  | Project _ -> "Project"
  | Limit _ -> "Limit"
  | Sort _ -> "Sort"
  | Distinct _ -> "Distinct"
  | CountAgg _ -> "CountAgg"
  | GroupCount _ -> "GroupCount"
  | NestedLoopJoin _ -> "NestedLoopJoin"
  | HashJoin _ -> "HashJoin"
  | CreateNode _ -> "CreateNode"
  | CreateRel _ -> "CreateRel"
  | SetNodeProp _ -> "SetNodeProp"
  | SetRelProp _ -> "SetRelProp"
  | DeleteNode _ -> "DeleteNode"
  | DeleteRel _ -> "DeleteRel"
  | Unit -> "Unit"

(* Preorder operator names: slot [i] labels the operator with preorder
   id [i] (root 0; a unary operator's child is id+1; a binary
   operator's right child is id + 1 + operator_count(left)).  This is
   the id scheme shared by the interpreter's profiling wrappers and the
   JIT's [ProfHook] instructions. *)
let op_names plan =
  let a = Array.make (operator_count plan) "" in
  let rec go i p =
    a.(i) <- op_name p;
    match p with
    | NodeScan _ | NodeById _ | RelScan _ | IndexScan _ | IndexRange _ | Unit ->
        ()
    | Expand { child; _ }
    | EndPoint { child; _ }
    | WalkToRoot { child; _ }
    | AttachByIndex { child; _ }
    | Filter { child; _ }
    | Project { child; _ }
    | Limit { child; _ }
    | Sort { child; _ }
    | Distinct { child }
    | CountAgg { child }
    | GroupCount { child }
    | CreateNode { child; _ }
    | CreateRel { child; _ }
    | SetNodeProp { child; _ }
    | SetRelProp { child; _ }
    | DeleteNode { child; _ }
    | DeleteRel { child; _ } ->
        go (i + 1) child
    | NestedLoopJoin { left; right; _ } | HashJoin { left; right; _ } ->
        go (i + 1) left;
        go (i + 1 + operator_count left) right
  in
  go 0 plan;
  a

exception Found of int

(* Preorder id of [target] within [plan], located by physical identity:
   the split machinery returns the pipelined core as a shared subterm of
   the full plan, so [==] is the right notion of "same operator". *)
let preorder_id_of plan target =
  let rec go i p =
    if p == target then raise_notrace (Found i)
    else
      match p with
      | NodeScan _ | NodeById _ | RelScan _ | IndexScan _ | IndexRange _ | Unit
        ->
          ()
      | Expand { child; _ }
      | EndPoint { child; _ }
      | WalkToRoot { child; _ }
      | AttachByIndex { child; _ }
      | Filter { child; _ }
      | Project { child; _ }
      | Limit { child; _ }
      | Sort { child; _ }
      | Distinct { child }
      | CountAgg { child }
      | GroupCount { child }
      | CreateNode { child; _ }
      | CreateRel { child; _ }
      | SetNodeProp { child; _ }
      | SetRelProp { child; _ }
      | DeleteNode { child; _ }
      | DeleteRel { child; _ } ->
          go (i + 1) child
      | NestedLoopJoin { left; right; _ } | HashJoin { left; right; _ } ->
          go (i + 1) left;
          go (i + 1 + operator_count left) right
  in
  try
    go 0 plan;
    None
  with Found i -> Some i

(* Pretty-printed operator tree (EXPLAIN output). *)
let pp_plan ?dict ppf plan =
  let str c = match dict with Some f -> f c | None -> Printf.sprintf "#%d" c in
  let lbl = function None -> "*" | Some l -> str l in
  let rec go indent p =
    let pr fmt = Format.fprintf ppf ("%s" ^^ fmt ^^ "@.") indent in
    let child = indent ^ "  " in
    match p with
    | NodeScan { label } -> pr "NodeScan(%s)" (lbl label)
    | NodeById { id } -> pr "NodeById(%s)" (Expr.fingerprint id)
    | RelScan { label } -> pr "RelationshipScan(%s)" (lbl label)
    | IndexScan { label; key; value } ->
        pr "IndexScan(%s.%s = %s)" (str label) (str key) (Expr.fingerprint value)
    | IndexRange { label; key; lo; hi } ->
        pr "IndexRange(%s.%s in [%s, %s])" (str label) (str key)
          (Expr.fingerprint lo) (Expr.fingerprint hi)
    | Unit -> pr "Unit"
    | Expand { col; dir; label; child = c } ->
        pr "ForeachRelationship(col %d, %s, %s)" col
          (match dir with Out -> "out" | In -> "in")
          (lbl label);
        go child c
    | EndPoint { col; which; child = c } ->
        pr "EndPoint(col %d, %s)" col
          (match which with `Src -> "src" | `Dst -> "dst");
        go child c
    | WalkToRoot { col; rel_label; child = c } ->
        pr "WalkToRoot(col %d, %s)" col (str rel_label);
        go child c
    | AttachByIndex { label; key; value; child = c } ->
        pr "AttachByIndex(%s.%s = %s)" (str label) (str key)
          (Expr.fingerprint value);
        go child c
    | Filter { pred; child = c } ->
        pr "Filter(%s)" (Expr.fingerprint pred);
        go child c
    | Project { exprs; child = c } ->
        pr "Project(%s)" (String.concat ", " (List.map Expr.fingerprint exprs));
        go child c
    | Limit { n; child = c } ->
        pr "Limit(%d)" n;
        go child c
    | Sort { keys; child = c } ->
        pr "Sort(%s)"
          (String.concat ", "
             (List.map
                (fun (e, d) ->
                  Expr.fingerprint e ^ match d with `Asc -> " asc" | `Desc -> " desc")
                keys));
        go child c
    | Distinct { child = c } ->
        pr "Distinct";
        go child c
    | CountAgg { child = c } ->
        pr "Count";
        go child c
    | GroupCount { child = c } ->
        pr "GroupCount";
        go child c
    | NestedLoopJoin { pred; left; right } ->
        pr "NestedLoopJoin(%s)"
          (match pred with None -> "true" | Some e -> Expr.fingerprint e);
        go child left;
        go child right
    | HashJoin { lkey; rkey; left; right } ->
        pr "HashJoin(%s = %s)" (Expr.fingerprint lkey) (Expr.fingerprint rkey);
        go child left;
        go child right
    | CreateNode { label; props; child = c } ->
        pr "CreateNode(%s {%s})" (str label)
          (String.concat ", "
             (List.map (fun (k, e) -> str k ^ ": " ^ Expr.fingerprint e) props));
        go child c
    | CreateRel { label; src; dst; props; child = c } ->
        pr "CreateRelationship(%s, col %d -> col %d {%s})" (str label) src dst
          (String.concat ", "
             (List.map (fun (k, e) -> str k ^ ": " ^ Expr.fingerprint e) props));
        go child c
    | SetNodeProp { col; key; value; child = c } ->
        pr "SetProperty(node col %d, %s = %s)" col (str key) (Expr.fingerprint value);
        go child c
    | SetRelProp { col; key; value; child = c } ->
        pr "SetProperty(rel col %d, %s = %s)" col (str key) (Expr.fingerprint value);
        go child c
    | DeleteNode { col; child = c } ->
        pr "DeleteNode(col %d)" col;
        go child c
    | DeleteRel { col; child = c } ->
        pr "DeleteRelationship(col %d)" col;
        go child c
  in
  go "" plan
