(** Push-based query interpretation - the AOT execution mode
    (Section 6.1).  Operators are AOT-compiled stream transformers;
    parallel execution splits the leaf scan into chunk morsels and runs
    operators above the first pipeline breaker serially over the merged
    output. *)

module Value = Storage.Value

type row = Value.t array
type stream = (row -> unit) -> unit

exception Limit_stop

val is_leaf : Algebra.plan -> bool
val chunkable : Algebra.plan -> bool
val leftmost_leaf : Algebra.plan -> Algebra.plan

val produce :
  ?prof:Obs.Profile.t ->
  Source.t ->
  params:Value.t array ->
  ?chunk:int ->
  Algebra.plan ->
  stream
(** Serial stream of a plan's rows; with [chunk], the leaf scan is
    restricted to that morsel.  With [prof], every operator's output
    stream is wrapped to count yielded tuples and charge inclusive
    simulated ticks into the operator's preorder-id slot (root 0; unary
    child id+1; binary right child id+1+operator_count(left)) - the
    same ids generated code reaches through [ProfHook]. *)

(** Aggregation kind whose partial states can be computed per worker and
    merged at the morsel barrier. *)
type agg = ACount | AGroup

(** Result of {!split_plan}: fully chunk-parallelisable; a parallel core
    plus the serial transformer for everything above the first breaker;
    or a parallel core whose first breaker is an aggregation executed as
    per-worker partial states merged at the barrier, with the serial
    tail applied to the merged aggregate output. *)
type split =
  | Par of Algebra.plan
  | Ser of Algebra.plan * (stream -> stream)
  | ParAgg of Algebra.plan * agg * (stream -> stream)

val agg_serial : agg -> stream -> stream
(** The serial stream transformer equivalent to an [agg] breaker. *)

val split_serial : split -> Algebra.plan * (stream -> stream)
(** Collapse any split to (parallel core, serial tail) - [ParAgg] folds
    its aggregation back into the tail.  Used by engines (e.g. the JIT)
    that compile only the pipelined core. *)

val split_plan :
  ?prof:Obs.Profile.t -> Source.t -> params:Value.t array -> Algebra.plan -> split
(** With [prof], the serial-tail transformers are wrapped at their
    operators' preorder ids; the parallel core is left untouched (its
    operators are profiled by the engine running it: [produce ?prof]
    when interpreted, [ProfHook]s when compiled). *)

val run :
  ?pool:Exec.Task_pool.t ->
  ?prof:Obs.Profile.t ->
  Source.t ->
  params:Value.t array ->
  Algebra.plan ->
  row list
(** Profiled runs interpret serially even when [pool] is given, so tick
    attribution stays meaningful. *)

val count : ?pool:Exec.Task_pool.t -> Source.t -> params:Value.t array -> Algebra.plan -> int
