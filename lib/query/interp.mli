(** Push-based query interpretation - the AOT execution mode
    (Section 6.1).  Operators are AOT-compiled stream transformers;
    parallel execution splits the leaf scan into chunk morsels and runs
    operators above the first pipeline breaker serially over the merged
    output. *)

module Value = Storage.Value

type row = Value.t array
type stream = (row -> unit) -> unit

exception Limit_stop

val is_leaf : Algebra.plan -> bool
val chunkable : Algebra.plan -> bool
val leftmost_leaf : Algebra.plan -> Algebra.plan

val produce :
  ?prof:Obs.Profile.t ->
  Source.t ->
  params:Value.t array ->
  ?chunk:int ->
  Algebra.plan ->
  stream
(** Serial stream of a plan's rows; with [chunk], the leaf scan is
    restricted to that morsel.  With [prof], every operator's output
    stream is wrapped to count yielded tuples and charge inclusive
    simulated ticks into the operator's preorder-id slot (root 0; unary
    child id+1; binary right child id+1+operator_count(left)) - the
    same ids generated code reaches through [ProfHook]. *)

(** Aggregation kind whose partial states can be computed per worker and
    merged at the morsel barrier. *)
type agg = ACount | AGroup

type tail = Source.t -> params:row -> stream -> stream
(** A staged serial suffix: the split captures only the plan structure,
    and the source/parameters are bound at application time.  One split
    can therefore be applied against any transaction snapshot - the
    property the JIT's capture/replay tier relies on. *)

(** Result of {!split_plan}: fully chunk-parallelisable; a parallel core
    plus the serial transformer for everything above the first breaker;
    or a parallel core whose first breaker is an aggregation executed as
    per-worker partial states merged at the barrier, with the serial
    tail applied to the merged aggregate output. *)
type split =
  | Par of Algebra.plan
  | Ser of Algebra.plan * tail
  | ParAgg of Algebra.plan * agg * tail

val agg_serial : agg -> stream -> stream
(** The serial stream transformer equivalent to an [agg] breaker. *)

(** Per-chunk partial aggregation state.  Any engine executing a
    [ParAgg] core - interpreted or compiled - creates one partial per
    chunk, feeds it that chunk's tuples, and merges the partials with
    {!agg_merge} in chunk-index order; the merged stream (including
    group first-appearance order) is then identical to the serial
    interpretation regardless of task scheduling. *)
type agg_partial

val agg_partial : agg -> agg_partial
(** A fresh (empty) per-chunk partial state. *)

val agg_feed : agg_partial -> row -> unit
(** Fold one tuple into a partial.  Each partial is owned by exactly one
    morsel task; feeding is not synchronised. *)

val agg_merge : agg -> agg_partial array -> stream
(** Merge partials in array (= chunk-index) order into the aggregate
    output stream - the barrier step of the parallel-agg contract. *)

val split_serial : split -> Algebra.plan * tail
(** Collapse any split to (parallel core, serial tail) - [ParAgg] folds
    its aggregation back into the tail.  Used by engines running the
    core serially. *)

val split_plan : ?prof:Obs.Profile.t -> Algebra.plan -> split
(** Pure function of the plan (tails are staged).  With [prof], the
    serial-tail transformers are wrapped at their operators' preorder
    ids; the parallel core is left untouched (its operators are profiled
    by the engine running it: [produce ?prof] when interpreted,
    [ProfHook]s when compiled). *)

val run :
  ?pool:Exec.Task_pool.t ->
  ?prof:Obs.Profile.t ->
  Source.t ->
  params:Value.t array ->
  Algebra.plan ->
  row list
(** Profiled runs interpret serially even when [pool] is given, so tick
    attribution stays meaningful. *)

val count : ?pool:Exec.Task_pool.t -> Source.t -> params:Value.t array -> Algebra.plan -> int
