(** Graph algebra (Section 6.1): operator trees with graph-specific
    operators (NodeScan, ForeachRelationship as [Expand], IndexScan,
    WalkToRoot, ...) plus standard relational ones and update operators.
    Access paths are the leaves; tuples grow to the right (an "appending"
    operator adds one slot at the end of its child's tuple). *)

module Value = Storage.Value

type dir = Out | In

type plan =
  | NodeScan of { label : int option }
  | NodeById of { id : Expr.t }
  | RelScan of { label : int option }
  | IndexScan of { label : int; key : int; value : Expr.t }
  | IndexRange of { label : int; key : int; lo : Expr.t; hi : Expr.t }
  | Expand of { col : int; dir : dir; label : int option; child : plan }
      (** ForeachRelationship: one output tuple per visible incident
          relationship of the node in [col]; appends the rel slot *)
  | EndPoint of { col : int; which : [ `Dst | `Src ]; child : plan }
  | WalkToRoot of { col : int; rel_label : int; child : plan }
      (** follow labelled out-relationships transitively to the terminal
          node (e.g. REPLY_OF chains to the thread root); appends it *)
  | AttachByIndex of { label : int; key : int; value : Expr.t; child : plan }
      (** mid-pipeline index lookup appending the matching node(s) *)
  | Filter of { pred : Expr.t; child : plan }
  | Project of { exprs : Expr.t list; child : plan }
  | Limit of { n : int; child : plan }
  | Sort of { keys : (Expr.t * [ `Asc | `Desc ]) list; child : plan }
  | Distinct of { child : plan }
  | CountAgg of { child : plan }
  | GroupCount of { child : plan }
      (** group identical tuples; emits each distinct tuple with its
          multiplicity appended *)
  | NestedLoopJoin of { pred : Expr.t option; left : plan; right : plan }
  | HashJoin of { lkey : Expr.t; rkey : Expr.t; left : plan; right : plan }
  | CreateNode of { label : int; props : (int * Expr.t) list; child : plan }
  | CreateRel of {
      label : int;
      src : int;
      dst : int;
      props : (int * Expr.t) list;
      child : plan;
    }
  | SetNodeProp of { col : int; key : int; value : Expr.t; child : plan }
  | SetRelProp of { col : int; key : int; value : Expr.t; child : plan }
  | DeleteNode of { col : int; child : plan }
  | DeleteRel of { col : int; child : plan }
  | Unit  (** one empty tuple: the access path of pure inserts *)

val width : plan -> int
(** Output tuple arity. *)

val fingerprint : plan -> string
(** Structural identity - the query identifier keying the persistent
    compiled-query cache (Section 6.2). *)

val operator_count : plan -> int

val op_name : plan -> string
(** Constructor name of the root operator. *)

val op_names : plan -> string array
(** Preorder operator names: slot [i] labels the operator with preorder
    id [i] (root 0; unary child id+1; binary right child
    id+1+[operator_count left]) - the id scheme shared by the
    interpreter's profiling wrappers and the JIT's [ProfHook]
    instructions. *)

val preorder_id_of : plan -> plan -> int option
(** [preorder_id_of plan target] is the preorder id of [target] within
    [plan], located by physical identity ([==]); [None] when [target] is
    not a subterm.  Used by the JIT engine to anchor the compiled core's
    [ProfHook] ids inside the full plan's id space. *)

val pp_plan : ?dict:(int -> string) -> Format.formatter -> plan -> unit
(** Pretty-print the operator tree (EXPLAIN output); [dict] renders
    label/key codes as names. *)
