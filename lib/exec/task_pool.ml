(* Morsel-driven task pool (Section 6.1).

   Scans are split into morsels (chunk ranges); each morsel is pinned to a
   task and pushed into this pool; worker domains pull tasks and run the
   query function on the pinned morsel.  The adaptive JIT engine relies on
   the task granularity: the task function is re-read from an atomic
   reference between morsels, so a background compile can redirect
   execution mid-query (Section 6.2, "Adaptive Execution").

   Workers install a per-domain media meter so that the simulated clock can
   attribute work to individual workers (the harness reports parallel
   elapsed time as the max per-worker busy time). *)

type task = unit -> unit

type t = {
  mu : Mutex.t;
  nonempty : Condition.t;
  all_done : Condition.t;
  queue : task Queue.t;
  mutable outstanding : int;
  mutable stop : bool;
  mutable first_error : exn option;
  mutable workers : unit Domain.t list;
  nworkers : int;
  media : Pmem.Media.t option;
}

let worker_loop t =
  (match t.media with
  | Some m -> ignore (Pmem.Media.install_meter m)
  | None -> ());
  let rec loop () =
    Mutex.lock t.mu;
    while Queue.is_empty t.queue && not t.stop do
      Condition.wait t.nonempty t.mu
    done;
    if t.stop && Queue.is_empty t.queue then Mutex.unlock t.mu
    else begin
      let task = Queue.pop t.queue in
      Mutex.unlock t.mu;
      (try task ()
       with e ->
         Mutex.lock t.mu;
         if t.first_error = None then t.first_error <- Some e;
         Mutex.unlock t.mu);
      Mutex.lock t.mu;
      t.outstanding <- t.outstanding - 1;
      if t.outstanding = 0 then Condition.broadcast t.all_done;
      Mutex.unlock t.mu;
      loop ()
    end
  in
  loop ()

let create ?media ~nworkers () =
  if nworkers < 1 then invalid_arg "Task_pool.create";
  let t =
    {
      mu = Mutex.create ();
      nonempty = Condition.create ();
      all_done = Condition.create ();
      queue = Queue.create ();
      outstanding = 0;
      stop = false;
      first_error = None;
      workers = [];
      nworkers;
      media;
    }
  in
  t.workers <- List.init nworkers (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let size t = t.nworkers

let submit_all t tasks =
  Mutex.lock t.mu;
  List.iter
    (fun task ->
      t.outstanding <- t.outstanding + 1;
      Queue.push task t.queue)
    tasks;
  Condition.broadcast t.nonempty;
  Mutex.unlock t.mu

let wait t =
  Mutex.lock t.mu;
  while t.outstanding > 0 do
    Condition.wait t.all_done t.mu
  done;
  let err = t.first_error in
  t.first_error <- None;
  Mutex.unlock t.mu;
  match err with Some e -> raise e | None -> ()

(* A batch owns its error slot and completion count, so concurrent
   clients sharing one pool never observe each other's failures: the
   pool-level [first_error] is per-pool, and with several in-flight
   batches a raising morsel would otherwise be re-raised in whichever
   [wait] happens to run first - the batch that actually lost a morsel
   would return silently incomplete. *)
type batch = { mutable remaining : int; mutable error : exn option }

let submit_batch t tasks =
  let b = { remaining = List.length tasks; error = None } in
  let wrap task () =
    (try task ()
     with e ->
       Mutex.lock t.mu;
       if b.error = None then b.error <- Some e;
       Mutex.unlock t.mu);
    Mutex.lock t.mu;
    b.remaining <- b.remaining - 1;
    if b.remaining = 0 then Condition.broadcast t.all_done;
    Mutex.unlock t.mu
  in
  submit_all t (List.map wrap tasks);
  b

let wait_batch t b =
  Mutex.lock t.mu;
  while b.remaining > 0 do
    Condition.wait t.all_done t.mu
  done;
  let err = b.error in
  b.error <- None;
  Mutex.unlock t.mu;
  match err with Some e -> raise e | None -> ()

(* Run all tasks to completion; re-raises the first exception raised by
   THIS batch's tasks (exactly once), after every task has drained. *)
let run t tasks = wait_batch t (submit_batch t tasks)

let shutdown t =
  Mutex.lock t.mu;
  t.stop <- true;
  Condition.broadcast t.nonempty;
  Mutex.unlock t.mu;
  List.iter Domain.join t.workers;
  t.workers <- []

(* Convenience: run [f lo hi] in parallel over [0, n) split into morsels
   of [grain] items. *)
let parallel_ranges t ~n ~grain f =
  let tasks = ref [] in
  let lo = ref 0 in
  while !lo < n do
    let l = !lo in
    let h = min n (l + grain) in
    tasks := (fun () -> f l h) :: !tasks;
    lo := h
  done;
  run t (List.rev !tasks)
