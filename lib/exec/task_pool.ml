(* Morsel-driven task pool (Section 6.1).

   Scans are split into morsels (chunk ranges); each morsel is pinned to a
   task and pushed into this pool; worker domains pull tasks and run the
   query function on the pinned morsel.  The adaptive JIT engine relies on
   the task granularity: the task function is re-read from an atomic
   reference between morsels, so a background compile can redirect
   execution mid-query (Section 6.2, "Adaptive Execution").

   Every submission goes through a batch, which owns its completion count
   and error slot: concurrent clients sharing one pool never observe each
   other's failures, and a raising morsel is re-raised exactly once, in
   the matching [wait_batch].

   Workers install a per-domain media meter so that the simulated clock can
   attribute work to individual workers (the harness reports parallel
   elapsed time as the max per-worker busy time).  When created with a
   [media], the pool also publishes queue depth, batch latency and
   batch/morsel counts to the media's metrics registry, and emits
   batch -> morsel trace spans (the batch span id is captured at submit
   time and passed to workers as the explicit parent). *)

type task = unit -> unit

(* registry handles, present iff the pool was created with a media *)
type handles = {
  depth : int Atomic.t; (* exec_queue_depth gauge *)
  batch_latency : Obs.Histogram.t;
  batches : int Atomic.t;
  morsels : int Atomic.t;
  clock : unit -> int;
  tracer : Obs.Trace.t;
}

type t = {
  mu : Mutex.t;
  nonempty : Condition.t;
  all_done : Condition.t;
  queue : task Queue.t;
  mutable stop : bool;
  mutable workers : unit Domain.t list;
  mutable meter_ids : int list; (* per-worker media meters, spawn order *)
  nworkers : int;
  media : Pmem.Media.t option;
  obs : handles option;
}

let worker_loop t =
  (match t.media with
  | Some m ->
      let id = Pmem.Media.install_meter m in
      Mutex.lock t.mu;
      t.meter_ids <- t.meter_ids @ [ id ];
      Condition.broadcast t.all_done;
      Mutex.unlock t.mu
  | None -> ());
  let rec loop () =
    Mutex.lock t.mu;
    while Queue.is_empty t.queue && not t.stop do
      Condition.wait t.nonempty t.mu
    done;
    if t.stop && Queue.is_empty t.queue then Mutex.unlock t.mu
    else begin
      let task = Queue.pop t.queue in
      (match t.obs with
      | Some h -> Atomic.set h.depth (Queue.length t.queue)
      | None -> ());
      Mutex.unlock t.mu;
      (* tasks are batch-wrapped and never raise *)
      task ();
      loop ()
    end
  in
  loop ()

let create ?media ~nworkers () =
  if nworkers < 1 then invalid_arg "Task_pool.create";
  let obs =
    match media with
    | None -> None
    | Some m ->
        let reg = Pmem.Media.registry m in
        Some
          {
            depth =
              Obs.Metrics.gauge reg "exec_queue_depth"
                ~help:"tasks waiting in the morsel queue";
            batch_latency =
              Obs.Metrics.histogram reg "exec_batch_latency_ns"
                ~help:"simulated ns from batch submit to completion";
            batches =
              Obs.Metrics.counter reg "exec_batches_total"
                ~help:"task batches run";
            morsels =
              Obs.Metrics.counter reg "exec_morsels_total"
                ~help:"morsel tasks run";
            clock = (fun () -> Pmem.Media.clock m);
            tracer = Pmem.Media.tracer m;
          }
  in
  let t =
    {
      mu = Mutex.create ();
      nonempty = Condition.create ();
      all_done = Condition.create ();
      queue = Queue.create ();
      stop = false;
      workers = [];
      meter_ids = [];
      nworkers;
      media;
      obs;
    }
  in
  t.workers <- List.init nworkers (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let size t = t.nworkers

(* Meter ids of the worker domains.  Blocks until every worker has
   installed its meter (workers register right after spawn), so callers
   can read per-worker busy time without racing the spawn.  Empty when
   the pool has no media. *)
let worker_meters t =
  match t.media with
  | None -> []
  | Some _ ->
      Mutex.lock t.mu;
      while List.length t.meter_ids < t.nworkers do
        Condition.wait t.all_done t.mu
      done;
      let ids = List.sort compare t.meter_ids in
      Mutex.unlock t.mu;
      ids

(* A batch owns its error slot and completion count; completion is
   signalled on the pool-wide [all_done] condition, which every waiter
   rechecks against its own batch. *)
type batch = { mutable remaining : int; mutable error : exn option }

let submit_batch t tasks =
  let b = { remaining = List.length tasks; error = None } in
  let parent =
    match t.obs with Some h -> Obs.Trace.current h.tracer | None -> None
  in
  let wrap task () =
    let guarded () =
      try task ()
      with e ->
        Mutex.lock t.mu;
        if b.error = None then b.error <- Some e;
        Mutex.unlock t.mu
    in
    (match t.obs with
    | Some h -> Obs.Trace.with_span h.tracer ?parent "morsel" guarded
    | None -> guarded ());
    Mutex.lock t.mu;
    b.remaining <- b.remaining - 1;
    if b.remaining = 0 then Condition.broadcast t.all_done;
    Mutex.unlock t.mu
  in
  let wrapped = List.map wrap tasks in
  Mutex.lock t.mu;
  List.iter (fun task -> Queue.push task t.queue) wrapped;
  (match t.obs with
  | Some h ->
      Atomic.set h.depth (Queue.length t.queue);
      Obs.Metrics.incr h.batches;
      Obs.Metrics.add h.morsels (List.length wrapped)
  | None -> ());
  Condition.broadcast t.nonempty;
  Mutex.unlock t.mu;
  b

let wait_batch t b =
  Mutex.lock t.mu;
  while b.remaining > 0 do
    Condition.wait t.all_done t.mu
  done;
  let err = b.error in
  b.error <- None;
  Mutex.unlock t.mu;
  match err with Some e -> raise e | None -> ()

(* Run all tasks to completion; re-raises the first exception raised by
   THIS batch's tasks (exactly once), after every task has drained. *)
let run t tasks =
  match t.obs with
  | None -> wait_batch t (submit_batch t tasks)
  | Some h ->
      Obs.Trace.with_span h.tracer "batch" @@ fun () ->
      let t0 = h.clock () in
      let b = submit_batch t tasks in
      let observe () =
        Obs.Histogram.observe h.batch_latency (h.clock () - t0)
      in
      (match wait_batch t b with
      | () -> observe ()
      | exception e ->
          observe ();
          raise e)

(* Indexed morsel fan-out: one task per index, as one batch.  The
   caller typically owns an array indexed the same way (per-chunk
   partial states, per-chunk row buffers), so each task writes its own
   slot and the barrier needs no further synchronisation. *)
let run_indexed t ~n f = run t (List.init n (fun i () -> f i))

let shutdown t =
  Mutex.lock t.mu;
  t.stop <- true;
  Condition.broadcast t.nonempty;
  Mutex.unlock t.mu;
  List.iter Domain.join t.workers;
  t.workers <- []

(* Convenience: run [f lo hi] in parallel over [0, n) split into morsels
   of [grain] items. *)
let parallel_ranges t ~n ~grain f =
  let tasks = ref [] in
  let lo = ref 0 in
  while !lo < n do
    let l = !lo in
    let h = min n (l + grain) in
    tasks := (fun () -> f l h) :: !tasks;
    lo := h
  done;
  run t (List.rev !tasks)
