(** Morsel-driven task pool (Section 6.1).

    Worker domains pull tasks from a shared queue; scans are split into
    chunk morsels and submitted here.  When created with a [media], each
    worker installs a per-domain meter so simulated work can be
    attributed per worker. *)

type t

val create : ?media:Pmem.Media.t -> nworkers:int -> unit -> t
val size : t -> int
val submit_all : t -> (unit -> unit) list -> unit
val wait : t -> unit
(** Wait for all outstanding tasks (from every client); re-raises the
    first pool-level task exception.  Prefer the batch API below when
    several domains share one pool: [wait] cannot tell whose task
    failed. *)

type batch
(** A group of tasks submitted together.  Errors are isolated per
    batch: a raising morsel is re-raised exactly once, in the matching
    {!wait_batch}, never in a concurrent client's wait. *)

val submit_batch : t -> (unit -> unit) list -> batch
val wait_batch : t -> batch -> unit
(** Block until every task of the batch has finished (failed tasks
    still count as finished, so remaining morsels drain), then re-raise
    the batch's first exception, if any. *)

val run : t -> (unit -> unit) list -> unit
(** {!submit_batch} + {!wait_batch}: run tasks to completion with
    per-batch error isolation. *)

val shutdown : t -> unit
(** Stop and join all workers. *)

val parallel_ranges : t -> n:int -> grain:int -> (int -> int -> unit) -> unit
(** Run [f lo hi] over [0, n) split into morsels of [grain] items. *)
