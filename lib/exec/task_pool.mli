(** Morsel-driven task pool (Section 6.1).

    Worker domains pull tasks from a shared queue; scans are split into
    chunk morsels and submitted here.  All submission is batched: a
    batch owns its completion count and error slot, so concurrent
    clients sharing one pool never observe each other's failures.

    When created with a [media], each worker installs a per-domain meter
    so simulated work can be attributed per worker, and the pool
    publishes queue depth, batch latency and batch/morsel counts to the
    media's metrics registry (plus batch -> morsel trace spans when the
    media's tracer is enabled). *)

type t

val create : ?media:Pmem.Media.t -> nworkers:int -> unit -> t
val size : t -> int

val worker_meters : t -> int list
(** Per-worker media meter ids, in ascending order.  Blocks until every
    worker domain has installed its meter, so it is safe to call right
    after {!create} without racing worker spawn.  Returns [[]] when the
    pool was created without a media. *)

type batch
(** A group of tasks submitted together.  Errors are isolated per
    batch: a raising morsel is re-raised exactly once, in the matching
    {!wait_batch}, never in a concurrent client's wait. *)

val submit_batch : t -> (unit -> unit) list -> batch
val wait_batch : t -> batch -> unit
(** Block until every task of the batch has finished (failed tasks
    still count as finished, so remaining morsels drain), then re-raise
    the batch's first exception, if any. *)

val run : t -> (unit -> unit) list -> unit
(** {!submit_batch} + {!wait_batch}: run tasks to completion with
    per-batch error isolation. *)

val run_indexed : t -> n:int -> (int -> unit) -> unit
(** [run_indexed t ~n f] runs [f 0 .. f (n-1)] as one batch and waits
    for the barrier.  Each task conventionally owns slot [i] of any
    caller-side array (per-chunk partials, row buffers), so the barrier
    needs no extra synchronisation. *)

val shutdown : t -> unit
(** Stop and join all workers. *)

val parallel_ranges : t -> n:int -> grain:int -> (int -> int -> unit) -> unit
(** Run [f lo hi] over [0, n) split into morsels of [grain] items. *)
