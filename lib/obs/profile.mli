(** Operator-level query profile: per-operator tuple counts and elapsed
    simulated ticks, one slot per plan operator addressed by preorder id
    (root 0; unary child id+1; binary right child id+1+count(left)).

    The interpreter fills slots by wrapping operator output streams; the
    JIT fills the same slots through [ProfHook] IR instructions, making
    the two execution modes directly comparable. *)

type t

val create : ?tick:(unit -> int) -> string array -> t
(** [names.(i)] labels operator id [i]; [tick] supplies the clock used
    for {!now} (typically the media's simulated clock). *)

val nops : t -> int
val now : t -> int
val hit : t -> int -> unit
(** One output tuple for operator [i]; out-of-range ids are ignored. *)

val hit_n : t -> int -> int -> unit
val add_ticks : t -> int -> int -> unit
val tuples : t -> int -> int

type row = { id : int; op : string; tuples : int; ticks : int }

val rows : t -> row list
val render : ?header:string -> t -> string
