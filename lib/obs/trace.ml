(* Trace spans with parent/child context.

   Each domain keeps an implicit span stack in DLS, so nested
   [with_span] calls parent automatically; crossing a domain boundary
   (pipeline -> morsel) is explicit: the submitting side reads
   [current] and passes it as [?parent] inside the task closure.

   Finished spans land in a bounded ring (newest wins).  Tracing is off
   by default; a disabled tracer's [with_span] runs the thunk with no
   allocation beyond the closure, so spans can stay compiled into hot
   paths. *)

type span = {
  id : int;
  parent : int option;
  name : string;
  start_ns : int;
  end_ns : int;
}

type t = {
  clock : unit -> int;
  mutable enabled : bool;
  next_id : int Atomic.t;
  mu : Mutex.t;
  ring : span option array;
  mutable pos : int;
  mutable total : int;
  stack : span list ref Domain.DLS.key;
}

let create ?(capacity = 1024) ~clock () =
  {
    clock;
    enabled = false;
    next_id = Atomic.make 1;
    mu = Mutex.create ();
    ring = Array.make (max 1 capacity) None;
    pos = 0;
    total = 0;
    stack = Domain.DLS.new_key (fun () -> ref []);
  }

let set_enabled t b = t.enabled <- b
let enabled t = t.enabled

let current t =
  if not t.enabled then None
  else match !(Domain.DLS.get t.stack) with [] -> None | s :: _ -> Some s.id

let record t s =
  Mutex.lock t.mu;
  t.ring.(t.pos) <- Some s;
  t.pos <- (t.pos + 1) mod Array.length t.ring;
  t.total <- t.total + 1;
  Mutex.unlock t.mu

let with_span t ?parent name f =
  if not t.enabled then f ()
  else begin
    let stack = Domain.DLS.get t.stack in
    let parent =
      match parent with
      | Some _ -> parent
      | None -> ( match !stack with [] -> None | s :: _ -> Some s.id)
    in
    let s =
      {
        id = Atomic.fetch_and_add t.next_id 1;
        parent;
        name;
        start_ns = t.clock ();
        end_ns = 0;
      }
    in
    stack := s :: !stack;
    let finish () =
      (match !stack with _ :: rest -> stack := rest | [] -> ());
      record t { s with end_ns = t.clock () }
    in
    match f () with
    | r ->
        finish ();
        r
    | exception e ->
        finish ();
        raise e
  end

(* Newest first. *)
let spans t =
  Mutex.lock t.mu;
  let cap = Array.length t.ring in
  let n = min t.total cap in
  let out = ref [] in
  for i = 0 to n - 1 do
    (* oldest retained .. newest *)
    let idx = (t.pos - n + i + cap * 2) mod cap in
    match t.ring.(idx) with Some s -> out := s :: !out | None -> ()
  done;
  Mutex.unlock t.mu;
  !out

let total t = t.total

let reset t =
  Mutex.lock t.mu;
  Array.fill t.ring 0 (Array.length t.ring) None;
  t.pos <- 0;
  t.total <- 0;
  Mutex.unlock t.mu

let pp_span ppf s =
  Fmt.pf ppf "#%d%a %s [%d..%d] %dns" s.id
    (fun ppf -> function None -> () | Some p -> Fmt.pf ppf "<-#%d" p)
    s.parent s.name s.start_ns s.end_ns
    (s.end_ns - s.start_ns)
