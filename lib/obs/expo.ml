(* Exposition: registry snapshot -> Prometheus text / JSON, plus a
   strict validator for the text format used by CI to keep the
   exposition well-formed (metric/label name charset, TYPE declared
   before samples, quoted escaped label values, numeric sample
   values). *)

let is_name_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = ':'

let is_name_char c = is_name_start c || (c >= '0' && c <= '9')

let is_label_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_label_char c = is_label_start c || (c >= '0' && c <= '9')

let sanitize name =
  String.mapi
    (fun i c -> if (if i = 0 then is_name_start c else is_name_char c) then c else '_')
    name

let escape_label_value s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let fmt_labels = function
  | [] -> ""
  | labels ->
      "{"
      ^ String.concat ","
          (List.map
             (fun (k, v) ->
               Printf.sprintf "%s=\"%s\"" (sanitize k) (escape_label_value v))
             labels)
      ^ "}"

let type_of = function
  | Metrics.SCounter _ -> "counter"
  | Metrics.SGauge _ -> "gauge"
  | Metrics.SHist _ -> "histogram"

(* Group samples into metric families (same name), preserving first
   occurrence order, so HELP/TYPE are emitted once per family. *)
let families samples =
  let seen = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun (s : Metrics.sample) ->
      let name = sanitize s.name in
      match Hashtbl.find_opt seen name with
      | Some l -> l := s :: !l
      | None ->
          Hashtbl.add seen name (ref [ s ]);
          order := name :: !order)
    samples;
  List.rev_map
    (fun name -> (name, List.rev !(Hashtbl.find seen name)))
    !order
  |> List.rev

let to_prometheus samples =
  let b = Buffer.create 1024 in
  List.iter
    (fun (name, ss) ->
      let first = List.hd ss in
      if first.Metrics.help <> "" then
        Buffer.add_string b (Printf.sprintf "# HELP %s %s\n" name first.help);
      Buffer.add_string b
        (Printf.sprintf "# TYPE %s %s\n" name (type_of first.value));
      List.iter
        (fun (s : Metrics.sample) ->
          match s.value with
          | Metrics.SCounter v | Metrics.SGauge v ->
              Buffer.add_string b
                (Printf.sprintf "%s%s %d\n" name (fmt_labels s.labels) v)
          | Metrics.SHist h ->
              let cum = ref 0 in
              Array.iter
                (fun (ub, c) ->
                  cum := !cum + c;
                  Buffer.add_string b
                    (Printf.sprintf "%s_bucket%s %d\n" name
                       (fmt_labels (s.labels @ [ ("le", string_of_int ub) ]))
                       !cum))
                h.Histogram.buckets;
              Buffer.add_string b
                (Printf.sprintf "%s_bucket%s %d\n" name
                   (fmt_labels (s.labels @ [ ("le", "+Inf") ]))
                   h.Histogram.count);
              Buffer.add_string b
                (Printf.sprintf "%s_sum%s %d\n" name (fmt_labels s.labels)
                   h.Histogram.sum);
              Buffer.add_string b
                (Printf.sprintf "%s_count%s %d\n" name (fmt_labels s.labels)
                   h.Histogram.count))
        ss)
    (families samples);
  Buffer.contents b

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json samples =
  let b = Buffer.create 1024 in
  Buffer.add_string b "[";
  List.iteri
    (fun i (s : Metrics.sample) ->
      if i > 0 then Buffer.add_string b ",";
      Buffer.add_string b
        (Printf.sprintf "\n  {\"name\": \"%s\", \"type\": \"%s\", \"labels\": {"
           (json_escape (sanitize s.name))
           (type_of s.value));
      List.iteri
        (fun j (k, v) ->
          if j > 0 then Buffer.add_string b ", ";
          Buffer.add_string b
            (Printf.sprintf "\"%s\": \"%s\"" (json_escape k) (json_escape v)))
        s.labels;
      Buffer.add_string b "}, ";
      (match s.value with
      | Metrics.SCounter v | Metrics.SGauge v ->
          Buffer.add_string b (Printf.sprintf "\"value\": %d" v)
      | Metrics.SHist h ->
          Buffer.add_string b
            (Printf.sprintf
               "\"count\": %d, \"sum\": %d, \"min\": %d, \"max\": %d, \
                \"p50\": %d, \"p95\": %d, \"p99\": %d"
               h.Histogram.count h.Histogram.sum h.Histogram.min_
               h.Histogram.max_
               (Histogram.quantile h 0.50)
               (Histogram.quantile h 0.95)
               (Histogram.quantile h 0.99)));
      Buffer.add_string b "}")
    samples;
  Buffer.add_string b "\n]\n";
  Buffer.contents b

(* ---- validation ---------------------------------------------------- *)

let valid_name s =
  String.length s > 0
  && is_name_start s.[0]
  && String.for_all is_name_char s

let valid_label_name s =
  String.length s > 0
  && is_label_start s.[0]
  && String.for_all is_label_char s

let valid_value s =
  match s with
  | "+Inf" | "-Inf" | "NaN" -> true
  | _ -> ( match float_of_string_opt s with Some _ -> true | None -> false)

(* Parse `name{k="v",...} value` - returns (name, labels) or an error. *)
let parse_sample line =
  let n = String.length line in
  let i = ref 0 in
  while !i < n && is_name_char line.[!i] do incr i done;
  let name = String.sub line 0 !i in
  if not (valid_name name) then Error ("bad metric name: " ^ line)
  else begin
    let labels = ref [] in
    let err = ref None in
    (if !i < n && line.[!i] = '{' then begin
       incr i;
       let stop = ref false in
       while (not !stop) && !err = None do
         if !i >= n then err := Some "unterminated label set"
         else if line.[!i] = '}' then begin
           incr i;
           stop := true
         end
         else begin
           let j = ref !i in
           while !j < n && is_label_char line.[!j] do incr j done;
           let lname = String.sub line !i (!j - !i) in
           if not (valid_label_name lname) then
             err := Some ("bad label name in: " ^ line)
           else if !j + 1 >= n || line.[!j] <> '=' || line.[!j + 1] <> '"' then
             err := Some ("expected =\"...\" in: " ^ line)
           else begin
             let k = ref (!j + 2) in
             let closed = ref false in
             let buf = Buffer.create 8 in
             while (not !closed) && !err = None do
               if !k >= n then err := Some ("unterminated label value in: " ^ line)
               else
                 match line.[!k] with
                 | '"' ->
                     closed := true;
                     incr k
                 | '\\' ->
                     if !k + 1 >= n then err := Some "dangling escape"
                     else begin
                       (match line.[!k + 1] with
                       | '\\' | '"' | 'n' -> Buffer.add_char buf line.[!k + 1]
                       | _ -> err := Some ("bad escape in: " ^ line));
                       k := !k + 2
                     end
                 | c ->
                     Buffer.add_char buf c;
                     incr k
             done;
             if !err = None then begin
               labels := (lname, Buffer.contents buf) :: !labels;
               i := !k;
               if !i < n && line.[!i] = ',' then incr i
               else if !i < n && line.[!i] = '}' then ()
               else if !i >= n then err := Some "unterminated label set"
               else err := Some ("expected , or } in: " ^ line)
             end
           end
         end
       done
     end);
    match !err with
    | Some e -> Error e
    | None ->
        if !i >= n || line.[!i] <> ' ' then
          Error ("expected space before value: " ^ line)
        else begin
          let rest = String.sub line (!i + 1) (n - !i - 1) in
          let parts =
            String.split_on_char ' ' rest |> List.filter (fun s -> s <> "")
          in
          match parts with
          | [ v ] | [ v; _ ] ->
              if valid_value v then Ok (name, List.rev !labels)
              else Error ("bad sample value: " ^ line)
          | _ -> Error ("malformed sample line: " ^ line)
        end
  end

let validate_prometheus text =
  let types = Hashtbl.create 16 in
  let lines = String.split_on_char '\n' text in
  let rec go n = function
    | [] -> Ok ()
    | line :: rest ->
        let line = String.trim line in
        let fail msg = Error (Printf.sprintf "line %d: %s" n msg) in
        if line = "" then go (n + 1) rest
        else if String.length line > 0 && line.[0] = '#' then begin
          match String.split_on_char ' ' line with
          | "#" :: "TYPE" :: name :: [ ty ] ->
              if not (valid_name name) then fail ("bad TYPE metric name: " ^ name)
              else if
                not
                  (List.mem ty
                     [ "counter"; "gauge"; "histogram"; "summary"; "untyped" ])
              then fail ("bad TYPE: " ^ ty)
              else if Hashtbl.mem types name then
                fail ("duplicate TYPE for " ^ name)
              else begin
                Hashtbl.add types name ty;
                go (n + 1) rest
              end
          | "#" :: "HELP" :: name :: _ ->
              if not (valid_name name) then fail ("bad HELP metric name: " ^ name)
              else go (n + 1) rest
          | _ -> go (n + 1) rest (* free-form comment *)
        end
        else begin
          match parse_sample line with
          | Error e -> fail e
          | Ok (name, labels) ->
              let strip suffix =
                if
                  String.length name > String.length suffix
                  && String.sub name
                       (String.length name - String.length suffix)
                       (String.length suffix)
                     = suffix
                then
                  Some
                    (String.sub name 0 (String.length name - String.length suffix))
                else None
              in
              let family, is_bucket =
                match Hashtbl.find_opt types name with
                | Some _ -> (Some name, false)
                | None -> (
                    match strip "_bucket" with
                    | Some base when Hashtbl.find_opt types base = Some "histogram"
                      ->
                        (Some base, true)
                    | _ -> (
                        let base =
                          match strip "_sum" with
                          | Some b -> Some b
                          | None -> strip "_count"
                        in
                        match base with
                        | Some b when Hashtbl.find_opt types b = Some "histogram"
                          ->
                            (Some b, false)
                        | _ -> (None, false)))
              in
              if family = None then
                fail ("sample without preceding TYPE: " ^ name)
              else if is_bucket && not (List.mem_assoc "le" labels) then
                fail ("histogram bucket without le label: " ^ line)
              else go (n + 1) rest
        end
  in
  go 1 lines
