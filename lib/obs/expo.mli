(** Metric exposition: Prometheus text format and JSON, plus a strict
    text-format validator (used by CI on the bench metrics artifact). *)

val to_prometheus : Metrics.sample list -> string
(** One HELP/TYPE per metric family; histograms expose cumulative
    [_bucket{le=...}] samples plus [_sum]/[_count]. *)

val to_json : Metrics.sample list -> string
(** JSON array of samples; histograms carry count/sum/min/max and
    p50/p95/p99 estimates. *)

val validate_prometheus : string -> (unit, string) result
(** Check metric/label name charsets, quoting and escapes, numeric
    sample values, TYPE declared before (and at most once for) every
    sample's family, and [le] labels on histogram buckets. *)

val sanitize : string -> string
(** Replace characters outside the Prometheus name charset with '_'. *)
