(* Domain-safe metrics registry.

   Metrics are identified by (name, sorted labels).  Registration is
   find-or-create under a mutex; the returned handles ([int Atomic.t],
   [Histogram.t]) are then used lock-free on hot paths.  [Callback]
   metrics sample external state (e.g. the media's existing atomic
   counters or the MVTO stats record) at snapshot time and are never
   reset by the registry - their state belongs to their owner. *)

type sampled =
  | SCounter of int
  | SGauge of int
  | SHist of Histogram.snapshot

type value =
  | VCounter of int Atomic.t
  | VGauge of int Atomic.t
  | VHist of Histogram.t
  | VCallback of [ `Counter | `Gauge ] * (unit -> int)

type sample = {
  name : string;
  labels : (string * string) list;
  help : string;
  value : sampled;
}

type key = string * (string * string) list

type t = {
  mu : Mutex.t;
  tbl : (key, string * value) Hashtbl.t;  (* key -> (help, value) *)
  mutable order : key list;  (* reverse registration order *)
}

let create () = { mu = Mutex.create (); tbl = Hashtbl.create 64; order = [] }

let norm_labels labels =
  List.sort (fun (a, _) (b, _) -> compare a b) labels

let register t name labels help mk =
  let key = (name, norm_labels labels) in
  Mutex.lock t.mu;
  let v =
    match Hashtbl.find_opt t.tbl key with
    | Some (_, v) -> v
    | None ->
        let v = mk () in
        Hashtbl.replace t.tbl key (help, v);
        t.order <- key :: t.order;
        v
  in
  Mutex.unlock t.mu;
  v

let counter t ?(labels = []) ?(help = "") name =
  match register t name labels help (fun () -> VCounter (Atomic.make 0)) with
  | VCounter a -> a
  | _ -> invalid_arg ("Metrics.counter: " ^ name ^ " registered with another kind")

let gauge t ?(labels = []) ?(help = "") name =
  match register t name labels help (fun () -> VGauge (Atomic.make 0)) with
  | VGauge a -> a
  | _ -> invalid_arg ("Metrics.gauge: " ^ name ^ " registered with another kind")

let histogram t ?(labels = []) ?(help = "") name =
  match register t name labels help (fun () -> VHist (Histogram.create ())) with
  | VHist h -> h
  | _ ->
      invalid_arg ("Metrics.histogram: " ^ name ^ " registered with another kind")

(* Re-registering a callback replaces the reader: a recovered subsystem
   (e.g. [Mvto.recover]) re-points the metric at its fresh state. *)
let callback t ?(labels = []) ?(help = "") ~kind name read =
  let key = (name, norm_labels labels) in
  Mutex.lock t.mu;
  if not (Hashtbl.mem t.tbl key) then t.order <- key :: t.order;
  Hashtbl.replace t.tbl key (help, VCallback (kind, read));
  Mutex.unlock t.mu

let incr a = Atomic.incr a
let add a n = ignore (Atomic.fetch_and_add a n)
let set a n = Atomic.set a n

let snapshot t =
  Mutex.lock t.mu;
  let keys = List.rev t.order in
  let entries =
    List.filter_map
      (fun key ->
        match Hashtbl.find_opt t.tbl key with
        | Some (help, v) -> Some (key, help, v)
        | None -> None)
      keys
  in
  Mutex.unlock t.mu;
  List.map
    (fun ((name, labels), help, v) ->
      let value =
        match v with
        | VCounter a -> SCounter (Atomic.get a)
        | VGauge a -> SGauge (Atomic.get a)
        | VHist h -> SHist (Histogram.snapshot h)
        | VCallback (`Counter, read) -> SCounter (read ())
        | VCallback (`Gauge, read) -> SGauge (read ())
      in
      { name; labels; help; value })
    entries

let value t ?(labels = []) name =
  Mutex.lock t.mu;
  let v = Hashtbl.find_opt t.tbl (name, norm_labels labels) in
  Mutex.unlock t.mu;
  match v with
  | Some (_, VCounter a) | Some (_, VGauge a) -> Some (Atomic.get a)
  | Some (_, VCallback (_, read)) -> Some (read ())
  | Some (_, VHist _) | None -> None

let reset t =
  Mutex.lock t.mu;
  let vs = Hashtbl.fold (fun _ (_, v) acc -> v :: acc) t.tbl [] in
  Mutex.unlock t.mu;
  List.iter
    (function
      | VCounter a | VGauge a -> Atomic.set a 0
      | VHist h -> Histogram.reset h
      | VCallback _ -> ())
    vs
