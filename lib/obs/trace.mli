(** Trace spans with parent/child context.

    Spans nest implicitly within a domain (a DLS span stack supplies
    the parent); crossing a domain boundary is explicit - read
    {!current} before submitting and pass it as [?parent] inside the
    task.  Disabled (the default), {!with_span} just runs the thunk, so
    call sites stay in hot paths.  Finished spans are kept in a bounded
    ring, newest wins. *)

type span = {
  id : int;
  parent : int option;
  name : string;
  start_ns : int;
  end_ns : int;
}

type t

val create : ?capacity:int -> clock:(unit -> int) -> unit -> t
val set_enabled : t -> bool -> unit
val enabled : t -> bool

val with_span : t -> ?parent:int -> string -> (unit -> 'a) -> 'a
(** Run the thunk inside a span (recorded even when it raises). *)

val current : t -> int option
(** Innermost live span of the calling domain - pass to a worker as the
    explicit parent. *)

val spans : t -> span list
(** Retained finished spans, newest first. *)

val total : t -> int
(** Spans finished since creation/reset (including evicted ones). *)

val reset : t -> unit
val pp_span : Format.formatter -> span -> unit
