(** Domain-safe metrics registry: counters, gauges, mergeable
    histograms and callback metrics, identified by (name, labels).

    Registration is find-or-create; the returned handles are plain
    [int Atomic.t] / {!Histogram.t} so hot paths pay one atomic op.
    [callback] metrics sample external state at snapshot time (the
    media's counters, the MVTO stats record) and are exempt from
    {!reset} - their state belongs to the subsystem that owns it. *)

type t

val create : unit -> t

val counter : t -> ?labels:(string * string) list -> ?help:string -> string -> int Atomic.t
val gauge : t -> ?labels:(string * string) list -> ?help:string -> string -> int Atomic.t
val histogram : t -> ?labels:(string * string) list -> ?help:string -> string -> Histogram.t

val callback :
  t ->
  ?labels:(string * string) list ->
  ?help:string ->
  kind:[ `Counter | `Gauge ] ->
  string ->
  (unit -> int) ->
  unit
(** Register (or re-point) a metric computed by [read] at snapshot
    time. *)

val incr : int Atomic.t -> unit
val add : int Atomic.t -> int -> unit
val set : int Atomic.t -> int -> unit

type sampled =
  | SCounter of int
  | SGauge of int
  | SHist of Histogram.snapshot

type sample = {
  name : string;
  labels : (string * string) list;
  help : string;
  value : sampled;
}

val snapshot : t -> sample list
(** All metrics in registration order. *)

val value : t -> ?labels:(string * string) list -> string -> int option
(** Scalar metric lookup ([None] for histograms / unknown names). *)

val reset : t -> unit
(** Zero counters and gauges, reset histograms; callbacks untouched. *)
