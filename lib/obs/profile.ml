(* Operator-level query profile.

   One slot per plan operator, addressed by the operator's preorder id
   (root = 0; a unary operator's child is id+1; a binary operator's
   right child is id + 1 + operator_count(left)).  The interpreter
   wraps each operator's output stream with [hit]; generated code
   reaches the same slots through the [ProfHook] IR instruction, so an
   interpreted and a JIT-compiled run of one plan fill comparable
   profiles.  Counters are atomic: morsel workers share the slots. *)

type t = {
  names : string array;
  tuples : int Atomic.t array;
  ticks : int Atomic.t array;
  tick_fn : unit -> int;
}

let create ?(tick = fun () -> 0) names =
  {
    names;
    tuples = Array.init (Array.length names) (fun _ -> Atomic.make 0);
    ticks = Array.init (Array.length names) (fun _ -> Atomic.make 0);
    tick_fn = tick;
  }

let nops t = Array.length t.names
let now t = t.tick_fn ()

let hit t i =
  if i >= 0 && i < Array.length t.tuples then Atomic.incr t.tuples.(i)

let hit_n t i n =
  if i >= 0 && i < Array.length t.tuples then
    ignore (Atomic.fetch_and_add t.tuples.(i) n)

let add_ticks t i n =
  if i >= 0 && i < Array.length t.ticks then
    ignore (Atomic.fetch_and_add t.ticks.(i) n)

let tuples t i = Atomic.get t.tuples.(i)

type row = { id : int; op : string; tuples : int; ticks : int }

let rows t =
  List.init (Array.length t.names) (fun i ->
      {
        id = i;
        op = t.names.(i);
        tuples = Atomic.get t.tuples.(i);
        ticks = Atomic.get t.ticks.(i);
      })

let render ?(header = "operator profile") t =
  let b = Buffer.create 256 in
  Buffer.add_string b header;
  Buffer.add_char b '\n';
  let wop =
    Array.fold_left (fun w n -> max w (String.length n)) 8 t.names
  in
  Buffer.add_string b
    (Printf.sprintf "  %-4s %-*s %12s %14s\n" "id" wop "op" "tuples"
       "ticks(sim ns)");
  List.iter
    (fun r ->
      Buffer.add_string b
        (Printf.sprintf "  %-4d %-*s %12d %14d\n" r.id wop r.op r.tuples
           r.ticks))
    (rows t);
  Buffer.contents b
