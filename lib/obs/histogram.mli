(** Mergeable log-bucketed histogram with per-domain shards.

    [observe] is lock-free for the recording domain (each domain owns a
    private shard, installed on first use); [snapshot] merges all shards.
    Values below 16 are exact; above, buckets are log2 octaves split
    into 4 linear sub-buckets, bounding the relative error of
    {!quantile} by 25%.  Replaces the full-retention sorted-array
    percentile computation previously hand-rolled in [bench/htap.ml]. *)

type t

val create : unit -> t
val observe : t -> int -> unit
(** Record a (non-negative) value; negative values clamp to 0. *)

type snapshot = {
  count : int;
  sum : int;
  min_ : int;
  max_ : int;
  buckets : (int * int) array;
      (** (inclusive upper bound, count) per nonempty bucket, ascending *)
}

val empty_snapshot : snapshot
val snapshot : t -> snapshot
(** Merge every domain's shard.  Exact once writers are quiesced. *)

val quantile : snapshot -> float -> int
(** Nearest-rank estimate: upper bound of the rank's bucket, clamped to
    the observed min/max.  Monotone in the quantile argument. *)

val mean : snapshot -> float
val reset : t -> unit
(** Zero all shards; callers must quiesce recording domains first. *)

(**/**)

val bucket_of : int -> int
val bucket_upper : int -> int
val nbuckets : int
