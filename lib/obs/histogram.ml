(* Mergeable log-bucketed histogram.

   Values 0..15 get exact unit buckets; larger values fall into
   log2-spaced octaves subdivided into 4 linear sub-buckets, so the
   bucket containing v spans at most v/4 and a quantile read off the
   bucket boundary is within 25% relative error of the exact
   nearest-rank answer (exact below 16).

   Concurrency: every recording domain owns a private shard (installed
   through a per-histogram [Domain.DLS] key, the same pattern as the
   media's per-domain meters), so [observe] is single-writer and
   lock-free.  [snapshot] merges all shards; since shard cells are
   immediate ints, a racing snapshot sees a slightly stale but
   consistent-enough view - exact once writers are quiesced, which is
   how the benchmarks use it. *)

let octaves = 59 (* msb 4..62: every positive tagged int *)
let nbuckets = 16 + (octaves * 4)

let bucket_of v =
  if v < 16 then max v 0
  else begin
    (* index of the highest set bit; v >= 16 so msb >= 4 *)
    let msb = ref 4 and x = ref (v lsr 4) in
    while !x > 1 do
      incr msb;
      x := !x lsr 1
    done;
    let sub = (v lsr (!msb - 2)) land 3 in
    16 + ((!msb - 4) * 4) + sub
  end

(* Inclusive upper bound of bucket [i]: the largest value mapping to it. *)
let bucket_upper i =
  if i < 16 then i
  else
    let oct = (i - 16) / 4 and sub = (i - 16) mod 4 in
    let msb = oct + 4 in
    ((4 + sub + 1) lsl (msb - 2)) - 1

type shard = {
  counts : int array;
  mutable n : int;
  mutable sum : int;
  mutable min_v : int;
  mutable max_v : int;
}

let new_shard () =
  { counts = Array.make nbuckets 0; n = 0; sum = 0; min_v = max_int; max_v = min_int }

type t = {
  key : shard option ref Domain.DLS.key;
  mu : Mutex.t;
  mutable shards : shard list;
}

let create () =
  {
    key = Domain.DLS.new_key (fun () -> ref None);
    mu = Mutex.create ();
    shards = [];
  }

let shard_of t =
  let cell = Domain.DLS.get t.key in
  match !cell with
  | Some s -> s
  | None ->
      let s = new_shard () in
      cell := Some s;
      Mutex.lock t.mu;
      t.shards <- s :: t.shards;
      Mutex.unlock t.mu;
      s

let observe t v =
  let v = if v < 0 then 0 else v in
  let s = shard_of t in
  let b = bucket_of v in
  s.counts.(b) <- s.counts.(b) + 1;
  s.n <- s.n + 1;
  s.sum <- s.sum + v;
  if v < s.min_v then s.min_v <- v;
  if v > s.max_v then s.max_v <- v

type snapshot = {
  count : int;
  sum : int;
  min_ : int;  (** meaningless when [count = 0] *)
  max_ : int;
  buckets : (int * int) array;
      (** (inclusive upper bound, count) for every nonempty bucket,
          ascending *)
}

let empty_snapshot =
  { count = 0; sum = 0; min_ = 0; max_ = 0; buckets = [||] }

let snapshot t =
  Mutex.lock t.mu;
  let shards = t.shards in
  Mutex.unlock t.mu;
  if shards = [] then empty_snapshot
  else begin
    let counts = Array.make nbuckets 0 in
    let n = ref 0 and sum = ref 0 in
    let min_v = ref max_int and max_v = ref min_int in
    List.iter
      (fun s ->
        Array.iteri (fun i c -> counts.(i) <- counts.(i) + c) s.counts;
        n := !n + s.n;
        sum := !sum + s.sum;
        if s.min_v < !min_v then min_v := s.min_v;
        if s.max_v > !max_v then max_v := s.max_v)
      shards;
    let buckets = ref [] in
    for i = nbuckets - 1 downto 0 do
      if counts.(i) > 0 then buckets := (bucket_upper i, counts.(i)) :: !buckets
    done;
    {
      count = !n;
      sum = !sum;
      min_ = (if !n = 0 then 0 else !min_v);
      max_ = (if !n = 0 then 0 else !max_v);
      buckets = Array.of_list !buckets;
    }
  end

(* Nearest-rank quantile estimate: the upper bound of the bucket holding
   the rank, clamped to the observed extremes so e.g. p99 never exceeds
   max.  Monotone in [q] by construction. *)
let quantile s q =
  if s.count = 0 then 0
  else begin
    let rank =
      let r = int_of_float (ceil (q *. float_of_int s.count)) in
      if r < 1 then 1 else if r > s.count then s.count else r
    in
    let acc = ref 0 and res = ref s.max_ in
    (try
       Array.iter
         (fun (ub, c) ->
           acc := !acc + c;
           if !acc >= rank then begin
             res := ub;
             raise Exit
           end)
         s.buckets
     with Exit -> ());
    let v = !res in
    if v > s.max_ then s.max_ else if v < s.min_ then s.min_ else v
  end

let mean s = if s.count = 0 then 0. else float_of_int s.sum /. float_of_int s.count

(* Only meaningful once recording domains are quiesced (or joined). *)
let reset t =
  Mutex.lock t.mu;
  List.iter
    (fun s ->
      Array.fill s.counts 0 nbuckets 0;
      s.n <- 0;
      s.sum <- 0;
      s.min_v <- max_int;
      s.max_v <- min_int)
    t.shards;
  Mutex.unlock t.mu
