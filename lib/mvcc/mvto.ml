(* Timestamp-ordering multi-version concurrency control (Section 5),
   optimised for PMem:

   - the PMem record always holds the most recent *committed* version and
     doubles as the write lock (its txn_id field, set with a CAS-like
     store under the record's stripe latch);
   - all dirty (uncommitted) versions live in DRAM chains and are written
     at DRAM latency until commit (DG1, DG2);
   - superseded committed versions are preserved in the DRAM chain so
     older readers still see their snapshot after the in-place commit;
   - commit persists the dirty version into the PMem record inside a
     PMDK-style undo-log transaction (DG4), then garbage-collects at
     transaction granularity (Section 5.3);
   - deletes and aborted inserts never deallocate record slots: the chunk
     bitmap marks them free for reuse (DG5).

   Timestamp rules (as in the paper): transaction T may read version o_i
   iff bts(o_i) <= id(T) < ets(o_i) and o_i is not locked by another active
   transaction (else T aborts); T may update the latest version iff it is
   unlocked, its rts <= id(T), and its bts <= id(T); reads bump rts.

   Physical adjacency splicing (relationship inserts prepend to the
   endpoint nodes' lists) is not versioned: relationships carry their own
   visibility interval, so a snapshot traversal simply skips invisible
   ones.  This mirrors the paper's storage model where next-pointers are
   plain offsets in the records. *)

module Pool = Pmem.Pool
module Media = Pmem.Media
module Pmdk_tx = Pmem.Pmdk_tx

let log_src = Logs.Src.create "poseidon.mvto" ~doc:"MVTO transaction manager"

module Log = (val Logs.src_log log_src : Logs.LOG)
module Layout = Storage.Layout
module Value = Storage.Value
module G = Storage.Graph_store
module Props = Storage.Props

exception Abort of string

let inf = Layout.inf_ts

type stats = {
  mutable commits : int;
  mutable aborts : int;
  mutable reads : int;
  mutable writes : int;
  mutable gc_pruned : int;
  mutable retries : int; (* transient aborts absorbed by with_txn_retry *)
}

(* A committing transaction's slot on the group-commit ring: the leader
   stores the outcome and flips [cr_done] as the per-txn durability ack. *)
type commit_req = {
  cr_txn : Txn.t;
  mutable cr_done : bool;
  mutable cr_error : exn option;
}

type t = {
  store : G.t;
  chains : Version.chains;
  next_ts : int Atomic.t;
  active : (int, Txn.t) Hashtbl.t;
  active_mu : Mutex.t;
  deferred : (Version.key * int) list ref; (* physical frees awaiting GC *)
  deferred_mu : Mutex.t;
  stats : stats;
  stats_mu : Mutex.t;
  mutable write_through : bool;
      (* DG1/DG2 ablation: when set, every dirty-version mutation is also
         persisted to the PMem record immediately - the "pure PMem"
         version-storage alternative the paper rejects *)
  mutable durable_rts : bool;
      (* ablation of the paper's Section 5.1 discussion: rts updates are
         flushed+fenced on every first read instead of being left to
         opportunistic write-back (rts can be re-initialised on recovery,
         so durability is not required for correctness) *)
  (* group commit (Section 5.1 + the batched-persist primitives):
     concurrently committing transactions enqueue here and share one
     undo-log publish fence and one invalidation per batch *)
  gcommit_mu : Mutex.t;
  gcommit_cv : Condition.t;
  mutable gcommit_queue : commit_req list; (* newest first *)
  mutable gcommit_leader : bool;
  gcommit_hist : Obs.Histogram.t;
  mutable group_commit : bool;
}

let create store =
  let registry = Media.registry (Pool.media (G.pool store)) in
  let t =
    {
      store;
      chains = Version.create_chains ();
      next_ts = Atomic.make 1;
      active = Hashtbl.create 64;
      active_mu = Mutex.create ();
      deferred = ref [];
      deferred_mu = Mutex.create ();
      stats =
        { commits = 0; aborts = 0; reads = 0; writes = 0; gc_pruned = 0;
          retries = 0 };
      stats_mu = Mutex.create ();
      write_through = false;
      durable_rts = false;
      gcommit_mu = Mutex.create ();
      gcommit_cv = Condition.create ();
      gcommit_queue = [];
      gcommit_leader = false;
      gcommit_hist =
        Obs.Metrics.histogram registry "group_commit_batch_size"
          ~help:"committing transactions sharing one log-persist epoch";
      group_commit = true;
    }
  in
  (* Lifetime stats double as callback metrics; [recover] re-creates the
     manager and re-points the callbacks at the fresh stats record. *)
  let cb name help read =
    Obs.Metrics.callback registry name ~help ~kind:`Counter read
  in
  cb "mvto_commits_total" "committed transactions" (fun () -> t.stats.commits);
  cb "mvto_aborts_total" "aborted transactions" (fun () -> t.stats.aborts);
  cb "mvto_reads_total" "version reads" (fun () -> t.stats.reads);
  cb "mvto_writes_total" "version writes" (fun () -> t.stats.writes);
  cb "mvto_gc_pruned_total" "versions pruned by GC" (fun () ->
      t.stats.gc_pruned);
  cb "mvto_retries_total" "transient aborts absorbed by retry loops"
    (fun () -> t.stats.retries);
  t

let store t = t.store
let stats t = t.stats
let chains t = t.chains
let set_write_through t on = t.write_through <- on
let set_durable_rts t on = t.durable_rts <- on

let set_group_commit t on =
  (* flipping the switch is safe between batches: the ring drains fully
     before a leader steps down *)
  Mutex.lock t.gcommit_mu;
  t.group_commit <- on;
  Mutex.unlock t.gcommit_mu

let bump_stat t f =
  Mutex.lock t.stats_mu;
  f t.stats;
  Mutex.unlock t.stats_mu

(* --- Persistent header access ------------------------------------------ *)

let fields = function
  | Version.Node ->
      Layout.Node.(txn_id, bts, ets, rts)
  | Version.Rel ->
      Layout.Rel.(txn_id, bts, ets, rts)

let record_off t (kind, id) =
  match kind with
  | Version.Node -> G.node_off t.store id
  | Version.Rel -> G.rel_off t.store id

(* The four MVTO header words share one cache line: charge a single
   line-granular read, then pick the fields out of the fetched line. *)
let hdr t key =
  let f_txn, f_bts, f_ets, f_rts = fields (fst key) in
  let off = record_off t key in
  let p = G.pool t.store in
  Pool.touch_read p ~off:(off + f_txn) ~len:(f_rts - f_txn + 8);
  ( Pool.raw_read_int p (off + f_txn),
    Pool.raw_read_int p (off + f_bts),
    Pool.raw_read_int p (off + f_ets),
    Pool.raw_read_int p (off + f_rts) )

(* Write lock: a failure-atomic 8-byte store of the txn_id field (the
   paper's CaS; atomicity against concurrent writers comes from the
   stripe latch held by the caller). *)
let set_lock t key v =
  let f_txn, _, _, _ = fields (fst key) in
  Pool.atomic_write_int (G.pool t.store) (record_off t key + f_txn) v

(* rts does not need to be durable - after a crash all transactions are
   gone and recovery re-initialises it - so by default it is stored
   without an explicit flush (the line is written back opportunistically).
   The durable_rts ablation pays the full flush+fence instead. *)
let set_rts_relaxed t key v =
  let _, _, _, f_rts = fields (fst key) in
  if t.durable_rts then
    Pool.atomic_write_int (G.pool t.store) (record_off t key + f_rts) v
  else Pool.write_int (G.pool t.store) (record_off t key + f_rts) v

let read_image t (kind, id) =
  match kind with
  | Version.Node -> Version.N (G.read_node t.store id)
  | Version.Rel -> Version.R (G.read_rel t.store id)

let read_pmem_props t (kind, id) =
  match kind with
  | Version.Node -> G.node_props t.store id
  | Version.Rel -> G.rel_props t.store id

let is_live t (kind, id) =
  match kind with
  | Version.Node -> G.node_live t.store id
  | Version.Rel -> G.rel_live t.store id

(* --- Transaction lifecycle ---------------------------------------------- *)

let begin_txn t =
  let id = Atomic.fetch_and_add t.next_ts 1 in
  let txn = Txn.make id in
  Mutex.lock t.active_mu;
  Hashtbl.replace t.active id txn;
  Mutex.unlock t.active_mu;
  txn

let unregister t txn =
  Mutex.lock t.active_mu;
  Hashtbl.remove t.active (Txn.id txn);
  Mutex.unlock t.active_mu

let watermark t =
  Mutex.lock t.active_mu;
  let w = Hashtbl.fold (fun id _ acc -> min id acc) t.active max_int in
  Mutex.unlock t.active_mu;
  w

let active_count t =
  Mutex.lock t.active_mu;
  let n = Hashtbl.length t.active in
  Mutex.unlock t.active_mu;
  n

(* --- Views --------------------------------------------------------------- *)

type view = {
  v_key : Version.key;
  v_image : Version.image;
  v_props : (int * Value.t) list;
}

let view_id v = snd v.v_key

let view_node v =
  match v.v_image with
  | Version.N n -> n
  | Version.R _ -> invalid_arg "Mvto.view_node: relationship view"

let view_rel v =
  match v.v_image with
  | Version.R r -> r
  | Version.N _ -> invalid_arg "Mvto.view_rel: node view"

let view_prop v key = List.assoc_opt key v.v_props

let of_version key (v : Version.version) =
  { v_key = key; v_image = v.Version.image; v_props = v.Version.props }

(* --- Read path (Section 5.1, "Read transaction") ------------------------ *)

let abort_exn reason = Abort reason

let read t txn key =
  if not (Txn.is_active txn) then raise (abort_exn "txn not active");
  bump_stat t (fun s -> s.reads <- s.reads + 1);
  if not (is_live t key) then None
  else
    Version.with_stripe t.chains key @@ fun () ->
    let chain = Version.find t.chains key in
    (* own dirty version first: read-your-writes *)
    match chain with
    | d :: _ when Version.txn_id d = Txn.id txn ->
        if d.Version.deleted then None else Some (of_version key d)
    | _ -> (
        let h_txn, h_bts, h_ets, h_rts = hdr t key in
        if h_bts <= Txn.id txn && Txn.id txn < h_ets then begin
          if h_txn <> 0 && h_txn <> Txn.id txn then
            raise (abort_exn "read: object locked by active writer");
          if h_rts < Txn.id txn then set_rts_relaxed t key (Txn.id txn);
          Some
            {
              v_key = key;
              v_image = read_image t key;
              v_props = read_pmem_props t key;
            }
        end
        else if Txn.id txn < h_bts then
          (* too new: an older committed version may survive in the chain *)
          match
            List.find_opt
              (fun v ->
                Version.txn_id v = 0
                && Version.bts v <= Txn.id txn
                && Txn.id txn < Version.ets v)
              chain
          with
          | Some v -> Some (of_version key v)
          | None -> None
        else (* h_ets <= id: deleted before our snapshot began *) None)

let read_node t txn id = read t txn (Version.Node, id)
let read_rel t txn id = read t txn (Version.Rel, id)

(* Header-only visibility test for scan fast paths: same protocol as
   [read] (including the rts bump and lock abort) without materialising
   properties.  When no version chains exist at all (no writer has
   preserved or dirtied any version), the stripe latch and chain lookup
   are skipped - the common case for read-mostly workloads. *)
let visible t txn key =
  if not (is_live t key) then false
  else if Version.chain_count t.chains = 0 then begin
    let h_txn, h_bts, h_ets, h_rts = hdr t key in
    if h_bts <= Txn.id txn && Txn.id txn < h_ets then begin
      if h_txn <> 0 && h_txn <> Txn.id txn then
        raise (abort_exn "scan: object locked by active writer");
      if h_rts < Txn.id txn then set_rts_relaxed t key (Txn.id txn);
      true
    end
    else false
  end
  else
    Version.with_stripe t.chains key @@ fun () ->
    let chain = Version.find t.chains key in
    match chain with
    | d :: _ when Version.txn_id d = Txn.id txn -> not d.Version.deleted
    | _ ->
        let h_txn, h_bts, h_ets, h_rts = hdr t key in
        if h_bts <= Txn.id txn && Txn.id txn < h_ets then begin
          if h_txn <> 0 && h_txn <> Txn.id txn then
            raise (abort_exn "scan: object locked by active writer");
          if h_rts < Txn.id txn then set_rts_relaxed t key (Txn.id txn);
          true
        end
        else if Txn.id txn < h_bts then
          List.exists
            (fun v ->
              Version.txn_id v = 0
              && Version.bts v <= Txn.id txn
              && Txn.id txn < Version.ets v)
            chain
        else false

(* Lean single-property read for generated code: same visibility protocol
   as [read], but fetches only the requested property instead of
   materialising the whole view.  The interpreter keeps the general
   view-materialising path - compiled code knowing the (object, key) pair
   at compile time is exactly what lets it skip the generality. *)
let read_prop t txn key pkey =
  if not (is_live t key) then None
  else if Version.chain_count t.chains = 0 then begin
    let h_txn, h_bts, h_ets, h_rts = hdr t key in
    if h_bts <= Txn.id txn && Txn.id txn < h_ets then begin
      if h_txn <> 0 && h_txn <> Txn.id txn then
        raise (abort_exn "read: object locked by active writer");
      if h_rts < Txn.id txn then set_rts_relaxed t key (Txn.id txn);
      let ps = G.prop_store t.store in
      match key with
      | Version.Node, id ->
          Props.get ps ~first:(G.node_field t.store id Layout.Node.first_prop)
            ~key:pkey
      | Version.Rel, id ->
          Props.get ps ~first:(G.rel_field t.store id Layout.Rel.first_prop)
            ~key:pkey
    end
    else None
  end
  else
    match read t txn key with
    | None -> None
    | Some view -> view_prop view pkey

(* --- Write path (Section 5.1, "Write transaction") ---------------------- *)

(* Create (or find) the dirty version of [key] owned by [txn], preserving
   the current committed version in the chain, then apply [mutate]. *)
let with_dirty t txn key mutate =
  if not (Txn.is_active txn) then raise (abort_exn "txn not active");
  bump_stat t (fun s -> s.writes <- s.writes + 1);
  (* DG1/DG2 ablation: the rejected design persists the dirty version on
     every modification instead of once at commit *)
  let mutate =
    if not t.write_through then mutate
    else fun v ->
      mutate v;
      let len =
        match fst key with
        | Version.Node -> Layout.node_size
        | Version.Rel -> Layout.rel_size
      in
      let off = record_off t key in
      let p = G.pool t.store in
      Pool.write_bytes p off (Pool.read_bytes p off len);
      Pool.persist p ~off ~len
  in
  Version.with_stripe t.chains key @@ fun () ->
  match Txn.find_write txn key with
  | Some (Txn.Update { dirty; _ }) -> mutate dirty
  | Some (Txn.Delete _) -> raise (abort_exn "update after delete")
  | Some Txn.Insert ->
      (* our own fresh insert: mutate the PMem record directly *)
      let v =
        {
          Version.image = read_image t key;
          props = read_pmem_props t key;
          deleted = false;
        }
      in
      mutate v;
      let wb () =
        match (v.Version.image, key) with
        | Version.N n, (Version.Node, id) -> G.write_node t.store id n
        | Version.R r, (Version.Rel, id) -> G.write_rel t.store id r
        | _ -> assert false
      in
      wb ();
      (match key with
      | Version.Node, id ->
          let first = Props.build (G.prop_store t.store) ~owner:(id + 1) v.Version.props in
          let old = G.node_field t.store id Layout.Node.first_prop in
          if old <> first then begin
            Props.free_chain (G.prop_store t.store) ~first:old;
            G.set_node_field t.store id Layout.Node.first_prop first
          end
      | Version.Rel, id ->
          let first = Props.build (G.prop_store t.store) ~owner:(id + 1) v.Version.props in
          let old = G.rel_field t.store id Layout.Rel.first_prop in
          if old <> first then begin
            Props.free_chain (G.prop_store t.store) ~first:old;
            G.set_rel_field t.store id Layout.Rel.first_prop first
          end)
  | None ->
      if not (is_live t key) then raise (abort_exn "update: no such object");
      let h_txn, h_bts, h_ets, h_rts = hdr t key in
      if h_txn <> 0 then raise (abort_exn "update: write-write conflict");
      if h_bts > Txn.id txn then
        raise (abort_exn "update: newer version already committed");
      if h_ets <> inf then raise (abort_exn "update: object deleted");
      if h_rts > Txn.id txn then
        raise (abort_exn "update: already read by newer transaction");
      (* plain store: an aligned word never tears, so at any crash cut
         the media word is whole-old (0: record untouched, nothing to
         undo) or whole-new (recovery's stale-lock scan clears it - the
         admission checks above guarantee bts < txn id, so it can never
         be misread as an uncommitted insert).  No write-back or fence
         is owed before the commit publishes the undo log. *)
      (let f_txn, _, _, _ = fields (fst key) in
       Pool.write_int (G.pool t.store) (record_off t key + f_txn) (Txn.id txn));
      let saved =
        {
          Version.image = read_image t key;
          props = read_pmem_props t key;
          deleted = false;
        }
      in
      Version.set_txn_id saved 0;
      let dirty = Version.copy saved in
      Version.set_txn_id dirty (Txn.id txn);
      Version.set_bts dirty (Txn.id txn);
      Version.set_ets dirty inf;
      mutate dirty;
      Version.set t.chains key (dirty :: saved :: Version.find t.chains key);
      Txn.add_write txn key (Txn.Update { dirty; saved })

let update t txn key mutate = with_dirty t txn key mutate

let delete t txn key =
  (match Txn.find_write txn key with
  | Some (Txn.Delete _) -> raise (abort_exn "delete: already deleted")
  | _ -> ());
  with_dirty t txn key (fun v -> v.Version.deleted <- true);
  (* promote an Update entry to Delete *)
  match Txn.find_write txn key with
  | Some (Txn.Update { dirty; saved }) ->
      dirty.Version.deleted <- true;
      Txn.replace_write txn key (Txn.Delete { dirty; saved })
  | Some Txn.Insert ->
      (* inserting then deleting in the same txn: treat as insert-abort *)
      raise (abort_exn "delete of same-txn insert not supported")
  | _ -> ()

(* Inserts write the record straight to the persistent table, locked until
   commit (Section 5.1: "If the transaction inserts a new object, this
   object is already stored in the persistent array, but still locked"). *)

let insert_node t txn ~label ~props =
  if not (Txn.is_active txn) then raise (abort_exn "txn not active");
  bump_stat t (fun s -> s.writes <- s.writes + 1);
  let n =
    {
      (Layout.empty_node ()) with
      label;
      txn_id = Txn.id txn;
      bts = Txn.id txn;
      ets = inf;
    }
  in
  let id = G.insert_node t.store n in
  (* the record is commit-locked and unreachable until our commit fence:
     defer slot persistence, the commit's coalesced data flush covers the
     chain (see [stage_member]) *)
  List.iter (fun (k, v) -> G.set_node_prop ~durable:false t.store id ~key:k v) props;
  Txn.add_write txn (Version.Node, id) Txn.Insert;
  id

let insert_rel t txn ~label ~src ~dst ~props =
  if not (Txn.is_active txn) then raise (abort_exn "txn not active");
  bump_stat t (fun s -> s.writes <- s.writes + 1);
  let r =
    {
      (Layout.empty_rel ()) with
      rlabel = label;
      src;
      dst;
      rtxn_id = Txn.id txn;
      rbts = Txn.id txn;
      rets = inf;
    }
  in
  (* serialise the adjacency-head splice against other writers of the
     endpoints (canonical stripe order avoids deadlock) *)
  let ka = (Version.Node, min src dst) and kb = (Version.Node, max src dst) in
  let lock2 f =
    Version.with_stripe t.chains ka (fun () ->
        if
          Version.stripe t.chains ka == Version.stripe t.chains kb
          || src = dst
        then f ()
        else Version.with_stripe t.chains kb f)
  in
  let id = lock2 (fun () -> G.insert_rel t.store r) in
  List.iter (fun (k, v) -> G.set_rel_prop ~durable:false t.store id ~key:k v) props;
  Txn.add_write txn (Version.Rel, id) Txn.Insert;
  id

(* --- Commit / abort (Section 5.1, "Commit") ------------------------------ *)

let defer t key ets =
  Mutex.lock t.deferred_mu;
  t.deferred := (key, ets) :: !(t.deferred);
  Mutex.unlock t.deferred_mu

(* Stage the pre-image of every existing batch of a property chain into
   the commit's undo log (pass 1 of the two-pass commit: the chain is
   walked read-only here and mutated only after {!Pmdk_tx.publish}). *)
let stage_prop_chain t tx ~first =
  let ps = G.prop_store t.store in
  let rec go link =
    match Layout.unlink link with
    | None -> ()
    | Some id ->
        let off = Storage.Table.record_off (Props.table ps) id in
        Pmdk_tx.stage_range tx ~off ~len:Layout.prop_size;
        go (Pool.read_int (G.pool t.store) (off + Layout.Prop.next))
  in
  go first

(* Flush-only registration of every batch of a property chain: deferred
   slot writes and freshly prepended batches ride the commit's merged,
   coalesced data flush instead of paying a persist each.  No pre-images
   are logged - a rollback restores the owning record's first_prop and
   the batches become unreachable. *)
let flush_prop_chain t tx ~first =
  let ps = G.prop_store t.store in
  let rec go link =
    match Layout.unlink link with
    | None -> ()
    | Some id ->
        let off = Storage.Table.record_off (Props.table ps) id in
        Pmdk_tx.flush_on_commit tx ~off ~len:Layout.prop_size;
        go (Pool.read_int (G.pool t.store) (off + Layout.Prop.next))
  in
  go first

(* Apply a dirty version's property map to the PMem chain as a diff:
   changed values update in place, removed keys clear their slot, new
   keys fill free slots or prepend a batch (DG5: in-place updates, no
   copy-on-write).  Old snapshot readers are unaffected - superseded
   versions in the DRAM chain carry materialised property copies.  The
   touched batches were snapshotted into the commit's undo log by
   [stage_prop_chain] before the log published, so a crash rolls the
   whole transaction back; the slot writes themselves are deferred and
   the final chain is folded into the commit's data flush, which
   precedes the invalidation fence. *)
let apply_prop_diff t tx ~owner ~first ~old_props ~new_props =
  let ps = G.prop_store t.store in
  let first' =
    List.fold_left
      (fun link (k, v) ->
        if List.assoc_opt k old_props = Some v then link
        else Props.set ~durable:false ps ~owner ~first:link ~key:k v)
      first new_props
  in
  List.iter
    (fun (k, _) ->
      if not (List.mem_assoc k new_props) then
        ignore (Props.remove ~durable:false ps ~first:first' ~key:k))
    old_props;
  flush_prop_chain t tx ~first:first';
  first'

(* Write a dirty version back into its PMem record.  Link fields
   (adjacency heads / next pointers) are taken from the current PMem
   record, not the version image: they may have been physically spliced
   by concurrent relationship inserts and are not versioned. *)
let install t tx key (dirty : Version.version) (saved : Version.version)
    commit_ts =
  let p = G.pool t.store in
  let off = record_off t key in
  match (dirty.Version.image, key) with
  | Version.N n, (Version.Node, id) ->
      let old_prop = Pool.read_int p (off + Layout.Node.first_prop) in
      let first_prop =
        apply_prop_diff t tx ~owner:(id + 1) ~first:old_prop
          ~old_props:saved.Version.props ~new_props:dirty.Version.props
      in
      let cur_out = Pool.read_int p (off + Layout.Node.first_out) in
      let cur_in = Pool.read_int p (off + Layout.Node.first_in) in
      G.write_node ~persist:false t.store id
        {
          n with
          first_out = cur_out;
          first_in = cur_in;
          first_prop;
          txn_id = 0;
          bts = commit_ts;
          ets = inf;
          rts = 0;
        }
  | Version.R r, (Version.Rel, id) ->
      let old_prop = Pool.read_int p (off + Layout.Rel.first_prop) in
      let first_prop =
        apply_prop_diff t tx ~owner:(id + 1) ~first:old_prop
          ~old_props:saved.Version.props ~new_props:dirty.Version.props
      in
      let cur_ns = Pool.read_int p (off + Layout.Rel.next_src) in
      let cur_nd = Pool.read_int p (off + Layout.Rel.next_dst) in
      G.write_rel ~persist:false t.store id
        {
          r with
          next_src = cur_ns;
          next_dst = cur_nd;
          rfirst_prop = first_prop;
          rtxn_id = 0;
          rbts = commit_ts;
          rets = inf;
          rrts = 0;
        }
  | _ -> assert false

let record_len = function
  | Version.Node, _ -> Layout.node_size
  | Version.Rel, _ -> Layout.rel_size

let gc t =
  let w = watermark t in
  (* physically reclaim deleted records no snapshot can reach any more
     (bitmap reuse, DG5) *)
  Mutex.lock t.deferred_mu;
  let ready, still = List.partition (fun (_, ets) -> ets < w) !(t.deferred) in
  t.deferred := still;
  Mutex.unlock t.deferred_mu;
  (* relationships are unlinked before any endpoint slot is reclaimed:
     unlinking walks the endpoints' adjacency chains *)
  let rels, nodes =
    List.partition (fun (key, _) -> fst key = Version.Rel) ready
  in
  List.iter
    (fun (key, _) ->
      Version.with_stripe t.chains key @@ fun () ->
      match key with
      | Version.Rel, id -> if G.rel_live t.store id then G.remove_rel t.store id
      | Version.Node, _ -> assert false)
    rels;
  List.iter
    (fun (key, _) ->
      Version.with_stripe t.chains key @@ fun () ->
      match key with
      | Version.Node, id -> if G.node_live t.store id then G.remove_node t.store id
      | Version.Rel, _ -> assert false)
    nodes;
  (* prune superseded committed versions no active transaction can see *)
  Version.iter_keys t.chains (fun key ->
      Version.with_stripe t.chains key @@ fun () ->
      let chain = Version.find t.chains key in
      let keep =
        List.filter
          (fun v ->
            Version.txn_id v <> 0 (* dirty: owner still active *)
            || Version.ets v >= w)
          chain
      in
      if List.length keep <> List.length chain then begin
        bump_stat t (fun s ->
            s.gc_pruned <- s.gc_pruned + List.length chain - List.length keep);
        Version.set t.chains key keep
      end)

(* --- Two-pass commit -----------------------------------------------------

   Pass 1 ([stage_member]) snapshots every range the transaction will
   mutate into the undo log's DRAM staging area: record headers, full
   records for updates/deletes, and the pre-images of existing property
   batches.  One {!Pmdk_tx.publish} then persists all of them with a
   single coalesced flush batch and a single fence.  Pass 2
   ([apply_member]) performs the actual mutations; {!Pmdk_tx.commit}
   persists them (merged intervals, one fence) and invalidates the log.

   Group commit rides on the same structure: the ring leader stages all
   queued members into ONE undo-log transaction, publishes once, applies
   every member, and the log invalidation linearises the whole batch -
   the members' effects become durable together, and each member's
   durability ack fires only after that shared epoch. *)

let stage_member t tx txn =
  List.iter
    (fun (key, wop) ->
      Version.with_stripe t.chains key @@ fun () ->
      (* stamp the chunk's checkpoint epoch before any commit-time
         record mutation (mark-before-mutate) *)
      (match key with
      | Version.Node, nid -> G.mark_node t.store nid
      | Version.Rel, rid -> G.mark_rel t.store rid);
      let off = record_off t key in
      match wop with
      | Txn.Insert ->
          (* the record header was persisted at insert; only the unlock
             word needs a snapshot.  The deferred property writes (plain
             slot stores, plain first_prop swing) ride the commit's data
             flush, which precedes the fence that makes the unlock
             durable. *)
          let f_txn, _, _, _ = fields (fst key) in
          Pmdk_tx.stage_range tx ~off:(off + f_txn) ~len:8;
          Pmdk_tx.flush_on_commit tx ~off ~len:(record_len key);
          let f_prop =
            match fst key with
            | Version.Node -> Layout.Node.first_prop
            | Version.Rel -> Layout.Rel.first_prop
          in
          flush_prop_chain t tx
            ~first:(Pool.read_int (G.pool t.store) (off + f_prop))
      | Txn.Update _ ->
          Pmdk_tx.stage_range tx ~off ~len:(record_len key);
          let f_prop =
            match fst key with
            | Version.Node -> Layout.Node.first_prop
            | Version.Rel -> Layout.Rel.first_prop
          in
          stage_prop_chain t tx
            ~first:(Pool.read_int (G.pool t.store) (off + f_prop))
      | Txn.Delete _ -> Pmdk_tx.stage_range tx ~off ~len:(record_len key))
    (List.rev (Txn.writes txn))

let apply_member t tx txn =
  let id = Txn.id txn in
  List.iter
    (fun (key, wop) ->
      Version.with_stripe t.chains key @@ fun () ->
      let off = record_off t key in
      match wop with
      | Txn.Insert ->
          (* just unlock: the record was persisted at insert *)
          let f_txn, _, _, _ = fields (fst key) in
          Pool.write_int (G.pool t.store) (off + f_txn) 0
      | Txn.Update { dirty; saved } ->
          install t tx key dirty saved id;
          Version.set_ets saved id;
          (* drop the dirty entry: the PMem record now carries it *)
          let chain = Version.find t.chains key in
          Version.set t.chains key (List.filter (fun v -> v != dirty) chain)
      | Txn.Delete { dirty; saved } ->
          let f_txn, _, f_ets, _ = fields (fst key) in
          Pool.write_int (G.pool t.store) (off + f_ets) id;
          Pool.write_int (G.pool t.store) (off + f_txn) 0;
          Version.set_ets saved id;
          let chain = Version.find t.chains key in
          Version.set t.chains key (List.filter (fun v -> v != dirty) chain);
          defer t key id)
    (List.rev (Txn.writes txn))

let finalize_commit t txn =
  txn.Txn.status <- Txn.Committed;
  unregister t txn;
  bump_stat t (fun s -> s.commits <- s.commits + 1)

(* Commit one transaction in its own undo-log transaction. *)
let commit_one t txn =
  Pmdk_tx.run (G.pool t.store) (fun tx ->
      stage_member t tx txn;
      Pmdk_tx.publish tx;
      apply_member t tx txn);
  finalize_commit t txn

(* Leader: commit a whole batch under one undo-log transaction.  Never
   raises - outcomes land in each member's [cr_error] so the ring cannot
   lose its leader; each caller re-raises its own at its own call site. *)
let commit_batch t reqs =
  match
    Pmdk_tx.run (G.pool t.store) (fun tx ->
        List.iter (fun r -> stage_member t tx r.cr_txn) reqs;
        Pmdk_tx.publish tx;
        List.iter (fun r -> apply_member t tx r.cr_txn) reqs)
  with
  | () ->
      Obs.Histogram.observe t.gcommit_hist (List.length reqs);
      List.iter (fun r -> finalize_commit t r.cr_txn) reqs
  | exception Pmdk_tx.Log_full when List.length reqs > 1 ->
      (* the batch outgrew the log while staging (nothing was mutated and
         the log transaction aborted clean): retry one at a time *)
      List.iter
        (fun r ->
          match commit_one t r.cr_txn with
          | () -> ()
          | exception e -> r.cr_error <- Some e)
        reqs
  | exception e -> List.iter (fun r -> r.cr_error <- Some e) reqs

let commit t txn =
  if not (Txn.is_active txn) then raise (abort_exn "txn not active");
  if Txn.writes txn = [] then begin
    txn.Txn.status <- Txn.Committed;
    unregister t txn;
    bump_stat t (fun s -> s.commits <- s.commits + 1)
  end
  else if not t.group_commit then commit_one t txn
  else begin
    let req = { cr_txn = txn; cr_done = false; cr_error = None } in
    Mutex.lock t.gcommit_mu;
    t.gcommit_queue <- req :: t.gcommit_queue;
    if t.gcommit_leader then
      (* a leader is persisting; wait for our durability ack *)
      while not req.cr_done do
        Condition.wait t.gcommit_cv t.gcommit_mu
      done
    else begin
      t.gcommit_leader <- true;
      let rec drain () =
        match t.gcommit_queue with
        | [] -> t.gcommit_leader <- false
        | q ->
            t.gcommit_queue <- [];
            Mutex.unlock t.gcommit_mu;
            let reqs = List.rev q in
            commit_batch t reqs;
            Mutex.lock t.gcommit_mu;
            List.iter (fun r -> r.cr_done <- true) reqs;
            Condition.broadcast t.gcommit_cv;
            drain ()
      in
      drain ()
    end;
    Mutex.unlock t.gcommit_mu;
    match req.cr_error with Some e -> raise e | None -> ()
  end;
  gc t

(* Deterministic group commit: persist several prepared transactions as
   ONE batch sharing a single undo-log publish fence and a single log
   invalidation - exactly the batch the concurrent commit ring forms
   when writers collide, minus the scheduling nondeterminism.  The crash
   sweeps use it to place power cuts inside a multi-member fence
   epoch. *)
let commit_group t txns =
  List.iter
    (fun txn ->
      if not (Txn.is_active txn) then raise (abort_exn "txn not active"))
    txns;
  let writers, readers = List.partition (fun txn -> Txn.writes txn <> []) txns in
  List.iter (fun txn -> finalize_commit t txn) readers;
  (match writers with
  | [] -> ()
  | writers ->
      let reqs =
        List.map (fun txn -> { cr_txn = txn; cr_done = false; cr_error = None }) writers
      in
      commit_batch t reqs;
      List.iter
        (fun r -> match r.cr_error with Some e -> raise e | None -> ())
        reqs);
  gc t

let abort t txn =
  if not (Txn.is_active txn) then raise (abort_exn "txn not active");
  List.iter
    (fun (key, wop) ->
      Version.with_stripe t.chains key @@ fun () ->
      match wop with
      | Txn.Insert -> (
          match key with
          | Version.Node, id -> if G.node_live t.store id then G.remove_node t.store id
          | Version.Rel, id -> if G.rel_live t.store id then G.remove_rel t.store id)
      | Txn.Update { dirty; saved } | Txn.Delete { dirty; saved } ->
          let chain = Version.find t.chains key in
          Version.set t.chains key
            (List.filter (fun v -> v != dirty && v != saved) chain);
          set_lock t key 0)
    (Txn.writes txn);
  txn.Txn.status <- Txn.Aborted;
  unregister t txn;
  bump_stat t (fun s -> s.aborts <- s.aborts + 1);
  gc t

(* Abort classification for retry policies.  Timestamp-ordering conflicts
   are transient - the same logic re-run under a fresh (higher) timestamp
   can succeed - while aborts about objects that no longer exist, dead
   transactions or unsupported operations will fail identically forever.
   Unknown (caller-raised) reasons default to transient, preserving the
   old retry-everything behaviour for user aborts. *)

type abort_class = Transient | Fatal

let fatal_markers =
  [
    "no such object"; "not active"; "after delete"; "already deleted";
    "object deleted"; "not supported";
  ]

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let classify_abort reason =
  if List.exists (fun m -> contains ~sub:m reason) fatal_markers then Fatal
  else Transient

(* Abort taxonomy for the metrics registry: reader-vs-active-writer lock
   conflicts are [transient] (blocked, not invalidated), timestamp /
   write-write validation failures are [validation], vanished-object and
   unsupported-operation aborts are [fatal], and any non-[Abort]
   exception unwinding a transaction is [user]. *)
let abort_taxonomy = function
  | Abort reason ->
      if contains ~sub:"locked by active writer" reason then "transient"
      else if classify_abort reason = Fatal then "fatal"
      else "validation"
  | _ -> "user"

let note_abort_class t e =
  let registry = Media.registry (Pool.media (G.pool t.store)) in
  Obs.Metrics.incr
    (Obs.Metrics.counter registry "mvto_txn_aborts_total"
       ~labels:[ ("class", abort_taxonomy e) ]
       ~help:"aborts by taxonomy: validation|transient|fatal|user")

(* Run [f] in a transaction; abort on exception.  [Abort] is re-raised so
   callers can implement retry policies. *)
let with_txn t f =
  let tracer = Media.tracer (Pool.media (G.pool t.store)) in
  Obs.Trace.with_span tracer "txn" @@ fun () ->
  let txn = begin_txn t in
  match f txn with
  | v ->
      commit t txn;
      v
  | exception e ->
      if Txn.is_active txn then abort t txn;
      note_abort_class t e;
      raise e

(* Retry a transactional computation on transient [Abort]s, with a bound
   and capped exponential backoff.  The backoff is charged to the media
   clock (with deterministic jitter) so contention shows up in simulated
   time just like device latency does; fatal aborts re-raise
   immediately. *)
let with_txn_retry ?(max_retries = 16) ?(backoff_ns = 500) ?rng t f =
  let rng =
    match rng with Some r -> r | None -> Random.State.make [| 0xB4C0FF |]
  in
  let media = Pool.media (G.pool t.store) in
  let rec go n =
    match with_txn t f with
    | v -> v
    | exception Abort reason
      when n < max_retries && classify_abort reason = Transient ->
        bump_stat t (fun s -> s.retries <- s.retries + 1);
        Media.note_retry media;
        if backoff_ns > 0 then begin
          let cap = backoff_ns * (1 lsl min n 10) in
          Media.charge media ((cap / 2) + Random.State.int rng (max 1 (cap / 2)))
        end;
        go (n + 1)
  in
  go 0

(* --- Recovery -------------------------------------------------------------

   After a crash the PMDK undo log has already been rolled back by
   [Graph_store.open_], so every record is either its last committed
   version or a published-but-uncommitted insert.  What remains:

   - stale write locks: txn_id <> 0 with bts <> txn_id marks an update
     lock whose owner died before entering its commit transaction; the
     record content is the old committed version, so the lock is simply
     cleared;
   - uncommitted inserts: txn_id <> 0 with bts = txn_id; the record never
     became visible, so its slot is reclaimed (relationships are unlinked
     from the adjacency lists first);
   - the timestamp oracle restarts above every timestamp in the store. *)

(* The scan half is decomposed per chunk so a recovery orchestrator can
   fan the header reads out over task-pool domains: each chunk scan is a
   pure read (one line-granular header touch per record) producing
   ascending id lists, scans of distinct chunks commute under
   [merge_scans] as long as they are merged in chunk order, and
   [apply_scan] performs all mutations serially afterwards. *)

type recovery_scan = {
  sc_max_ts : int;
  sc_stale_nodes : int list; (* stale write locks to clear, ascending *)
  sc_stale_rels : int list;
  sc_dead_nodes : int list; (* uncommitted inserts to reclaim, ascending *)
  sc_dead_rels : int list;
  sc_scanned : int;
}

let empty_scan =
  {
    sc_max_ts = 0;
    sc_stale_nodes = [];
    sc_stale_rels = [];
    sc_dead_nodes = [];
    sc_dead_rels = [];
    sc_scanned = 0;
  }

let scan_chunk ~kind ~iter ~off_of store ci =
  let p = G.pool store in
  let f_txn, f_bts, f_ets, f_rts = fields kind in
  let max_ts = ref 0 and stale = ref [] and dead = ref [] and n = ref 0 in
  iter store ci (fun id ->
      incr n;
      let off = off_of store id in
      (* the four header words share one cache line (see [hdr]) *)
      Pool.touch_read p ~off:(off + f_txn) ~len:(f_rts - f_txn + 8);
      let txn_id = Pool.raw_read_int p (off + f_txn) in
      let bts = Pool.raw_read_int p (off + f_bts) in
      let ets = Pool.raw_read_int p (off + f_ets) in
      let rts = Pool.raw_read_int p (off + f_rts) in
      max_ts := max !max_ts bts;
      max_ts := max !max_ts rts;
      if ets <> inf then max_ts := max !max_ts ets;
      if txn_id <> 0 then begin
        max_ts := max !max_ts txn_id;
        if bts = txn_id then dead := id :: !dead else stale := id :: !stale
      end);
  (!max_ts, List.rev !stale, List.rev !dead, !n)

let scan_node_chunk store ci =
  let max_ts, stale, dead, n =
    scan_chunk ~kind:Version.Node ~iter:G.iter_nodes_chunk ~off_of:G.node_off
      store ci
  in
  {
    empty_scan with
    sc_max_ts = max_ts;
    sc_stale_nodes = stale;
    sc_dead_nodes = dead;
    sc_scanned = n;
  }

let scan_rel_chunk store ci =
  let max_ts, stale, dead, n =
    scan_chunk ~kind:Version.Rel ~iter:G.iter_rels_chunk ~off_of:G.rel_off
      store ci
  in
  {
    empty_scan with
    sc_max_ts = max_ts;
    sc_stale_rels = stale;
    sc_dead_rels = dead;
    sc_scanned = n;
  }

let merge_scans a b =
  {
    sc_max_ts = max a.sc_max_ts b.sc_max_ts;
    sc_stale_nodes = a.sc_stale_nodes @ b.sc_stale_nodes;
    sc_stale_rels = a.sc_stale_rels @ b.sc_stale_rels;
    sc_dead_nodes = a.sc_dead_nodes @ b.sc_dead_nodes;
    sc_dead_rels = a.sc_dead_rels @ b.sc_dead_rels;
    sc_scanned = a.sc_scanned + b.sc_scanned;
  }

(* Serial mutation half: clear stale locks, reclaim uncommitted inserts
   (relationships before nodes, so adjacency unlinking sees live
   endpoints), restart the timestamp oracle above everything seen. *)
let apply_scan store sc =
  let t = create store in
  List.iter (fun id -> set_lock t (Version.Node, id) 0) sc.sc_stale_nodes;
  List.iter (fun id -> set_lock t (Version.Rel, id) 0) sc.sc_stale_rels;
  List.iter (fun id -> G.remove_rel store id) sc.sc_dead_rels;
  List.iter (fun id -> G.remove_node store id) sc.sc_dead_nodes;
  Atomic.set t.next_ts (sc.sc_max_ts + 1);
  Log.info (fun m ->
      m "recovery: %d uncommitted inserts reclaimed (%d nodes, %d rels), next ts %d"
        (List.length sc.sc_dead_nodes + List.length sc.sc_dead_rels)
        (List.length sc.sc_dead_nodes)
        (List.length sc.sc_dead_rels)
        (sc.sc_max_ts + 1));
  t

let recover store =
  let sc = ref empty_scan in
  for ci = 0 to G.node_chunks store - 1 do
    sc := merge_scans !sc (scan_node_chunk store ci)
  done;
  for ci = 0 to G.rel_chunks store - 1 do
    sc := merge_scans !sc (scan_rel_chunk store ci)
  done;
  apply_scan store !sc

let next_ts t = Atomic.get t.next_ts

(* --- Scans ---------------------------------------------------------------- *)

let scan_nodes t txn f =
  G.iter_nodes t.store (fun id ->
      if visible t txn (Version.Node, id) then f id)

let scan_nodes_chunk t txn ci f =
  G.iter_nodes_chunk t.store ci (fun id ->
      if visible t txn (Version.Node, id) then f id)

let scan_rels t txn f =
  G.iter_rels t.store (fun id -> if visible t txn (Version.Rel, id) then f id)
