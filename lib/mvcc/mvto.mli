(** Timestamp-ordering multi-version concurrency control optimised for
    PMem (Section 5).

    The PMem record always holds the most recent committed version and
    doubles as the write lock; dirty versions live in DRAM chains
    (DG1/DG2); commit persists in place under a PMDK-style undo-log
    transaction (DG4); garbage collection runs at transaction granularity
    with bitmap slot reuse (DG5).

    Visibility: transaction T reads version o iff
    [bts(o) <= id(T) < ets(o)] and o is not locked by another active
    transaction (otherwise T aborts); reads bump rts; a write requires
    the latest version unlocked with [rts <= id(T)] and [bts <= id(T)]. *)

exception Abort of string

type stats = {
  mutable commits : int;
  mutable aborts : int;
  mutable reads : int;
  mutable writes : int;
  mutable gc_pruned : int;
  mutable retries : int;
      (** transient aborts absorbed by {!with_txn_retry} *)
}

type t

val create : Storage.Graph_store.t -> t
val recover : Storage.Graph_store.t -> t
(** Reattach after a crash: clears stale write locks, reclaims
    published-but-uncommitted inserts, restarts the timestamp oracle
    above every timestamp in the store.  (The PMDK undo log has already
    been rolled back by [Graph_store.open_].) *)

(** {1 Staged recovery}

    {!recover} decomposed so a recovery orchestrator can fan the header
    scans out over task-pool domains: chunk scans are pure reads
    producing ascending id lists; merge them in chunk order and hand the
    result to the serial {!apply_scan}. *)

type recovery_scan = {
  sc_max_ts : int;
  sc_stale_nodes : int list;  (** stale write locks to clear, ascending *)
  sc_stale_rels : int list;
  sc_dead_nodes : int list;  (** uncommitted inserts to reclaim, ascending *)
  sc_dead_rels : int list;
  sc_scanned : int;  (** records examined *)
}

val empty_scan : recovery_scan
val scan_node_chunk : Storage.Graph_store.t -> int -> recovery_scan
val scan_rel_chunk : Storage.Graph_store.t -> int -> recovery_scan
(** One charged line-granular header read per live record; no writes. *)

val merge_scans : recovery_scan -> recovery_scan -> recovery_scan
val apply_scan : Storage.Graph_store.t -> recovery_scan -> t
(** Serial mutation half of {!recover}: clear stale locks, reclaim dead
    inserts (rels before nodes), restart the timestamp oracle. *)

val next_ts : t -> int
(** Current timestamp-oracle value (recovery equivalence checks). *)

val store : t -> Storage.Graph_store.t
val stats : t -> stats
val chains : t -> Version.chains
val set_write_through : t -> bool -> unit
(** DG1/DG2 ablation: persist dirty versions to PMem on every modification
    (the "pure PMem" version storage the paper rejects) instead of once at
    commit. *)

val set_durable_rts : t -> bool -> unit
(** Ablation of Section 5.1's design discussion: flush+fence every rts
    bump instead of leaving the line to opportunistic write-back. *)

val set_group_commit : t -> bool -> unit
(** Default on: concurrently committing transactions enqueue on a commit
    ring and share one undo-log publish fence and one log invalidation
    per batch, with per-transaction durability acks
    ([group_commit_batch_size] histogram).  Off commits each transaction
    in its own undo-log transaction (the pre-batching discipline). *)

val watermark : t -> int
(** Oldest active transaction id ([max_int] when none). *)

val active_count : t -> int

(** {1 Transactions} *)

val begin_txn : t -> Txn.t
val commit : t -> Txn.t -> unit

val commit_group : t -> Txn.t list -> unit
(** Commit several prepared transactions as one group-commit batch
    sharing a single undo-log publish fence and a single log
    invalidation - the deterministic equivalent of the concurrent ring
    forming a batch.  All-or-nothing on a crash: the members share one
    undo log, so recovery either rolls the whole batch back or none of
    it.  Raises the first member's commit error, if any. *)

val abort : t -> Txn.t -> unit
val with_txn : t -> (Txn.t -> 'a) -> 'a
(** Commit on return, abort on exception (re-raised). *)

(** Abort classification for retry policies: timestamp-ordering conflicts
    are [Transient] (a re-run under a fresh timestamp can succeed); aborts
    about vanished objects, dead transactions or unsupported operations
    are [Fatal] and retried never.  Unknown reasons default to
    [Transient]. *)
type abort_class = Transient | Fatal

val classify_abort : string -> abort_class

val abort_taxonomy : exn -> string
(** Metrics label for an exception that unwound a transaction:
    ["validation"] (timestamp/write-write conflicts), ["transient"]
    (reader blocked by an active writer's lock), ["fatal"]
    (vanished objects, unsupported operations) or ["user"] (any
    non-{!Abort} exception). *)

val note_abort_class : t -> exn -> unit
(** Count one abort under its {!abort_taxonomy} class in the media's
    metrics registry ([mvto_txn_aborts_total{class=...}]).  Called by
    {!with_txn} and by outer transaction wrappers that manage their own
    begin/commit/abort sequence (e.g. [Core.with_txn]). *)

val with_txn_retry :
  ?max_retries:int -> ?backoff_ns:int -> ?rng:Random.State.t ->
  t -> (Txn.t -> 'a) -> 'a
(** Like {!with_txn}, retrying transient {!Abort}s up to [max_retries]
    times with capped exponential backoff charged to the media clock
    ([backoff_ns] base, deterministic jitter from [rng]).  Fatal aborts
    and exhaustion re-raise. *)

val gc : t -> unit
(** Transaction-level garbage collection: prune superseded versions below
    the watermark and physically reclaim deleted record slots. *)

(** {1 Views} *)

type view

val view_id : view -> int
val view_node : view -> Storage.Layout.node
val view_rel : view -> Storage.Layout.rel
val view_prop : view -> int -> Storage.Value.t option

(** {1 Reads} *)

val read : t -> Txn.t -> Version.key -> view option
(** Snapshot read; [None] when the object is invisible to the
    transaction. @raise Abort on a lock conflict. *)

val read_node : t -> Txn.t -> int -> view option
val read_rel : t -> Txn.t -> int -> view option
val visible : t -> Txn.t -> Version.key -> bool
(** Header-only visibility test (scan fast path); same protocol
    semantics as {!read} including the rts bump and lock abort. *)

val read_prop : t -> Txn.t -> Version.key -> int -> Storage.Value.t option
(** Lean single-property read used by generated (JIT) code: same
    protocol, no view materialisation. *)

(** {1 Writes} *)

val update : t -> Txn.t -> Version.key -> (Version.version -> unit) -> unit
(** Create (or find) the transaction's dirty version of the object and
    apply the mutation in DRAM. @raise Abort on conflicts. *)

val delete : t -> Txn.t -> Version.key -> unit
val insert_node :
  t -> Txn.t -> label:int -> props:(int * Storage.Value.t) list -> int
(** Insert directly into the persistent table, locked until commit. *)

val insert_rel :
  t ->
  Txn.t ->
  label:int ->
  src:int ->
  dst:int ->
  props:(int * Storage.Value.t) list ->
  int

(** {1 Scans} *)

val scan_nodes : t -> Txn.t -> (int -> unit) -> unit
val scan_nodes_chunk : t -> Txn.t -> int -> (int -> unit) -> unit
val scan_rels : t -> Txn.t -> (int -> unit) -> unit
