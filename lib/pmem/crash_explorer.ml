(* Exhaustive crash-schedule exploration.

   The crash-storm tests sample random crash points; an ordering bug
   between a store, its clwb and the following sfence can hide from
   sampling indefinitely.  This module turns crash safety into an
   enumerated property, in the style of pmreorder:

   1. [record] runs a workload once with a hook on the media and captures
      the persist trace - the ordered stream of PMem stores, clwb
      write-backs and sfences;
   2. [explore] replays the workload from scratch once per crash
      schedule: a power cut at *every* fence boundary of the trace
      (plus, optionally, at flush boundaries between fences, and
      randomized eviction/torn-line variants of each cut), each followed
      by the target's recovery procedure and invariant oracle.

   Determinism is what makes the enumeration sound: the workload must be
   a deterministic function of the fresh target, so that fence #k of the
   replay is fence #k of the trace. *)

let log_src = Logs.Src.create "poseidon.crash_explorer" ~doc:"crash-schedule explorer"

module Log = (val Logs.src_log log_src : Logs.LOG)

type event = Store of { off : int; len : int } | Flush of { off : int } | Fence

let pp_event ppf = function
  | Store { off; len } -> Fmt.pf ppf "store[%d,+%d]" off len
  | Flush { off } -> Fmt.pf ppf "clwb[%d]" off
  | Fence -> Fmt.string ppf "sfence"

type trace = event array

let record media f =
  let acc = ref [] in
  Media.set_hook media
    (Some
       (function
       | Media.Ev_store { off; len } -> acc := Store { off; len } :: !acc
       | Media.Ev_flush { off } -> acc := Flush { off } :: !acc
       | Media.Ev_fence -> acc := Fence :: !acc
       | Media.Ev_alloc | Media.Ev_ssd_read | Media.Ev_ssd_write -> ()));
  Fun.protect ~finally:(fun () -> Media.set_hook media None) f;
  Array.of_list (List.rev !acc)

let count p trace = Array.fold_left (fun n e -> if p e then n + 1 else n) 0 trace
let fences trace = count (function Fence -> true | _ -> false) trace
let flushes trace = count (function Flush _ -> true | _ -> false) trace
let stores trace = count (function Store _ -> true | _ -> false) trace

let pp_trace ppf trace =
  Fmt.pf ppf "@[<v>%a@]" (Fmt.iter ~sep:Fmt.cut Array.iter pp_event) trace

type 'db target = {
  fresh : unit -> 'db;  (* a new, deterministic workload instance *)
  pool : 'db -> Pool.t;
  run : 'db -> unit;  (* the workload; interrupted by Crash_point *)
  recover : 'db -> 'db;
  check : 'db -> unit;  (* invariant oracle; must raise on violation *)
}

type report = {
  trace_stores : int;
  trace_flushes : int;
  trace_fences : int;
  fence_schedules : int;  (* crash points at fence boundaries *)
  flush_schedules : int;  (* crash points at flush boundaries *)
  variant_schedules : int;  (* randomized eviction / torn-line variants *)
  schedules : int;  (* total schedules explored (incl. clean run) *)
  crashes_triggered : int;
}

(* Run one crash schedule end to end: fresh instance, armed plan,
   workload until the crash point fires (or completes), reboot, recovery,
   oracle.  Returns whether the plan actually fired. *)
let run_schedule target plan =
  let db = target.fresh () in
  let pool = target.pool db in
  let media = Pool.media pool in
  Faults.install ~pool media plan;
  let crashed =
    Fun.protect ~finally:(fun () -> Faults.uninstall media) @@ fun () ->
    match target.run db with
    | () -> false
    | exception Faults.Crash_point _ -> true
  in
  Pool.crash pool;
  let db = target.recover db in
  target.check db;
  crashed

let explore ?(evict_variants = 0) ?(flush_stride = 0) ?(seed = 0x90B0) target
    =
  (* 1. persist trace of the unharmed workload, plus an oracle sanity run *)
  let db0 = target.fresh () in
  let media0 = Pool.media (target.pool db0) in
  let trace = record media0 (fun () -> target.run db0) in
  target.check db0;
  let nfence = fences trace and nflush = flushes trace in
  Log.info (fun m ->
      m "trace: %d stores, %d flushes, %d fences" (stores trace) nflush nfence);
  let crashes = ref 0 and schedules = ref 1 in
  let fence_schedules = ref 0
  and flush_schedules = ref 0
  and variant_schedules = ref 0 in
  let sched bucket plan =
    if run_schedule target plan then incr crashes;
    incr bucket;
    incr schedules
  in
  (* 2. a power cut at every fence boundary: all lines flushed before
     fence #k are durable, everything after is lost *)
  for k = 1 to nfence do
    sched fence_schedules (Faults.plan ~crash_at:(`Fence, k) ());
    (* 2b. same cut, but random subsets of the still-dirty lines persist
       anyway (cache eviction) or tear at 8-byte granularity *)
    for v = 1 to evict_variants do
      sched variant_schedules
        (Faults.plan ~crash_at:(`Fence, k) ~evict_prob:0.5 ~torn_prob:0.25
           ~seed:(seed + (k * 8191) + v)
           ())
    done
  done;
  (* 3. optional finer schedule: cuts between fences, at every
     [flush_stride]-th clwb *)
  if flush_stride > 0 then begin
    let j = ref flush_stride in
    while !j <= nflush do
      sched flush_schedules (Faults.plan ~crash_at:(`Flush, !j) ());
      j := !j + flush_stride
    done
  end;
  Log.info (fun m ->
      m "explored %d schedules (%d fence, %d flush, %d variants), %d crashes"
        !schedules !fence_schedules !flush_schedules !variant_schedules
        !crashes);
  {
    trace_stores = stores trace;
    trace_flushes = nflush;
    trace_fences = nfence;
    fence_schedules = !fence_schedules;
    flush_schedules = !flush_schedules;
    variant_schedules = !variant_schedules;
    schedules = !schedules;
    crashes_triggered = !crashes;
  }
