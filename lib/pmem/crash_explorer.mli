(** Exhaustive crash-schedule exploration (pmreorder-style).

    {!record} captures a workload's {e persist trace} - the ordered
    stream of PMem stores, [clwb] write-backs and [sfence]s - and
    {!explore} then replays the workload once per crash schedule: a
    power cut at every fence boundary of the trace (optionally also at
    flush boundaries and with randomized eviction/torn-line variants),
    each followed by recovery and an invariant oracle.

    The workload must be deterministic so that the n-th fence of a
    replay coincides with the n-th fence of the trace. *)

type event = Store of { off : int; len : int } | Flush of { off : int } | Fence

type trace = event array

val record : Media.t -> (unit -> unit) -> trace
(** Run the thunk with a trace-collecting hook on the media (replacing
    any installed hook, removed afterwards). *)

val fences : trace -> int
val flushes : trace -> int
val stores : trace -> int
val pp_event : Format.formatter -> event -> unit
val pp_trace : Format.formatter -> trace -> unit

(** A crash-exploration target: how to build, drive, recover and check
    one workload instance.  ['db] is the engine handle (e.g. [Core.t]);
    keeping it abstract lets the explorer live below every layer it
    tests. *)
type 'db target = {
  fresh : unit -> 'db;
  pool : 'db -> Pool.t;
  run : 'db -> unit;
  recover : 'db -> 'db;
  check : 'db -> unit;
}

type report = {
  trace_stores : int;
  trace_flushes : int;
  trace_fences : int;
  fence_schedules : int;
  flush_schedules : int;
  variant_schedules : int;
  schedules : int;
  crashes_triggered : int;
}

val run_schedule : 'db target -> Faults.t -> bool
(** Run one schedule end to end (fresh → armed plan → workload →
    reboot → recovery → oracle); returns whether the plan fired. *)

val explore :
  ?evict_variants:int -> ?flush_stride:int -> ?seed:int -> 'db target -> report
(** Enumerate crash schedules: one clean run (trace + oracle sanity), a
    cut at each of the trace's fence boundaries, [evict_variants]
    randomized eviction/torn-line variants per fence, and - when
    [flush_stride > 0] - a cut at every [flush_stride]-th [clwb].
    Raises whatever the oracle raises on the first violated schedule. *)
