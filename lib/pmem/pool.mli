(** Simulated persistent-memory pool.

    A pool exposes byte-addressable load/store with explicit persistence
    primitives ([clwb], [sfence]) and crash injection.  Stores land in a
    volatile working view; only flushed cache lines reach the durable image
    that survives {!crash}.  All accesses are charged to the pool's
    {!Media.t}.  Pools of kind [`Dram] run the identical code path with the
    two images aliased (flushes free), providing the paper's pure in-memory
    baseline. *)

type kind = [ `Pmem | `Dram ]
type t

exception Out_of_bounds of { pool : int; off : int; len : int }

val create : ?kind:kind -> media:Media.t -> id:int -> size:int -> unit -> t
val id : t -> int
val size : t -> int
val kind : t -> kind
val media : t -> Media.t
val device : t -> Media.device
val alloc_mutex : t -> Mutex.t
(** Mutex serialising allocator metadata updates (used by {!Alloc}). *)

val tx_mutex : t -> Mutex.t
(** Mutex serialising PMDK-style transactions (used by {!Pmdk_tx}). *)

val crashes : t -> int

(** {1 Charged loads} *)

val read_u8 : t -> int -> int
val read_u32 : t -> int -> int
val read_i64 : t -> int -> int64
val read_int : t -> int -> int
val read_bytes : t -> int -> int -> Bytes.t
val read_string : t -> int -> int -> string
val blit_out : t -> off:int -> dst:Bytes.t -> dst_off:int -> len:int -> unit

(** {1 Charged stores (volatile until flushed)} *)

val write_u8 : t -> int -> int -> unit
val write_u32 : t -> int -> int -> unit
val write_i64 : t -> int -> int64 -> unit
val write_int : t -> int -> int -> unit
val write_bytes : t -> int -> Bytes.t -> unit
val write_string : t -> int -> string -> unit
val fill : t -> off:int -> len:int -> char -> unit

(** {1 Persistence primitives} *)

val clwb : t -> int -> unit
(** Write back the (dirty) cache line containing the offset. *)

val sfence : t -> unit
val flush_range : t -> off:int -> len:int -> unit
val persist : t -> off:int -> len:int -> unit
(** [flush_range] followed by [sfence]. *)

val atomic_write_i64 : t -> int -> int64 -> unit
(** Failure-atomic aligned 8-byte store: store + [clwb] + [sfence] (DG4).
    @raise Invalid_argument if the offset is not 8-byte aligned. *)

val atomic_write_int : t -> int -> int -> unit

(** {1 Crash injection} *)

val crash : ?evict_prob:float -> ?rng:Random.State.t -> t -> unit
(** Discard all unflushed stores and revert to the durable image.  With
    [evict_prob > 0] each dirty line is first persisted with that
    probability, modelling spontaneous cache eviction: correct recovery code
    must tolerate both outcomes (C4).  On a {!freeze}-frozen pool the
    power-cut already happened: [crash] only restores and unfreezes. *)

val freeze :
  ?evict_prob:float -> ?torn_prob:float -> ?rng:Random.State.t -> t -> unit
(** Cut power {e at this instant}: still-dirty lines are spontaneously
    evicted whole with [evict_prob] or torn at 8-byte granularity with
    [torn_prob], and every subsequent [clwb]/[sfence] is ignored, so code
    unwinding from an injected crash point cannot persist anything more.
    Finish the reboot with {!crash}.  Used by {!Faults}. *)

val frozen : t -> bool
val torn_lines : t -> int
(** Lines partially persisted by torn-write injection so far. *)

val dirty_line_count : t -> int
val durable_i64 : t -> int -> int64
(** Uncharged peek at the durable image (tests only). *)

(** {1 Uncharged loads}

    For callers that model their own access granularity: charge once per
    node/block with {!touch_read}, then pick fields out of the fetched block
    with the raw loads. *)

val raw_read_i64 : t -> int -> int64
val raw_read_int : t -> int -> int
val touch_read : t -> off:int -> len:int -> unit
