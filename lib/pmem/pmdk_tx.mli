(** PMDK-style failure-atomic transactions via undo logging (DG4).

    Snapshot ranges with {!add_range} before modifying them; {!commit}
    persists every snapshotted range and invalidates the log with a single
    atomic store.  After a crash, {!recover} rolls back any active log.
    One transaction per pool at a time (serialised on the pool's tx
    mutex).

    Batching callers use the two-step form: {!stage_range} captures
    pre-images in DRAM (deduplicating ranges already snapshotted this
    transaction) and {!publish} makes every staged snapshot durable with
    one coalesced flush batch and one fence - the per-commit persist cost
    is then independent of the number of snapshotted ranges. *)

type t

exception Log_full
exception Not_active

val begin_ : Pool.t -> t
(** Open a transaction.  Persistence-free: every exit path leaves the
    durable log idle, so there is nothing to clear. *)

val add_range : t -> off:int -> len:int -> unit
(** Snapshot the current contents of the range; must precede modification.
    Durable on return ({!stage_range} + {!publish}).
    @raise Log_full when the undo log region overflows. *)

val stage_range : t -> off:int -> len:int -> unit
(** Snapshot the range into DRAM only; not durable (and the range must
    not be modified) until the next {!publish}.  Portions already
    snapshotted this transaction are skipped.
    @raise Log_full when the undo log region would overflow. *)

val publish : t -> unit
(** Persist every staged snapshot: contiguous log writes, one coalesced
    256 B-aligned flush batch, one fence, then the entry-count bump
    (entry bytes strictly before the count). *)

val flush_on_commit : t -> off:int -> len:int -> unit
(** Include the range in {!commit}'s merged, coalesced data flush
    without snapshotting it.  For freshly written structures that must
    be durable before the commit point but need no undo (a rollback
    unlinks them): new property batches, insert-locked records. *)

val commit : t -> unit
val abort : t -> unit
(** Roll the snapshotted ranges back immediately. *)

val recover : Pool.t -> bool
(** Roll back an interrupted transaction, if any; [true] when applied.
    The on-media entry count and entry lengths are validated against the
    log region and pool bounds: a torn or fault-corrupted count word
    clamps to the valid prefix instead of driving reads out of bounds. *)

val run : Pool.t -> (t -> 'a) -> 'a
(** [run pool f] wraps [f] in a transaction, aborting on exception. *)

(** {1 Log geometry (tests)} *)

val state_off : int
val nentries_off : int
val entries_off : int
