(* A simulated persistent-memory pool.

   The pool keeps two byte images:

   - [working]: what the CPU sees (stores land here immediately, like stores
     hitting the cache hierarchy);
   - [durable]: what survives a crash (stores reach it only via [clwb]).

   A bitmap tracks dirty cache lines.  [crash] replaces [working] with
   [durable], optionally first "evicting" random dirty lines to model the
   fact that real caches may write back unflushed lines at any time - code
   must therefore be correct both when unflushed stores persist and when
   they do not, exactly the failure-atomicity discipline (C4) demands.

   Failure atomicity granularity: persistence is line-granular, and an
   aligned 8-byte store never tears (a line persists as a whole), matching
   the hardware guarantee that only 8-byte aligned stores are atomic.

   Pools created with [kind = `Dram] share one image, making flushes free -
   the engine's pure in-memory mode runs through the identical code path so
   that the DRAM-vs-PMem comparison isolates the media cost. *)

type kind = [ `Pmem | `Dram ]

type t = {
  id : int;
  kind : kind;
  media : Media.t;
  device : Media.device;
  size : int;
  working : Bytes.t;
  durable : Bytes.t; (* == working for `Dram pools *)
  dirty : Bytes.t; (* one bit per cache line *)
  mutable crashes : int;
  mutable frozen : bool;
      (* power has been cut: nothing further reaches [durable] until
         [crash] restores the working view and unfreezes *)
  mutable torn_lines : int;
  alloc_mu : Mutex.t; (* used by Alloc *)
  tx_mu : Mutex.t; (* used by Pmdk_tx *)
}

let line = Media.line_size

exception Out_of_bounds of { pool : int; off : int; len : int }

let check t off len =
  if off < 0 || len < 0 || off + len > t.size then
    raise (Out_of_bounds { pool = t.id; off; len })

let create ?(kind = `Pmem) ~media ~id ~size () =
  let working = Bytes.make size '\000' in
  let durable =
    match kind with `Dram -> working | `Pmem -> Bytes.make size '\000'
  in
  let nlines = (size + line - 1) / line in
  {
    id;
    kind;
    media;
    device = (match kind with `Pmem -> Media.Pmem | `Dram -> Media.Dram);
    size;
    working;
    durable;
    dirty = Bytes.make ((nlines + 7) / 8) '\000';
    crashes = 0;
    frozen = false;
    torn_lines = 0;
    alloc_mu = Mutex.create ();
    tx_mu = Mutex.create ();
  }

let id t = t.id
let size t = t.size
let kind t = t.kind
let media t = t.media
let device t = t.device
let alloc_mutex t = t.alloc_mu
let tx_mutex t = t.tx_mu
let crashes t = t.crashes
let frozen t = t.frozen
let torn_lines t = t.torn_lines

let mark_dirty t off len =
  if t.kind = `Pmem then begin
    let first = off / line and last = (off + len - 1) / line in
    for l = first to last do
      let b = Bytes.get_uint8 t.dirty (l / 8) in
      Bytes.set_uint8 t.dirty (l / 8) (b lor (1 lsl (l mod 8)))
    done
  end

let is_dirty_line t l = Bytes.get_uint8 t.dirty (l / 8) land (1 lsl (l mod 8)) <> 0

let clear_dirty t l =
  let b = Bytes.get_uint8 t.dirty (l / 8) in
  Bytes.set_uint8 t.dirty (l / 8) (b land lnot (1 lsl (l mod 8)))

(* Reads (charged). *)

let read_u8 t off =
  check t off 1;
  Media.read t.media t.device ~off ~len:1;
  Bytes.get_uint8 t.working off

let read_u32 t off =
  check t off 4;
  Media.read t.media t.device ~off ~len:4;
  Int32.to_int (Bytes.get_int32_le t.working off) land 0xFFFFFFFF

let read_i64 t off =
  check t off 8;
  Media.read t.media t.device ~off ~len:8;
  Bytes.get_int64_le t.working off

let read_int t off = Int64.to_int (read_i64 t off)

let read_bytes t off len =
  check t off len;
  Media.read t.media t.device ~off ~len;
  Bytes.sub t.working off len

let read_string t off len = Bytes.to_string (read_bytes t off len)

let blit_out t ~off ~dst ~dst_off ~len =
  check t off len;
  Media.read t.media t.device ~off ~len;
  Bytes.blit t.working off dst dst_off len

(* Writes (charged; land in the working view and mark lines dirty). *)

let write_u8 t off v =
  check t off 1;
  Media.write t.media t.device ~off ~len:1;
  Bytes.set_uint8 t.working off v;
  mark_dirty t off 1

let write_u32 t off v =
  check t off 4;
  Media.write t.media t.device ~off ~len:4;
  Bytes.set_int32_le t.working off (Int32.of_int v);
  mark_dirty t off 4

let write_i64 t off v =
  check t off 8;
  Media.write t.media t.device ~off ~len:8;
  Bytes.set_int64_le t.working off v;
  mark_dirty t off 8

let write_int t off v = write_i64 t off (Int64.of_int v)

let write_bytes t off b =
  let len = Bytes.length b in
  check t off len;
  Media.write t.media t.device ~off ~len;
  Bytes.blit b 0 t.working off len;
  mark_dirty t off len

let write_string t off s = write_bytes t off (Bytes.unsafe_of_string s)

let fill t ~off ~len c =
  check t off len;
  Media.write t.media t.device ~off ~len;
  Bytes.fill t.working off len c;
  mark_dirty t off len

(* Persistence primitives. *)

let clwb t off =
  check t off 1;
  if t.kind = `Pmem && not t.frozen then begin
    let l = off / line in
    if is_dirty_line t l then begin
      let loff = l * line in
      let len = min line (t.size - loff) in
      (* the media hook fires first: an injected crash point freezes the
         pool and raises before this write-back reaches the durable image *)
      Media.flush_line t.media t.device ~off:loff;
      Bytes.blit t.working loff t.durable loff len;
      clear_dirty t l
    end
  end

let sfence t = if not t.frozen then Media.fence t.media t.device

let flush_range t ~off ~len =
  if len > 0 then begin
    check t off len;
    let first = off / line and last = (off + len - 1) / line in
    for l = first to last do
      clwb t (l * line)
    done
  end

let persist t ~off ~len =
  flush_range t ~off ~len;
  sfence t

(* Failure-atomic 8-byte store: aligned store + clwb + sfence (DG4). *)
let atomic_write_i64 t off v =
  if off mod 8 <> 0 then invalid_arg "Pool.atomic_write_i64: unaligned";
  write_i64 t off v;
  clwb t off;
  sfence t

let atomic_write_int t off v = atomic_write_i64 t off (Int64.of_int v)

(* Crash injection.

   [power_cut] models the instant the power fails: each still-dirty line is
   spontaneously evicted whole with probability [evict_prob], or partially
   - torn at the 8-byte store granularity the hardware guarantees atomic -
   with probability [torn_prob].  [freeze] applies it and then blocks all
   further write-backs, so code unwinding from an injected crash point
   cannot retroactively persist anything; [crash] finishes the simulated
   reboot by restoring the working view from the durable image. *)

let power_cut t ~evict_prob ~torn_prob ~rng =
  let nlines = (t.size + line - 1) / line in
  for l = 0 to nlines - 1 do
    if is_dirty_line t l then begin
      let loff = l * line in
      let len = min line (t.size - loff) in
      (if evict_prob > 0.0 && Random.State.float rng 1.0 < evict_prob then
         (* the cache evicted this line on its own before the crash *)
         Bytes.blit t.working loff t.durable loff len
       else if torn_prob > 0.0 && Random.State.float rng 1.0 < torn_prob then begin
         (* torn write: a random subset of the line's aligned 8-byte words
            reached the media (never a partial word) *)
         t.torn_lines <- t.torn_lines + 1;
         let w = ref 0 in
         while !w < len do
           if Random.State.bool rng then
             Bytes.blit t.working (loff + !w) t.durable (loff + !w)
               (min 8 (len - !w));
           w := !w + 8
         done
       end);
      clear_dirty t l
    end
  done

let freeze ?(evict_prob = 0.0) ?(torn_prob = 0.0)
    ?(rng = Random.State.make [| 0xC0FFEE |]) t =
  if t.kind = `Dram then invalid_arg "Pool.freeze: volatile pool";
  if not t.frozen then begin
    power_cut t ~evict_prob ~torn_prob ~rng;
    t.frozen <- true
  end

let crash ?(evict_prob = 0.0) ?(rng = Random.State.make [| 0xC0FFEE |]) t =
  if t.kind = `Dram then invalid_arg "Pool.crash: volatile pool";
  if not t.frozen then power_cut t ~evict_prob ~torn_prob:0.0 ~rng;
  (* lines dirtied after a freeze never reached the durable image *)
  Bytes.fill t.dirty 0 (Bytes.length t.dirty) '\000';
  Bytes.blit t.durable 0 t.working 0 t.size;
  t.frozen <- false;
  t.crashes <- t.crashes + 1

let dirty_line_count t =
  let nlines = (t.size + line - 1) / line in
  let n = ref 0 in
  for l = 0 to nlines - 1 do
    if is_dirty_line t l then incr n
  done;
  !n

(* Uncharged peek at the durable image, for tests. *)
let durable_i64 t off = Bytes.get_int64_le t.durable off

(* Uncharged loads, for callers that model their own access granularity
   (e.g. the B+-tree charges one block-granular read per node visit and
   then picks fields out of the already-fetched block). *)

let raw_read_i64 t off =
  check t off 8;
  Bytes.get_int64_le t.working off

let raw_read_int t off = Int64.to_int (raw_read_i64 t off)

let touch_read t ~off ~len =
  check t off len;
  Media.read t.media t.device ~off ~len
