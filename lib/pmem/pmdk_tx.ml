(* PMDK-style failure-atomic transactions (undo logging).

   The paper's MVTO commit uses PMDK transactions to atomically persist
   updates larger than the 8-byte power-fail atomic size (Section 5.1).
   PMDK implements transactional snapshots via undo logging: before a range
   is modified it is snapshotted into a persistent log; on crash the log is
   rolled back, on commit it is invalidated with a single atomic store.

   Log layout (within the region reserved by {!Alloc}):

     +0   state (u64)        0 = idle, 1 = active
     +8   n_entries (u64)    only entries < n_entries are valid
     +16  entries: { off u64; len u64; pre-image bytes (8-byte padded) }

   Persist discipline (van Renen et al.'s batched-persist primitives):
   callers *stage* snapshots in DRAM and *publish* them in batches.  A
   publish writes every staged entry contiguously into the log region,
   write-backs the whole span with coalesced 256 B-aligned flush batches,
   issues ONE fence, and only then bumps [n_entries] - so the torn-entry
   invariant survives: an entry's bytes are durable strictly before the
   count that makes it valid, and a torn tail is never replayed.  Ranges
   already snapshotted this transaction are deduplicated with an interval
   check (re-snapshotting them would both waste log space and overwrite
   the true pre-image's provenance with a possibly-dirty one).

   [state] and [n_entries] share one cache line, so raising the state on
   the first publish and clearing state+count at commit each cost a
   single write-back.  [begin_] is persistence-free: every exit path
   (format, commit, abort, recover) leaves state=0 / n_entries=0 durable.
   Torn write-backs of that line are harmless in all four combinations:
   state=1/count=0 rolls back nothing, state=0/count=N is idle (the stale
   count is rewritten before it could ever be trusted), and the two
   "clean" states are the intended ones.

   - [commit] persists every snapshotted range (merged intervals, batched
     flushes), fences, then invalidates the log with one atomic
     write-back of the shared line - the linearization point;
   - [recover] rolls entries back newest-first, trusting [n_entries] and
     the per-entry lengths only after validating them against the log
     region and pool bounds (a torn or fault-corrupted count word must
     not drive reads past the log). *)

type t = {
  pool : Pool.t;
  mutable intervals : (int * int) list;
      (* disjoint [start, stop) spans already snapshotted, ascending *)
  mutable staged : (int * int * Bytes.t) list; (* unpublished, newest first *)
  mutable images : (int * int * Bytes.t) list;
      (* every captured pre-image (published or not), newest first; abort
         restores from these DRAM copies instead of re-reading the log *)
  mutable flush_extra : (int * int) list;
      (* [start, stop) spans to include in commit's data flush without
         snapshotting: freshly written structures that need durability
         before the commit point but no undo (a rollback unlinks them) *)
  mutable write_head : int; (* next free log byte after published entries *)
  mutable projected_head : int; (* write_head + staged bytes *)
  mutable n : int; (* published entry count *)
  mutable state_raised : bool; (* durable state=1 already published *)
  mutable live : bool;
}

exception Log_full
exception Not_active

let base = Alloc.log_off
let state_off = base
let nentries_off = base + 8
let entries_off = base + 16
let limit = base + Alloc.log_size
let line = Media.line_size
let flush_batch = 256

let active_tx : (int, t) Hashtbl.t = Hashtbl.create 4
let active_mu = Mutex.create ()
(* one active transaction per pool; the pool's tx mutex serialises
   transactions on one pool, [active_mu] guards the table itself against
   concurrent domains transacting on *different* pools *)

let register tx =
  Mutex.lock active_mu;
  Hashtbl.replace active_tx (Pool.id tx.pool) tx;
  Mutex.unlock active_mu

let unregister pool =
  Mutex.lock active_mu;
  Hashtbl.remove active_tx (Pool.id pool);
  Mutex.unlock active_mu

let take_active pool =
  Mutex.lock active_mu;
  let tx = Hashtbl.find_opt active_tx (Pool.id pool) in
  Hashtbl.remove active_tx (Pool.id pool);
  Mutex.unlock active_mu;
  tx

(* Flushes saved by coalescing, vs. the per-entry persists the pre-batching
   code issued: exported on the pool's media registry. *)
let note_coalesced pool n =
  if n > 0 then
    Obs.Metrics.add
      (Obs.Metrics.counter
         (Media.registry (Pool.media pool))
         "media_flushes_coalesced_total"
         ~help:"line flushes avoided by undo-log batching and range merging")
      n

let lines_spanned ~off ~len =
  if len <= 0 then 0 else ((off + len - 1) / line) - (off / line) + 1

(* One logical flush of a contiguous span, issued as 256 B-aligned batches
   (the write-combining granularity of the batched-persist primitives). *)
let flush_batched p ~off ~len =
  let fin = off + len in
  let cur = ref off in
  while !cur < fin do
    let stop = min fin (((!cur / flush_batch) + 1) * flush_batch) in
    Pool.flush_range p ~off:!cur ~len:(stop - !cur);
    cur := stop
  done

let begin_ pool =
  Mutex.lock (Pool.tx_mutex pool);
  let tx =
    {
      pool;
      intervals = [];
      staged = [];
      images = [];
      flush_extra = [];
      write_head = entries_off;
      projected_head = entries_off;
      n = 0;
      state_raised = false;
      live = true;
    }
  in
  (* register before the first log touch: an injected crash point in the
     publishes below must leave a handle for [recover] to release.  No
     stores here - the durable state/count words are already 0. *)
  register tx;
  tx

let pad8 n = (n + 7) land lnot 7

(* --- interval bookkeeping (satellite of DG4: per-txn dedup) ------------- *)

(* Pieces of [s, e) not covered by the ascending disjoint interval list. *)
let subtract (s, e) ivs =
  let rec go s ivs acc =
    if s >= e then List.rev acc
    else
      match ivs with
      | [] -> List.rev ((s, e) :: acc)
      | (a, b) :: rest ->
          if b <= s then go s rest acc
          else if a >= e then List.rev ((s, e) :: acc)
          else if a <= s then go (max s b) rest acc
          else go b rest ((s, a) :: acc)
  in
  go s ivs []

(* Insert [s, e), merging overlapping or adjacent neighbours. *)
let insert_interval (s, e) ivs =
  let rec merge = function
    | (a, b) :: (c, d) :: rest when c <= b -> merge ((a, max b d) :: rest)
    | x :: rest -> x :: merge rest
    | [] -> []
  in
  merge (List.sort compare ((s, e) :: ivs))

(* Snapshot the current contents of [off, off+len) into DRAM; portions
   already snapshotted this transaction are skipped.  The snapshot is not
   durable until {!publish}; the range must not be modified before then. *)
let stage_range tx ~off ~len =
  if not tx.live then raise Not_active;
  if len > 0 then begin
    List.iter
      (fun (s, e) ->
        let l = e - s in
        let need = 16 + pad8 l in
        if tx.projected_head + need > limit then raise Log_full;
        let img = Pool.read_bytes tx.pool s l in
        tx.staged <- (s, l, img) :: tx.staged;
        tx.images <- (s, l, img) :: tx.images;
        tx.projected_head <- tx.projected_head + need)
      (subtract (off, off + len) tx.intervals);
    tx.intervals <- insert_interval (off, off + len) tx.intervals
  end

(* Make every staged snapshot durable: contiguous entry writes, one
   coalesced flush of the whole span, ONE fence, then the count bump
   (entry bytes strictly before the count).  The count and - on the first
   publish - the state share a cache line; their write-back needs no
   trailing fence: if the crash lands before the write-back completes,
   the durable count still excludes these entries, and the caller has not
   yet modified any of the staged ranges. *)
let publish tx =
  if not tx.live then raise Not_active;
  if tx.staged <> [] then begin
    let p = tx.pool in
    let start = tx.write_head in
    let naive = ref 0 in
    List.iter
      (fun (off, len, img) ->
        let head = tx.write_head in
        Pool.write_int p head off;
        Pool.write_int p (head + 8) len;
        Pool.write_bytes p (head + 16) img;
        let need = 16 + pad8 len in
        (* the pre-batching code persisted each entry separately *)
        naive := !naive + lines_spanned ~off:head ~len:need;
        tx.write_head <- head + need;
        tx.n <- tx.n + 1)
      (List.rev tx.staged);
    tx.staged <- [];
    let span = tx.write_head - start in
    flush_batched p ~off:start ~len:span;
    note_coalesced p (!naive - lines_spanned ~off:start ~len:span);
    Pool.sfence p;
    Pool.write_int p nentries_off tx.n;
    if not tx.state_raised then begin
      Pool.write_int p state_off 1;
      tx.state_raised <- true
    end;
    Pool.clwb p nentries_off
  end

(* Snapshot a range and make it durable immediately (the eager PMDK
   add_range contract: callers may modify the range as soon as this
   returns). *)
let add_range tx ~off ~len =
  stage_range tx ~off ~len;
  publish tx

(* Ride the commit's coalesced data flush without snapshotting.  For
   freshly allocated structures (new property batches, insert-locked
   records): they need to be durable before the commit point, but a
   rollback merely unlinks them, so burning log space on their garbage
   pre-images buys nothing. *)
let flush_on_commit tx ~off ~len =
  if not tx.live then raise Not_active;
  if len > 0 then tx.flush_extra <- insert_interval (off, off + len) tx.flush_extra

let finish tx =
  tx.live <- false;
  unregister tx.pool;
  Mutex.unlock (Pool.tx_mutex tx.pool)

(* Clear state and n_entries together: one line, one write-back.  The
   line's write-back follows every preceding data write-back in program
   order, so data-before-invalidation holds at every cut without a
   dedicated fence in between: the single trailing fence closes the
   whole commit epoch.  A torn write-back of this line is safe in every
   combination (see the header comment). *)
let clear_log p =
  Pool.write_int p state_off 0;
  Pool.write_int p nentries_off 0;
  Pool.clwb p state_off;
  Pool.sfence p

let commit tx =
  if not tx.live then raise Not_active;
  publish tx;
  let p = tx.pool in
  (* snapshotted intervals and flush-only extras share one merged,
     batched data flush *)
  let spans =
    List.fold_left
      (fun acc (s, e) -> insert_interval (s, e) acc)
      tx.intervals tx.flush_extra
  in
  if tx.n = 0 && not tx.state_raised then begin
    (* read-only (log idle), but flush-only extras still need their
       durability point before we return *)
    if spans <> [] then begin
      List.iter (fun (s, e) -> flush_batched p ~off:s ~len:(e - s)) spans;
      Pool.sfence p
    end;
    finish tx
  end
  else begin
    (* persist all modified ranges - merged intervals, batched flushes -
       then invalidate the log atomically *)
    let naive =
      List.fold_left
        (fun acc (off, len, _) -> acc + lines_spanned ~off ~len)
        0 tx.images
      + List.fold_left
          (fun acc (s, e) -> acc + lines_spanned ~off:s ~len:(e - s))
          0 tx.flush_extra
    in
    let actual =
      List.fold_left
        (fun acc (s, e) -> acc + lines_spanned ~off:s ~len:(e - s))
        0 spans
    in
    List.iter (fun (s, e) -> flush_batched p ~off:s ~len:(e - s)) spans;
    note_coalesced p (naive - actual);
    (* the data write-backs above precede the invalidation's write-back,
       so clear_log's one fence suffices for the commit epoch *)
    clear_log p;
    finish tx
  end

(* Roll back an interrupted transaction from the durable log.  The count
   word and each entry header come straight off media, so after a torn or
   fault-corrupted write they can hold anything: entries are trusted only
   while they lie entirely within the log region and name a range inside
   the pool; the first malformed entry and everything after it are
   treated as the torn tail (never counted durable). *)
let rollback_log pool =
  let pool_size = Pool.size pool in
  let n = Pool.read_int pool nentries_off in
  let locs = ref [] in
  let head = ref entries_off in
  (try
     for _i = 1 to n do
       if !head + 16 > limit then raise Exit;
       let off = Pool.read_int pool !head in
       let len = Pool.read_int pool (!head + 8) in
       if len <= 0 || pad8 len > limit - (!head + 16) then raise Exit;
       if off < 0 || off > pool_size - len then raise Exit;
       locs := (off, len, !head + 16) :: !locs;
       head := !head + 16 + pad8 len
     done
   with Exit -> ());
  (* undo newest-first *)
  List.iter
    (fun (off, len, data) ->
      Pool.write_bytes pool off (Pool.read_bytes pool data len);
      Pool.flush_range pool ~off ~len)
    !locs;
  Pool.sfence pool;
  clear_log pool

let abort tx =
  if not tx.live then raise Not_active;
  if not tx.state_raised then
    (* nothing was published, so nothing may have been modified and the
       durable state/count words are still 0 *)
    finish tx
  else begin
    let p = tx.pool in
    (* restore from the DRAM-held pre-images, newest first *)
    List.iter
      (fun (off, _len, img) ->
        Pool.write_bytes p off img;
        flush_batched p ~off ~len:(Bytes.length img))
      tx.images;
    Pool.sfence p;
    clear_log p;
    finish tx
  end

(* Crash recovery: if a transaction was active when the crash happened, its
   undo log is rolled back.  Returns [true] when a rollback was applied. *)
let recover pool =
  (match take_active pool with
  | Some tx ->
      (* the crashing "process" held the tx open; drop its handle *)
      tx.live <- false;
      Mutex.unlock (Pool.tx_mutex pool)
  | None -> ());
  if Pool.read_int pool state_off = 1 then begin
    rollback_log pool;
    true
  end
  else false

let run pool f =
  let tx = begin_ pool in
  match f tx with
  | v ->
      commit tx;
      v
  | exception e ->
      if tx.live then abort tx;
      raise e
