(* PMDK-style failure-atomic transactions (undo logging).

   The paper's MVTO commit uses PMDK transactions to atomically persist
   updates larger than the 8-byte power-fail atomic size (Section 5.1).
   PMDK implements transactional snapshots via undo logging: before a range
   is modified it is snapshotted into a persistent log; on crash the log is
   rolled back, on commit it is invalidated with a single atomic store.

   Log layout (within the region reserved by {!Alloc}):

     +0   state (u64)        0 = idle, 1 = active
     +8   n_entries (u64)    only entries < n_entries are valid
     +16  entries: { off u64; len u64; pre-image bytes (8-byte padded) }

   Ordering discipline:
   - an entry's bytes are persisted *before* n_entries is bumped, so a torn
     entry is never replayed;
   - [commit] persists every snapshotted range, fences, then clears [state]
     with one atomic store - the linearization point;
   - [recover] rolls entries back in reverse order. *)

type t = {
  pool : Pool.t;
  mutable entries : (int * int) list; (* (off, len), newest first *)
  mutable write_head : int; (* next free byte in the log region *)
  mutable n : int;
  mutable live : bool;
}

exception Log_full
exception Not_active

let base = Alloc.log_off
let state_off = base
let nentries_off = base + 8
let entries_off = base + 16
let limit = base + Alloc.log_size

let active_tx : (int, t) Hashtbl.t = Hashtbl.create 4
let active_mu = Mutex.create ()
(* one active transaction per pool; the pool's tx mutex serialises
   transactions on one pool, [active_mu] guards the table itself against
   concurrent domains transacting on *different* pools *)

let register tx =
  Mutex.lock active_mu;
  Hashtbl.replace active_tx (Pool.id tx.pool) tx;
  Mutex.unlock active_mu

let unregister pool =
  Mutex.lock active_mu;
  Hashtbl.remove active_tx (Pool.id pool);
  Mutex.unlock active_mu

let take_active pool =
  Mutex.lock active_mu;
  let tx = Hashtbl.find_opt active_tx (Pool.id pool) in
  Hashtbl.remove active_tx (Pool.id pool);
  Mutex.unlock active_mu;
  tx

let begin_ pool =
  Mutex.lock (Pool.tx_mutex pool);
  let tx =
    { pool; entries = []; write_head = entries_off; n = 0; live = true }
  in
  (* register before touching the log: an injected crash point in the
     state stores below must leave a handle for [recover] to release *)
  register tx;
  (* order matters: clear the previous transaction's entry count BEFORE
     raising [state] - with the opposite order, a power failure between
     the two stores leaves state=1 paired with the stale count, and
     recovery would roll back the *committed* predecessor's pre-images *)
  Pool.atomic_write_int pool nentries_off 0;
  Pool.atomic_write_int pool state_off 1;
  tx

let pad8 n = (n + 7) land lnot 7

(* Snapshot the current contents of [off, off+len) so that a crash or abort
   restores them.  Must be called before modifying the range. *)
let add_range tx ~off ~len =
  if not tx.live then raise Not_active;
  if len > 0 then begin
    let need = 16 + pad8 len in
    if tx.write_head + need > limit then raise Log_full;
    let p = tx.pool in
    Pool.write_int p tx.write_head off;
    Pool.write_int p (tx.write_head + 8) len;
    Pool.write_bytes p (tx.write_head + 16) (Pool.read_bytes p off len);
    Pool.persist p ~off:tx.write_head ~len:need;
    tx.write_head <- tx.write_head + need;
    tx.n <- tx.n + 1;
    Pool.atomic_write_int p nentries_off tx.n;
    tx.entries <- (off, len) :: tx.entries
  end

let finish tx =
  tx.live <- false;
  unregister tx.pool;
  Mutex.unlock (Pool.tx_mutex tx.pool)

let commit tx =
  if not tx.live then raise Not_active;
  let p = tx.pool in
  (* persist all modified ranges, then invalidate the log atomically *)
  List.iter (fun (off, len) -> Pool.flush_range p ~off ~len) tx.entries;
  Pool.sfence p;
  Pool.atomic_write_int p state_off 0;
  finish tx

let rollback_log pool =
  let n = Pool.read_int pool nentries_off in
  (* collect entry locations, then undo newest-first *)
  let locs = Array.make n (0, 0, 0) in
  let head = ref entries_off in
  for i = 0 to n - 1 do
    let off = Pool.read_int pool !head in
    let len = Pool.read_int pool (!head + 8) in
    locs.(i) <- (off, len, !head + 16);
    head := !head + 16 + pad8 len
  done;
  for i = n - 1 downto 0 do
    let off, len, data = locs.(i) in
    Pool.write_bytes pool off (Pool.read_bytes pool data len);
    Pool.flush_range pool ~off ~len
  done;
  Pool.sfence pool;
  Pool.atomic_write_int pool state_off 0;
  Pool.atomic_write_int pool nentries_off 0

let abort tx =
  if not tx.live then raise Not_active;
  rollback_log tx.pool;
  finish tx

(* Crash recovery: if a transaction was active when the crash happened, its
   undo log is rolled back.  Returns [true] when a rollback was applied. *)
let recover pool =
  (match take_active pool with
  | Some tx ->
      (* the crashing "process" held the tx open; drop its handle *)
      tx.live <- false;
      Mutex.unlock (Pool.tx_mutex pool)
  | None -> ());
  if Pool.read_int pool state_off = 1 then begin
    rollback_log pool;
    true
  end
  else false

let run pool f =
  let tx = begin_ pool in
  match f tx with
  | v ->
      commit tx;
      v
  | exception e ->
      if tx.live then abort tx;
      raise e
