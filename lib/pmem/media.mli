(** Device cost model and simulated clock for the persistent-memory
    simulator.

    Every byte accessed through {!Pool} is charged here according to a
    calibrated cost table reproducing the PMem characteristics (C1)-(C3),
    (C5), (C6) from the paper: ~3x slower random reads than DRAM, 256-byte
    internal block granularity, asymmetric writes whose real cost is paid at
    [clwb]/[sfence] time, expensive allocations and persistent-pointer
    dereferencing. *)

type device = Dram | Pmem | Ssd

val pp_device : Format.formatter -> device -> unit

(** Cost table, all values in simulated nanoseconds. *)
type costs = {
  dram_read_line : int;
  dram_write_line : int;
  pmem_read_line_random : int;  (** first line of a 256 B block *)
  pmem_read_line_seq : int;  (** line within/adjacent to the last block *)
  pmem_write_line : int;
  pmem_flush_line : int;  (** [clwb] write-back of one dirty line *)
  pmem_fence : int;  (** [sfence] drain *)
  pmem_alloc : int;
  dram_alloc : int;
  pptr_deref : int;
  ssd_read_page : int;
  ssd_write_page : int;
}

val default_costs : costs
(** Defaults following the latency ratios reported in the paper. *)

(** Access counters, useful for the design-goal ablations (flushed lines are
    the decisive metric per DG1). *)
type stats = {
  mutable reads : int;
  mutable writes : int;
  mutable flushes : int;
  mutable fences : int;
  mutable allocs : int;
  mutable frees : int;
  mutable derefs : int;
  mutable ssd_reads : int;
  mutable ssd_writes : int;
  mutable bytes_read : int;
  mutable bytes_written : int;
  mutable faults : int;  (** injected device faults (see {!Faults}) *)
  mutable retries : int;  (** degradation retries that absorbed them *)
}

(** Durability-relevant device events.  A hook installed with {!set_hook}
    observes the ordered stream of PMem stores, [clwb] write-backs and
    [sfence]s (the persist trace) plus allocations and SSD page accesses.
    The hook fires {e before} the access takes effect; raising from it
    models the device failing the access (fault injection). *)
type event =
  | Ev_store of { off : int; len : int }
  | Ev_flush of { off : int }  (** line-aligned write-back offset *)
  | Ev_fence
  | Ev_alloc
  | Ev_ssd_read
  | Ev_ssd_write

type t

val line_size : int
(** Cache-line size (64). *)

val block_size : int
(** DCPMM internal block size (256), see (C3). *)

val create : ?costs:costs -> unit -> t
val clock : t -> int
(** Total simulated nanoseconds charged so far. *)

val registry : t -> Obs.Metrics.t
(** Per-media metrics registry.  The media's own counters are exposed as
    callback metrics ([pmem_media_*]); higher layers register theirs
    here so that {!reset} yields delta-correct stats for every layer. *)

val tracer : t -> Obs.Trace.t
(** Span tracer on the simulated clock; disabled by default. *)

val stats : t -> stats
val costs : t -> costs
val reset : t -> unit
val charge : t -> int -> unit
(** Charge raw nanoseconds (used for modeled compilation latency etc.). *)

val set_spin : t -> bool -> unit
(** Enable wall-clock emulation: every charged nanosecond is also
    busy-waited, so device latency becomes real elapsed time (used by the
    JIT/adaptive benchmarks). *)

val busy_wait_ns : int -> unit
(** Calibrated busy-wait (wall-clock), independent of any clock. *)

val calibrate_spin : unit -> unit

val install_meter : t -> int
(** Install a per-domain meter accumulating charges made by the calling
    domain; returns the meter id. *)

val uninstall_meter : t -> unit
val meter_value : t -> int -> int

val self_meter_value : t -> int option
(** Value of the calling domain's installed meter, if any — lets code
    time itself on its own meter without installing (and thereby
    replacing) one. *)

val read : t -> device -> off:int -> len:int -> unit
val write : t -> device -> off:int -> len:int -> unit
val flush_line : t -> device -> off:int -> unit
val fence : t -> device -> unit
val alloc : t -> device -> unit
val free : t -> device -> unit
val pptr_deref : t -> unit
val ssd_read_page : t -> unit
val ssd_write_page : t -> unit

val set_hook : t -> (event -> unit) option -> unit
(** Install (or clear) the single event-observer slot.  Used by
    {!Crash_explorer} to record persist traces and by {!Faults} to inject
    crashes and transient SSD errors. *)

val hook_installed : t -> bool

val note_fault : t -> unit
(** Count one injected fault in {!stats} (called by the injector). *)

val note_retry : t -> unit
(** Count one graceful-degradation retry in {!stats} (called by retry
    loops in the buffer pool and transaction layer). *)

val pp_stats : Format.formatter -> stats -> unit
