(* Deterministic fault injection for the simulated device stack.

   A fault plan is armed on a {!Media.t} (optionally tied to the
   {!Pool.t} whose durability it attacks) and observes the media event
   stream through the {!Media.set_hook} slot:

   - [crash_at (ev, n)] raises {!Crash_point} at the n-th occurrence of
     [ev], after freezing the pool so that nothing the unwinding code
     does can retroactively reach the durable image - exactly a power
     failure at that instant.  The freeze applies the plan's
     eviction/torn-write model to the lines dirty at the cut.
   - [ssd_read_fail]/[ssd_write_fail] make SSD page accesses raise
     {!Ssd_fault} with the given probability (transient device errors);
     callers are expected to absorb them with bounded retries
     (Buffer_pool does).

   Everything is driven by one seeded RNG, so a given (plan, workload)
   pair replays identically - the property the crash-schedule explorer
   builds on.  Every injection is counted both in the plan's own stats
   and in the media's global fault counter. *)

type crash_event = [ `Write | `Flush | `Fence | `Alloc ]

let pp_crash_event ppf = function
  | `Write -> Fmt.string ppf "write"
  | `Flush -> Fmt.string ppf "flush"
  | `Fence -> Fmt.string ppf "fence"
  | `Alloc -> Fmt.string ppf "alloc"

exception Crash_point of { event : crash_event; count : int }
exception Ssd_fault of [ `Read | `Write ]

let () =
  Printexc.register_printer (function
    | Crash_point { event; count } ->
        Some
          (Fmt.str "Faults.Crash_point(%a #%d)" pp_crash_event event count)
    | Ssd_fault op ->
        Some
          (Fmt.str "Faults.Ssd_fault(%s)"
             (match op with `Read -> "read" | `Write -> "write"))
    | _ -> None)

type stats = {
  injected_crashes : int;
  ssd_read_faults : int;
  ssd_write_faults : int;
  stores_seen : int;
  flushes_seen : int;
  fences_seen : int;
  allocs_seen : int;
}

type t = {
  crash_at : (crash_event * int) option;
  evict_prob : float;
  torn_prob : float;
  ssd_read_fail : float;
  ssd_write_fail : float;
  rng : Random.State.t;
  mutable triggered : bool;
  mutable crashes : int;
  mutable ssd_r : int;
  mutable ssd_w : int;
  mutable stores : int;
  mutable flushes : int;
  mutable fences : int;
  mutable allocs : int;
}

let plan ?crash_at ?(evict_prob = 0.0) ?(torn_prob = 0.0)
    ?(ssd_read_fail = 0.0) ?(ssd_write_fail = 0.0) ?(seed = 0x5EED) () =
  (match crash_at with
  | Some (_, n) when n < 1 -> invalid_arg "Faults.plan: crash_at count < 1"
  | _ -> ());
  {
    crash_at;
    evict_prob;
    torn_prob;
    ssd_read_fail;
    ssd_write_fail;
    rng = Random.State.make [| 0xFA17; seed |];
    triggered = false;
    crashes = 0;
    ssd_r = 0;
    ssd_w = 0;
    stores = 0;
    flushes = 0;
    fences = 0;
    allocs = 0;
  }

let stats p =
  {
    injected_crashes = p.crashes;
    ssd_read_faults = p.ssd_r;
    ssd_write_faults = p.ssd_w;
    stores_seen = p.stores;
    flushes_seen = p.flushes;
    fences_seen = p.fences;
    allocs_seen = p.allocs;
  }

let triggered p = p.triggered

let trigger p media pool event count =
  p.triggered <- true;
  p.crashes <- p.crashes + 1;
  Media.note_fault media;
  (match pool with
  | Some pool ->
      Pool.freeze ~evict_prob:p.evict_prob ~torn_prob:p.torn_prob ~rng:p.rng
        pool
  | None -> ());
  raise (Crash_point { event; count })

let hook p media pool ev =
  if not p.triggered then
    match ev with
    | Media.Ev_store _ -> (
        p.stores <- p.stores + 1;
        match p.crash_at with
        | Some (`Write, n) when p.stores >= n ->
            trigger p media pool `Write p.stores
        | _ -> ())
    | Media.Ev_flush _ -> (
        p.flushes <- p.flushes + 1;
        match p.crash_at with
        | Some (`Flush, n) when p.flushes >= n ->
            trigger p media pool `Flush p.flushes
        | _ -> ())
    | Media.Ev_fence -> (
        p.fences <- p.fences + 1;
        match p.crash_at with
        | Some (`Fence, n) when p.fences >= n ->
            trigger p media pool `Fence p.fences
        | _ -> ())
    | Media.Ev_alloc -> (
        p.allocs <- p.allocs + 1;
        match p.crash_at with
        | Some (`Alloc, n) when p.allocs >= n ->
            trigger p media pool `Alloc p.allocs
        | _ -> ())
    | Media.Ev_ssd_read ->
        if
          p.ssd_read_fail > 0.0
          && Random.State.float p.rng 1.0 < p.ssd_read_fail
        then begin
          p.ssd_r <- p.ssd_r + 1;
          Media.note_fault media;
          raise (Ssd_fault `Read)
        end
    | Media.Ev_ssd_write ->
        if
          p.ssd_write_fail > 0.0
          && Random.State.float p.rng 1.0 < p.ssd_write_fail
        then begin
          p.ssd_w <- p.ssd_w + 1;
          Media.note_fault media;
          raise (Ssd_fault `Write)
        end

let install ?pool media p = Media.set_hook media (Some (hook p media pool))
let uninstall media = Media.set_hook media None
