(* Device cost model and simulated clock for the persistent-memory simulator.

   The paper's evaluation is driven by the latency/bandwidth/asymmetry
   characteristics (C1)-(C3) of Intel Optane DCPMMs.  Since no PMem hardware
   (nor PMDK bindings) is available, every storage access in this repository
   is routed through a [Media.t] which charges calibrated per-access costs to
   a simulated nanosecond clock.  The default parameters follow the ratios
   reported in the paper and the studies it cites ([42, 48]):

   - PMem random reads are ~3x slower than DRAM (C1);
   - reads within an already-open 256-byte DCPMM block are cheaper,
     rewarding sequential, block-aligned layouts (C3);
   - writes are asymmetrically more expensive than reads and the real cost
     is paid at cache-line flush ([clwb]) and fence ([sfence]) time (C2, DG1);
   - PMem allocations are up to ~8x more expensive than DRAM ones (C5);
   - dereferencing a 16-byte persistent pointer costs extra (C6);
   - SSD access is page-granular and orders of magnitude slower. *)

type device = Dram | Pmem | Ssd

let pp_device ppf = function
  | Dram -> Fmt.string ppf "dram"
  | Pmem -> Fmt.string ppf "pmem"
  | Ssd -> Fmt.string ppf "ssd"

(* All costs in simulated nanoseconds. *)
type costs = {
  dram_read_line : int;
  dram_write_line : int;
  pmem_read_line_random : int; (* first line of a 256 B block *)
  pmem_read_line_seq : int; (* subsequent lines within/adjacent block *)
  pmem_write_line : int; (* store reaching the write-combining buffer *)
  pmem_flush_line : int; (* clwb write-back of one dirty line *)
  pmem_fence : int; (* sfence drain *)
  pmem_alloc : int; (* PMDK-style allocation overhead (C5) *)
  dram_alloc : int;
  pptr_deref : int; (* persistent-pointer translation (C6) *)
  ssd_read_page : int;
  ssd_write_page : int;
}

let default_costs =
  {
    dram_read_line = 80;
    dram_write_line = 60;
    pmem_read_line_random = 290;
    pmem_read_line_seq = 95;
    pmem_write_line = 120;
    pmem_flush_line = 150;
    pmem_fence = 420;
    pmem_alloc = 2600;
    dram_alloc = 320;
    pptr_deref = 35;
    ssd_read_page = 80_000;
    ssd_write_page = 95_000;
  }

type stats = {
  mutable reads : int; (* line-granular accesses *)
  mutable writes : int;
  mutable flushes : int;
  mutable fences : int;
  mutable allocs : int;
  mutable frees : int;
  mutable derefs : int;
  mutable ssd_reads : int;
  mutable ssd_writes : int;
  mutable bytes_read : int;
  mutable bytes_written : int;
  mutable faults : int; (* injected device faults (Faults) *)
  mutable retries : int; (* degradation retries absorbing them *)
}

(* Durability-relevant device events, exposed to observers.  A single hook
   slot serves both the persist-trace recorder (Crash_explorer) and the
   fault injector (Faults): the hook fires *before* the access takes
   effect, so raising from it models the device failing the access. *)
type event =
  | Ev_store of { off : int; len : int } (* PMem store *)
  | Ev_flush of { off : int } (* clwb write-back, line-aligned *)
  | Ev_fence (* sfence on PMem *)
  | Ev_alloc (* PMem allocation *)
  | Ev_ssd_read
  | Ev_ssd_write

(* internal lock-free counters; [stats] returns a snapshot *)
type counters = {
  c_reads : int Atomic.t;
  c_writes : int Atomic.t;
  c_flushes : int Atomic.t;
  c_fences : int Atomic.t;
  c_allocs : int Atomic.t;
  c_frees : int Atomic.t;
  c_derefs : int Atomic.t;
  c_ssd_reads : int Atomic.t;
  c_ssd_writes : int Atomic.t;
  c_bytes_read : int Atomic.t;
  c_bytes_written : int Atomic.t;
  c_faults : int Atomic.t;
  c_retries : int Atomic.t;
}

let empty_counters () =
  {
    c_reads = Atomic.make 0;
    c_writes = Atomic.make 0;
    c_flushes = Atomic.make 0;
    c_fences = Atomic.make 0;
    c_allocs = Atomic.make 0;
    c_frees = Atomic.make 0;
    c_derefs = Atomic.make 0;
    c_ssd_reads = Atomic.make 0;
    c_ssd_writes = Atomic.make 0;
    c_bytes_read = Atomic.make 0;
    c_bytes_written = Atomic.make 0;
    c_faults = Atomic.make 0;
    c_retries = Atomic.make 0;
  }

let add c n = ignore (Atomic.fetch_and_add c n)

type t = {
  costs : costs;
  mutable spin : bool; (* wall-clock emulation of charges *)
  clock : int Atomic.t; (* total charged simulated ns *)
  counters : counters;
  last_block : int Atomic.t; (* last 256 B block read, for C3 modelling *)
  meter_key : int option ref Domain.DLS.key;
      (* per-domain meter: when installed, charges are also accumulated
         locally so a parallel harness can compute per-worker busy time *)
  meters : (int, int ref) Hashtbl.t;
  meters_mu : Mutex.t;
  mutable next_meter : int;
  mutable hook : (event -> unit) option;
      (* observer for durability-relevant events; may raise to inject a
         fault in place of the access (see Faults / Crash_explorer) *)
  registry : Obs.Metrics.t;
      (* per-media metrics registry: the media's own counters are exposed
         as callbacks, and higher layers (MVTO, JIT cache, task pool)
         register their metrics here so [reset] gives delta-correct stats
         for every layer at once *)
  tracer : Obs.Trace.t; (* spans on the simulated clock; off by default *)
}

let line_size = 64
let block_size = 256

let create ?(costs = default_costs) () =
  let clock = Atomic.make 0 in
  let registry = Obs.Metrics.create () in
  let t =
    {
      costs;
      spin = false;
      clock;
      counters = empty_counters ();
      last_block = Atomic.make (-10);
      meter_key = Domain.DLS.new_key (fun () -> ref None);
      meters = Hashtbl.create 8;
      meters_mu = Mutex.create ();
      next_meter = 0;
      hook = None;
      registry;
      tracer =
        Obs.Trace.create ~clock:(fun () -> Atomic.get clock) ();
    }
  in
  let cb name help a =
    Obs.Metrics.callback registry name ~help ~kind:`Counter (fun () ->
        Atomic.get a)
  in
  let c = t.counters in
  cb "pmem_media_reads_total" "line-granular media reads" c.c_reads;
  cb "pmem_media_writes_total" "line-granular media writes" c.c_writes;
  cb "pmem_media_flushes_total" "clwb line write-backs" c.c_flushes;
  cb "pmem_media_fences_total" "sfence drains" c.c_fences;
  cb "pmem_media_allocs_total" "media allocations" c.c_allocs;
  cb "pmem_media_frees_total" "media frees" c.c_frees;
  cb "pmem_media_pptr_derefs_total" "persistent-pointer dereferences" c.c_derefs;
  cb "pmem_media_ssd_reads_total" "SSD page reads" c.c_ssd_reads;
  cb "pmem_media_ssd_writes_total" "SSD page writes" c.c_ssd_writes;
  cb "pmem_media_bytes_read_total" "bytes read" c.c_bytes_read;
  cb "pmem_media_bytes_written_total" "bytes written" c.c_bytes_written;
  cb "pmem_media_faults_total" "injected device faults" c.c_faults;
  cb "pmem_media_retries_total" "degradation retries absorbing faults"
    c.c_retries;
  Obs.Metrics.callback registry "pmem_media_clock_ns"
    ~help:"simulated clock (total charged ns)" ~kind:`Gauge (fun () ->
      Atomic.get clock);
  t

let clock t = Atomic.get t.clock
let registry t = t.registry
let tracer t = t.tracer
let set_hook t h = t.hook <- h
let hook_installed t = t.hook <> None
let emit t ev = match t.hook with None -> () | Some f -> f ev

let stats t =
  let c = t.counters in
  {
    reads = Atomic.get c.c_reads;
    writes = Atomic.get c.c_writes;
    flushes = Atomic.get c.c_flushes;
    fences = Atomic.get c.c_fences;
    allocs = Atomic.get c.c_allocs;
    frees = Atomic.get c.c_frees;
    derefs = Atomic.get c.c_derefs;
    ssd_reads = Atomic.get c.c_ssd_reads;
    ssd_writes = Atomic.get c.c_ssd_writes;
    bytes_read = Atomic.get c.c_bytes_read;
    bytes_written = Atomic.get c.c_bytes_written;
    faults = Atomic.get c.c_faults;
    retries = Atomic.get c.c_retries;
  }

let costs t = t.costs

(* Wall-clock emulation: when enabled, every charged nanosecond is also
   busy-waited, so simulated device latency becomes real elapsed time.
   Used by benchmarks that measure CPU-side effects (JIT vs AOT) together
   with media effects (DRAM vs PMem), e.g. the adaptive-execution figure.
   The spin is calibrated once per process. *)

let iters_per_ns = ref 0.0

let calibrate_spin () =
  if !iters_per_ns = 0.0 then begin
    let iters = 50_000_000 in
    let t0 = Sys.time () in
    let x = ref 0 in
    for i = 1 to iters do
      x := !x lxor i
    done;
    ignore (Sys.opaque_identity !x);
    let dt = Sys.time () -. t0 in
    let ns = dt *. 1e9 in
    iters_per_ns := if ns <= 0.0 then 1.0 else float_of_int iters /. ns
  end

let busy_wait_ns ns =
  if ns > 0 then begin
    calibrate_spin ();
    let iters = int_of_float (float_of_int ns *. !iters_per_ns) in
    let x = ref 0 in
    for i = 1 to iters do
      x := !x lxor i
    done;
    ignore (Sys.opaque_identity !x)
  end

let reset t =
  Atomic.set t.clock 0;
  (* forget the open DCPMM block: sequential-read modelling (C3) must not
     leak across resets into the next benchmark run *)
  Atomic.set t.last_block (-10);
  let c = t.counters in
  List.iter
    (fun a -> Atomic.set a 0)
    [
      c.c_reads; c.c_writes; c.c_flushes; c.c_fences; c.c_allocs; c.c_frees;
      c.c_derefs; c.c_ssd_reads; c.c_ssd_writes; c.c_bytes_read;
      c.c_bytes_written; c.c_faults; c.c_retries;
    ];
  Mutex.lock t.meters_mu;
  Hashtbl.reset t.meters;
  Mutex.unlock t.meters_mu;
  (* every layer's registry-resident metrics (JIT cache hits, abort
     taxonomy, exec latencies) reset together with the media, so pool
     reuse reports deltas instead of lifetime totals; callback metrics
     over the media counters zeroed above follow automatically *)
  Obs.Metrics.reset t.registry;
  Obs.Trace.reset t.tracer

let set_spin t on =
  if on then calibrate_spin ();
  t.spin <- on

let charge t ns =
  ignore (Atomic.fetch_and_add t.clock ns);
  if t.spin then busy_wait_ns ns;
  let local = Domain.DLS.get t.meter_key in
  match !local with
  | None -> ()
  | Some id -> (
      (* registered meters are only mutated by their owning domain *)
      match Hashtbl.find_opt t.meters id with
      | Some r -> r := !r + ns
      | None -> ())

(* Install a per-domain meter; returns its id.  Used by the task pool to
   attribute simulated work to individual workers. *)
let install_meter t =
  Mutex.lock t.meters_mu;
  let id = t.next_meter in
  t.next_meter <- id + 1;
  Hashtbl.replace t.meters id (ref 0);
  Mutex.unlock t.meters_mu;
  Domain.DLS.get t.meter_key := Some id;
  id

let uninstall_meter t = Domain.DLS.get t.meter_key := None

let meter_value t id =
  Mutex.lock t.meters_mu;
  let v = match Hashtbl.find_opt t.meters id with Some r -> !r | None -> 0 in
  Mutex.unlock t.meters_mu;
  v

let self_meter_value t =
  match !(Domain.DLS.get t.meter_key) with
  | None -> None
  | Some id -> Some (meter_value t id)


(* Charge a line-granular read of [len] bytes starting at absolute pool
   offset [off] on [device].  For PMem the first line of a 256 B block pays
   the random-access cost while lines within the same or the directly
   following block pay the cheaper sequential cost (C3). *)
let read t device ~off ~len =
  let first_line = off / line_size and last_line = (off + len - 1) / line_size in
  let nlines = last_line - first_line + 1 in
  let cost =
    match device with
    | Dram -> nlines * t.costs.dram_read_line
    | Ssd -> nlines * t.costs.dram_read_line (* buffer-pool resident page *)
    | Pmem ->
        let acc = ref 0 in
        for line = first_line to last_line do
          let block = line * line_size / block_size in
          let last = Atomic.get t.last_block in
          if block = last || block = last + 1 then
            acc := !acc + t.costs.pmem_read_line_seq
          else acc := !acc + t.costs.pmem_read_line_random;
          Atomic.set t.last_block block
        done;
        !acc
  in
  charge t cost;
  add t.counters.c_reads nlines;
  add t.counters.c_bytes_read len

let write t device ~off ~len =
  if device = Pmem then emit t (Ev_store { off; len });
  let first_line = off / line_size and last_line = (off + len - 1) / line_size in
  let nlines = last_line - first_line + 1 in
  let cost =
    match device with
    | Dram | Ssd -> nlines * t.costs.dram_write_line
    | Pmem -> nlines * t.costs.pmem_write_line
  in
  charge t cost;
  add t.counters.c_writes nlines;
  add t.counters.c_bytes_written len

let flush_line t device ~off =
  match device with
  | Dram | Ssd -> ()
  | Pmem ->
      emit t (Ev_flush { off });
      charge t t.costs.pmem_flush_line;
      add t.counters.c_flushes 1

let fence t device =
  match device with
  | Dram | Ssd -> ()
  | Pmem ->
      emit t Ev_fence;
      charge t t.costs.pmem_fence;
      add t.counters.c_fences 1

let alloc t device =
  if device = Pmem then emit t Ev_alloc;
  let cost =
    match device with
    | Dram | Ssd -> t.costs.dram_alloc
    | Pmem -> t.costs.pmem_alloc
  in
  charge t cost;
  add t.counters.c_allocs 1

let free t _device = add t.counters.c_frees 1

let pptr_deref t =
  charge t t.costs.pptr_deref;
  add t.counters.c_derefs 1

let ssd_read_page t =
  emit t Ev_ssd_read;
  charge t t.costs.ssd_read_page;
  add t.counters.c_ssd_reads 1

let ssd_write_page t =
  emit t Ev_ssd_write;
  charge t t.costs.ssd_write_page;
  add t.counters.c_ssd_writes 1

let note_fault t = add t.counters.c_faults 1
let note_retry t = add t.counters.c_retries 1

let pp_stats ppf s =
  Fmt.pf ppf
    "reads=%d writes=%d flushes=%d fences=%d allocs=%d frees=%d derefs=%d \
     ssd_r=%d ssd_w=%d bytes_r=%d bytes_w=%d faults=%d retries=%d"
    s.reads s.writes s.flushes s.fences s.allocs s.frees s.derefs s.ssd_reads
    s.ssd_writes s.bytes_read s.bytes_written s.faults s.retries
