(** Deterministic fault injection for the simulated device stack.

    A fault plan observes the {!Media} event stream and turns chosen
    events into failures:

    - a programmed {e crash point} ([crash_at]) cuts power at the n-th
      store / flush / fence / allocation, freezing the pool (with the
      plan's eviction and torn-line model applied to still-dirty lines)
      and raising {!Crash_point};
    - {e transient SSD errors} make page reads/writes raise {!Ssd_fault}
      with a configured probability, to be absorbed by retry loops
      (see [Diskdb.Buffer_pool]).

    All randomness comes from one seeded RNG: a (plan, workload) pair
    replays identically, which is what lets {!Crash_explorer} enumerate
    crash schedules exhaustively.  Injections are counted in the plan
    stats and in {!Media.stats}. *)

type crash_event = [ `Alloc | `Fence | `Flush | `Write ]

val pp_crash_event : Format.formatter -> crash_event -> unit

exception Crash_point of { event : crash_event; count : int }
(** Power failed at the [count]-th occurrence of [event].  The pool (when
    the plan was installed with one) is frozen: finish the reboot with
    {!Pool.crash} and rerun recovery. *)

exception Ssd_fault of [ `Read | `Write ]
(** Transient SSD page-access error. *)

type stats = {
  injected_crashes : int;
  ssd_read_faults : int;
  ssd_write_faults : int;
  stores_seen : int;
  flushes_seen : int;
  fences_seen : int;
  allocs_seen : int;
}

type t

val plan :
  ?crash_at:crash_event * int ->
  ?evict_prob:float ->
  ?torn_prob:float ->
  ?ssd_read_fail:float ->
  ?ssd_write_fail:float ->
  ?seed:int ->
  unit ->
  t
(** [crash_at (ev, n)] fires at the [n]-th occurrence of [ev] (1-based).
    [evict_prob]/[torn_prob] govern what happens to still-dirty lines at
    the cut (see {!Pool.freeze}).  [ssd_read_fail]/[ssd_write_fail] are
    per-access failure probabilities. *)

val install : ?pool:Pool.t -> Media.t -> t -> unit
(** Arm the plan on the media's hook slot (replacing any previous hook).
    Pass [pool] so an injected crash freezes its durable image; without
    it {!Crash_point} is raised without freezing. *)

val uninstall : Media.t -> unit
val stats : t -> stats
val triggered : t -> bool
(** The plan's crash point has fired (plans are one-shot: after firing
    the hook is inert). *)
