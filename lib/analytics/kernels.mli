(** Morsel-parallel graph kernels over an exported {!Csr} snapshot, plus
    serial textbook references for differential testing.

    Determinism contract: morsel boundaries and per-iteration partial
    counts are fixed fractions of the vertex set — independent of the
    worker count — and every merge folds partials in ascending morsel
    index, so each kernel's output is bitwise-identical at any
    parallelism (including float ranks).  The serial references use
    different accumulation orders on purpose; tests compare them within
    1e-9 (PageRank) or exactly (BFS levels, WCC labels).

    Kernels run on DRAM CSR arrays outside the pool allocator, so every
    morsel charges its touched bytes to the simulated media clock
    ({!Par.charge_dram}); parallel speedup is measured on per-worker
    meters, not wall time.  Each kernel opens an [analytics:<kernel>]
    trace span and observes [analytics_kernel_ns{kernel=...}]; BFS also
    observes the [analytics_frontier_size] histogram per round. *)

type bfs_result = {
  levels : int array;  (** -1 = unreached *)
  bfs_rounds : int;
  bfs_edges : int;  (** edges scanned across all rounds *)
}

type pr_result = {
  ranks : float array;
  pr_iterations : int;
  pr_residual : float;  (** final L1 residual *)
  pr_edges : int;
}

type wcc_result = {
  labels : int array;  (** component-minimum vertex index *)
  wcc_rounds : int;
  components : int;
  wcc_edges : int;
}

val bfs :
  ?pool:Exec.Task_pool.t ->
  ?grain:int ->
  Pmem.Media.t ->
  Csr.t ->
  source:int ->
  bfs_result
(** Frontier-based top-down BFS over out-edges from vertex index
    [source].  Per-morsel candidate buffers are merged (and levels
    assigned) serially in morsel order, so the next frontier is
    deterministic.  @raise Invalid_argument when [source] is out of
    range on a non-empty graph. *)

val pagerank :
  ?pool:Exec.Task_pool.t ->
  ?partials:int ->
  ?damping:float ->
  ?eps:float ->
  ?max_iters:int ->
  Pmem.Media.t ->
  Csr.t ->
  pr_result
(** Synchronous power iteration: [partials] (default 16) fixed source
    ranges scatter [damping * rank/deg] into private rank partials;
    fixed destination ranges then fold the partials in ascending range
    order, add the dangling + teleport base, and compute the L1
    residual.  Stops when the residual drops below [eps] (default 1e-8)
    or after [max_iters] (default 50) iterations; pass [eps:0.] to pin
    the iteration count for differentials. *)

val wcc : ?pool:Exec.Task_pool.t -> ?grain:int -> Pmem.Media.t -> Csr.t -> wcc_result
(** Weakly connected components: double-buffered min-label propagation
    over out- and in-edges with a fused pointer-jumping step
    ([l(l(v))]), iterated to fixpoint.  Labels converge to the smallest
    vertex index of each component. *)

(** {1 Serial references} (uncharged, textbook accumulation order) *)

val bfs_reference : Csr.t -> source:int -> int array
val pagerank_reference :
  ?damping:float -> ?eps:float -> ?max_iters:int -> Csr.t -> float array * int
(** Returns (ranks, iterations). *)

val wcc_reference : Csr.t -> int array
(** Union-find over the edge list, relabelled to component minima. *)
