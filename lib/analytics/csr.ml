module G = Storage.Graph_store
module Layout = Storage.Layout
module Mvto = Mvcc.Mvto
module Version = Mvcc.Version
module Media = Pmem.Media

type t = {
  n : int;
  m : int;
  snapshot_ts : int;
  node_label : int option;
  rel_label : int option;
  vertices : int array;
  vidx : int array;
  row_ptr : int array;
  col : int array;
  in_ptr : int array;
  in_col : int array;
}

(* Retry one chunk task on transient lock conflicts, keeping the caller's
   transaction (and thus the snapshot timestamp); the backoff is charged
   to the calling domain like Mvto.with_txn_retry's.  The task must be
   restartable: it owns disjoint output slots and overwrites them fully. *)
let with_chunk_retry media ~max_retries ~backoff_ns ~chunk f =
  let rng = Random.State.make [| 0xC54E; chunk |] in
  let rec go attempt =
    try f ()
    with Mvto.Abort reason when Mvto.classify_abort reason = Mvto.Transient ->
      if attempt >= max_retries then raise (Mvto.Abort reason);
      Media.note_retry media;
      let cap = backoff_ns * (1 lsl min attempt 10) in
      Media.charge media ((cap / 2) + Random.State.int rng (max 1 (cap / 2)));
      go (attempt + 1)
  in
  go 0

let export ?pool ?node_label ?rel_label ?(max_retries = 64) ?(backoff_ns = 500)
    mgr txn =
  let store = Mvto.store mgr in
  let media = G.media store in
  let reg = Media.registry media in
  Obs.Trace.with_span (Media.tracer media) "analytics:export" @@ fun () ->
  let sw = Par.stopwatch media pool in
  let nchunks = G.node_chunks store in
  let retry ~chunk f = with_chunk_retry media ~max_retries ~backoff_ns ~chunk f in
  (* Pass 1: visible vertex ids, one task per node chunk.  Chunk ids are
     dense (chunk * capacity + slot) and iterated ascending, so the
     chunk-order concat is ascending physical id order. *)
  let per_chunk = Array.make (max 1 nchunks) [||] in
  Par.run ?pool
    (List.init nchunks (fun ci () ->
         retry ~chunk:ci @@ fun () ->
         let acc = ref [] in
         G.iter_nodes_chunk store ci (fun id ->
             if
               (match node_label with
               | Some l -> G.node_label store id = l
               | None -> true)
               && Mvto.visible mgr txn (Version.Node, id)
             then acc := id :: !acc);
         per_chunk.(ci) <- Array.of_list (List.rev !acc)));
  let base = Array.make (nchunks + 1) 0 in
  for ci = 0 to nchunks - 1 do
    base.(ci + 1) <- base.(ci) + Array.length per_chunk.(ci)
  done;
  let n = base.(nchunks) in
  let vertices = Array.concat (Array.to_list (Array.sub per_chunk 0 nchunks)) in
  let id_bound = Array.fold_left (fun a id -> max a (id + 1)) 0 vertices in
  let vidx = Array.make id_bound (-1) in
  Array.iteri (fun i id -> vidx.(id) <- i) vertices;
  (* Pass 2: out-degrees.  Each chunk task owns the vertex range its
     chunk contributed; an edge counts iff the rel is visible, matches
     the label filter and its destination is in the vertex set. *)
  let deg = Array.make n 0 in
  let edge_ok rid =
    (match rel_label with Some l -> G.rel_label store rid = l | None -> true)
    && Mvto.visible mgr txn (Version.Rel, rid)
    &&
    let dst = G.rel_field store rid Layout.Rel.dst in
    dst < id_bound && vidx.(dst) >= 0
  in
  Par.run ?pool
    (List.init nchunks (fun ci () ->
         retry ~chunk:ci @@ fun () ->
         for k = base.(ci) to base.(ci + 1) - 1 do
           let d = ref 0 in
           G.iter_out store vertices.(k) (fun rid ->
               if edge_ok rid then incr d);
           deg.(k) <- !d
         done));
  let row_ptr = Array.make (n + 1) 0 in
  for k = 0 to n - 1 do
    row_ptr.(k + 1) <- row_ptr.(k) + deg.(k)
  done;
  let m = row_ptr.(n) in
  (* Pass 3: adjacency fill, same traversal order as the degree pass, so
     col.(row_ptr k .. row_ptr (k+1)) is the physical out-chain order —
     stable because splices prepend and the snapshot hides them. *)
  let col = Array.make m 0 in
  Par.run ?pool
    (List.init nchunks (fun ci () ->
         retry ~chunk:ci @@ fun () ->
         for k = base.(ci) to base.(ci + 1) - 1 do
           let cur = ref row_ptr.(k) in
           G.iter_out store vertices.(k) (fun rid ->
               if edge_ok rid then begin
                 col.(!cur) <- vidx.(G.rel_field store rid Layout.Rel.dst);
                 incr cur
               end)
         done));
  (* In-CSR by counting sort over the out-CSR: source-ascending within
     each in-list, deterministic and DRAM-only (charged to the caller). *)
  let in_ptr = Array.make (n + 1) 0 in
  for e = 0 to m - 1 do
    in_ptr.(col.(e) + 1) <- in_ptr.(col.(e) + 1) + 1
  done;
  for v = 0 to n - 1 do
    in_ptr.(v + 1) <- in_ptr.(v + 1) + in_ptr.(v)
  done;
  let cursor = Array.copy in_ptr in
  let in_col = Array.make m 0 in
  for v = 0 to n - 1 do
    for e = row_ptr.(v) to row_ptr.(v + 1) - 1 do
      let w = col.(e) in
      in_col.(cursor.(w)) <- v;
      cursor.(w) <- cursor.(w) + 1
    done
  done;
  Par.charge_dram media (((2 * m) + (2 * n)) * 8);
  let csr =
    {
      n;
      m;
      snapshot_ts = Mvcc.Txn.id txn;
      node_label;
      rel_label;
      vertices;
      vidx;
      row_ptr;
      col;
      in_ptr;
      in_col;
    }
  in
  Obs.Histogram.observe (Obs.Metrics.histogram reg "analytics_export_ns") (sw ());
  csr

let fnv_prime = 0x100000001b3

let fnv h x =
  let h = Int64.logxor h (Int64.of_int x) in
  Int64.mul h (Int64.of_int fnv_prime)

let fingerprint t =
  let h = ref 0xcbf29ce484222325L in
  let feed x = h := fnv !h x in
  feed t.n;
  feed t.m;
  feed (match t.node_label with None -> -1 | Some l -> l);
  feed (match t.rel_label with None -> -1 | Some l -> l);
  Array.iter feed t.vertices;
  Array.iter feed t.row_ptr;
  Array.iter feed t.col;
  Int64.to_int (Int64.shift_right_logical !h 1)

let equal a b =
  a.n = b.n && a.m = b.m && a.vertices = b.vertices && a.row_ptr = b.row_ptr
  && a.col = b.col && a.in_ptr = b.in_ptr && a.in_col = b.in_col

let out_degree t v = t.row_ptr.(v + 1) - t.row_ptr.(v)
let in_degree t v = t.in_ptr.(v + 1) - t.in_ptr.(v)

let index_of_node t id =
  if id < 0 || id >= Array.length t.vidx || t.vidx.(id) < 0 then None
  else Some t.vidx.(id)

let pp_stats ppf t =
  Format.fprintf ppf "csr{n=%d; m=%d; ts=%d; fp=%x}" t.n t.m t.snapshot_ts
    (fingerprint t)
