(** Snapshot-consistent CSR export (the DGAP-style traversal layout).

    The export walks the chunked node/rel tables under one MVTO
    transaction: a visible-vertex collect pass, an out-degree count
    pass and an adjacency fill pass, each morsel-parallel with one task
    per table chunk and per-chunk partials merged in ascending chunk
    index.  Merge order, vertex order (ascending physical node id) and
    adjacency order (physical out-chain order) are all independent of
    the worker count, so two exports of the same snapshot are
    bitwise-identical — {!fingerprint} is reproducible at any
    parallelism, including under a concurrent writer storm.

    Snapshot contract: visibility is decided solely by the export
    transaction's timestamp ([Mvto.visible], which bumps rts).  A chunk
    task that trips over a record locked by an in-flight writer backs
    off (charged to the sim clock) and retries the same chunk under the
    {e same} transaction, preserving the snapshot point.  The open
    transaction also pins the MVTO watermark, so no slot visible to the
    export can be physically reclaimed mid-walk. *)

type t = {
  n : int;  (** vertices *)
  m : int;  (** edges (directed) *)
  snapshot_ts : int;  (** export transaction's timestamp *)
  node_label : int option;  (** vertex filter, [None] = all labels *)
  rel_label : int option;  (** edge filter, [None] = all labels *)
  vertices : int array;  (** vertex index -> physical node id, ascending *)
  vidx : int array;  (** physical node id -> vertex index, -1 = absent *)
  row_ptr : int array;  (** out-CSR offsets, length n+1 *)
  col : int array;  (** out-neighbour vertex indices, length m *)
  in_ptr : int array;  (** in-CSR offsets, length n+1 *)
  in_col : int array;  (** in-neighbour vertex indices, src-ascending *)
}

val export :
  ?pool:Exec.Task_pool.t ->
  ?node_label:int ->
  ?rel_label:int ->
  ?max_retries:int ->
  ?backoff_ns:int ->
  Mvcc.Mvto.t ->
  Mvcc.Txn.t ->
  t
(** Export the snapshot visible to [txn].  An edge is included iff the
    relationship is visible, matches [rel_label] (when given) and both
    endpoints are in the vertex set.  Per-chunk lock conflicts retry up
    to [max_retries] (default 64) with capped exponential backoff
    charged to the media clock (base [backoff_ns], default 500).
    Observability: an [analytics:export] trace span and the
    [analytics_export_ns] histogram.

    @raise Mvcc.Mvto.Abort when a fatal abort or retry exhaustion
    surfaces from a chunk task. *)

val fingerprint : t -> int
(** FNV-1a-style digest over (n, m, snapshot metadata, vertices,
    row_ptr, col) — equal across worker counts for the same snapshot. *)

val equal : t -> t -> bool
(** Structural equality of the exported topology (vertex set and both
    adjacency layouts); ignores [snapshot_ts]. *)

val out_degree : t -> int -> int
val in_degree : t -> int -> int

val index_of_node : t -> int -> int option
(** Vertex index of a physical node id, if exported. *)

val pp_stats : Format.formatter -> t -> unit
