module Media = Pmem.Media
module Task_pool = Exec.Task_pool

let run ?pool tasks =
  match (pool, tasks) with
  | _, [] -> ()
  | None, _ -> List.iter (fun f -> f ()) tasks
  | Some p, _ ->
      let nw = Task_pool.size p in
      let groups = Array.make nw [] in
      List.iteri (fun i f -> groups.(i mod nw) <- f :: groups.(i mod nw)) tasks;
      let mu = Mutex.create () in
      let cv = Condition.create () in
      let arrived = ref 0 in
      (* A worker holding a group cannot pop a second one while blocked
         in the rendezvous, so each of the [nw] groups lands on its own
         domain and the per-worker meters observe real overlap. *)
      let composite group () =
        Mutex.lock mu;
        incr arrived;
        if !arrived = nw then Condition.broadcast cv
        else while !arrived < nw do Condition.wait cv mu done;
        Mutex.unlock mu;
        List.iter (fun f -> f ()) (List.rev group)
      in
      Task_pool.run p (List.map composite (Array.to_list groups))

let stopwatch media pool =
  let self0 = Media.self_meter_value media in
  let clock0 = Media.clock media in
  let workers =
    match pool with Some p -> Task_pool.worker_meters p | None -> []
  in
  let w0 = List.map (fun id -> Media.meter_value media id) workers in
  fun () ->
    let coord =
      match (self0, Media.self_meter_value media) with
      | Some a, Some b -> b - a
      | _ ->
          (* Unmetered caller: the global clock is the only signal, but
             under a pool it also counts worker charges, so attribute
             coordinator time only when running serial. *)
          if workers = [] then Media.clock media - clock0 else 0
    in
    let dw =
      List.fold_left2
        (fun acc id v0 -> max acc (Media.meter_value media id - v0))
        0 workers w0
    in
    coord + dw

let charge_dram media bytes =
  if bytes > 0 then Media.read media Media.Dram ~off:0 ~len:bytes

let morsels ~n ~grain =
  let grain = max 1 grain in
  let rec go lo acc =
    if lo >= n then List.rev acc
    else
      let hi = min n (lo + grain) in
      go hi ((lo, hi) :: acc)
  in
  go 0 []

let ranges ~n ~parts =
  let parts = max 1 (min parts (max 1 n)) in
  let base = n / parts and extra = n mod parts in
  let rec go i lo acc =
    if i >= parts then List.rev acc
    else
      let hi = lo + base + if i < extra then 1 else 0 in
      go (i + 1) hi ((lo, hi) :: acc)
  in
  if n = 0 then [] else go 0 0 []
