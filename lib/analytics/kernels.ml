module Media = Pmem.Media

type bfs_result = { levels : int array; bfs_rounds : int; bfs_edges : int }

type pr_result = {
  ranks : float array;
  pr_iterations : int;
  pr_residual : float;
  pr_edges : int;
}

type wcc_result = {
  labels : int array;
  wcc_rounds : int;
  components : int;
  wcc_edges : int;
}

(* Modeled DRAM traffic per unit of kernel work: a vertex visit touches
   its level/rank slot and row_ptr pair; an edge scan reads the col slot
   and the destination's slot. *)
let vertex_bytes = 16
let edge_bytes = 12

let observe_kernel media pool name f =
  let reg = Media.registry media in
  Obs.Trace.with_span (Media.tracer media) ("analytics:" ^ name) @@ fun () ->
  let sw = Par.stopwatch media pool in
  let r = f () in
  Obs.Histogram.observe
    (Obs.Metrics.histogram reg ~labels:[ ("kernel", name) ] "analytics_kernel_ns")
    (sw ());
  r

let bfs ?pool ?(grain = 256) media (csr : Csr.t) ~source =
  let n = csr.Csr.n in
  if n = 0 then { levels = [||]; bfs_rounds = 0; bfs_edges = 0 }
  else if source < 0 || source >= n then invalid_arg "Kernels.bfs: source"
  else
    observe_kernel media pool "bfs" @@ fun () ->
    let reg = Media.registry media in
    let frontier_hist = Obs.Metrics.histogram reg "analytics_frontier_size" in
    let row_ptr = csr.Csr.row_ptr and col = csr.Csr.col in
    let levels = Array.make n (-1) in
    levels.(source) <- 0;
    let frontier = ref [| source |] in
    let depth = ref 0 in
    let edges = ref 0 in
    while Array.length !frontier > 0 do
      let fr = !frontier in
      Obs.Histogram.observe frontier_hist (Array.length fr);
      let ms = Par.morsels ~n:(Array.length fr) ~grain in
      let cands = Array.make (List.length ms) [||] in
      Par.run ?pool
        (List.mapi
           (fun mi (lo, hi) () ->
             let acc = ref [] and scanned = ref 0 in
             for k = lo to hi - 1 do
               let v = fr.(k) in
               for e = row_ptr.(v) to row_ptr.(v + 1) - 1 do
                 incr scanned;
                 let w = col.(e) in
                 if levels.(w) < 0 then acc := w :: !acc
               done
             done;
             Par.charge_dram media
               (((hi - lo) * vertex_bytes) + (!scanned * edge_bytes));
             cands.(mi) <- Array.of_list (List.rev !acc))
           ms);
      (* Serial merge in morsel order: first claim wins, so the next
         frontier's order is worker-count independent. *)
      let next = ref [] and cnt = ref 0 in
      Array.iter
        (fun arr ->
          Array.iter
            (fun w ->
              if levels.(w) < 0 then begin
                levels.(w) <- !depth + 1;
                next := w :: !next;
                incr cnt
              end)
            arr)
        cands;
      Array.iter (fun fv -> edges := !edges + (row_ptr.(fv + 1) - row_ptr.(fv))) fr;
      Par.charge_dram media (!cnt * vertex_bytes);
      frontier := Array.of_list (List.rev !next);
      incr depth
    done;
    { levels; bfs_rounds = !depth; bfs_edges = !edges }

let pagerank ?pool ?(partials = 16) ?(damping = 0.85) ?(eps = 1e-8)
    ?(max_iters = 50) media (csr : Csr.t) =
  let n = csr.Csr.n in
  if n = 0 then { ranks = [||]; pr_iterations = 0; pr_residual = 0.; pr_edges = 0 }
  else
    observe_kernel media pool "pagerank" @@ fun () ->
    let row_ptr = csr.Csr.row_ptr and col = csr.Csr.col in
    let m = csr.Csr.m in
    let src_ranges = Par.ranges ~n ~parts:partials in
    let dst_ranges = Par.ranges ~n ~parts:partials in
    let np = List.length src_ranges in
    let part = Array.init np (fun _ -> Array.make n 0.) in
    let dang = Array.make np 0. in
    let res = Array.make (List.length dst_ranges) 0. in
    let rank = ref (Array.make n (1. /. float_of_int n)) in
    let next = ref (Array.make n 0.) in
    let iters = ref 0 and residual = ref infinity in
    while !iters < max_iters && !residual > eps do
      let r = !rank and nx = !next in
      (* Scatter: each fixed source range adds damped shares into its
         private partial and accumulates its dangling mass. *)
      Par.run ?pool
        (List.mapi
           (fun pi (lo, hi) () ->
             let p = part.(pi) in
             let d = ref 0. in
             for v = lo to hi - 1 do
               let deg = row_ptr.(v + 1) - row_ptr.(v) in
               if deg = 0 then d := !d +. r.(v)
               else begin
                 let share = damping *. r.(v) /. float_of_int deg in
                 for e = row_ptr.(v) to row_ptr.(v + 1) - 1 do
                   p.(col.(e)) <- p.(col.(e)) +. share
                 done
               end
             done;
             dang.(pi) <- !d;
             Par.charge_dram media
               (((hi - lo) * vertex_bytes)
               + ((row_ptr.(hi) - row_ptr.(lo)) * edge_bytes)))
           src_ranges);
      let dangling = Array.fold_left ( +. ) 0. dang in
      let base =
        ((1. -. damping) +. (damping *. dangling)) /. float_of_int n
      in
      (* Gather: fixed destination ranges fold the partials in ascending
         partial order (deterministic float sum), zero the consumed
         column slice for the next iteration and compute the local L1
         residual. *)
      Par.run ?pool
        (List.mapi
           (fun di (lo, hi) () ->
             let lres = ref 0. in
             for v = lo to hi - 1 do
               let acc = ref base in
               for pi = 0 to np - 1 do
                 acc := !acc +. part.(pi).(v);
                 part.(pi).(v) <- 0.
               done;
               nx.(v) <- !acc;
               lres := !lres +. abs_float (!acc -. r.(v))
             done;
             res.(di) <- !lres;
             Par.charge_dram media ((hi - lo) * (np + 2) * 8))
           dst_ranges);
      residual := Array.fold_left ( +. ) 0. res;
      rank := nx;
      next := r;
      incr iters
    done;
    {
      ranks = !rank;
      pr_iterations = !iters;
      pr_residual = !residual;
      pr_edges = m * !iters;
    }

let wcc ?pool ?(grain = 256) media (csr : Csr.t) =
  let n = csr.Csr.n in
  if n = 0 then { labels = [||]; wcc_rounds = 0; components = 0; wcc_edges = 0 }
  else
    observe_kernel media pool "wcc" @@ fun () ->
    let row_ptr = csr.Csr.row_ptr and col = csr.Csr.col in
    let in_ptr = csr.Csr.in_ptr and in_col = csr.Csr.in_col in
    let labels = ref (Array.init n (fun v -> v)) in
    let next = ref (Array.make n 0) in
    let ms = Par.morsels ~n ~grain in
    let changed = Array.make (List.length ms) false in
    let rounds = ref 0 and edges = ref 0 in
    let continue_ = ref true in
    while !continue_ do
      let l = !labels and nx = !next in
      Par.run ?pool
        (List.mapi
           (fun mi (lo, hi) () ->
             let ch = ref false in
             for v = lo to hi - 1 do
               (* min over self, pointer jump, and both edge directions;
                  reads only the old buffer, writes only nx.(v). *)
               let best = ref (min l.(v) l.(l.(v))) in
               for e = row_ptr.(v) to row_ptr.(v + 1) - 1 do
                 if l.(col.(e)) < !best then best := l.(col.(e))
               done;
               for e = in_ptr.(v) to in_ptr.(v + 1) - 1 do
                 if l.(in_col.(e)) < !best then best := l.(in_col.(e))
               done;
               nx.(v) <- !best;
               if !best <> l.(v) then ch := true
             done;
             changed.(mi) <- !ch;
             Par.charge_dram media
               (((hi - lo) * (vertex_bytes + 8))
               + ((row_ptr.(hi) - row_ptr.(lo) + in_ptr.(hi) - in_ptr.(lo))
                 * edge_bytes)))
           ms);
      edges := !edges + (2 * csr.Csr.m);
      labels := nx;
      next := l;
      incr rounds;
      continue_ := Array.exists (fun c -> c) changed
    done;
    let labels = !labels in
    let components = ref 0 in
    Array.iteri (fun v l -> if l = v then incr components) labels;
    {
      labels;
      wcc_rounds = !rounds;
      components = !components;
      wcc_edges = !edges;
    }

(* --- Serial references -------------------------------------------------- *)

let bfs_reference (csr : Csr.t) ~source =
  let n = csr.Csr.n in
  if n = 0 then [||]
  else begin
    let levels = Array.make n (-1) in
    let q = Queue.create () in
    levels.(source) <- 0;
    Queue.add source q;
    while not (Queue.is_empty q) do
      let v = Queue.pop q in
      for e = csr.Csr.row_ptr.(v) to csr.Csr.row_ptr.(v + 1) - 1 do
        let w = csr.Csr.col.(e) in
        if levels.(w) < 0 then begin
          levels.(w) <- levels.(v) + 1;
          Queue.add w q
        end
      done
    done;
    levels
  end

let pagerank_reference ?(damping = 0.85) ?(eps = 1e-8) ?(max_iters = 50)
    (csr : Csr.t) =
  let n = csr.Csr.n in
  if n = 0 then ([||], 0)
  else begin
    let rank = ref (Array.make n (1. /. float_of_int n)) in
    let iters = ref 0 and residual = ref infinity in
    while !iters < max_iters && !residual > eps do
      let r = !rank in
      let nx = Array.make n 0. in
      let dangling = ref 0. in
      for v = 0 to n - 1 do
        let deg = csr.Csr.row_ptr.(v + 1) - csr.Csr.row_ptr.(v) in
        if deg = 0 then dangling := !dangling +. r.(v)
        else begin
          let share = damping *. r.(v) /. float_of_int deg in
          for e = csr.Csr.row_ptr.(v) to csr.Csr.row_ptr.(v + 1) - 1 do
            nx.(csr.Csr.col.(e)) <- nx.(csr.Csr.col.(e)) +. share
          done
        end
      done;
      let base = ((1. -. damping) +. (damping *. !dangling)) /. float_of_int n in
      let resid = ref 0. in
      for v = 0 to n - 1 do
        nx.(v) <- nx.(v) +. base;
        resid := !resid +. abs_float (nx.(v) -. r.(v))
      done;
      residual := !resid;
      rank := nx;
      incr iters
    done;
    (!rank, !iters)
  end

let wcc_reference (csr : Csr.t) =
  let n = csr.Csr.n in
  let parent = Array.init n (fun v -> v) in
  let rec find v = if parent.(v) = v then v else find parent.(v) in
  let union a b =
    let ra = find a and rb = find b in
    if ra <> rb then
      if ra < rb then parent.(rb) <- ra else parent.(ra) <- rb
  in
  for v = 0 to n - 1 do
    for e = csr.Csr.row_ptr.(v) to csr.Csr.row_ptr.(v + 1) - 1 do
      union v csr.Csr.col.(e)
    done
  done;
  (* Roots are component minima because union always keeps the smaller
     root, matching the propagation kernel's fixpoint. *)
  Array.init n (fun v -> find v)
