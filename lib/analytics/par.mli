(** Morsel scheduling and simulated-time measurement shared by the CSR
    exporter, the kernels and the analytics bench.

    Tasks here cost simulated time but almost no real time, so letting
    pool workers race on the shared queue would leave a whole batch on
    whichever domain wakes first and per-worker meters would report no
    overlap.  {!run} therefore pins one round-robin task group to each
    worker behind a rendezvous barrier (the schedule the recovery
    orchestrator uses), so max-per-worker busy time reflects a genuine
    parallel schedule. *)

val run : ?pool:Exec.Task_pool.t -> (unit -> unit) list -> unit
(** Run the tasks serially ([pool] absent) or one round-robin group per
    worker domain behind a rendezvous barrier.  Tasks must own disjoint
    output slots; errors re-raise once in the caller. *)

val stopwatch : Pmem.Media.t -> Exec.Task_pool.t option -> unit -> int
(** [stopwatch media pool] captures meter baselines and returns a
    closure yielding elapsed simulated ns: the calling domain's meter
    delta (global-clock delta when no meter is installed and no pool is
    in play) plus the max worker-meter delta — the parallel-schedule
    elapsed time, not the busy-time sum. *)

val charge_dram : Pmem.Media.t -> int -> unit
(** Charge a DRAM read of [bytes] to the calling domain: kernels run on
    DRAM CSR arrays outside the pool allocator, so each morsel bills its
    touched bytes explicitly to stay visible on the sim clock. *)

val morsels : n:int -> grain:int -> (int * int) list
(** Split [0, n) into fixed-size ranges of [grain] items, in ascending
    order — independent of worker count, so per-morsel partials merged
    in morsel order are deterministic at any parallelism. *)

val ranges : n:int -> parts:int -> (int * int) list
(** Split [0, n) into at most [parts] near-equal contiguous ranges, in
    ascending order (for per-range partial arrays whose memory must not
    scale with morsel count). *)
