(** Secondary index on (node label, property key) with selectable
    placement, plus a persistent index catalog (Section 4.2).

    The descriptor is the index's persistent anchor; recovery depends on
    the placement: hybrid rebuilds its DRAM inner levels from the PMem
    leaf chain, persistent attaches directly, volatile is re-inserted by
    the caller from primary data. *)

type t

val create :
  Pmem.Pool.t -> placement:Node_store.placement -> label:int -> key:int -> t

val open_ : Pmem.Pool.t -> desc:int -> rebuild:(t -> unit) -> t
(** Reattach an index from its descriptor after a crash.  [rebuild] is
    invoked for volatile placement with the fresh empty index. *)

val descriptor : t -> int
val placement : t -> Node_store.placement
val label_code : t -> int
val key_code : t -> int
val tree : t -> Btree.t
val insert : t -> Storage.Value.t -> int -> unit
val remove : t -> Storage.Value.t -> int -> bool

val remove_entry : t -> int64 -> int -> bool
(** Removal by already-encoded key ({!Storage.Value.index_key}), for
    recovery reconciliation; re-syncs the descriptor when the removal
    moved the tree's root or first leaf. *)

val lookup : t -> Storage.Value.t -> int list
val iter_range :
  t -> lo:Storage.Value.t -> hi:Storage.Value.t -> (int -> unit) -> unit

val count : t -> int

(** {1 Recovery orchestration}

    Descriptor accessors so a recovery subsystem can stage the rebuild
    itself: read the anchors, perform the charged leaf reads on a task
    pool, then wrap the finished tree with {!attach_tree}. *)

val desc_placement : Pmem.Pool.t -> desc:int -> Node_store.placement
val desc_root : Pmem.Pool.t -> desc:int -> int
val desc_first_leaf : Pmem.Pool.t -> desc:int -> int

val attach_tree : Pmem.Pool.t -> desc:int -> Btree.t -> t
(** Wrap an externally built tree with the descriptor's identity fields;
    the caller guarantees it matches the descriptor's placement and leaf
    chain. *)

val lazy_attach : Pmem.Pool.t -> desc:int -> warm:(unit -> Btree.t) -> t
(** Attach without building the tree; the first access runs [warm]
    (checkpoint restore or full rebuild) and re-syncs the descriptor.
    Concurrent touchers block with charged capped backoff. *)

val warmed : t -> bool
val ensure_warm : t -> unit

(** {1 Checkpoint epoch stamps} *)

val set_epoch_cache : t -> int -> unit
(** Cache the global checkpoint epoch; 0 (the default) disables
    stamping. *)

val epoch_stamp : t -> int
val desc_epoch : Pmem.Pool.t -> desc:int -> int
(** Persistent epoch stamp at descriptor offset 40; <= a checkpoint's
    snapshot epoch means the index is unchanged since that checkpoint. *)

val mark_desc : Pmem.Pool.t -> desc:int -> int -> unit
(** Failure-atomically stamp a descriptor's epoch directly (recovery
    reconciliation mutates the tree without an index handle). *)

val sync_meta : t -> unit
(** Persist the descriptor's root / first-leaf anchors from the current
    tree.  Recovery calls this after swapping in a rebuilt tree whose
    root (or, on a corrupt-leaf fallback rebuild, whole leaf chain) is
    freshly allocated. *)

(** Persistent list of index descriptors, anchored in a pool root slot,
    so all indexes can be found and recovered after a restart. *)
module Catalog : sig
  val max_entries : int
  val create : Pmem.Pool.t -> root_slot:int -> int
  val attach : Pmem.Pool.t -> root_slot:int -> int
  val add : Pmem.Pool.t -> catalog:int -> int -> unit
  val list : Pmem.Pool.t -> catalog:int -> int list
end
