(* B+-tree core over an abstract node store (Section 4.2).

   Keys and values are int64 (property values are indexed by their 64-bit
   payload, values are record ids).  Duplicate keys are supported: inserts
   descend by upper bound, searches descend by lower bound and then scan
   forward through the leaf chain, so all duplicates are found even when
   they span leaves.

   Deletion is by (key, value) pair and does not rebalance (lazy deletion:
   separators remain valid upper bounds, empty leaves stay chained).  This
   matches the secondary-index role: the index over-approximates and the
   MVCC layer re-checks visibility anyway.

   Persistence ordering on splits keeps the leaf chain recoverable: the new
   right leaf is persisted before the left leaf's shrunken key count and
   new [next] are, so a crash either shows the old single leaf or the
   complete pair. *)

module S = Node_store

type t = {
  s : S.t;
  mutable root : int;
  mutable first_leaf : int;
  mutable count : int;
}

let create s =
  let leaf = s.S.alloc ~leaf:true in
  { s; root = leaf; first_leaf = leaf; count = 0 }

(* Reattach to an existing tree (after recovery). *)
let attach s ~root ~first_leaf ~count = { s; root; first_leaf; count }

let store t = t.s
let root t = t.root
let first_leaf t = t.first_leaf
let count t = t.count

(* first index in [0, n) with keys.(i) >= key *)
let lower_bound s h key =
  let n = s.S.nkeys h in
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Int64.compare (s.S.get_key h mid) key < 0 then lo := mid + 1
    else hi := mid
  done;
  !lo

(* first index in [0, n) with keys.(i) > key *)
let upper_bound s h key =
  let n = s.S.nkeys h in
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Int64.compare (s.S.get_key h mid) key <= 0 then lo := mid + 1
    else hi := mid
  done;
  !lo

let child s h i = Int64.to_int (s.S.get_val h i)
let set_child s h i c = s.S.set_val h i (Int64.of_int c)

(* shift keys[i..n) and vals one to the right (leaf) *)
let leaf_shift_right s h i =
  let n = s.S.nkeys h in
  for j = n downto i + 1 do
    s.S.set_key h j (s.S.get_key h (j - 1));
    s.S.set_val h j (s.S.get_val h (j - 1))
  done

let leaf_insert_at s h i key v =
  leaf_shift_right s h i;
  s.S.set_key h i key;
  s.S.set_val h i v;
  s.S.set_nkeys h (s.S.nkeys h + 1)

(* Split a full leaf; returns (separator, right handle). *)
let leaf_split s h =
  let n = s.S.nkeys h in
  let mid = n / 2 in
  let r = s.S.alloc ~leaf:true in
  for j = mid to n - 1 do
    s.S.set_key r (j - mid) (s.S.get_key h j);
    s.S.set_val r (j - mid) (s.S.get_val h j)
  done;
  s.S.set_nkeys r (n - mid);
  s.S.set_next r (s.S.get_next h);
  s.S.persist r;
  s.S.set_nkeys h mid;
  s.S.set_next h r;
  s.S.persist h;
  (s.S.get_key r 0, r)

let inner_insert_at s h i sep c =
  let n = s.S.nkeys h in
  for j = n downto i + 1 do
    s.S.set_key h j (s.S.get_key h (j - 1))
  done;
  for j = n + 1 downto i + 2 do
    set_child s h j (child s h (j - 1))
  done;
  s.S.set_key h i sep;
  set_child s h (i + 1) c;
  s.S.set_nkeys h (n + 1);
  s.S.persist h

(* Split an over-full inner node (called before it would overflow):
   redistribute keys/children including the pending (sep, c) at slot [i];
   returns (promoted key, right handle). *)
let inner_split_insert s h i sep c =
  let n = s.S.nkeys h in
  (* gather into temp arrays of n+1 keys / n+2 children *)
  let keys = Array.make (n + 1) 0L and kids = Array.make (n + 2) 0 in
  for j = 0 to n - 1 do
    keys.(if j < i then j else j + 1) <- s.S.get_key h j
  done;
  keys.(i) <- sep;
  for j = 0 to n do
    kids.(if j <= i then j else j + 1) <- child s h j
  done;
  kids.(i + 1) <- c;
  let total = n + 1 in
  let mid = total / 2 in
  let promoted = keys.(mid) in
  (* left keeps keys[0..mid-1], children[0..mid] *)
  for j = 0 to mid - 1 do
    s.S.set_key h j keys.(j)
  done;
  for j = 0 to mid do
    set_child s h j kids.(j)
  done;
  s.S.set_nkeys h mid;
  (* right gets keys[mid+1..], children[mid+1..] *)
  let r = s.S.alloc ~leaf:false in
  for j = mid + 1 to total - 1 do
    s.S.set_key r (j - mid - 1) keys.(j)
  done;
  for j = mid + 1 to total do
    set_child s r (j - mid - 1) kids.(j)
  done;
  s.S.set_nkeys r (total - 1 - mid);
  s.S.persist r;
  s.S.persist h;
  (promoted, r)

let rec ins t h key v =
  let s = t.s in
  s.S.touch h;
  if s.S.is_leaf h then begin
    if s.S.nkeys h < S.fanout then begin
      leaf_insert_at s h (upper_bound s h key) key v;
      s.S.persist h;
      None
    end
    else begin
      let sep, r = leaf_split s h in
      let target = if Int64.compare key sep >= 0 then r else h in
      leaf_insert_at s target (upper_bound s target key) key v;
      s.S.persist target;
      Some (sep, r)
    end
  end
  else
    let ci = upper_bound s h key in
    match ins t (child s h ci) key v with
    | None -> None
    | Some (sep, c) ->
        if s.S.nkeys h < S.fanout then begin
          inner_insert_at s h ci sep c;
          None
        end
        else Some (inner_split_insert s h ci sep c)

let insert t key v =
  (match ins t t.root key v with
  | None -> ()
  | Some (sep, r) ->
      let s = t.s in
      let nr = s.S.alloc ~leaf:false in
      s.S.set_key nr 0 sep;
      set_child s nr 0 t.root;
      set_child s nr 1 r;
      s.S.set_nkeys nr 1;
      s.S.persist nr;
      t.root <- nr);
  t.count <- t.count + 1

(* Descend to the leftmost leaf that may contain [key]. *)
let rec find_leaf t h key =
  let s = t.s in
  s.S.touch h;
  if s.S.is_leaf h then h
  else find_leaf t (child s h (lower_bound s h key)) key

(* Iterate all (key, value) pairs with lo <= key <= hi, in key order. *)
let iter_range t ~lo ~hi f =
  let s = t.s in
  let rec walk h start ~touch =
    if h <> 0 then begin
      if touch then s.S.touch h;
      let n = s.S.nkeys h in
      let rec go i =
        if i >= n then walk (s.S.get_next h) 0 ~touch:true
        else
          let k = s.S.get_key h i in
          if Int64.compare k hi > 0 then ()
          else begin
            f k (s.S.get_val h i);
            go (i + 1)
          end
      in
      go start
    end
  in
  let leaf = find_leaf t t.root lo in
  (* [find_leaf] already touched the first leaf *)
  walk leaf (lower_bound t.s leaf lo) ~touch:false

let lookup t key =
  let acc = ref [] in
  iter_range t ~lo:key ~hi:key (fun _ v -> acc := v :: !acc);
  List.rev !acc

let iter_all t f = iter_range t ~lo:Int64.min_int ~hi:Int64.max_int f

(* Remove one occurrence of (key, v); returns whether found. *)
let remove t key v =
  let s = t.s in
  let rec walk h =
    if h = 0 then false
    else begin
      s.S.touch h;
      let n = s.S.nkeys h in
      let rec go i =
        if i >= n then
          (* key may continue in the next leaf *)
          if n > 0 && Int64.compare (s.S.get_key h (n - 1)) key > 0 then false
          else walk (s.S.get_next h)
        else
          let k = s.S.get_key h i in
          if Int64.compare k key > 0 then false
          else if Int64.equal k key && Int64.equal (s.S.get_val h i) v then begin
            for j = i to n - 2 do
              s.S.set_key h j (s.S.get_key h (j + 1));
              s.S.set_val h j (s.S.get_val h (j + 1))
            done;
            s.S.set_nkeys h (n - 1);
            s.S.persist h;
            t.count <- t.count - 1;
            true
          end
          else go (i + 1)
      in
      go 0
    end
  in
  let leaf = find_leaf t t.root key in
  walk leaf

let height t =
  let s = t.s in
  let rec go h acc = if s.S.is_leaf h then acc else go (child s h 0) (acc + 1) in
  go t.root 1

(* Rebuild the inner levels from the persistent leaf chain - the hybrid
   index recovery path (paper Section 7.4: ~8 ms vs a 671 ms full
   rebuild).  Split into primitives so recovery can parallelise the
   leaf reads across task-pool domains:

   - [leaf_handles]: walk the chain via uncharged next-pointer reads
     (pointer chasing only, no payload);
   - [read_leaf_info]: charge one node touch and read min key + entry
     count — independent per leaf, safe to run concurrently over
     disjoint slices of the handle array;
   - [build_from_leaf_infos]: serial DRAM inner-node construction (the
     node store's heap allocator is not thread-safe). *)

type leaf_info = {
  li_handle : int;
  li_min : int64;
  li_entries : int;
  li_pairs : (int64 * int64) array; (* key/value pairs, in leaf order *)
}

let leaf_handles s ~first_leaf =
  (* [get_next] is an uncharged pointer read in every backend; the
     payload charge happens in [read_leaf_info]'s touch *)
  let acc = ref [] and h = ref first_leaf in
  while !h <> 0 do
    acc := !h :: !acc;
    h := s.S.get_next !h
  done;
  Array.of_list (List.rev !acc)

let read_leaf_info s h =
  s.S.touch h;
  let n = s.S.nkeys h in
  {
    li_handle = h;
    li_min = (if n > 0 then s.S.get_key h 0 else Int64.min_int);
    li_entries = n;
    li_pairs = Array.init n (fun i -> (s.S.get_key h i, s.S.get_val h i));
  }

let build_from_leaf_infos s ~first_leaf infos =
  let leaves =
    Array.to_list (Array.map (fun li -> (li.li_min, li.li_handle)) infos)
  in
  let entries = Array.fold_left (fun a li -> a + li.li_entries) 0 infos in
  let rec build level =
    match level with
    | [] -> invalid_arg "Btree.build_from_leaf_infos: empty chain"
    | [ (_, h) ] -> h
    | _ ->
        let group = S.fanout + 1 in
        let rec parents acc = function
          | [] -> List.rev acc
          | batch ->
              let len = List.length batch in
              (* never leave a trailing parent with a single child *)
              let take =
                if len - group = 1 then group - 1 else min group len
              in
              let rec split i xs taken =
                if i = take then (List.rev taken, xs)
                else
                  match xs with
                  | x :: rest -> split (i + 1) rest (x :: taken)
                  | [] -> (List.rev taken, [])
              in
              let mine, rest = split 0 batch [] in
              let p = s.S.alloc ~leaf:false in
              List.iteri
                (fun i (mk, ch) ->
                  if i > 0 then s.S.set_key p (i - 1) mk;
                  set_child s p i ch)
                mine;
              s.S.set_nkeys p (List.length mine - 1);
              let pmin = fst (List.hd mine) in
              parents ((pmin, p) :: acc) rest
        in
        build (parents [] level)
  in
  let root = build leaves in
  attach s ~root ~first_leaf ~count:entries

let rebuild_from_leaves s ~first_leaf =
  let handles = leaf_handles s ~first_leaf in
  let infos = Array.map (fun h -> read_leaf_info s h) handles in
  (build_from_leaf_infos s ~first_leaf infos, Array.length handles)

(* Structural invariant checks, used by property tests. *)
let rec check_node t h ~lo ~hi depth =
  let s = t.s in
  let n = s.S.nkeys h in
  for i = 0 to n - 1 do
    let k = s.S.get_key h i in
    if Int64.compare k lo < 0 || Int64.compare k hi > 0 then
      failwith "btree: key out of separator range";
    if i > 0 && Int64.compare (s.S.get_key h (i - 1)) k > 0 then
      failwith "btree: keys unsorted"
  done;
  if s.S.is_leaf h then depth
  else begin
    if n = 0 then failwith "btree: empty inner node";
    let d = ref (-1) in
    for i = 0 to n do
      let clo = if i = 0 then lo else s.S.get_key h (i - 1) in
      let chi = if i = n then hi else s.S.get_key h i in
      let cd = check_node t (child s h i) ~lo:clo ~hi:chi (depth + 1) in
      if !d = -1 then d := cd
      else if !d <> cd then failwith "btree: leaves at different depths"
    done;
    !d
  end

let check_invariants t =
  ignore (check_node t t.root ~lo:Int64.min_int ~hi:Int64.max_int 0);
  (* leaf chain sorted and complete *)
  let s = t.s in
  let h = ref t.first_leaf and prev = ref Int64.min_int and seen = ref 0 in
  while !h <> 0 do
    let n = s.S.nkeys !h in
    for i = 0 to n - 1 do
      let k = s.S.get_key !h i in
      if Int64.compare !prev k > 0 then failwith "btree: leaf chain unsorted";
      prev := k;
      incr seen
    done;
    h := s.S.get_next !h
  done;
  if !seen <> t.count then failwith "btree: count mismatch"
