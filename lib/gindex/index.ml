(* Secondary index on (node label, property key) with selectable placement
   (Section 4.2, "Hybrid Indexes") plus a persistent index catalog.

   The descriptor is the index's persistent anchor (like a PMDK root
   object):

     0   placement (u64: 0 volatile, 1 persistent, 2 hybrid)
     8   root       (valid for persistent placement)
     16  first leaf (valid for persistent and hybrid: recovery walks it)
     24  label code
     32  key code
     40  checkpoint epoch stamp (persisted before any tree mutation)

   Recovery:
   - hybrid: rebuild the DRAM inner levels from the persistent leaf chain
     (fast path measured in Fig. 8);
   - persistent: attach directly (root and leaves are durable);
   - volatile: the caller re-inserts everything from the node table (the
     671 ms baseline of Fig. 8). *)

module Pool = Pmem.Pool
module Alloc = Pmem.Alloc
module Media = Pmem.Media

type t = {
  mutable tree : Btree.t;
  desc : int;
  pool : Pool.t;
  placement : Node_store.placement;
  label : int; (* label dictionary code *)
  key : int; (* property-key dictionary code *)
  (* checkpoint epoch cache (0 = stamping disabled) and lazy-warm state:
     while not [warmed], [tree] is a placeholder and the first access
     runs [warm_fn] (checkpoint restore or full rebuild). *)
  mutable cur_epoch : int;
  mutable warmed : bool;
  mutable warm_fn : unit -> Btree.t;
  warm_mu : Mutex.t;
}

let desc_bytes = 64

let placement_tag = function
  | Node_store.Volatile -> 0
  | Node_store.Persistent -> 1
  | Node_store.Hybrid -> 2

let placement_of_tag = function
  | 0 -> Node_store.Volatile
  | 1 -> Node_store.Persistent
  | 2 -> Node_store.Hybrid
  | n -> invalid_arg (Printf.sprintf "Index: bad placement tag %d" n)

let mk ~tree ~desc ~pool ~placement ~label ~key =
  {
    tree;
    desc;
    pool;
    placement;
    label;
    key;
    cur_epoch = 0;
    warmed = true;
    warm_fn = (fun () -> tree);
    warm_mu = Mutex.create ();
  }

let sync_meta t =
  if t.placement = Node_store.Persistent then
    Pool.atomic_write_int t.pool (t.desc + 8) (Btree.root t.tree);
  Pool.atomic_write_int t.pool (t.desc + 16) (Btree.first_leaf t.tree)

(* ---- checkpoint epoch + lazy warm ---------------------------------- *)

let set_epoch_cache t e = t.cur_epoch <- e
let desc_epoch pool ~desc = Pool.raw_read_int pool (desc + 40)
let mark_desc pool ~desc e = Pool.atomic_write_int pool (desc + 40) e
let epoch_stamp t = desc_epoch t.pool ~desc:t.desc

(* Stamp the descriptor before mutating the tree (mark-before-mutate). *)
let mark t =
  if t.cur_epoch > 0 && epoch_stamp t < t.cur_epoch then
    Pool.atomic_write_int t.pool (t.desc + 40) t.cur_epoch

let warmed t = t.warmed

let ensure_warm t =
  if not t.warmed then begin
    (if not (Mutex.try_lock t.warm_mu) then
       let media = Pool.media t.pool in
       let rng = Random.State.make [| 0x1D8A; t.desc |] in
       let rec spin cap =
         if not (Mutex.try_lock t.warm_mu) then begin
           Media.charge media ((cap / 2) + Random.State.int rng (max 1 (cap / 2)));
           Domain.cpu_relax ();
           spin (min (cap * 2) 4096)
         end
       in
       spin 64);
    Fun.protect ~finally:(fun () -> Mutex.unlock t.warm_mu) @@ fun () ->
    if not t.warmed then begin
      t.tree <- t.warm_fn ();
      sync_meta t;
      t.warmed <- true
    end
  end

let create pool ~placement ~label ~key =
  let store = Node_store.make placement ~pool ~media:(Pool.media pool) in
  let tree = Btree.create store in
  let desc = Alloc.alloc pool desc_bytes in
  Pool.write_int pool desc (placement_tag placement);
  Pool.write_int pool (desc + 24) label;
  Pool.write_int pool (desc + 32) key;
  (* the extent may be recycled: a garbage epoch stamp could read as
     "unchanged since the checkpoint" *)
  Pool.write_int pool (desc + 40) 0;
  Pool.persist pool ~off:desc ~len:desc_bytes;
  let t = mk ~tree ~desc ~pool ~placement ~label ~key in
  sync_meta t;
  t

let descriptor t = t.desc
let placement t = t.placement
let label_code t = t.label
let key_code t = t.key

let tree t =
  ensure_warm t;
  t.tree

let insert t key v =
  ensure_warm t;
  mark t;
  let root = Btree.root t.tree in
  Btree.insert t.tree (Storage.Value.index_key key) (Int64.of_int v);
  if Btree.root t.tree <> root then sync_meta t

let remove t key v =
  ensure_warm t;
  mark t;
  Btree.remove t.tree (Storage.Value.index_key key) (Int64.of_int v)

(* Removal by already-encoded key, for recovery reconciliation (which
   reads raw keys out of the persistent leaves and has no [Value.t] to
   hand).  Unlike [remove], re-syncs the descriptor when the structural
   change moved the root or the first leaf. *)
let remove_entry t key v =
  ensure_warm t;
  mark t;
  let root = Btree.root t.tree and first = Btree.first_leaf t.tree in
  let r = Btree.remove t.tree key (Int64.of_int v) in
  if Btree.root t.tree <> root || Btree.first_leaf t.tree <> first then
    sync_meta t;
  r

let lookup t key =
  ensure_warm t;
  List.map Int64.to_int (Btree.lookup t.tree (Storage.Value.index_key key))

let iter_range t ~lo ~hi f =
  ensure_warm t;
  Btree.iter_range t.tree ~lo:(Storage.Value.index_key lo)
    ~hi:(Storage.Value.index_key hi) (fun _k v -> f (Int64.to_int v))

let count t =
  ensure_warm t;
  Btree.count t.tree

(* Reattach an index after a crash.  [rebuild] is invoked for volatile
   placement (and as a fallback) to re-insert all entries from the primary
   data; it receives the fresh, empty index. *)
let open_ pool ~desc ~rebuild =
  let placement = placement_of_tag (Pool.read_int pool desc) in
  let label = Pool.read_int pool (desc + 24) in
  let key = Pool.read_int pool (desc + 32) in
  match placement with
  | Node_store.Persistent ->
      let store = Node_store.make placement ~pool ~media:(Pool.media pool) in
      let root = Pool.read_int pool (desc + 8) in
      let first_leaf = Pool.read_int pool (desc + 16) in
      (* everything is durable; only the entry count is recomputed *)
      let count = ref 0 in
      let t0 = Btree.attach store ~root ~first_leaf ~count:0 in
      Btree.iter_all t0 (fun _ _ -> incr count);
      let tree = Btree.attach store ~root ~first_leaf ~count:!count in
      mk ~tree ~desc ~pool ~placement ~label ~key
  | Node_store.Hybrid ->
      let store = Node_store.make placement ~pool ~media:(Pool.media pool) in
      let first_leaf = Pool.read_int pool (desc + 16) in
      let tree, _ = Btree.rebuild_from_leaves store ~first_leaf in
      mk ~tree ~desc ~pool ~placement ~label ~key
  | Node_store.Volatile ->
      let t =
        let store = Node_store.make placement ~pool ~media:(Pool.media pool) in
        let tree = Btree.create store in
        mk ~tree ~desc ~pool ~placement ~label ~key
      in
      rebuild t;
      t

(* Descriptor accessors for recovery orchestration: let the recovery
   subsystem read placement and chain anchors up front, run the charged
   leaf reads on a task pool, and wrap the externally built tree. *)
let desc_placement pool ~desc = placement_of_tag (Pool.read_int pool desc)
let desc_root pool ~desc = Pool.read_int pool (desc + 8)
let desc_first_leaf pool ~desc = Pool.read_int pool (desc + 16)

(* Wrap an externally built tree with the descriptor's identity fields.
   The caller guarantees the tree matches the descriptor's placement and
   leaf chain (Recovery builds it via Btree.build_from_leaf_infos or
   re-insertion). *)
let attach_tree pool ~desc tree =
  let placement = desc_placement pool ~desc in
  let label = Pool.read_int pool (desc + 24) in
  let key = Pool.read_int pool (desc + 32) in
  mk ~tree ~desc ~pool ~placement ~label ~key

(* Attach without building the tree: the first access (or an explicit
   {!ensure_warm}) runs [warm], which must return the fully built tree.
   The placeholder is a throwaway volatile leaf that no operation can
   observe. *)
let lazy_attach pool ~desc ~warm =
  let placement = desc_placement pool ~desc in
  let label = Pool.read_int pool (desc + 24) in
  let key = Pool.read_int pool (desc + 32) in
  let placeholder =
    Btree.create (Node_store.make Node_store.Volatile ~pool ~media:(Pool.media pool))
  in
  let t = mk ~tree:placeholder ~desc ~pool ~placement ~label ~key in
  t.warm_fn <- warm;
  t.warmed <- false;
  t

(* --- Catalog ------------------------------------------------------------ *)

(* Persistent list of index descriptors so that all indexes can be found
   and recovered after a restart.  Layout: count u64; then descriptor
   offsets.  The catalog's own offset lives in a caller-chosen root slot. *)
module Catalog = struct
  let max_entries = 64
  let bytes = 8 + (8 * max_entries)

  let create pool ~root_slot =
    let off = Alloc.alloc pool bytes in
    Pool.write_int pool off 0;
    Pool.persist pool ~off ~len:8;
    Alloc.set_root pool root_slot off;
    off

  let attach pool ~root_slot = Alloc.get_root pool root_slot

  let add pool ~catalog desc =
    let n = Pool.read_int pool catalog in
    if n >= max_entries then failwith "Index.Catalog: full";
    Pool.write_int pool (catalog + 8 + (8 * n)) desc;
    Pool.persist pool ~off:(catalog + 8 + (8 * n)) ~len:8;
    Pool.atomic_write_int pool catalog (n + 1)

  let list pool ~catalog =
    let n = Pool.read_int pool catalog in
    List.init n (fun i -> Pool.read_int pool (catalog + 8 + (8 * i)))
end
