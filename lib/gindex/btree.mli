(** B+-tree core over an abstract node store (Section 4.2).

    Keys and values are [int64]; duplicate keys are supported (inserts
    descend by upper bound, searches by lower bound and then scan the
    leaf chain).  Deletion is by (key, value) pair without rebalancing
    (lazy deletion - the index over-approximates and the MVCC layer
    re-checks visibility). *)

type t

val create : Node_store.t -> t
val attach : Node_store.t -> root:int -> first_leaf:int -> count:int -> t
(** Reattach to an existing tree (after recovery). *)

val store : t -> Node_store.t
val root : t -> int
val first_leaf : t -> int
val count : t -> int
val insert : t -> int64 -> int64 -> unit
val remove : t -> int64 -> int64 -> bool
(** Remove one occurrence of the pair; [true] when found. *)

val lookup : t -> int64 -> int64 list
(** All values stored under the key, in insertion-scan order. *)

val iter_range : t -> lo:int64 -> hi:int64 -> (int64 -> int64 -> unit) -> unit
(** All pairs with [lo <= key <= hi], in key order. *)

val iter_all : t -> (int64 -> int64 -> unit) -> unit
val height : t -> int

val rebuild_from_leaves : Node_store.t -> first_leaf:int -> t * int
(** Rebuild the inner levels from the persistent leaf chain - the hybrid
    index recovery fast path (Fig. 8).  Returns the tree and the number
    of leaves walked. *)

(** {1 Staged leaf-chain rebuild}

    {!rebuild_from_leaves} decomposed so recovery can parallelise the
    charged leaf reads: {!leaf_handles} (uncharged pointer walk), then
    {!read_leaf_info} per handle — independent, safe concurrently over
    disjoint slices — then the serial {!build_from_leaf_infos} (the node
    store's heap allocator is not thread-safe). *)

type leaf_info = {
  li_handle : int;
  li_min : int64;
  li_entries : int;
  li_pairs : (int64 * int64) array;  (** key/value pairs, in leaf order *)
}

val leaf_handles : Node_store.t -> first_leaf:int -> int array
val read_leaf_info : Node_store.t -> int -> leaf_info
(** Charges one node touch; reads the leaf's min key, entry count and
    contents (so recovery can reconcile against the node table without
    a second charged pass over the leaves). *)

val build_from_leaf_infos :
  Node_store.t -> first_leaf:int -> leaf_info array -> t
(** Serial inner-level construction from per-leaf summaries, in chain
    order.  Identical result to {!rebuild_from_leaves}. *)

val check_invariants : t -> unit
(** Structural validation (sorted keys, separator bounds, uniform leaf
    depth, complete chain); raises [Failure] on violation.  Test use. *)
