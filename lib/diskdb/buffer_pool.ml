(* Buffer-pool model for the disk baseline (Section 7.3).

   The paper's disk baseline is an open-source native graph database with
   its primary data on SSD and a DRAM index, reported for hot runs.  What
   distinguishes such a system from the PMem engine architecturally:

   - block-oriented access: every record access goes through a page
     cache; a miss costs an SSD page read (and possibly a dirty-page
     write-back on eviction);
   - even a hit pays the page-cache indirection (hash lookup, pin/unpin,
     in-page offset translation) instead of direct byte-addressing -
     this is why a hot disk system still trails the PMem engine;
   - durability is write-ahead logging: a commit appends and syncs WAL
     pages.

   This module charges exactly those costs to the media clock; the page
   contents themselves live in the underlying (volatile) pool. *)

module Media = Pmem.Media
module Faults = Pmem.Faults

type t = {
  media : Media.t;
  page_size : int;
  capacity : int; (* frames *)
  frames : (int, frame) Hashtbl.t; (* page id -> frame *)
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable wal_pages : int;
  mutable retries : int; (* transient SSD faults absorbed *)
  hit_ns : int; (* page-cache indirection cost per access *)
  max_retries : int;
  retry_base_ns : int;
  rng : Random.State.t; (* backoff jitter *)
  mu : Mutex.t;
}

and frame = { mutable last_used : int; mutable dirty : bool }

let create ?(page_size = 8192) ?(capacity = 4096) ?(hit_ns = 900)
    ?(max_retries = 6) ?(retry_base_ns = 20_000) ?(seed = 0xD15C) media =
  {
    media;
    page_size;
    capacity;
    frames = Hashtbl.create (2 * capacity);
    tick = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    wal_pages = 0;
    retries = 0;
    hit_ns;
    max_retries;
    retry_base_ns;
    rng = Random.State.make [| 0x55D; seed |];
    mu = Mutex.create ();
  }

let page_of t off = off / t.page_size

(* Graceful degradation for transient SSD errors: retry the page access
   with capped exponential backoff and jitter, charged to the media clock
   like any other device latency.  Only when the budget is exhausted does
   the fault surface to the caller (the device is then presumed dead). *)
let with_ssd_retry t op =
  let rec go attempt =
    match op () with
    | () -> ()
    | exception Faults.Ssd_fault _ when attempt < t.max_retries ->
        t.retries <- t.retries + 1;
        Media.note_retry t.media;
        let cap = t.retry_base_ns * (1 lsl min attempt 8) in
        Media.charge t.media
          ((cap / 2) + Random.State.int t.rng (max 1 (cap / 2)));
        go (attempt + 1)
  in
  go 0

let evict_one t =
  (* clock-free LRU: evict the least recently used frame *)
  let victim = ref (-1) and best = ref max_int in
  Hashtbl.iter
    (fun pid f ->
      if f.last_used < !best then begin
        best := f.last_used;
        victim := pid
      end)
    t.frames;
  if !victim >= 0 then begin
    (match Hashtbl.find_opt t.frames !victim with
    | Some f when f.dirty ->
        with_ssd_retry t (fun () -> Media.ssd_write_page t.media)
    | _ -> ());
    Hashtbl.remove t.frames !victim;
    t.evictions <- t.evictions + 1
  end

(* Record an access to the page containing [off]. *)
let touch t ~off ~(rw : [ `R | `W ]) =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) @@ fun () ->
  let pid = page_of t off in
  t.tick <- t.tick + 1;
  match Hashtbl.find_opt t.frames pid with
  | Some f ->
      t.hits <- t.hits + 1;
      Media.charge t.media t.hit_ns;
      f.last_used <- t.tick;
      if rw = `W then f.dirty <- true
  | None ->
      t.misses <- t.misses + 1;
      with_ssd_retry t (fun () -> Media.ssd_read_page t.media);
      Media.charge t.media t.hit_ns;
      if Hashtbl.length t.frames >= t.capacity then evict_one t;
      Hashtbl.replace t.frames pid { last_used = t.tick; dirty = rw = `W }

(* Commit: append [bytes] of WAL and sync it (at least one page). *)
let wal_commit t ~bytes =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) @@ fun () ->
  let pages = max 1 ((bytes + t.page_size - 1) / t.page_size) in
  for _ = 1 to pages do
    with_ssd_retry t (fun () -> Media.ssd_write_page t.media);
    t.wal_pages <- t.wal_pages + 1
  done

(* Drop all frames: the first runs after this are cold. *)
let clear t =
  Mutex.lock t.mu;
  Hashtbl.reset t.frames;
  Mutex.unlock t.mu

let stats t = (t.hits, t.misses, t.evictions, t.wal_pages)
let retries t = t.retries
