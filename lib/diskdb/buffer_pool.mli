(** Buffer-pool model for the disk baseline: LRU page frames over a
    simulated SSD.  A miss charges an SSD page read (plus a write-back
    when evicting a dirty frame); even a hit charges the page-cache
    indirection that distinguishes block-oriented engines from direct
    byte-addressing.  Commits append and sync WAL pages.

    Transient SSD faults injected by {!Pmem.Faults} are absorbed with
    bounded exponential-backoff retries (jittered, charged to the media
    clock); only an exhausted retry budget lets {!Pmem.Faults.Ssd_fault}
    surface to the caller. *)

type t

val create :
  ?page_size:int ->
  ?capacity:int ->
  ?hit_ns:int ->
  ?max_retries:int ->
  ?retry_base_ns:int ->
  ?seed:int ->
  Pmem.Media.t ->
  t

val touch : t -> off:int -> rw:[ `R | `W ] -> unit
val wal_commit : t -> bytes:int -> unit
val clear : t -> unit
val stats : t -> int * int * int * int
(** (hits, misses, evictions, wal pages written). *)

val retries : t -> int
(** Transient SSD faults absorbed so far. *)
