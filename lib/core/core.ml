(* Poseidon-style PMem graph engine - the public facade.

   This module ties the substrates together into the system the paper
   describes: a property-graph store in (simulated) persistent memory,
   MVTO transactions with snapshot isolation, hybrid DRAM/PMem secondary
   indexes with a persistent catalog, and a query engine with AOT
   interpretation, JIT compilation (with a persistent compiled-query
   cache) and adaptive execution.

   Typical use:

   {[
     let db = Core.create ~mode:`Pmem () in
     Core.with_txn db (fun txn ->
         let alice = Core.create_node db txn ~label:"Person"
             ~props:[ ("name", Value.Text "Alice") ] in
         ...);
     Core.create_index db ~label:"Person" ~prop:"id" ();
     let rows, report = Core.query db ~mode:Jit.Engine.Jit plan ~params in
     ...
     Core.crash db;                    (* power failure *)
     let db = Core.reopen db in        (* recovery *)
   ]} *)

module Media = Pmem.Media
module Pool = Pmem.Pool
module Value = Storage.Value
module Layout = Storage.Layout
module G = Storage.Graph_store
module Mvto = Mvcc.Mvto
module Txn = Mvcc.Txn
module Version = Mvcc.Version
module Algebra = Query.Algebra
module Expr = Query.Expr
module Engine = Jit.Engine

let log_src = Logs.Src.create "poseidon.core" ~doc:"Poseidon engine facade"

module Log = (val Logs.src_log log_src : Logs.LOG)

type mode = [ `Pmem | `Dram ]

type t = {
  mode : mode;
  media : Media.t;
  pool : Pool.t;
  store : G.t;
  mgr : Mvto.t;
  mutable indexes : ((int * int) * Gindex.Index.t) list; (* (label, key) *)
  catalog : int; (* persistent index catalog offset *)
  jit_cache : Jit.Cache.t;
  mutable workers : Exec.Task_pool.t option;
  index_placement : Gindex.Node_store.placement;
  mutable last_recovery : Recovery.report option;
      (* per-phase crash-to-ready timings of the most recent reopen *)
  mutable recovery_handle : Recovery.t option;
      (* warm control of a lazy reopen (None for created engines) *)
}

let default_pool_size = 1 lsl 26

(* --- Lifecycle ---------------------------------------------------------------- *)

let create ?(mode = `Pmem) ?(pool_size = default_pool_size) ?chunk_capacity
    ?costs ?(index_placement = Gindex.Node_store.Hybrid) () =
  let media = Media.create ?costs () in
  let pool = Pool.create ~kind:mode ~media ~id:1 ~size:pool_size () in
  let store = G.format ?chunk_capacity pool in
  let catalog = Gindex.Index.Catalog.create pool ~root_slot:G.root_index in
  let jit_cache = Jit.Cache.create pool ~root_slot:G.root_jit () in
  {
    mode;
    media;
    pool;
    store;
    mgr = Mvto.create store;
    indexes = [];
    catalog;
    jit_cache;
    workers = None;
    index_placement;
    last_recovery = None;
    recovery_handle = None;
  }

let media t = t.media
let pool t = t.pool
let store t = t.store
let mgr t = t.mgr
let jit_cache t = t.jit_cache
let txn_stats t = Mvto.stats t.mgr

let set_workers t n =
  (match t.workers with Some p -> Exec.Task_pool.shutdown p | None -> ());
  t.workers <-
    (if n <= 1 then None
     else Some (Exec.Task_pool.create ~media:t.media ~nworkers:n ()))

let workers t = t.workers

let shutdown t =
  match t.workers with
  | Some p ->
      Exec.Task_pool.shutdown p;
      t.workers <- None
  | None -> ()

(* --- Crash / recovery ------------------------------------------------------------ *)

let crash ?evict_prob t =
  shutdown t;
  Pool.crash ?evict_prob t.pool

(* Rebuild a volatile index from the node table. *)
let rebuild_index store idx =
  let label = Gindex.Index.label_code idx and key = Gindex.Index.key_code idx in
  G.iter_nodes store (fun id ->
      if G.node_label store id = label then
        match G.node_prop store id key with
        | Some v -> Gindex.Index.insert idx v id
        | None -> ())

(* Reattach after a crash: PMDK-log rollback, table/dict recovery, MVTO
   lock scrubbing, index recovery per placement, JIT cache reattach.
   All the volatile-structure rebuilds are delegated to the [Recovery]
   orchestrator; [recovery_threads] > 1 runs them over that many task
   pool domains (the rebuilt state is identical to serial recovery). *)
let reopen ?(recovery_threads = 1) ?(recovery_mode = Recovery.Eager)
    ?(use_checkpoint = true) (old : t) =
  let pool = old.pool in
  let r =
    Recovery.run ~threads:recovery_threads ~mode:recovery_mode ~use_checkpoint
      pool
  in
  let store = Recovery.store r in
  let mgr = Recovery.mgr r in
  let indexes =
    List.map
      (fun idx ->
        ((Gindex.Index.label_code idx, Gindex.Index.key_code idx), idx))
      (Recovery.indexes r)
  in
  let jit_cache = Jit.Cache.open_or_create pool ~root_slot:G.root_jit in
  Log.info (fun m ->
      m "reopened: %d nodes, %d rels, %d indexes, %d cached queries"
        (G.node_count store) (G.rel_count store) (List.length indexes)
        (Jit.Cache.count jit_cache));
  {
    mode = old.mode;
    media = old.media;
    pool;
    store;
    mgr;
    indexes;
    catalog = Recovery.catalog r;
    jit_cache;
    workers = None;
    index_placement = old.index_placement;
    (* every reopen resets this to its own run; Recovery.run also zeroes
       the recovery metrics, so gauges never describe a previous restart *)
    last_recovery = Some (Recovery.report r);
    recovery_handle = Some r;
  }

let last_recovery t = t.last_recovery

(* --- Checkpoints / lazy warm ------------------------------------------------------ *)

let checkpoint t =
  Checkpoint.take t.pool ~store:t.store ~mgr:t.mgr
    ~indexes:(List.map snd t.indexes)

let checkpoint_info t = Checkpoint.info t.pool
let checkpoint_epoch t = Checkpoint.current_epoch t.pool

let warm_all ?threads t =
  match t.recovery_handle with
  | Some r -> Recovery.warm_all ?threads r
  | None -> ()

let warm_pending t =
  match t.recovery_handle with Some r -> Recovery.warm_pending r | None -> 0

let warm_items t =
  match t.recovery_handle with Some r -> Recovery.warm_items r | None -> []

(* --- Transactions ------------------------------------------------------------------ *)

exception Abort = Mvto.Abort

(* Post-commit secondary-index maintenance: collected from the write set
   before commit (the saved versions still hold the old property
   values). *)
let index_ops t txn =
  if t.indexes = [] then []
  else
    List.filter_map
      (fun (key, wop) ->
        match (key, wop) with
        | (Version.Node, id), Txn.Insert ->
            let label = G.node_label t.store id in
            Some (`Insert (label, id, G.node_props t.store id))
        | (Version.Node, id), Txn.Update { dirty; saved } ->
            let label = G.node_label t.store id in
            Some (`Change (label, id, saved.Version.props, dirty.Version.props))
        | (Version.Node, id), Txn.Delete { saved; _ } ->
            let label = G.node_label t.store id in
            Some (`Remove (label, id, saved.Version.props))
        | (Version.Rel, _), _ -> None)
      (Txn.writes txn)

let apply_index_ops t ops =
  let for_label label f =
    List.iter (fun ((l, k), idx) -> if l = label then f k idx) t.indexes
  in
  List.iter
    (function
      | `Insert (label, id, props) ->
          for_label label (fun k idx ->
              match List.assoc_opt k props with
              | Some v -> Gindex.Index.insert idx v id
              | None -> ())
      | `Remove (label, id, props) ->
          for_label label (fun k idx ->
              match List.assoc_opt k props with
              | Some v -> ignore (Gindex.Index.remove idx v id)
              | None -> ())
      | `Change (label, id, old_props, new_props) ->
          for_label label (fun k idx ->
              let ov = List.assoc_opt k old_props
              and nv = List.assoc_opt k new_props in
              if ov <> nv then begin
                (match ov with
                | Some v -> ignore (Gindex.Index.remove idx v id)
                | None -> ());
                match nv with
                | Some v -> Gindex.Index.insert idx v id
                | None -> ()
              end))
    ops

let begin_txn t = Mvto.begin_txn t.mgr

let commit t txn =
  let ops = index_ops t txn in
  Mvto.commit t.mgr txn;
  apply_index_ops t ops

(* Commit several prepared transactions as one group-commit batch (a
   single undo-log publish fence + one log invalidation); index
   maintenance is applied after the batch is durable, same as [commit]. *)
let commit_group t txns =
  let ops = List.map (index_ops t) txns in
  Mvto.commit_group t.mgr txns;
  List.iter (apply_index_ops t) ops

let abort t txn = Mvto.abort t.mgr txn

let with_txn t f =
  Obs.Trace.with_span (Media.tracer t.media) "txn" @@ fun () ->
  let txn = begin_txn t in
  match f txn with
  | v ->
      commit t txn;
      v
  (* an injected power cut may fire while an engine mutex is held; there
     is no process left to clean up after, so no abort processing *)
  | exception (Pmem.Faults.Crash_point _ as e) -> raise e
  | exception e ->
      if Txn.is_active txn then abort t txn;
      Mvto.note_abort_class t.mgr e;
      raise e

(* Same retry policy as [Mvto.with_txn_retry], but over [Core.with_txn]
   so retried attempts redo secondary-index maintenance too. *)
let with_txn_retry ?(max_retries = 16) ?(backoff_ns = 500) ?rng t f =
  let rng =
    match rng with Some r -> r | None -> Random.State.make [| 0xB4C0FF |]
  in
  let rec go n =
    match with_txn t f with
    | v -> v
    | exception Abort reason
      when n < max_retries && Mvto.classify_abort reason = Mvto.Transient ->
        (Mvto.stats t.mgr).Mvto.retries <- (Mvto.stats t.mgr).Mvto.retries + 1;
        Media.note_retry t.media;
        if backoff_ns > 0 then begin
          let cap = backoff_ns * (1 lsl min n 10) in
          Media.charge t.media
            ((cap / 2) + Random.State.int rng (max 1 (cap / 2)))
        end;
        go (n + 1)
  in
  go 0

(* --- Data API (string labels/keys at the boundary) --------------------------------- *)

let code t s = G.code t.store s
let decode t c = G.string_of_code t.store c
let encode_value t v = G.encode_value t.store v
let decode_value t v = G.decode_value t.store v

let create_node t txn ~label ~props =
  Mvto.insert_node t.mgr txn ~label:(code t label)
    ~props:(List.map (fun (k, v) -> (code t k, encode_value t v)) props)

let create_rel t txn ~label ~src ~dst ~props =
  Mvto.insert_rel t.mgr txn ~label:(code t label) ~src ~dst
    ~props:(List.map (fun (k, v) -> (code t k, encode_value t v)) props)

let node_prop t txn id ~key =
  match Mvto.read_node t.mgr txn id with
  | None -> None
  | Some view ->
      Option.map (decode_value t) (Mvto.view_prop view (code t key))

let rel_prop t txn id ~key =
  match Mvto.read_rel t.mgr txn id with
  | None -> None
  | Some view ->
      Option.map (decode_value t) (Mvto.view_prop view (code t key))

let set_node_prop t txn id ~key value =
  let k = code t key and v = encode_value t value in
  Mvto.update t.mgr txn (Version.Node, id) (fun ver ->
      ver.Version.props <- (k, v) :: List.remove_assoc k ver.Version.props)

let set_rel_prop t txn id ~key value =
  let k = code t key and v = encode_value t value in
  Mvto.update t.mgr txn (Version.Rel, id) (fun ver ->
      ver.Version.props <- (k, v) :: List.remove_assoc k ver.Version.props)

let delete_node t txn id = Mvto.delete t.mgr txn (Version.Node, id)
let delete_rel t txn id = Mvto.delete t.mgr txn (Version.Rel, id)
let node_label t txn id =
  match Mvto.read_node t.mgr txn id with
  | None -> None
  | Some view -> Some (decode t (Mvto.view_node view).Layout.label)

let node_count t = G.node_count t.store
let rel_count t = G.rel_count t.store

let out_rels t txn id =
  let acc = ref [] in
  G.iter_out t.store id (fun rid ->
      if Mvto.visible t.mgr txn (Version.Rel, rid) then acc := rid :: !acc);
  List.rev !acc

let in_rels t txn id =
  let acc = ref [] in
  G.iter_in t.store id (fun rid ->
      if Mvto.visible t.mgr txn (Version.Rel, rid) then acc := rid :: !acc);
  List.rev !acc

(* --- Indexes ------------------------------------------------------------------------- *)

let find_index t ~label ~key = List.assoc_opt (label, key) t.indexes

let create_index ?placement t ~label ~prop () =
  let placement = Option.value placement ~default:t.index_placement in
  let label_code = code t label and key = code t prop in
  match find_index t ~label:label_code ~key with
  | Some idx -> idx
  | None ->
      let idx = Gindex.Index.create t.pool ~placement ~label:label_code ~key in
      Gindex.Index.set_epoch_cache idx (Checkpoint.current_epoch t.pool);
      rebuild_index t.store idx;
      Gindex.Index.Catalog.add t.pool ~catalog:t.catalog
        (Gindex.Index.descriptor idx);
      t.indexes <- ((label_code, key), idx) :: t.indexes;
      idx

let index_lookup_fn t ~label ~key = find_index t ~label ~key

(* --- Queries ------------------------------------------------------------------------- *)

let source t txn =
  Query.Source.of_mvcc ~indexes:(fun ~label ~key -> find_index t ~label ~key)
    t.mgr txn

(* Run a read-only query in its own transaction. *)
let query ?(mode = Engine.Interp) ?config ?parallel ?prof t ~params plan =
  let pool_ = match parallel with Some true -> t.workers | _ -> None in
  with_txn t (fun txn ->
      Engine.run ?pool:pool_ ~cache:t.jit_cache ~media:t.media ?config ?prof
        ~mode (source t txn) ~params plan)

(* Run an update plan transactionally; returns rows, the engine report
   and the commit's simulated duration (Fig. 6 separates execution from
   commit time). *)
let execute_update ?(mode = Engine.Interp) ?config t ~params plan =
  let txn = begin_txn t in
  match
    Engine.run ~cache:t.jit_cache ~media:t.media ?config ~mode (source t txn)
      ~params plan
  with
  | rows, report ->
      let ops = index_ops t txn in
      let c0 = Media.clock t.media in
      Mvto.commit t.mgr txn;
      let commit_ns = Media.clock t.media - c0 in
      apply_index_ops t ops;
      (rows, report, commit_ns)
  | exception (Pmem.Faults.Crash_point _ as e) -> raise e
  | exception e ->
      if Txn.is_active txn then abort t txn;
      raise e
