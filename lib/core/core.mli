(** Poseidon-style PMem graph engine - the public facade.

    A property-graph database over (simulated) persistent memory with
    MVTO snapshot-isolation transactions, hybrid DRAM/PMem secondary
    indexes with a persistent catalog, and a query engine offering AOT
    interpretation, JIT compilation (with a persistent compiled-query
    cache) and adaptive execution.

    {[
      let db = Core.create ~mode:`Pmem () in
      Core.with_txn db (fun txn ->
          let alice =
            Core.create_node db txn ~label:"Person"
              ~props:[ ("name", Value.Text "Alice") ]
          in
          ...);
      ignore (Core.create_index db ~label:"Person" ~prop:"id" ());
      let rows, report = Core.query db ~mode:Jit.Engine.Jit ~params plan in
      Core.crash db;
      let db = Core.reopen db in     (* full recovery *)
    ]} *)

module Value = Storage.Value
module Engine = Jit.Engine

type mode = [ `Dram | `Pmem ]
type t

exception Abort of string
(** Transaction conflict; alias of [Mvcc.Mvto.Abort]. *)

(** {1 Lifecycle} *)

val create :
  ?mode:mode ->
  ?pool_size:int ->
  ?chunk_capacity:int ->
  ?costs:Pmem.Media.costs ->
  ?index_placement:Gindex.Node_store.placement ->
  unit ->
  t

val crash : ?evict_prob:float -> t -> unit
(** Simulate a power failure: all unflushed stores are lost (each dirty
    line survives with probability [evict_prob]). *)

val reopen :
  ?recovery_threads:int ->
  ?recovery_mode:Recovery.mode ->
  ?use_checkpoint:bool ->
  t ->
  t
(** Recover after {!crash}: PMDK-log rollback, table/dictionary
    reattachment, MVTO lock scrubbing and timestamp restart, per-placement
    index recovery, JIT-cache reattachment.  [recovery_threads] > 1 runs
    the rebuild phases on that many task-pool domains via {!Recovery};
    the rebuilt state is identical to the serial default.
    [recovery_mode:Lazy] returns as soon as the engine is query-ready
    and warms the remaining structures on first touch (or {!warm_all});
    [use_checkpoint:false] ignores any checkpoint generation.  Every
    reopen resets {!last_recovery} and the recovery metrics to this
    run. *)

val last_recovery : t -> Recovery.report option
(** Per-phase crash-to-ready report of the {!reopen} that produced this
    handle; [None] on a freshly created database. *)

(** {1 Checkpoints & lazy warm} *)

val checkpoint : t -> int
(** Take an incremental checkpoint of all volatile accelerators at
    transaction quiescence (see {!Checkpoint.take}); returns the new
    generation's sequence number.
    @raise Invalid_argument while transactions are active. *)

val checkpoint_info : t -> Checkpoint.info option
(** Region epoch and per-slot generation metadata; [None] before the
    first {!checkpoint}. *)

val checkpoint_epoch : t -> int
(** Current global checkpoint epoch (0 before the first checkpoint). *)

val warm_all : ?threads:int -> t -> unit
(** Finish every deferred rebuild of a lazy {!reopen} now; no-op
    otherwise. *)

val warm_pending : t -> int
val warm_items : t -> Recovery.warm_item list

val set_workers : t -> int -> unit
(** Size the morsel-execution pool (0/1 disables parallel execution). *)

val workers : t -> Exec.Task_pool.t option
val shutdown : t -> unit

(** {1 Accessors} *)

val media : t -> Pmem.Media.t
val pool : t -> Pmem.Pool.t
val store : t -> Storage.Graph_store.t
val mgr : t -> Mvcc.Mvto.t
val jit_cache : t -> Jit.Cache.t
val txn_stats : t -> Mvcc.Mvto.stats
val node_count : t -> int
val rel_count : t -> int
val code : t -> string -> int
val decode : t -> int -> string
val encode_value : t -> Value.t -> Value.t
val decode_value : t -> Value.t -> Value.t

(** {1 Transactions} *)

val begin_txn : t -> Mvcc.Txn.t
val commit : t -> Mvcc.Txn.t -> unit
(** Commit and apply secondary-index maintenance for the write set. *)

val commit_group : t -> Mvcc.Txn.t list -> unit
(** Commit several prepared transactions as one group-commit batch
    sharing a single undo-log publish fence and one log invalidation
    (the deterministic equivalent of the concurrent commit ring forming
    a batch).  All-or-nothing under a crash: the members share one undo
    log.  Index maintenance is applied once the batch is durable. *)

val abort : t -> Mvcc.Txn.t -> unit
val with_txn : t -> (Mvcc.Txn.t -> 'a) -> 'a

val with_txn_retry :
  ?max_retries:int -> ?backoff_ns:int -> ?rng:Random.State.t ->
  t -> (Mvcc.Txn.t -> 'a) -> 'a
(** Like {!with_txn}, retrying transient {!Abort}s (per
    {!Mvcc.Mvto.classify_abort}) with capped exponential backoff charged
    to the media clock; fatal aborts and exhaustion re-raise. *)

(** {1 Data API (string labels/keys at the boundary)} *)

val create_node :
  t -> Mvcc.Txn.t -> label:string -> props:(string * Value.t) list -> int

val create_rel :
  t ->
  Mvcc.Txn.t ->
  label:string ->
  src:int ->
  dst:int ->
  props:(string * Value.t) list ->
  int

val node_prop : t -> Mvcc.Txn.t -> int -> key:string -> Value.t option
val rel_prop : t -> Mvcc.Txn.t -> int -> key:string -> Value.t option
val set_node_prop : t -> Mvcc.Txn.t -> int -> key:string -> Value.t -> unit
val set_rel_prop : t -> Mvcc.Txn.t -> int -> key:string -> Value.t -> unit
val delete_node : t -> Mvcc.Txn.t -> int -> unit
val delete_rel : t -> Mvcc.Txn.t -> int -> unit
val node_label : t -> Mvcc.Txn.t -> int -> string option
val out_rels : t -> Mvcc.Txn.t -> int -> int list
val in_rels : t -> Mvcc.Txn.t -> int -> int list

(** {1 Indexes} *)

val create_index :
  ?placement:Gindex.Node_store.placement ->
  t ->
  label:string ->
  prop:string ->
  unit ->
  Gindex.Index.t
(** Create (or return) the secondary index on (label, property), built
    from existing data and registered in the persistent catalog;
    maintained on every subsequent commit. *)

val index_lookup_fn : t -> label:int -> key:int -> Gindex.Index.t option

(** {1 Queries} *)

val source : t -> Mvcc.Txn.t -> Query.Source.t
(** Snapshot access for one transaction, wired to the database indexes. *)

val query :
  ?mode:Engine.mode ->
  ?config:Engine.config ->
  ?parallel:bool ->
  ?prof:Obs.Profile.t ->
  t ->
  params:Value.t array ->
  Query.Algebra.plan ->
  Value.t array list * Engine.report
(** Run a read-only plan in its own transaction.  With [prof], the run
    is serial and records per-operator tuple counts and ticks under the
    plan's preorder ids (see {!Jit.Engine.run}). *)

val execute_update :
  ?mode:Engine.mode ->
  ?config:Engine.config ->
  t ->
  params:Value.t array ->
  Query.Algebra.plan ->
  Value.t array list * Engine.report * int
(** Run an update plan transactionally; the third component is the
    commit's simulated duration in nanoseconds (Fig. 6 separates
    execution from commit time). *)
