(** The persistent property-graph store (Section 4): node, relationship
    and property tables in PMem plus the string dictionary.

    Transaction-agnostic: the MVTO header fields of records are plain
    data here; {!Mvcc} implements the protocol on top, bulk loaders use
    this layer directly.  Adjacency (DD4) chains through 8-byte offsets,
    never persistent pointers. *)

open Layout

(** {1 Root slots} (see [Pmem.Alloc.set_root]) *)

val root_dict : int
val root_nodes : int
val root_rels : int
val root_props : int
val root_index : int
val root_jit : int
val root_ckpt : int

type t

val format : ?hybrid_dict:bool -> ?chunk_capacity:int -> Pmem.Pool.t -> t
(** Initialise a fresh pool: allocator, dictionary, the three tables. *)

val open_ : ?hybrid_dict:bool -> ?chunk_capacity:int -> Pmem.Pool.t -> t
(** Reattach after a restart: rolls back any interrupted PMDK transaction
    and rebuilds the volatile mirrors. *)

val open_deferred : ?hybrid_dict:bool -> ?chunk_capacity:int -> Pmem.Pool.t -> t
(** Like {!open_} but defers every rebuild a recovery orchestrator
    parallelises: the dictionary hash is not rebuilt and the table
    free-slot caches are empty.  The store must not serve requests until
    the orchestrator completes the rebuild stages. *)

val pool : t -> Pmem.Pool.t
val dict : t -> Dict.t
val node_table : t -> Table.t
val rel_table : t -> Table.t
val prop_store : t -> Props.t
val registry : t -> Pmem.Pptr.registry
val media : t -> Pmem.Media.t

val set_epoch_cache : t -> int -> unit
(** Propagate the cached global checkpoint epoch to the dict and the
    node / rel / prop tables (index descriptors are handled by their
    owner). *)

val mark_node : t -> int -> unit
val mark_rel : t -> int -> unit
(** Stamp the chunk holding the record with the current epoch before a
    mutation that bypasses {!write_node} / {!write_rel}. *)

(** {1 Dictionary} *)

val code : t -> string -> int
val code_opt : t -> string -> int option
val string_of_code : t -> int -> string
val encode_value : t -> Value.t -> Value.t
(** [Text] becomes [Str]; everything else is unchanged. *)

val decode_value : t -> Value.t -> Value.t

(** {1 Record I/O} *)

val read_node : t -> int -> node
val write_node : ?persist:bool -> t -> int -> node -> unit
val read_rel : t -> int -> rel
val write_rel : ?persist:bool -> t -> int -> rel -> unit
val node_off : t -> int -> int
val rel_off : t -> int -> int
val node_field : t -> int -> int -> int
val rel_field : t -> int -> int -> int
val node_label : t -> int -> int
val rel_label : t -> int -> int
val set_node_field : t -> int -> int -> int -> unit
(** Failure-atomic single-field store. *)

val set_rel_field : t -> int -> int -> int -> unit

(** {1 Creation / deletion (raw)} *)

val insert_node : t -> node -> int
val insert_rel : t -> rel -> int
(** Persists the record, then splices it into both adjacency lists with
    atomic head stores. *)

val unlink_rel : t -> int -> unit
val remove_rel : t -> int -> unit
val remove_node : t -> int -> unit

(** {1 Adjacency} *)

val iter_out : t -> int -> (int -> unit) -> unit
val iter_in : t -> int -> (int -> unit) -> unit
val out_degree : t -> int -> int
val in_degree : t -> int -> int

(** {1 Properties} *)

val node_prop : t -> int -> int -> Value.t option
val rel_prop : t -> int -> int -> Value.t option
(** [~durable:false] on the property setters defers slot persistence and
    swings the record's first_prop with a plain store; only legal while
    the record is unreachable (insert-locked) and the caller flushes the
    record and chain before the commit fence that makes it visible
    (see {!Props.set}). *)

val set_node_prop : ?durable:bool -> t -> int -> key:int -> Value.t -> unit
val set_rel_prop : ?durable:bool -> t -> int -> key:int -> Value.t -> unit
val node_props : t -> int -> (int * Value.t) list
val rel_props : t -> int -> (int * Value.t) list

(** {1 Scans} *)

val iter_nodes : t -> (int -> unit) -> unit
val iter_rels : t -> (int -> unit) -> unit
val iter_nodes_chunk : t -> int -> (int -> unit) -> unit
val iter_rels_chunk : t -> int -> (int -> unit) -> unit
val node_chunks : t -> int
val rel_chunks : t -> int
val node_count : t -> int
val rel_count : t -> int
val node_live : t -> int -> bool
val rel_live : t -> int -> bool

(** {1 High-level helpers (string labels/keys, [Text] values)} *)

val create_node : t -> label:string -> props:(string * Value.t) list -> int
val create_rel :
  t -> label:string -> src:int -> dst:int -> props:(string * Value.t) list -> int
