(* Persistent string dictionary (DD3).

   All variable-length strings (labels, property keys, string property
   values) are dictionary-encoded so that records stay fixed-size and
   addressable by offset, writes shrink, and filters compare integer codes
   instead of strings.

   On PMem the dictionary keeps (as in the paper) both directions:
   - a code array: code -> string-heap offset,
   - an open-addressing hash table: string -> code (entries are
     (heap offset, code) pairs; comparing via the heap string).
   Strings live in bump-allocated heap segments, so encoding a new string
   costs no per-string PMem allocation (DG5).

   The default layout is the *hybrid* DRAM-cached one (Sections 4.2 and
   8): only the heap and the code array are PMem-durable, and a complete
   DRAM mirror serves both directions.  The persistent hash table is not
   maintained at runtime - the mirror is rebuilt on restart from the code
   array (or warmed from a checkpoint image of the strings).  A fresh
   encode then costs one coalesced flush pass (string bytes, code entry,
   heap bump) plus the atomic [next_code] bump: two fences instead of the
   six the eager layout pays.  With [~hybrid:false] (the ablation the
   paper rejects) the persistent hash is maintained eagerly and every
   store is persisted in place.

   Crash consistency: string bytes, the code-array entry (and, eager
   mode, the hash entry) are durable strictly before [next_code] is
   bumped atomically - the bump is the publication point, so a torn
   insert below it is unreachable garbage.  Restart rebuilds whichever
   side is stale from the code array. *)

module Pool = Pmem.Pool
module Alloc = Pmem.Alloc
module Pptr = Pmem.Pptr
module Media = Pmem.Media
module Pmdk_tx = Pmem.Pmdk_tx

type t = {
  pool : Pool.t;
  hdr : int;
  hybrid : bool;
  mutable to_code : (string, int) Hashtbl.t; (* DRAM mirror *)
  mutable of_code : (int, string) Hashtbl.t;
  mu : Mutex.t;
  (* checkpoint epoch cache (0 = stamping disabled) and lazy-warm state:
     while not [warmed] the persistent hash is stale; [decode] still
     serves instantly through the code array, but [encode]/[lookup]
     first run [warm_fn] (checkpoint restore or full rebuild). *)
  mutable cur_epoch : int;
  mutable warmed : bool;
  mutable warm_fn : unit -> unit;
  warm_mu : Mutex.t;
}

(* header field offsets *)
let f_hash_off = 0
let f_hash_cap = 8
let f_hash_count = 16
let f_code_off = 24
let f_code_cap = 32
let f_next_code = 40
let f_seg_end = 48
let f_heap_bump = 56
let f_epoch = 64 (* checkpoint epoch stamp (mark-before-mutate) *)
let hdr_bytes = 72

let initial_hash_cap = 1024
let initial_code_cap = 1024
let seg_bytes = 262_144

let fnv1a s =
  (* FNV-1a with the offset basis truncated to OCaml's 63-bit int range *)
  let h = ref 0x4bf29ce484222325 in
  String.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * 0x100000001b3)
    s;
  !h land max_int

let get t f = Pool.read_int t.pool (t.hdr + f)
let set_atomic t f v = Pool.atomic_write_int t.pool (t.hdr + f) v

(* ---- checkpoint epoch + lazy warm ---------------------------------- *)

let set_epoch_cache t e = t.cur_epoch <- e
let epoch_stamp t = Pool.raw_read_int t.pool (t.hdr + f_epoch)

(* Stamp before the fresh-code mutation (mark-before-mutate). *)
let mark t =
  if t.cur_epoch > 0 && epoch_stamp t < t.cur_epoch then
    set_atomic t f_epoch t.cur_epoch

let warmed t = t.warmed

let defer_warm t fn =
  t.warm_fn <- fn;
  t.warmed <- false

let ensure_warm t =
  if not t.warmed then begin
    (if not (Mutex.try_lock t.warm_mu) then
       let media = Pool.media t.pool in
       let rng = Random.State.make [| 0xD1C7; t.hdr |] in
       let rec spin cap =
         if not (Mutex.try_lock t.warm_mu) then begin
           Media.charge media ((cap / 2) + Random.State.int rng (max 1 (cap / 2)));
           Domain.cpu_relax ();
           spin (min (cap * 2) 4096)
         end
       in
       spin 64);
    Fun.protect ~finally:(fun () -> Mutex.unlock t.warm_mu) @@ fun () ->
    if not t.warmed then begin
      t.warm_fn ();
      t.warmed <- true
    end
  end

let alloc_segment t =
  let seg = Alloc.alloc t.pool seg_bytes in
  set_atomic t f_heap_bump seg;
  set_atomic t f_seg_end (seg + seg_bytes)

let create ?(hybrid = true) pool =
  let hdr = Alloc.alloc pool hdr_bytes in
  let hash_off = Alloc.alloc pool (16 * initial_hash_cap) in
  Pool.fill pool ~off:hash_off ~len:(16 * initial_hash_cap) '\000';
  Pool.persist pool ~off:hash_off ~len:(16 * initial_hash_cap);
  let code_off = Alloc.alloc pool (8 * initial_code_cap) in
  Pool.fill pool ~off:code_off ~len:(8 * initial_code_cap) '\000';
  Pool.persist pool ~off:code_off ~len:(8 * initial_code_cap);
  let t =
    {
      pool;
      hdr;
      hybrid;
      to_code = Hashtbl.create 1024;
      of_code = Hashtbl.create 1024;
      mu = Mutex.create ();
      cur_epoch = 0;
      warmed = true;
      warm_fn = (fun () -> ());
      warm_mu = Mutex.create ();
    }
  in
  Pool.write_int pool (hdr + f_hash_off) hash_off;
  Pool.write_int pool (hdr + f_hash_cap) initial_hash_cap;
  Pool.write_int pool (hdr + f_hash_count) 0;
  Pool.write_int pool (hdr + f_code_off) code_off;
  Pool.write_int pool (hdr + f_code_cap) initial_code_cap;
  Pool.write_int pool (hdr + f_next_code) 1; (* code 0 = none *)
  Pool.write_int pool (hdr + f_epoch) 0;
  Pool.persist pool ~off:hdr ~len:hdr_bytes;
  alloc_segment t;
  t

let header_off t = t.hdr

let read_heap_string t off =
  let len = Pool.read_u32 t.pool off in
  Pool.read_string t.pool (off + 4) len

(* Store a string in the heap; returns its offset. *)
let push_heap t s =
  let need = 4 + String.length s in
  if get t f_heap_bump + need > get t f_seg_end then alloc_segment t;
  let off = get t f_heap_bump in
  Pool.write_u32 t.pool off (String.length s);
  Pool.write_string t.pool (off + 4) s;
  Pool.persist t.pool ~off ~len:need;
  set_atomic t f_heap_bump (off + ((need + 7) / 8 * 8));
  off

(* Hybrid-mode heap store: plain writes only; returns (offset, length).
   The caller flushes the range and the bump word before publishing the
   code - until then a crash leaves only unreachable heap garbage. *)
let push_heap_deferred t s =
  let need = 4 + String.length s in
  if get t f_heap_bump + need > get t f_seg_end then alloc_segment t;
  let off = get t f_heap_bump in
  Pool.write_u32 t.pool off (String.length s);
  Pool.write_string t.pool (off + 4) s;
  Pool.write_int t.pool (t.hdr + f_heap_bump) (off + ((need + 7) / 8 * 8));
  (off, need)

let hash_entry t i =
  let base = get t f_hash_off + (16 * i) in
  (Pool.read_int t.pool base, Pool.read_int t.pool (base + 8))

let set_hash_entry t i ~heap_off ~code =
  let base = get t f_hash_off + (16 * i) in
  Pool.write_int t.pool base heap_off;
  Pool.write_int t.pool (base + 8) code;
  Pool.persist t.pool ~off:base ~len:16

let rec hash_insert t ~heap_off ~code s =
  let cap = get t f_hash_cap in
  if (get t f_hash_count + 1) * 10 > cap * 7 then begin
    grow_hash t;
    hash_insert t ~heap_off ~code s
  end
  else begin
    let rec probe i =
      let h, _ = hash_entry t i in
      if h = 0 then set_hash_entry t i ~heap_off ~code
      else probe ((i + 1) mod cap)
    in
    probe (fnv1a s mod cap);
    set_atomic t f_hash_count (get t f_hash_count + 1)
  end

and grow_hash t =
  let old_off = get t f_hash_off and old_cap = get t f_hash_cap in
  let cap = old_cap * 2 in
  let off = Alloc.alloc t.pool (16 * cap) in
  Pool.fill t.pool ~off ~len:(16 * cap) '\000';
  for i = 0 to old_cap - 1 do
    let heap_off, code = (fun (a, b) -> (a, b)) (hash_entry t i) in
    if heap_off <> 0 then begin
      let s = read_heap_string t heap_off in
      let rec probe j =
        let base = off + (16 * j) in
        if Pool.read_int t.pool base = 0 then begin
          Pool.write_int t.pool base heap_off;
          Pool.write_int t.pool (base + 8) code
        end
        else probe ((j + 1) mod cap)
      in
      probe (fnv1a s mod cap)
    end
  done;
  Pool.persist t.pool ~off ~len:(16 * cap);
  (* Publish the new table offset before the new capacity: the durable
     invariant is that the region at [hash_off] is always at least
     [16 * hash_cap] bytes, so a crash between the two stores must leave
     (new off, old cap) — in bounds — never (old off, new cap), which
     would let the recovery rebuild stomp past the old region. *)
  set_atomic t f_hash_off off;
  set_atomic t f_hash_cap cap;
  Alloc.free t.pool ~off:old_off ~size:(16 * old_cap)

let hash_find t s =
  let cap = get t f_hash_cap in
  let rec probe i steps =
    if steps > cap then None
    else
      let heap_off, code = hash_entry t i in
      if heap_off = 0 then None
      else if
        code < get t f_next_code && String.equal (read_heap_string t heap_off) s
      then Some code
      else probe ((i + 1) mod cap) (steps + 1)
  in
  probe (fnv1a s mod cap) 0

let grow_code_array t needed =
  let old_off = get t f_code_off and old_cap = get t f_code_cap in
  if needed >= old_cap then begin
    let cap = max (old_cap * 2) (needed + 1) in
    let off = Alloc.alloc t.pool (8 * cap) in
    Pool.fill t.pool ~off ~len:(8 * cap) '\000';
    Pool.write_bytes t.pool off (Pool.read_bytes t.pool old_off (8 * old_cap));
    Pool.persist t.pool ~off ~len:(8 * cap);
    set_atomic t f_code_cap cap;
    set_atomic t f_code_off off;
    Alloc.free t.pool ~off:old_off ~size:(8 * old_cap)
  end

(* Hybrid fresh code: plain stores, one coalesced flush pass, one fence,
   then the atomic [next_code] bump (its own write-back + fence) as the
   publication point.  A crash before the bump leaves only unreachable
   heap/code garbage; after it, everything below the bump was already
   durable.  The persistent hash is left stale - the warmed mirror is
   the primary map. *)
let encode_fresh_hybrid t s =
  mark t;
  let code = get t f_next_code in
  let heap_off, need = push_heap_deferred t s in
  grow_code_array t code;
  let entry = get t f_code_off + (8 * code) in
  Pool.write_int t.pool entry heap_off;
  Pool.flush_range t.pool ~off:heap_off ~len:need;
  Pool.clwb t.pool entry;
  Pool.clwb t.pool (t.hdr + f_heap_bump);
  Pool.sfence t.pool;
  set_atomic t f_next_code (code + 1);
  Hashtbl.replace t.to_code s code;
  Hashtbl.replace t.of_code code s;
  code

(* Encode a string, assigning a fresh code when absent.  In hybrid mode
   the warmed mirror is complete, so a mirror miss after [ensure_warm]
   means the string is genuinely fresh (the stale persistent hash is
   never consulted). *)
let encode t s =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) @@ fun () ->
  if t.hybrid then
    match Hashtbl.find_opt t.to_code s with
    | Some c -> c
    | None -> (
        ensure_warm t;
        match Hashtbl.find_opt t.to_code s with
        | Some c -> c
        | None -> encode_fresh_hybrid t s)
  else (
    ensure_warm t;
    match hash_find t s with
    | Some c -> c
    | None ->
        mark t;
        let code = get t f_next_code in
        let heap_off = push_heap t s in
        grow_code_array t code;
        Pool.write_int t.pool (get t f_code_off + (8 * code)) heap_off;
        Pool.persist t.pool ~off:(get t f_code_off + (8 * code)) ~len:8;
        hash_insert t ~heap_off ~code s;
        set_atomic t f_next_code (code + 1);
        code)

let lookup t s =
  if t.hybrid then
    match Hashtbl.find_opt t.to_code s with
    | Some c -> Some c
    | None ->
        ensure_warm t;
        Hashtbl.find_opt t.to_code s
  else begin
    ensure_warm t;
    hash_find t s
  end

exception Unknown_code of int

let decode t code =
  if code <= 0 || code >= get t f_next_code then raise (Unknown_code code);
  match if t.hybrid then Hashtbl.find_opt t.of_code code else None with
  | Some s -> s
  | None ->
      let heap_off = Pool.read_int t.pool (get t f_code_off + (8 * code)) in
      if heap_off = 0 then raise (Unknown_code code);
      let s = read_heap_string t heap_off in
      if t.hybrid then begin
        Hashtbl.replace t.of_code code s;
        Hashtbl.replace t.to_code s code
      end;
      s

let count t = get t f_next_code - 1

(* ---- incremental checkpoint support ---------------------------------

   A dict checkpoint carries the decoded string table (code order) plus
   the header stamps needed to validate and delta-replay it.  Hybrid
   restore populates the DRAM mirror from the checkpointed strings and
   replays only codes assigned since the snapshot with charged heap
   reads - no PMem writes at all, so recovery leaves the dict regions
   bitwise untouched.  Non-hybrid mode maintains the persistent hash at
   runtime instead; its restore returns [false] and the caller falls
   back to the full staged rebuild. *)

type image = {
  im_next_code : int;
  im_epoch : int;
  im_strings : string array; (* index e holds code e+1's string *)
}

let snapshot t =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) @@ fun () ->
  let next = get t f_next_code in
  let strings =
    Array.init (next - 1) (fun e ->
        let code = e + 1 in
        match if t.hybrid then Hashtbl.find_opt t.of_code code else None with
        | Some s -> s
        | None ->
            let heap_off = Pool.read_int t.pool (get t f_code_off + (8 * code)) in
            if heap_off = 0 then "" else read_heap_string t heap_off)
  in
  { im_next_code = next; im_epoch = epoch_stamp t; im_strings = strings }

let restore t (im : image) ~snap_epoch =
  ignore snap_epoch;
  let cur_next = get t f_next_code in
  if (not t.hybrid) || cur_next < im.im_next_code then false
  else begin
    Array.iteri
      (fun e s ->
        Hashtbl.replace t.to_code s (e + 1);
        Hashtbl.replace t.of_code (e + 1) s)
      im.im_strings;
    (* codes assigned after the snapshot: charged delta reads *)
    for code = im.im_next_code to cur_next - 1 do
      let heap_off = Pool.read_int t.pool (get t f_code_off + (8 * code)) in
      if heap_off <> 0 then begin
        let s = read_heap_string t heap_off in
        Hashtbl.replace t.to_code s code;
        Hashtbl.replace t.of_code code s
      end
    done;
    true
  end

(* --- staged recovery rebuild -------------------------------------------

   The hash rebuild is split into three stages so a recovery orchestrator
   can run the read- and write-heavy parts on a task pool:

   1. [rebuild_read_tasks]  — charged reads of the code array and heap
      strings into a preallocated plan; each task owns a disjoint code
      range, so tasks may run concurrently.
   2. [rebuild_write_tasks] — a cheap serial DRAM pass first computes the
      final probe layout in code order (byte-identical to inserting the
      codes one by one), then returns write tasks over disjoint regions
      of the hash table.  Region boundaries fall on absolute 512-byte
      offsets so concurrent tasks never share a dirty-bitmap byte.
   3. [rebuild_finish]      — publish the entry count, fence, and warm
      the DRAM mirror.

   The serial [open_] below runs the same stages in order, so serial and
   parallel recovery produce identical persistent and volatile state. *)

(* attach without rebuilding; only recovery should use this, and it must
   run the rebuild stages before the dictionary serves lookups *)
let open_raw ?(hybrid = true) pool ~hdr () =
  {
    pool;
    hdr;
    hybrid;
    to_code = Hashtbl.create 1024;
    of_code = Hashtbl.create 1024;
    mu = Mutex.create ();
    cur_epoch = 0;
    warmed = true;
    warm_fn = (fun () -> ());
    warm_mu = Mutex.create ();
  }

type rebuild_plan = {
  rp_count : int; (* next_code - 1 at scan start *)
  rp_heap_offs : int array; (* index e holds code e+1's heap offset *)
  rp_strings : string array;
  mutable rp_slots : int array; (* probe slot per entry, -1 when absent *)
}

let rebuild_read_tasks t ~grain =
  let count = get t f_next_code - 1 in
  let code_off = get t f_code_off in
  let plan =
    {
      rp_count = count;
      rp_heap_offs = Array.make (max count 1) 0;
      rp_strings = Array.make (max count 1) "";
      rp_slots = [||];
    }
  in
  let tasks = ref [] in
  let lo = ref 0 in
  while !lo < count do
    let l = !lo and h = min count (!lo + max grain 1) in
    tasks :=
      (fun () ->
        for e = l to h - 1 do
          let heap_off = Pool.read_int t.pool (code_off + (8 * (e + 1))) in
          plan.rp_heap_offs.(e) <- heap_off;
          if heap_off <> 0 then plan.rp_strings.(e) <- read_heap_string t heap_off
        done)
      :: !tasks;
    lo := h
  done;
  (plan, List.rev !tasks)

let rebuild_write_tasks_eager t plan ~grain =
  let live = ref 0 in
  Array.iter (fun h -> if h <> 0 then incr live) plan.rp_heap_offs;
  (* Pre-grow so no insertion can trip the load-factor threshold: the
     serial insert loop would grow at the same total occupancy. *)
  while !live * 10 > get t f_hash_cap * 7 do
    let old_off = get t f_hash_off and old_cap = get t f_hash_cap in
    let cap = old_cap * 2 in
    let off = Alloc.alloc t.pool (16 * cap) in
    set_atomic t f_hash_off off;
    set_atomic t f_hash_cap cap;
    Alloc.free t.pool ~off:old_off ~size:(16 * old_cap)
  done;
  let cap = get t f_hash_cap and hash_off = get t f_hash_off in
  (* DRAM replay of the probe sequence, in code order: identical final
     layout to inserting serially, computed without touching PMem *)
  let occ = Array.make cap false in
  plan.rp_slots <- Array.make (max plan.rp_count 1) (-1);
  for e = 0 to plan.rp_count - 1 do
    if plan.rp_heap_offs.(e) <> 0 then begin
      let rec probe i = if occ.(i) then probe ((i + 1) mod cap) else i in
      let slot = probe (fnv1a plan.rp_strings.(e) mod cap) in
      occ.(slot) <- true;
      plan.rp_slots.(e) <- slot
    end
  done;
  (* Partition [hash_off, hash_off + 16*cap) at absolute 512-byte
     boundaries: each dirty-bitmap byte covers one 512 B block, so
     distinct tasks never read-modify-write the same bitmap byte. *)
  let region_end = hash_off + (16 * cap) in
  let width = ((16 * max grain 1) + 511) / 512 * 512 in
  let bounds = ref [ hash_off; region_end ] in
  let b = ref ((hash_off + 511) / 512 * 512) in
  while !b < region_end do
    bounds := !b :: !bounds;
    b := !b + width
  done;
  let ranges =
    let rec pair = function
      | a :: (b :: _ as rest) -> (a, b) :: pair rest
      | _ -> []
    in
    pair (List.sort_uniq compare !bounds)
  in
  (* bucket entries by owning range *)
  let nr = List.length ranges in
  let arr = Array.of_list ranges in
  let buckets = Array.make nr [] in
  let find_range base =
    (* ranges are sorted and contiguous; binary search by start offset *)
    let rec bs lo hi =
      if lo >= hi then lo - 1
      else
        let mid = (lo + hi) / 2 in
        if fst arr.(mid) <= base then bs (mid + 1) hi else bs lo mid
    in
    bs 0 nr
  in
  for e = plan.rp_count - 1 downto 0 do
    let slot = plan.rp_slots.(e) in
    if slot >= 0 then begin
      let base = hash_off + (16 * slot) in
      let r = find_range base in
      buckets.(r) <- e :: buckets.(r)
    end
  done;
  List.mapi
    (fun r (lo, hi) ->
      fun () ->
        Pool.fill t.pool ~off:lo ~len:(hi - lo) '\000';
        List.iter
          (fun e ->
            let base = hash_off + (16 * plan.rp_slots.(e)) in
            Pool.write_int t.pool base plan.rp_heap_offs.(e);
            Pool.write_int t.pool (base + 8) (e + 1))
          buckets.(r);
        Pool.flush_range t.pool ~off:lo ~len:(hi - lo))
    ranges

let rebuild_write_tasks t plan ~grain =
  if t.hybrid then begin
    (* hybrid mode never consults the persistent hash: no writes - the
       dict regions stay bitwise untouched by recovery - just mark the
       live entries so [rebuild_finish] can warm the mirror *)
    plan.rp_slots <-
      Array.map (fun h -> if h <> 0 then 0 else -1) plan.rp_heap_offs;
    []
  end
  else rebuild_write_tasks_eager t plan ~grain

let rebuild_finish t plan =
  if t.hybrid then
    for e = 0 to plan.rp_count - 1 do
      if plan.rp_slots.(e) >= 0 then begin
        Hashtbl.replace t.to_code plan.rp_strings.(e) (e + 1);
        Hashtbl.replace t.of_code (e + 1) plan.rp_strings.(e)
      end
    done
  else begin
    let live = ref 0 in
    Array.iter (fun s -> if s >= 0 then incr live) plan.rp_slots;
    (* atomic store + fence also orders the write tasks' flushes *)
    set_atomic t f_hash_count !live
  end

(* Reattach after restart: rebuild the persistent hash from the code array
   (scrubbing entries from interrupted inserts) and warm the DRAM mirror.
   Runs the staged rebuild serially. *)
let open_ ?(hybrid = true) pool ~hdr () =
  let t = open_raw ~hybrid pool ~hdr () in
  let plan, reads = rebuild_read_tasks t ~grain:256 in
  List.iter (fun f -> f ()) reads;
  let writes = rebuild_write_tasks t plan ~grain:256 in
  List.iter (fun f -> f ()) writes;
  rebuild_finish t plan;
  t
