(** Persistent bidirectional string dictionary (DD3).

    The default layout is the hybrid DRAM-cached one of Sections 4.2/8:
    PMem-durable string heap + code array, with a complete DRAM mirror
    serving both directions; the persistent string->code hash is not
    maintained at runtime (the mirror is rebuilt on restart from the
    code array, or warmed from a checkpoint image).  A fresh encode
    costs one coalesced flush pass plus the atomic next_code bump.
    [~hybrid:false] keeps the eager persistent-hash layout as an
    ablation.  String storage is bump-allocated from segments, so
    encoding costs no per-string PMem allocation (DG5). *)

type t

exception Unknown_code of int

val create : ?hybrid:bool -> Pmem.Pool.t -> t
val open_ : ?hybrid:bool -> Pmem.Pool.t -> hdr:int -> unit -> t
(** Reattach after a restart.  Hybrid: warms the DRAM mirror from the
    code array, writing nothing to PMem.  Eager ([~hybrid:false]):
    rebuilds the persistent hash from the code array (scrubbing torn
    inserts). *)

(** {1 Staged recovery rebuild}

    {!open_} run as separable stages so a recovery orchestrator can
    execute the read- and write-heavy parts on a task pool.  Stage order
    is mandatory: read tasks (concurrency-safe, disjoint code ranges),
    then write tasks (concurrency-safe, disjoint 512 B-aligned hash
    regions), then {!rebuild_finish}.  Serial execution of the same
    stages yields identical persistent and volatile state. *)

val open_raw : ?hybrid:bool -> Pmem.Pool.t -> hdr:int -> unit -> t
(** Attach without rebuilding.  The dictionary must not serve lookups
    until the rebuild stages have completed. *)

type rebuild_plan

val rebuild_read_tasks : t -> grain:int -> rebuild_plan * (unit -> unit) list
(** Tasks that read the code array and heap strings into the plan,
    [grain] codes per task. *)

val rebuild_write_tasks : t -> rebuild_plan -> grain:int -> (unit -> unit) list
(** Eager mode: computes the final probe layout serially in DRAM
    (identical to inserting codes one by one), then returns tasks that
    zero-fill and write disjoint hash-table regions.  Hybrid mode:
    returns no tasks - recovery leaves the dict regions bitwise
    untouched.  Call after all read tasks. *)

val rebuild_finish : t -> rebuild_plan -> unit
(** Hybrid: warm the DRAM mirror.  Eager: publish the entry count
    (with fence). *)

val header_off : t -> int
val encode : t -> string -> int
(** Return the code for a string, assigning a fresh one if absent. *)

val lookup : t -> string -> int option
val decode : t -> int -> string
(** @raise Unknown_code for unassigned codes. *)

val count : t -> int

(** {1 Checkpoint epoch + lazy warm} *)

val set_epoch_cache : t -> int -> unit
(** Cache the global checkpoint epoch; 0 (the default) disables
    stamping. *)

val epoch_stamp : t -> int
(** Persistent epoch stamp; <= a checkpoint's snapshot epoch means the
    dictionary is unchanged since that checkpoint. *)

val warmed : t -> bool

val defer_warm : t -> (unit -> unit) -> unit
(** Switch to lazy mode: the string->code side is stale until [fn] runs
    (checkpoint restore or full rebuild).  {!decode} still serves
    instantly through the code array; the first {!encode} or {!lookup}
    triggers the warm, blocking concurrent touchers with charged capped
    backoff. *)

val ensure_warm : t -> unit
(** Complete a deferred warm now; no-op when already warm. *)

(** {1 Incremental checkpoint} *)

type image = {
  im_next_code : int;
  im_epoch : int;
  im_strings : string array;  (** index e holds code e+1's string *)
}
(** The decoded string table in code order plus the header stamps needed
    to validate and delta-replay it. *)

val snapshot : t -> image
(** Capture the current string table (caller ensures quiescence). *)

val restore : t -> image -> snap_epoch:int -> bool
(** Hybrid: populate the DRAM mirror from the checkpointed strings and
    replay codes assigned since the checkpoint in code order (reading
    only the delta strings); no PMem writes.  Returns [false] — caller
    must fall back to the full staged rebuild — in eager mode or when
    the image is newer than the pool. *)
