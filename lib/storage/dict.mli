(** Persistent bidirectional string dictionary (DD3).

    Keeps both translation directions in PMem (code array + open
    addressing hash) with an optional DRAM mirror (the hybrid variant of
    Sections 4.2/8).  String storage is bump-allocated from segments, so
    encoding costs no per-string PMem allocation (DG5). *)

type t

exception Unknown_code of int

val create : ?hybrid:bool -> Pmem.Pool.t -> t
val open_ : ?hybrid:bool -> Pmem.Pool.t -> hdr:int -> unit -> t
(** Reattach after a restart: rebuilds the persistent hash from the code
    array (scrubbing torn inserts) and warms the DRAM mirror. *)

(** {1 Staged recovery rebuild}

    {!open_} run as separable stages so a recovery orchestrator can
    execute the read- and write-heavy parts on a task pool.  Stage order
    is mandatory: read tasks (concurrency-safe, disjoint code ranges),
    then write tasks (concurrency-safe, disjoint 512 B-aligned hash
    regions), then {!rebuild_finish}.  Serial execution of the same
    stages yields identical persistent and volatile state. *)

val open_raw : ?hybrid:bool -> Pmem.Pool.t -> hdr:int -> unit -> t
(** Attach without rebuilding.  The dictionary must not serve lookups
    until the rebuild stages have completed. *)

type rebuild_plan

val rebuild_read_tasks : t -> grain:int -> rebuild_plan * (unit -> unit) list
(** Tasks that read the code array and heap strings into the plan,
    [grain] codes per task. *)

val rebuild_write_tasks : t -> rebuild_plan -> grain:int -> (unit -> unit) list
(** Computes the final probe layout serially in DRAM (identical to
    inserting codes one by one), then returns tasks that zero-fill and
    write disjoint hash-table regions.  Call after all read tasks. *)

val rebuild_finish : t -> rebuild_plan -> unit
(** Publish the entry count (with fence) and warm the DRAM mirror. *)

val header_off : t -> int
val encode : t -> string -> int
(** Return the code for a string, assigning a fresh one if absent. *)

val lookup : t -> string -> int option
val decode : t -> int -> string
(** @raise Unknown_code for unassigned codes. *)

val count : t -> int
