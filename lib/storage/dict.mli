(** Persistent bidirectional string dictionary (DD3).

    Keeps both translation directions in PMem (code array + open
    addressing hash) with an optional DRAM mirror (the hybrid variant of
    Sections 4.2/8).  String storage is bump-allocated from segments, so
    encoding costs no per-string PMem allocation (DG5). *)

type t

exception Unknown_code of int

val create : ?hybrid:bool -> Pmem.Pool.t -> t
val open_ : ?hybrid:bool -> Pmem.Pool.t -> hdr:int -> unit -> t
(** Reattach after a restart: rebuilds the persistent hash from the code
    array (scrubbing torn inserts) and warms the DRAM mirror. *)

(** {1 Staged recovery rebuild}

    {!open_} run as separable stages so a recovery orchestrator can
    execute the read- and write-heavy parts on a task pool.  Stage order
    is mandatory: read tasks (concurrency-safe, disjoint code ranges),
    then write tasks (concurrency-safe, disjoint 512 B-aligned hash
    regions), then {!rebuild_finish}.  Serial execution of the same
    stages yields identical persistent and volatile state. *)

val open_raw : ?hybrid:bool -> Pmem.Pool.t -> hdr:int -> unit -> t
(** Attach without rebuilding.  The dictionary must not serve lookups
    until the rebuild stages have completed. *)

type rebuild_plan

val rebuild_read_tasks : t -> grain:int -> rebuild_plan * (unit -> unit) list
(** Tasks that read the code array and heap strings into the plan,
    [grain] codes per task. *)

val rebuild_write_tasks : t -> rebuild_plan -> grain:int -> (unit -> unit) list
(** Computes the final probe layout serially in DRAM (identical to
    inserting codes one by one), then returns tasks that zero-fill and
    write disjoint hash-table regions.  Call after all read tasks. *)

val rebuild_finish : t -> rebuild_plan -> unit
(** Publish the entry count (with fence) and warm the DRAM mirror. *)

val header_off : t -> int
val encode : t -> string -> int
(** Return the code for a string, assigning a fresh one if absent. *)

val lookup : t -> string -> int option
val decode : t -> int -> string
(** @raise Unknown_code for unassigned codes. *)

val count : t -> int

(** {1 Checkpoint epoch + lazy warm} *)

val set_epoch_cache : t -> int -> unit
(** Cache the global checkpoint epoch; 0 (the default) disables
    stamping. *)

val epoch_stamp : t -> int
(** Persistent epoch stamp; <= a checkpoint's snapshot epoch means the
    dictionary is unchanged since that checkpoint. *)

val warmed : t -> bool

val defer_warm : t -> (unit -> unit) -> unit
(** Switch to lazy mode: the persistent hash is stale until [fn] runs
    (checkpoint restore or full rebuild).  {!decode} still serves
    instantly through the code array; the first {!encode} or {!lookup}
    triggers the warm, blocking concurrent touchers with charged capped
    backoff. *)

val ensure_warm : t -> unit
(** Complete a deferred warm now; no-op when already warm. *)

(** {1 Incremental checkpoint} *)

type image = {
  im_hash_off : int;
  im_hash_cap : int;
  im_next_code : int;
  im_epoch : int;
  im_bytes : Bytes.t;
}
(** Byte image of the hash region plus the header stamps needed to
    validate and delta-replay it. *)

val snapshot : t -> image
(** Capture the current hash region (caller ensures quiescence). *)

val restore : t -> image -> snap_epoch:int -> bool
(** Reinstate a checkpointed hash image and replay codes assigned since
    the checkpoint in code order (reading only the delta strings).
    Returns [false] — caller must fall back to the full staged rebuild —
    when the hash region moved or grew since the checkpoint. *)
