(** Fixed-size arrays of equally-sized records in persistent memory (DD1).

    Cache-line aligned, total size a multiple of 256 B (DG3); an
    occupancy bitmap enables slot reclamation without deallocation (DG5);
    chunks chain through the storage layer's only persistent pointer. *)

type t

val header_bytes : capacity:int -> int
val bytes_needed : capacity:int -> record_size:int -> int
val create : Pmem.Pool.t -> first_id:int -> capacity:int -> record_size:int -> t
val attach : Pmem.Pool.t -> int -> t
(** Reattach to an existing chunk at the given offset. *)

val pool : t -> Pmem.Pool.t
val off : t -> int
val capacity : t -> int
val record_size : t -> int
val first_id : t -> int

val epoch : t -> int
(** Checkpoint epoch stamp of the chunk (uncharged read). *)

val set_epoch : t -> int -> unit
(** Persist the epoch stamp with a failure-atomic 8-byte store.  Callers
    stamp {e before} mutating the chunk (mark-before-mutate), so a crash
    in between only over-approximates dirtiness. *)

val next : t -> Pmem.Pptr.t
val set_next : t -> Pmem.Pptr.t -> unit
val slot_off : t -> int -> int
val is_used : t -> int -> bool
val is_used_raw : t -> int -> bool
(** Uncharged probe for scan loops (the bitmap word is cache-resident). *)

val set_used : t -> int -> bool -> unit
(** Failure-atomic bitmap-word store (DG4); caller serialises concurrent
    updates to the same word. *)

val set_used_relaxed : t -> int -> bool -> unit
(** Like {!set_used} but without the trailing fence: the aligned word
    store never tears and its write-back is ordered before the caller's
    next fence.  Only for records that become reachable at a later fence
    epoch. *)

val find_free : t -> int option
val used_count : t -> int

val free_slots : t -> int list
(** Free slots in ascending order; reads each 64-slot bitmap word once.
    Used by recovery to rebuild the table free list word-wise. *)

val iter_used : t -> (int -> int -> unit) -> unit
(** [iter_used t f] calls [f slot offset]; reads each bitmap word once. *)
