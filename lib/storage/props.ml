(* Property storage (DD3): cache-line-sized batches of key-value pairs in a
   chunked table, linked per owner.

   Each 64-byte batch holds up to three (key, tag, payload) slots.  Values
   arrive already dictionary-encoded ([Value.Str] carries a code).

   Crash consistency per slot: the 8-byte payload is persisted first, then
   the (key, tag) pair - which shares one aligned 8-byte word - is written
   with a failure-atomic store.  An unfinished slot therefore still carries
   [no_key] and is invisible.

   [~durable:false] defers both persists: the caller owns a later
   durability point that flushes the whole batch (MVTO folds the chains of
   commit-locked records into the undo-log commit's coalesced data flush).
   Until that point a crash may leave the slot torn - only legal when the
   owning record is itself unreachable (insert-locked: recovery reclaims
   it) or when the chain is flushed before the owning commit's fence. *)

module Pool = Pmem.Pool
module Alloc = Pmem.Alloc
module Pptr = Pmem.Pptr
module Media = Pmem.Media
module Pmdk_tx = Pmem.Pmdk_tx

open Layout

type t = { table : Table.t }

let create pool ?capacity ?max_chunks () =
  { table = Table.create pool ?capacity ?max_chunks ~record_size:prop_size () }

let open_ pool ?capacity ?max_chunks ~dir_off () =
  { table = Table.open_ pool ?capacity ?max_chunks ~record_size:prop_size ~dir_off () }

(* Recovery entry point: directory mirror only, free-slot cache rebuilt
   later through [table] (see Table.attach_mirror). *)
let attach_mirror pool ?capacity ?max_chunks ~dir_off () =
  {
    table =
      Table.attach_mirror pool ?capacity ?max_chunks ~record_size:prop_size
        ~dir_off ();
  }

let table t = t.table
let dir_off t = Table.dir_off t.table

let key_tag_word ~key ~tag =
  Int64.logor
    (Int64.of_int (key land 0xFFFFFFFF))
    (Int64.shift_left (Int64.of_int tag) 32)

let slot_key pool off i = Pool.read_u32 pool (off + Prop.slot_key i)
let slot_tag pool off i = Pool.read_u32 pool (off + Prop.slot_tag i)
let slot_payload pool off i = Pool.read_i64 pool (off + Prop.slot_payload i)

let write_slot ?(durable = true) pool off i ~key ~tag ~payload =
  Pool.write_i64 pool (off + Prop.slot_payload i) payload;
  if durable then begin
    Pool.persist pool ~off:(off + Prop.slot_payload i) ~len:8;
    Pool.atomic_write_i64 pool (off + Prop.slot_key i) (key_tag_word ~key ~tag)
  end
  else Pool.write_i64 pool (off + Prop.slot_key i) (key_tag_word ~key ~tag)

let clear_slot ?(durable = true) pool off i =
  let w = key_tag_word ~key:no_key ~tag:0 in
  if durable then Pool.atomic_write_i64 pool (off + Prop.slot_key i) w
  else Pool.write_i64 pool (off + Prop.slot_key i) w

(* Allocate a fresh batch for [owner] (id + 1 encoding kept by caller).
   Batch allocation stays fully durable even when slot writes are
   deferred: the link words must never be stale on media - a recycled
   slot's old [next] pointer surviving a crash would send a chain free
   into batches owned by live records - and the bitmap bit must be
   durably set before any commit makes the chain reachable, or recovery
   would hand the slot back to the free list under a live chain.  The
   batch bytes are written back before the bitmap bit, and the chain
   only becomes reachable at a later fence epoch (the commit that swings
   a record's first_prop), so content-before-bit-before-visibility holds
   without a dedicated fence here. *)
let new_batch t ~owner ~next =
  let pool = Table.pool t.table in
  let id, off = Table.reserve t.table in
  Pool.write_int pool (off + Prop.owner) owner;
  Pool.write_int pool (off + Prop.next) next;
  for i = 0 to prop_slots - 1 do
    Pool.write_i64 pool (off + Prop.slot_key i) (key_tag_word ~key:no_key ~tag:0)
  done;
  Pool.flush_range pool ~off ~len:prop_size;
  Table.publish_relaxed t.table id;
  (id, off)

(* Find (batch offset, slot) holding [key] in the chain starting at
   [first] (id + 1 encoding; 0 = empty chain). *)
let find t ~first ~key =
  let pool = Table.pool t.table in
  let rec go link =
    match unlink link with
    | None -> None
    | Some id ->
        let off = Table.record_off t.table id in
        let rec slots i =
          if i >= prop_slots then go (Pool.read_int pool (off + Prop.next))
          else if slot_key pool off i = key then Some (off, i)
          else slots (i + 1)
        in
        slots 0
  in
  go first

let get t ~first ~key =
  let pool = Table.pool t.table in
  match find t ~first ~key with
  | None -> None
  | Some (off, i) ->
      Some (Value.decode ~tag:(slot_tag pool off i) ~payload:(slot_payload pool off i))

(* Set [key] to [value] in the chain rooted at [first]; returns the
   (possibly new) chain root.  In-place update when the key exists (DG5:
   no copy-on-write); otherwise fills a free slot or prepends a batch. *)
let set ?(durable = true) t ~owner ~first ~key value =
  let pool = Table.pool t.table in
  let tag = Value.tag value and payload = Value.payload value in
  match find t ~first ~key with
  | Some (off, i) ->
      write_slot ~durable pool off i ~key ~tag ~payload;
      first
  | None ->
      let rec free_slot link =
        match unlink link with
        | None -> None
        | Some id ->
            let off = Table.record_off t.table id in
            let rec slots i =
              if i >= prop_slots then
                free_slot (Pool.read_int pool (off + Prop.next))
              else if slot_key pool off i = no_key then Some (off, i)
              else slots (i + 1)
            in
            slots 0
      in
      (match free_slot first with
      | Some (off, i) ->
          write_slot ~durable pool off i ~key ~tag ~payload;
          first
      | None ->
          let id, off = new_batch t ~owner ~next:first in
          write_slot ~durable pool off 0 ~key ~tag ~payload;
          id + 1)

let remove ?(durable = true) t ~first ~key =
  match find t ~first ~key with
  | None -> false
  | Some (off, i) ->
      clear_slot ~durable (Table.pool t.table) off i;
      true

let fold t ~first ~init f =
  let pool = Table.pool t.table in
  let rec go link acc =
    match unlink link with
    | None -> acc
    | Some id ->
        let off = Table.record_off t.table id in
        let acc = ref acc in
        for i = 0 to prop_slots - 1 do
          let key = slot_key pool off i in
          if key <> no_key then
            acc :=
              f !acc key
                (Value.decode ~tag:(slot_tag pool off i)
                   ~payload:(slot_payload pool off i))
        done;
        go (Pool.read_int pool (off + Prop.next)) !acc
  in
  go first init

let all t ~first = List.rev (fold t ~first ~init:[] (fun acc k v -> (k, v) :: acc))

(* Release every batch of a chain (bitmap reuse, no deallocation - DG5). *)
let free_chain t ~first =
  let pool = Table.pool t.table in
  let rec go link =
    match unlink link with
    | None -> ()
    | Some id ->
        let off = Table.record_off t.table id in
        let next = Pool.read_int pool (off + Prop.next) in
        Table.delete t.table id;
        go next
  in
  go first

(* Build a fresh chain for [props] without touching any existing chain;
   the MVTO commit builds the new chain first, atomically swings the
   record's first_prop to it, and only then frees the old one. *)
let build t ~owner props =
  List.fold_left (fun link (key, v) -> set t ~owner ~first:link ~key v) 0 props

(* Rewrite a chain to match [props] exactly (non-transactional callers). *)
let overwrite t ~owner ~first props =
  free_chain t ~first;
  build t ~owner props
