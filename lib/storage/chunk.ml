(* A fixed-size array of equally-sized records in persistent memory (DD1).

   Layout (cache-line aligned, total size a multiple of 256 B per DG3):

     0   next chunk (16 B persistent pointer - the only pptr in the
         storage layer: chunks of one table may in principle span pools,
         and the chain must be self-describing for recovery scans)
     16  first_id     u64   id of the record in slot 0
     24  capacity     u32
     28  record_size  u32
     32  epoch        u64   checkpoint epoch stamp (see lib/checkpoint)
     40  occupancy bitmap, (capacity+63)/64 x u64
     ..  records, starting at the next 64-byte boundary

   The epoch stamp marks the chunk dirty with respect to the last
   checkpoint: every mutation first persists the current global epoch
   here (mark-before-mutate), so recovery can trust any chunk whose
   stamp is <= the checkpoint's snapshot epoch to be unchanged since
   that checkpoint was taken.  A crash between stamp and mutation only
   over-approximates dirtiness, never the reverse.

   The bitmap enables reclamation of deleted record slots without
   deallocating (DG5); each bitmap word is updated with a failure-atomic
   8-byte store. *)

module Pool = Pmem.Pool
module Alloc = Pmem.Alloc
module Pptr = Pmem.Pptr
module Media = Pmem.Media
module Pmdk_tx = Pmem.Pmdk_tx

type t = {
  pool : Pool.t;
  off : int;
  capacity : int;
  record_size : int;
  bitmap_off : int;
  data_off : int;
}

let align_up n a = (n + a - 1) / a * a

let header_bytes ~capacity =
  let bitmap_words = (capacity + 63) / 64 in
  align_up (40 + (8 * bitmap_words)) 64

let bytes_needed ~capacity ~record_size =
  align_up (header_bytes ~capacity + (capacity * record_size)) Media.block_size

let attach pool off =
  let capacity = Pool.read_u32 pool (off + 24) in
  let record_size = Pool.read_u32 pool (off + 28) in
  {
    pool;
    off;
    capacity;
    record_size;
    bitmap_off = off + 40;
    data_off = off + header_bytes ~capacity;
  }

let create pool ~first_id ~capacity ~record_size =
  let size = bytes_needed ~capacity ~record_size in
  let off = Alloc.alloc pool size in
  Pool.fill pool ~off ~len:size '\000';
  Pptr.store pool ~at:off Pptr.null;
  Pool.write_int pool (off + 16) first_id;
  Pool.write_u32 pool (off + 24) capacity;
  Pool.write_u32 pool (off + 28) record_size;
  Pool.persist pool ~off ~len:(header_bytes ~capacity);
  attach pool off

let pool t = t.pool
let off t = t.off
let capacity t = t.capacity
let record_size t = t.record_size
let first_id t = Pool.read_int t.pool (t.off + 16)

(* Epoch stamp: uncharged read (recovery scans it once per chunk; the
   header line is hot anyway), failure-atomic persistent store. *)
let epoch t = Pool.raw_read_int t.pool (t.off + 32)
let set_epoch t e = Pool.atomic_write_int t.pool (t.off + 32) e
let next t = Pptr.load t.pool ~at:t.off

let set_next t p =
  Pptr.store t.pool ~at:t.off p;
  Pool.persist t.pool ~off:t.off ~len:Pptr.size

let slot_off t slot =
  if slot < 0 || slot >= t.capacity then invalid_arg "Chunk.slot_off";
  t.data_off + (slot * t.record_size)

let bitmap_word_off t slot = t.bitmap_off + (8 * (slot / 64))

let is_used t slot =
  let w = Pool.read_i64 t.pool (bitmap_word_off t slot) in
  Int64.logand (Int64.shift_right_logical w (slot mod 64)) 1L = 1L

(* Uncharged liveness check for slot-granular scan loops: during a scan
   the 64-slot bitmap word is cache-resident, so per-slot probing charges
   nothing (the word was charged when the scan entered it). *)
let is_used_raw t slot =
  let w = Pool.raw_read_i64 t.pool (bitmap_word_off t slot) in
  Int64.logand (Int64.shift_right_logical w (slot mod 64)) 1L = 1L

(* Mark a slot used/free with a failure-atomic bitmap-word store (DG4). *)
let set_used t slot used =
  let woff = bitmap_word_off t slot in
  let w = Pool.read_i64 t.pool woff in
  let bit = Int64.shift_left 1L (slot mod 64) in
  let w' = if used then Int64.logor w bit else Int64.logand w (Int64.lognot bit) in
  Pool.atomic_write_i64 t.pool woff w'

(* Relaxed variant: aligned word store + write-back, no trailing fence.
   The store still never tears, and its write-back precedes whatever
   fence the caller issues next in program order, so callers whose
   record only becomes reachable at a later fence epoch (an MVTO
   commit) keep content-before-bit-before-visibility without paying a
   fence per slot. *)
let set_used_relaxed t slot used =
  let woff = bitmap_word_off t slot in
  let w = Pool.read_i64 t.pool woff in
  let bit = Int64.shift_left 1L (slot mod 64) in
  let w' = if used then Int64.logor w bit else Int64.logand w (Int64.lognot bit) in
  Pool.write_i64 t.pool woff w';
  Pool.clwb t.pool woff

let find_free t =
  let words = (t.capacity + 63) / 64 in
  let rec scan w =
    if w >= words then None
    else
      let v = Pool.read_i64 t.pool (t.bitmap_off + (8 * w)) in
      if Int64.equal v (-1L) then scan (w + 1)
      else
        let rec bit i =
          if i >= 64 then scan (w + 1)
          else if Int64.logand (Int64.shift_right_logical v i) 1L = 0L then begin
            let slot = (w * 64) + i in
            if slot < t.capacity then Some slot else None
          end
          else bit (i + 1)
        in
        bit 0
  in
  scan 0

let used_count t =
  let n = ref 0 in
  for slot = 0 to t.capacity - 1 do
    if is_used t slot then incr n
  done;
  !n

(* Free slots in ascending order, one charged bitmap-word read per 64
   slots — the recovery-time replacement for per-slot [is_used] probing. *)
let free_slots t =
  let words = (t.capacity + 63) / 64 in
  let acc = ref [] in
  for w = words - 1 downto 0 do
    let v = Pool.read_i64 t.pool (t.bitmap_off + (8 * w)) in
    if not (Int64.equal v (-1L)) then
      for i = 63 downto 0 do
        let slot = (w * 64) + i in
        if
          slot < t.capacity
          && Int64.logand (Int64.shift_right_logical v i) 1L = 0L
        then acc := slot :: !acc
      done
  done;
  !acc

(* Scan occupied slots reading each 64-slot bitmap word once (the whole
   word is one cache line access, not one per slot). *)
let iter_used t f =
  let words = (t.capacity + 63) / 64 in
  for w = 0 to words - 1 do
    let v = Pool.read_i64 t.pool (t.bitmap_off + (8 * w)) in
    if not (Int64.equal v 0L) then
      for i = 0 to 63 do
        let slot = (w * 64) + i in
        if
          slot < t.capacity
          && Int64.logand (Int64.shift_right_logical v i) 1L = 1L
        then f slot (slot_off t slot)
      done
  done
