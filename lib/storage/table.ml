(* A persistent table: linked list of chunks plus a sparse chunk directory
   (DD1, DD2).

   Record ids are dense per chunk: id = chunk_index * capacity + slot, so
   the directory (a persistent array of chunk offsets, indexed by chunk
   number) acts as the paper's sparse index mapping the first record id of
   each chunk to its memory location.  A DRAM mirror of the directory gives
   O(1) id-to-offset translation without touching PMem (DG6); it is rebuilt
   from the persistent directory on recovery.

   Directory layout:  0: n_chunks u64;  8: chunk capacity u64;
   16..: chunk offsets (u64 each).  The capacity is persisted so that a
   reopen cannot disagree with the on-media id arithmetic.

   Crash consistency:
   - a new chunk is fully initialised and persisted, its directory entry is
     persisted, and only then is n_chunks bumped atomically;
   - a record insert persists the record bytes before the bitmap bit that
     makes it reachable is set (atomic 8-byte bitmap store);
   - deletes only clear the bitmap bit; the slot is recycled later (DG5). *)

module Pool = Pmem.Pool
module Alloc = Pmem.Alloc
module Pptr = Pmem.Pptr
module Media = Pmem.Media
module Pmdk_tx = Pmem.Pmdk_tx

type t = {
  pool : Pool.t;
  record_size : int;
  capacity : int; (* records per chunk *)
  dir_off : int;
  max_chunks : int;
  mutable chunks : Chunk.t array; (* DRAM mirror *)
  mutable nchunks : int;
  free : int Queue.t; (* DRAM cache of reusable record ids *)
  mutable high : int; (* next never-reserved id (high-water mark) *)
  mu : Mutex.t;
  (* Checkpoint epoch plumbing: [cur_epoch] caches the global checkpoint
     epoch; mutations stamp their chunk with it before touching the
     bitmap or records (mark-before-mutate).  0 means no checkpoint
     subsystem is attached and stamping is disabled. *)
  mutable cur_epoch : int;
  (* Lazy-recovery state: while not [warmed], the free-slot cache is
     incomplete; deletes clear bitmap bits eagerly but park their ids in
     [pending] so the eventual warm can reproduce the eager queue order
     (canonical bitmap order minus pending, then pending in delete
     order).  [warm_fn] returns the canonical chunk-order free ids. *)
  mutable warmed : bool;
  pending : int Queue.t;
  mutable warm_fn : unit -> int list;
  warm_mu : Mutex.t;
}

let default_capacity = 512

let dir_bytes ~max_chunks = 16 + (8 * max_chunks)

let create pool ?(capacity = default_capacity) ?(max_chunks = 65_536)
    ~record_size () =
  let dir_off = Alloc.alloc pool (dir_bytes ~max_chunks) in
  Pool.write_int pool dir_off 0;
  Pool.write_int pool (dir_off + 8) capacity;
  Pool.persist pool ~off:dir_off ~len:16;
  {
    pool;
    record_size;
    capacity;
    dir_off;
    max_chunks;
    chunks = [||];
    nchunks = 0;
    free = Queue.create ();
    high = 0;
    mu = Mutex.create ();
    cur_epoch = 0;
    warmed = true;
    pending = Queue.create ();
    warm_fn = (fun () -> []);
    warm_mu = Mutex.create ();
  }

(* Reattach the DRAM directory mirror only, leaving the free-slot cache
   empty.  Recovery rebuilds the free list afterwards (possibly in
   parallel, one chunk per task) via [chunk_free_slots] / [add_free_slots];
   until then [reserve] would allocate past reclaimable holes, so callers
   must complete the rebuild before serving writes. *)
let attach_mirror pool ?capacity ?(max_chunks = 65_536) ~record_size ~dir_off
    () =
  ignore capacity;
  (* the authoritative capacity is the persisted one *)
  let capacity = Pool.read_int pool (dir_off + 8) in
  let nchunks = Pool.read_int pool dir_off in
  let chunks =
    Array.init nchunks (fun i ->
        Chunk.attach pool (Pool.read_int pool (dir_off + 16 + (8 * i))))
  in
  {
    pool;
    record_size;
    capacity;
    dir_off;
    max_chunks;
    chunks;
    nchunks;
    free = Queue.create ();
    high = nchunks * capacity;
    mu = Mutex.create ();
    cur_epoch = 0;
    warmed = true;
    pending = Queue.create ();
    warm_fn = (fun () -> []);
    warm_mu = Mutex.create ();
  }

(* ---- checkpoint epoch plumbing ------------------------------------- *)

let set_epoch_cache t e = t.cur_epoch <- e
let epoch_cache t = t.cur_epoch
let chunk_epoch t ci = Chunk.epoch t.chunks.(ci)

(* Stamp the chunk containing [id] with the current epoch, before the
   caller mutates it.  The stamp is a dedicated 8-byte word, so racing
   markers write the same value; no lock needed. *)
let mark t id =
  if t.cur_epoch > 0 then begin
    let c = t.chunks.(id / t.capacity) in
    if Chunk.epoch c < t.cur_epoch then Chunk.set_epoch c t.cur_epoch
  end

(* ---- lazy warm machinery ------------------------------------------- *)

let warmed t = t.warmed

let defer_warm t fn =
  t.warm_fn <- fn;
  t.warmed <- false

(* Bounded wait: a toucher racing a warmer blocks on [warm_mu] with a
   charged capped exponential backoff rather than erroring. *)
let lock_backoff t =
  if not (Mutex.try_lock t.warm_mu) then begin
    let media = Pool.media t.pool in
    let rng = Random.State.make [| 0x7A81E; Hashtbl.hash t.dir_off |] in
    let rec spin cap =
      if not (Mutex.try_lock t.warm_mu) then begin
        Media.charge media ((cap / 2) + Random.State.int rng (max 1 (cap / 2)));
        Domain.cpu_relax ();
        spin (min (cap * 2) 4096)
      end
    in
    spin 64
  end

let ensure_warm t =
  if not t.warmed then begin
    lock_backoff t;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.warm_mu) @@ fun () ->
    if not t.warmed then begin
      let ids = t.warm_fn () in
      Mutex.lock t.mu;
      let pend = Hashtbl.create 16 in
      Queue.iter (fun id -> Hashtbl.replace pend id ()) t.pending;
      List.iter
        (fun id -> if not (Hashtbl.mem pend id) then Queue.add id t.free)
        ids;
      Queue.transfer t.pending t.free;
      t.warmed <- true;
      Mutex.unlock t.mu
    end
  end

(* Free slots of chunk [ci] as ascending record ids; reads one charged
   bitmap word per 64 slots.  Safe to run concurrently across distinct
   chunks (pure reads). *)
let chunk_free_slots t ci =
  let c = t.chunks.(ci) in
  List.map (fun slot -> (ci * t.capacity) + slot) (Chunk.free_slots c)

let add_free_slots t ids =
  Mutex.lock t.mu;
  List.iter (fun id -> Queue.add id t.free) ids;
  Mutex.unlock t.mu

let free_slots t =
  ensure_warm t;
  Mutex.lock t.mu;
  let ids = List.of_seq (Queue.to_seq t.free) in
  Mutex.unlock t.mu;
  ids

(* Reattach after restart: rebuild the DRAM mirror and the free-slot cache
   by scanning the persistent directory and the chunk bitmaps. *)
let open_ pool ?capacity ?max_chunks ~record_size ~dir_off () =
  let t = attach_mirror pool ?capacity ?max_chunks ~record_size ~dir_off () in
  for ci = 0 to t.nchunks - 1 do
    add_free_slots t (chunk_free_slots t ci)
  done;
  t

let pool t = t.pool
let record_size t = t.record_size
let chunk_capacity t = t.capacity
let dir_off t = t.dir_off
let nchunks t = t.nchunks
let chunk t i = t.chunks.(i)

let append_chunk t =
  if t.nchunks >= t.max_chunks then failwith "Table: directory full";
  let first_id = t.nchunks * t.capacity in
  let c =
    Chunk.create t.pool ~first_id ~capacity:t.capacity
      ~record_size:t.record_size
  in
  (* A chunk born after a checkpoint is dirty w.r.t. that checkpoint. *)
  if t.cur_epoch > 0 then Chunk.set_epoch c t.cur_epoch;
  if t.nchunks > 0 then
    Chunk.set_next t.chunks.(t.nchunks - 1)
      (Pptr.v ~pool:(Pool.id t.pool) ~off:(Chunk.off c));
  Pool.write_int t.pool (t.dir_off + 16 + (8 * t.nchunks)) (Chunk.off c);
  Pool.persist t.pool ~off:(t.dir_off + 16 + (8 * t.nchunks)) ~len:8;
  Pool.atomic_write_int t.pool t.dir_off (t.nchunks + 1);
  t.chunks <- Array.append t.chunks [| c |];
  t.nchunks <- t.nchunks + 1;
  c

let locate t id =
  let ci = id / t.capacity and slot = id mod t.capacity in
  if ci >= t.nchunks then invalid_arg "Table.locate: id out of range";
  (t.chunks.(ci), slot)

let record_off t id =
  let c, slot = locate t id in
  Chunk.slot_off c slot

let is_live t id =
  let ci = id / t.capacity in
  if ci >= t.nchunks then false
  else
    let c, slot = locate t id in
    Chunk.is_used c slot

(* uncharged variant for scan loops (see Chunk.is_used_raw) *)
let is_live_raw t id =
  let ci = id / t.capacity in
  if ci >= t.nchunks then false
  else
    let c, slot = locate t id in
    Chunk.is_used_raw c slot

(* Reserve a fresh (or recycled) slot.  The caller writes and persists the
   record at the returned offset, then calls [publish] to set the bitmap
   bit that makes it reachable. *)
let reserve t =
  ensure_warm t;
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) @@ fun () ->
  let id =
    match Queue.take_opt t.free with
    | Some id -> id
    | None ->
        if t.high >= t.nchunks * t.capacity then ignore (append_chunk t);
        let id = t.high in
        t.high <- t.high + 1;
        id
  in
  (id, record_off t id)

(* Bitmap updates are read-modify-write on a shared 64-slot word, so they
   are serialised on the table mutex (the persistent store itself is a
   single failure-atomic 8-byte write). *)
let publish t id =
  let c, slot = locate t id in
  mark t id;
  Mutex.lock t.mu;
  Chunk.set_used c slot true;
  Mutex.unlock t.mu

let publish_relaxed t id =
  let c, slot = locate t id in
  mark t id;
  Mutex.lock t.mu;
  Chunk.set_used_relaxed c slot true;
  Mutex.unlock t.mu

let delete t id =
  let c, slot = locate t id in
  mark t id;
  Mutex.lock t.mu;
  Chunk.set_used c slot false;
  Queue.add id (if t.warmed then t.free else t.pending);
  Mutex.unlock t.mu

let count t =
  let n = ref 0 in
  Array.iter (fun c -> n := !n + Chunk.used_count c) t.chunks;
  !n

let max_id t = (t.nchunks * t.capacity) - 1

let iter t f =
  Array.iteri
    (fun ci c ->
      Chunk.iter_used c (fun slot off -> f ((ci * t.capacity) + slot) off))
    t.chunks

(* Iterate the records of one chunk - the unit of morsel-driven
   parallelism in the query engine. *)
let iter_chunk t ci f =
  let c = t.chunks.(ci) in
  Chunk.iter_used c (fun slot off -> f ((ci * t.capacity) + slot) off)

(* Scan through the persistent chunk chain instead of the DRAM mirror;
   exercises the pptr links (used by recovery checks and the DG6
   ablation). *)
let iter_via_chain t registry f =
  if t.nchunks > 0 then begin
    let rec go c ci =
      Chunk.iter_used c (fun slot off -> f ((ci * t.capacity) + slot) off);
      let next = Chunk.next c in
      if not (Pptr.is_null next) then begin
        let pool, off = Pptr.deref registry next in
        go (Chunk.attach pool off) (ci + 1)
      end
    in
    go t.chunks.(0) 0
  end
