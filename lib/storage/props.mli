(** Property storage (DD3): cache-line-sized batches of key-value pairs
    in a chunked table, linked per owner.  Values arrive already
    dictionary-encoded.  Slot writes are failure-atomic: payload first,
    then the (key, tag) word. *)

type t

val create : Pmem.Pool.t -> ?capacity:int -> ?max_chunks:int -> unit -> t
val open_ :
  Pmem.Pool.t -> ?capacity:int -> ?max_chunks:int -> dir_off:int -> unit -> t

val attach_mirror :
  Pmem.Pool.t -> ?capacity:int -> ?max_chunks:int -> dir_off:int -> unit -> t
(** Like {!open_} but with an empty free-slot cache; recovery rebuilds it
    through {!table} (see {!Table.attach_mirror}). *)

val table : t -> Table.t
val dir_off : t -> int

val get : t -> first:int -> key:int -> Value.t option
(** Chain roots use the id+1 encoding; 0 = empty chain. *)

val set : ?durable:bool -> t -> owner:int -> first:int -> key:int -> Value.t -> int
(** In-place update when the key exists (DG5), else fills a free slot or
    prepends a batch; returns the (possibly new) chain root.
    [~durable:false] (default [true]) defers the slot persists: the
    caller must flush the touched batches before the chain becomes
    reachable by a committed record (MVTO folds them into the undo-log
    commit's coalesced data flush); batch allocation stays
    failure-atomic. *)

val remove : ?durable:bool -> t -> first:int -> key:int -> bool
val fold : t -> first:int -> init:'a -> ('a -> int -> Value.t -> 'a) -> 'a
val all : t -> first:int -> (int * Value.t) list
val free_chain : t -> first:int -> unit
val build : t -> owner:int -> (int * Value.t) list -> int
(** Build a fresh chain without touching any existing one (MVTO commit:
    build new, swing the record pointer, then free the old). *)

val overwrite : t -> owner:int -> first:int -> (int * Value.t) list -> int
