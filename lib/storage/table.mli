(** Persistent chunked tables (DD1, DD2).

    A table is a linked list of fixed-size chunks plus a persistent chunk
    directory (the paper's sparse index); record ids are dense per chunk
    (id = chunk * capacity + slot).  A DRAM mirror of the directory gives
    O(1) id-to-offset translation (DG6) and is rebuilt on {!open_}.

    Crash discipline: a record's bytes are persisted before the bitmap
    bit that publishes it; deletes only clear the bit and recycle the
    slot later (DG5). *)

type t

val default_capacity : int

val create :
  Pmem.Pool.t -> ?capacity:int -> ?max_chunks:int -> record_size:int -> unit -> t

val open_ :
  Pmem.Pool.t ->
  ?capacity:int ->
  ?max_chunks:int ->
  record_size:int ->
  dir_off:int ->
  unit ->
  t
(** Reattach after a restart: rebuilds the DRAM mirror and free-slot
    cache from the persistent directory and chunk bitmaps.  The
    authoritative chunk capacity is the persisted one. *)

val attach_mirror :
  Pmem.Pool.t ->
  ?capacity:int ->
  ?max_chunks:int ->
  record_size:int ->
  dir_off:int ->
  unit ->
  t
(** Like {!open_} but leaves the free-slot cache empty; recovery rebuilds
    it (possibly in parallel, one chunk per task) via {!chunk_free_slots}
    and {!add_free_slots}.  Do not serve writes before the rebuild. *)

val chunk_free_slots : t -> int -> int list
(** Free slots of one chunk as ascending record ids; one charged bitmap
    word read per 64 slots.  Pure reads — safe concurrently across
    distinct chunks. *)

val add_free_slots : t -> int list -> unit
(** Append ids to the free-slot cache, preserving list order. *)

val free_slots : t -> int list
(** Snapshot of the free-slot cache in queue order (state-equivalence
    checks in recovery tests).  Forces a lazy warm first. *)

val set_epoch_cache : t -> int -> unit
(** Cache the global checkpoint epoch; 0 (the default) disables epoch
    stamping entirely. *)

val epoch_cache : t -> int

val chunk_epoch : t -> int -> int
(** Persistent epoch stamp of chunk [ci]; a chunk whose stamp is <= a
    checkpoint's snapshot epoch is unchanged since that checkpoint. *)

val mark : t -> int -> unit
(** Stamp the chunk containing [id] with the current epoch.  Callers
    mark {e before} mutating record bytes (mark-before-mutate). *)

val warmed : t -> bool
(** Whether the free-slot cache is complete. *)

val defer_warm : t -> (unit -> int list) -> unit
(** Switch the table to lazy mode: [fn] must return the canonical
    chunk-order free ids when invoked; the first {!reserve} or
    {!free_slots} (or an explicit {!ensure_warm}) runs it.  Deletes
    observed before the warm are spliced in afterwards in delete order,
    reproducing the eager queue order exactly. *)

val ensure_warm : t -> unit
(** Complete a deferred warm now; concurrent touchers block with charged
    capped backoff rather than erroring.  No-op when already warm. *)

val pool : t -> Pmem.Pool.t
val record_size : t -> int
val chunk_capacity : t -> int
val dir_off : t -> int
(** Offset of the persistent directory; store it in a root slot. *)

val nchunks : t -> int
val chunk : t -> int -> Chunk.t
val record_off : t -> int -> int
val is_live : t -> int -> bool
val is_live_raw : t -> int -> bool
(** Uncharged liveness probe for scan loops (the bitmap word is
    cache-resident during a scan). *)

val reserve : t -> int * int
(** Reserve a fresh or recycled slot; returns (id, offset).  Write and
    persist the record, then {!publish} it. *)

val publish : t -> int -> unit
(** Set the bitmap bit that makes a reserved record reachable
    (failure-atomic). *)

val publish_relaxed : t -> int -> unit
(** Like {!publish}, but the bit's write-back rides the caller's next
    fence instead of paying its own: for records that only become
    reachable at a later fence epoch (an MVTO commit).  The word store
    itself still never tears. *)

val delete : t -> int -> unit
(** Clear the bitmap bit and queue the slot for reuse. *)

val count : t -> int
val max_id : t -> int
val iter : t -> (int -> int -> unit) -> unit
(** [iter t f] calls [f id offset] for every live record. *)

val iter_chunk : t -> int -> (int -> int -> unit) -> unit
(** Iterate one chunk - the morsel unit of parallel scans. *)

val iter_via_chain : t -> Pmem.Pptr.registry -> (int -> int -> unit) -> unit
(** Scan through the persistent pptr chunk chain instead of the DRAM
    mirror (recovery checks; DG6 ablation). *)
