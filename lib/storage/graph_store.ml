(* The persistent property-graph store (Section 4): node, relationship and
   property tables in PMem, plus the string dictionary.

   This layer is transaction-agnostic: it reads and writes records with the
   MVTO header fields (txn_id, bts, ets, rts) as plain data.  The [Mvcc]
   library implements the protocol on top; bulk loaders use it directly.

   Adjacency (DD4): a node heads its outgoing and incoming relationship
   lists; relationships chain through [next_src] / [next_dst] - all 8-byte
   offsets, never persistent pointers. *)

module Pool = Pmem.Pool
module Alloc = Pmem.Alloc
module Pptr = Pmem.Pptr
module Media = Pmem.Media
module Pmdk_tx = Pmem.Pmdk_tx

open Layout

(* Root-slot registry (see Alloc.set_root). *)
let root_dict = 0
let root_nodes = 1
let root_rels = 2
let root_props = 3
let root_index = 4
let root_jit = 5
let root_ckpt = 6 (* checkpoint region header (lib/checkpoint) *)

type t = {
  pool : Pool.t;
  registry : Pptr.registry;
  dict : Dict.t;
  nodes : Table.t;
  rels : Table.t;
  props : Props.t;
}

let format ?(hybrid_dict = true) ?chunk_capacity pool =
  Alloc.format pool;
  let dict = Dict.create ~hybrid:hybrid_dict pool in
  Alloc.set_root pool root_dict (Dict.header_off dict);
  let nodes = Table.create pool ?capacity:chunk_capacity ~record_size:node_size () in
  Alloc.set_root pool root_nodes (Table.dir_off nodes);
  let rels = Table.create pool ?capacity:chunk_capacity ~record_size:rel_size () in
  Alloc.set_root pool root_rels (Table.dir_off rels);
  let props = Props.create pool ?capacity:chunk_capacity () in
  Alloc.set_root pool root_props (Props.dir_off props);
  let registry = Pptr.registry_create () in
  Pptr.register registry pool;
  { pool; registry; dict; nodes; rels; props }

(* Reattach to a formatted pool after a restart/crash: roll back any
   interrupted PMDK transaction, then rebuild the volatile mirrors. *)
let open_ ?(hybrid_dict = true) ?chunk_capacity pool =
  if not (Alloc.is_formatted pool) then failwith "Graph_store.open_: unformatted pool";
  ignore (Pmdk_tx.recover pool);
  let dict = Dict.open_ ~hybrid:hybrid_dict pool ~hdr:(Alloc.get_root pool root_dict) () in
  let nodes =
    Table.open_ pool ?capacity:chunk_capacity ~record_size:node_size
      ~dir_off:(Alloc.get_root pool root_nodes) ()
  in
  let rels =
    Table.open_ pool ?capacity:chunk_capacity ~record_size:rel_size
      ~dir_off:(Alloc.get_root pool root_rels) ()
  in
  let props =
    Props.open_ pool ?capacity:chunk_capacity
      ~dir_off:(Alloc.get_root pool root_props) ()
  in
  let registry = Pptr.registry_create () in
  Pptr.register registry pool;
  { pool; registry; dict; nodes; rels; props }

(* Recovery entry point: roll back interrupted PMDK transactions and
   attach the DRAM directory mirrors, but defer every rebuild the
   recovery orchestrator parallelises — the dictionary hash is not
   rebuilt (Dict.open_raw) and the table free-slot caches stay empty
   (Table.attach_mirror).  The store must not serve requests until the
   orchestrator has run the rebuild stages. *)
let open_deferred ?(hybrid_dict = true) ?chunk_capacity pool =
  if not (Alloc.is_formatted pool) then
    failwith "Graph_store.open_deferred: unformatted pool";
  ignore (Pmdk_tx.recover pool);
  let dict =
    Dict.open_raw ~hybrid:hybrid_dict pool ~hdr:(Alloc.get_root pool root_dict) ()
  in
  let nodes =
    Table.attach_mirror pool ?capacity:chunk_capacity ~record_size:node_size
      ~dir_off:(Alloc.get_root pool root_nodes) ()
  in
  let rels =
    Table.attach_mirror pool ?capacity:chunk_capacity ~record_size:rel_size
      ~dir_off:(Alloc.get_root pool root_rels) ()
  in
  let props =
    Props.attach_mirror pool ?capacity:chunk_capacity
      ~dir_off:(Alloc.get_root pool root_props) ()
  in
  let registry = Pptr.registry_create () in
  Pptr.register registry pool;
  { pool; registry; dict; nodes; rels; props }

let pool t = t.pool
let dict t = t.dict
let node_table t = t.nodes
let rel_table t = t.rels
let prop_store t = t.props
let registry t = t.registry
let media t = Pool.media t.pool

(* Checkpoint epoch plumbing: propagate the cached global epoch to every
   stamped structure (dict header, node/rel chunks; index descriptors
   are handled by Core, which owns the index handles). *)
let set_epoch_cache t e =
  Dict.set_epoch_cache t.dict e;
  Table.set_epoch_cache t.nodes e;
  Table.set_epoch_cache t.rels e;
  Table.set_epoch_cache (Props.table t.props) e

let mark_node t id = Table.mark t.nodes id
let mark_rel t id = Table.mark t.rels id

(* Dictionary helpers. *)

let code t s = Dict.encode t.dict s
let code_opt t s = Dict.lookup t.dict s
let string_of_code t c = Dict.decode t.dict c

let encode_value t = function
  | Value.Text s -> Value.Str (Dict.encode t.dict s)
  | v -> v

let decode_value t = function
  | Value.Str c -> Value.Text (Dict.decode t.dict c)
  | v -> v

(* Decoded record I/O. *)

(* Whole-record reads charge one line-granular access (the record is one
   or two cache lines) and pick fields out of the fetched bytes. *)
let read_node t id : node =
  let off = Table.record_off t.nodes id in
  let p = t.pool in
  Pool.touch_read p ~off ~len:node_size;
  {
    label = Int64.to_int (Pool.raw_read_i64 p (off + Node.label)) land 0xFFFFFFFF;
    first_out = Pool.raw_read_int p (off + Node.first_out);
    first_in = Pool.raw_read_int p (off + Node.first_in);
    first_prop = Pool.raw_read_int p (off + Node.first_prop);
    txn_id = Pool.raw_read_int p (off + Node.txn_id);
    bts = Pool.raw_read_int p (off + Node.bts);
    ets = Pool.raw_read_int p (off + Node.ets);
    rts = Pool.raw_read_int p (off + Node.rts);
  }

let write_node ?(persist = true) t id (n : node) =
  Table.mark t.nodes id;
  let off = Table.record_off t.nodes id in
  let p = t.pool in
  Pool.write_u32 p (off + Node.label) n.label;
  Pool.write_int p (off + Node.first_out) n.first_out;
  Pool.write_int p (off + Node.first_in) n.first_in;
  Pool.write_int p (off + Node.first_prop) n.first_prop;
  Pool.write_int p (off + Node.txn_id) n.txn_id;
  Pool.write_int p (off + Node.bts) n.bts;
  Pool.write_int p (off + Node.ets) n.ets;
  Pool.write_int p (off + Node.rts) n.rts;
  if persist then Pool.persist p ~off ~len:node_size

let read_rel t id : rel =
  let off = Table.record_off t.rels id in
  let p = t.pool in
  Pool.touch_read p ~off ~len:rel_size;
  {
    rlabel = Int64.to_int (Pool.raw_read_i64 p (off + Rel.label)) land 0xFFFFFFFF;
    src = Pool.raw_read_int p (off + Rel.src);
    dst = Pool.raw_read_int p (off + Rel.dst);
    next_src = Pool.raw_read_int p (off + Rel.next_src);
    next_dst = Pool.raw_read_int p (off + Rel.next_dst);
    rfirst_prop = Pool.raw_read_int p (off + Rel.first_prop);
    rtxn_id = Pool.raw_read_int p (off + Rel.txn_id);
    rbts = Pool.raw_read_int p (off + Rel.bts);
    rets = Pool.raw_read_int p (off + Rel.ets);
    rrts = Pool.raw_read_int p (off + Rel.rts);
  }

let write_rel ?(persist = true) t id (r : rel) =
  Table.mark t.rels id;
  let off = Table.record_off t.rels id in
  let p = t.pool in
  Pool.write_u32 p (off + Rel.label) r.rlabel;
  Pool.write_int p (off + Rel.src) r.src;
  Pool.write_int p (off + Rel.dst) r.dst;
  Pool.write_int p (off + Rel.next_src) r.next_src;
  Pool.write_int p (off + Rel.next_dst) r.next_dst;
  Pool.write_int p (off + Rel.first_prop) r.rfirst_prop;
  Pool.write_int p (off + Rel.txn_id) r.rtxn_id;
  Pool.write_int p (off + Rel.bts) r.rbts;
  Pool.write_int p (off + Rel.ets) r.rets;
  Pool.write_int p (off + Rel.rts) r.rrts;
  if persist then Pool.persist p ~off ~len:rel_size

(* Single-field accessors for hot paths (scans, JIT runtime). *)

let node_off t id = Table.record_off t.nodes id
let rel_off t id = Table.record_off t.rels id
let node_field t id field = Pool.read_int t.pool (node_off t id + field)
let rel_field t id field = Pool.read_int t.pool (rel_off t id + field)
let node_label t id = Pool.read_u32 t.pool (node_off t id + Node.label)
let rel_label t id = Pool.read_u32 t.pool (rel_off t id + Rel.label)

let set_node_field t id field v =
  Pool.atomic_write_int t.pool (node_off t id + field) v

let set_rel_field t id field v =
  Pool.atomic_write_int t.pool (rel_off t id + field) v

(* Record creation (raw, used by loaders and by the MVTO layer, which sets
   the transactional header fields through the [node]/[rel] values). *)

(* Record-before-bit ordering without a dedicated fence: the record
   bytes are written back first, then the bitmap publish's own
   failure-atomic store (write-back + fence) retires both - at any crash
   cut where the bit is durable, the record write-backs have already
   executed. *)
(* Record bytes are written back before the bitmap bit, and the bit's
   write-back precedes the caller's next fence (the MVTO commit epoch,
   or the splice fence of a following insert_rel), so neither the
   content flush nor the publication owes a fence of its own. *)
let insert_node t (n : node) =
  let id, off = Table.reserve t.nodes in
  write_node ~persist:false t id n;
  Pool.flush_range t.pool ~off ~len:node_size;
  Table.publish_relaxed t.nodes id;
  id

(* Insert a relationship and splice it into both adjacency lists.  The
   record is persisted before publication; each list-head update is one
   failure-atomic 8-byte store (the two heads are independent, so they
   share a single fence), and a crash leaves at worst a published
   relationship reachable from one list - recovery-safe because the record
   itself is complete. *)
let insert_rel t (r : rel) =
  let id, off = Table.reserve t.rels in
  let src_head = node_field t r.src Node.first_out in
  let dst_head = node_field t r.dst Node.first_in in
  write_rel ~persist:false t id { r with next_src = src_head; next_dst = dst_head };
  Pool.flush_range t.pool ~off ~len:rel_size;
  Table.publish_relaxed t.rels id;
  let so = node_off t r.src + Node.first_out in
  let doff = node_off t r.dst + Node.first_in in
  Pool.write_int t.pool so (id + 1);
  Pool.write_int t.pool doff (id + 1);
  Pool.clwb t.pool so;
  Pool.clwb t.pool doff;
  Pool.sfence t.pool;
  id

(* Adjacency iteration (DD4): follows offset chains directly in PMem. *)

let iter_out t node_id f =
  let rec go link =
    match unlink link with
    | None -> ()
    | Some rid ->
        f rid;
        go (rel_field t rid Rel.next_src)
  in
  go (node_field t node_id Node.first_out)

let iter_in t node_id f =
  let rec go link =
    match unlink link with
    | None -> ()
    | Some rid ->
        f rid;
        go (rel_field t rid Rel.next_dst)
  in
  go (node_field t node_id Node.first_in)

let out_degree t node_id =
  let n = ref 0 in
  iter_out t node_id (fun _ -> incr n);
  !n

let in_degree t node_id =
  let n = ref 0 in
  iter_in t node_id (fun _ -> incr n);
  !n

(* Unlink a relationship from both adjacency lists (walks the chains to fix
   the predecessor; heads are fixed with atomic stores). *)
let unlink_rel t rid =
  let r = read_rel t rid in
  let fix_list ~head_field ~next_field ~node =
    let rec go prev link =
      match unlink link with
      | None -> ()
      | Some cur when cur = rid -> (
          let next = rel_field t cur next_field in
          match prev with
          | None -> set_node_field t node head_field next
          | Some p -> set_rel_field t p next_field next)
      | Some cur -> go (Some cur) (rel_field t cur next_field)
    in
    go None (node_field t node head_field)
  in
  fix_list ~head_field:Node.first_out ~next_field:Rel.next_src ~node:r.src;
  fix_list ~head_field:Node.first_in ~next_field:Rel.next_dst ~node:r.dst

let remove_rel t rid =
  unlink_rel t rid;
  let r = read_rel t rid in
  Props.free_chain t.props ~first:r.rfirst_prop;
  Table.delete t.rels rid

let remove_node t id =
  let n = read_node t id in
  Props.free_chain t.props ~first:n.first_prop;
  Table.delete t.nodes id

(* Properties. *)

let node_prop t id key =
  Props.get t.props ~first:(node_field t id Node.first_prop) ~key

let rel_prop t id key =
  Props.get t.props ~first:(rel_field t id Rel.first_prop) ~key

(* [~durable:false] defers slot persistence and swings [first_prop] with
   a plain store; only legal while the record is unreachable
   (insert-locked) and the caller flushes the record + chain before the
   commit fence that makes it visible. *)
let set_node_prop ?(durable = true) t id ~key value =
  Table.mark t.nodes id;
  let first = node_field t id Node.first_prop in
  let value = encode_value t value in
  let first' = Props.set ~durable t.props ~owner:(id + 1) ~first ~key value in
  if first' <> first then
    if durable then set_node_field t id Node.first_prop first'
    else Pool.write_int t.pool (node_off t id + Node.first_prop) first'

let set_rel_prop ?(durable = true) t id ~key value =
  Table.mark t.rels id;
  let first = rel_field t id Rel.first_prop in
  let value = encode_value t value in
  let first' = Props.set ~durable t.props ~owner:(id + 1) ~first ~key value in
  if first' <> first then
    if durable then set_rel_field t id Rel.first_prop first'
    else Pool.write_int t.pool (rel_off t id + Rel.first_prop) first'

let node_props t id = Props.all t.props ~first:(node_field t id Node.first_prop)
let rel_props t id = Props.all t.props ~first:(rel_field t id Rel.first_prop)

(* Scans. *)

let iter_nodes t f = Table.iter t.nodes (fun id _off -> f id)
let iter_rels t f = Table.iter t.rels (fun id _off -> f id)
let iter_nodes_chunk t ci f = Table.iter_chunk t.nodes ci (fun id _off -> f id)
let iter_rels_chunk t ci f = Table.iter_chunk t.rels ci (fun id _off -> f id)
let node_chunks t = Table.nchunks t.nodes
let rel_chunks t = Table.nchunks t.rels
let node_count t = Table.count t.nodes
let rel_count t = Table.count t.rels
let node_live t id = Table.is_live t.nodes id
let rel_live t id = Table.is_live t.rels id

(* High-level helpers used by loaders (string labels/keys, Text values). *)

let create_node t ~label ~props:plist =
  let id = insert_node t { (empty_node ()) with label = code t label } in
  List.iter (fun (k, v) -> set_node_prop t id ~key:(code t k) v) plist;
  id

let create_rel t ~label ~src ~dst ~props:plist =
  let id =
    insert_rel t { (empty_rel ()) with rlabel = code t label; src; dst }
  in
  List.iter (fun (k, v) -> set_rel_prop t id ~key:(code t k) v) plist;
  id
