(* Register-use queries over an IR function, shared by the DCE pass and
   the emitter's compare/branch fusion peephole. *)

open Ir

let uses acc ins =
  let rv acc = function Reg r -> r :: acc | Imm _ -> acc in
  match ins with
  | Load _ | ChunkStart _ | ChunkCount _ | ChunkSize _ | LoadParam _
  | ProfHook _ ->
      acc
  | Store (_, v) | Move (_, v) | Not (_, v) | IsNull (_, v) -> rv acc v
  | Bin (_, _, a, b) | Cmp (_, _, a, b) | FetchNode (_, a, b) -> rv (rv acc a) b
  | NodeExists (_, n)
  | NodeLabel (_, n) | RelLabel (_, n)
  | NodePropV (_, n, _) | RelPropV (_, n, _)
  | RelSrc (_, n) | RelDst (_, n)
  | FirstOut (_, n) | NextSrc (_, n) | FirstIn (_, n) | NextDst (_, n)
  | RelVisible (_, n)
  | DeleteNode n | DeleteRel n ->
      rv acc n
  | IndexProbe (_, _, _, _, lo, hi) -> rv (rv acc lo) hi
  | IndexCursorNext (_, _, c) -> c :: acc
  | CreateNode (_, _, ps) -> List.fold_left (fun a (_, _, v) -> rv a v) acc ps
  | CreateRel (_, _, s, d, ps) ->
      List.fold_left (fun a (_, _, v) -> rv a v) (rv (rv acc s) d) ps
  | SetNodeProp (n, _, _, v) | SetRelProp (n, _, _, v) -> rv (rv acc n) v
  | EmitRow cols -> List.fold_left (fun a (_, v) -> rv a v) acc cols

(* Is [reg] read anywhere besides as the condition of block [except]'s
   terminator and by that block's own trailing compare?  Conservative:
   any other read (instruction operand or other terminator) counts. *)
let read_elsewhere (f : func) ~reg ~except =
  let found = ref false in
  Array.iteri
    (fun bi b ->
      let n = List.length b.instrs in
      List.iteri
        (fun ii ins ->
          let is_trailing_def = bi = except && ii = n - 1 in
          if (not is_trailing_def) && List.mem reg (uses [] ins) then
            found := true)
        b.instrs;
      match b.term with
      | CondBr (Reg r, _, _) when r = reg && bi <> except -> found := true
      | _ -> ())
    f.blocks;
  !found
