(** Capture/replay tier: snapshots of the post-compile closure batch,
    keyed by plan fingerprint + optimisation level + parallelism degree.
    A replay rebinds only the transaction snapshot and the parameters -
    no plan walk, no split, no cache probe (tinygrad-style JIT capture).
    The table is volatile and per-database. *)

(** Execution shape of a captured batch. *)
type shape = Rows  (** pipeline rows feed the staged tail *)
  | Agg of Query.Interp.agg
      (** morsels feed per-chunk partials, merged in chunk order at the
          barrier, then the staged tail *)

type entry = {
  compiled : Emit.compiled;
  shape : shape;
  tail : Query.Interp.tail;
  degree : int;  (** parallelism degree the batch was captured at *)
}

type t

val create : unit -> t
val find : t -> string -> entry option
val add : t -> string -> entry -> unit
val size : t -> int
