(* IR -> executable code (the "backend").

   Each basic block is partially evaluated into one fused OCaml closure:
   operands, field offsets, property keys and call targets are resolved at
   emission time, so executing a block is a straight run of monomorphic
   closures over an unboxed [int array] register file - no per-tuple
   allocation, no operator dispatch, no boxed values.  This is the
   closure-generation stand-in for LLVM machine-code emission: the same
   *relative* gap to the tree-walking interpreter (which allocates a tuple
   per operator hop and dispatches on every expression node) that the
   paper measures between JIT-compiled and AOT-interpreted execution.

   The emitted function is re-entrant: every invocation allocates its own
   register file, so morsels can run it concurrently. *)

open Ir
module Value = Storage.Value

type runtime = {
  g : Query.Source.t;
  params : Value.t array;
  sink : Value.t array -> unit;
  chunk_lo : int; (* morsel bounds; chunk_hi = -1 means "all chunks" *)
  chunk_hi : int;
  nchunks : int;
  prof : Obs.Profile.t option; (* ProfHook target; None outside profiling *)
}

type state = {
  regs : int array;
  probes : int array array; (* per IndexProbe materialisation *)
  rt : runtime;
}

let payload_of_value = function
  | Value.Int i -> i
  | Value.Str c -> c
  | Value.Bool b -> if b then 1 else 0
  | Value.Null -> null_v
  | Value.Float _ -> invalid_arg "Jit: float values not supported in generated code"
  | Value.Text _ -> invalid_arg "Jit: unencoded text at runtime"

let value_of_payload tag p =
  if p = null_v then Value.Null
  else
    match tag with
    | TagInt -> Value.Int p
    | TagBool -> Value.Bool (p <> 0)
    | TagStr -> Value.Str p
    | TagRef -> Value.Int p

let prop_payload = function
  | Some v -> ( match v with Value.Null -> null_v | v -> payload_of_value v)
  | None -> null_v

(* Compile one rv to an accessor closure.  Register indices are validated
   at compile time (they come from the code generator), so the emitted
   code uses unchecked array access - this is "machine code", after
   all. *)
let rv_c = function
  | Imm i -> fun (_ : state) -> i
  | Reg r -> fun st -> Array.unsafe_get st.regs r

let cmp_c op =
  match op with
  | Ceq -> fun a b -> if a = null_v || b = null_v then 0 else if a = b then 1 else 0
  | Cne -> fun a b -> if a = null_v || b = null_v then 0 else if a <> b then 1 else 0
  | Clt -> fun a b -> if a = null_v || b = null_v then 0 else if a < b then 1 else 0
  | Cle -> fun a b -> if a = null_v || b = null_v then 0 else if a <= b then 1 else 0
  | Cgt -> fun a b -> if a = null_v || b = null_v then 0 else if a > b then 1 else 0
  | Cge -> fun a b -> if a = null_v || b = null_v then 0 else if a >= b then 1 else 0

let truthy v = v <> 0 && v <> null_v

let bin_c op =
  match op with
  | Add -> ( + )
  | Sub -> ( - )
  | Mul -> ( * )
  | BAnd -> fun a b -> if truthy a && truthy b then 1 else 0
  | BOr -> fun a b -> if truthy a || truthy b then 1 else 0
  | BXor -> ( lxor )

let instr_c (ins : instr) : state -> unit =
  match ins with
  | Load _ | Store _ ->
      invalid_arg "Jit.Emit: stack slots must be promoted before emission"
  | Move (r, v) ->
      let v = rv_c v in
      fun st -> Array.unsafe_set st.regs r (v st)
  | Bin (op, r, a, b) ->
      let op = bin_c op and a = rv_c a and b = rv_c b in
      fun st -> Array.unsafe_set st.regs r (op (a st) (b st))
  | Cmp (op, r, a, b) ->
      let op = cmp_c op and a = rv_c a and b = rv_c b in
      fun st -> Array.unsafe_set st.regs r (op (a st) (b st))
  | Not (r, a) ->
      let a = rv_c a in
      fun st -> Array.unsafe_set st.regs r (if truthy (a st) then 0 else 1)
  | IsNull (r, a) ->
      let a = rv_c a in
      fun st -> Array.unsafe_set st.regs r (if a st = null_v then 1 else 0)
  | ChunkStart r -> fun st -> Array.unsafe_set st.regs r st.rt.chunk_lo
  | ChunkCount r ->
      fun st ->
        Array.unsafe_set st.regs r
          (if st.rt.chunk_hi < 0 then st.rt.nchunks else st.rt.chunk_hi)
  | ChunkSize r -> fun st -> Array.unsafe_set st.regs r (st.rt.g.Query.Source.chunk_size ())
  | FetchNode (r, c, s) ->
      let c = rv_c c and s = rv_c s in
      fun st ->
        Array.unsafe_set st.regs r
          (st.rt.g.Query.Source.fetch_node ~chunk:(c st) ~slot:(s st))
  | NodeExists (r, n) ->
      let n = rv_c n in
      fun st ->
        let id = n st in
        Array.unsafe_set st.regs r
          (if id >= 0 && id <> null_v && st.rt.g.Query.Source.node_exists id then 1
           else 0)
  | NodeLabel (r, n) ->
      let n = rv_c n in
      fun st -> Array.unsafe_set st.regs r (st.rt.g.Query.Source.node_label (n st))
  | RelLabel (r, n) ->
      let n = rv_c n in
      fun st -> Array.unsafe_set st.regs r (st.rt.g.Query.Source.rel_label (n st))
  | NodePropV (r, n, key) ->
      let n = rv_c n in
      fun st ->
        Array.unsafe_set st.regs r
          (prop_payload (st.rt.g.Query.Source.node_prop_fast (n st) key))
  | RelPropV (r, n, key) ->
      let n = rv_c n in
      fun st ->
        Array.unsafe_set st.regs r
          (prop_payload (st.rt.g.Query.Source.rel_prop_fast (n st) key))
  | RelSrc (r, e) ->
      let e = rv_c e in
      fun st -> Array.unsafe_set st.regs r (st.rt.g.Query.Source.rel_src (e st))
  | RelDst (r, e) ->
      let e = rv_c e in
      fun st -> Array.unsafe_set st.regs r (st.rt.g.Query.Source.rel_dst (e st))
  | FirstOut (r, n) ->
      let n = rv_c n in
      fun st -> Array.unsafe_set st.regs r (st.rt.g.Query.Source.first_out (n st))
  | NextSrc (r, e) ->
      let e = rv_c e in
      fun st -> Array.unsafe_set st.regs r (st.rt.g.Query.Source.next_src (e st))
  | FirstIn (r, n) ->
      let n = rv_c n in
      fun st -> Array.unsafe_set st.regs r (st.rt.g.Query.Source.first_in (n st))
  | NextDst (r, e) ->
      let e = rv_c e in
      fun st -> Array.unsafe_set st.regs r (st.rt.g.Query.Source.next_dst (e st))
  | RelVisible (r, e) ->
      let e = rv_c e in
      fun st -> Array.unsafe_set st.regs r (if st.rt.g.Query.Source.rel_visible (e st) then 1 else 0)
  | LoadParam (r, i) ->
      fun st -> Array.unsafe_set st.regs r (payload_of_value st.rt.params.(i))
  | IndexProbe (r, label, key, probe, lo, hi) ->
      let lo = rv_c lo and hi = rv_c hi in
      fun st ->
        let acc = ref [] and n = ref 0 in
        let vlo = lo st and vhi = hi st in
        (if vlo = vhi then
           st.rt.g.Query.Source.index_lookup ~label ~key (Value.Int vlo) (fun id ->
               acc := id :: !acc;
               incr n)
         else
           st.rt.g.Query.Source.index_range ~label ~key ~lo:(Value.Int vlo)
             ~hi:(Value.Int vhi) (fun id ->
               acc := id :: !acc;
               incr n));
        let arr = Array.make (max 1 !n) (-1) in
        List.iteri (fun i id -> arr.(!n - 1 - i) <- id) !acc;
        st.probes.(probe) <- arr;
        st.regs.(r) <- !n
  | IndexCursorNext (r, probe, cursor) ->
      fun st -> Array.unsafe_set st.regs r (Array.unsafe_get st.probes.(probe) (Array.unsafe_get st.regs cursor))
  | CreateNode (r, label, props) ->
      let props = List.map (fun (k, t, v) -> (k, t, rv_c v)) props in
      fun st ->
        let ps =
          List.filter_map
            (fun (k, t, v) ->
              let p = v st in
              if p = null_v then None else Some (k, value_of_payload t p))
            props
        in
        st.regs.(r) <- st.rt.g.Query.Source.create_node ~label ~props:ps
  | CreateRel (r, label, s, d, props) ->
      let s = rv_c s and d = rv_c d in
      let props = List.map (fun (k, t, v) -> (k, t, rv_c v)) props in
      fun st ->
        let ps =
          List.filter_map
            (fun (k, t, v) ->
              let p = v st in
              if p = null_v then None else Some (k, value_of_payload t p))
            props
        in
        st.regs.(r) <-
          st.rt.g.Query.Source.create_rel ~label ~src:(s st) ~dst:(d st) ~props:ps
  | SetNodeProp (n, key, tag, v) ->
      let n = rv_c n and v = rv_c v in
      fun st ->
        st.rt.g.Query.Source.set_node_prop (n st) ~key (value_of_payload tag (v st))
  | SetRelProp (n, key, tag, v) ->
      let n = rv_c n and v = rv_c v in
      fun st ->
        st.rt.g.Query.Source.set_rel_prop (n st) ~key (value_of_payload tag (v st))
  | DeleteNode n ->
      let n = rv_c n in
      fun st -> st.rt.g.Query.Source.delete_node (n st)
  | DeleteRel n ->
      let n = rv_c n in
      fun st -> st.rt.g.Query.Source.delete_rel (n st)
  | EmitRow cols ->
      let cols = List.map (fun (t, v) -> (t, rv_c v)) cols in
      let n = List.length cols in
      let cols = Array.of_list cols in
      fun st ->
        let row = Array.make n Value.Null in
        for i = 0 to n - 1 do
          let t, v = cols.(i) in
          row.(i) <- value_of_payload t (v st)
        done;
        st.rt.sink row
  | ProfHook i ->
      fun st ->
        (match st.rt.prof with Some p -> Obs.Profile.hit p i | None -> ())

type compiled = { run : runtime -> unit; nblocks : int; ninstrs : int }

(* Compile a function: each block folds its instruction closures into one
   straight-line closure; a trampoline follows block ids. *)
let emit (f : func) : compiled =
  if f.nslots > 0 then begin
    (* -O0 still has to run: promote trivially (same as mem2reg) *)
    Passes.mem2reg f
  end;
  let nprobes =
    Array.fold_left
      (fun acc b ->
        List.fold_left
          (fun acc i ->
            match i with IndexProbe (_, _, _, p, _, _) -> max acc (p + 1) | _ -> acc)
          acc b.instrs)
      0 f.blocks
  in
  (* instruction selection: fuse recurring multi-instruction patterns
     into single closures (a closure call is our "instruction" cost) *)
  let rec select = function
    | [] -> []
    (* scan step: fetch + slot increment *)
    | FetchNode (rt, c, Reg sr) :: Bin (Add, x, Reg sr2, Imm 1) :: Move (sd, Reg x2)
      :: rest
      when sr = sr2 && x = x2 && sd = sr ->
        let c = rv_c c in
        (fun st ->
          let sv = Array.unsafe_get st.regs sr in
          Array.unsafe_set st.regs rt
            (st.rt.g.Query.Source.fetch_node ~chunk:(c st) ~slot:sv);
          let sv1 = sv + 1 in
          Array.unsafe_set st.regs x sv1;
          Array.unsafe_set st.regs sr sv1)
        :: select rest
    (* adjacency advance: next pointer chased into the cursor register *)
    | NextSrc (d, Reg cur) :: Move (cur2, Reg d2) :: rest
      when cur = cur2 && d = d2 ->
        (fun st ->
          let v = st.rt.g.Query.Source.next_src (Array.unsafe_get st.regs cur) in
          Array.unsafe_set st.regs d v;
          Array.unsafe_set st.regs cur v)
        :: select rest
    | NextDst (d, Reg cur) :: Move (cur2, Reg d2) :: rest
      when cur = cur2 && d = d2 ->
        (fun st ->
          let v = st.rt.g.Query.Source.next_dst (Array.unsafe_get st.regs cur) in
          Array.unsafe_set st.regs d v;
          Array.unsafe_set st.regs cur v)
        :: select rest
    (* cursor step in index loops *)
    | IndexCursorNext (rt, p, cur) :: Bin (Add, x, Reg cur2, Imm 1) :: Move (sd, Reg x2)
      :: rest
      when cur = cur2 && x = x2 && sd = cur ->
        (fun st ->
          let i = Array.unsafe_get st.regs cur in
          Array.unsafe_set st.regs rt (Array.unsafe_get st.probes.(p) i);
          Array.unsafe_set st.regs x (i + 1);
          Array.unsafe_set st.regs cur (i + 1))
        :: select rest
    | ins :: rest -> instr_c ins :: select rest
  in
  let compile_body instrs =
    let body =
      List.fold_left
        (fun acc c ->
          match acc with
          | None -> Some c
          | Some g ->
              Some
                (fun st ->
                  g st;
                  c st))
        None (select instrs)
    in
    match body with None -> fun _ -> () | Some g -> g
  in
  let rec split_last = function
    | [] -> (None, [])
    | [ x ] -> (Some x, [])
    | x :: rest ->
        let last, init = split_last rest in
        (last, x :: init)
  in
  (* direct-threaded dispatch: every terminator tail-calls the successor
     through a closure table - no trampoline, no block-id interpretation *)
  let fns : (state -> unit) array =
    Array.make (Array.length f.blocks) (fun _ -> ())
  in
  let compile_block bi b =
    match b.term with
    | Ret -> compile_body b.instrs
    | Br l ->
        let body = compile_body b.instrs in
        fun st ->
          body st;
          (Array.unsafe_get fns l) st
    | CondBr (v, a, c) -> (
        (* peephole: fuse a trailing compare into the branch *)
        let fused =
          match (v, split_last b.instrs) with
          | Reg r, (Some (Cmp (op, d, x, y)), init)
            when d = r && not (Jit_uses.read_elsewhere f ~reg:r ~except:bi) ->
              let op = cmp_c op and x = rv_c x and y = rv_c y in
              let body = compile_body init in
              Some
                (fun st ->
                  body st;
                  if truthy (op (x st) (y st)) then (Array.unsafe_get fns a) st
                  else (Array.unsafe_get fns c) st)
          | _ -> None
        in
        match fused with
        | Some fn -> fn
        | None ->
            let body = compile_body b.instrs in
            let v = rv_c v in
            fun st ->
              body st;
              if truthy (v st) then (Array.unsafe_get fns a) st
              else (Array.unsafe_get fns c) st)
  in
  Array.iteri (fun bi b -> fns.(bi) <- compile_block bi b) f.blocks;
  let entry = f.entry in
  let nregs = f.nregs in
  let run rt =
    let st =
      { regs = Array.make (max 1 nregs) 0; probes = Array.make (max 1 nprobes) [||]; rt }
    in
    fns.(entry) st
  in
  { run; nblocks = Array.length f.blocks; ninstrs = instr_count f }
