(* The JIT intermediate representation (Section 6.2).

   A register machine over 63-bit integers, organised in basic blocks -
   the moral equivalent of the LLVM IR subset the paper generates: loads
   and stores on stack slots (so that the Mem2Reg pass has real work, per
   code-generation requirement (1)), integer ALU ops, comparisons with
   null-sentinel semantics, calls into the AOT-compiled runtime (access
   methods, per DG-compliance reuse), and branches.

   All property values flow through registers as their 64-bit payloads -
   type information is resolved at compile time (requirement (3)), so
   integer, dictionary-code and boolean comparisons are all plain integer
   comparisons.  [null_v] is the missing-value sentinel.

   Tuples live entirely in registers: each tuple slot of the pipeline is
   assigned a register at code-generation time, as in HyPer-style
   data-centric compilation. *)

type rv = Reg of int | Imm of int

(* value type of an emitted column, fixed at compile time *)
type vtag = TagInt | TagBool | TagStr | TagRef

type cmp = Ceq | Cne | Clt | Cle | Cgt | Cge
type binop = Add | Sub | Mul | BAnd | BOr | BXor

type instr =
  (* stack traffic (removed by Mem2Reg) *)
  | Load of int * int (* reg <- slot *)
  | Store of int * rv (* slot <- rv *)
  (* ALU *)
  | Move of int * rv
  | Bin of binop * int * rv * rv
  | Cmp of cmp * int * rv * rv (* null-sentinel aware; result 0/1 *)
  | Not of int * rv
  | IsNull of int * rv
  (* runtime calls: AOT-compiled access methods (DG-compliant) *)
  | ChunkStart of int (* dst <- first chunk of this invocation's morsel *)
  | ChunkCount of int (* dst <- one past the last chunk of the morsel *)
  | ChunkSize of int
  | FetchNode of int * rv * rv (* dst, chunk, slot: visible id or -1 *)
  | NodeExists of int * rv
  | NodeLabel of int * rv
  | RelLabel of int * rv
  | NodePropV of int * rv * int (* dst <- payload of prop [key] or null_v *)
  | RelPropV of int * rv * int
  | RelSrc of int * rv
  | RelDst of int * rv
  | FirstOut of int * rv
  | NextSrc of int * rv
  | FirstIn of int * rv
  | NextDst of int * rv
  | RelVisible of int * rv
  | LoadParam of int * int (* dst <- payload of query parameter *)
  | IndexProbe of int * int * int * int * rv * rv
    (* dst_count, label, key, probe-id, lo, hi: materialise the matching
       node ids into a runtime array; dst receives its length *)
  | IndexCursorNext of int * int * int (* dst, probe-id, cursor *)
  | CreateNode of int * int * (int * vtag * rv) list (* dst, label, props *)
  | CreateRel of int * int * rv * rv * (int * vtag * rv) list
  | SetNodeProp of rv * int * vtag * rv (* node, key, tag, value *)
  | SetRelProp of rv * int * vtag * rv
  | DeleteNode of rv
  | DeleteRel of rv
  | EmitRow of (vtag * rv) list (* push one result row *)
  | ProfHook of int
    (* bump the runtime profile's tuple counter for the operator with
       this preorder id; emitted only for profiled compilations, which
       bypass the persistent cache *)

type term =
  | Br of int
  | CondBr of rv * int * int (* nonzero -> first target *)
  | Ret

type block = { mutable instrs : instr list; (* in execution order *) mutable term : term }

(* Loop metadata recorded by the code generator so the unrolling pass can
   find loop regions without a full CFG analysis (the paper's while_loop /
   while_loop_condition abstractions). *)
type loop_info = {
  l_header : int;
  l_body : int;
  l_advance : int; (* block that increments and jumps back to header *)
  l_exit : int;
}

type func = {
  mutable blocks : block array;
  mutable entry : int;
  mutable nregs : int;
  mutable nslots : int;
  mutable loops : loop_info list;
}

let null_v = min_int

let rv_fp = function Reg r -> Printf.sprintf "r%d" r | Imm i -> string_of_int i

let tag_fp = function
  | TagInt -> "i"
  | TagBool -> "b"
  | TagStr -> "s"
  | TagRef -> "#"

let cmp_fp = function
  | Ceq -> "eq"
  | Cne -> "ne"
  | Clt -> "lt"
  | Cle -> "le"
  | Cgt -> "gt"
  | Cge -> "ge"

let bin_fp = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | BAnd -> "and"
  | BOr -> "or"
  | BXor -> "xor"

let instr_fp = function
  | Load (r, s) -> Printf.sprintf "r%d=ld[%d]" r s
  | Store (s, v) -> Printf.sprintf "st[%d]=%s" s (rv_fp v)
  | Move (r, v) -> Printf.sprintf "r%d=%s" r (rv_fp v)
  | Bin (op, r, a, b) ->
      Printf.sprintf "r%d=%s(%s,%s)" r (bin_fp op) (rv_fp a) (rv_fp b)
  | Cmp (op, r, a, b) ->
      Printf.sprintf "r%d=%s(%s,%s)" r (cmp_fp op) (rv_fp a) (rv_fp b)
  | Not (r, a) -> Printf.sprintf "r%d=not(%s)" r (rv_fp a)
  | IsNull (r, a) -> Printf.sprintf "r%d=isnull(%s)" r (rv_fp a)
  | ChunkStart r -> Printf.sprintf "r%d=chunk0" r
  | ChunkCount r -> Printf.sprintf "r%d=chunks" r
  | ChunkSize r -> Printf.sprintf "r%d=chunksz" r
  | FetchNode (r, c, s) -> Printf.sprintf "r%d=fetch(%s,%s)" r (rv_fp c) (rv_fp s)
  | NodeExists (r, n) -> Printf.sprintf "r%d=nexists(%s)" r (rv_fp n)
  | NodeLabel (r, n) -> Printf.sprintf "r%d=nlabel(%s)" r (rv_fp n)
  | RelLabel (r, n) -> Printf.sprintf "r%d=rlabel(%s)" r (rv_fp n)
  | NodePropV (r, n, k) -> Printf.sprintf "r%d=nprop(%s,%d)" r (rv_fp n) k
  | RelPropV (r, n, k) -> Printf.sprintf "r%d=rprop(%s,%d)" r (rv_fp n) k
  | RelSrc (r, e) -> Printf.sprintf "r%d=src(%s)" r (rv_fp e)
  | RelDst (r, e) -> Printf.sprintf "r%d=dst(%s)" r (rv_fp e)
  | FirstOut (r, n) -> Printf.sprintf "r%d=fout(%s)" r (rv_fp n)
  | NextSrc (r, e) -> Printf.sprintf "r%d=nsrc(%s)" r (rv_fp e)
  | FirstIn (r, n) -> Printf.sprintf "r%d=fin(%s)" r (rv_fp n)
  | NextDst (r, e) -> Printf.sprintf "r%d=ndst(%s)" r (rv_fp e)
  | RelVisible (r, e) -> Printf.sprintf "r%d=rvis(%s)" r (rv_fp e)
  | LoadParam (r, i) -> Printf.sprintf "r%d=param(%d)" r i
  | IndexProbe (r, l, k, p, lo, hi) ->
      Printf.sprintf "r%d=iprobe(%d,%d,%d,%s,%s)" r l k p (rv_fp lo) (rv_fp hi)
  | IndexCursorNext (r, p, c) -> Printf.sprintf "r%d=inext(%d,r%d)" r p c
  | CreateNode (r, l, ps) ->
      Printf.sprintf "r%d=cnode(%d,%s)" r l
        (String.concat ";"
           (List.map (fun (k, t, v) -> Printf.sprintf "%d%s%s" k (tag_fp t) (rv_fp v)) ps))
  | CreateRel (r, l, s, d, ps) ->
      Printf.sprintf "r%d=crel(%d,%s,%s,%s)" r l (rv_fp s) (rv_fp d)
        (String.concat ";"
           (List.map (fun (k, t, v) -> Printf.sprintf "%d%s%s" k (tag_fp t) (rv_fp v)) ps))
  | SetNodeProp (n, k, t, v) ->
      Printf.sprintf "setn(%s,%d,%s%s)" (rv_fp n) k (tag_fp t) (rv_fp v)
  | SetRelProp (n, k, t, v) ->
      Printf.sprintf "setr(%s,%d,%s%s)" (rv_fp n) k (tag_fp t) (rv_fp v)
  | DeleteNode n -> Printf.sprintf "deln(%s)" (rv_fp n)
  | DeleteRel n -> Printf.sprintf "delr(%s)" (rv_fp n)
  | EmitRow cols ->
      Printf.sprintf "emit(%s)"
        (String.concat ","
           (List.map (fun (t, v) -> tag_fp t ^ rv_fp v) cols))
  | ProfHook i -> Printf.sprintf "prof(%d)" i

let term_fp = function
  | Br l -> Printf.sprintf "br %d" l
  | CondBr (v, a, b) -> Printf.sprintf "cbr %s %d %d" (rv_fp v) a b
  | Ret -> "ret"

let pp_func ppf f =
  Fmt.pf ppf "func entry=%d regs=%d slots=%d@." f.entry f.nregs f.nslots;
  Array.iteri
    (fun i b ->
      Fmt.pf ppf "L%d:@." i;
      List.iter (fun ins -> Fmt.pf ppf "  %s@." (instr_fp ins)) b.instrs;
      Fmt.pf ppf "  %s@." (term_fp b.term))
    f.blocks

let instr_count f =
  Array.fold_left (fun acc b -> acc + List.length b.instrs + 1) 0 f.blocks

(* Serialisation for the persistent compiled-query cache: the optimised IR
   is the "object file" we persist; loading it back only requires
   re-emission ("linking"), skipping codegen + passes + the backend. *)
let to_string (f : func) : string = Marshal.to_string f []

let of_string (s : string) : func = Marshal.from_string s 0
