(* Capture/replay tier (after tinygrad's JIT: first execution captures
   the batch of fused closures, later executions replay it with only the
   inputs rebound).

   A replay entry snapshots everything the engine derived from the plan
   on the first compiled execution: the emitted code, the execution
   shape (row pipeline vs parallel aggregation), and the staged serial
   tail.  All three are pure functions of the plan - the emitted code is
   re-entrant over a per-invocation runtime and the tail is staged over
   (source, params) - so a replay only rebinds the transaction snapshot
   and the parameters: no plan walk, no split, no cache probe, no
   codegen.

   Entries are keyed by plan fingerprint + optimisation level +
   parallelism degree (see [Engine.cache_key]): a batch captured for N
   workers is never replayed at M, because the captured schedule - one
   partial state per chunk merged at a degree-wide barrier - is part of
   what the key names.  The table is volatile and per-database (it hangs
   off the compiled-query cache), like any mapped code segment. *)

(* How the captured closures are driven: a row-producing pipeline whose
   output feeds the staged tail, or a parallel aggregation whose morsels
   feed per-chunk partials merged (in chunk order) before the tail. *)
type shape = Rows | Agg of Query.Interp.agg

type entry = {
  compiled : Emit.compiled;
  shape : shape;
  tail : Query.Interp.tail;
  degree : int;  (* parallelism degree the batch was captured at *)
}

type t = { mu : Mutex.t; tbl : (string, entry) Hashtbl.t }

let create () = { mu = Mutex.create (); tbl = Hashtbl.create 32 }

let find t key =
  Mutex.lock t.mu;
  let r = Hashtbl.find_opt t.tbl key in
  Mutex.unlock t.mu;
  r

let add t key entry =
  Mutex.lock t.mu;
  Hashtbl.replace t.tbl key entry;
  Mutex.unlock t.mu

let size t =
  Mutex.lock t.mu;
  let n = Hashtbl.length t.tbl in
  Mutex.unlock t.mu;
  n
