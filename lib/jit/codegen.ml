(* Graph algebra -> IR code generation (Section 6.2).

   Visitor-style, continuation-passing: each operator generates its entry
   code and invokes the continuation to generate the consuming operator's
   code inline, so the whole pipeline becomes a single IR function with
   tuples held in registers.  Each operator's "return path" is the loop
   header/advance of the previous operator, wired through the builder's
   pending-block frames (Fig. 4 of the paper).

   Code-generation requirements honoured:
   (1) loop counters live in stack slots with explicit Load/Store - naive
       frontend output that the Mem2Reg pass promotes;
   (2) loop-invariant values (chunk size, parameters, probe arrays) are
       initialised once in the entry block;
   (3) types are resolved here: property tags come from the schema hints,
       so comparisons compile to plain integer compares;
   (4) all data access goes through the AOT-compiled runtime calls, which
       are already DG-compliant. *)

open Ir
module A = Query.Algebra
module E = Query.Expr
module Value = Storage.Value

(* --- Builder --------------------------------------------------------------- *)

type bblock = { mutable rev_instrs : instr list; mutable bterm : term }

type b = {
  mutable blocks : bblock array;
  mutable nblocks : int;
  mutable cur : int;
  mutable nregs : int;
  mutable nslots : int;
  mutable frames : int list ref list; (* pending skip blocks per loop *)
  mutable loops : loop_info list;
  mutable nprobes : int;
  prop_tag : int -> vtag;
  param_tag : int -> vtag;
}

let builder ~prop_tag ~param_tag =
  {
    blocks = Array.init 8 (fun _ -> { rev_instrs = []; bterm = Ret });
    nblocks = 0;
    cur = -1;
    nregs = 0;
    nslots = 0;
    frames = [];
    loops = [];
    nprobes = 0;
    prop_tag;
    param_tag;
  }

let new_block b =
  if b.nblocks = Array.length b.blocks then begin
    let bigger = Array.init (2 * b.nblocks) (fun _ -> { rev_instrs = []; bterm = Ret }) in
    Array.blit b.blocks 0 bigger 0 b.nblocks;
    b.blocks <- bigger
  end;
  b.blocks.(b.nblocks) <- { rev_instrs = []; bterm = Ret };
  b.nblocks <- b.nblocks + 1;
  b.nblocks - 1

let switch b l = b.cur <- l
let emit b i = b.blocks.(b.cur).rev_instrs <- i :: b.blocks.(b.cur).rev_instrs
let set_term b l t = b.blocks.(l).bterm <- t
let terminate b t = set_term b b.cur t

let reg b =
  let r = b.nregs in
  b.nregs <- r + 1;
  r

let slot b =
  let s = b.nslots in
  b.nslots <- s + 1;
  s

let fresh_probe b =
  let p = b.nprobes in
  b.nprobes <- p + 1;
  p

let push_frame b = b.frames <- ref [] :: b.frames

let pop_frame b =
  match b.frames with
  | f :: rest ->
      b.frames <- rest;
      !f
  | [] -> invalid_arg "Codegen: no frame"

let add_pending b l =
  match b.frames with
  | f :: _ -> f := l :: !f
  | [] -> invalid_arg "Codegen: skip outside any loop"

let finish b ~entry : func =
  {
    blocks =
      Array.init b.nblocks (fun i ->
          {
            instrs = List.rev b.blocks.(i).rev_instrs;
            term = b.blocks.(i).bterm;
          });
    entry;
    nregs = b.nregs;
    nslots = b.nslots;
    loops = b.loops;
  }

(* --- Tuple layout: one register (+ static tag) per slot --------------------- *)

type slot_ty = SNode | SRel | SVal of vtag

type regs = (int * slot_ty) list (* in slot order *)

exception Unsupported of string

(* --- Expressions ------------------------------------------------------------- *)

let tag_of_slot = function
  | SNode | SRel -> TagRef
  | SVal t -> t

let rec gen_expr b (regs : regs) (e : E.t) : rv * vtag =
  match e with
  | E.Const (Value.Int i) -> (Imm i, TagInt)
  | E.Const (Value.Str c) -> (Imm c, TagStr)
  | E.Const (Value.Bool v) -> (Imm (if v then 1 else 0), TagBool)
  | E.Const Value.Null -> (Imm null_v, TagInt)
  | E.Const (Value.Float _) -> raise (Unsupported "float constant")
  | E.Const (Value.Text _) -> raise (Unsupported "unencoded text constant")
  | E.Param i ->
      let r = reg b in
      emit b (LoadParam (r, i));
      (Reg r, b.param_tag i)
  | E.Col i ->
      let r, ty = List.nth regs i in
      (Reg r, tag_of_slot ty)
  | E.Prop { col; kind; key } ->
      let r, _ = List.nth regs col in
      let d = reg b in
      emit b
        (match kind with
        | E.KNode -> NodePropV (d, Reg r, key)
        | E.KRel -> RelPropV (d, Reg r, key));
      (Reg d, b.prop_tag key)
  | E.LabelOf { col; kind } ->
      let r, _ = List.nth regs col in
      let d = reg b in
      emit b
        (match kind with
        | E.KNode -> NodeLabel (d, Reg r)
        | E.KRel -> RelLabel (d, Reg r));
      (Reg d, TagStr)
  | E.SrcOf col ->
      let r, _ = List.nth regs col in
      let d = reg b in
      emit b (RelSrc (d, Reg r));
      (Reg d, TagRef)
  | E.DstOf col ->
      let r, _ = List.nth regs col in
      let d = reg b in
      emit b (RelDst (d, Reg r));
      (Reg d, TagRef)
  | E.Cmp (op, x, y) ->
      let vx, tx = gen_expr b regs x and vy, ty = gen_expr b regs y in
      let d = reg b in
      (* types are resolved at compile time (requirement (3)): a
         comparison across incompatible type classes folds to Null, as in
         the interpreter's SQL-style semantics *)
      let cls = function
        | TagInt | TagRef -> `Num
        | TagStr -> `Str
        | TagBool -> `Bool
      in
      if cls tx <> cls ty then begin
        emit b (Move (d, Imm null_v));
        (Reg d, TagBool)
      end
      else begin
        let c =
          match op with
          | E.Eq -> Ceq
          | E.Ne -> Cne
          | E.Lt -> Clt
          | E.Le -> Cle
          | E.Gt -> Cgt
          | E.Ge -> Cge
        in
        emit b (Cmp (c, d, vx, vy));
        (Reg d, TagBool)
      end
  | E.And (x, y) ->
      let vx, _ = gen_expr b regs x and vy, _ = gen_expr b regs y in
      let d = reg b in
      emit b (Bin (BAnd, d, vx, vy));
      (Reg d, TagBool)
  | E.Or (x, y) ->
      let vx, _ = gen_expr b regs x and vy, _ = gen_expr b regs y in
      let d = reg b in
      emit b (Bin (BOr, d, vx, vy));
      (Reg d, TagBool)
  | E.Not x ->
      let vx, _ = gen_expr b regs x in
      let d = reg b in
      emit b (Not (d, vx));
      (Reg d, TagBool)
  | E.Add (x, y) ->
      let vx, _ = gen_expr b regs x and vy, _ = gen_expr b regs y in
      let d = reg b in
      emit b (Bin (Add, d, vx, vy));
      (Reg d, TagInt)
  | E.Sub (x, y) ->
      let vx, _ = gen_expr b regs x and vy, _ = gen_expr b regs y in
      let d = reg b in
      emit b (Bin (Sub, d, vx, vy));
      (Reg d, TagInt)
  | E.IsNull x ->
      let vx, _ = gen_expr b regs x in
      let d = reg b in
      emit b (IsNull (d, vx));
      (Reg d, TagBool)

let gen_props b regs props =
  List.map
    (fun (k, e) ->
      let v, tag = gen_expr b regs e in
      (k, tag, v))
    props

(* --- Operators ---------------------------------------------------------------- *)

(* The continuation generates the consuming code for one tuple; when it
   returns, the current block and the pending frame blocks are patched to
   the producing loop's advance point.

   With [hook], a [ProfHook] carrying this operator's preorder id is
   emitted at every tuple-production point (just before the consumer's
   code), so compiled pipelines report the same per-operator tuple
   counts as the interpreter's stream wrappers; children get [succ]
   because every compilable operator is a unary chain. *)
let rec gen b ?hook (plan : A.plan) (k : regs -> unit) : unit =
  let k regs =
    (match hook with Some i -> emit b (ProfHook i) | None -> ());
    k regs
  in
  let gen_child b child k = gen b ?hook:(Option.map succ hook) child k in
  match plan with
  | A.NodeScan { label } ->
      (* chunk loop (slots) around a slot loop (slots), per (1) *)
      let s_chunk = slot b and s_slot = slot b in
      let r_nchunks = reg b and r_cap = reg b in
      let r0 = reg b in
      emit b (ChunkStart r0);
      emit b (Store (s_chunk, Reg r0));
      emit b (ChunkCount r_nchunks);
      emit b (ChunkSize r_cap);
      let header_c = new_block b
      and body_c = new_block b
      and header_s = new_block b
      and body_s = new_block b
      and adv_c = new_block b
      and exit = new_block b in
      terminate b (Br header_c);
      switch b header_c;
      let rc = reg b and ccond = reg b in
      emit b (Load (rc, s_chunk));
      emit b (Cmp (Clt, ccond, Reg rc, Reg r_nchunks));
      terminate b (CondBr (Reg ccond, body_c, exit));
      switch b body_c;
      emit b (Store (s_slot, Imm 0));
      terminate b (Br header_s);
      switch b header_s;
      let rs = reg b and scond = reg b in
      emit b (Load (rs, s_slot));
      emit b (Cmp (Clt, scond, Reg rs, Reg r_cap));
      terminate b (CondBr (Reg scond, body_s, adv_c));
      switch b adv_c;
      let rc2 = reg b and rc3 = reg b in
      emit b (Load (rc2, s_chunk));
      emit b (Bin (Add, rc3, Reg rc2, Imm 1));
      emit b (Store (s_chunk, Reg rc3));
      terminate b (Br header_c);
      switch b body_s;
      let rc4 = reg b and rs2 = reg b and rt = reg b and rs3 = reg b in
      emit b (Load (rc4, s_chunk));
      emit b (Load (rs2, s_slot));
      emit b (FetchNode (rt, Reg rc4, Reg rs2));
      emit b (Bin (Add, rs3, Reg rs2, Imm 1));
      emit b (Store (s_slot, Reg rs3));
      let live = reg b in
      emit b (Cmp (Cge, live, Reg rt, Imm 0));
      let consume = new_block b in
      terminate b (CondBr (Reg live, consume, header_s));
      switch b consume;
      (match label with
      | Some l ->
          let rl = reg b and lok = reg b in
          emit b (NodeLabel (rl, Reg rt));
          emit b (Cmp (Ceq, lok, Reg rl, Imm l));
          let tuple = new_block b in
          terminate b (CondBr (Reg lok, tuple, header_s));
          switch b tuple
      | None -> ());
      push_frame b;
      k [ (rt, SNode) ];
      let pend = pop_frame b in
      List.iter (fun l -> set_term b l (Br header_s)) (b.cur :: pend);
      b.loops <-
        { l_header = header_s; l_body = body_s; l_advance = header_s; l_exit = adv_c }
        :: b.loops;
      switch b exit
  | A.NodeById { id } ->
      let v, _ = gen_expr b [] id in
      let ok = reg b in
      emit b (NodeExists (ok, v));
      let kblk = new_block b and exit = new_block b in
      terminate b (CondBr (Reg ok, kblk, exit));
      switch b kblk;
      let rid = reg b in
      emit b (Move (rid, v));
      push_frame b;
      k [ (rid, SNode) ];
      let pend = pop_frame b in
      List.iter (fun l -> set_term b l (Br exit)) (b.cur :: pend);
      switch b exit
  | A.Unit ->
      push_frame b;
      let exit = new_block b in
      k [];
      let pend = pop_frame b in
      List.iter (fun l -> set_term b l (Br exit)) (b.cur :: pend);
      switch b exit
  | A.IndexScan { label; key; value } ->
      let v, _ = gen_expr b [] value in
      gen_index_loop b ~label ~key ~lo:v ~hi:v k
  | A.IndexRange { label; key; lo; hi } ->
      let vlo, _ = gen_expr b [] lo and vhi, _ = gen_expr b [] hi in
      gen_index_loop b ~label ~key ~lo:vlo ~hi:vhi k
  | A.RelScan _ -> raise (Unsupported "RelScan in generated code")
  | A.Expand { col; dir; label; child } ->
      gen_child b child (fun regs ->
          let rnode, _ = List.nth regs col in
          let s_rel = slot b in
          let r0 = reg b in
          emit b
            (match dir with
            | A.Out -> FirstOut (r0, Reg rnode)
            | A.In -> FirstIn (r0, Reg rnode));
          emit b (Store (s_rel, Reg r0));
          let header = new_block b
          and body = new_block b
          and advance = new_block b
          and exit = new_block b in
          terminate b (Br header);
          switch b header;
          let re = reg b and c = reg b in
          emit b (Load (re, s_rel));
          emit b (Cmp (Cge, c, Reg re, Imm 0));
          terminate b (CondBr (Reg c, body, exit));
          switch b advance;
          let re2 = reg b and re3 = reg b in
          emit b (Load (re2, s_rel));
          emit b
            (match dir with
            | A.Out -> NextSrc (re3, Reg re2)
            | A.In -> NextDst (re3, Reg re2));
          emit b (Store (s_rel, Reg re3));
          terminate b (Br header);
          switch b body;
          let vis = reg b in
          emit b (RelVisible (vis, Reg re));
          let chk = new_block b in
          terminate b (CondBr (Reg vis, chk, advance));
          switch b chk;
          (match label with
          | Some l ->
              let rl = reg b and lok = reg b in
              emit b (RelLabel (rl, Reg re));
              emit b (Cmp (Ceq, lok, Reg rl, Imm l));
              let tuple = new_block b in
              terminate b (CondBr (Reg lok, tuple, advance));
              switch b tuple
          | None -> ());
          push_frame b;
          k (regs @ [ (re, SRel) ]);
          let pend = pop_frame b in
          List.iter (fun l -> set_term b l (Br advance)) (b.cur :: pend);
          b.loops <-
            { l_header = header; l_body = body; l_advance = advance; l_exit = exit }
            :: b.loops;
          switch b exit)
  | A.EndPoint { col; which; child } ->
      gen_child b child (fun regs ->
          let re, _ = List.nth regs col in
          let d = reg b in
          emit b
            (match which with
            | `Src -> RelSrc (d, Reg re)
            | `Dst -> RelDst (d, Reg re));
          k (regs @ [ (d, SNode) ]))
  | A.WalkToRoot { col; rel_label; child } ->
      gen_child b child (fun regs ->
          let rnode, _ = List.nth regs col in
          let s_cur = slot b and s_e = slot b in
          emit b (Store (s_cur, Reg rnode));
          let header_w = new_block b
          and header_f = new_block b
          and body_f = new_block b
          and adv_f = new_block b
          and found = new_block b
          and done_w = new_block b in
          terminate b (Br header_w);
          switch b header_w;
          let rc = reg b and re0 = reg b in
          emit b (Load (rc, s_cur));
          emit b (FirstOut (re0, Reg rc));
          emit b (Store (s_e, Reg re0));
          terminate b (Br header_f);
          switch b header_f;
          let re = reg b and c = reg b in
          emit b (Load (re, s_e));
          emit b (Cmp (Cge, c, Reg re, Imm 0));
          terminate b (CondBr (Reg c, body_f, done_w));
          switch b body_f;
          let vis = reg b and rl = reg b and lok = reg b and both = reg b in
          emit b (RelVisible (vis, Reg re));
          emit b (RelLabel (rl, Reg re));
          emit b (Cmp (Ceq, lok, Reg rl, Imm rel_label));
          emit b (Bin (BAnd, both, Reg vis, Reg lok));
          terminate b (CondBr (Reg both, found, adv_f));
          switch b adv_f;
          let re2 = reg b and re3 = reg b in
          emit b (Load (re2, s_e));
          emit b (NextSrc (re3, Reg re2));
          emit b (Store (s_e, Reg re3));
          terminate b (Br header_f);
          switch b found;
          let re4 = reg b and rd = reg b in
          emit b (Load (re4, s_e));
          emit b (RelDst (rd, Reg re4));
          emit b (Store (s_cur, Reg rd));
          terminate b (Br header_w);
          switch b done_w;
          let rout = reg b in
          emit b (Load (rout, s_cur));
          k (regs @ [ (rout, SNode) ]))
  | A.AttachByIndex { label; key; value; child } ->
      gen_child b child (fun regs ->
          let v, _ = gen_expr b regs value in
          let p = fresh_probe b in
          let s_i = slot b in
          let rn = reg b in
          emit b (IndexProbe (rn, label, key, p, v, v));
          emit b (Store (s_i, Imm 0));
          let header = new_block b and body = new_block b and exit = new_block b in
          terminate b (Br header);
          switch b header;
          let ri = reg b and c = reg b in
          emit b (Load (ri, s_i));
          emit b (Cmp (Clt, c, Reg ri, Reg rn));
          terminate b (CondBr (Reg c, body, exit));
          switch b body;
          let rt = reg b and ri2 = reg b in
          emit b (IndexCursorNext (rt, p, ri));
          emit b (Bin (Add, ri2, Reg ri, Imm 1));
          emit b (Store (s_i, Reg ri2));
          push_frame b;
          k (regs @ [ (rt, SNode) ]);
          let pend = pop_frame b in
          List.iter (fun l -> set_term b l (Br header)) (b.cur :: pend);
          switch b exit)
  | A.Filter { pred; child } ->
      gen_child b child (fun regs ->
          let v, _ = gen_expr b regs pred in
          let cont = new_block b and skip = new_block b in
          terminate b (CondBr (v, cont, skip));
          add_pending b skip;
          switch b cont;
          k regs)
  | A.Project { exprs; child } ->
      gen_child b child (fun regs ->
          let cols =
            List.map
              (fun e ->
                let v, tag = gen_expr b regs e in
                let r = reg b in
                emit b (Move (r, v));
                (r, SVal tag))
              exprs
          in
          k cols)
  | A.CreateNode { label; props; child } ->
      gen_child b child (fun regs ->
          let ps = gen_props b regs props in
          let d = reg b in
          emit b (CreateNode (d, label, ps));
          k (regs @ [ (d, SNode) ]))
  | A.CreateRel { label; src; dst; props; child } ->
      gen_child b child (fun regs ->
          let rs, _ = List.nth regs src and rd, _ = List.nth regs dst in
          let ps = gen_props b regs props in
          let d = reg b in
          emit b (CreateRel (d, label, Reg rs, Reg rd, ps));
          k (regs @ [ (d, SRel) ]))
  | A.SetNodeProp { col; key; value; child } ->
      gen_child b child (fun regs ->
          let rn, _ = List.nth regs col in
          let v, tag = gen_expr b regs value in
          emit b (SetNodeProp (Reg rn, key, tag, v));
          k regs)
  | A.SetRelProp { col; key; value; child } ->
      gen_child b child (fun regs ->
          let rn, _ = List.nth regs col in
          let v, tag = gen_expr b regs value in
          emit b (SetRelProp (Reg rn, key, tag, v));
          k regs)
  | A.DeleteNode { col; child } ->
      gen_child b child (fun regs ->
          let rn, _ = List.nth regs col in
          emit b (DeleteNode (Reg rn));
          k regs)
  | A.DeleteRel { col; child } ->
      gen_child b child (fun regs ->
          let rn, _ = List.nth regs col in
          emit b (DeleteRel (Reg rn));
          k regs)
  | A.Limit _ | A.Sort _ | A.Distinct _ | A.CountAgg _ | A.GroupCount _
  | A.NestedLoopJoin _ | A.HashJoin _ ->
      raise (Unsupported "pipeline breaker inside generated pipeline")

and gen_index_loop b ~label ~key ~lo ~hi k =
  let p = fresh_probe b in
  let s_i = slot b in
  let rn = reg b in
  (* the probe materialises outside the loop: init once, per (2) *)
  emit b (IndexProbe (rn, label, key, p, lo, hi));
  emit b (Store (s_i, Imm 0));
  let header = new_block b and body = new_block b and exit = new_block b in
  terminate b (Br header);
  switch b header;
  let ri = reg b and c = reg b in
  emit b (Load (ri, s_i));
  emit b (Cmp (Clt, c, Reg ri, Reg rn));
  terminate b (CondBr (Reg c, body, exit));
  switch b body;
  let rt = reg b and ri2 = reg b in
  emit b (IndexCursorNext (rt, p, ri));
  emit b (Bin (Add, ri2, Reg ri, Imm 1));
  emit b (Store (s_i, Reg ri2));
  push_frame b;
  k [ (rt, SNode) ];
  let pend = pop_frame b in
  List.iter (fun l -> set_term b l (Br header)) (b.cur :: pend);
  switch b exit

(* Compile a pipelined plan into an IR function whose sink is EmitRow of
   the plan's output tuple.  [prof_base] is the preorder id of the
   pipeline's root within the enclosing full plan: when given, ProfHooks
   are threaded through every operator (profiled compilations bypass the
   persistent cache, so cached code never carries hooks). *)
let codegen ?(prop_tag = fun _ -> TagInt) ?(param_tag = fun _ -> TagInt)
    ?prof_base plan : func =
  let b = builder ~prop_tag ~param_tag in
  let entry = new_block b in
  switch b entry;
  gen b ?hook:prof_base plan (fun regs ->
      emit b (EmitRow (List.map (fun (r, ty) -> (tag_of_slot ty, Reg r)) regs)));
  terminate b Ret;
  finish b ~entry
