(** Persistent compiled-query cache (Section 6.2).

    A pool-resident hash map keyed by the query identifier; the value is
    the serialised optimised IR (our "object file").  A hit skips
    codegen, the pass cascade and the modeled backend latency; only
    re-emission ("linking") remains.  A volatile per-process memo holds
    already-linked code. *)

type t

exception Full

val default_cap : int
val create : Pmem.Pool.t -> ?cap:int -> root_slot:int -> unit -> t
val attach : Pmem.Pool.t -> root_slot:int -> t option
val open_or_create : Pmem.Pool.t -> root_slot:int -> t
val count : t -> int
val find : t -> string -> string option
val store : t -> string -> string -> unit
(** Insert or replace. @raise Full when the table is full. *)

val memo_find : t -> string -> Emit.compiled option
val memo_add : t -> string -> Emit.compiled -> unit

val replay : t -> Replay.t
(** The cache's volatile capture/replay table (tinygrad-style closure
    batches, keyed by fingerprint + parallelism degree). *)
