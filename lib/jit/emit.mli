(** IR -> executable code (the backend).

    Each basic block is partially evaluated into a fused closure over an
    unboxed [int array] register file; dispatch is direct-threaded (tail
    calls through a closure table), trailing compares fuse into branches
    and recurring patterns (scan step, adjacency advance, index cursor)
    become super-instructions.  The emitted function is re-entrant:
    every invocation gets its own register file, so morsels run it
    concurrently. *)

(** Per-invocation context of the generated function. *)
type runtime = {
  g : Query.Source.t;
  params : Storage.Value.t array;
  sink : Storage.Value.t array -> unit;
  chunk_lo : int;  (** morsel bounds; [chunk_hi = -1] means all chunks *)
  chunk_hi : int;
  nchunks : int;
  prof : Obs.Profile.t option;
      (** [ProfHook] target; [None] outside profiled runs *)
}

type compiled = { run : runtime -> unit; nblocks : int; ninstrs : int }

val payload_of_value : Storage.Value.t -> int
val value_of_payload : Ir.vtag -> int -> Storage.Value.t
val emit : Ir.func -> compiled
(** Promote any remaining stack slots and compile to closures. *)
