(* Query execution engine with three modes (Section 6.2):

   - [Interp]: the AOT-compiled push-based interpreter;
   - [Jit]: compile the pipelined part of the plan (codegen -> pass
     cascade -> emission), optionally consulting the persistent compiled-
     query cache, then execute the emitted code;
   - [Adaptive]: start interpreting morsels immediately while a background
     domain compiles; once compilation finishes, the task function is
     redirected and the remaining morsels run the compiled code - hiding
     both the compilation time and (on PMem) part of the access latency.

   Pipeline breakers (Sort/Limit/Distinct/Count/joins) always execute in
   the AOT engine, consuming the pipeline's output; the JIT compiles the
   per-tuple hot path, as in the paper where the generated function covers
   the scan-to-materialisation pipeline.

   The modeled backend latency stands in for LLVM's milliseconds-scale
   code generation: it is charged to the simulated clock (and, when the
   media is in spin mode, to wall-clock) exactly when the paper would pay
   it - on a cache miss in Jit mode, or in the background in Adaptive
   mode. *)

module Value = Storage.Value
module A = Query.Algebra
module I = Query.Interp

type mode = Interp | Jit | Adaptive

let pp_mode ppf = function
  | Interp -> Fmt.string ppf "aot"
  | Jit -> Fmt.string ppf "jit"
  | Adaptive -> Fmt.string ppf "adaptive"

type config = {
  backend_latency_ns : int; (* modeled LLVM base compile time *)
  backend_latency_per_op_ns : int;
  link_latency_ns : int; (* paid on cache hits: re-linking the object *)
  opt_level : Passes.level;
  prop_tag : int -> Ir.vtag;
}

let default_config =
  {
    backend_latency_ns = 1_500_000;
    backend_latency_per_op_ns = 350_000;
    link_latency_ns = 120_000;
    opt_level = Passes.O3;
    prop_tag = (fun _ -> Ir.TagInt);
  }

type report = {
  mutable mode_used : mode;
  mutable compile_wall_ns : int; (* measured codegen+passes+emit *)
  mutable compile_modeled_ns : int; (* charged backend latency *)
  mutable cache_hit : bool;
  mutable fell_back : bool; (* unsupported plan: ran interpreted *)
  mutable morsels_interp : int;
  mutable morsels_jit : int;
  mutable ir_instrs : int;
  mutable rows : int;
}

let fresh_report mode =
  {
    mode_used = mode;
    compile_wall_ns = 0;
    compile_modeled_ns = 0;
    cache_hit = false;
    fell_back = false;
    morsels_interp = 0;
    morsels_jit = 0;
    ir_instrs = 0;
    rows = 0;
  }

let now_ns () = int_of_float (Unix.gettimeofday () *. 1e9)

let param_tag_of params i =
  match params.(i) with
  | Value.Int _ -> Ir.TagInt
  | Value.Str _ -> Ir.TagStr
  | Value.Bool _ -> Ir.TagBool
  | Value.Null -> Ir.TagInt
  | Value.Float _ | Value.Text _ ->
      raise (Codegen.Unsupported "float/text parameter")

(* Split a plan into its pipelined core and the serial breaker suffix;
   parallel-aggregation splits fold their aggregation back into the
   suffix, since the JIT compiles only the pipelined core. *)
let split ?prof g ~params plan = I.split_serial (I.split_plan ?prof g ~params plan)

let cache_key cfg plan =
  Printf.sprintf "%s@%s" (A.fingerprint plan)
    (match cfg.opt_level with Passes.O0 -> "O0" | Passes.O1 -> "O1" | Passes.O3 -> "O3")

(* Cache hit/miss counters and a compile-time histogram on the media's
   metrics registry; no-ops without a media. *)
let note_cache media hit =
  match media with
  | None -> ()
  | Some m ->
      let reg = Pmem.Media.registry m in
      Obs.Metrics.incr
        (if hit then
           Obs.Metrics.counter reg
             ~help:"compiled-query cache hits (memo or persistent)"
             "jit_cache_hits_total"
         else
           Obs.Metrics.counter reg
             ~help:"compiled-query cache misses (full compilations)"
             "jit_cache_misses_total")

let note_compile_ns media ns =
  match media with
  | None -> ()
  | Some m ->
      Obs.Histogram.observe
        (Obs.Metrics.histogram
           (Pmem.Media.registry m)
           ~help:"modeled backend latency charged per compilation (sim ns)"
           "jit_compile_ns")
        ns

(* Compile the pipelined plan: returns the emitted code, consulting and
   filling [cache].  With [prof_base], ProfHooks are threaded through the
   generated code and the persistent cache is bypassed entirely (hooked
   code must never be cached, and a profiled run wants a fresh, fully
   measured compilation anyway); cache hit/miss counters are then left
   untouched. *)
let compile ?cache ?media ?prof_base ~config ~params report plan =
  let cache = if prof_base = None then cache else None in
  let note_cache media hit = if prof_base = None then note_cache media hit in
  let t0 = now_ns () in
  let key = cache_key config plan in
  match Option.bind cache (fun c -> Cache.memo_find c key) with
  | Some compiled ->
      (* already linked into this process: free, like any resident code *)
      report.cache_hit <- true;
      report.ir_instrs <- compiled.Emit.ninstrs;
      note_cache media true;
      compiled
  | None ->
      let span_body () =
        let func =
          match Option.bind cache (fun c -> Cache.find c key) with
          | Some blob ->
              report.cache_hit <- true;
              report.compile_modeled_ns <- config.link_latency_ns;
              note_cache media true;
              Ir.of_string blob
          | None ->
              let f =
                Codegen.codegen ~prop_tag:config.prop_tag
                  ~param_tag:(param_tag_of params) ?prof_base plan
              in
              let f = Passes.optimize ~level:config.opt_level f in
              report.compile_modeled_ns <-
                config.backend_latency_ns
                + (config.backend_latency_per_op_ns * A.operator_count plan);
              note_cache media false;
              (match cache with
              | Some c -> (
                  try Cache.store c key (Ir.to_string f) with Cache.Full -> ())
              | None -> ());
              f
        in
        let compiled = Emit.emit func in
        report.ir_instrs <- compiled.Emit.ninstrs;
        (* the modeled backend latency elapses in wall-clock, as LLVM's would *)
        Pmem.Media.busy_wait_ns report.compile_modeled_ns;
        report.compile_wall_ns <- report.compile_wall_ns + (now_ns () - t0);
        (match media with
        | Some m -> Pmem.Media.charge m report.compile_modeled_ns
        | None -> ());
        note_compile_ns media report.compile_modeled_ns;
        (match cache with Some c -> Cache.memo_add c key compiled | None -> ());
        compiled
      in
      (match media with
      | Some m ->
          Obs.Trace.with_span (Pmem.Media.tracer m) "jit_compile" span_body
      | None -> span_body ())

let run_compiled (compiled : Emit.compiled) ?pool (g : Query.Source.t) ~params
    report =
  let nchunks = g.Query.Source.node_chunks () in
  let acc = ref [] in
  (match pool with
  | None ->
      let local = ref [] in
      compiled.Emit.run
        {
          Emit.g;
          params;
          sink = (fun row -> local := row :: !local);
          chunk_lo = 0;
          chunk_hi = -1;
          nchunks;
          prof = None;
        };
      acc := !local;
      report.morsels_jit <- report.morsels_jit + max 1 nchunks
  | Some pool ->
      let mu = Mutex.create () in
      let tasks =
        List.init (max 1 nchunks) (fun ci () ->
            let local = ref [] in
            compiled.Emit.run
              {
                Emit.g;
                params;
                sink = (fun row -> local := row :: !local);
                chunk_lo = ci;
                chunk_hi = ci + 1;
                nchunks;
                prof = None;
              };
            Mutex.lock mu;
            acc := List.rev_append !local !acc;
            Mutex.unlock mu)
      in
      Exec.Task_pool.run pool tasks;
      report.morsels_jit <- report.morsels_jit + max 1 nchunks);
  !acc

let finish tr rows_rev =
  let out = ref [] in
  tr (fun k -> List.iter k (List.rev rows_rev)) (fun row -> out := row :: !out);
  List.rev !out

(* --- Public entry point ------------------------------------------------------ *)

let run ?pool ?cache ?media ?(config = default_config) ?prof ~mode
    (g : Query.Source.t) ~params plan =
  let report = fresh_report mode in
  let rows =
    match mode with
    | Interp ->
        let rows = I.run ?pool ?prof g ~params plan in
        report.morsels_interp <- max 1 (g.Query.Source.node_chunks ());
        rows
    | Jit when prof <> None -> (
        (* profiled compilation: serial, cache-bypassing, with ProfHooks
           anchored at the core root's preorder id in the full plan *)
        let p = Option.get prof in
        let pipelined, tr = split ~prof:p g ~params plan in
        let base =
          Option.value ~default:0 (A.preorder_id_of plan pipelined)
        in
        match
          compile ?media ~prof_base:base ~config ~params report pipelined
        with
        | compiled ->
            let nchunks = g.Query.Source.node_chunks () in
            let out = ref [] in
            let t0 = Obs.Profile.now p in
            let producer yield =
              compiled.Emit.run
                {
                  Emit.g;
                  params;
                  sink = yield;
                  chunk_lo = 0;
                  chunk_hi = -1;
                  nchunks;
                  prof;
                }
            in
            (try tr producer (fun row -> out := row :: !out)
             with I.Limit_stop -> ());
            (* generated code has no per-operator timers: the whole
               pipeline's elapsed ticks are charged to the core root *)
            Obs.Profile.add_ticks p base (Obs.Profile.now p - t0);
            report.morsels_jit <- max 1 nchunks;
            List.rev !out
        | exception Codegen.Unsupported _ ->
            report.fell_back <- true;
            I.run ~prof:p g ~params plan)
    | Jit -> (
        let pipelined, tr = split g ~params plan in
        match compile ?cache ?media ~config ~params report pipelined with
        | compiled -> (
            match pool with
            | None ->
                (* serial: the compiled pipeline streams straight into the
                   AOT breaker suffix, no intermediate materialisation *)
                let nchunks = g.Query.Source.node_chunks () in
                let out = ref [] in
                let producer yield =
                  compiled.Emit.run
                    {
                      Emit.g;
                      params;
                      sink = yield;
                      chunk_lo = 0;
                      chunk_hi = -1;
                      nchunks;
                      prof = None;
                    }
                in
                (try tr producer (fun row -> out := row :: !out)
                 with I.Limit_stop -> ());
                report.morsels_jit <- max 1 nchunks;
                List.rev !out
            | Some _ ->
                let collected = run_compiled compiled ?pool g ~params report in
                finish tr collected)
        | exception Codegen.Unsupported _ ->
            report.fell_back <- true;
            I.run ?pool g ~params plan)
    | Adaptive -> (
        let pipelined, tr = split g ~params plan in
        if not (I.chunkable (I.leftmost_leaf pipelined)) then begin
          (* too short to adapt: the whole query is one morsel; per the
             paper this degenerates to pure AOT execution *)
          report.fell_back <- true;
          report.morsels_interp <- 1;
          I.run g ~params plan
        end
        else begin
          let key = cache_key config pipelined in
          let current : Emit.compiled option Atomic.t =
            (* a previous execution may have left compiled code in the
               cache: then every morsel runs compiled from the start *)
            match Option.bind cache (fun c -> Cache.memo_find c key) with
            | Some compiled ->
                report.cache_hit <- true;
                Atomic.make (Some compiled)
            | None -> Atomic.make None
          in
          if Atomic.get current = None then
            (* hand the plan to the background compiler service; the query
               does NOT wait for it - morsels just watch the cell *)
            Compiler_service.submit (fun () ->
                match
                  let f =
                    Codegen.codegen ~prop_tag:config.prop_tag
                      ~param_tag:(param_tag_of params) pipelined
                  in
                  let f = Passes.optimize ~level:config.opt_level f in
                  let modeled =
                    config.backend_latency_ns
                    + (config.backend_latency_per_op_ns * A.operator_count pipelined)
                  in
                  (* the backend runs on its own domain: wall time elapses
                     but no worker CPU is stolen *)
                  Unix.sleepf (float_of_int modeled /. 1e9);
                  report.compile_modeled_ns <- modeled;
                  (f, Emit.emit f)
                with
                | f, compiled ->
                    (match cache with
                    | Some c ->
                        (try Cache.store c key (Ir.to_string f)
                         with Cache.Full -> ());
                        Cache.memo_add c key compiled
                    | None -> ());
                    Atomic.set current (Some compiled)
                | exception Codegen.Unsupported _ -> ());
          let nchunks = max 1 (g.Query.Source.node_chunks ()) in
          let mu = Mutex.create () in
          let acc = ref [] in
          let interp_morsels = Atomic.make 0 and jit_morsels = Atomic.make 0 in
          let run_morsel ci =
            let local = ref [] in
            (match Atomic.get current with
            | Some compiled ->
                Atomic.incr jit_morsels;
                compiled.Emit.run
                  {
                    Emit.g;
                    params;
                    sink = (fun row -> local := row :: !local);
                    chunk_lo = ci;
                    chunk_hi = ci + 1;
                    nchunks;
                    prof = None;
                  }
            | None ->
                Atomic.incr interp_morsels;
                I.produce g ~params ~chunk:ci pipelined (fun row ->
                    local := row :: !local));
            Mutex.lock mu;
            acc := List.rev_append !local !acc;
            Mutex.unlock mu
          in
          (match pool with
          | Some pool ->
              Exec.Task_pool.run pool
                (List.init nchunks (fun ci () -> run_morsel ci))
          | None ->
              for ci = 0 to nchunks - 1 do
                run_morsel ci
              done);
          report.morsels_interp <- Atomic.get interp_morsels;
          report.morsels_jit <- Atomic.get jit_morsels;
          finish tr !acc
        end)
  in
  report.rows <- List.length rows;
  (rows, report)
