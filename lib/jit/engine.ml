(* Query execution engine with three modes (Section 6.2):

   - [Interp]: the AOT-compiled push-based interpreter;
   - [Jit]: compile the pipelined part of the plan (codegen -> pass
     cascade -> emission), optionally consulting the persistent compiled-
     query cache, then execute the emitted code;
   - [Adaptive]: start interpreting morsels immediately while a background
     domain compiles; once compilation finishes, the task function is
     redirected and the remaining morsels run the compiled code - hiding
     both the compilation time and (on PMem) part of the access latency.

   Non-aggregating pipeline breakers (Sort/Limit/Distinct/joins) always
   execute in the AOT engine, consuming the pipeline's output.
   Aggregation breakers directly above a chunkable pipeline run
   morsel-parallel in every mode: each morsel feeds a per-chunk partial
   state ([Interp.agg_partial]) - a counting/grouping sink over the
   compiled pipeline when JIT-ed - and the partials merge at the barrier
   in chunk-index order ([Interp.agg_merge]), the same contract as the
   interpreter's [agg_serial], so compiled-parallel output is
   bit-identical to serial interpretation.

   On top of compilation sits a capture/replay tier (tinygrad-style):
   the first compiled execution of a plan captures the batch of fused
   closures plus its staged serial tail into [Replay]; steady-state
   executions of the same plan at the same parallelism degree rebind
   only (snapshot, params) and skip the plan walk and the cache probe
   entirely.

   The modeled backend latency stands in for LLVM's milliseconds-scale
   code generation: it is charged to the simulated clock (and, when the
   media is in spin mode, to wall-clock) exactly when the paper would pay
   it - on a cache miss in Jit mode, or in the background in Adaptive
   mode. *)

module Value = Storage.Value
module A = Query.Algebra
module I = Query.Interp

type mode = Interp | Jit | Adaptive

let pp_mode ppf = function
  | Interp -> Fmt.string ppf "aot"
  | Jit -> Fmt.string ppf "jit"
  | Adaptive -> Fmt.string ppf "adaptive"

type config = {
  backend_latency_ns : int; (* modeled LLVM base compile time *)
  backend_latency_per_op_ns : int;
  link_latency_ns : int; (* paid on cache hits: re-linking the object *)
  opt_level : Passes.level;
  prop_tag : int -> Ir.vtag;
}

let default_config =
  {
    backend_latency_ns = 1_500_000;
    backend_latency_per_op_ns = 350_000;
    link_latency_ns = 120_000;
    opt_level = Passes.O3;
    prop_tag = (fun _ -> Ir.TagInt);
  }

type report = {
  mutable mode_used : mode;
  mutable compile_wall_ns : int; (* measured codegen+passes+emit *)
  mutable compile_modeled_ns : int; (* charged backend latency *)
  mutable cache_hit : bool;
  mutable replay_hit : bool; (* served from the capture/replay tier *)
  mutable fell_back : bool; (* unsupported plan: ran interpreted *)
  mutable morsels_interp : int;
  mutable morsels_jit : int;
  mutable ir_instrs : int;
  mutable rows : int;
}

let fresh_report mode =
  {
    mode_used = mode;
    compile_wall_ns = 0;
    compile_modeled_ns = 0;
    cache_hit = false;
    replay_hit = false;
    fell_back = false;
    morsels_interp = 0;
    morsels_jit = 0;
    ir_instrs = 0;
    rows = 0;
  }

let now_ns () = int_of_float (Unix.gettimeofday () *. 1e9)

let param_tag_of params i =
  match params.(i) with
  | Value.Int _ -> Ir.TagInt
  | Value.Str _ -> Ir.TagStr
  | Value.Bool _ -> Ir.TagBool
  | Value.Null -> Ir.TagInt
  | Value.Float _ | Value.Text _ ->
      raise (Codegen.Unsupported "float/text parameter")

(* The compiled-query cache key names everything that shaped the stored
   artifact: the operator tree, the pass cascade level, the parallelism
   degree the closure batch was scheduled for, and whether ProfHooks
   were threaded through the code.  Degree matters because the captured
   schedule (one partial state per chunk, merged at a degree-wide
   barrier) is part of what the key retrieves: code compiled for N
   workers is never replayed at M. *)
let cache_key ?(profiled = false) ?(degree = 1) cfg plan =
  Printf.sprintf "%s@%s#w%d%s" (A.fingerprint plan)
    (match cfg.opt_level with Passes.O0 -> "O0" | Passes.O1 -> "O1" | Passes.O3 -> "O3")
    degree
    (if profiled then "!prof" else "")

let degree_of pool =
  match pool with Some p -> Exec.Task_pool.size p | None -> 1

(* Cache hit/miss, replay-tier and parallel-morsel counters plus the
   compile-time and per-tier latency histograms, all on the media's
   metrics registry; no-ops without a media. *)
let note_cache media hit =
  match media with
  | None -> ()
  | Some m ->
      let reg = Pmem.Media.registry m in
      Obs.Metrics.incr
        (if hit then
           Obs.Metrics.counter reg
             ~help:"compiled-query cache hits (memo or persistent)"
             "jit_cache_hits_total"
         else
           Obs.Metrics.counter reg
             ~help:"compiled-query cache misses (full compilations)"
             "jit_cache_misses_total")

let note_compile_ns media ns =
  match media with
  | None -> ()
  | Some m ->
      Obs.Histogram.observe
        (Obs.Metrics.histogram
           (Pmem.Media.registry m)
           ~help:"modeled backend latency charged per compilation (sim ns)"
           "jit_compile_ns")
        ns

let note_replay_hit media =
  match media with
  | None -> ()
  | Some m ->
      Obs.Metrics.incr
        (Obs.Metrics.counter
           (Pmem.Media.registry m)
           ~help:"queries served by the capture/replay tier (no plan walk)"
           "jit_replay_hits_total")

let note_parallel_morsels media n =
  match media with
  | None -> ()
  | Some m ->
      Obs.Metrics.add
        (Obs.Metrics.counter
           (Pmem.Media.registry m)
           ~help:"compiled morsels executed on task-pool workers"
           "jit_parallel_morsels_total")
        n

let note_tier_latency media ~tier ns =
  match media with
  | None -> ()
  | Some m ->
      Obs.Histogram.observe
        (Obs.Metrics.histogram
           (Pmem.Media.registry m)
           ~labels:[ ("tier", tier) ]
           ~help:"simulated ns per query execution, by execution tier"
           "query_exec_ns")
        ns

(* Compile the pipelined plan: returns the emitted code, consulting and
   filling [cache].  With [prof_base], ProfHooks are threaded through the
   generated code and the persistent cache is bypassed entirely (hooked
   code must never be cached, and a profiled run wants a fresh, fully
   measured compilation anyway); cache hit/miss counters are then left
   untouched. *)
let compile ?cache ?media ?prof_base ~config ~degree ~params report plan =
  let cache = if prof_base = None then cache else None in
  let note_cache media hit = if prof_base = None then note_cache media hit in
  let t0 = now_ns () in
  let key = cache_key ~profiled:(prof_base <> None) ~degree config plan in
  match Option.bind cache (fun c -> Cache.memo_find c key) with
  | Some compiled ->
      (* already linked into this process: free, like any resident code *)
      report.cache_hit <- true;
      report.ir_instrs <- compiled.Emit.ninstrs;
      note_cache media true;
      compiled
  | None ->
      let span_body () =
        let func =
          match Option.bind cache (fun c -> Cache.find c key) with
          | Some blob ->
              report.cache_hit <- true;
              report.compile_modeled_ns <- config.link_latency_ns;
              note_cache media true;
              Ir.of_string blob
          | None ->
              let f =
                Codegen.codegen ~prop_tag:config.prop_tag
                  ~param_tag:(param_tag_of params) ?prof_base plan
              in
              let f = Passes.optimize ~level:config.opt_level f in
              report.compile_modeled_ns <-
                config.backend_latency_ns
                + (config.backend_latency_per_op_ns * A.operator_count plan);
              note_cache media false;
              (match cache with
              | Some c -> (
                  try Cache.store c key (Ir.to_string f) with Cache.Full -> ())
              | None -> ());
              f
        in
        let compiled = Emit.emit func in
        report.ir_instrs <- compiled.Emit.ninstrs;
        (* the modeled backend latency elapses in wall-clock, as LLVM's would *)
        Pmem.Media.busy_wait_ns report.compile_modeled_ns;
        report.compile_wall_ns <- report.compile_wall_ns + (now_ns () - t0);
        (match media with
        | Some m -> Pmem.Media.charge m report.compile_modeled_ns
        | None -> ());
        note_compile_ns media report.compile_modeled_ns;
        (match cache with Some c -> Cache.memo_add c key compiled | None -> ());
        compiled
      in
      (match media with
      | Some m ->
          Obs.Trace.with_span (Pmem.Media.tracer m) "jit_compile" span_body
      | None -> span_body ())

(* The captured execution shape of a compiled plan: a row pipeline
   streaming into the staged tail, or a parallel aggregation whose
   morsels feed per-chunk partials.  [entry_of_split] derives it from a
   split; the same entry is what the replay tier snapshots. *)
let entry_of_split ~degree compiled = function
  | I.Par _ ->
      { Replay.compiled; shape = Replay.Rows; tail = (fun _ ~params:_ s -> s); degree }
  | I.Ser (_, tail) -> { Replay.compiled; shape = Replay.Rows; tail; degree }
  | I.ParAgg (_, agg, tail) ->
      { Replay.compiled; shape = Replay.Agg agg; tail; degree }

let finish tr rows_rev =
  let out = ref [] in
  tr (fun k -> List.iter k (List.rev rows_rev)) (fun row -> out := row :: !out);
  List.rev !out

(* Execute a captured entry against a snapshot.  Serially, the compiled
   pipeline streams straight into the AOT suffix (aggregations fold
   through [agg_serial]); with a pool, row pipelines collect morsel
   output and aggregations run as per-chunk partial-state closures - the
   compiled core with a counting/grouping sink - merged at the barrier
   in chunk order.  [prof] is threaded into the runtime so [ProfHook]s
   fire (tuple counts are atomic, hence exact even morsel-parallel). *)
let exec_entry ?pool ?media ?prof (e : Replay.entry) (g : Query.Source.t)
    ~params report =
  let compiled = e.Replay.compiled in
  let nchunks = max 1 (g.Query.Source.node_chunks ()) in
  let runtime ~sink ~lo ~hi =
    { Emit.g; params; sink; chunk_lo = lo; chunk_hi = hi; nchunks; prof }
  in
  match (e.Replay.shape, pool) with
  | Replay.Rows, None ->
      let out = ref [] in
      let producer yield = compiled.Emit.run (runtime ~sink:yield ~lo:0 ~hi:(-1)) in
      (try e.Replay.tail g ~params producer (fun row -> out := row :: !out)
       with I.Limit_stop -> ());
      report.morsels_jit <- report.morsels_jit + nchunks;
      List.rev !out
  | Replay.Agg agg, None ->
      let out = ref [] in
      let producer yield = compiled.Emit.run (runtime ~sink:yield ~lo:0 ~hi:(-1)) in
      (try
         e.Replay.tail g ~params
           (I.agg_serial agg producer)
           (fun row -> out := row :: !out)
       with I.Limit_stop -> ());
      report.morsels_jit <- report.morsels_jit + nchunks;
      List.rev !out
  | Replay.Rows, Some pool ->
      let mu = Mutex.create () in
      let acc = ref [] in
      Exec.Task_pool.run_indexed pool ~n:nchunks (fun ci ->
          let local = ref [] in
          compiled.Emit.run
            (runtime ~sink:(fun row -> local := row :: !local) ~lo:ci ~hi:(ci + 1));
          Mutex.lock mu;
          acc := List.rev_append !local !acc;
          Mutex.unlock mu);
      report.morsels_jit <- report.morsels_jit + nchunks;
      note_parallel_morsels media nchunks;
      finish (e.Replay.tail g ~params) !acc
  | Replay.Agg agg, Some pool ->
      (* per-worker partial-state closures over the compiled core; the
         barrier merges in chunk-index order under the same contract as
         the interpreter's agg_serial *)
      let partials = Array.init nchunks (fun _ -> I.agg_partial agg) in
      Exec.Task_pool.run_indexed pool ~n:nchunks (fun ci ->
          compiled.Emit.run
            (runtime ~sink:(I.agg_feed partials.(ci)) ~lo:ci ~hi:(ci + 1)));
      report.morsels_jit <- report.morsels_jit + nchunks;
      note_parallel_morsels media nchunks;
      let out = ref [] in
      (try
         e.Replay.tail g ~params
           (I.agg_merge agg partials)
           (fun row -> out := row :: !out)
       with I.Limit_stop -> ());
      List.rev !out

(* --- Public entry point ------------------------------------------------------ *)

let run ?pool ?cache ?media ?(config = default_config) ?prof ~mode
    (g : Query.Source.t) ~params plan =
  let report = fresh_report mode in
  let degree = degree_of pool in
  let replay_tbl = Option.map Cache.replay cache in
  let replay_key = lazy (cache_key ~degree config plan) in
  let clock () = match media with Some m -> Pmem.Media.clock m | None -> 0 in
  let t0 = clock () in
  let rows =
    match mode with
    | Interp ->
        let rows = I.run ?pool ?prof g ~params plan in
        report.morsels_interp <- max 1 (g.Query.Source.node_chunks ());
        rows
    | Jit when prof <> None -> (
        (* profiled compilation: cache-bypassing, with ProfHooks anchored
           at the core root's preorder id in the full plan.  Tuple
           counters are atomic, so a pooled profiled run still reports
           exact per-operator counts; ticks for the compiled core are
           charged inclusively to the core root either way. *)
        let p = Option.get prof in
        let sp = I.split_plan ~prof:p plan in
        let pipelined, _ = I.split_serial sp in
        let base =
          Option.value ~default:0 (A.preorder_id_of plan pipelined)
        in
        match
          compile ?media ~prof_base:base ~config ~degree ~params report
            pipelined
        with
        | compiled ->
            let entry = entry_of_split ~degree compiled sp in
            let t0 = Obs.Profile.now p in
            let rows = exec_entry ?pool ?media ~prof:p entry g ~params report in
            (* generated code has no per-operator timers: the whole
               pipeline's elapsed ticks are charged to the core root *)
            Obs.Profile.add_ticks p base (Obs.Profile.now p - t0);
            rows
        | exception Codegen.Unsupported _ ->
            report.fell_back <- true;
            I.run ~prof:p g ~params plan)
    | Jit -> (
        match
          Option.bind replay_tbl (fun r -> Replay.find r (Lazy.force replay_key))
        with
        | Some entry ->
            (* steady state: rebind (snapshot, params) into the captured
               closure batch - no plan walk, no split, no cache probe *)
            report.replay_hit <- true;
            report.cache_hit <- true;
            report.ir_instrs <- entry.Replay.compiled.Emit.ninstrs;
            note_replay_hit media;
            exec_entry ?pool ?media entry g ~params report
        | None -> (
            let sp = I.split_plan plan in
            let pipelined, _ = I.split_serial sp in
            match
              compile ?cache ?media ~config ~degree ~params report pipelined
            with
            | compiled ->
                let entry = entry_of_split ~degree compiled sp in
                let rows = exec_entry ?pool ?media entry g ~params report in
                (match replay_tbl with
                | Some r -> Replay.add r (Lazy.force replay_key) entry
                | None -> ());
                rows
            | exception Codegen.Unsupported _ ->
                report.fell_back <- true;
                I.run ?pool g ~params plan))
    | Adaptive -> (
        match
          Option.bind replay_tbl (fun r -> Replay.find r (Lazy.force replay_key))
        with
        | Some entry ->
            (* a prior execution captured the compiled batch: every morsel
               runs compiled from the start, plan walk skipped *)
            report.replay_hit <- true;
            report.cache_hit <- true;
            report.ir_instrs <- entry.Replay.compiled.Emit.ninstrs;
            note_replay_hit media;
            exec_entry ?pool ?media entry g ~params report
        | None ->
            let sp = I.split_plan plan in
            let pipelined, _ = I.split_serial sp in
            if not (I.chunkable (I.leftmost_leaf pipelined)) then begin
              (* too short to adapt: the whole query is one morsel; per the
                 paper this degenerates to pure AOT execution *)
              report.fell_back <- true;
              report.morsels_interp <- 1;
              I.run g ~params plan
            end
            else begin
              let key = cache_key ~degree config pipelined in
              let current : Emit.compiled option Atomic.t =
                (* a previous execution may have left compiled code in the
                   cache: then every morsel runs compiled from the start *)
                match Option.bind cache (fun c -> Cache.memo_find c key) with
                | Some compiled ->
                    report.cache_hit <- true;
                    Atomic.make (Some compiled)
                | None -> Atomic.make None
              in
              if Atomic.get current = None then
                (* hand the plan to the background compiler service; the query
                   does NOT wait for it - morsels just watch the cell *)
                Compiler_service.submit (fun () ->
                    match
                      let f =
                        Codegen.codegen ~prop_tag:config.prop_tag
                          ~param_tag:(param_tag_of params) pipelined
                      in
                      let f = Passes.optimize ~level:config.opt_level f in
                      let modeled =
                        config.backend_latency_ns
                        + (config.backend_latency_per_op_ns
                          * A.operator_count pipelined)
                      in
                      (* the backend runs on its own domain: wall time elapses
                         but no worker CPU is stolen *)
                      Unix.sleepf (float_of_int modeled /. 1e9);
                      report.compile_modeled_ns <- modeled;
                      (f, Emit.emit f)
                    with
                    | f, compiled ->
                        (match cache with
                        | Some c ->
                            (try Cache.store c key (Ir.to_string f)
                             with Cache.Full -> ());
                            Cache.memo_add c key compiled
                        | None -> ());
                        Atomic.set current (Some compiled)
                    | exception Codegen.Unsupported _ -> ());
              let nchunks = max 1 (g.Query.Source.node_chunks ()) in
              let interp_morsels = Atomic.make 0
              and jit_morsels = Atomic.make 0 in
              (* each morsel reads the cell once and finishes on the tier
                 it started on; the swap lands between morsels mid-query *)
              let jit_runtime ci sink compiled =
                Atomic.incr jit_morsels;
                compiled.Emit.run
                  {
                    Emit.g;
                    params;
                    sink;
                    chunk_lo = ci;
                    chunk_hi = ci + 1;
                    nchunks;
                    prof = None;
                  }
              in
              let rows =
                match sp with
                | I.Par _ | I.Ser _ ->
                    let _, tail = I.split_serial sp in
                    let mu = Mutex.create () in
                    let acc = ref [] in
                    let run_morsel ci =
                      let local = ref [] in
                      (match Atomic.get current with
                      | Some compiled ->
                          jit_runtime ci (fun row -> local := row :: !local)
                            compiled
                      | None ->
                          Atomic.incr interp_morsels;
                          I.produce g ~params ~chunk:ci pipelined (fun row ->
                              local := row :: !local));
                      Mutex.lock mu;
                      acc := List.rev_append !local !acc;
                      Mutex.unlock mu
                    in
                    (match pool with
                    | Some pool ->
                        Exec.Task_pool.run_indexed pool ~n:nchunks run_morsel
                    | None ->
                        for ci = 0 to nchunks - 1 do
                          run_morsel ci
                        done);
                    finish (tail g ~params) !acc
                | I.ParAgg (core, agg, tail) ->
                    (* the hot-swap covers aggregations too: whichever tier
                       runs the morsel, it feeds the same per-chunk partial,
                       and the barrier merge is tier-blind *)
                    let partials =
                      Array.init nchunks (fun _ -> I.agg_partial agg)
                    in
                    let run_morsel ci =
                      match Atomic.get current with
                      | Some compiled ->
                          jit_runtime ci (I.agg_feed partials.(ci)) compiled
                      | None ->
                          Atomic.incr interp_morsels;
                          I.produce g ~params ~chunk:ci core
                            (I.agg_feed partials.(ci))
                    in
                    (match pool with
                    | Some pool ->
                        Exec.Task_pool.run_indexed pool ~n:nchunks run_morsel
                    | None ->
                        for ci = 0 to nchunks - 1 do
                          run_morsel ci
                        done);
                    let out = ref [] in
                    (try
                       tail g ~params
                         (I.agg_merge agg partials)
                         (fun row -> out := row :: !out)
                     with I.Limit_stop -> ());
                    List.rev !out
              in
              report.morsels_interp <- Atomic.get interp_morsels;
              report.morsels_jit <- Atomic.get jit_morsels;
              if pool <> None then
                note_parallel_morsels media (Atomic.get jit_morsels);
              (* once compilation has landed, capture the batch so the next
                 execution replays it without walking the plan *)
              (match (Atomic.get current, replay_tbl) with
              | Some compiled, Some r ->
                  Replay.add r (Lazy.force replay_key)
                    (entry_of_split ~degree compiled sp)
              | _ -> ());
              rows
            end)
  in
  report.rows <- List.length rows;
  (match media with
  | None -> ()
  | Some _ ->
      let tier =
        match mode with
        | Interp -> "aot"
        | Jit -> if report.replay_hit then "jit_replay" else "jit"
        | Adaptive -> "adaptive"
      in
      note_tier_latency media ~tier (clock () - t0));
  (rows, report)
