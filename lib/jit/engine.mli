(** Query execution engine with the paper's three modes (Section 6.2):
    AOT interpretation, JIT compilation with a persistent compiled-query
    cache, and adaptive execution that interprets morsels while a
    background domain compiles, then hot-swaps per-morsel (in-flight
    morsels finish on the tier they started on).

    Non-aggregating pipeline breakers (sorts, limits, joins) always run
    in the AOT engine over the compiled pipeline's output stream.
    Aggregations directly above a chunkable pipeline run morsel-parallel
    in every mode: compiled morsels feed per-chunk partial states merged
    at the barrier in chunk order, under the same contract as the
    interpreter's [agg_serial] - so compiled-parallel output is
    identical to serial interpretation.

    A capture/replay tier (tinygrad-style) snapshots the post-compile
    closure batch keyed by plan fingerprint + parallelism degree;
    steady-state executions rebind only (snapshot, params) and skip the
    plan walk and cache probe entirely. *)

type mode = Interp | Jit | Adaptive

val pp_mode : Format.formatter -> mode -> unit

type config = {
  backend_latency_ns : int;  (** modeled LLVM backend compile time (base) *)
  backend_latency_per_op_ns : int;
  link_latency_ns : int;  (** paid on persistent-cache hits (re-linking) *)
  opt_level : Passes.level;
  prop_tag : int -> Ir.vtag;
      (** schema type hints: property key -> compile-time value tag *)
}

val default_config : config

type report = {
  mutable mode_used : mode;
  mutable compile_wall_ns : int;
  mutable compile_modeled_ns : int;
  mutable cache_hit : bool;
  mutable replay_hit : bool;
      (** served by the capture/replay tier: no plan walk, no cache probe *)
  mutable fell_back : bool;  (** unsupported plan shape: ran interpreted *)
  mutable morsels_interp : int;
  mutable morsels_jit : int;
  mutable ir_instrs : int;
  mutable rows : int;
}

val cache_key :
  ?profiled:bool -> ?degree:int -> config -> Query.Algebra.plan -> string
(** The compiled-query cache key: plan fingerprint + optimisation level
    + parallelism degree + profiling flag.  Code compiled for N workers
    is never replayed at M; hooked (profiled) code never collides with
    unhooked. *)

val run :
  ?pool:Exec.Task_pool.t ->
  ?cache:Cache.t ->
  ?media:Pmem.Media.t ->
  ?config:config ->
  ?prof:Obs.Profile.t ->
  mode:mode ->
  Query.Source.t ->
  params:Storage.Value.t array ->
  Query.Algebra.plan ->
  Storage.Value.t array list * report
(** Execute a plan.  With [pool], the scan is morsel-parallelised.  With
    [cache], compiled queries are memoised in-process and persisted
    across restarts.  [media] receives the modeled compilation-latency
    charge in [Jit] mode and hosts the registry for cache hit/miss
    counters, the [jit_compile_ns] histogram and the compile span.

    With [prof], per-operator tuple counts and ticks are recorded under
    the plan's preorder ids (see {!Query.Algebra.op_names}).  In [Jit]
    mode a profiled run compiles with [ProfHook]s while bypassing the
    caches; tuple counters are atomic, so even a morsel-parallel
    profiled run reports exact per-operator counts identical to the
    interpreter's ([Interp] profiled runs stay serial so tick
    attribution is meaningful).  [Adaptive] mode ignores [prof]. *)
