(** Query execution engine with the paper's three modes (Section 6.2):
    AOT interpretation, JIT compilation with a persistent compiled-query
    cache, and adaptive execution that interprets morsels while a
    background domain compiles, then hot-swaps.

    Pipeline breakers (sorts, limits, aggregates, joins) always run in
    the AOT engine over the compiled pipeline's output stream. *)

type mode = Interp | Jit | Adaptive

val pp_mode : Format.formatter -> mode -> unit

type config = {
  backend_latency_ns : int;  (** modeled LLVM backend compile time (base) *)
  backend_latency_per_op_ns : int;
  link_latency_ns : int;  (** paid on persistent-cache hits (re-linking) *)
  opt_level : Passes.level;
  prop_tag : int -> Ir.vtag;
      (** schema type hints: property key -> compile-time value tag *)
}

val default_config : config

type report = {
  mutable mode_used : mode;
  mutable compile_wall_ns : int;
  mutable compile_modeled_ns : int;
  mutable cache_hit : bool;
  mutable fell_back : bool;  (** unsupported plan shape: ran interpreted *)
  mutable morsels_interp : int;
  mutable morsels_jit : int;
  mutable ir_instrs : int;
  mutable rows : int;
}

val run :
  ?pool:Exec.Task_pool.t ->
  ?cache:Cache.t ->
  ?media:Pmem.Media.t ->
  ?config:config ->
  ?prof:Obs.Profile.t ->
  mode:mode ->
  Query.Source.t ->
  params:Storage.Value.t array ->
  Query.Algebra.plan ->
  Storage.Value.t array list * report
(** Execute a plan.  With [pool], the scan is morsel-parallelised.  With
    [cache], compiled queries are memoised in-process and persisted
    across restarts.  [media] receives the modeled compilation-latency
    charge in [Jit] mode and hosts the registry for cache hit/miss
    counters, the [jit_compile_ns] histogram and the compile span.

    With [prof], per-operator tuple counts and ticks are recorded under
    the plan's preorder ids (see {!Query.Algebra.op_names}).  Profiled
    runs are serial and, in [Jit] mode, compile with [ProfHook]s while
    bypassing the persistent cache - so interpreted and compiled runs of
    the same plan report identical per-operator tuple counts.
    [Adaptive] mode ignores [prof]. *)
