(** The JIT intermediate representation (Section 6.2): a register machine
    over 63-bit integers organised in basic blocks - the moral equivalent
    of the LLVM IR subset the paper generates.  Stack slots with explicit
    Load/Store model naive frontend output (promoted by Mem2Reg); all
    property values flow as 64-bit payloads with types resolved at
    compile time; [null_v] is the missing-value sentinel; runtime calls
    are the AOT-compiled access methods. *)

type rv = Reg of int | Imm of int

(** Compile-time value tag of an emitted column. *)
type vtag = TagInt | TagBool | TagStr | TagRef

type cmp = Ceq | Cne | Clt | Cle | Cgt | Cge
type binop = Add | Sub | Mul | BAnd | BOr | BXor

type instr =
  | Load of int * int  (** reg <- slot (removed by Mem2Reg) *)
  | Store of int * rv
  | Move of int * rv
  | Bin of binop * int * rv * rv
  | Cmp of cmp * int * rv * rv  (** null-sentinel aware; 0/1 result *)
  | Not of int * rv
  | IsNull of int * rv
  | ChunkStart of int
  | ChunkCount of int
  | ChunkSize of int
  | FetchNode of int * rv * rv  (** dst, chunk, slot: visible id or -1 *)
  | NodeExists of int * rv
  | NodeLabel of int * rv
  | RelLabel of int * rv
  | NodePropV of int * rv * int  (** dst <- payload of prop or [null_v] *)
  | RelPropV of int * rv * int
  | RelSrc of int * rv
  | RelDst of int * rv
  | FirstOut of int * rv
  | NextSrc of int * rv
  | FirstIn of int * rv
  | NextDst of int * rv
  | RelVisible of int * rv
  | LoadParam of int * int
  | IndexProbe of int * int * int * int * rv * rv
      (** dst_count, label, key, probe id, lo, hi: materialise matching
          node ids into a runtime array *)
  | IndexCursorNext of int * int * int
  | CreateNode of int * int * (int * vtag * rv) list
  | CreateRel of int * int * rv * rv * (int * vtag * rv) list
  | SetNodeProp of rv * int * vtag * rv
  | SetRelProp of rv * int * vtag * rv
  | DeleteNode of rv
  | DeleteRel of rv
  | EmitRow of (vtag * rv) list
  | ProfHook of int
      (** bump the runtime profile slot for the operator with this
          preorder id; only present in profiled compilations *)

type term = Br of int | CondBr of rv * int * int | Ret

type block = { mutable instrs : instr list; mutable term : term }

(** Loop metadata recorded by the code generator (the paper's while_loop
    abstractions), consumed by the unrolling pass. *)
type loop_info = {
  l_header : int;
  l_body : int;
  l_advance : int;
  l_exit : int;
}

type func = {
  mutable blocks : block array;
  mutable entry : int;
  mutable nregs : int;
  mutable nslots : int;
  mutable loops : loop_info list;
}

val null_v : int
val pp_func : Format.formatter -> func -> unit
val instr_count : func -> int

val to_string : func -> string
(** Serialise for the persistent compiled-query cache (the "object
    file"); loading back only requires re-emission. *)

val of_string : string -> func
