(* IR optimisation passes (Section 6.2, "JIT Compilation").

   The paper's run-time optimisation cascade, reproduced on our register
   IR:

   - Promote Memory To Register (Mem2Reg): stack slots become registers;
     their Load/Store traffic becomes Moves (our registers are mutable
     cells, so the 1:1 promotion is semantics-preserving without SSA);
   - Instruction Combining / constant folding + per-block copy
     propagation: removes the Moves the promotion left behind and folds
     constant ALU ops;
   - Dead Code Elimination: drops pure instructions whose results are
     never read (graph reads are treated as pure: re-reading a committed
     record is idempotent for the query result);
   - Control Flow Graph Simplification: threads empty blocks, merges
     single-predecessor straight-line chains, drops unreachable blocks;
   - Loop Unrolling: innermost loop regions (as recorded by the code
     generator's while_loop abstractions) are cloned once, halving the
     loop-header dispatch overhead per iteration.

   The cascade order is unroll -> mem2reg -> combine -> dce -> simplify
   (unrolling first, while the generator's loop metadata still names live
   block ids). *)

open Ir

(* --- Mem2Reg ----------------------------------------------------------------- *)

let mem2reg (f : func) =
  if f.nslots > 0 then begin
    let base = f.nregs in
    let reg_of_slot s = base + s in
    Array.iter
      (fun b ->
        b.instrs <-
          List.map
            (function
              | Load (r, s) -> Move (r, Reg (reg_of_slot s))
              | Store (s, v) -> Move (reg_of_slot s, v)
              | i -> i)
            b.instrs)
      f.blocks;
    f.nregs <- base + f.nslots;
    f.nslots <- 0
  end

(* --- Copy propagation + instruction combining (per block) -------------------- *)

let defines = function
  | Load (r, _)
  | Move (r, _)
  | Bin (_, r, _, _)
  | Cmp (_, r, _, _)
  | Not (r, _)
  | IsNull (r, _)
  | ChunkStart r | ChunkCount r | ChunkSize r
  | FetchNode (r, _, _)
  | NodeExists (r, _)
  | NodeLabel (r, _) | RelLabel (r, _)
  | NodePropV (r, _, _) | RelPropV (r, _, _)
  | RelSrc (r, _) | RelDst (r, _)
  | FirstOut (r, _) | NextSrc (r, _) | FirstIn (r, _) | NextDst (r, _)
  | RelVisible (r, _)
  | LoadParam (r, _)
  | IndexProbe (r, _, _, _, _, _)
  | IndexCursorNext (r, _, _)
  | CreateNode (r, _, _)
  | CreateRel (r, _, _, _, _) ->
      Some r
  | Store _ | SetNodeProp _ | SetRelProp _ | DeleteNode _ | DeleteRel _
  | EmitRow _ | ProfHook _ ->
      None

let fold_cmp op a b =
  if a = null_v || b = null_v then 0
  else
    let c = compare a b in
    let r =
      match op with
      | Ceq -> c = 0
      | Cne -> c <> 0
      | Clt -> c < 0
      | Cle -> c <= 0
      | Cgt -> c > 0
      | Cge -> c >= 0
    in
    if r then 1 else 0

let truthy v = v <> 0 && v <> null_v

let fold_bin op a b =
  match op with
  | Add -> a + b
  | Sub -> a - b
  | Mul -> a * b
  | BAnd -> if truthy a && truthy b then 1 else 0
  | BOr -> if truthy a || truthy b then 1 else 0
  | BXor -> a lxor b

let combine (f : func) =
  Array.iter
    (fun blk ->
      let env : (int, rv) Hashtbl.t = Hashtbl.create 16 in
      let subst = function
        | Imm i -> Imm i
        | Reg r -> ( match Hashtbl.find_opt env r with Some v -> v | None -> Reg r)
      in
      let invalidate r =
        Hashtbl.remove env r;
        Hashtbl.iter
          (fun k v -> if v = Reg r then Hashtbl.remove env k)
          (Hashtbl.copy env)
      in
      let out = ref [] in
      List.iter
        (fun ins ->
          let rewritten =
            match ins with
            | Move (r, v) -> Move (r, subst v)
            | Bin (op, r, a, b) -> (
                match (subst a, subst b) with
                | Imm x, Imm y -> Move (r, Imm (fold_bin op x y))
                | Reg x, Imm 0 when op = Add || op = Sub -> Move (r, Reg x)
                | Imm 0, Reg x when op = Add -> Move (r, Reg x)
                | a', b' -> Bin (op, r, a', b'))
            | Cmp (op, r, a, b) -> (
                match (subst a, subst b) with
                | Imm x, Imm y -> Move (r, Imm (fold_cmp op x y))
                | a', b' -> Cmp (op, r, a', b'))
            | Not (r, a) -> (
                match subst a with
                | Imm x -> Move (r, Imm (if truthy x then 0 else 1))
                | a' -> Not (r, a'))
            | IsNull (r, a) -> (
                match subst a with
                | Imm x -> Move (r, Imm (if x = null_v then 1 else 0))
                | a' -> IsNull (r, a'))
            | Store (s, v) -> Store (s, subst v)
            | FetchNode (r, c, s) -> FetchNode (r, subst c, subst s)
            | NodeExists (r, n) -> NodeExists (r, subst n)
            | NodeLabel (r, n) -> NodeLabel (r, subst n)
            | RelLabel (r, n) -> RelLabel (r, subst n)
            | NodePropV (r, n, k) -> NodePropV (r, subst n, k)
            | RelPropV (r, n, k) -> RelPropV (r, subst n, k)
            | RelSrc (r, e) -> RelSrc (r, subst e)
            | RelDst (r, e) -> RelDst (r, subst e)
            | FirstOut (r, n) -> FirstOut (r, subst n)
            | NextSrc (r, e) -> NextSrc (r, subst e)
            | FirstIn (r, n) -> FirstIn (r, subst n)
            | NextDst (r, e) -> NextDst (r, subst e)
            | RelVisible (r, e) -> RelVisible (r, subst e)
            | IndexProbe (r, l, k, p, lo, hi) ->
                IndexProbe (r, l, k, p, subst lo, subst hi)
            | CreateNode (r, l, ps) ->
                CreateNode (r, l, List.map (fun (k, t, v) -> (k, t, subst v)) ps)
            | CreateRel (r, l, s, d, ps) ->
                CreateRel
                  (r, l, subst s, subst d,
                   List.map (fun (k, t, v) -> (k, t, subst v)) ps)
            | SetNodeProp (n, k, t, v) -> SetNodeProp (subst n, k, t, subst v)
            | SetRelProp (n, k, t, v) -> SetRelProp (subst n, k, t, subst v)
            | DeleteNode n -> DeleteNode (subst n)
            | DeleteRel n -> DeleteRel (subst n)
            | EmitRow cols -> EmitRow (List.map (fun (t, v) -> (t, subst v)) cols)
            | Load _ | ChunkStart _ | ChunkCount _ | ChunkSize _ | LoadParam _
            | IndexCursorNext _ | ProfHook _ ->
                ins
          in
          (match defines rewritten with
          | Some r -> (
              invalidate r;
              match rewritten with
              | Move (r', (Imm _ as v)) -> Hashtbl.replace env r' v
              | Move (r', (Reg src as v)) when r' <> src -> Hashtbl.replace env r' v
              | _ -> ())
          | None -> ());
          out := rewritten :: !out)
        blk.instrs;
      blk.instrs <- List.rev !out;
      (* propagate into the terminator *)
      let subst = function
        | Imm i -> Imm i
        | Reg r -> ( match Hashtbl.find_opt env r with Some v -> v | None -> Reg r)
      in
      blk.term <-
        (match blk.term with
        | CondBr (v, a, b) -> (
            match subst v with
            | Imm x -> if truthy x then Br a else Br b
            | v' -> CondBr (v', a, b))
        | t -> t))
    f.blocks

(* --- Dead code elimination ----------------------------------------------------- *)

let uses_of_instr acc ins =
  let rv acc = function Reg r -> r :: acc | Imm _ -> acc in
  match ins with
  | Load _ | ChunkStart _ | ChunkCount _ | ChunkSize _ | LoadParam _
  | ProfHook _ ->
      acc
  | Store (_, v) | Move (_, v) | Not (_, v) | IsNull (_, v) -> rv acc v
  | Bin (_, _, a, b) | Cmp (_, _, a, b) | FetchNode (_, a, b) -> rv (rv acc a) b
  | NodeExists (_, n)
  | NodeLabel (_, n) | RelLabel (_, n)
  | NodePropV (_, n, _) | RelPropV (_, n, _)
  | RelSrc (_, n) | RelDst (_, n)
  | FirstOut (_, n) | NextSrc (_, n) | FirstIn (_, n) | NextDst (_, n)
  | RelVisible (_, n)
  | DeleteNode n | DeleteRel n ->
      rv acc n
  | IndexProbe (_, _, _, _, lo, hi) -> rv (rv acc lo) hi
  | IndexCursorNext (_, _, c) -> c :: acc
  | CreateNode (_, _, ps) -> List.fold_left (fun a (_, _, v) -> rv a v) acc ps
  | CreateRel (_, _, s, d, ps) ->
      List.fold_left (fun a (_, _, v) -> rv a v) (rv (rv acc s) d) ps
  | SetNodeProp (n, _, _, v) | SetRelProp (n, _, _, v) -> rv (rv acc n) v
  | EmitRow cols -> List.fold_left (fun a (_, v) -> rv a v) acc cols

(* instructions safe to drop when their destination is dead *)
let droppable = function
  | Load _ | Move _ | Bin _ | Cmp _ | Not _ | IsNull _ | ChunkStart _
  | ChunkCount _ | ChunkSize _ | LoadParam _ | NodeLabel _ | RelLabel _
  | NodePropV _ | RelPropV _ | RelSrc _ | RelDst _ | FirstOut _ | NextSrc _
  | FirstIn _ | NextDst _ | NodeExists _ | FetchNode _ | IndexCursorNext _ ->
      true
  | RelVisible _ (* keep: bumps rts / may abort, protocol-relevant *)
  | Store _ | IndexProbe _ | CreateNode _ | CreateRel _ | SetNodeProp _
  | SetRelProp _ | DeleteNode _ | DeleteRel _ | EmitRow _
  | ProfHook _ (* side effect: bumps the runtime profile *) ->
      false

let dce (f : func) =
  let changed = ref true in
  while !changed do
    changed := false;
    let live = Hashtbl.create 64 in
    Array.iter
      (fun b ->
        List.iter (fun i -> List.iter (fun r -> Hashtbl.replace live r ()) (uses_of_instr [] i)) b.instrs;
        match b.term with
        | CondBr (Reg r, _, _) -> Hashtbl.replace live r ()
        | _ -> ())
      f.blocks;
    Array.iter
      (fun b ->
        let before = List.length b.instrs in
        b.instrs <-
          List.filter
            (fun i ->
              match defines i with
              | Some r when droppable i && not (Hashtbl.mem live r) -> false
              | _ -> true)
            b.instrs;
        if List.length b.instrs <> before then changed := true)
      f.blocks
  done

(* --- CFG simplification ---------------------------------------------------------- *)

let retarget f map =
  let m l = map l in
  Array.iter
    (fun b ->
      b.term <-
        (match b.term with
        | Br l -> Br (m l)
        | CondBr (v, a, c) -> CondBr (v, m a, m c)
        | Ret -> Ret))
    f.blocks;
  f.entry <- map f.entry

let simplify_cfg (f : func) =
  (* 1. thread jumps through empty blocks *)
  let resolve = Array.make (Array.length f.blocks) (-1) in
  let rec final l seen =
    if List.mem l seen then l
    else if resolve.(l) >= 0 then resolve.(l)
    else
      let b = f.blocks.(l) in
      match (b.instrs, b.term) with
      | [], Br t ->
          let r = final t (l :: seen) in
          resolve.(l) <- r;
          r
      | _ ->
          resolve.(l) <- l;
          l
  in
  retarget f (fun l -> final l []);
  (* 2. merge straight-line chains: A ends in Br B, B has one predecessor *)
  let preds = Array.make (Array.length f.blocks) 0 in
  let bump l = preds.(l) <- preds.(l) + 1 in
  bump f.entry;
  Array.iter
    (fun b ->
      match b.term with
      | Br l -> bump l
      | CondBr (_, a, c) ->
          bump a;
          if a <> c then bump c
      | Ret -> ())
    f.blocks;
  let merged = ref true in
  while !merged do
    merged := false;
    Array.iteri
      (fun i b ->
        match b.term with
        | Br t when t <> i && preds.(t) = 1 ->
            let tb = f.blocks.(t) in
            b.instrs <- b.instrs @ tb.instrs;
            b.term <- tb.term;
            tb.instrs <- [];
            tb.term <- Ret;
            preds.(t) <- 0;
            (* successors of t keep their pred count (edge moved, not added) *)
            merged := true
        | _ -> ())
      f.blocks
  done;
  (* 3. drop unreachable blocks and compact ids *)
  let reach = Array.make (Array.length f.blocks) false in
  let rec mark l =
    if not reach.(l) then begin
      reach.(l) <- true;
      match f.blocks.(l).term with
      | Br t -> mark t
      | CondBr (_, a, c) ->
          mark a;
          mark c
      | Ret -> ()
    end
  in
  mark f.entry;
  let remap = Array.make (Array.length f.blocks) (-1) in
  let next = ref 0 in
  Array.iteri
    (fun i r ->
      if r then begin
        remap.(i) <- !next;
        incr next
      end)
    reach;
  let blocks =
    Array.of_list
      (List.filteri (fun i _ -> reach.(i)) (Array.to_list f.blocks))
  in
  Array.iter
    (fun b ->
      b.term <-
        (match b.term with
        | Br l -> Br remap.(l)
        | CondBr (v, a, c) -> CondBr (v, remap.(a), remap.(c))
        | Ret -> Ret))
    blocks;
  f.entry <- remap.(f.entry);
  f.blocks <- blocks;
  (* loop metadata is stale after renumbering; remap or drop *)
  f.loops <-
    List.filter_map
      (fun l ->
        let ok i = i < Array.length remap && remap.(i) >= 0 in
        if ok l.l_header && ok l.l_body && ok l.l_advance && ok l.l_exit then
          Some
            {
              l_header = remap.(l.l_header);
              l_body = remap.(l.l_body);
              l_advance = remap.(l.l_advance);
              l_exit = remap.(l.l_exit);
            }
        else None)
      f.loops

(* --- Loop unrolling ---------------------------------------------------------------- *)

(* Region of a loop: blocks reachable from its header without passing
   through its exit. *)
let loop_region f (l : loop_info) =
  let seen = Hashtbl.create 16 in
  let rec go b =
    if b <> l.l_exit && not (Hashtbl.mem seen b) then begin
      Hashtbl.replace seen b ();
      match f.blocks.(b).term with
      | Br t -> go t
      | CondBr (_, a, c) ->
          go a;
          go c
      | Ret -> ()
    end
  in
  go l.l_header;
  seen

let unroll_limit = 48

(* Unroll innermost loops once (factor 2): clone the region; the original
   back-edges jump into the clone, the clone's back-edges return to the
   original header - each trip around now runs two iterations' worth of
   header checks and bodies. *)
let unroll (f : func) =
  let regions = List.map (fun l -> (l, loop_region f l)) f.loops in
  let innermost =
    List.filter
      (fun (l, region) ->
        Hashtbl.length region <= unroll_limit
        && not
             (List.exists
                (fun (l', _) -> l != l' && Hashtbl.mem region l'.l_header)
                regions))
      regions
  in
  List.iter
    (fun (l, region) ->
      let nb = Array.length f.blocks in
      let ids = Hashtbl.fold (fun k () acc -> k :: acc) region [] in
      let ids = List.sort compare ids in
      let clone_of = Hashtbl.create 16 in
      List.iteri (fun i id -> Hashtbl.replace clone_of id (nb + i)) ids;
      let map l' = match Hashtbl.find_opt clone_of l' with Some c -> c | None -> l' in
      let clones =
        List.map
          (fun id ->
            let b = f.blocks.(id) in
            {
              instrs = b.instrs;
              term =
                (match b.term with
                | Br t -> Br (map t)
                | CondBr (v, a, c) -> CondBr (v, map a, map c)
                | Ret -> Ret);
            })
          ids
      in
      f.blocks <- Array.append f.blocks (Array.of_list clones);
      (* original back-edges -> clone header; clone back-edges -> original *)
      let c_header = map l.l_header in
      List.iter
        (fun id ->
          let b = f.blocks.(id) in
          b.term <-
            (match b.term with
            | Br t when t = l.l_header -> Br c_header
            | CondBr (v, a, c) ->
                CondBr
                  ( v,
                    (if a = l.l_header then c_header else a),
                    if c = l.l_header then c_header else c )
            | t -> t))
        (List.filter (fun id -> id <> l.l_header) ids);
      let c_of id = Hashtbl.find clone_of id in
      List.iter
        (fun id ->
          let b = f.blocks.(c_of id) in
          b.term <-
            (match b.term with
            | Br t when t = c_header -> Br l.l_header
            | CondBr (v, a, c) ->
                CondBr
                  ( v,
                    (if a = c_header then l.l_header else a),
                    if c = c_header then l.l_header else c )
            | t -> t))
        (List.filter (fun id -> c_of id <> c_header) ids))
    innermost

(* --- The cascade (the paper's -O3-style pipeline) ---------------------------------- *)

type level = O0 | O1 | O3

let optimize ?(level = O3) (f : func) =
  (match level with
  | O0 -> ()
  | O1 ->
      mem2reg f;
      combine f;
      dce f;
      simplify_cfg f
  | O3 ->
      unroll f;
      mem2reg f;
      combine f;
      dce f;
      combine f;
      dce f;
      simplify_cfg f);
  f
