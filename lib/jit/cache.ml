(* Persistent compiled-query cache (Section 6.2, "JIT Compilation").

   The paper persists the JIT's binary object files in a persistent,
   concurrent hash map keyed by a query identifier derived from the
   operator tree; subsequent runs - even across restarts - skip
   compilation and only re-link.  Our "object file" is the serialised
   optimised IR; a hit skips codegen, the pass cascade and the modeled
   backend latency, leaving only closure emission ("linking").

   On-pool layout:

     header: cap u64; count u64
     table:  cap x entry offset (u64; 0 = empty)
     entry:  klen u32; vlen u32; key bytes; value bytes   (blob, 8-aligned)

   Entries are published with an atomic table-slot store after the blob is
   persisted, so the cache is always recoverable; a torn insert at worst
   loses that entry. *)

module Pool = Pmem.Pool
module Alloc = Pmem.Alloc

type t = {
  pool : Pool.t;
  hdr : int;
  cap : int;
  mu : Mutex.t;
  memo : (string, Emit.compiled) Hashtbl.t;
      (* volatile, per-process: already-linked code; lost on restart like
         any mapped code segment, rebuilt from the persistent entries *)
  replay : Replay.t;
      (* volatile capture/replay tier: post-compile closure batches keyed
         by fingerprint + degree; rebuilt by re-capture after restart *)
}

let default_cap = 512

let hash s = Hashtbl.hash s land max_int

let create pool ?(cap = default_cap) ~root_slot () =
  let hdr = Alloc.alloc pool (16 + (8 * cap)) in
  Pool.write_int pool hdr cap;
  Pool.write_int pool (hdr + 8) 0;
  Pool.fill pool ~off:(hdr + 16) ~len:(8 * cap) '\000';
  Pool.persist pool ~off:hdr ~len:(16 + (8 * cap));
  Alloc.set_root pool root_slot hdr;
  {
    pool;
    hdr;
    cap;
    mu = Mutex.create ();
    memo = Hashtbl.create 64;
    replay = Replay.create ();
  }

let attach pool ~root_slot =
  let hdr = Alloc.get_root pool root_slot in
  if hdr = 0 then None
  else
    let cap = Pool.read_int pool hdr in
    Some
      {
        pool;
        hdr;
        cap;
        mu = Mutex.create ();
        memo = Hashtbl.create 64;
        replay = Replay.create ();
      }

let open_or_create pool ~root_slot =
  match attach pool ~root_slot with
  | Some t -> t
  | None -> create pool ~root_slot ()

let count t = Pool.read_int t.pool (t.hdr + 8)

let slot_off t i = t.hdr + 16 + (8 * i)

let entry_key t off =
  let klen = Pool.read_u32 t.pool off in
  Pool.read_string t.pool (off + 8) klen

let entry_value t off =
  let klen = Pool.read_u32 t.pool off in
  let vlen = Pool.read_u32 t.pool (off + 4) in
  Pool.read_string t.pool (off + 8 + klen) vlen

let find t key =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) @@ fun () ->
  let rec probe i steps =
    if steps >= t.cap then None
    else
      let e = Pool.read_int t.pool (slot_off t i) in
      if e = 0 then None
      else if String.equal (entry_key t e) key then Some (entry_value t e)
      else probe ((i + 1) mod t.cap) (steps + 1)
  in
  probe (hash key mod t.cap) 0

exception Full

let store t key value =
  Obs.Metrics.incr
    (Obs.Metrics.counter
       (Pmem.Media.registry (Pool.media t.pool))
       ~help:"entries persisted into the compiled-query cache"
       "jit_cache_store_total");
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) @@ fun () ->
  let blob_len = 8 + String.length key + String.length value in
  let write_blob () =
    let off = Alloc.alloc t.pool blob_len in
    Pool.write_u32 t.pool off (String.length key);
    Pool.write_u32 t.pool (off + 4) (String.length value);
    Pool.write_string t.pool (off + 8) key;
    Pool.write_string t.pool (off + 8 + String.length key) value;
    Pool.persist t.pool ~off ~len:blob_len;
    off
  in
  let rec probe i steps =
    if steps >= t.cap then raise Full
    else
      let e = Pool.read_int t.pool (slot_off t i) in
      if e = 0 then begin
        let blob = write_blob () in
        Pool.atomic_write_int t.pool (slot_off t i) blob;
        Pool.atomic_write_int t.pool (t.hdr + 8) (count t + 1)
      end
      else if String.equal (entry_key t e) key then begin
        (* replace: new blob, swing the slot atomically, free the old *)
        let blob = write_blob () in
        Pool.atomic_write_int t.pool (slot_off t i) blob;
        let old_len = 8 + Pool.read_u32 t.pool e + Pool.read_u32 t.pool (e + 4) in
        Alloc.free t.pool ~off:e ~size:old_len
      end
      else probe ((i + 1) mod t.cap) (steps + 1)
  in
  probe (hash key mod t.cap) 0

(* volatile memo of already-emitted ("linked") code *)
let memo_find t key =
  Mutex.lock t.mu;
  let r = Hashtbl.find_opt t.memo key in
  Mutex.unlock t.mu;
  r

let memo_add t key compiled =
  Mutex.lock t.mu;
  Hashtbl.replace t.memo key compiled;
  Mutex.unlock t.mu

let replay t = t.replay
