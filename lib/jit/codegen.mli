(** Graph algebra -> IR code generation (Section 6.2).

    Visitor-style, continuation-passing: each operator generates its
    entry code and invokes the continuation inline, producing one IR
    function per pipeline with tuples held in registers; each operator's
    return path is the previous operator's loop header (Fig. 4). *)

exception Unsupported of string
(** Raised for plan shapes generated code does not cover (RelScan,
    pipeline breakers inside the pipeline, floats/unencoded text); the
    engine falls back to the interpreter. *)

val codegen :
  ?prop_tag:(int -> Ir.vtag) ->
  ?param_tag:(int -> Ir.vtag) ->
  ?prof_base:int ->
  Query.Algebra.plan ->
  Ir.func
(** Compile a pipelined plan (leaf access path + streaming operators)
    into an IR function whose sink is [EmitRow] of the output tuple.
    [prop_tag] supplies the schema's compile-time property types
    (requirement (3)); generated comparisons across incompatible type
    classes fold to Null.  With [prof_base] - the pipeline root's
    preorder id within the enclosing plan - every operator's
    tuple-production point gets a [Ir.ProfHook] so compiled runs report
    the same per-operator tuple counts as interpreted ones; such
    functions must not enter the persistent cache. *)
