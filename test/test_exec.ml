(* Tests for the morsel-driven task pool and the background compiler
   service. *)

module TP = Exec.Task_pool

let test_runs_all_tasks () =
  let pool = TP.create ~nworkers:3 () in
  let hits = Atomic.make 0 in
  TP.run pool (List.init 100 (fun _ () -> Atomic.incr hits));
  Alcotest.(check int) "all tasks ran" 100 (Atomic.get hits);
  (* the pool is reusable *)
  TP.run pool (List.init 50 (fun _ () -> Atomic.incr hits));
  Alcotest.(check int) "second batch" 150 (Atomic.get hits);
  TP.shutdown pool

let test_parallelism_is_real () =
  let pool = TP.create ~nworkers:2 () in
  (* two tasks that can only finish if they run concurrently *)
  let a = Atomic.make false and b = Atomic.make false in
  let spin_until flag =
    let deadline = Unix.gettimeofday () +. 5.0 in
    while (not (Atomic.get flag)) && Unix.gettimeofday () < deadline do
      Domain.cpu_relax ()
    done;
    Atomic.get flag
  in
  TP.run pool
    [
      (fun () ->
        Atomic.set a true;
        if not (spin_until b) then failwith "no overlap");
      (fun () ->
        Atomic.set b true;
        if not (spin_until a) then failwith "no overlap");
    ];
  TP.shutdown pool

let test_exception_propagates () =
  let pool = TP.create ~nworkers:2 () in
  let ran = Atomic.make 0 in
  (match
     TP.run pool
       [
         (fun () -> Atomic.incr ran);
         (fun () -> failwith "boom");
         (fun () -> Atomic.incr ran);
       ]
   with
  | () -> Alcotest.fail "expected exception"
  | exception Failure m -> Alcotest.(check string) "message" "boom" m);
  (* the pool survives a failed batch *)
  TP.run pool [ (fun () -> Atomic.incr ran) ];
  Alcotest.(check int) "other tasks still ran" 3 (Atomic.get ran);
  TP.shutdown pool

(* A raising morsel must not deadlock [wait]: the exception is
   re-raised exactly once and the remaining tasks of the batch still
   drain before [run] returns. *)
let test_failed_batch_drains () =
  let pool = TP.create ~nworkers:2 () in
  let ran = Atomic.make 0 in
  let raised = ref 0 in
  (try
     TP.run pool
       (List.init 20 (fun i () ->
            if i = 3 then failwith "morsel boom" else Atomic.incr ran))
   with Failure m ->
     incr raised;
     Alcotest.(check string) "message" "morsel boom" m);
  Alcotest.(check int) "raised exactly once" 1 !raised;
  Alcotest.(check int) "remaining morsels drained" 19 (Atomic.get ran);
  (* a later batch starts from a clean slate: no stale error *)
  TP.run pool [ (fun () -> Atomic.incr ran) ];
  Alcotest.(check int) "clean batch after failure" 20 (Atomic.get ran);
  TP.shutdown pool

(* Two clients sharing one pool: an exception in batch A must surface
   in A's wait, never in B's (regression for the HTAP reader bug where
   one reader's abort was re-raised into another reader's wait). *)
let test_batch_error_isolation () =
  let pool = TP.create ~nworkers:4 () in
  let b_ok = Atomic.make 0 in
  let a_failed = Atomic.make false and b_failed = Atomic.make false in
  let client_a () =
    for _ = 1 to 50 do
      try TP.run pool [ (fun () -> failwith "A's error") ]
      with Failure _ -> Atomic.set a_failed true
    done
  in
  let client_b () =
    for _ = 1 to 50 do
      try TP.run pool (List.init 4 (fun _ () -> Atomic.incr b_ok))
      with _ -> Atomic.set b_failed true
    done
  in
  let da = Domain.spawn client_a and db = Domain.spawn client_b in
  Domain.join da;
  Domain.join db;
  Alcotest.(check bool) "A saw its own error" true (Atomic.get a_failed);
  Alcotest.(check bool) "B never saw A's error" false (Atomic.get b_failed);
  Alcotest.(check int) "all of B's tasks ran" 200 (Atomic.get b_ok);
  TP.shutdown pool

(* Explicit batch API: waiting on each batch returns its own error. *)
let test_submit_batch_wait_batch () =
  let pool = TP.create ~nworkers:2 () in
  let hits = Atomic.make 0 in
  let good = TP.submit_batch pool (List.init 10 (fun _ () -> Atomic.incr hits)) in
  let bad = TP.submit_batch pool [ (fun () -> failwith "bad batch") ] in
  TP.wait_batch pool good;
  Alcotest.(check int) "good batch complete" 10 (Atomic.get hits);
  (match TP.wait_batch pool bad with
  | () -> Alcotest.fail "expected exception"
  | exception Failure m -> Alcotest.(check string) "message" "bad batch" m);
  TP.shutdown pool

(* [shutdown] is idempotent, and safe right after a failed batch. *)
let test_shutdown_idempotent () =
  let pool = TP.create ~nworkers:2 () in
  (try TP.run pool [ (fun () -> failwith "pre-shutdown boom") ]
   with Failure _ -> ());
  TP.shutdown pool;
  TP.shutdown pool;
  (* empty batches on a fresh pool are a no-op, not a hang *)
  let pool2 = TP.create ~nworkers:1 () in
  TP.run pool2 [];
  TP.shutdown pool2;
  TP.shutdown pool2

let test_parallel_ranges () =
  let pool = TP.create ~nworkers:4 () in
  let n = 1000 in
  let seen = Array.make n false in
  TP.parallel_ranges pool ~n ~grain:37 (fun lo hi ->
      for i = lo to hi - 1 do
        if seen.(i) then failwith "overlap";
        seen.(i) <- true
      done);
  Alcotest.(check bool) "full coverage" true (Array.for_all Fun.id seen);
  TP.shutdown pool

let test_meters_attribute_work () =
  let media = Pmem.Media.create () in
  let pool = TP.create ~media ~nworkers:2 () in
  TP.run pool
    (List.init 8 (fun _ () -> Pmem.Media.charge media 1000));
  Alcotest.(check int) "all charges counted" 8000 (Pmem.Media.clock media);
  TP.shutdown pool

let test_compiler_service_runs_jobs () =
  let done_ = Atomic.make 0 in
  for _ = 1 to 5 do
    Jit.Compiler_service.submit (fun () -> Atomic.incr done_)
  done;
  let deadline = Unix.gettimeofday () +. 5.0 in
  while Atomic.get done_ < 5 && Unix.gettimeofday () < deadline do
    Domain.cpu_relax ()
  done;
  Alcotest.(check int) "all jobs executed" 5 (Atomic.get done_);
  Alcotest.(check int) "queue drained" 0 (Jit.Compiler_service.pending ())

let test_compiler_service_survives_job_exception () =
  let ok = Atomic.make false in
  Jit.Compiler_service.submit (fun () -> failwith "compiler job boom");
  Jit.Compiler_service.submit (fun () -> Atomic.set ok true);
  let deadline = Unix.gettimeofday () +. 5.0 in
  while (not (Atomic.get ok)) && Unix.gettimeofday () < deadline do
    Domain.cpu_relax ()
  done;
  Alcotest.(check bool) "service alive after exception" true (Atomic.get ok)

let () =
  Alcotest.run "exec"
    [
      ( "task-pool",
        [
          Alcotest.test_case "runs all tasks" `Quick test_runs_all_tasks;
          Alcotest.test_case "parallelism is real" `Quick test_parallelism_is_real;
          Alcotest.test_case "exception propagates" `Quick test_exception_propagates;
          Alcotest.test_case "failed batch drains" `Quick test_failed_batch_drains;
          Alcotest.test_case "batch error isolation" `Quick
            test_batch_error_isolation;
          Alcotest.test_case "submit/wait batch" `Quick test_submit_batch_wait_batch;
          Alcotest.test_case "shutdown idempotent" `Quick test_shutdown_idempotent;
          Alcotest.test_case "parallel ranges" `Quick test_parallel_ranges;
          Alcotest.test_case "meters attribute work" `Quick test_meters_attribute_work;
        ] );
      ( "compiler-service",
        [
          Alcotest.test_case "runs jobs" `Quick test_compiler_service_runs_jobs;
          Alcotest.test_case "survives exceptions" `Quick
            test_compiler_service_survives_job_exception;
        ] );
    ]
