(* Tests for the MVTO transaction layer: visibility rules, conflict
   aborts, version chains, garbage collection, crash recovery and a
   concurrent snapshot-isolation property test. *)

module Media = Pmem.Media
module Pool = Pmem.Pool
module Alloc = Pmem.Alloc
module Value = Storage.Value
module Layout = Storage.Layout
module G = Storage.Graph_store
module V = Mvcc.Version
module Txn = Mvcc.Txn
module Mvto = Mvcc.Mvto

let mk_mgr ?(size = 1 lsl 24) () =
  let media = Media.create () in
  let p = Pool.create ~kind:`Pmem ~media ~id:1 ~size () in
  Mvto.create (G.format p)

(* a tiny helper vocabulary: one label code and one property key code *)
let setup mgr =
  let g = Mvto.store mgr in
  (G.code g "Person", G.code g "val")

let node_val mgr txn id key =
  match Mvto.read_node mgr txn id with
  | None -> None
  | Some v -> (
      match Mvto.view_prop v key with Some (Value.Int i) -> Some i | _ -> None)

(* --- Basic lifecycle ----------------------------------------------------- *)

let test_insert_commit_visible () =
  let mgr = mk_mgr () in
  let label, key = setup mgr in
  let id =
    Mvto.with_txn mgr (fun txn ->
        Mvto.insert_node mgr txn ~label ~props:[ (key, Value.Int 1) ])
  in
  let t2 = Mvto.begin_txn mgr in
  Alcotest.(check (option int)) "committed insert visible" (Some 1)
    (node_val mgr t2 id key);
  Mvto.commit mgr t2

let test_uncommitted_insert_invisible_to_older () =
  let mgr = mk_mgr () in
  let label, _ = setup mgr in
  let t_old = Mvto.begin_txn mgr in
  let t_ins = Mvto.begin_txn mgr in
  let id = Mvto.insert_node mgr t_ins ~label ~props:[] in
  (* the older transaction must not see the newer insert: bts > id(T) *)
  Alcotest.(check bool) "invisible" true (Mvto.read_node mgr t_old id = None);
  Mvto.commit mgr t_ins;
  (* still invisible after commit: snapshot ordering *)
  Alcotest.(check bool) "still invisible" true (Mvto.read_node mgr t_old id = None);
  Mvto.commit mgr t_old

let test_read_your_writes () =
  let mgr = mk_mgr () in
  let label, key = setup mgr in
  let id =
    Mvto.with_txn mgr (fun txn ->
        Mvto.insert_node mgr txn ~label ~props:[ (key, Value.Int 1) ])
  in
  Mvto.with_txn mgr (fun txn ->
      Mvto.update mgr txn (V.Node, id) (fun v ->
          v.V.props <- [ (key, Value.Int 2) ]);
      Alcotest.(check (option int)) "sees own dirty write" (Some 2)
        (node_val mgr txn id key))

let test_snapshot_isolation_on_update () =
  let mgr = mk_mgr () in
  let label, key = setup mgr in
  let id =
    Mvto.with_txn mgr (fun txn ->
        Mvto.insert_node mgr txn ~label ~props:[ (key, Value.Int 10) ])
  in
  let t_reader = Mvto.begin_txn mgr in
  (* a later transaction updates and commits *)
  Mvto.with_txn mgr (fun txn ->
      Mvto.update mgr txn (V.Node, id) (fun v ->
          v.V.props <- [ (key, Value.Int 20) ]));
  (* the old reader keeps its snapshot via the version chain *)
  Alcotest.(check (option int)) "old snapshot" (Some 10)
    (node_val mgr t_reader id key);
  Mvto.commit mgr t_reader;
  (* a fresh transaction sees the new value *)
  let t_new = Mvto.begin_txn mgr in
  Alcotest.(check (option int)) "new snapshot" (Some 20)
    (node_val mgr t_new id key);
  Mvto.commit mgr t_new

let test_uncommitted_update_invisible () =
  let mgr = mk_mgr () in
  let label, key = setup mgr in
  let id =
    Mvto.with_txn mgr (fun txn ->
        Mvto.insert_node mgr txn ~label ~props:[ (key, Value.Int 1) ])
  in
  let t_writer = Mvto.begin_txn mgr in
  Mvto.update mgr t_writer (V.Node, id) (fun v -> v.V.props <- [ (key, Value.Int 2) ]);
  (* a later reader hits the write lock and aborts, per the paper *)
  let t_reader = Mvto.begin_txn mgr in
  (match Mvto.read_node mgr t_reader id with
  | _ -> Alcotest.fail "expected Abort on locked read"
  | exception Mvto.Abort _ -> Mvto.abort mgr t_reader);
  Mvto.commit mgr t_writer

let test_abort_discards_update () =
  let mgr = mk_mgr () in
  let label, key = setup mgr in
  let id =
    Mvto.with_txn mgr (fun txn ->
        Mvto.insert_node mgr txn ~label ~props:[ (key, Value.Int 1) ])
  in
  let t = Mvto.begin_txn mgr in
  Mvto.update mgr t (V.Node, id) (fun v -> v.V.props <- [ (key, Value.Int 99) ]);
  Mvto.abort mgr t;
  let t2 = Mvto.begin_txn mgr in
  Alcotest.(check (option int)) "old value back" (Some 1) (node_val mgr t2 id key);
  Mvto.commit mgr t2;
  Alcotest.(check int) "chains empty after abort+gc" 0
    (V.chain_count (Mvto.chains mgr))

let test_abort_discards_insert () =
  let mgr = mk_mgr () in
  let label, _ = setup mgr in
  let t = Mvto.begin_txn mgr in
  let a = Mvto.insert_node mgr t ~label ~props:[] in
  let b = Mvto.insert_node mgr t ~label ~props:[] in
  let r =
    Mvto.insert_rel mgr t ~label ~src:a ~dst:b ~props:[ (1, Value.Int 1) ]
  in
  Mvto.abort mgr t;
  let g = Mvto.store mgr in
  Alcotest.(check bool) "node a gone" false (G.node_live g a);
  Alcotest.(check bool) "node b gone" false (G.node_live g b);
  Alcotest.(check bool) "rel gone" false (G.rel_live g r);
  Alcotest.(check int) "no nodes" 0 (G.node_count g)

(* --- Conflicts ------------------------------------------------------------ *)

let test_write_write_conflict () =
  let mgr = mk_mgr () in
  let label, key = setup mgr in
  let id =
    Mvto.with_txn mgr (fun txn ->
        Mvto.insert_node mgr txn ~label ~props:[ (key, Value.Int 1) ])
  in
  let t1 = Mvto.begin_txn mgr in
  let t2 = Mvto.begin_txn mgr in
  Mvto.update mgr t1 (V.Node, id) (fun v -> v.V.props <- [ (key, Value.Int 2) ]);
  (match Mvto.update mgr t2 (V.Node, id) (fun _ -> ()) with
  | () -> Alcotest.fail "expected write-write Abort"
  | exception Mvto.Abort _ -> Mvto.abort mgr t2);
  Mvto.commit mgr t1

let test_read_by_newer_blocks_older_writer () =
  let mgr = mk_mgr () in
  let label, key = setup mgr in
  let id =
    Mvto.with_txn mgr (fun txn ->
        Mvto.insert_node mgr txn ~label ~props:[ (key, Value.Int 1) ])
  in
  let t_old = Mvto.begin_txn mgr in
  let t_new = Mvto.begin_txn mgr in
  (* the newer transaction reads the object, bumping rts *)
  ignore (Mvto.read_node mgr t_new id);
  (* the older transaction may no longer write it: rts > id(T) *)
  (match Mvto.update mgr t_old (V.Node, id) (fun _ -> ()) with
  | () -> Alcotest.fail "expected rts Abort"
  | exception Mvto.Abort _ -> Mvto.abort mgr t_old);
  Mvto.commit mgr t_new

let test_update_after_newer_commit_aborts () =
  let mgr = mk_mgr () in
  let label, key = setup mgr in
  let id =
    Mvto.with_txn mgr (fun txn ->
        Mvto.insert_node mgr txn ~label ~props:[ (key, Value.Int 1) ])
  in
  let t_old = Mvto.begin_txn mgr in
  Mvto.with_txn mgr (fun txn ->
      Mvto.update mgr txn (V.Node, id) (fun v ->
          v.V.props <- [ (key, Value.Int 2) ]));
  (match Mvto.update mgr t_old (V.Node, id) (fun _ -> ()) with
  | () -> Alcotest.fail "expected bts Abort"
  | exception Mvto.Abort _ -> Mvto.abort mgr t_old)

(* --- Delete ---------------------------------------------------------------- *)

let test_delete_visibility_and_gc () =
  let mgr = mk_mgr () in
  let label, key = setup mgr in
  let id =
    Mvto.with_txn mgr (fun txn ->
        Mvto.insert_node mgr txn ~label ~props:[ (key, Value.Int 1) ])
  in
  let t_old = Mvto.begin_txn mgr in
  Mvto.with_txn mgr (fun txn -> Mvto.delete mgr txn (V.Node, id));
  (* deleted for new snapshots *)
  let t_new = Mvto.begin_txn mgr in
  Alcotest.(check bool) "gone for new" true (Mvto.read_node mgr t_new id = None);
  Mvto.commit mgr t_new;
  (* but the old snapshot still reads it (ets > id(T_old)) *)
  Alcotest.(check (option int)) "old still sees it" (Some 1)
    (node_val mgr t_old id key);
  (* physical slot not yet reclaimed: t_old protects it *)
  Alcotest.(check bool) "slot still live" true (G.node_live (Mvto.store mgr) id);
  Mvto.commit mgr t_old;
  (* one more transaction triggers GC past the watermark *)
  Mvto.with_txn mgr (fun _ -> ());
  Alcotest.(check bool) "slot reclaimed" false (G.node_live (Mvto.store mgr) id)

let test_double_delete_aborts () =
  let mgr = mk_mgr () in
  let label, _ = setup mgr in
  let id = Mvto.with_txn mgr (fun txn -> Mvto.insert_node mgr txn ~label ~props:[]) in
  Mvto.with_txn mgr (fun txn ->
      Mvto.delete mgr txn (V.Node, id);
      match Mvto.delete mgr txn (V.Node, id) with
      | () -> Alcotest.fail "expected Abort"
      | exception Mvto.Abort _ -> ())

(* --- Relationships under MVCC --------------------------------------------- *)

let test_rel_insert_snapshot () =
  let mgr = mk_mgr () in
  let label, _ = setup mgr in
  let g = Mvto.store mgr in
  let klabel = G.code g "KNOWS" in
  let a, b =
    Mvto.with_txn mgr (fun txn ->
        ( Mvto.insert_node mgr txn ~label ~props:[],
          Mvto.insert_node mgr txn ~label ~props:[] ))
  in
  let t_old = Mvto.begin_txn mgr in
  Mvto.with_txn mgr (fun txn ->
      ignore (Mvto.insert_rel mgr txn ~label:klabel ~src:a ~dst:b ~props:[]));
  (* old snapshot: traversal skips the invisible relationship *)
  let count txn =
    let n = ref 0 in
    G.iter_out g a (fun rid ->
        if Mvto.visible mgr txn (V.Rel, rid) then incr n);
    !n
  in
  Alcotest.(check int) "old sees none" 0 (count t_old);
  Mvto.commit mgr t_old;
  let t_new = Mvto.begin_txn mgr in
  Alcotest.(check int) "new sees one" 1 (count t_new);
  Mvto.commit mgr t_new

(* --- Scans ------------------------------------------------------------------ *)

let test_scan_respects_visibility () =
  let mgr = mk_mgr () in
  let label, _ = setup mgr in
  ignore
    (Mvto.with_txn mgr (fun txn ->
         List.init 10 (fun _ -> Mvto.insert_node mgr txn ~label ~props:[])));
  let t_old = Mvto.begin_txn mgr in
  let t_ins = Mvto.begin_txn mgr in
  ignore (Mvto.insert_node mgr t_ins ~label ~props:[]);
  let seen = ref 0 in
  Mvto.scan_nodes mgr t_old (fun _ -> incr seen);
  Alcotest.(check int) "old scan sees 10" 10 !seen;
  Mvto.commit mgr t_ins;
  Mvto.commit mgr t_old;
  let t = Mvto.begin_txn mgr in
  let seen = ref 0 in
  Mvto.scan_nodes mgr t (fun _ -> incr seen);
  Alcotest.(check int) "new scan sees 11" 11 !seen;
  Mvto.commit mgr t

(* --- GC ---------------------------------------------------------------------- *)

let test_gc_prunes_chains () =
  let mgr = mk_mgr () in
  let label, key = setup mgr in
  let id =
    Mvto.with_txn mgr (fun txn ->
        Mvto.insert_node mgr txn ~label ~props:[ (key, Value.Int 0) ])
  in
  for i = 1 to 20 do
    Mvto.with_txn mgr (fun txn ->
        Mvto.update mgr txn (V.Node, id) (fun v ->
            v.V.props <- [ (key, Value.Int i) ]))
  done;
  (* no active transactions: all superseded versions are collectable *)
  Alcotest.(check int) "chains pruned" 0 (V.total_versions (Mvto.chains mgr));
  let t = Mvto.begin_txn mgr in
  Alcotest.(check (option int)) "latest value" (Some 20) (node_val mgr t id key);
  Mvto.commit mgr t

let test_gc_blocked_by_active_reader () =
  let mgr = mk_mgr () in
  let label, key = setup mgr in
  let id =
    Mvto.with_txn mgr (fun txn ->
        Mvto.insert_node mgr txn ~label ~props:[ (key, Value.Int 0) ])
  in
  let t_old = Mvto.begin_txn mgr in
  ignore (Mvto.read_node mgr t_old id);
  Mvto.with_txn mgr (fun txn ->
      Mvto.update mgr txn (V.Node, id) (fun v -> v.V.props <- [ (key, Value.Int 1) ]));
  Alcotest.(check bool) "old version retained" true
    (V.total_versions (Mvto.chains mgr) > 0);
  Alcotest.(check (option int)) "old reader served" (Some 0)
    (node_val mgr t_old id key);
  Mvto.commit mgr t_old;
  Mvto.with_txn mgr (fun _ -> ());
  Alcotest.(check int) "pruned after reader done" 0
    (V.total_versions (Mvto.chains mgr))

(* --- Crash recovery ----------------------------------------------------------- *)

let test_committed_survive_crash () =
  let mgr = mk_mgr () in
  let label, key = setup mgr in
  let id =
    Mvto.with_txn mgr (fun txn ->
        Mvto.insert_node mgr txn ~label ~props:[ (key, Value.Int 7) ])
  in
  Mvto.with_txn mgr (fun txn ->
      Mvto.update mgr txn (V.Node, id) (fun v -> v.V.props <- [ (key, Value.Int 8) ]));
  let pool = G.pool (Mvto.store mgr) in
  Pool.crash pool;
  let g = G.open_ pool in
  let mgr' = Mvto.recover g in
  let t = Mvto.begin_txn mgr' in
  Alcotest.(check (option int)) "committed update durable" (Some 8)
    (node_val mgr' t id key);
  Mvto.commit mgr' t

let test_crash_with_stale_lock () =
  let mgr = mk_mgr () in
  let label, key = setup mgr in
  let id =
    Mvto.with_txn mgr (fun txn ->
        Mvto.insert_node mgr txn ~label ~props:[ (key, Value.Int 7) ])
  in
  (* a transaction locks the record (update) and then the system crashes
     before commit *)
  let t = Mvto.begin_txn mgr in
  Mvto.update mgr t (V.Node, id) (fun v -> v.V.props <- [ (key, Value.Int 8) ]);
  let pool = G.pool (Mvto.store mgr) in
  Pool.crash ~evict_prob:0.5 pool;
  let g = G.open_ pool in
  let mgr' = Mvto.recover g in
  let t' = Mvto.begin_txn mgr' in
  Alcotest.(check (option int)) "old committed value, lock cleared" (Some 7)
    (node_val mgr' t' id key);
  (* and the record is writable again *)
  Mvto.update mgr' t' (V.Node, id) (fun v -> v.V.props <- [ (key, Value.Int 9) ]);
  Mvto.commit mgr' t'

let test_crash_with_uncommitted_insert () =
  let mgr = mk_mgr () in
  let label, _ = setup mgr in
  let a =
    Mvto.with_txn mgr (fun txn -> Mvto.insert_node mgr txn ~label ~props:[])
  in
  let t = Mvto.begin_txn mgr in
  let b = Mvto.insert_node mgr t ~label ~props:[] in
  let r =
    Mvto.insert_rel mgr t ~label:1 ~src:a ~dst:b ~props:[]
  in
  let pool = G.pool (Mvto.store mgr) in
  Pool.crash ~evict_prob:1.0 pool;
  let g = G.open_ pool in
  let mgr' = Mvto.recover g in
  Alcotest.(check bool) "committed node alive" true (G.node_live g a);
  Alcotest.(check bool) "uncommitted node reclaimed" false (G.node_live g b);
  Alcotest.(check bool) "uncommitted rel reclaimed" false (G.rel_live g r);
  Alcotest.(check int) "adjacency clean" 0 (G.out_degree g a);
  (* timestamps restart above everything in the store *)
  let t' = Mvto.begin_txn mgr' in
  Alcotest.(check bool) "fresh txn reads fine" true
    (Mvto.read_node mgr' t' a <> None);
  Mvto.commit mgr' t'

let test_crash_during_commit_rolls_back () =
  (* Force a crash in the middle of the commit's PMDK transaction by
     crashing the pool right after commit returns... instead we emulate
     the window: lock + dirty exist, and the PMDK tx is interrupted by
     crashing before commit is called.  The pmdk_tx crash-atomicity
     itself is covered in test_pmem; here we check end-to-end that a
     recovered store never exposes a half-committed multi-object txn. *)
  let mgr = mk_mgr () in
  let label, key = setup mgr in
  let a, b =
    Mvto.with_txn mgr (fun txn ->
        ( Mvto.insert_node mgr txn ~label ~props:[ (key, Value.Int 1) ],
          Mvto.insert_node mgr txn ~label ~props:[ (key, Value.Int 2) ] ))
  in
  let t = Mvto.begin_txn mgr in
  Mvto.update mgr t (V.Node, a) (fun v -> v.V.props <- [ (key, Value.Int 10) ]);
  Mvto.update mgr t (V.Node, b) (fun v -> v.V.props <- [ (key, Value.Int 20) ]);
  let pool = G.pool (Mvto.store mgr) in
  Pool.crash ~evict_prob:0.3 pool;
  let g = G.open_ pool in
  let mgr' = Mvto.recover g in
  let t' = Mvto.begin_txn mgr' in
  let va = node_val mgr' t' a key and vb = node_val mgr' t' b key in
  Alcotest.(check bool)
    (Printf.sprintf "atomic outcome (a=%s b=%s)"
       (match va with Some i -> string_of_int i | None -> "?")
       (match vb with Some i -> string_of_int i | None -> "?"))
    true
    ((va = Some 1 && vb = Some 2) || (va = Some 10 && vb = Some 20));
  Mvto.commit mgr' t'

(* --- Concurrency property -------------------------------------------------- *)

(* Bank-transfer style invariant under concurrent read-write transactions:
   total balance is conserved in every successfully-committed snapshot. *)
let test_concurrent_transfers () =
  let mgr = mk_mgr () in
  let label, key = setup mgr in
  let n_accounts = 8 in
  let accounts =
    Mvto.with_txn mgr (fun txn ->
        Array.init n_accounts (fun _ ->
            Mvto.insert_node mgr txn ~label ~props:[ (key, Value.Int 100) ]))
  in
  let total = n_accounts * 100 in
  let committed = Atomic.make 0 and aborted = Atomic.make 0 in
  let worker seed =
    let rng = Random.State.make [| seed |] in
    for _ = 1 to 100 do
      let i = Random.State.int rng n_accounts in
      let j = (i + 1 + Random.State.int rng (n_accounts - 1)) mod n_accounts in
      let amount = 1 + Random.State.int rng 10 in
      match
        Mvto.with_txn mgr (fun txn ->
            let get id =
              match node_val mgr txn id key with
              | Some v -> v
              | None -> raise (Mvto.Abort "missing account")
            in
            let vi = get accounts.(i) and vj = get accounts.(j) in
            Mvto.update mgr txn (V.Node, accounts.(i)) (fun v ->
                v.V.props <- [ (key, Value.Int (vi - amount)) ]);
            Mvto.update mgr txn (V.Node, accounts.(j)) (fun v ->
                v.V.props <- [ (key, Value.Int (vj + amount)) ]))
      with
      | () -> Atomic.incr committed
      | exception Mvto.Abort _ -> Atomic.incr aborted
    done
  in
  let domains = List.init 4 (fun k -> Domain.spawn (fun () -> worker (k + 1))) in
  List.iter Domain.join domains;
  Alcotest.(check bool) "some commits" true (Atomic.get committed > 0);
  let t = Mvto.begin_txn mgr in
  let sum =
    Array.fold_left
      (fun acc id -> acc + Option.get (node_val mgr t id key))
      0 accounts
  in
  Mvto.commit mgr t;
  Alcotest.(check int)
    (Printf.sprintf "balance conserved (%d commits, %d aborts)"
       (Atomic.get committed) (Atomic.get aborted))
    total sum

let test_concurrent_inserts_distinct_ids () =
  let mgr = mk_mgr () in
  let label, _ = setup mgr in
  let ids = Array.make 4 [] in
  let worker k () =
    for _ = 1 to 200 do
      let id =
        Mvto.with_txn mgr (fun txn -> Mvto.insert_node mgr txn ~label ~props:[])
      in
      ids.(k) <- id :: ids.(k)
    done
  in
  let domains = List.init 4 (fun k -> Domain.spawn (worker k)) in
  List.iter Domain.join domains;
  let all = Array.to_list ids |> List.concat in
  let uniq = List.sort_uniq compare all in
  Alcotest.(check int) "no id collisions" (List.length all) (List.length uniq);
  Alcotest.(check int) "all inserted" 800 (G.node_count (Mvto.store mgr))

(* --- Version chains (unit) ------------------------------------------------ *)

let mk_version ?(txn = 0) ?(bts = 0) ?(ets = Storage.Layout.inf_ts) () =
  {
    V.image = V.N { (Storage.Layout.empty_node ()) with Storage.Layout.txn_id = txn; bts; ets };
    props = [];
    deleted = false;
  }

let test_chain_basics () =
  let c = V.create_chains () in
  let key = (V.Node, 5) in
  Alcotest.(check int) "empty" 0 (V.chain_count c);
  let v1 = mk_version ~bts:1 () and v2 = mk_version ~bts:2 () in
  V.push c key v1;
  V.push c key v2;
  (match V.find c key with
  | [ a; b ] ->
      Alcotest.(check bool) "newest first" true (a == v2 && b == v1)
  | _ -> Alcotest.fail "chain shape");
  Alcotest.(check int) "one chain" 1 (V.chain_count c);
  Alcotest.(check int) "two versions" 2 (V.total_versions c);
  V.set c key [];
  Alcotest.(check int) "empty chains removed" 0 (V.chain_count c)

let test_version_accessors () =
  let v = mk_version ~txn:7 ~bts:3 ~ets:9 () in
  Alcotest.(check int) "txn" 7 (V.txn_id v);
  Alcotest.(check int) "bts" 3 (V.bts v);
  Alcotest.(check int) "ets" 9 (V.ets v);
  V.set_ets v 11;
  Alcotest.(check int) "set ets" 11 (V.ets v);
  let copy = V.copy v in
  V.set_bts copy 100;
  Alcotest.(check int) "copy is independent" 3 (V.bts v)

let test_stripe_guards () =
  let c = V.create_chains () in
  let key = (V.Rel, 9) in
  (* with_stripe is reentrant-unsafe by design; just check mutual
     exclusion across domains *)
  let counter = ref 0 in
  let worker () =
    for _ = 1 to 1000 do
      V.with_stripe c key (fun () -> incr counter)
    done
  in
  let d1 = Domain.spawn worker and d2 = Domain.spawn worker in
  Domain.join d1;
  Domain.join d2;
  Alcotest.(check int) "no lost increments" 2000 !counter

(* --- Retry policy: graceful degradation under contention ----------------- *)

let mk_node mgr label key v =
  Mvto.with_txn mgr (fun txn ->
      Mvto.insert_node mgr txn ~label ~props:[ (key, Value.Int v) ])

let test_abort_classification () =
  List.iter
    (fun r ->
      Alcotest.(check bool) r true (Mvto.classify_abort r = Mvto.Transient))
    [
      "update: write-write conflict";
      "update: newer version already committed";
      "update: already read by newer transaction";
      "read: object locked by active writer";
      "some caller-raised reason";
    ];
  List.iter
    (fun r -> Alcotest.(check bool) r true (Mvto.classify_abort r = Mvto.Fatal))
    [
      "update: no such object";
      "txn not active";
      "update after delete";
      "delete: already deleted";
      "update: object deleted";
      "delete of same-txn insert not supported";
    ]

let test_retry_eventual_success () =
  let mgr = mk_mgr () in
  let label, key = setup mgr in
  let id = mk_node mgr label key 0 in
  let media = Pool.media (G.pool (Mvto.store mgr)) in
  (* a blocker holds the write lock; it commits just before the third
     attempt, so the first two attempts abort on the write-write conflict *)
  let blocker = Mvto.begin_txn mgr in
  Mvto.update mgr blocker (V.Node, id) (fun v ->
      v.V.props <- [ (key, Value.Int 1) ]);
  let attempts = ref 0 in
  let c0 = Media.clock media in
  Mvto.with_txn_retry ~max_retries:8 mgr (fun txn ->
      incr attempts;
      if !attempts = 3 then Mvto.commit mgr blocker;
      Mvto.update mgr txn (V.Node, id) (fun v ->
          v.V.props <- [ (key, Value.Int 2) ]));
  Alcotest.(check int) "succeeded on third attempt" 3 !attempts;
  Alcotest.(check int) "two retries recorded" 2 (Mvto.stats mgr).Mvto.retries;
  Alcotest.(check int) "media retry counter" 2 (Media.stats media).Media.retries;
  Alcotest.(check bool) "backoff charged to the clock" true
    (Media.clock media > c0);
  let t = Mvto.begin_txn mgr in
  Alcotest.(check (option int)) "retried write committed" (Some 2)
    (node_val mgr t id key);
  Mvto.commit mgr t

let test_retry_exhaustion () =
  let mgr = mk_mgr () in
  let label, key = setup mgr in
  let id = mk_node mgr label key 0 in
  let blocker = Mvto.begin_txn mgr in
  Mvto.update mgr blocker (V.Node, id) (fun _ -> ());
  let attempts = ref 0 in
  (match
     Mvto.with_txn_retry ~max_retries:4 mgr (fun txn ->
         incr attempts;
         Mvto.update mgr txn (V.Node, id) (fun _ -> ()))
   with
  | () -> Alcotest.fail "expected retry exhaustion to re-raise Abort"
  | exception Mvto.Abort reason ->
      Alcotest.(check bool) "transient reason surfaced" true
        (Mvto.classify_abort reason = Mvto.Transient));
  Alcotest.(check int) "initial attempt + full budget" 5 !attempts;
  Alcotest.(check int) "retries recorded" 4 (Mvto.stats mgr).Mvto.retries;
  Mvto.abort mgr blocker

let test_retry_fatal_immediate () =
  let mgr = mk_mgr () in
  let label, key = setup mgr in
  let id = mk_node mgr label key 0 in
  let attempts = ref 0 in
  (match
     Mvto.with_txn_retry ~max_retries:8 mgr (fun txn ->
         incr attempts;
         Mvto.delete mgr txn (V.Node, id);
         Mvto.update mgr txn (V.Node, id) (fun _ -> ()))
   with
  | () -> Alcotest.fail "expected fatal Abort"
  | exception Mvto.Abort reason ->
      Alcotest.(check bool) "classified fatal" true
        (Mvto.classify_abort reason = Mvto.Fatal));
  Alcotest.(check int) "not retried" 1 !attempts;
  Alcotest.(check int) "no retries recorded" 0 (Mvto.stats mgr).Mvto.retries

let () =
  Alcotest.run "mvcc"
    [
      ( "lifecycle",
        [
          Alcotest.test_case "insert commit visible" `Quick test_insert_commit_visible;
          Alcotest.test_case "uncommitted insert invisible to older" `Quick
            test_uncommitted_insert_invisible_to_older;
          Alcotest.test_case "read your writes" `Quick test_read_your_writes;
          Alcotest.test_case "snapshot isolation on update" `Quick
            test_snapshot_isolation_on_update;
          Alcotest.test_case "uncommitted update locks readers" `Quick
            test_uncommitted_update_invisible;
          Alcotest.test_case "abort discards update" `Quick test_abort_discards_update;
          Alcotest.test_case "abort discards insert" `Quick test_abort_discards_insert;
        ] );
      ( "conflicts",
        [
          Alcotest.test_case "write-write" `Quick test_write_write_conflict;
          Alcotest.test_case "rts blocks older writer" `Quick
            test_read_by_newer_blocks_older_writer;
          Alcotest.test_case "bts blocks stale writer" `Quick
            test_update_after_newer_commit_aborts;
        ] );
      ( "delete",
        [
          Alcotest.test_case "visibility and gc" `Quick test_delete_visibility_and_gc;
          Alcotest.test_case "double delete aborts" `Quick test_double_delete_aborts;
        ] );
      ( "relationships",
        [ Alcotest.test_case "snapshot traversal" `Quick test_rel_insert_snapshot ] );
      ( "scans",
        [ Alcotest.test_case "respects visibility" `Quick test_scan_respects_visibility ] );
      ( "gc",
        [
          Alcotest.test_case "prunes chains" `Quick test_gc_prunes_chains;
          Alcotest.test_case "blocked by active reader" `Quick
            test_gc_blocked_by_active_reader;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "committed survive crash" `Quick test_committed_survive_crash;
          Alcotest.test_case "stale lock cleared" `Quick test_crash_with_stale_lock;
          Alcotest.test_case "uncommitted insert reclaimed" `Quick
            test_crash_with_uncommitted_insert;
          Alcotest.test_case "multi-object atomicity" `Quick
            test_crash_during_commit_rolls_back;
        ] );
      ( "concurrency",
        [
          Alcotest.test_case "transfers conserve balance" `Slow test_concurrent_transfers;
          Alcotest.test_case "concurrent inserts distinct" `Slow
            test_concurrent_inserts_distinct_ids;
        ] );
      ( "retry",
        [
          Alcotest.test_case "abort classification" `Quick
            test_abort_classification;
          Alcotest.test_case "eventual success under contention" `Quick
            test_retry_eventual_success;
          Alcotest.test_case "exhaustion re-raises" `Quick test_retry_exhaustion;
          Alcotest.test_case "fatal aborts not retried" `Quick
            test_retry_fatal_immediate;
        ] );
      ( "version-chains",
        [
          Alcotest.test_case "chain basics" `Quick test_chain_basics;
          Alcotest.test_case "version accessors" `Quick test_version_accessors;
          Alcotest.test_case "stripe guards" `Quick test_stripe_guards;
        ] );
    ]
