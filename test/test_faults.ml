(* Deterministic fault injection and exhaustive crash-schedule tests.

   Three layers are exercised here:

   - the fault-plan mechanics themselves (crash at the n-th
     write/flush/fence/alloc, freeze semantics, torn-line writes,
     one-shot triggering) on a raw pool;
   - the persist-trace recorder;
   - the end-to-end acceptance sweep: a fixed multi-op transactional
     workload driven by Crash_explorer, with a power cut at EVERY fence
     boundary of its persist trace (plus randomized eviction/torn
     variants and flush-boundary cuts), each followed by recovery and
     the shared I1-I5 oracle from Crash_oracle;
   - graceful degradation: transient SSD faults absorbed by the buffer
     pool's bounded-backoff retries without surfacing to callers. *)

module Media = Pmem.Media
module Pool = Pmem.Pool
module Faults = Pmem.Faults
module CE = Pmem.Crash_explorer
module BP = Diskdb.Buffer_pool
module Value = Storage.Value

let mk_pool ?(size = 1 lsl 16) () =
  let media = Media.create () in
  let pool = Pool.create ~kind:`Pmem ~media ~id:0 ~size () in
  (media, pool)

(* --- fault-plan mechanics ------------------------------------------- *)

let test_crash_at_fence () =
  let media, pool = mk_pool () in
  let plan = Faults.plan ~crash_at:(`Fence, 2) () in
  Faults.install ~pool media plan;
  (* fence #1: line 0 fully persistent *)
  Pool.write_i64 pool 0 111L;
  Pool.clwb pool 0;
  Pool.sfence pool;
  (* written back, awaiting fence #2 (durable at clwb in this model) *)
  Pool.write_i64 pool 64 222L;
  Pool.clwb pool 64;
  (* dirty, never written back: must be lost *)
  Pool.write_i64 pool 128 333L;
  (match Pool.sfence pool with
  | () -> Alcotest.fail "expected a crash point at fence #2"
  | exception Faults.Crash_point { event = `Fence; count = 2 } -> ()
  | exception Faults.Crash_point { event; count } ->
      Alcotest.failf "crashed at %a #%d" Faults.pp_crash_event event count);
  Alcotest.(check bool) "pool frozen" true (Pool.frozen pool);
  Alcotest.(check bool) "plan triggered" true (Faults.triggered plan);
  (* unwinding code after the cut cannot persist anything *)
  Pool.write_i64 pool 128 444L;
  Pool.clwb pool 128;
  Pool.sfence pool;
  Pool.crash pool;
  Faults.uninstall media;
  Alcotest.(check int64) "fenced line survives" 111L (Pool.durable_i64 pool 0);
  Alcotest.(check int64) "flushed line survives" 222L (Pool.durable_i64 pool 64);
  Alcotest.(check int64) "dirty line lost" 0L (Pool.durable_i64 pool 128);
  let s = Faults.stats plan in
  Alcotest.(check int) "one injected crash" 1 s.Faults.injected_crashes;
  Alcotest.(check int) "fences counted" 2 s.Faults.fences_seen

let test_crash_at_write () =
  let media, pool = mk_pool () in
  let plan = Faults.plan ~crash_at:(`Write, 3) () in
  Faults.install ~pool media plan;
  Pool.write_u8 pool 0 1;
  Pool.write_u8 pool 1 2;
  (match Pool.write_u8 pool 2 3 with
  | () -> Alcotest.fail "expected a crash point at store #3"
  | exception Faults.Crash_point { event = `Write; count = 3 } -> ());
  Faults.uninstall media;
  Alcotest.(check int) "stores counted" 3 (Faults.stats plan).Faults.stores_seen

let test_crash_at_flush () =
  let media, pool = mk_pool () in
  let plan = Faults.plan ~crash_at:(`Flush, 2) () in
  Faults.install ~pool media plan;
  Pool.write_i64 pool 0 1L;
  Pool.clwb pool 0;
  Pool.write_i64 pool 64 2L;
  (* the hook fires before the write-back: line 64 must NOT be durable *)
  (match Pool.clwb pool 64 with
  | () -> Alcotest.fail "expected a crash point at clwb #2"
  | exception Faults.Crash_point { event = `Flush; count = 2 } -> ());
  Pool.crash pool;
  Faults.uninstall media;
  Alcotest.(check int64) "first line durable" 1L (Pool.durable_i64 pool 0);
  Alcotest.(check int64) "interrupted write-back lost" 0L
    (Pool.durable_i64 pool 64)

let test_crash_at_alloc () =
  let media, pool = mk_pool () in
  let plan = Faults.plan ~crash_at:(`Alloc, 2) () in
  Faults.install ~pool media plan;
  Media.alloc media Media.Pmem;
  (match Media.alloc media Media.Pmem with
  | () -> Alcotest.fail "expected a crash point at alloc #2"
  | exception Faults.Crash_point { event = `Alloc; count = 2 } -> ());
  Faults.uninstall media;
  Alcotest.(check int) "allocs counted" 2 (Faults.stats plan).Faults.allocs_seen

let test_torn_line () =
  let media, pool = mk_pool () in
  (* one full line of distinct words, never written back *)
  for w = 0 to 7 do
    Pool.write_i64 pool (w * 8) (Int64.of_int ((w + 1) * 0x0101))
  done;
  let plan = Faults.plan ~crash_at:(`Fence, 1) ~torn_prob:1.0 ~seed:7 () in
  Faults.install ~pool media plan;
  (match Pool.sfence pool with
  | () -> Alcotest.fail "expected a crash point"
  | exception Faults.Crash_point _ -> ());
  Faults.uninstall media;
  Pool.crash pool;
  Alcotest.(check int) "line torn" 1 (Pool.torn_lines pool);
  (* 8-byte store atomicity: every word is fully old or fully new *)
  let persisted = ref 0 in
  for w = 0 to 7 do
    let v = Pool.durable_i64 pool (w * 8) in
    if v = Int64.of_int ((w + 1) * 0x0101) then incr persisted
    else if v <> 0L then
      Alcotest.failf "word %d sheared: %Ld (words must tear atomically)" w v
  done;
  (* seed 7 gives a strict subset: the line really is torn, not all-or-none *)
  Alcotest.(check bool)
    (Printf.sprintf "strict subset persisted (%d/8)" !persisted)
    true
    (!persisted > 0 && !persisted < 8)

let test_plan_one_shot () =
  let media, pool = mk_pool () in
  let plan = Faults.plan ~crash_at:(`Write, 1) () in
  Faults.install ~pool media plan;
  (match Pool.write_u8 pool 0 1 with
  | () -> Alcotest.fail "expected a crash point"
  | exception Faults.Crash_point _ -> ());
  (* a fired plan is inert: unwind-path stores must not re-raise *)
  Pool.write_u8 pool 1 2;
  Pool.write_u8 pool 2 3;
  Faults.uninstall media;
  Alcotest.(check int) "single injection" 1
    (Faults.stats plan).Faults.injected_crashes;
  Alcotest.(check int) "media fault counter" 1 (Media.stats media).Media.faults

(* --- persist-trace recorder ----------------------------------------- *)

let test_trace_recorder () =
  let media, pool = mk_pool () in
  let trace =
    CE.record media (fun () ->
        Pool.write_i64 pool 0 1L;
        Pool.write_i64 pool 64 2L;
        Pool.clwb pool 0;
        Pool.clwb pool 64;
        Pool.sfence pool)
  in
  Alcotest.(check int) "stores" 2 (CE.stores trace);
  Alcotest.(check int) "flushes" 2 (CE.flushes trace);
  Alcotest.(check int) "fences" 1 (CE.fences trace);
  (match trace with
  | [|
   CE.Store { off = 0; len = 8 };
   CE.Store { off = 64; len = 8 };
   CE.Flush { off = 0 };
   CE.Flush { off = 64 };
   CE.Fence;
  |] ->
      ()
  | _ -> Alcotest.failf "unexpected trace:@ %a" CE.pp_trace trace);
  Alcotest.(check bool) "hook removed" false (Media.hook_installed media)

(* --- exhaustive crash-schedule sweep over the engine ------------------ *)

(* A fixed, deterministic transactional workload.  [pending] always names
   the delta of the transaction currently in flight, so the oracle can
   check all-or-nothing atomicity when a schedule cuts power mid-commit. *)
type st = {
  mutable db : Core.t;
  model : Crash_oracle.model;
  mutable pending : Crash_oracle.delta option;
  a : int;
  b : int;
  d : int;
  mutable n1 : int;
  mutable n2 : int;
}

let fresh () =
  let db = Core.create ~mode:`Pmem ~pool_size:(1 lsl 24) ~chunk_capacity:64 () in
  ignore (Core.create_index db ~label:"N" ~prop:"id" ());
  let mk ldbc v =
    Core.with_txn db (fun txn ->
        Core.create_node db txn ~label:"N"
          ~props:[ ("id", Value.Int ldbc); ("v", Value.Int v) ])
  in
  let a = mk 0 10 and b = mk 1 20 and d = mk 2 30 in
  {
    db;
    model = { Crash_oracle.nodes = [ (a, 10); (b, 20); (d, 30) ]; rels = [] };
    pending = None;
    a;
    b;
    d;
    n1 = -1;
    n2 = -1;
  }

let step st pending f =
  st.pending <- Some pending;
  f ();
  st.pending <- None

let insert_step st ~ldbc ~v ~dst ~record =
  step st (Crash_oracle.Insert { ldbc; v; rel_dsts = [ dst ] }) (fun () ->
      let id, rid =
        Core.with_txn st.db (fun txn ->
            let id =
              Core.create_node st.db txn ~label:"N"
                ~props:[ ("id", Value.Int ldbc); ("v", Value.Int v) ]
            in
            let rid =
              Core.create_rel st.db txn ~label:"E" ~src:id ~dst ~props:[]
            in
            (id, rid))
      in
      record id;
      st.model.Crash_oracle.nodes <- (id, v) :: st.model.Crash_oracle.nodes;
      st.model.Crash_oracle.rels <-
        (rid, id, dst) :: st.model.Crash_oracle.rels)

let update_step st ups =
  step st (Crash_oracle.Update ups) (fun () ->
      Core.with_txn st.db (fun txn ->
          List.iter
            (fun (id, _, nv) ->
              Core.set_node_prop st.db txn id ~key:"v" (Value.Int nv))
            ups);
      st.model.Crash_oracle.nodes <-
        List.map
          (fun (id, v) ->
            match List.find_opt (fun (i, _, _) -> i = id) ups with
            | Some (_, _, nv) -> (id, nv)
            | None -> (id, v))
          st.model.Crash_oracle.nodes)

let run st =
  insert_step st ~ldbc:100 ~v:1 ~dst:st.a ~record:(fun id -> st.n1 <- id);
  update_step st [ (st.a, 10, 11); (st.b, 20, 21) ];
  insert_step st ~ldbc:101 ~v:2 ~dst:st.n1 ~record:(fun id -> st.n2 <- id);
  update_step st [ (st.n1, 1, 5); (st.n2, 2, 6) ];
  step st (Crash_oracle.Delete { node = st.d }) (fun () ->
      Core.with_txn st.db (fun txn -> Core.delete_node st.db txn st.d);
      st.model.Crash_oracle.nodes <-
        List.filter (fun (i, _) -> i <> st.d) st.model.Crash_oracle.nodes);
  update_step st [ (st.a, 11, 12) ]

let target : st CE.target =
  {
    CE.fresh;
    pool = (fun st -> Core.pool st.db);
    run;
    recover =
      (fun st ->
        st.db <- Core.reopen st.db;
        st);
    check = (fun st -> Crash_oracle.check ?pending:st.pending st.db st.model);
  }

let test_exhaustive_fence_sweep () =
  let r = CE.explore ~evict_variants:1 ~flush_stride:25 target in
  Alcotest.(check bool) "trace has fences" true (r.CE.trace_fences > 0);
  Alcotest.(check int) "a schedule per fence boundary" r.CE.trace_fences
    r.CE.fence_schedules;
  Alcotest.(check int) "eviction/torn variant per fence" r.CE.trace_fences
    r.CE.variant_schedules;
  Alcotest.(check bool) "flush-boundary schedules ran" true
    (r.CE.flush_schedules > 0);
  (* determinism: every armed schedule's crash point was reached on replay *)
  Alcotest.(check int) "every schedule crashed"
    (r.CE.fence_schedules + r.CE.variant_schedules + r.CE.flush_schedules)
    r.CE.crashes_triggered;
  Alcotest.(check int) "clean run counted" 1
    (r.CE.schedules - r.CE.fence_schedules - r.CE.variant_schedules
   - r.CE.flush_schedules)

(* --- SNB update-mix crash sweep ----------------------------------------

   The same exhaustive fence/flush-boundary exploration, but over an
   LDBC-SNB interactive-update mix: IU1 insert-person, IU8
   add-friendship (a relationship-only transaction between existing
   persons), and IU6 add-post (a node insert that links its creator in
   the same transaction).  SNB entities carry "id" as their universal
   integer property, so the oracle tracks it as the value key and audits
   the Person.id index. *)

type snb_st = {
  mutable sdb : Core.t;
  smodel : Crash_oracle.model;
  mutable spending : Crash_oracle.delta option;
  p1 : int;
  p2 : int;
  mutable p3 : int;
}

let snb_fresh () =
  let db = Core.create ~mode:`Pmem ~pool_size:(1 lsl 24) ~chunk_capacity:64 () in
  ignore (Core.create_index db ~label:"Person" ~prop:"id" ());
  let person ldbc =
    Core.with_txn db (fun txn ->
        Core.create_node db txn ~label:"Person"
          ~props:[ ("id", Value.Int ldbc) ])
  in
  let p1 = person 933 and p2 = person 1129 in
  {
    sdb = db;
    smodel = { Crash_oracle.nodes = [ (p1, 933); (p2, 1129) ]; rels = [] };
    spending = None;
    p1;
    p2;
    p3 = -1;
  }

let snb_step st pending f =
  st.spending <- Some pending;
  f ();
  st.spending <- None

(* IU1: a new person node. *)
let snb_insert_person st ~ldbc ~record =
  snb_step st (Crash_oracle.Insert { ldbc; v = ldbc; rel_dsts = [] }) (fun () ->
      let id =
        Core.with_txn st.sdb (fun txn ->
            Core.create_node st.sdb txn ~label:"Person"
              ~props:[ ("id", Value.Int ldbc) ])
      in
      record id;
      st.smodel.Crash_oracle.nodes <-
        (id, ldbc) :: st.smodel.Crash_oracle.nodes)

(* IU8: a knows edge between two existing persons. *)
let snb_add_friendship st ~src ~dst =
  snb_step st (Crash_oracle.AddRels [ (src, dst) ]) (fun () ->
      let rid =
        Core.with_txn st.sdb (fun txn ->
            Core.create_rel st.sdb txn ~label:"knows" ~src ~dst ~props:[])
      in
      st.smodel.Crash_oracle.rels <-
        (rid, src, dst) :: st.smodel.Crash_oracle.rels)

(* IU6: a post plus its hasCreator edge, in one transaction. *)
let snb_add_post st ~ldbc ~creator =
  snb_step st (Crash_oracle.Insert { ldbc; v = ldbc; rel_dsts = [ creator ] })
    (fun () ->
      let id, rid =
        Core.with_txn st.sdb (fun txn ->
            let id =
              Core.create_node st.sdb txn ~label:"Post"
                ~props:[ ("id", Value.Int ldbc) ]
            in
            let rid =
              Core.create_rel st.sdb txn ~label:"hasCreator" ~src:id
                ~dst:creator ~props:[]
            in
            (id, rid))
      in
      st.smodel.Crash_oracle.nodes <-
        (id, ldbc) :: st.smodel.Crash_oracle.nodes;
      st.smodel.Crash_oracle.rels <-
        (rid, id, creator) :: st.smodel.Crash_oracle.rels)

let snb_run st =
  snb_insert_person st ~ldbc:4194 ~record:(fun id -> st.p3 <- id);
  snb_add_friendship st ~src:st.p1 ~dst:st.p2;
  snb_add_post st ~ldbc:7696 ~creator:st.p1;
  snb_add_friendship st ~src:st.p3 ~dst:st.p2;
  snb_add_post st ~ldbc:7697 ~creator:st.p3

let snb_target : snb_st CE.target =
  {
    CE.fresh = snb_fresh;
    pool = (fun st -> Core.pool st.sdb);
    run = snb_run;
    recover =
      (fun st ->
        st.sdb <- Core.reopen st.sdb;
        st);
    check =
      (fun st ->
        Crash_oracle.check ~vkey:"id" ~index_label:"Person" ~index_key:"id"
          ?pending:st.spending st.sdb st.smodel);
  }

let test_snb_update_mix_sweep () =
  let r = CE.explore ~evict_variants:1 ~flush_stride:30 snb_target in
  Alcotest.(check bool) "trace has fences" true (r.CE.trace_fences > 0);
  Alcotest.(check int) "a schedule per fence boundary" r.CE.trace_fences
    r.CE.fence_schedules;
  Alcotest.(check bool) "flush-boundary schedules ran" true
    (r.CE.flush_schedules > 0);
  Alcotest.(check int) "every schedule crashed"
    (r.CE.fence_schedules + r.CE.variant_schedules + r.CE.flush_schedules)
    r.CE.crashes_triggered

(* --- group-commit fence-epoch sweep -----------------------------------

   Cuts placed inside a MULTI-member commit epoch: several prepared
   transactions persisted by [Core.commit_group] share one undo-log
   publish fence and one log invalidation, so a power cut anywhere in
   that window must roll back or retire the members TOGETHER.  The
   oracle enforces exactly that: the pending delta spans every member's
   writes and is checked all-or-nothing.  Members only touch the
   un-indexed "v" property, so bypassing the per-transaction index
   maintenance of [Core.commit] is sound here.

   Both new sweeps also assert the recovery fingerprint: after the
   armed recovery, a second power cut with no intervening work followed
   by another recovery must leave the durable image bitwise identical
   (recovery converges instead of compounding). *)

let durable_digest pool =
  let h = ref 0xcbf29ce484222325L in
  for w = 0 to (Pool.size pool / 8) - 1 do
    h :=
      Int64.mul (Int64.logxor !h (Pool.durable_i64 pool (w * 8))) 0x100000001b3L
  done;
  !h

let reopen_fingerprinted db =
  let db = Core.reopen db in
  let d1 = durable_digest (Core.pool db) in
  Core.crash db;
  let db = Core.reopen db in
  let d2 = durable_digest (Core.pool db) in
  if not (Int64.equal d1 d2) then
    Alcotest.fail "recovery is not bitwise idempotent on the durable image";
  db

type grp_st = {
  mutable gdb : Core.t;
  gmodel : Crash_oracle.model;
  mutable gpending : Crash_oracle.delta option;
  ga : int;
  gb : int;
  gd : int;
}

let grp_fresh () =
  let db = Core.create ~mode:`Pmem ~pool_size:(1 lsl 23) ~chunk_capacity:64 () in
  ignore (Core.create_index db ~label:"N" ~prop:"id" ());
  let mk ldbc v =
    Core.with_txn db (fun txn ->
        Core.create_node db txn ~label:"N"
          ~props:[ ("id", Value.Int ldbc); ("v", Value.Int v) ])
  in
  let ga = mk 0 10 and gb = mk 1 20 and gd = mk 2 30 in
  {
    gdb = db;
    gmodel = { Crash_oracle.nodes = [ (ga, 10); (gb, 20); (gd, 30) ]; rels = [] };
    gpending = None;
    ga;
    gb;
    gd;
  }

(* One group-commit batch: a transaction per [ups] entry list, all
   persisted in a single commit epoch, plus optionally a read-only
   member riding the batch. *)
let grp_step st ?(read_only = false) groups =
  let pending = Crash_oracle.Update (List.concat groups) in
  st.gpending <- Some pending;
  let txns =
    List.map
      (fun ups ->
        let txn = Core.begin_txn st.gdb in
        List.iter
          (fun (id, _, nv) ->
            Core.set_node_prop st.gdb txn id ~key:"v" (Value.Int nv))
          ups;
        txn)
      groups
  in
  let txns =
    if read_only then begin
      let txn = Core.begin_txn st.gdb in
      ignore (Core.node_prop st.gdb txn st.ga ~key:"v");
      txns @ [ txn ]
    end
    else txns
  in
  Core.commit_group st.gdb txns;
  st.gmodel.Crash_oracle.nodes <-
    List.map
      (fun (id, v) ->
        match
          List.find_opt (fun (i, _, _) -> i = id) (List.concat groups)
        with
        | Some (_, _, nv) -> (id, nv)
        | None -> (id, v))
      st.gmodel.Crash_oracle.nodes;
  st.gpending <- None

let grp_run st =
  grp_step st [ [ (st.ga, 10, 11) ]; [ (st.gb, 20, 21) ] ];
  grp_step st [ [ (st.ga, 11, 12); (st.gd, 30, 31) ]; [ (st.gb, 21, 22) ] ];
  grp_step st ~read_only:true [ [ (st.gd, 31, 32) ] ]

let grp_target : grp_st CE.target =
  {
    CE.fresh = grp_fresh;
    pool = (fun st -> Core.pool st.gdb);
    run = grp_run;
    recover =
      (fun st ->
        st.gdb <- reopen_fingerprinted st.gdb;
        st);
    check = (fun st -> Crash_oracle.check ?pending:st.gpending st.gdb st.gmodel);
  }

let test_group_commit_epoch_sweep () =
  (* stride 3: cuts land INSIDE the coalesced flush batches of the
     shared publish, not only at their fence boundaries *)
  let r = CE.explore ~evict_variants:1 ~flush_stride:3 grp_target in
  Alcotest.(check bool) "trace has fences" true (r.CE.trace_fences > 0);
  Alcotest.(check int) "a schedule per fence boundary" r.CE.trace_fences
    r.CE.fence_schedules;
  Alcotest.(check bool) "flush-boundary schedules ran" true
    (r.CE.flush_schedules > 0);
  Alcotest.(check int) "every schedule crashed"
    (r.CE.fence_schedules + r.CE.variant_schedules + r.CE.flush_schedules)
    r.CE.crashes_triggered

(* --- dictionary-promotion sweep ---------------------------------------

   Cuts placed inside the hybrid dictionary's fresh-string encode window
   (PMem heap push + code-array publish): committed codes must keep
   decoding bitwise after recovery no matter where the cut lands, and a
   string whose encode was in flight must never surface half-built.
   Strings span multiple cache lines so the encode's flush batch has
   interior clwb boundaries for the stride cuts to hit. *)

type dict_st = {
  mutable tdb : Core.t;
  tmodel : Crash_oracle.model;
  mutable tpending : Crash_oracle.delta option;
  mutable tstrings : (int * string) list;  (** committed id -> "s" prop *)
  ta : int;
  mutable tn1 : int;
}

let big_string tag = tag ^ "-" ^ String.make 90 'x'

let dict_fresh () =
  let db = Core.create ~mode:`Pmem ~pool_size:(1 lsl 23) ~chunk_capacity:64 () in
  ignore (Core.create_index db ~label:"N" ~prop:"id" ());
  let ta =
    Core.with_txn db (fun txn ->
        Core.create_node db txn ~label:"N"
          ~props:
            [
              ("id", Value.Int 0);
              ("v", Value.Int 10);
              ("s", Value.Text (big_string "seed"));
            ])
  in
  {
    tdb = db;
    tmodel = { Crash_oracle.nodes = [ (ta, 10) ]; rels = [] };
    tpending = None;
    tstrings = [ (ta, big_string "seed") ];
    ta;
    tn1 = -1;
  }

let dict_insert_step st ~ldbc ~v ~tag ~record =
  st.tpending <- Some (Crash_oracle.Insert { ldbc; v; rel_dsts = [] });
  let id =
    Core.with_txn st.tdb (fun txn ->
        Core.create_node st.tdb txn ~label:"N"
          ~props:
            [
              ("id", Value.Int ldbc);
              ("v", Value.Int v);
              ("s", Value.Text (big_string tag));
            ])
  in
  st.tmodel.Crash_oracle.nodes <- (id, v) :: st.tmodel.Crash_oracle.nodes;
  st.tstrings <- (id, big_string tag) :: st.tstrings;
  record id;
  st.tpending <- None

(* Swing an existing node's string to a FRESH one (a new encode inside
   an update transaction).  While the swing is in flight the node's "s"
   may legitimately be either string, so it leaves [tstrings] for the
   duration; its atomicity is still covered through the "v" bump the
   same transaction carries. *)
let dict_update_step st ~id ~ov ~nv ~tag =
  st.tstrings <- List.remove_assoc id st.tstrings;
  st.tpending <- Some (Crash_oracle.Update [ (id, ov, nv) ]);
  Core.with_txn st.tdb (fun txn ->
      Core.set_node_prop st.tdb txn id ~key:"v" (Value.Int nv);
      Core.set_node_prop st.tdb txn id ~key:"s"
        (Value.Text (big_string tag)));
  st.tmodel.Crash_oracle.nodes <-
    List.map
      (fun (i, v) -> if i = id then (i, nv) else (i, v))
      st.tmodel.Crash_oracle.nodes;
  st.tstrings <- (id, big_string tag) :: st.tstrings;
  st.tpending <- None

let dict_run st =
  dict_insert_step st ~ldbc:100 ~v:1 ~tag:"first" ~record:(fun id ->
      st.tn1 <- id);
  dict_update_step st ~id:st.ta ~ov:10 ~nv:11 ~tag:"swung";
  dict_insert_step st ~ldbc:101 ~v:2 ~tag:"second" ~record:(fun _ -> ());
  dict_update_step st ~id:st.tn1 ~ov:1 ~nv:5 ~tag:"swung2"

let dict_check st =
  Crash_oracle.check ?pending:st.tpending st.tdb st.tmodel;
  (* committed dictionary codes decode bitwise: a cut inside the encode
     window may strand heap bytes but never publish a half-built code *)
  Core.with_txn st.tdb (fun txn ->
      List.iter
        (fun (id, s) ->
          if List.mem_assoc id st.tmodel.Crash_oracle.nodes then
            match Core.node_prop st.tdb txn id ~key:"s" with
            | None -> Alcotest.failf "node %d: string prop lost" id
            | Some v -> (
                match Core.decode_value st.tdb v with
                | Value.Text s' when String.equal s' s -> ()
                | Value.Text s' ->
                    Alcotest.failf "node %d: string prop corrupted: %S" id s'
                | _ -> Alcotest.failf "node %d: string prop not text" id))
        st.tstrings)

let dict_target : dict_st CE.target =
  {
    CE.fresh = dict_fresh;
    pool = (fun st -> Core.pool st.tdb);
    run = dict_run;
    recover =
      (fun st ->
        st.tdb <- reopen_fingerprinted st.tdb;
        st);
    check = dict_check;
  }

let test_dict_promotion_sweep () =
  let r = CE.explore ~evict_variants:1 ~flush_stride:4 dict_target in
  Alcotest.(check bool) "trace has fences" true (r.CE.trace_fences > 0);
  Alcotest.(check int) "a schedule per fence boundary" r.CE.trace_fences
    r.CE.fence_schedules;
  Alcotest.(check bool) "flush-boundary schedules ran" true
    (r.CE.flush_schedules > 0);
  Alcotest.(check int) "every schedule crashed"
    (r.CE.fence_schedules + r.CE.variant_schedules + r.CE.flush_schedules)
    r.CE.crashes_triggered

(* --- graceful degradation: transient SSD faults ---------------------- *)

let test_ssd_faults_absorbed () =
  let media = Media.create () in
  let bp = BP.create ~capacity:64 ~max_retries:10 media in
  let plan = Faults.plan ~ssd_read_fail:0.25 ~ssd_write_fail:0.25 ~seed:42 () in
  Faults.install media plan;
  Fun.protect
    ~finally:(fun () -> Faults.uninstall media)
    (fun () ->
      (* distinct pages force misses; a third of them dirty their frame,
         so evictions exercise the write-back path too *)
      for i = 0 to 999 do
        BP.touch bp ~off:(i * 8192) ~rw:(if i mod 3 = 0 then `W else `R)
      done;
      BP.wal_commit bp ~bytes:65536);
  let fs = Faults.stats plan in
  Alcotest.(check bool) "read faults injected" true (fs.Faults.ssd_read_faults > 0);
  Alcotest.(check bool) "write faults injected" true
    (fs.Faults.ssd_write_faults > 0);
  (* every injected fault was absorbed by exactly one retry - none surfaced *)
  Alcotest.(check int) "faults == retries"
    (fs.Faults.ssd_read_faults + fs.Faults.ssd_write_faults)
    (BP.retries bp);
  let ms = Media.stats media in
  Alcotest.(check int) "media fault counter" (BP.retries bp) ms.Media.faults;
  Alcotest.(check int) "media retry counter" (BP.retries bp) ms.Media.retries

let test_ssd_retry_exhaustion () =
  let media = Media.create () in
  let bp = BP.create ~capacity:8 ~max_retries:4 media in
  let plan = Faults.plan ~ssd_read_fail:1.0 () in
  Faults.install media plan;
  (match BP.touch bp ~off:0 ~rw:`R with
  | () -> Alcotest.fail "a permanently failing device must surface"
  | exception Faults.Ssd_fault `Read -> ());
  Faults.uninstall media;
  Alcotest.(check int) "full retry budget consumed" 4 (BP.retries bp)

let () =
  Alcotest.run "faults"
    [
      ( "plan",
        [
          Alcotest.test_case "crash at nth fence" `Quick test_crash_at_fence;
          Alcotest.test_case "crash at nth write" `Quick test_crash_at_write;
          Alcotest.test_case "crash at nth flush" `Quick test_crash_at_flush;
          Alcotest.test_case "crash at nth alloc" `Quick test_crash_at_alloc;
          Alcotest.test_case "torn line writes" `Quick test_torn_line;
          Alcotest.test_case "plans are one-shot" `Quick test_plan_one_shot;
        ] );
      ( "trace",
        [ Alcotest.test_case "persist trace" `Quick test_trace_recorder ] );
      ( "explore",
        [
          Alcotest.test_case "exhaustive fence sweep" `Quick
            test_exhaustive_fence_sweep;
          Alcotest.test_case "snb update-mix sweep" `Quick
            test_snb_update_mix_sweep;
          Alcotest.test_case "group-commit epoch sweep" `Quick
            test_group_commit_epoch_sweep;
          Alcotest.test_case "dict promotion sweep" `Quick
            test_dict_promotion_sweep;
        ] );
      ( "ssd",
        [
          Alcotest.test_case "transient faults absorbed" `Quick
            test_ssd_faults_absorbed;
          Alcotest.test_case "retry exhaustion surfaces" `Quick
            test_ssd_retry_exhaustion;
        ] );
    ]
