(* Tests for the JIT compiler: codegen correctness (JIT == interpreter on
   every supported plan shape), pass-by-pass semantic preservation, the
   persistent code cache, and adaptive execution. *)

module Value = Storage.Value
module A = Query.Algebra
module E = Query.Expr
module I = Query.Interp
module Mvto = Mvcc.Mvto
module Engine = Jit.Engine
module Codegen = Jit.Codegen
module Passes = Jit.Passes
module Emit = Jit.Emit
module Ir = Jit.Ir
open Tutil

let no_params : Value.t array = [||]

(* run one plan through interp and jit (at a given level), compare rows *)
let compare_modes ?(params = no_params) ?level env plan msg =
  let config =
    match level with
    | None -> { Engine.default_config with prop_tag = prop_tag env }
    | Some l ->
        { Engine.default_config with opt_level = l; prop_tag = prop_tag env }
  in
  with_source env (fun g ->
      let expected, _ = Engine.run ~mode:Engine.Interp g ~params plan in
      let actual, report = Engine.run ~config ~mode:Engine.Jit g ~params plan in
      Alcotest.(check bool) (msg ^ ": did not fall back") false
        report.Engine.fell_back;
      check_same_rows msg expected actual)

let plans env =
  [
    ("scan", A.NodeScan { label = Some env.person });
    ("scan-all", A.NodeScan { label = None });
    ( "filter-const",
      A.Filter
        {
          pred =
            E.Cmp
              ( E.Eq,
                E.Prop { col = 0; kind = E.KNode; key = env.k_id },
                E.Const (Value.Int 1005) );
          child = A.NodeScan { label = Some env.person };
        } );
    ( "filter-range",
      A.Filter
        {
          pred =
            E.And
              ( E.Cmp
                  ( E.Ge,
                    E.Prop { col = 0; kind = E.KNode; key = env.k_age },
                    E.Const (Value.Int 30) ),
                E.Cmp
                  ( E.Lt,
                    E.Prop { col = 0; kind = E.KNode; key = env.k_age },
                    E.Const (Value.Int 50) ) );
          child = A.NodeScan { label = Some env.person };
        } );
    ( "expand",
      A.Expand
        {
          col = 0;
          dir = A.Out;
          label = Some env.knows;
          child = A.NodeScan { label = Some env.person };
        } );
    ( "expand-endpoint-project",
      A.Project
        {
          exprs =
            [
              E.Prop { col = 0; kind = E.KNode; key = env.k_id };
              E.Prop { col = 2; kind = E.KNode; key = env.k_id };
            ];
          child =
            A.EndPoint
              {
                col = 1;
                which = `Dst;
                child =
                  A.Expand
                    {
                      col = 0;
                      dir = A.Out;
                      label = Some env.knows;
                      child = A.NodeScan { label = Some env.person };
                    };
              };
        } );
    ( "expand-in",
      A.Expand
        {
          col = 0;
          dir = A.In;
          label = Some env.likes;
          child = A.NodeScan { label = Some env.post };
        } );
    ( "two-hop",
      A.Expand
        {
          col = 2;
          dir = A.Out;
          label = Some env.knows;
          child =
            A.EndPoint
              {
                col = 1;
                which = `Dst;
                child =
                  A.Expand
                    {
                      col = 0;
                      dir = A.Out;
                      label = Some env.knows;
                      child = A.NodeScan { label = Some env.person };
                    };
              };
        } );
    ( "walk-to-root",
      A.WalkToRoot
        {
          col = 0;
          rel_label = env.reply_of;
          child = A.NodeScan { label = Some env.post };
        } );
    ( "null-prop-filter",
      A.Filter
        {
          (* posts have no age: Null comparisons must filter out *)
          pred =
            E.Cmp
              ( E.Ge,
                E.Prop { col = 0; kind = E.KNode; key = env.k_age },
                E.Const (Value.Int 0) );
          child = A.NodeScan { label = None };
        } );
    ( "count-scan",
      A.CountAgg { child = A.NodeScan { label = Some env.person } } );
    ( "count-expand",
      A.CountAgg
        {
          child =
            A.Expand
              {
                col = 0;
                dir = A.Out;
                label = Some env.knows;
                child = A.NodeScan { label = Some env.person };
              };
        } );
    ( "group-count-age",
      A.GroupCount
        {
          child =
            A.Project
              {
                exprs = [ E.Prop { col = 0; kind = E.KNode; key = env.k_age } ];
                child = A.NodeScan { label = Some env.person };
              };
        } );
    ( "count-of-groups",
      A.CountAgg
        {
          child =
            A.GroupCount
              {
                child =
                  A.Project
                    {
                      exprs = [ E.Prop { col = 0; kind = E.KNode; key = env.k_name } ];
                      child = A.NodeScan { label = Some env.person };
                    };
              };
        } );
    ( "arith-project",
      A.Project
        {
          exprs =
            [
              E.Add
                ( E.Prop { col = 0; kind = E.KNode; key = env.k_age },
                  E.Const (Value.Int 100) );
              E.Sub (E.Const (Value.Int 0), E.Col 0);
            ];
          child = A.NodeScan { label = Some env.person };
        } );
  ]

let test_jit_matches_interp () =
  let env = mk_env () in
  List.iter (fun (name, plan) -> compare_modes env plan name) (plans env)

let test_jit_matches_interp_o0 () =
  let env = mk_env () in
  List.iter
    (fun (name, plan) -> compare_modes ~level:Passes.O0 env plan (name ^ "@O0"))
    (plans env)

let test_jit_matches_interp_o1 () =
  let env = mk_env () in
  List.iter
    (fun (name, plan) -> compare_modes ~level:Passes.O1 env plan (name ^ "@O1"))
    (plans env)

let test_jit_with_params () =
  let env = mk_env () in
  let plan =
    A.EndPoint
      {
        col = 1;
        which = `Dst;
        child =
          A.Expand
            {
              col = 0;
              dir = A.Out;
              label = Some env.knows;
              child = A.NodeById { id = E.Param 0 };
            };
      }
  in
  compare_modes ~params:[| Value.Int env.persons.(4) |] env plan "param node-by-id"

let test_jit_breaker_suffix () =
  let env = mk_env () in
  (* Sort/Limit run in the AOT suffix; the pipeline below is compiled *)
  let plan =
    A.Limit
      {
        n = 3;
        child =
          A.Sort
            {
              keys = [ (E.Col 0, `Asc) ];
              child =
                A.Project
                  {
                    exprs = [ E.Prop { col = 0; kind = E.KNode; key = env.k_id } ];
                    child = A.NodeScan { label = Some env.person };
                  };
            };
      }
  in
  with_source env (fun g ->
      let expected, _ = Engine.run ~mode:Engine.Interp g ~params:no_params plan in
      let actual, report = Engine.run ~mode:Engine.Jit g ~params:no_params plan in
      Alcotest.(check bool) "no fallback" false report.Engine.fell_back;
      Alcotest.(check bool) "ordered equality" true (expected = actual))

let test_jit_count () =
  let env = mk_env () in
  let plan =
    A.CountAgg
      {
        child =
          A.Expand
            {
              col = 0;
              dir = A.Out;
              label = Some env.knows;
              child = A.NodeScan { label = Some env.person };
            };
      }
  in
  compare_modes env plan "count of expand"

let test_jit_index_scan () =
  let env = mk_env () in
  let pool_ = Storage.Graph_store.pool (Mvto.store env.mgr) in
  let idx =
    Gindex.Index.create pool_ ~placement:Gindex.Node_store.Hybrid
      ~label:env.person ~key:env.k_id
  in
  Array.iteri (fun i id -> Gindex.Index.insert idx (Value.Int (1000 + i)) id) env.persons;
  let indexes ~label ~key =
    if label = env.person && key = env.k_id then Some idx else None
  in
  let plan =
    A.EndPoint
      {
        col = 1;
        which = `Dst;
        child =
          A.Expand
            {
              col = 0;
              dir = A.Out;
              label = Some env.knows;
              child =
                A.IndexScan { label = env.person; key = env.k_id; value = E.Param 0 };
            };
      }
  in
  with_source_idx env ~indexes (fun g ->
      let params = [| Value.Int 1010 |] in
      let expected, _ = Engine.run ~mode:Engine.Interp g ~params plan in
      let actual, report = Engine.run ~mode:Engine.Jit g ~params plan in
      Alcotest.(check bool) "no fallback" false report.Engine.fell_back;
      check_same_rows "index scan jit" expected actual)

let test_jit_update_plan () =
  let env = mk_env () in
  (* run the update through the JIT inside a transaction, then verify *)
  Mvto.with_txn env.mgr (fun txn ->
      let g = Query.Source.of_mvcc env.mgr txn in
      let plan =
        A.CreateNode
          {
            label = env.person;
            props = [ (env.k_id, E.Const (Value.Int 31337)) ];
            child = A.Unit;
          }
      in
      let rows, report = Engine.run ~mode:Engine.Jit g ~params:no_params plan in
      Alcotest.(check bool) "no fallback" false report.Engine.fell_back;
      Alcotest.(check int) "one row" 1 (List.length rows));
  with_source env (fun g ->
      let check_plan =
        A.Filter
          {
            pred =
              E.Cmp
                ( E.Eq,
                  E.Prop { col = 0; kind = E.KNode; key = env.k_id },
                  E.Const (Value.Int 31337) );
            child = A.NodeScan { label = Some env.person };
          }
      in
      Alcotest.(check int) "created via jit" 1
        (List.length (I.run g ~params:no_params check_plan)))

let test_jit_parallel_matches () =
  let env = mk_env ~n:150 () in
  let pool = Exec.Task_pool.create ~media:env.media ~nworkers:4 () in
  let plan =
    A.Expand
      {
        col = 0;
        dir = A.Out;
        label = Some env.knows;
        child = A.NodeScan { label = Some env.person };
      }
  in
  with_source env (fun g ->
      let expected, _ = Engine.run ~mode:Engine.Interp g ~params:no_params plan in
      let actual, _ = Engine.run ~pool ~mode:Engine.Jit g ~params:no_params plan in
      check_same_rows "parallel jit" expected actual);
  Exec.Task_pool.shutdown pool

let test_adaptive_matches () =
  let env = mk_env ~n:150 () in
  let pool = Exec.Task_pool.create ~media:env.media ~nworkers:4 () in
  let plan =
    A.Filter
      {
        pred =
          E.Cmp
            ( E.Gt,
              E.Prop { col = 0; kind = E.KNode; key = env.k_age },
              E.Const (Value.Int 25) );
        child = A.NodeScan { label = Some env.person };
      }
  in
  with_source env (fun g ->
      let expected, _ = Engine.run ~mode:Engine.Interp g ~params:no_params plan in
      let actual, report =
        Engine.run ~pool ~mode:Engine.Adaptive g ~params:no_params plan
      in
      check_same_rows "adaptive rows" expected actual;
      Alcotest.(check int) "all morsels accounted" (g.Query.Source.node_chunks ())
        (report.Engine.morsels_interp + report.Engine.morsels_jit));
  Exec.Task_pool.shutdown pool

let test_adaptive_eventually_switches () =
  (* with a zero-latency backend and wall-emulated PMem latency, the tail
     of a long scan must run compiled; the graph is bulk-loaded through
     the raw store to keep it out of a single giant transaction *)
  let module G = Storage.Graph_store in
  let media = Pmem.Media.create () in
  let pool = Pmem.Pool.create ~kind:`Pmem ~media ~id:1 ~size:(1 lsl 26) () in
  let g = G.format ~chunk_capacity:8 pool in
  let label = G.code g "Person" in
  for _ = 1 to 20_000 do
    ignore (G.insert_node g { (Storage.Layout.empty_node ()) with label })
  done;
  let mgr = Mvcc.Mvto.create g in
  let config =
    { Engine.default_config with backend_latency_ns = 0; backend_latency_per_op_ns = 0 }
  in
  Pmem.Media.set_spin media true;
  Fun.protect ~finally:(fun () -> Pmem.Media.set_spin media false)
  @@ fun () ->
  let plan = A.NodeScan { label = Some label } in
  Mvcc.Mvto.with_txn mgr (fun txn ->
      let src = Query.Source.of_mvcc mgr txn in
      let _, report =
        Engine.run ~config ~mode:Engine.Adaptive src ~params:no_params plan
      in
      Alcotest.(check bool)
        (Printf.sprintf "some jit morsels (interp=%d jit=%d)"
           report.Engine.morsels_interp report.Engine.morsels_jit)
        true
        (report.Engine.morsels_jit > 0))

let test_unsupported_falls_back () =
  let env = mk_env () in
  let plan = A.RelScan { label = Some env.knows } in
  with_source env (fun g ->
      let expected, _ = Engine.run ~mode:Engine.Interp g ~params:no_params plan in
      let actual, report = Engine.run ~mode:Engine.Jit g ~params:no_params plan in
      Alcotest.(check bool) "fell back" true report.Engine.fell_back;
      check_same_rows "fallback rows" expected actual)

(* --- passes ------------------------------------------------------------------ *)

let codegen_plan env plan =
  ignore env;
  Codegen.codegen plan

let test_passes_reduce_instrs () =
  let env = mk_env () in
  let plan =
    A.Filter
      {
        pred =
          E.Cmp
            ( E.Gt,
              E.Prop { col = 0; kind = E.KNode; key = env.k_age },
              E.Add (E.Const (Value.Int 20), E.Const (Value.Int 10)) );
        child = A.NodeScan { label = Some env.person };
      }
  in
  let raw = codegen_plan env plan in
  let raw_count = Ir.instr_count raw in
  let opt = Passes.optimize ~level:Passes.O1 (codegen_plan env plan) in
  let opt_count = Ir.instr_count opt in
  Alcotest.(check bool)
    (Printf.sprintf "O1 shrinks IR (%d -> %d)" raw_count opt_count)
    true (opt_count < raw_count);
  (* no Load/Store survives mem2reg *)
  Array.iter
    (fun b ->
      List.iter
        (function
          | Ir.Load _ | Ir.Store _ -> Alcotest.fail "stack slot survived mem2reg"
          | _ -> ())
        b.Ir.instrs)
    opt.Ir.blocks

let test_unroll_duplicates_loops () =
  let env = mk_env () in
  let plan = A.NodeScan { label = Some env.person } in
  let raw = codegen_plan env plan in
  let nblocks_before = Array.length raw.Ir.blocks in
  Passes.unroll raw;
  Alcotest.(check bool) "unroll adds blocks" true
    (Array.length raw.Ir.blocks > nblocks_before)

let test_constant_fold_condbr () =
  let env = mk_env () in
  (* a tautological filter folds to an unconditional branch *)
  let plan =
    A.Filter
      {
        pred = E.Cmp (E.Eq, E.Const (Value.Int 1), E.Const (Value.Int 1));
        child = A.NodeScan { label = Some env.person };
      }
  in
  let f = Passes.optimize ~level:Passes.O3 (codegen_plan env plan) in
  let has_cond_on_const =
    Array.exists
      (fun b -> match b.Ir.term with Ir.CondBr (Ir.Imm _, _, _) -> true | _ -> false)
      f.Ir.blocks
  in
  Alcotest.(check bool) "no condbr on constants" false has_cond_on_const;
  (* and it still runs correctly *)
  compare_modes ~level:Passes.O3 env plan "tautology"

let test_dce_keeps_semantics () =
  let env = mk_env () in
  (* project only one of two computed values: the other is dead *)
  let plan =
    A.Project
      {
        exprs = [ E.Prop { col = 0; kind = E.KNode; key = env.k_id } ];
        child = A.NodeScan { label = Some env.person };
      }
  in
  compare_modes ~level:Passes.O3 env plan "dce project"

let test_ir_serialization_roundtrip () =
  let env = mk_env () in
  let plan =
    A.Expand
      {
        col = 0;
        dir = A.Out;
        label = Some env.knows;
        child = A.NodeScan { label = Some env.person };
      }
  in
  let f = Passes.optimize (codegen_plan env plan) in
  let f' = Ir.of_string (Ir.to_string f) in
  Alcotest.(check int) "same blocks" (Array.length f.Ir.blocks)
    (Array.length f'.Ir.blocks);
  Alcotest.(check int) "same instr count" (Ir.instr_count f) (Ir.instr_count f');
  (* re-emitted code runs and matches *)
  with_source env (fun g ->
      let expected, _ = Engine.run ~mode:Engine.Interp g ~params:no_params plan in
      let compiled = Emit.emit f' in
      let acc = ref [] in
      compiled.Emit.run
        {
          Emit.g;
          params = no_params;
          sink = (fun row -> acc := row :: !acc);
          chunk_lo = 0;
          chunk_hi = -1;
          nchunks = g.Query.Source.node_chunks ();
          prof = None;
        };
      check_same_rows "reloaded ir" expected !acc)

(* --- persistent cache ----------------------------------------------------------- *)

let test_cache_roundtrip () =
  let env = mk_env () in
  let pool_ = Storage.Graph_store.pool (Mvto.store env.mgr) in
  let cache = Jit.Cache.create pool_ ~root_slot:5 () in
  let plan = A.NodeScan { label = Some env.person } in
  with_source env (fun g ->
      let _, r1 = Engine.run ~cache ~mode:Engine.Jit g ~params:no_params plan in
      Alcotest.(check bool) "first run misses" false r1.Engine.cache_hit;
      let rows2, r2 = Engine.run ~cache ~mode:Engine.Jit g ~params:no_params plan in
      Alcotest.(check bool) "second run hits" true r2.Engine.cache_hit;
      Alcotest.(check int) "rows" (Array.length env.persons) (List.length rows2);
      Alcotest.(check bool) "hit is cheaper (modeled)" true
        (r2.Engine.compile_modeled_ns < r1.Engine.compile_modeled_ns))

let test_cache_survives_crash () =
  let env = mk_env () in
  let pool_ = Storage.Graph_store.pool (Mvto.store env.mgr) in
  let cache = Jit.Cache.create pool_ ~root_slot:5 () in
  let plan = A.NodeScan { label = Some env.person } in
  with_source env (fun g ->
      ignore (Engine.run ~cache ~mode:Engine.Jit g ~params:no_params plan));
  Pmem.Pool.crash pool_;
  (* note: the graph itself is durable too, but here we only exercise the
     cache: reattach and expect a hit *)
  match Jit.Cache.attach pool_ ~root_slot:5 with
  | None -> Alcotest.fail "cache lost"
  | Some cache' ->
      let g' = Storage.Graph_store.open_ pool_ in
      let mgr' = Mvto.recover g' in
      Mvto.with_txn mgr' (fun txn ->
          let g = Query.Source.of_mvcc mgr' txn in
          let rows, report =
            Engine.run ~cache:cache' ~mode:Engine.Jit g ~params:no_params plan
          in
          Alcotest.(check bool) "hit after restart" true report.Engine.cache_hit;
          Alcotest.(check int) "rows after restart" (Array.length env.persons)
            (List.length rows))

let test_cache_store_find_basic () =
  let media = Pmem.Media.create () in
  let pool_ = Pmem.Pool.create ~media ~id:9 ~size:(1 lsl 22) () in
  Pmem.Alloc.format pool_;
  let c = Jit.Cache.create pool_ ~root_slot:0 () in
  Alcotest.(check (option string)) "miss" None (Jit.Cache.find c "nope");
  Jit.Cache.store c "q1" "blob-one";
  Jit.Cache.store c "q2" "blob-two";
  Alcotest.(check (option string)) "hit 1" (Some "blob-one") (Jit.Cache.find c "q1");
  Alcotest.(check (option string)) "hit 2" (Some "blob-two") (Jit.Cache.find c "q2");
  Jit.Cache.store c "q1" "blob-one-v2";
  Alcotest.(check (option string)) "replace" (Some "blob-one-v2") (Jit.Cache.find c "q1");
  Alcotest.(check int) "count" 2 (Jit.Cache.count c)

(* --- random-plan equivalence property --------------------------------------

   Generate random pipelined plans over the shared test graph and check
   that the compiled code agrees with the interpreter at every
   optimisation level.  This is the JIT's strongest correctness net: any
   codegen, pass or emission bug shows up as a row mismatch. *)

let plan_gen env : A.plan QCheck.Gen.t =
  let open QCheck.Gen in
  let leaf =
    oneofl
      [
        A.NodeScan { label = Some env.person };
        A.NodeScan { label = Some env.post };
        A.NodeScan { label = None };
      ]
  in
  (* track the kind of the last slot so generated ops stay well-typed *)
  let prop_keys = [ env.k_id; env.k_age; env.k_name ] in
  let rec grow depth (plan, width, last_kind) =
    if depth <= 0 then return plan
    else
      let filters =
        [
          (fun key c ->
            A.Filter
              {
                pred =
                  E.Cmp
                    ( E.Gt,
                      E.Prop { col = width - 1; kind = last_kind; key },
                      E.Const (Value.Int c) );
                child = plan;
              });
        ]
      in
      let choices =
        (* filter on a property of the last slot *)
        (if last_kind = E.KNode then
           [
             ( 3,
               oneofl prop_keys >>= fun key ->
               int_range 0 2000 >>= fun c ->
               grow (depth - 1)
                 ((List.hd filters) key c, width, last_kind) );
             (* expand out/in *)
             ( 3,
               oneofl [ (A.Out, env.knows); (A.Out, env.likes); (A.In, env.knows) ]
               >>= fun (dir, label) ->
               grow (depth - 1)
                 ( A.Expand { col = width - 1; dir; label = Some label; child = plan },
                   width + 1,
                   E.KRel ) );
           ]
         else
           [
             (* endpoint back to a node *)
             ( 4,
               oneofl [ `Src; `Dst ] >>= fun which ->
               grow (depth - 1)
                 ( A.EndPoint { col = width - 1; which; child = plan },
                   width + 1,
                   E.KNode ) );
           ])
        @ [
            (* stop growing *)
            (1, return plan);
          ]
      in
      frequency choices
  in
  int_range 1 4 >>= fun depth ->
  leaf >>= fun l -> grow depth (l, 1, E.KNode)

(* --- aggregation breakers: serial == parallel == jit -----------------------

   Aggregations have three execution strategies that must agree on the
   exact multiset of rows: a serial fold (Interp, no pool), per-morsel
   partial states merged at the barrier in chunk order (Interp + pool),
   and an AOT tail over the compiled pipeline (Jit). *)

let agg_plan_gen env : A.plan QCheck.Gen.t =
  let open QCheck.Gen in
  let group_by key core =
    A.GroupCount
      {
        child =
          A.Project
            { exprs = [ E.Prop { col = 0; kind = E.KNode; key } ]; child = core };
      }
  in
  plan_gen env >>= fun core ->
  oneofl
    [
      A.CountAgg { child = core };
      group_by env.k_age core;
      group_by env.k_name core;
      A.CountAgg { child = group_by env.k_age core };
      core;
    ]

let test_agg_parallel_equivalence () =
  let env = mk_env ~n:80 ~m:25 () in
  let mk n = Exec.Task_pool.create ~media:env.media ~nworkers:n () in
  let pools = [ mk 2; mk 4 ] in
  Fun.protect ~finally:(fun () -> List.iter Exec.Task_pool.shutdown pools)
  @@ fun () ->
  let rand = Random.State.make [| 0xA66; 0x5eed |] in
  let plans = QCheck.Gen.generate ~n:50 ~rand (agg_plan_gen env) in
  let config = { Engine.default_config with prop_tag = prop_tag env } in
  with_source env (fun g ->
      List.iter
        (fun plan ->
          let name = A.fingerprint plan in
          let serial, _ = Engine.run ~mode:Engine.Interp g ~params:no_params plan in
          List.iter
            (fun pool ->
              let par, _ =
                Engine.run ~pool ~mode:Engine.Interp g ~params:no_params plan
              in
              check_same_rows
                (Printf.sprintf "parallel(%d) %s" (Exec.Task_pool.size pool) name)
                serial par)
            pools;
          let jit, report =
            Engine.run ~config ~pool:(List.nth pools 1) ~mode:Engine.Jit g
              ~params:no_params plan
          in
          Alcotest.(check bool) (name ^ ": no fallback") false
            report.Engine.fell_back;
          check_same_rows ("jit " ^ name) serial jit)
        plans)

let test_random_plan_equivalence =
  let env = mk_env ~n:60 ~m:20 () in
  QCheck.Test.make ~name:"random plans: jit == interp at O0/O1/O3" ~count:60
    (QCheck.make ~print:A.fingerprint (plan_gen env))
    (fun plan ->
      with_source env (fun g ->
          let expected, _ = Engine.run ~mode:Engine.Interp g ~params:no_params plan in
          List.for_all
            (fun level ->
              let config =
                { Engine.default_config with opt_level = level; prop_tag = prop_tag env }
              in
              let actual, report =
                Engine.run ~config ~mode:Engine.Jit g ~params:no_params plan
              in
              (not report.Engine.fell_back)
              && norm expected = norm actual)
            [ Passes.O0; Passes.O1; Passes.O3 ]))

let () =
  Alcotest.run "jit"
    [
      ( "equivalence",
        [
          Alcotest.test_case "jit == interp (O3)" `Quick test_jit_matches_interp;
          Alcotest.test_case "jit == interp (O0)" `Quick test_jit_matches_interp_o0;
          Alcotest.test_case "jit == interp (O1)" `Quick test_jit_matches_interp_o1;
          Alcotest.test_case "with params" `Quick test_jit_with_params;
          Alcotest.test_case "breaker suffix" `Quick test_jit_breaker_suffix;
          Alcotest.test_case "count" `Quick test_jit_count;
          Alcotest.test_case "index scan" `Quick test_jit_index_scan;
          Alcotest.test_case "update plan" `Quick test_jit_update_plan;
          Alcotest.test_case "parallel" `Slow test_jit_parallel_matches;
          Alcotest.test_case "agg: serial == parallel == jit" `Slow
            test_agg_parallel_equivalence;
          Alcotest.test_case "unsupported falls back" `Quick
            test_unsupported_falls_back;
        ] );
      ( "adaptive",
        [
          Alcotest.test_case "matches interp" `Slow test_adaptive_matches;
          Alcotest.test_case "eventually switches" `Slow
            test_adaptive_eventually_switches;
        ] );
      ( "passes",
        [
          Alcotest.test_case "reduce instrs + mem2reg" `Quick test_passes_reduce_instrs;
          Alcotest.test_case "unroll duplicates loops" `Quick
            test_unroll_duplicates_loops;
          Alcotest.test_case "constant fold condbr" `Quick test_constant_fold_condbr;
          Alcotest.test_case "dce keeps semantics" `Quick test_dce_keeps_semantics;
          Alcotest.test_case "ir serialization" `Quick test_ir_serialization_roundtrip;
        ] );
      ( "cache",
        [
          Alcotest.test_case "store/find" `Quick test_cache_store_find_basic;
          Alcotest.test_case "engine roundtrip" `Quick test_cache_roundtrip;
          Alcotest.test_case "survives crash" `Quick test_cache_survives_crash;
        ] );
      ( "property",
        [ QCheck_alcotest.to_alcotest ~long:false test_random_plan_equivalence ] );
    ]
