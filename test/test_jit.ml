(* Tests for the JIT compiler: codegen correctness (JIT == interpreter on
   every supported plan shape), pass-by-pass semantic preservation, the
   persistent code cache, and adaptive execution. *)

module Value = Storage.Value
module A = Query.Algebra
module E = Query.Expr
module I = Query.Interp
module Mvto = Mvcc.Mvto
module Engine = Jit.Engine
module Codegen = Jit.Codegen
module Passes = Jit.Passes
module Emit = Jit.Emit
module Ir = Jit.Ir
open Tutil

let no_params : Value.t array = [||]

(* run one plan through interp and jit (at a given level), compare rows *)
let compare_modes ?(params = no_params) ?level env plan msg =
  let config =
    match level with
    | None -> { Engine.default_config with prop_tag = prop_tag env }
    | Some l ->
        { Engine.default_config with opt_level = l; prop_tag = prop_tag env }
  in
  with_source env (fun g ->
      let expected, _ = Engine.run ~mode:Engine.Interp g ~params plan in
      let actual, report = Engine.run ~config ~mode:Engine.Jit g ~params plan in
      Alcotest.(check bool) (msg ^ ": did not fall back") false
        report.Engine.fell_back;
      check_same_rows msg expected actual)

let plans env =
  [
    ("scan", A.NodeScan { label = Some env.person });
    ("scan-all", A.NodeScan { label = None });
    ( "filter-const",
      A.Filter
        {
          pred =
            E.Cmp
              ( E.Eq,
                E.Prop { col = 0; kind = E.KNode; key = env.k_id },
                E.Const (Value.Int 1005) );
          child = A.NodeScan { label = Some env.person };
        } );
    ( "filter-range",
      A.Filter
        {
          pred =
            E.And
              ( E.Cmp
                  ( E.Ge,
                    E.Prop { col = 0; kind = E.KNode; key = env.k_age },
                    E.Const (Value.Int 30) ),
                E.Cmp
                  ( E.Lt,
                    E.Prop { col = 0; kind = E.KNode; key = env.k_age },
                    E.Const (Value.Int 50) ) );
          child = A.NodeScan { label = Some env.person };
        } );
    ( "expand",
      A.Expand
        {
          col = 0;
          dir = A.Out;
          label = Some env.knows;
          child = A.NodeScan { label = Some env.person };
        } );
    ( "expand-endpoint-project",
      A.Project
        {
          exprs =
            [
              E.Prop { col = 0; kind = E.KNode; key = env.k_id };
              E.Prop { col = 2; kind = E.KNode; key = env.k_id };
            ];
          child =
            A.EndPoint
              {
                col = 1;
                which = `Dst;
                child =
                  A.Expand
                    {
                      col = 0;
                      dir = A.Out;
                      label = Some env.knows;
                      child = A.NodeScan { label = Some env.person };
                    };
              };
        } );
    ( "expand-in",
      A.Expand
        {
          col = 0;
          dir = A.In;
          label = Some env.likes;
          child = A.NodeScan { label = Some env.post };
        } );
    ( "two-hop",
      A.Expand
        {
          col = 2;
          dir = A.Out;
          label = Some env.knows;
          child =
            A.EndPoint
              {
                col = 1;
                which = `Dst;
                child =
                  A.Expand
                    {
                      col = 0;
                      dir = A.Out;
                      label = Some env.knows;
                      child = A.NodeScan { label = Some env.person };
                    };
              };
        } );
    ( "walk-to-root",
      A.WalkToRoot
        {
          col = 0;
          rel_label = env.reply_of;
          child = A.NodeScan { label = Some env.post };
        } );
    ( "null-prop-filter",
      A.Filter
        {
          (* posts have no age: Null comparisons must filter out *)
          pred =
            E.Cmp
              ( E.Ge,
                E.Prop { col = 0; kind = E.KNode; key = env.k_age },
                E.Const (Value.Int 0) );
          child = A.NodeScan { label = None };
        } );
    ( "count-scan",
      A.CountAgg { child = A.NodeScan { label = Some env.person } } );
    ( "count-expand",
      A.CountAgg
        {
          child =
            A.Expand
              {
                col = 0;
                dir = A.Out;
                label = Some env.knows;
                child = A.NodeScan { label = Some env.person };
              };
        } );
    ( "group-count-age",
      A.GroupCount
        {
          child =
            A.Project
              {
                exprs = [ E.Prop { col = 0; kind = E.KNode; key = env.k_age } ];
                child = A.NodeScan { label = Some env.person };
              };
        } );
    ( "count-of-groups",
      A.CountAgg
        {
          child =
            A.GroupCount
              {
                child =
                  A.Project
                    {
                      exprs = [ E.Prop { col = 0; kind = E.KNode; key = env.k_name } ];
                      child = A.NodeScan { label = Some env.person };
                    };
              };
        } );
    ( "arith-project",
      A.Project
        {
          exprs =
            [
              E.Add
                ( E.Prop { col = 0; kind = E.KNode; key = env.k_age },
                  E.Const (Value.Int 100) );
              E.Sub (E.Const (Value.Int 0), E.Col 0);
            ];
          child = A.NodeScan { label = Some env.person };
        } );
  ]

let test_jit_matches_interp () =
  let env = mk_env () in
  List.iter (fun (name, plan) -> compare_modes env plan name) (plans env)

let test_jit_matches_interp_o0 () =
  let env = mk_env () in
  List.iter
    (fun (name, plan) -> compare_modes ~level:Passes.O0 env plan (name ^ "@O0"))
    (plans env)

let test_jit_matches_interp_o1 () =
  let env = mk_env () in
  List.iter
    (fun (name, plan) -> compare_modes ~level:Passes.O1 env plan (name ^ "@O1"))
    (plans env)

let test_jit_with_params () =
  let env = mk_env () in
  let plan =
    A.EndPoint
      {
        col = 1;
        which = `Dst;
        child =
          A.Expand
            {
              col = 0;
              dir = A.Out;
              label = Some env.knows;
              child = A.NodeById { id = E.Param 0 };
            };
      }
  in
  compare_modes ~params:[| Value.Int env.persons.(4) |] env plan "param node-by-id"

let test_jit_breaker_suffix () =
  let env = mk_env () in
  (* Sort/Limit run in the AOT suffix; the pipeline below is compiled *)
  let plan =
    A.Limit
      {
        n = 3;
        child =
          A.Sort
            {
              keys = [ (E.Col 0, `Asc) ];
              child =
                A.Project
                  {
                    exprs = [ E.Prop { col = 0; kind = E.KNode; key = env.k_id } ];
                    child = A.NodeScan { label = Some env.person };
                  };
            };
      }
  in
  with_source env (fun g ->
      let expected, _ = Engine.run ~mode:Engine.Interp g ~params:no_params plan in
      let actual, report = Engine.run ~mode:Engine.Jit g ~params:no_params plan in
      Alcotest.(check bool) "no fallback" false report.Engine.fell_back;
      Alcotest.(check bool) "ordered equality" true (expected = actual))

let test_jit_count () =
  let env = mk_env () in
  let plan =
    A.CountAgg
      {
        child =
          A.Expand
            {
              col = 0;
              dir = A.Out;
              label = Some env.knows;
              child = A.NodeScan { label = Some env.person };
            };
      }
  in
  compare_modes env plan "count of expand"

let test_jit_index_scan () =
  let env = mk_env () in
  let pool_ = Storage.Graph_store.pool (Mvto.store env.mgr) in
  let idx =
    Gindex.Index.create pool_ ~placement:Gindex.Node_store.Hybrid
      ~label:env.person ~key:env.k_id
  in
  Array.iteri (fun i id -> Gindex.Index.insert idx (Value.Int (1000 + i)) id) env.persons;
  let indexes ~label ~key =
    if label = env.person && key = env.k_id then Some idx else None
  in
  let plan =
    A.EndPoint
      {
        col = 1;
        which = `Dst;
        child =
          A.Expand
            {
              col = 0;
              dir = A.Out;
              label = Some env.knows;
              child =
                A.IndexScan { label = env.person; key = env.k_id; value = E.Param 0 };
            };
      }
  in
  with_source_idx env ~indexes (fun g ->
      let params = [| Value.Int 1010 |] in
      let expected, _ = Engine.run ~mode:Engine.Interp g ~params plan in
      let actual, report = Engine.run ~mode:Engine.Jit g ~params plan in
      Alcotest.(check bool) "no fallback" false report.Engine.fell_back;
      check_same_rows "index scan jit" expected actual)

let test_jit_update_plan () =
  let env = mk_env () in
  (* run the update through the JIT inside a transaction, then verify *)
  Mvto.with_txn env.mgr (fun txn ->
      let g = Query.Source.of_mvcc env.mgr txn in
      let plan =
        A.CreateNode
          {
            label = env.person;
            props = [ (env.k_id, E.Const (Value.Int 31337)) ];
            child = A.Unit;
          }
      in
      let rows, report = Engine.run ~mode:Engine.Jit g ~params:no_params plan in
      Alcotest.(check bool) "no fallback" false report.Engine.fell_back;
      Alcotest.(check int) "one row" 1 (List.length rows));
  with_source env (fun g ->
      let check_plan =
        A.Filter
          {
            pred =
              E.Cmp
                ( E.Eq,
                  E.Prop { col = 0; kind = E.KNode; key = env.k_id },
                  E.Const (Value.Int 31337) );
            child = A.NodeScan { label = Some env.person };
          }
      in
      Alcotest.(check int) "created via jit" 1
        (List.length (I.run g ~params:no_params check_plan)))

let test_jit_parallel_matches () =
  let env = mk_env ~n:150 () in
  let pool = Exec.Task_pool.create ~media:env.media ~nworkers:4 () in
  let plan =
    A.Expand
      {
        col = 0;
        dir = A.Out;
        label = Some env.knows;
        child = A.NodeScan { label = Some env.person };
      }
  in
  with_source env (fun g ->
      let expected, _ = Engine.run ~mode:Engine.Interp g ~params:no_params plan in
      let actual, _ = Engine.run ~pool ~mode:Engine.Jit g ~params:no_params plan in
      check_same_rows "parallel jit" expected actual);
  Exec.Task_pool.shutdown pool

let test_adaptive_matches () =
  let env = mk_env ~n:150 () in
  let pool = Exec.Task_pool.create ~media:env.media ~nworkers:4 () in
  let plan =
    A.Filter
      {
        pred =
          E.Cmp
            ( E.Gt,
              E.Prop { col = 0; kind = E.KNode; key = env.k_age },
              E.Const (Value.Int 25) );
        child = A.NodeScan { label = Some env.person };
      }
  in
  with_source env (fun g ->
      let expected, _ = Engine.run ~mode:Engine.Interp g ~params:no_params plan in
      let actual, report =
        Engine.run ~pool ~mode:Engine.Adaptive g ~params:no_params plan
      in
      check_same_rows "adaptive rows" expected actual;
      Alcotest.(check int) "all morsels accounted" (g.Query.Source.node_chunks ())
        (report.Engine.morsels_interp + report.Engine.morsels_jit));
  Exec.Task_pool.shutdown pool

let test_adaptive_eventually_switches () =
  (* with a zero-latency backend and wall-emulated PMem latency, the tail
     of a long scan must run compiled; the graph is bulk-loaded through
     the raw store to keep it out of a single giant transaction *)
  let module G = Storage.Graph_store in
  let media = Pmem.Media.create () in
  let pool = Pmem.Pool.create ~kind:`Pmem ~media ~id:1 ~size:(1 lsl 26) () in
  let g = G.format ~chunk_capacity:8 pool in
  let label = G.code g "Person" in
  for _ = 1 to 20_000 do
    ignore (G.insert_node g { (Storage.Layout.empty_node ()) with label })
  done;
  let mgr = Mvcc.Mvto.create g in
  let config =
    { Engine.default_config with backend_latency_ns = 0; backend_latency_per_op_ns = 0 }
  in
  Pmem.Media.set_spin media true;
  Fun.protect ~finally:(fun () -> Pmem.Media.set_spin media false)
  @@ fun () ->
  let plan = A.NodeScan { label = Some label } in
  Mvcc.Mvto.with_txn mgr (fun txn ->
      let src = Query.Source.of_mvcc mgr txn in
      let _, report =
        Engine.run ~config ~mode:Engine.Adaptive src ~params:no_params plan
      in
      Alcotest.(check bool)
        (Printf.sprintf "some jit morsels (interp=%d jit=%d)"
           report.Engine.morsels_interp report.Engine.morsels_jit)
        true
        (report.Engine.morsels_jit > 0))

let test_unsupported_falls_back () =
  let env = mk_env () in
  let plan = A.RelScan { label = Some env.knows } in
  with_source env (fun g ->
      let expected, _ = Engine.run ~mode:Engine.Interp g ~params:no_params plan in
      let actual, report = Engine.run ~mode:Engine.Jit g ~params:no_params plan in
      Alcotest.(check bool) "fell back" true report.Engine.fell_back;
      check_same_rows "fallback rows" expected actual)

(* --- passes ------------------------------------------------------------------ *)

let codegen_plan env plan =
  ignore env;
  Codegen.codegen plan

let test_passes_reduce_instrs () =
  let env = mk_env () in
  let plan =
    A.Filter
      {
        pred =
          E.Cmp
            ( E.Gt,
              E.Prop { col = 0; kind = E.KNode; key = env.k_age },
              E.Add (E.Const (Value.Int 20), E.Const (Value.Int 10)) );
        child = A.NodeScan { label = Some env.person };
      }
  in
  let raw = codegen_plan env plan in
  let raw_count = Ir.instr_count raw in
  let opt = Passes.optimize ~level:Passes.O1 (codegen_plan env plan) in
  let opt_count = Ir.instr_count opt in
  Alcotest.(check bool)
    (Printf.sprintf "O1 shrinks IR (%d -> %d)" raw_count opt_count)
    true (opt_count < raw_count);
  (* no Load/Store survives mem2reg *)
  Array.iter
    (fun b ->
      List.iter
        (function
          | Ir.Load _ | Ir.Store _ -> Alcotest.fail "stack slot survived mem2reg"
          | _ -> ())
        b.Ir.instrs)
    opt.Ir.blocks

let test_unroll_duplicates_loops () =
  let env = mk_env () in
  let plan = A.NodeScan { label = Some env.person } in
  let raw = codegen_plan env plan in
  let nblocks_before = Array.length raw.Ir.blocks in
  Passes.unroll raw;
  Alcotest.(check bool) "unroll adds blocks" true
    (Array.length raw.Ir.blocks > nblocks_before)

let test_constant_fold_condbr () =
  let env = mk_env () in
  (* a tautological filter folds to an unconditional branch *)
  let plan =
    A.Filter
      {
        pred = E.Cmp (E.Eq, E.Const (Value.Int 1), E.Const (Value.Int 1));
        child = A.NodeScan { label = Some env.person };
      }
  in
  let f = Passes.optimize ~level:Passes.O3 (codegen_plan env plan) in
  let has_cond_on_const =
    Array.exists
      (fun b -> match b.Ir.term with Ir.CondBr (Ir.Imm _, _, _) -> true | _ -> false)
      f.Ir.blocks
  in
  Alcotest.(check bool) "no condbr on constants" false has_cond_on_const;
  (* and it still runs correctly *)
  compare_modes ~level:Passes.O3 env plan "tautology"

let test_dce_keeps_semantics () =
  let env = mk_env () in
  (* project only one of two computed values: the other is dead *)
  let plan =
    A.Project
      {
        exprs = [ E.Prop { col = 0; kind = E.KNode; key = env.k_id } ];
        child = A.NodeScan { label = Some env.person };
      }
  in
  compare_modes ~level:Passes.O3 env plan "dce project"

let test_ir_serialization_roundtrip () =
  let env = mk_env () in
  let plan =
    A.Expand
      {
        col = 0;
        dir = A.Out;
        label = Some env.knows;
        child = A.NodeScan { label = Some env.person };
      }
  in
  let f = Passes.optimize (codegen_plan env plan) in
  let f' = Ir.of_string (Ir.to_string f) in
  Alcotest.(check int) "same blocks" (Array.length f.Ir.blocks)
    (Array.length f'.Ir.blocks);
  Alcotest.(check int) "same instr count" (Ir.instr_count f) (Ir.instr_count f');
  (* re-emitted code runs and matches *)
  with_source env (fun g ->
      let expected, _ = Engine.run ~mode:Engine.Interp g ~params:no_params plan in
      let compiled = Emit.emit f' in
      let acc = ref [] in
      compiled.Emit.run
        {
          Emit.g;
          params = no_params;
          sink = (fun row -> acc := row :: !acc);
          chunk_lo = 0;
          chunk_hi = -1;
          nchunks = g.Query.Source.node_chunks ();
          prof = None;
        };
      check_same_rows "reloaded ir" expected !acc)

(* --- persistent cache ----------------------------------------------------------- *)

let test_cache_roundtrip () =
  let env = mk_env () in
  let pool_ = Storage.Graph_store.pool (Mvto.store env.mgr) in
  let cache = Jit.Cache.create pool_ ~root_slot:5 () in
  let plan = A.NodeScan { label = Some env.person } in
  with_source env (fun g ->
      let _, r1 = Engine.run ~cache ~mode:Engine.Jit g ~params:no_params plan in
      Alcotest.(check bool) "first run misses" false r1.Engine.cache_hit;
      let rows2, r2 = Engine.run ~cache ~mode:Engine.Jit g ~params:no_params plan in
      Alcotest.(check bool) "second run hits" true r2.Engine.cache_hit;
      Alcotest.(check int) "rows" (Array.length env.persons) (List.length rows2);
      Alcotest.(check bool) "hit is cheaper (modeled)" true
        (r2.Engine.compile_modeled_ns < r1.Engine.compile_modeled_ns))

let test_cache_survives_crash () =
  let env = mk_env () in
  let pool_ = Storage.Graph_store.pool (Mvto.store env.mgr) in
  let cache = Jit.Cache.create pool_ ~root_slot:5 () in
  let plan = A.NodeScan { label = Some env.person } in
  with_source env (fun g ->
      ignore (Engine.run ~cache ~mode:Engine.Jit g ~params:no_params plan));
  Pmem.Pool.crash pool_;
  (* note: the graph itself is durable too, but here we only exercise the
     cache: reattach and expect a hit *)
  match Jit.Cache.attach pool_ ~root_slot:5 with
  | None -> Alcotest.fail "cache lost"
  | Some cache' ->
      let g' = Storage.Graph_store.open_ pool_ in
      let mgr' = Mvto.recover g' in
      Mvto.with_txn mgr' (fun txn ->
          let g = Query.Source.of_mvcc mgr' txn in
          let rows, report =
            Engine.run ~cache:cache' ~mode:Engine.Jit g ~params:no_params plan
          in
          Alcotest.(check bool) "hit after restart" true report.Engine.cache_hit;
          Alcotest.(check int) "rows after restart" (Array.length env.persons)
            (List.length rows))

let test_cache_store_find_basic () =
  let media = Pmem.Media.create () in
  let pool_ = Pmem.Pool.create ~media ~id:9 ~size:(1 lsl 22) () in
  Pmem.Alloc.format pool_;
  let c = Jit.Cache.create pool_ ~root_slot:0 () in
  Alcotest.(check (option string)) "miss" None (Jit.Cache.find c "nope");
  Jit.Cache.store c "q1" "blob-one";
  Jit.Cache.store c "q2" "blob-two";
  Alcotest.(check (option string)) "hit 1" (Some "blob-one") (Jit.Cache.find c "q1");
  Alcotest.(check (option string)) "hit 2" (Some "blob-two") (Jit.Cache.find c "q2");
  Jit.Cache.store c "q1" "blob-one-v2";
  Alcotest.(check (option string)) "replace" (Some "blob-one-v2") (Jit.Cache.find c "q1");
  Alcotest.(check int) "count" 2 (Jit.Cache.count c)

(* --- random-plan equivalence property --------------------------------------

   Generate random pipelined plans over the shared test graph and check
   that the compiled code agrees with the interpreter at every
   optimisation level.  This is the JIT's strongest correctness net: any
   codegen, pass or emission bug shows up as a row mismatch. *)

let plan_gen env : A.plan QCheck.Gen.t =
  let open QCheck.Gen in
  let leaf =
    oneofl
      [
        A.NodeScan { label = Some env.person };
        A.NodeScan { label = Some env.post };
        A.NodeScan { label = None };
      ]
  in
  (* track the kind of the last slot so generated ops stay well-typed *)
  let prop_keys = [ env.k_id; env.k_age; env.k_name ] in
  let rec grow depth (plan, width, last_kind) =
    if depth <= 0 then return plan
    else
      let filters =
        [
          (fun key c ->
            A.Filter
              {
                pred =
                  E.Cmp
                    ( E.Gt,
                      E.Prop { col = width - 1; kind = last_kind; key },
                      E.Const (Value.Int c) );
                child = plan;
              });
        ]
      in
      let choices =
        (* filter on a property of the last slot *)
        (if last_kind = E.KNode then
           [
             ( 3,
               oneofl prop_keys >>= fun key ->
               int_range 0 2000 >>= fun c ->
               grow (depth - 1)
                 ((List.hd filters) key c, width, last_kind) );
             (* expand out/in *)
             ( 3,
               oneofl [ (A.Out, env.knows); (A.Out, env.likes); (A.In, env.knows) ]
               >>= fun (dir, label) ->
               grow (depth - 1)
                 ( A.Expand { col = width - 1; dir; label = Some label; child = plan },
                   width + 1,
                   E.KRel ) );
           ]
         else
           [
             (* endpoint back to a node *)
             ( 4,
               oneofl [ `Src; `Dst ] >>= fun which ->
               grow (depth - 1)
                 ( A.EndPoint { col = width - 1; which; child = plan },
                   width + 1,
                   E.KNode ) );
           ])
        @ [
            (* stop growing *)
            (1, return plan);
          ]
      in
      frequency choices
  in
  int_range 1 4 >>= fun depth ->
  leaf >>= fun l -> grow depth (l, 1, E.KNode)

(* --- aggregation breakers: serial == parallel == jit -----------------------

   Aggregations have three execution strategies that must agree on the
   exact multiset of rows: a serial fold (Interp, no pool), per-morsel
   partial states merged at the barrier in chunk order (Interp + pool),
   and an AOT tail over the compiled pipeline (Jit). *)

let agg_plan_gen env : A.plan QCheck.Gen.t =
  let open QCheck.Gen in
  let group_by key core =
    A.GroupCount
      {
        child =
          A.Project
            { exprs = [ E.Prop { col = 0; kind = E.KNode; key } ]; child = core };
      }
  in
  plan_gen env >>= fun core ->
  oneofl
    [
      A.CountAgg { child = core };
      group_by env.k_age core;
      group_by env.k_name core;
      A.CountAgg { child = group_by env.k_age core };
      core;
    ]

let test_agg_parallel_equivalence () =
  let env = mk_env ~n:80 ~m:25 () in
  let mk n = Exec.Task_pool.create ~media:env.media ~nworkers:n () in
  let pools = [ mk 2; mk 4 ] in
  Fun.protect ~finally:(fun () -> List.iter Exec.Task_pool.shutdown pools)
  @@ fun () ->
  let rand = Random.State.make [| 0xA66; 0x5eed |] in
  let plans = QCheck.Gen.generate ~n:50 ~rand (agg_plan_gen env) in
  let config = { Engine.default_config with prop_tag = prop_tag env } in
  with_source env (fun g ->
      List.iter
        (fun plan ->
          let name = A.fingerprint plan in
          let serial, _ = Engine.run ~mode:Engine.Interp g ~params:no_params plan in
          List.iter
            (fun pool ->
              let par, _ =
                Engine.run ~pool ~mode:Engine.Interp g ~params:no_params plan
              in
              check_same_rows
                (Printf.sprintf "parallel(%d) %s" (Exec.Task_pool.size pool) name)
                serial par)
            pools;
          let jit, report =
            Engine.run ~config ~pool:(List.nth pools 1) ~mode:Engine.Jit g
              ~params:no_params plan
          in
          Alcotest.(check bool) (name ^ ": no fallback") false
            report.Engine.fell_back;
          check_same_rows ("jit " ^ name) serial jit)
        plans)

let test_random_plan_equivalence =
  let env = mk_env ~n:60 ~m:20 () in
  QCheck.Test.make ~name:"random plans: jit == interp at O0/O1/O3" ~count:60
    (QCheck.make ~print:A.fingerprint (plan_gen env))
    (fun plan ->
      with_source env (fun g ->
          let expected, _ = Engine.run ~mode:Engine.Interp g ~params:no_params plan in
          List.for_all
            (fun level ->
              let config =
                { Engine.default_config with opt_level = level; prop_tag = prop_tag env }
              in
              let actual, report =
                Engine.run ~config ~mode:Engine.Jit g ~params:no_params plan
              in
              (not report.Engine.fell_back)
              && norm expected = norm actual)
            [ Passes.O0; Passes.O1; Passes.O3 ]))

(* --- five-way differential battery ------------------------------------------

   Randomized aggregation-shaped plans, each point asserting the five
   execution strategies agree on the exact multiset of rows:

     serial interp == parallel interp(2,4) == jit serial
                   == jit parallel(2,4)    == adaptive (pooled + serial)

   Points rotate over three environments - standard, empty tail label
   (zero-row pipelines), and a skewed chunk distribution (small chunks,
   a band of deleted nodes, so some morsels are empty) - and draw the
   modeled backend latency per point so the adaptive hot-swap lands at
   different morsels (zero: compiled early; large: pure-interp tail).
   Each environment carries a persistent cache, so repeated fingerprints
   also exercise the capture/replay tier mid-battery.  The point count
   scales with JIT_POINTS (default 40; the nightly sweep raises it). *)

let jit_points =
  match Sys.getenv_opt "JIT_POINTS" with
  | Some s -> ( try max 1 (int_of_string s) with _ -> 40)
  | None -> 40

let env_cache env ~root_slot =
  Jit.Cache.create (Storage.Graph_store.pool (Mvto.store env.mgr)) ~root_slot ()

let test_five_way_battery () =
  let seed = 0xA117 in
  let skew = mk_env ~n:90 ~m:5 ~chunk_capacity:8 () in
  (* skew: kill two of every three persons so many chunks scan empty *)
  Mvto.with_txn skew.mgr (fun txn ->
      Array.iteri
        (fun i p ->
          if i mod 3 <> 0 then Mvto.delete skew.mgr txn (Mvcc.Version.Node, p))
        skew.persons);
  let envs =
    [
      ("std", mk_env ~n:60 ~m:20 ());
      ("empty", mk_env ~n:10 ~m:0 ());
      ("skew", skew);
    ]
  in
  let arms =
    List.map
      (fun (name, env) ->
        ( name,
          env,
          env_cache env ~root_slot:5,
          Exec.Task_pool.create ~media:env.media ~nworkers:2 (),
          Exec.Task_pool.create ~media:env.media ~nworkers:4 () ))
      envs
  in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun (_, _, _, p2, p4) ->
          Exec.Task_pool.shutdown p2;
          Exec.Task_pool.shutdown p4)
        arms)
  @@ fun () ->
  let rand = Random.State.make [| seed |] in
  for point = 1 to jit_points do
    let name, env, cache, p2, p4 =
      List.nth arms (point mod List.length arms)
    in
    let plan = QCheck.Gen.generate1 ~rand (agg_plan_gen env) in
    (* draw the modeled compile latency: moves the adaptive swap point *)
    let backend_latency_ns =
      match point mod 3 with 0 -> 0 | 1 -> 400_000 | _ -> 4_000_000
    in
    let config =
      {
        Engine.default_config with
        prop_tag = prop_tag env;
        backend_latency_ns;
        backend_latency_per_op_ns = 50_000;
      }
    in
    let label tier =
      Printf.sprintf "[seed=%d] point %d/%s %s: %s" seed point name
        (A.fingerprint plan) tier
    in
    with_source env (fun g ->
        let expected, _ =
          Engine.run ~mode:Engine.Interp g ~params:no_params plan
        in
        List.iter
          (fun (tier, pool) ->
            let rows, _ =
              Engine.run ?pool ~mode:Engine.Interp g ~params:no_params plan
            in
            check_same_rows (label tier) expected rows)
          [ ("interp(2)", Some p2); ("interp(4)", Some p4) ];
        List.iter
          (fun (tier, pool) ->
            let rows, report =
              Engine.run ?pool ~cache ~media:env.media ~config
                ~mode:Engine.Jit g ~params:no_params plan
            in
            Alcotest.(check bool) (label (tier ^ " no fallback")) false
              report.Engine.fell_back;
            check_same_rows (label tier) expected rows)
          [ ("jit serial", None); ("jit(2)", Some p2); ("jit(4)", Some p4) ];
        List.iter
          (fun (tier, pool) ->
            let rows, report =
              Engine.run ?pool ~cache ~media:env.media ~config
                ~mode:Engine.Adaptive g ~params:no_params plan
            in
            check_same_rows (label tier) expected rows;
            Alcotest.(check int)
              (label (tier ^ " morsel accounting"))
              (max 1 (g.Query.Source.node_chunks ()))
              (report.Engine.morsels_interp + report.Engine.morsels_jit))
          [ ("adaptive(4)", Some p4); ("adaptive serial", None) ])
  done

(* --- cache key: parallelism degree and profiling flag ------------------------ *)

let test_cache_key_degree_and_prof () =
  let env = mk_env () in
  let plan = A.NodeScan { label = Some env.person } in
  let dc = Engine.default_config in
  Alcotest.(check bool) "degree is part of the key" false
    (Engine.cache_key dc plan = Engine.cache_key ~degree:4 dc plan);
  Alcotest.(check bool) "profiling flag is part of the key" false
    (Engine.cache_key dc plan = Engine.cache_key ~profiled:true dc plan);
  let cache = env_cache env ~root_slot:5 in
  let pool = Exec.Task_pool.create ~media:env.media ~nworkers:4 () in
  Fun.protect ~finally:(fun () -> Exec.Task_pool.shutdown pool)
  @@ fun () ->
  with_source env (fun g ->
      let rows1, r1 = Engine.run ~cache ~mode:Engine.Jit g ~params:no_params plan in
      Alcotest.(check bool) "degree 1 compiles" false r1.Engine.cache_hit;
      (* flipping the degree must compile a distinct entry, not reuse w1 *)
      let rows4, r4 =
        Engine.run ~cache ~pool ~mode:Engine.Jit g ~params:no_params plan
      in
      Alcotest.(check bool) "degree 4 is a distinct entry" false
        r4.Engine.cache_hit;
      check_same_rows "identical results across degrees" rows1 rows4;
      Alcotest.(check int) "two persistent entries" 2 (Jit.Cache.count cache);
      (* steady state: each degree replays its own captured batch *)
      let _, r1' = Engine.run ~cache ~mode:Engine.Jit g ~params:no_params plan in
      Alcotest.(check bool) "degree 1 replays" true r1'.Engine.replay_hit;
      let _, r4' =
        Engine.run ~cache ~pool ~mode:Engine.Jit g ~params:no_params plan
      in
      Alcotest.(check bool) "degree 4 replays" true r4'.Engine.replay_hit)

(* --- capture/replay tier ------------------------------------------------------ *)

let test_replay_steady_state () =
  let env = mk_env ~n:50 () in
  let cache = env_cache env ~root_slot:5 in
  let pool = Exec.Task_pool.create ~media:env.media ~nworkers:2 () in
  Fun.protect ~finally:(fun () -> Exec.Task_pool.shutdown pool)
  @@ fun () ->
  let config = { Engine.default_config with prop_tag = prop_tag env } in
  let plan =
    A.CountAgg
      {
        child =
          A.Filter
            {
              pred =
                E.Cmp
                  ( E.Gt,
                    E.Prop { col = 0; kind = E.KNode; key = env.k_age },
                    E.Param 0 );
              child = A.NodeScan { label = Some env.person };
            };
      }
  in
  with_source env (fun g ->
      let run ?pool params =
        Engine.run ?pool ~cache ~media:env.media ~config ~mode:Engine.Jit g
          ~params plan
      in
      let rows1, r1 = run ~pool [| Value.Int 30 |] in
      Alcotest.(check bool) "first run captures" false r1.Engine.replay_hit;
      let rows2, r2 = run ~pool [| Value.Int 30 |] in
      Alcotest.(check bool) "second run replays" true r2.Engine.replay_hit;
      check_same_rows "replayed rows identical" rows1 rows2;
      (* replay rebinds params: same captured batch, different answer *)
      let rows3, r3 = run ~pool [| Value.Int 60 |] in
      Alcotest.(check bool) "param change still replays" true
        r3.Engine.replay_hit;
      let expected3, _ =
        Engine.run ~mode:Engine.Interp g ~params:[| Value.Int 60 |] plan
      in
      check_same_rows "rebound params produce interp answer" expected3 rows3;
      (* adaptive shares the replay table: it serves compiled immediately *)
      let rows4, r4 =
        Engine.run ~pool ~cache ~media:env.media ~config ~mode:Engine.Adaptive
          g ~params:[| Value.Int 30 |] plan
      in
      Alcotest.(check bool) "adaptive replays the jit capture" true
        r4.Engine.replay_hit;
      check_same_rows "adaptive replay rows" rows1 rows4)

let test_replay_volatile_across_restart () =
  let env = mk_env () in
  let pool_ = Storage.Graph_store.pool (Mvto.store env.mgr) in
  let cache = Jit.Cache.create pool_ ~root_slot:5 () in
  let plan = A.NodeScan { label = Some env.person } in
  with_source env (fun g ->
      ignore (Engine.run ~cache ~mode:Engine.Jit g ~params:no_params plan);
      let _, r2 = Engine.run ~cache ~mode:Engine.Jit g ~params:no_params plan in
      Alcotest.(check bool) "replay before crash" true r2.Engine.replay_hit);
  Pmem.Pool.crash pool_;
  match Jit.Cache.attach pool_ ~root_slot:5 with
  | None -> Alcotest.fail "cache lost"
  | Some cache' ->
      let g' = Storage.Graph_store.open_ pool_ in
      let mgr' = Mvto.recover g' in
      Mvto.with_txn mgr' (fun txn ->
          let g = Query.Source.of_mvcc mgr' txn in
          let rows1, r1 =
            Engine.run ~cache:cache' ~mode:Engine.Jit g ~params:no_params plan
          in
          (* the blob survived, the captured closures did not: replay is
             a volatile tier over the persistent cache *)
          Alcotest.(check bool) "persistent cache hit" true r1.Engine.cache_hit;
          Alcotest.(check bool) "replay table is volatile" false
            r1.Engine.replay_hit;
          let rows2, r2 =
            Engine.run ~cache:cache' ~mode:Engine.Jit g ~params:no_params plan
          in
          Alcotest.(check bool) "recaptured after restart" true
            r2.Engine.replay_hit;
          check_same_rows "post-restart replay rows" rows1 rows2)

(* --- ProfHook parity: exact counts even morsel-parallel ---------------------- *)

let test_profhook_parallel_parity () =
  let env = mk_env ~n:80 ~m:25 () in
  let pool = Exec.Task_pool.create ~media:env.media ~nworkers:4 () in
  Fun.protect ~finally:(fun () -> Exec.Task_pool.shutdown pool)
  @@ fun () ->
  let config = { Engine.default_config with prop_tag = prop_tag env } in
  let plans =
    [
      ("count", A.CountAgg { child = A.NodeScan { label = Some env.person } });
      ( "group",
        A.GroupCount
          {
            child =
              A.Project
                {
                  exprs = [ E.Prop { col = 0; kind = E.KNode; key = env.k_age } ];
                  child = A.NodeScan { label = Some env.person };
                };
          } );
      ( "filter-expand",
        A.Expand
          {
            col = 0;
            dir = A.Out;
            label = Some env.knows;
            child =
              A.Filter
                {
                  pred =
                    E.Cmp
                      ( E.Gt,
                        E.Prop { col = 0; kind = E.KNode; key = env.k_age },
                        E.Const (Value.Int 30) );
                  child = A.NodeScan { label = Some env.person };
                };
          } );
    ]
  in
  List.iter
    (fun (name, plan) ->
      with_source env (fun g ->
          let prof_rows mode pool =
            let p = Obs.Profile.create (A.op_names plan) in
            let _, report =
              Engine.run ?pool ~config ~prof:p ~mode g ~params:no_params plan
            in
            Alcotest.(check bool) (name ^ ": no fallback") false
              report.Engine.fell_back;
            Obs.Profile.rows p
          in
          let aot = prof_rows Engine.Interp None in
          let jit = prof_rows Engine.Jit (Some pool) in
          Alcotest.(check int) (name ^ ": same operator rows")
            (List.length aot) (List.length jit);
          List.iter2
            (fun (a : Obs.Profile.row) (j : Obs.Profile.row) ->
              Alcotest.(check string)
                (Printf.sprintf "%s: op %d name" name a.Obs.Profile.id)
                a.Obs.Profile.op j.Obs.Profile.op;
              Alcotest.(check int)
                (Printf.sprintf
                   "%s: op %d (%s) tuples, interp serial vs compiled-parallel"
                   name a.Obs.Profile.id a.Obs.Profile.op)
                a.Obs.Profile.tuples j.Obs.Profile.tuples)
            aot jit))
    plans

(* --- crash interaction: compiled-parallel readers under power failure --------

   Writers mutate through MVTO while a reader domain hammers compiled
   morsel-parallel aggregations (first execution compiles and captures,
   the rest replay) - then a fault plan cuts the persist stream at a
   randomized store/flush/fence ordinal, possibly mid-barrier or
   mid-replay.  After recovery the I1-I5 oracle must hold (the JIT tier
   must never affect durability), the replay tier must repopulate, and
   compiled-parallel answers must equal serial interpretation. *)

let test_crash_with_compiled_parallel_readers () =
  let module CE = Pmem.Crash_explorer in
  let module Faults = Pmem.Faults in
  let seed = 0xC4A5 in
  let points = max 2 (jit_points / 10) in
  let ops = 14 in
  let fresh () =
    let db =
      Core.create ~mode:`Pmem ~pool_size:(1 lsl 24) ~chunk_capacity:16 ()
    in
    ignore (Core.create_index db ~label:"N" ~prop:"id" ());
    let model = Crash_oracle.empty_model () in
    (db, model)
  in
  let pending = ref None in
  let step p f =
    pending := Some p;
    f ();
    pending := None
  in
  let next_ldbc = ref 10_000 in
  let run_mix db model rng =
    next_ldbc := 10_000;
    for _ = 1 to ops do
      if Random.State.int rng 3 = 0 && model.Crash_oracle.nodes <> [] then begin
        (* read-modify-write on a committed node's "v" *)
        let id, v =
          List.nth model.Crash_oracle.nodes
            (Random.State.int rng (List.length model.Crash_oracle.nodes))
        in
        step (Crash_oracle.Update [ (id, v, v + 1) ]) (fun () ->
            Core.with_txn db (fun txn ->
                Core.set_node_prop db txn id ~key:"v" (Value.Int (v + 1)));
            model.Crash_oracle.nodes <-
              List.map
                (fun (i, x) -> if i = id then (i, v + 1) else (i, x))
                model.Crash_oracle.nodes)
      end
      else begin
        let ldbc = !next_ldbc in
        incr next_ldbc;
        step (Crash_oracle.Insert { ldbc; v = ldbc; rel_dsts = [] }) (fun () ->
            let id =
              Core.with_txn db (fun txn ->
                  Core.create_node db txn ~label:"N"
                    ~props:[ ("id", Value.Int ldbc); ("v", Value.Int ldbc) ])
            in
            model.Crash_oracle.nodes <-
              (id, ldbc) :: model.Crash_oracle.nodes)
      end
    done
  in
  (* one clean run records the persist trace the cut points sample *)
  let db0, model0 = fresh () in
  let trace =
    CE.record (Core.media db0) (fun () ->
        run_mix db0 model0 (Random.State.make [| seed |]))
  in
  let total = CE.stores trace + CE.flushes trace + CE.fences trace in
  Alcotest.(check bool) "persist trace nonempty" true (total > 0);
  let rng = Random.State.make [| seed; 0xBA77 |] in
  for point = 1 to points do
    let j = Random.State.int rng total in
    let kind, ordinal =
      let ns = CE.stores trace and nf = CE.flushes trace in
      if j < ns then (`Write, j + 1)
      else if j < ns + nf then (`Flush, j - ns + 1)
      else (`Fence, j - ns - nf + 1)
    in
    let db, model = fresh () in
    Core.set_workers db 4;
    let count_plan =
      A.CountAgg { child = A.NodeScan { label = Some (Core.code db "N") } }
    in
    let stop = Atomic.make false in
    (* the reader races the crash: compiled-parallel probes, replays
       after the first, any abort or fault mid-barrier is survivable *)
    let reader =
      Domain.spawn (fun () ->
          let n = ref 0 in
          while not (Atomic.get stop) do
            (try
               ignore
                 (Core.query db ~mode:Engine.Jit ~parallel:true
                    ~params:no_params count_plan)
             with _ -> ());
            incr n
          done;
          !n)
    in
    let media = Core.media db and pool_ = Core.pool db in
    Faults.install ~pool:pool_ media
      (Faults.plan ~crash_at:(kind, ordinal) ());
    let fired =
      Fun.protect
        ~finally:(fun () ->
          Atomic.set stop true;
          ignore (Domain.join reader);
          Faults.uninstall media)
      @@ fun () ->
      match run_mix db model (Random.State.make [| seed |]) with
      | () -> false
      | exception Faults.Crash_point _ -> true
    in
    let lbl what =
      Printf.sprintf "[seed=%d] point %d (%s #%d, fired=%b): %s" seed point
        (match kind with `Write -> "store" | `Flush -> "clwb" | _ -> "sfence")
        ordinal fired what
    in
    Core.shutdown db;
    Core.crash db;
    let db = Core.reopen ~recovery_threads:2 db in
    (* the pending delta only matters if the crash actually cut the mix *)
    let pending = if fired then !pending else None in
    Crash_oracle.check ~vkey:"v" ~index_label:"N" ~index_key:"id" ?pending db
      model;
    (* JIT tier after recovery: compiled-parallel == interp, and the
       (volatile) replay tier recaptures from scratch *)
    Core.set_workers db 4;
    let count_plan =
      A.CountAgg { child = A.NodeScan { label = Some (Core.code db "N") } }
    in
    let expected, _ =
      Core.query db ~mode:Engine.Interp ~params:no_params count_plan
    in
    let rows1, r1 =
      Core.query db ~mode:Engine.Jit ~parallel:true ~params:no_params
        count_plan
    in
    Alcotest.(check bool) (lbl "replay table empty after recovery") false
      r1.Engine.replay_hit;
    check_same_rows (lbl "compiled-parallel == interp after recovery")
      expected rows1;
    let rows2, r2 =
      Core.query db ~mode:Engine.Jit ~parallel:true ~params:no_params
        count_plan
    in
    Alcotest.(check bool) (lbl "replay recaptures after recovery") true
      r2.Engine.replay_hit;
    check_same_rows (lbl "replayed rows stable") expected rows2;
    Core.shutdown db
  done

let () =
  Alcotest.run "jit"
    [
      ( "equivalence",
        [
          Alcotest.test_case "jit == interp (O3)" `Quick test_jit_matches_interp;
          Alcotest.test_case "jit == interp (O0)" `Quick test_jit_matches_interp_o0;
          Alcotest.test_case "jit == interp (O1)" `Quick test_jit_matches_interp_o1;
          Alcotest.test_case "with params" `Quick test_jit_with_params;
          Alcotest.test_case "breaker suffix" `Quick test_jit_breaker_suffix;
          Alcotest.test_case "count" `Quick test_jit_count;
          Alcotest.test_case "index scan" `Quick test_jit_index_scan;
          Alcotest.test_case "update plan" `Quick test_jit_update_plan;
          Alcotest.test_case "parallel" `Slow test_jit_parallel_matches;
          Alcotest.test_case "agg: serial == parallel == jit" `Slow
            test_agg_parallel_equivalence;
          Alcotest.test_case "five-way battery" `Slow test_five_way_battery;
          Alcotest.test_case "unsupported falls back" `Quick
            test_unsupported_falls_back;
        ] );
      ( "replay",
        [
          Alcotest.test_case "steady state + param rebind" `Quick
            test_replay_steady_state;
          Alcotest.test_case "volatile across restart" `Quick
            test_replay_volatile_across_restart;
          Alcotest.test_case "profhook parity (parallel)" `Slow
            test_profhook_parallel_parity;
          Alcotest.test_case "crash with compiled-parallel readers" `Slow
            test_crash_with_compiled_parallel_readers;
        ] );
      ( "adaptive",
        [
          Alcotest.test_case "matches interp" `Slow test_adaptive_matches;
          Alcotest.test_case "eventually switches" `Slow
            test_adaptive_eventually_switches;
        ] );
      ( "passes",
        [
          Alcotest.test_case "reduce instrs + mem2reg" `Quick test_passes_reduce_instrs;
          Alcotest.test_case "unroll duplicates loops" `Quick
            test_unroll_duplicates_loops;
          Alcotest.test_case "constant fold condbr" `Quick test_constant_fold_condbr;
          Alcotest.test_case "dce keeps semantics" `Quick test_dce_keeps_semantics;
          Alcotest.test_case "ir serialization" `Quick test_ir_serialization_roundtrip;
        ] );
      ( "cache",
        [
          Alcotest.test_case "store/find" `Quick test_cache_store_find_basic;
          Alcotest.test_case "engine roundtrip" `Quick test_cache_roundtrip;
          Alcotest.test_case "survives crash" `Quick test_cache_survives_crash;
          Alcotest.test_case "key: degree + prof flag" `Quick
            test_cache_key_degree_and_prof;
        ] );
      ( "property",
        [ QCheck_alcotest.to_alcotest ~long:false test_random_plan_equivalence ] );
    ]
