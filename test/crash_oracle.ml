(* Reusable recovery-invariant oracle, factored out of test_crash.ml so the
   random crash storms and the exhaustive crash-schedule sweeps check the
   same properties.

   Invariants after every recovery:
   I1  every transaction reported committed before the crash is fully
       visible (all its effects), and no uncommitted effect is;
   I2  no record slot is leaked into visibility: every live node/rel is
       one we committed (or the crash-pending transaction's, atomically);
   I3  adjacency lists are structurally sound (every reachable rel id is
       live and points back to live endpoints);
   I4  all secondary indexes agree with a full table scan after recovery;
   I5  the engine remains fully operational (insert/query/commit).

   A crash can land *inside* a commit: after the undo log's invalidation
   (the linearization point) the transaction is durable even though the
   workload never saw the commit return.  The oracle therefore accepts an
   optional [pending] delta - the one transaction in flight at the crash -
   and checks that recovery applied it either completely or not at all.

   The oracle is workload-parametric: [vkey] names the integer property
   tracked per node (default "v"), and [index_label]/[index_key] name the
   secondary index to audit (default "N"/"id"; nodes of other labels are
   skipped).  This lets the same invariants cover both the synthetic
   counter workload and SNB-shaped update mixes, where "id" is the only
   property every entity carries. *)

module Value = Storage.Value
module G = Storage.Graph_store
module Mvto = Mvcc.Mvto

type model = {
  mutable nodes : (int * int) list; (* node id, expected [vkey] prop *)
  mutable rels : (int * int * int) list; (* rel id, src, dst *)
}

let empty_model () = { nodes = []; rels = [] }

(* The transaction in flight when the power failed.  [Insert] is
   identified by its "id" property because the crash may have prevented
   the workload from learning the assigned slot; it may carry any number
   of outgoing relationships created in the same transaction (e.g. an
   SNB post insert also links the creator).  [AddRels] is a
   relationship-only transaction between pre-existing nodes (e.g. an SNB
   add-friendship). *)
type delta =
  | Insert of { ldbc : int; v : int; rel_dsts : int list }
  | Update of (int * int * int) list (* node id, old v, new v *)
  | Delete of { node : int }
  | AddRels of (int * int) list (* src, dst *)

(* Decide - from the recovered database alone - whether the pending
   transaction committed, failing on any state compatible with neither
   outcome.  [live]/[live_rels] are the post-recovery visible counts. *)
let pending_applied ~live ~base ~live_rels ~base_rels = function
  | Insert _ ->
      if live = base + 1 then true
      else if live = base then false
      else
        Alcotest.failf "pending insert: %d live nodes, expected %d or %d" live
          base (base + 1)
  | Update _ ->
      if live <> base then
        Alcotest.failf "pending update: %d live nodes, expected %d" live base;
      false (* refined below from the first updated node's value *)
  | Delete _ ->
      if live = base - 1 then true
      else if live = base then false
      else
        Alcotest.failf "pending delete: %d live nodes, expected %d or %d" live
          (base - 1) base
  | AddRels pairs ->
      if live <> base then
        Alcotest.failf "pending add-rels: %d live nodes, expected %d" live base;
      if live_rels = base_rels + List.length pairs then true
      else if live_rels = base_rels then false
      else
        Alcotest.failf "pending add-rels: %d live rels, expected %d or %d"
          live_rels base_rels
          (base_rels + List.length pairs)

let check ?(vkey = "v") ?(index_label = "N") ?(index_key = "id") ?pending db
    (m : model) =
  let g = Core.store db in
  Core.with_txn db (fun txn ->
      let live = ref 0 in
      Mvto.scan_nodes (Core.mgr db) txn (fun _ -> incr live);
      let live_rels = ref 0 in
      Mvto.scan_rels (Core.mgr db) txn (fun _ -> incr live_rels);
      let base = List.length m.nodes in
      let base_rels = List.length m.rels in
      (* Determine the fate of the crash-pending transaction. *)
      let applied =
        match pending with
        | None ->
            if !live <> base then
              Alcotest.failf "ghost nodes: %d live, %d committed" !live base;
            false
        | Some (Update ((id, old_v, new_v) :: _) as p) -> (
            ignore
              (pending_applied ~live:!live ~base ~live_rels:!live_rels
                 ~base_rels p);
            match Core.node_prop db txn id ~key:vkey with
            | Some (Value.Int x) when x = new_v -> true
            | Some (Value.Int x) when x = old_v -> false
            | other ->
                Alcotest.failf "pending update: node %d has %s=%s, not %d or %d"
                  id vkey
                  (match other with
                  | Some x -> Value.to_string x
                  | None -> "missing")
                  old_v new_v)
        | Some p ->
            pending_applied ~live:!live ~base ~live_rels:!live_rels ~base_rels p
      in
      (* Expected post-recovery state given that fate. *)
      let expected_nodes =
        match (pending, applied) with
        | Some (Update ups), true ->
            List.map
              (fun (id, v) ->
                match List.find_opt (fun (i, _, _) -> i = id) ups with
                | Some (_, _, nv) -> (id, nv)
                | None -> (id, v))
              m.nodes
        | Some (Delete { node }), true ->
            List.filter (fun (id, _) -> id <> node) m.nodes
        | _ -> m.nodes
      in
      (* I1: every expected node visible with its exact value.  For a
         pending update this also enforces atomicity: [applied] was
         decided from the first updated node, and every other updated
         node must agree with it. *)
      List.iter
        (fun (id, v) ->
          match Core.node_prop db txn id ~key:vkey with
          | Some (Value.Int v') when v' = v -> ()
          | other ->
              Alcotest.failf "node %d: expected %s=%d got %s" id vkey v
                (match other with
                | Some x -> Value.to_string x
                | None -> "missing"))
        expected_nodes;
      (* An applied pending insert must be visible in full: the one extra
         node carries exactly the pending properties and relationships. *)
      let extra_rels =
        match (pending, applied) with
        | Some (Insert { ldbc; v; rel_dsts }), true -> (
            let extra = ref [] in
            Mvto.scan_nodes (Core.mgr db) txn (fun id ->
                if not (List.mem_assoc id m.nodes) then extra := id :: !extra);
            match !extra with
            | [ id ] ->
                (match Core.node_prop db txn id ~key:"id" with
                | Some (Value.Int l) when l = ldbc -> ()
                | _ -> Alcotest.failf "pending insert: node %d lost id prop" id);
                (match Core.node_prop db txn id ~key:vkey with
                | Some (Value.Int v') when v' = v -> ()
                | _ ->
                    Alcotest.failf "pending insert: node %d lost %s prop" id
                      vkey);
                List.iter
                  (fun dst ->
                    let found = ref 0 in
                    G.iter_out g id (fun rid ->
                        let r = G.read_rel g rid in
                        if r.Storage.Layout.dst = dst then incr found);
                    if !found <> 1 then
                      Alcotest.failf
                        "pending insert: rel %d->%d not applied atomically" id
                        dst)
                  rel_dsts;
                List.length rel_dsts
            | l -> Alcotest.failf "pending insert: %d extra nodes" (List.length l))
        | Some (AddRels pairs), true ->
            List.iter
              (fun (src, dst) ->
                let committed =
                  List.length
                    (List.filter (fun (_, s, d) -> s = src && d = dst) m.rels)
                in
                let found = ref 0 in
                G.iter_out g src (fun rid ->
                    let r = G.read_rel g rid in
                    if r.Storage.Layout.dst = dst then incr found);
                if !found <> committed + 1 then
                  Alcotest.failf
                    "pending add-rel %d->%d not applied atomically (%d found)"
                    src dst !found)
              pairs;
            List.length pairs
        | _ -> 0
      in
      (* I2 for relationships: visible rels are exactly the committed ones
         (plus the applied pending transaction's). *)
      if !live_rels <> base_rels + extra_rels then
        Alcotest.failf "ghost rels: %d live, %d expected" !live_rels
          (base_rels + extra_rels);
      (* I3: adjacency soundness *)
      List.iter
        (fun (id, _) ->
          G.iter_out g id (fun rid ->
              if not (G.rel_live g rid) then
                Alcotest.failf "dangling rel %d in out-list of %d" rid id;
              let r = G.read_rel g rid in
              if not (G.node_live g r.Storage.Layout.src) then
                Alcotest.failf "rel %d has dead src" rid;
              if not (G.node_live g r.Storage.Layout.dst) then
                Alcotest.failf "rel %d has dead dst" rid))
        expected_nodes;
      List.iter
        (fun (rid, src, dst) ->
          if not (G.rel_live g rid) then
            Alcotest.failf "committed rel %d lost" rid;
          let r = G.read_rel g rid in
          if r.Storage.Layout.src <> src || r.Storage.Layout.dst <> dst then
            Alcotest.failf "rel %d endpoints corrupted" rid)
        m.rels);
  (* I4: index agrees with scan (only nodes of the indexed label) *)
  (match
     Core.index_lookup_fn db ~label:(Core.code db index_label)
       ~key:(Core.code db index_key)
   with
  | None -> ()
  | Some idx ->
      let lbl = Core.code db index_label in
      List.iter
        (fun (id, _) ->
          if G.node_label (Core.store db) id = lbl then
            Core.with_txn db (fun txn ->
                match Core.node_prop db txn id ~key:index_key with
                | Some (Value.Int ldbc) ->
                    if
                      not (List.mem id (Gindex.Index.lookup idx (Value.Int ldbc)))
                    then Alcotest.failf "index lost node %d" id
                | _ -> ()))
        m.nodes);
  (* I5: still fully operational *)
  let probe =
    Core.with_txn db (fun txn ->
        Core.create_node db txn ~label:"Probe" ~props:[])
  in
  Core.with_txn db (fun txn -> Core.delete_node db txn probe);
  (* let GC reclaim the probe so node counts stay exact *)
  Core.with_txn db (fun _ -> ())
