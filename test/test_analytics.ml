(* Snapshot-consistent analytics tests.

   Layers:

   - structural export checks on handcrafted graphs (adjacency layout,
     vertex ordering, fingerprint reproducibility) plus the edge cases:
     empty graph, isolated vertices, self-loops, single-chunk tables;

   - a differential battery on seed-pure random graphs and SNB-generated
     graphs: serial kernels must equal the parallel kernels bitwise at
     every tested domain count (the fixed-morsel determinism contract)
     and match the textbook references (BFS levels and WCC labels
     exactly, PageRank within 1e-9).  Point counts scale with
     ANALYTICS_POINTS and the 4-domain legs are skipped on single-core
     hosts;

   - a snapshot-isolation drill: a CSR export racing IU1-IU8 writer
     domains must equal a quiesced re-export under the same transaction;

   - a crash-interaction sweep: exports race a fault cut at randomized
     persist-trace points; analytics holds no persistent state, so the
     I1-I5 oracle must hold after recovery and post-recovery exports
     must be deterministic again. *)

module Media = Pmem.Media
module Task_pool = Exec.Task_pool
module Value = Storage.Value
module Mvto = Mvcc.Mvto
module Csr = Analytics.Csr
module Kernels = Analytics.Kernels
module IU = Snb.Updates

let cores = Domain.recommended_domain_count ()
let degrees = if cores <= 1 then [ 2 ] else [ 2; 4 ]

let points =
  match Sys.getenv_opt "ANALYTICS_POINTS" with
  | Some s -> ( try max 1 (int_of_string s) with _ -> 8)
  | None -> if cores <= 1 then 6 else 10

let snb_sf =
  match Sys.getenv_opt "ANALYTICS_SF" with
  | Some s -> ( try float_of_string s with _ -> 0.05)
  | None -> 0.05

let with_pool db n f =
  let pool = Task_pool.create ~media:(Core.media db) ~nworkers:n () in
  Fun.protect ~finally:(fun () -> Task_pool.shutdown pool) (fun () -> f pool)

let export ?pool ?node_label ?rel_label db =
  Core.with_txn db (fun txn ->
      Csr.export ?pool ?node_label ?rel_label (Core.mgr db) txn)

(* A small multi-chunk graph database; [edges] are (src index, dst
   index) over the [n] created nodes. *)
let mk_graph ?(chunk_capacity = 16) n edges =
  let db = Core.create ~mode:`Pmem ~pool_size:(1 lsl 24) ~chunk_capacity () in
  let nodes =
    Array.init n (fun i ->
        Core.with_txn db (fun txn ->
            Core.create_node db txn ~label:"V" ~props:[ ("id", Value.Int i) ]))
  in
  List.iter
    (fun (s, d) ->
      Core.with_txn db (fun txn ->
          ignore
            (Core.create_rel db txn ~label:"E" ~src:nodes.(s) ~dst:nodes.(d)
               ~props:[])))
    edges;
  (db, nodes)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* adjacency as sorted vertex-index lists, for order-insensitive checks *)
let sorted_adj (c : Csr.t) v =
  let l = ref [] in
  for e = c.Csr.row_ptr.(v) to c.Csr.row_ptr.(v + 1) - 1 do
    l := c.Csr.col.(e) :: !l
  done;
  List.sort compare !l

(* --- structural export checks ------------------------------------------ *)

let test_export_basic () =
  let db, nodes =
    mk_graph 4 [ (0, 1); (0, 2); (1, 2); (2, 0); (3, 3) ]
  in
  let c = export db in
  check_int "n" 4 c.Csr.n;
  check_int "m" 5 c.Csr.m;
  (* vertices are ascending physical ids and vidx inverts them *)
  Array.iteri
    (fun i id ->
      if i > 0 then check_bool "ascending" true (id > c.Csr.vertices.(i - 1));
      check_int "vidx inverts" i c.Csr.vidx.(id))
    c.Csr.vertices;
  let vi i = Option.get (Csr.index_of_node c nodes.(i)) in
  Alcotest.(check (list int)) "adj 0" [ vi 1; vi 2 ] (sorted_adj c (vi 0));
  Alcotest.(check (list int)) "adj 3 self" [ vi 3 ] (sorted_adj c (vi 3));
  check_int "out_degree 0" 2 (Csr.out_degree c (vi 0));
  check_int "in_degree 2" 2 (Csr.in_degree c (vi 2));
  check_int "in edges total" c.Csr.m (Array.length c.Csr.in_col);
  (* a second export of the same (quiesced) store is bitwise equal *)
  let c2 = export db in
  check_bool "reproducible" true (Csr.equal c c2);
  check_int "fingerprint reproducible" (Csr.fingerprint c) (Csr.fingerprint c2);
  (* mutating the graph must change the fingerprint *)
  Core.with_txn db (fun txn ->
      ignore
        (Core.create_rel db txn ~label:"E" ~src:nodes.(3) ~dst:nodes.(0)
           ~props:[]));
  let c3 = export db in
  check_bool "fingerprint tracks mutations" false
    (Csr.fingerprint c = Csr.fingerprint c3);
  (* label-filtered export: everything matches "V"/"E", nothing matches
     a foreign label *)
  let cv = export ~node_label:(Core.code db "V") ~rel_label:(Core.code db "E") db in
  check_bool "filtered == full" true (Csr.equal c3 cv);
  let none = export ~node_label:(Core.code db "Person") db in
  check_int "foreign label empty" 0 none.Csr.n;
  Core.shutdown db

let test_edge_cases () =
  let media_of db = Core.media db in
  (* empty graph *)
  let db = Core.create ~mode:`Pmem ~pool_size:(1 lsl 24) () in
  let c = export db in
  check_int "empty n" 0 c.Csr.n;
  check_int "empty m" 0 c.Csr.m;
  let pr = Kernels.pagerank (media_of db) c in
  check_int "empty pagerank" 0 (Array.length pr.Kernels.ranks);
  let w = Kernels.wcc (media_of db) c in
  check_int "empty wcc" 0 w.Kernels.components;
  Core.shutdown db;
  (* isolated vertices: no edges, uniform dangling PageRank, n components *)
  let db, _ = mk_graph 7 [] in
  let c = export db in
  check_int "isolated m" 0 c.Csr.m;
  let b = Kernels.bfs (media_of db) c ~source:0 in
  check_int "bfs reaches only source" 0 b.Kernels.levels.(0);
  Array.iteri
    (fun v l -> if v > 0 then check_int "unreached" (-1) l)
    b.Kernels.levels;
  let w = Kernels.wcc (media_of db) c in
  check_int "isolated components" 7 w.Kernels.components;
  let pr = Kernels.pagerank ~eps:0. ~max_iters:10 (media_of db) c in
  Array.iter
    (fun r ->
      check_bool "uniform dangling rank" true (abs_float (r -. (1. /. 7.)) < 1e-12))
    pr.Kernels.ranks;
  Core.shutdown db;
  (* self loops keep the kernels total and convergent *)
  let db, _ = mk_graph 3 [ (0, 0); (0, 1); (1, 2); (2, 2) ] in
  let c = export db in
  check_int "self-loop m" 4 c.Csr.m;
  let b = Kernels.bfs (media_of db) c ~source:0 in
  Alcotest.(check (array int)) "self-loop bfs" [| 0; 1; 2 |] b.Kernels.levels;
  let w = Kernels.wcc (media_of db) c in
  check_int "self-loop wcc" 1 w.Kernels.components;
  Core.shutdown db;
  (* single chunk (default capacity): fewer tasks than workers still
     drains the rendezvous barrier *)
  let db, _ =
    mk_graph ~chunk_capacity:4096 6 [ (0, 1); (1, 2); (2, 3); (4, 5) ]
  in
  check_int "single node chunk" 1 (Storage.Table.nchunks
                                     (Storage.Graph_store.node_table (Core.store db)));
  let serial = export db in
  with_pool db 2 (fun pool ->
      let par = export ~pool db in
      check_bool "single-chunk parallel == serial" true (Csr.equal serial par));
  Core.shutdown db

(* --- differential battery ---------------------------------------------- *)

let diff_check ~lbl media ?pool csr_serial ~serial_out db =
  let b_s, pr_s, w_s = serial_out in
  let csr = export ?pool db in
  check_int (lbl "fingerprint") (Csr.fingerprint csr_serial) (Csr.fingerprint csr);
  check_bool (lbl "csr equal") true (Csr.equal csr_serial csr);
  if csr.Csr.n > 0 then begin
    let b = Kernels.bfs ?pool media csr ~source:0 in
    Alcotest.(check (array int)) (lbl "bfs levels") b_s.Kernels.levels
      b.Kernels.levels;
    let pr = Kernels.pagerank ?pool ~eps:0. ~max_iters:15 media csr in
    check_bool (lbl "ranks bitwise") true (pr.Kernels.ranks = pr_s.Kernels.ranks);
    let w = Kernels.wcc ?pool media csr in
    Alcotest.(check (array int)) (lbl "wcc labels") w_s.Kernels.labels
      w.Kernels.labels
  end

let reference_check ~lbl media csr =
  if csr.Csr.n > 0 then begin
    let b = Kernels.bfs media csr ~source:0 in
    Alcotest.(check (array int)) (lbl "bfs == reference")
      (Kernels.bfs_reference csr ~source:0)
      b.Kernels.levels;
    let pr = Kernels.pagerank ~eps:0. ~max_iters:15 media csr in
    let ref_ranks, ref_iters =
      Kernels.pagerank_reference ~eps:0. ~max_iters:15 csr
    in
    check_int (lbl "pr iterations") ref_iters pr.Kernels.pr_iterations;
    Array.iteri
      (fun v r ->
        check_bool (lbl "pr within 1e-9") true
          (abs_float (r -. pr.Kernels.ranks.(v)) <= 1e-9))
      ref_ranks;
    let w = Kernels.wcc media csr in
    Alcotest.(check (array int)) (lbl "wcc == reference")
      (Kernels.wcc_reference csr) w.Kernels.labels
  end

let test_differential_random () =
  for p = 1 to points do
    let rng = Random.State.make [| 0xA9A1; p |] in
    let n = 1 + Random.State.int rng 120 in
    let nedges = Random.State.int rng (3 * n) in
    let edges =
      List.init nedges (fun _ ->
          (Random.State.int rng n, Random.State.int rng n))
    in
    let db, _ = mk_graph n edges in
    let media = Core.media db in
    let lbl d what = Printf.sprintf "[point %d, n=%d, %d dom] %s" p n d what in
    let csr = export db in
    let serial_out =
      ( Kernels.bfs media csr ~source:0,
        Kernels.pagerank ~eps:0. ~max_iters:15 media csr,
        Kernels.wcc media csr )
    in
    reference_check ~lbl:(lbl 1) media csr;
    List.iter
      (fun d ->
        with_pool db d (fun pool ->
            diff_check ~lbl:(lbl d) media ~pool csr ~serial_out db))
      degrees;
    Core.shutdown db
  done

let mk_snb ?(indexed = false) sf =
  let db = Core.create ~mode:`Pmem ~pool_size:(1 lsl 26) ~chunk_capacity:256 () in
  let ds =
    Snb.Gen.generate
      ~params:{ Snb.Gen.default_params with sf }
      (Core.store db)
  in
  if indexed then
    List.iter
      (fun l -> ignore (Core.create_index db ~label:l ~prop:"id" ()))
      [ "Person"; "Post"; "Comment"; "Forum"; "Place"; "Tag" ];
  (db, ds)

let test_differential_snb () =
  let db, ds = mk_snb snb_sf in
  let media = Core.media db in
  let lbl d what = Printf.sprintf "[snb sf=%.2f, %d dom] %s" snb_sf d what in
  (* full graph *)
  let csr = export db in
  check_int "snb vertex count" (Core.node_count db) csr.Csr.n;
  let serial_out =
    ( Kernels.bfs media csr ~source:0,
      Kernels.pagerank ~eps:0. ~max_iters:15 media csr,
      Kernels.wcc media csr )
  in
  reference_check ~lbl:(lbl 1) media csr;
  List.iter
    (fun d ->
      with_pool db d (fun pool ->
          diff_check ~lbl:(lbl d) media ~pool csr ~serial_out db))
    degrees;
  (* KNOWS subgraph: persons only *)
  let sc = ds.Snb.Gen.schema in
  let knows =
    export ~node_label:sc.Snb.Schema.person ~rel_label:sc.Snb.Schema.knows db
  in
  check_int "knows vertices = persons" (Array.length ds.Snb.Gen.persons)
    knows.Csr.n;
  reference_check ~lbl:(fun w -> "[knows] " ^ w) media knows;
  List.iter
    (fun d ->
      with_pool db d (fun pool ->
          let par =
            export ~pool ~node_label:sc.Snb.Schema.person
              ~rel_label:sc.Snb.Schema.knows db
          in
          check_bool (lbl d "knows parallel == serial") true
            (Csr.equal knows par)))
    degrees;
  Core.shutdown db

(* --- snapshot-isolation drill ------------------------------------------- *)

let test_snapshot_drill () =
  let db, ds = mk_snb ~indexed:true 0.02 in
  let mgr = Core.mgr db in
  let sc = ds.Snb.Gen.schema in
  let specs = Array.of_list IU.all in
  let nspecs = Array.length specs in
  let ctx = IU.make_ctx () in
  let draw_mu = Mutex.create () in
  let stop = Atomic.make false in
  let writer k () =
    let rng = Random.State.make [| 0x510; k |] in
    let committed = ref 0 in
    while not (Atomic.get stop) do
      let si = Random.State.int rng nspecs in
      let params =
        Mutex.lock draw_mu;
        Fun.protect
          ~finally:(fun () -> Mutex.unlock draw_mu)
          (fun () -> specs.(si).IU.draw ds rng ctx)
      in
      try
        ignore (Core.execute_update db ~params (specs.(si).IU.plan sc));
        incr committed
      with Core.Abort _ -> ()
    done;
    !committed
  in
  let txn = Core.begin_txn db in
  let doms = List.init 2 (fun k -> Domain.spawn (writer k)) in
  let under_storm =
    Fun.protect
      ~finally:(fun () -> Atomic.set stop true)
      (fun () ->
        with_pool db (List.fold_left max 1 degrees) (fun pool ->
            Csr.export ~pool mgr txn))
  in
  let commits = List.fold_left (fun a d -> a + Domain.join d) 0 doms in
  let quiesced = Csr.export mgr txn in
  Core.commit db txn;
  check_bool "writers committed during the storm" true (commits > 0);
  check_bool "storm export == quiesced export (same txn)" true
    (Csr.equal under_storm quiesced);
  check_int "storm fingerprint stable" (Csr.fingerprint under_storm)
    (Csr.fingerprint quiesced);
  (* a later snapshot must see the storm's inserts *)
  let after = export db in
  check_bool "post-storm snapshot differs" true
    (after.Csr.n > under_storm.Csr.n);
  Core.shutdown db

(* --- crash interaction --------------------------------------------------- *)

(* Exports race a fault cut: analytics holds no persistent state, so any
   sampled crash point must leave recovery untouched (I1-I5 oracle) and
   post-recovery exports deterministic. *)
let test_crash_with_racing_export () =
  let module CE = Pmem.Crash_explorer in
  let module Faults = Pmem.Faults in
  let seed = 0xCE5A in
  let sweep_points = max 2 (points / 3) in
  let ops = 14 in
  let fresh () =
    let db =
      Core.create ~mode:`Pmem ~pool_size:(1 lsl 24) ~chunk_capacity:16 ()
    in
    ignore (Core.create_index db ~label:"N" ~prop:"id" ());
    (db, Crash_oracle.empty_model ())
  in
  let pending = ref None in
  let step p f =
    pending := Some p;
    f ();
    pending := None
  in
  let next_ldbc = ref 10_000 in
  let run_mix db model rng =
    next_ldbc := 10_000;
    for _ = 1 to ops do
      if Random.State.int rng 3 = 0 && model.Crash_oracle.nodes <> [] then begin
        let id, v =
          List.nth model.Crash_oracle.nodes
            (Random.State.int rng (List.length model.Crash_oracle.nodes))
        in
        step (Crash_oracle.Update [ (id, v, v + 1) ]) (fun () ->
            Core.with_txn db (fun txn ->
                Core.set_node_prop db txn id ~key:"v" (Value.Int (v + 1)));
            model.Crash_oracle.nodes <-
              List.map
                (fun (i, x) -> if i = id then (i, v + 1) else (i, x))
                model.Crash_oracle.nodes)
      end
      else begin
        let ldbc = !next_ldbc in
        incr next_ldbc;
        step (Crash_oracle.Insert { ldbc; v = ldbc; rel_dsts = [] }) (fun () ->
            let id =
              Core.with_txn db (fun txn ->
                  Core.create_node db txn ~label:"N"
                    ~props:[ ("id", Value.Int ldbc); ("v", Value.Int ldbc) ])
            in
            model.Crash_oracle.nodes <-
              (id, ldbc) :: model.Crash_oracle.nodes)
      end
    done
  in
  let db0, model0 = fresh () in
  let trace =
    CE.record (Core.media db0) (fun () ->
        run_mix db0 model0 (Random.State.make [| seed |]))
  in
  let total = CE.stores trace + CE.flushes trace + CE.fences trace in
  check_bool "persist trace nonempty" true (total > 0);
  let rng = Random.State.make [| seed; 0x3A11 |] in
  for point = 1 to sweep_points do
    let j = Random.State.int rng total in
    let kind, ordinal =
      let ns = CE.stores trace and nf = CE.flushes trace in
      if j < ns then (`Write, j + 1)
      else if j < ns + nf then (`Flush, j - ns + 1)
      else (`Fence, j - ns - nf + 1)
    in
    let db, model = fresh () in
    let stop = Atomic.make false in
    (* the racing reader: exports under snapshot transactions; aborts,
       retry exhaustion or the crash itself are all survivable *)
    let reader =
      Domain.spawn (fun () ->
          let n = ref 0 in
          while not (Atomic.get stop) do
            (try
               Core.with_txn db (fun txn ->
                   ignore (Csr.export (Core.mgr db) txn))
             with _ -> ());
            incr n
          done;
          !n)
    in
    let media = Core.media db and pool_ = Core.pool db in
    Faults.install ~pool:pool_ media
      (Faults.plan ~crash_at:(kind, ordinal) ());
    let fired =
      Fun.protect
        ~finally:(fun () ->
          Atomic.set stop true;
          ignore (Domain.join reader);
          Faults.uninstall media)
      @@ fun () ->
      match run_mix db model (Random.State.make [| seed |]) with
      | () -> false
      | exception Faults.Crash_point _ -> true
    in
    let lbl what =
      Printf.sprintf "[seed=%d] point %d (%s #%d, fired=%b): %s" seed point
        (match kind with `Write -> "store" | `Flush -> "clwb" | _ -> "sfence")
        ordinal fired what
    in
    Core.crash db;
    let db = Core.reopen ~recovery_threads:2 db in
    let pending = if fired then !pending else None in
    Crash_oracle.check ~vkey:"v" ~index_label:"N" ~index_key:"id" ?pending db
      model;
    (* post-recovery analytics: deterministic and reference-equal again *)
    let serial = export db in
    check_int (lbl "export sees all committed nodes") (Core.node_count db)
      serial.Csr.n;
    with_pool db 2 (fun pool ->
        let par = export ~pool db in
        check_bool (lbl "post-recovery parallel == serial") true
          (Csr.equal serial par));
    if serial.Csr.n > 0 then
      Alcotest.(check (array int))
        (lbl "post-recovery wcc == reference")
        (Kernels.wcc_reference serial)
        (Kernels.wcc (Core.media db) serial).Kernels.labels;
    Core.shutdown db
  done

(* --- observability ------------------------------------------------------- *)

let test_metrics_presence () =
  let db, _ = mk_graph 12 [ (0, 1); (1, 2); (2, 3); (3, 0) ] in
  let media = Core.media db in
  let csr = export db in
  ignore (Kernels.bfs media csr ~source:0);
  ignore (Kernels.pagerank ~max_iters:3 media csr);
  ignore (Kernels.wcc media csr);
  let names =
    List.map
      (fun s -> (s.Obs.Metrics.name, s.Obs.Metrics.labels))
      (Obs.Metrics.snapshot (Media.registry media))
  in
  let has n l = List.mem (n, l) names in
  check_bool "export histogram" true (has "analytics_export_ns" []);
  check_bool "frontier histogram" true (has "analytics_frontier_size" []);
  List.iter
    (fun k ->
      check_bool ("kernel histogram " ^ k) true
        (has "analytics_kernel_ns" [ ("kernel", k) ]))
    [ "bfs"; "pagerank"; "wcc" ];
  Core.shutdown db

let () =
  Alcotest.run "analytics"
    [
      ( "export",
        [
          Alcotest.test_case "structure + fingerprint" `Quick test_export_basic;
          Alcotest.test_case "edge cases" `Quick test_edge_cases;
          Alcotest.test_case "metrics" `Quick test_metrics_presence;
        ] );
      ( "differential",
        [
          Alcotest.test_case "random graphs" `Slow test_differential_random;
          Alcotest.test_case "snb graphs" `Slow test_differential_snb;
        ] );
      ( "snapshot",
        [ Alcotest.test_case "writer storm" `Slow test_snapshot_drill ] );
      ( "crash",
        [
          Alcotest.test_case "racing export sweep" `Slow
            test_crash_with_racing_export;
        ] );
    ]
