(* Observability subsystem battery: histogram correctness (shard-merge
   property, quantile error bound vs exact nearest-rank percentiles,
   cross-domain increment safety), registry reset semantics, Prometheus
   exposition round-trip through the strict validator, and trace-span
   parentage. *)

module H = Obs.Histogram
module M = Obs.Metrics
module T = Obs.Trace

(* --- histogram --------------------------------------------------------- *)

let exact_nearest_rank sorted q =
  let n = Array.length sorted in
  if n = 0 then 0
  else
    let rank = int_of_float (ceil (q *. float_of_int n)) in
    sorted.(max 0 (min (n - 1) (rank - 1)))

let mk_values rng n =
  (* span the exact region, the octave region and a heavy tail *)
  Array.init n (fun _ ->
      match Random.State.int rng 4 with
      | 0 -> Random.State.int rng 16
      | 1 -> 16 + Random.State.int rng 1000
      | 2 -> Random.State.int rng 1_000_000
      | _ -> Random.State.int rng 1_000_000_000)

let test_histogram_exact_small () =
  let h = H.create () in
  List.iter (H.observe h) [ 0; 1; 1; 2; 15; 15; 15 ];
  let s = H.snapshot h in
  Alcotest.(check int) "count" 7 s.H.count;
  Alcotest.(check int) "sum" 49 s.H.sum;
  Alcotest.(check int) "min" 0 s.H.min_;
  Alcotest.(check int) "max" 15 s.H.max_;
  (* values < 16 are exact, so quantiles are exact too *)
  Alcotest.(check int) "p50 exact" 2 (H.quantile s 0.5);
  Alcotest.(check int) "p99 exact" 15 (H.quantile s 0.99)

let test_histogram_empty () =
  let h = H.create () in
  let s = H.snapshot h in
  Alcotest.(check int) "count" 0 s.H.count;
  Alcotest.(check int) "quantile of empty" 0 (H.quantile s 0.5);
  H.observe h (-5);
  let s = H.snapshot h in
  Alcotest.(check int) "negative clamps to 0" 0 s.H.max_

let test_histogram_quantile_error_bound () =
  let rng = Random.State.make [| 7 |] in
  for _round = 1 to 5 do
    let values = mk_values rng 2000 in
    let h = H.create () in
    Array.iter (H.observe h) values;
    let s = H.snapshot h in
    let sorted = Array.copy values in
    Array.sort compare sorted;
    List.iter
      (fun q ->
        let est = H.quantile s q and exact = exact_nearest_rank sorted q in
        (* log-bucketing with 4 linear sub-buckets bounds relative error
           by 25%; the estimate is a bucket upper bound, so it can only
           overshoot *)
        let slack = 1 + (exact / 4) in
        Alcotest.(check bool)
          (Printf.sprintf "q=%.2f est=%d exact=%d" q est exact)
          true
          (est >= exact && est <= exact + slack))
      [ 0.5; 0.9; 0.95; 0.99; 1.0 ]
  done

let test_histogram_quantile_monotone () =
  let rng = Random.State.make [| 11 |] in
  let h = H.create () in
  Array.iter (H.observe h) (mk_values rng 500);
  let s = H.snapshot h in
  let p50 = H.quantile s 0.5
  and p95 = H.quantile s 0.95
  and p99 = H.quantile s 0.99 in
  Alcotest.(check bool) "p50 <= p95" true (p50 <= p95);
  Alcotest.(check bool) "p95 <= p99" true (p95 <= p99);
  Alcotest.(check bool) "p99 <= max" true (p99 <= s.H.max_);
  Alcotest.(check bool) "min <= p50" true (s.H.min_ <= p50)

let test_histogram_merge_matches_serial () =
  (* the same multiset observed from 4 domains must snapshot identically
     to a single-domain observation: snapshot merges per-domain shards *)
  let rng = Random.State.make [| 13 |] in
  let values = mk_values rng 4000 in
  let serial = H.create () in
  Array.iter (H.observe serial) values;
  let sharded = H.create () in
  let ndom = 4 in
  let slice d =
    Array.init
      (Array.length values / ndom)
      (fun i -> values.((d * (Array.length values / ndom)) + i))
  in
  let doms =
    List.init ndom (fun d ->
        Domain.spawn (fun () -> Array.iter (H.observe sharded) (slice d)))
  in
  List.iter Domain.join doms;
  let a = H.snapshot serial and b = H.snapshot sharded in
  Alcotest.(check int) "count" a.H.count b.H.count;
  Alcotest.(check int) "sum" a.H.sum b.H.sum;
  Alcotest.(check int) "min" a.H.min_ b.H.min_;
  Alcotest.(check int) "max" a.H.max_ b.H.max_;
  Alcotest.(check bool) "bucket arrays equal" true (a.H.buckets = b.H.buckets)

let test_histogram_bucket_scheme () =
  (* exact region, then octaves of 4 linear sub-buckets *)
  for v = 0 to 15 do
    Alcotest.(check int)
      (Printf.sprintf "value %d is its own bucket upper" v)
      v
      (H.bucket_upper (H.bucket_of v))
  done;
  let rng = Random.State.make [| 17 |] in
  for _ = 1 to 1000 do
    let v = 16 + Random.State.int rng 0x3FFFFFFF in
    let ub = H.bucket_upper (H.bucket_of v) in
    Alcotest.(check bool)
      (Printf.sprintf "%d <= ub %d <= 1.25*%d" v ub v)
      true
      (ub >= v && float_of_int ub <= 1.25 *. float_of_int v)
  done

(* --- registry ---------------------------------------------------------- *)

let test_counter_cross_domain () =
  let reg = M.create () in
  let per_domain = 25_000 and ndom = 4 in
  let doms =
    List.init ndom (fun _ ->
        Domain.spawn (fun () ->
            (* find-or-create from every domain: same handle *)
            let c = M.counter reg ~help:"x" "obs_test_total" in
            for _ = 1 to per_domain do
              M.incr c
            done))
  in
  List.iter Domain.join doms;
  Alcotest.(check (option int)) "no lost increments"
    (Some (ndom * per_domain))
    (M.value reg "obs_test_total")

let test_labels_distinguish () =
  let reg = M.create () in
  let a = M.counter reg ~labels:[ ("class", "a") ] "ops_total" in
  let b = M.counter reg ~labels:[ ("class", "b") ] "ops_total" in
  M.add a 3;
  M.incr b;
  Alcotest.(check (option int)) "a" (Some 3)
    (M.value reg ~labels:[ ("class", "a") ] "ops_total");
  Alcotest.(check (option int)) "b" (Some 1)
    (M.value reg ~labels:[ ("class", "b") ] "ops_total");
  (* same (name, labels) returns the same handle *)
  let a' = M.counter reg ~labels:[ ("class", "a") ] "ops_total" in
  M.incr a';
  Alcotest.(check int) "shared handle" 4 (Atomic.get a)

let test_reset_semantics () =
  let reg = M.create () in
  let c = M.counter reg "c_total" in
  let g = M.gauge reg "g" in
  let h = M.histogram reg "h_ns" in
  let external_state = ref 42 in
  M.callback reg ~kind:`Counter "cb_total" (fun () -> !external_state);
  M.add c 7;
  M.set g 9;
  H.observe h 100;
  M.reset reg;
  Alcotest.(check (option int)) "counter zeroed" (Some 0) (M.value reg "c_total");
  Alcotest.(check (option int)) "gauge zeroed" (Some 0) (M.value reg "g");
  Alcotest.(check int) "histogram reset" 0 (H.snapshot h).H.count;
  (* callbacks sample external state and are exempt from reset *)
  Alcotest.(check (option int)) "callback untouched" (Some 42)
    (M.value reg "cb_total");
  external_state := 43;
  Alcotest.(check (option int)) "callback live" (Some 43)
    (M.value reg "cb_total")

(* --- exposition -------------------------------------------------------- *)

let test_prometheus_roundtrip () =
  let reg = M.create () in
  M.add (M.counter reg ~help:"a counter" "reqs_total") 5;
  M.set (M.gauge reg ~labels:[ ("shard", "0") ] "depth") 2;
  let h = M.histogram reg ~help:"latency" "lat_ns" in
  List.iter (H.observe h) [ 1; 20; 300; 4000 ];
  M.callback reg ~kind:`Gauge "clock_ns" (fun () -> 12345);
  let text = Obs.Expo.to_prometheus (M.snapshot reg) in
  (match Obs.Expo.validate_prometheus text with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("own exposition rejected: " ^ e));
  (* histograms expose cumulative buckets + sum/count *)
  let has needle =
    let n = String.length needle and m = String.length text in
    let rec go i = i + n <= m && (String.sub text i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "bucket samples" true (has "lat_ns_bucket{le=");
  Alcotest.(check bool) "+Inf bucket" true (has "le=\"+Inf\"");
  Alcotest.(check bool) "count sample" true (has "lat_ns_count 4");
  Alcotest.(check bool) "labeled gauge" true (has "depth{shard=\"0\"} 2")

let test_validator_rejects_malformed () =
  let bad =
    [
      ("no TYPE", "foo_total 1\n");
      ("bad name", "# TYPE 2foo counter\n2foo 1\n");
      ( "bad label quoting",
        "# TYPE foo counter\nfoo{l=unquoted} 1\n" );
      ("non-numeric value", "# TYPE foo counter\nfoo one\n");
      ( "duplicate TYPE",
        "# TYPE foo counter\n# TYPE foo counter\nfoo 1\n" );
      ( "bucket without le",
        "# TYPE foo histogram\nfoo_bucket 1\nfoo_sum 1\nfoo_count 1\n" );
    ]
  in
  List.iter
    (fun (what, doc) ->
      match Obs.Expo.validate_prometheus doc with
      | Error _ -> ()
      | Ok () -> Alcotest.fail ("accepted " ^ what))
    bad

let test_json_exposition_parses () =
  let reg = M.create () in
  M.add (M.counter reg "n_total") 3;
  let h = M.histogram reg "lat" in
  H.observe h 10;
  let doc = Htap.Json.parse (Obs.Expo.to_json (M.snapshot reg)) in
  match doc with
  | Htap.Json.List (_ :: _) -> ()
  | _ -> Alcotest.fail "expected a nonempty JSON array"

(* --- trace spans ------------------------------------------------------- *)

let test_trace_parentage () =
  let clock = ref 0 in
  let t = T.create ~clock:(fun () -> incr clock; !clock) () in
  Alcotest.(check bool) "disabled by default" false (T.enabled t);
  T.with_span t "ignored" (fun () -> ());
  Alcotest.(check int) "disabled records nothing" 0 (T.total t);
  T.set_enabled t true;
  T.with_span t "outer" (fun () ->
      T.with_span t "inner" (fun () ->
          Alcotest.(check bool) "current set" true (T.current t <> None)));
  Alcotest.(check int) "two spans" 2 (T.total t);
  (match T.spans t with
  | [ outer; inner ] ->
      (* newest first: outer finishes after inner *)
      Alcotest.(check string) "outer first" "outer" outer.T.name;
      Alcotest.(check string) "inner second" "inner" inner.T.name;
      Alcotest.(check (option int)) "inner's parent is outer"
        (Some outer.T.id) inner.T.parent;
      Alcotest.(check (option int)) "outer is a root" None outer.T.parent;
      Alcotest.(check bool) "time flows" true (inner.T.end_ns > inner.T.start_ns)
  | l -> Alcotest.fail (Printf.sprintf "expected 2 spans, got %d" (List.length l)));
  T.reset t;
  Alcotest.(check int) "reset clears" 0 (T.total t)

let test_trace_span_on_raise () =
  let t = T.create ~clock:(fun () -> 0) () in
  T.set_enabled t true;
  (try T.with_span t "boom" (fun () -> failwith "x") with Failure _ -> ());
  Alcotest.(check int) "span recorded despite raise" 1 (T.total t)

let test_trace_ring_bounded () =
  let t = T.create ~capacity:8 ~clock:(fun () -> 0) () in
  T.set_enabled t true;
  for i = 1 to 100 do
    T.with_span t (string_of_int i) (fun () -> ())
  done;
  Alcotest.(check int) "total counts evictions" 100 (T.total t);
  let kept = T.spans t in
  Alcotest.(check int) "ring keeps capacity" 8 (List.length kept);
  Alcotest.(check string) "newest wins" "100" (List.hd kept).T.name;
  Alcotest.(check string) "oldest retained" "93" (List.nth kept 7).T.name

let () =
  Alcotest.run "obs"
    [
      ( "histogram",
        [
          Alcotest.test_case "exact small values" `Quick
            test_histogram_exact_small;
          Alcotest.test_case "empty + clamping" `Quick test_histogram_empty;
          Alcotest.test_case "quantile error bound" `Quick
            test_histogram_quantile_error_bound;
          Alcotest.test_case "quantile monotone" `Quick
            test_histogram_quantile_monotone;
          Alcotest.test_case "shard merge == serial" `Quick
            test_histogram_merge_matches_serial;
          Alcotest.test_case "bucket scheme bounds" `Quick
            test_histogram_bucket_scheme;
        ] );
      ( "registry",
        [
          Alcotest.test_case "cross-domain increments" `Quick
            test_counter_cross_domain;
          Alcotest.test_case "labels distinguish" `Quick test_labels_distinguish;
          Alcotest.test_case "reset semantics" `Quick test_reset_semantics;
        ] );
      ( "exposition",
        [
          Alcotest.test_case "prometheus round-trip" `Quick
            test_prometheus_roundtrip;
          Alcotest.test_case "validator rejects malformed" `Quick
            test_validator_rejects_malformed;
          Alcotest.test_case "json parses" `Quick test_json_exposition_parses;
        ] );
      ( "trace",
        [
          Alcotest.test_case "parentage" `Quick test_trace_parentage;
          Alcotest.test_case "span on raise" `Quick test_trace_span_on_raise;
          Alcotest.test_case "ring bounded" `Quick test_trace_ring_bounded;
        ] );
    ]
