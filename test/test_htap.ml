(* HTAP stress battery: run the concurrent SNB update + analytics driver
   at a tiny scale factor with a fixed seed and assert the
   snapshot-isolation invariants it checks (no lost updates on the
   counter probe, monotone aggregate reads, count conservation), in the
   spirit of test_mvcc.ml but across real domains.  Also round-trips the
   BENCH_htap.json emitter through the hand-rolled parser. *)

module Htap = Htap
module Json = Htap.Json

(* AOT mode: JIT compile charges (~15 sim-ms per fresh plan) would eat a
   short simulated duration before any throughput accrues. *)
let cfg =
  {
    Htap.default_config with
    Htap.sf = 0.01;
    writers = 2;
    readers = 2;
    duration_ms = 40.;
    seed = 42;
    mode = Jit.Engine.Interp;
    pool_workers = 2;
  }

(* one run shared by the assertion tests below *)
let result = lazy (Htap.run cfg)

let test_si_invariants () =
  let r = Lazy.force result in
  Alcotest.(check int) "no monotone-read violations" 0 r.Htap.monotone_violations;
  Alcotest.(check int) "no lost updates" 0 r.Htap.counter_lost;
  Alcotest.(check int) "no conservation failures" 0 r.Htap.conservation_failures;
  Alcotest.(check int) "si_violations sums to zero" 0 (Htap.si_violations r)

let test_progress_on_both_sides () =
  let r = Lazy.force result in
  Alcotest.(check bool) "committed updates" true (r.Htap.committed_updates > 0);
  Alcotest.(check bool) "analytic reads" true (r.Htap.analytic_reads > 0);
  Alcotest.(check bool) "counter probe committed" true (r.Htap.counter_commits > 0);
  Alcotest.(check bool) "txn commits cover updates" true
    (r.Htap.commits >= r.Htap.committed_updates);
  Alcotest.(check bool) "sim clock advanced past the duration" true
    (r.Htap.sim_elapsed_ns >= int_of_float (cfg.Htap.duration_ms *. 1e6))

let test_latency_classes_ordered () =
  let r = Lazy.force result in
  List.iter
    (fun c ->
      if c.Htap.ops > 0 then begin
        Alcotest.(check bool) (c.Htap.cls ^ ": p50 <= p95") true
          (c.Htap.p50_ns <= c.Htap.p95_ns);
        Alcotest.(check bool) (c.Htap.cls ^ ": p95 <= p99") true
          (c.Htap.p95_ns <= c.Htap.p99_ns);
        Alcotest.(check bool) (c.Htap.cls ^ ": p99 <= max") true
          (c.Htap.p99_ns <= c.Htap.max_ns)
      end)
    r.Htap.classes

let test_json_roundtrip_and_validate () =
  let r = Lazy.force result in
  let doc = Htap.to_json r in
  (match Htap.validate doc with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("validate: " ^ e));
  let j = Json.parse doc in
  let geti p = Json.to_int (Json.path j p) in
  Alcotest.(check (option int)) "committed matches"
    (Some r.Htap.committed_updates)
    (geti [ "updates"; "committed" ]);
  Alcotest.(check (option int)) "analytic matches" (Some r.Htap.analytic_reads)
    (geti [ "reads"; "analytic" ]);
  Alcotest.(check (option int)) "violations zero" (Some 0)
    (geti [ "invariants"; "si_violations" ])

let test_json_parser_basics () =
  let j =
    Json.parse
      {| { "a": 1, "b": [true, false, null], "c": {"d": "x\ny", "e": -2.5} } |}
  in
  Alcotest.(check (option int)) "int member" (Some 1)
    (Json.to_int (Json.member "a" j));
  (match Json.path j [ "c"; "d" ] with
  | Some (Json.Str s) -> Alcotest.(check string) "escaped string" "x\ny" s
  | _ -> Alcotest.fail "missing c.d");
  (match Json.member "b" j with
  | Some (Json.List [ Json.Bool true; Json.Bool false; Json.Null ]) -> ()
  | _ -> Alcotest.fail "list shape");
  (* emit/parse fixpoint *)
  let doc = Json.to_string j in
  Alcotest.(check string) "stable" doc (Json.to_string (Json.parse doc));
  (match Json.parse "[1, 2" with
  | exception Json.Parse_error _ -> ()
  | _ -> Alcotest.fail "expected parse error")

let test_validate_rejects_bad_doc () =
  (match Htap.validate {| {"bench": "other"} |} with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "accepted wrong bench tag");
  match Htap.validate "not json at all" with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "accepted garbage"

(* A second, differently-shaped run: more writers than readers, single
   morsel worker (serial probes), different seed.  The invariants are
   seed-independent. *)
let test_si_invariants_writer_heavy () =
  let r =
    Htap.run
      {
        cfg with
        Htap.writers = 3;
        readers = 1;
        pool_workers = 1;
        seed = 1234;
        duration_ms = 25.;
      }
  in
  Alcotest.(check int) "zero si violations" 0 (Htap.si_violations r);
  Alcotest.(check bool) "made progress" true
    (r.Htap.committed_updates > 0 && r.Htap.analytic_reads > 0)

let () =
  Alcotest.run "htap"
    [
      ( "driver",
        [
          Alcotest.test_case "si invariants hold" `Slow test_si_invariants;
          Alcotest.test_case "progress on both sides" `Slow
            test_progress_on_both_sides;
          Alcotest.test_case "latency classes ordered" `Slow
            test_latency_classes_ordered;
          Alcotest.test_case "writer-heavy variant" `Slow
            test_si_invariants_writer_heavy;
        ] );
      ( "json",
        [
          Alcotest.test_case "roundtrip + validate" `Slow
            test_json_roundtrip_and_validate;
          Alcotest.test_case "parser basics" `Quick test_json_parser_basics;
          Alcotest.test_case "validate rejects bad docs" `Quick
            test_validate_rejects_bad_doc;
        ] );
    ]
