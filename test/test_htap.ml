(* HTAP stress battery: run the concurrent SNB update + analytics driver
   at a tiny scale factor with a fixed seed and assert the
   snapshot-isolation invariants it checks (no lost updates on the
   counter probe, monotone aggregate reads, count conservation), in the
   spirit of test_mvcc.ml but across real domains.  Also round-trips the
   BENCH_htap.json emitter through the hand-rolled parser. *)

module Htap = Htap
module Json = Htap.Json

(* AOT mode: JIT compile charges (~15 sim-ms per fresh plan) would eat a
   short simulated duration before any throughput accrues. *)
let cfg =
  {
    Htap.default_config with
    Htap.sf = 0.01;
    writers = 2;
    readers = 2;
    duration_ms = 40.;
    seed = 42;
    mode = Jit.Engine.Interp;
    pool_workers = 2;
    profile = true;
  }

(* Single-core runners: under full-suite load the OS can starve one
   domain for most of a short simulated window (and the charged retry
   backoff of the txns it did start then eats the remainder), so a run
   can legitimately end with zero throughput on one side.  Correctness
   invariants are load-independent and asserted on EVERY attempt; only
   the progress assertions are scheduling-sensitive, so on a starved run
   we retry with a doubled window (bounded) instead of failing.  The
   seed is kept, so any invariant violation stays replayable. *)
let rec run_tolerant ?(tries = 3) ?(also_starved = fun _ -> false) cfg =
  let r = Htap.run cfg in
  Alcotest.(check int)
    (Printf.sprintf "[seed=%d] zero si violations (every attempt)"
       cfg.Htap.seed)
    0 (Htap.si_violations r);
  let starved =
    r.Htap.committed_updates = 0
    || r.Htap.analytic_reads = 0
    || r.Htap.counter_commits = 0
    || also_starved r
  in
  if starved && tries > 1 then
    run_tolerant ~tries:(tries - 1) ~also_starved
      { cfg with Htap.duration_ms = cfg.Htap.duration_ms *. 2. }
  else r

(* one run shared by the assertion tests below *)
let result = lazy (run_tolerant cfg)

(* every worker RNG is derived from cfg.seed (Htap.writer_rng /
   Htap.reader_rng), so a failure here is replayed by rerunning with the
   seed the label names *)
let lbl what = Printf.sprintf "[seed=%d] %s" cfg.Htap.seed what

let test_si_invariants () =
  let r = Lazy.force result in
  Alcotest.(check int) (lbl "no monotone-read violations") 0
    r.Htap.monotone_violations;
  Alcotest.(check int) (lbl "no lost updates") 0 r.Htap.counter_lost;
  Alcotest.(check int) (lbl "no conservation failures") 0
    r.Htap.conservation_failures;
  Alcotest.(check int) (lbl "si_violations sums to zero") 0 (Htap.si_violations r)

let test_progress_on_both_sides () =
  let r = Lazy.force result in
  Alcotest.(check bool) (lbl "committed updates") true
    (r.Htap.committed_updates > 0);
  Alcotest.(check bool) (lbl "analytic reads") true (r.Htap.analytic_reads > 0);
  Alcotest.(check bool) "counter probe committed" true (r.Htap.counter_commits > 0);
  Alcotest.(check bool) "txn commits cover updates" true
    (r.Htap.commits >= r.Htap.committed_updates);
  Alcotest.(check bool) "sim clock advanced past the duration" true
    (r.Htap.sim_elapsed_ns >= int_of_float (r.Htap.cfg.Htap.duration_ms *. 1e6))

let test_latency_classes_ordered () =
  let r = Lazy.force result in
  List.iter
    (fun c ->
      if c.Htap.ops > 0 then begin
        Alcotest.(check bool) (c.Htap.cls ^ ": p50 <= p95") true
          (c.Htap.p50_ns <= c.Htap.p95_ns);
        Alcotest.(check bool) (c.Htap.cls ^ ": p95 <= p99") true
          (c.Htap.p95_ns <= c.Htap.p99_ns);
        Alcotest.(check bool) (c.Htap.cls ^ ": p99 <= max") true
          (c.Htap.p99_ns <= c.Htap.max_ns)
      end)
    r.Htap.classes

let test_registry_metrics () =
  let r = Lazy.force result in
  (* registry deltas must agree with the media counters they sample *)
  Alcotest.(check int) "flushes via registry" r.Htap.media_flushes
    r.Htap.reg_flushes;
  Alcotest.(check int) "fences via registry" r.Htap.media_fences
    r.Htap.reg_fences;
  Alcotest.(check bool) "flush traffic recorded" true (r.Htap.reg_flushes > 0);
  Alcotest.(check bool) "fence traffic recorded" true (r.Htap.reg_fences > 0);
  (* abort taxonomy: all four classes present, totals cover the aborts *)
  let cls c = List.assoc_opt c r.Htap.abort_taxonomy in
  List.iter
    (fun c ->
      match cls c with
      | Some n -> Alcotest.(check bool) (c ^ " nonneg") true (n >= 0)
      | None -> Alcotest.fail ("missing abort class " ^ c))
    [ "validation"; "transient"; "fatal"; "user" ];
  let tax_total = List.fold_left (fun a (_, n) -> a + n) 0 r.Htap.abort_taxonomy in
  Alcotest.(check bool) "taxonomy covers observed aborts" true
    (tax_total >= r.Htap.aborts);
  (* the exposition snapshot must parse *)
  match Obs.Expo.validate_prometheus r.Htap.metrics_prom with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("prometheus exposition: " ^ e)

let test_operator_profiles_agree () =
  let r = Lazy.force result in
  Alcotest.(check bool) "profiles collected" true (r.Htap.profiles <> []);
  List.iter
    (fun p ->
      let name = p.Htap.p_name in
      Alcotest.(check int)
        (name ^ ": same operator count")
        (List.length p.Htap.p_interp)
        (List.length p.Htap.p_jit);
      List.iter2
        (fun (a : Obs.Profile.row) (j : Obs.Profile.row) ->
          Alcotest.(check string) (name ^ ": operator names align") a.op j.op;
          Alcotest.(check int)
            (Printf.sprintf "%s: op %d (%s) tuples agree interp vs jit" name
               a.id a.op)
            a.tuples j.tuples)
        p.Htap.p_interp p.Htap.p_jit;
      (* the root operator produced something and was charged time *)
      match p.Htap.p_interp with
      | root :: _ ->
          Alcotest.(check bool) (name ^ ": root produced tuples") true
            (root.tuples > 0);
          Alcotest.(check bool) (name ^ ": root charged ticks") true
            (root.ticks > 0)
      | [] -> Alcotest.fail (name ^ ": empty profile"))
    r.Htap.profiles

let test_json_roundtrip_and_validate () =
  let r = Lazy.force result in
  let doc = Htap.to_json r in
  (match Htap.validate doc with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("validate: " ^ e));
  (* the Fig. 10 throughput gates hold on a real run: per-worker
     adaptive >= serial AOT, compiled-parallel >= interpreter-parallel *)
  (match Htap.validate ~min_adaptive_ratio:1.0 doc with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("validate --min-adaptive-ratio 1.0: " ^ e));
  let j = Json.parse doc in
  let geti p = Json.to_int (Json.path j p) in
  Alcotest.(check (option int)) "committed matches"
    (Some r.Htap.committed_updates)
    (geti [ "updates"; "committed" ]);
  Alcotest.(check (option int)) "analytic matches" (Some r.Htap.analytic_reads)
    (geti [ "reads"; "analytic" ]);
  Alcotest.(check (option int)) "violations zero" (Some 0)
    (geti [ "invariants"; "si_violations" ])

let test_json_parser_basics () =
  let j =
    Json.parse
      {| { "a": 1, "b": [true, false, null], "c": {"d": "x\ny", "e": -2.5} } |}
  in
  Alcotest.(check (option int)) "int member" (Some 1)
    (Json.to_int (Json.member "a" j));
  (match Json.path j [ "c"; "d" ] with
  | Some (Json.Str s) -> Alcotest.(check string) "escaped string" "x\ny" s
  | _ -> Alcotest.fail "missing c.d");
  (match Json.member "b" j with
  | Some (Json.List [ Json.Bool true; Json.Bool false; Json.Null ]) -> ()
  | _ -> Alcotest.fail "list shape");
  (* emit/parse fixpoint *)
  let doc = Json.to_string j in
  Alcotest.(check string) "stable" doc (Json.to_string (Json.parse doc));
  (match Json.parse "[1, 2" with
  | exception Json.Parse_error _ -> ()
  | _ -> Alcotest.fail "expected parse error")

let test_validate_rejects_bad_doc () =
  (match Htap.validate {| {"bench": "other"} |} with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "accepted wrong bench tag");
  match Htap.validate "not json at all" with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "accepted garbage"

(* Snapshot isolation must be tier-blind: the same invariants hold when
   every reader query runs compiled morsel-parallel (steady state served
   by the capture/replay tier) and when the engine hot-swaps
   interpreter -> compiled mid-query. *)
let test_si_invariants_compiled_parallel () =
  let r =
    run_tolerant
      ~also_starved:(fun r ->
        r.Htap.reg_parallel_morsels = 0 || r.Htap.reg_replay_hits = 0)
      {
        cfg with
        Htap.mode = Jit.Engine.Jit;
        pool_workers = 2;
        seed = 77;
        duration_ms = 60.;
        profile = false;
      }
  in
  Alcotest.(check int) "[seed=77] zero si violations (jit parallel)" 0
    (Htap.si_violations r);
  Alcotest.(check bool) "[seed=77] made progress" true
    (r.Htap.committed_updates > 0 && r.Htap.analytic_reads > 0);
  Alcotest.(check bool) "[seed=77] compiled morsels ran on the pool" true
    (r.Htap.reg_parallel_morsels > 0);
  Alcotest.(check bool) "[seed=77] replay tier served steady state" true
    (r.Htap.reg_replay_hits > 0);
  Alcotest.(check bool) "[seed=77] fig10 emitted" true (r.Htap.fig10 <> [])

let test_si_invariants_adaptive () =
  let r =
    run_tolerant
      {
        cfg with
        Htap.mode = Jit.Engine.Adaptive;
        pool_workers = 2;
        seed = 9;
        duration_ms = 40.;
        profile = false;
      }
  in
  Alcotest.(check int) "[seed=9] zero si violations (adaptive)" 0
    (Htap.si_violations r);
  Alcotest.(check bool) "[seed=9] made progress" true
    (r.Htap.committed_updates > 0 && r.Htap.analytic_reads > 0)

(* A second, differently-shaped run: more writers than readers, single
   morsel worker (serial probes), different seed.  The invariants are
   seed-independent. *)
let test_si_invariants_writer_heavy () =
  let r =
    run_tolerant
      {
        cfg with
        Htap.writers = 3;
        readers = 1;
        pool_workers = 1;
        seed = 1234;
        duration_ms = 25.;
      }
  in
  Alcotest.(check int) "zero si violations" 0 (Htap.si_violations r);
  Alcotest.(check bool) "made progress" true
    (r.Htap.committed_updates > 0 && r.Htap.analytic_reads > 0)

let () =
  Alcotest.run "htap"
    [
      ( "driver",
        [
          Alcotest.test_case "si invariants hold" `Slow test_si_invariants;
          Alcotest.test_case "progress on both sides" `Slow
            test_progress_on_both_sides;
          Alcotest.test_case "latency classes ordered" `Slow
            test_latency_classes_ordered;
          Alcotest.test_case "registry metrics agree with media" `Slow
            test_registry_metrics;
          Alcotest.test_case "operator profiles agree interp vs jit" `Slow
            test_operator_profiles_agree;
          Alcotest.test_case "writer-heavy variant" `Slow
            test_si_invariants_writer_heavy;
          Alcotest.test_case "compiled-parallel variant" `Slow
            test_si_invariants_compiled_parallel;
          Alcotest.test_case "adaptive variant" `Slow
            test_si_invariants_adaptive;
        ] );
      ( "json",
        [
          Alcotest.test_case "roundtrip + validate" `Slow
            test_json_roundtrip_and_validate;
          Alcotest.test_case "parser basics" `Quick test_json_parser_basics;
          Alcotest.test_case "validate rejects bad docs" `Quick
            test_validate_rejects_bad_doc;
        ] );
    ]
