(* Tests for the persistent-memory substrate: pool semantics (working vs
   durable image, flush granularity, crash injection), allocator, undo-log
   transactions and persistent pointers. *)

module Media = Pmem.Media
module Pool = Pmem.Pool
module Alloc = Pmem.Alloc
module Pptr = Pmem.Pptr
module Pmdk_tx = Pmem.Pmdk_tx

let mk_pool ?(kind = `Pmem) ?(size = 1 lsl 21) () =
  let media = Media.create () in
  Pool.create ~kind ~media ~id:1 ~size ()

let mk_formatted ?kind ?size () =
  let p = mk_pool ?kind ?size () in
  Alloc.format p;
  p

(* --- Pool ------------------------------------------------------------- *)

let test_rw_roundtrip () =
  let p = mk_pool () in
  Pool.write_i64 p 128 0x1122334455667788L;
  Alcotest.(check int64) "i64" 0x1122334455667788L (Pool.read_i64 p 128);
  Pool.write_u32 p 200 0xDEADBEEF;
  Alcotest.(check int) "u32" 0xDEADBEEF (Pool.read_u32 p 200);
  Pool.write_u8 p 300 255;
  Alcotest.(check int) "u8" 255 (Pool.read_u8 p 300);
  Pool.write_string p 400 "hello pmem";
  Alcotest.(check string) "str" "hello pmem" (Pool.read_string p 400 10)

let test_unflushed_lost_on_crash () =
  let p = mk_pool () in
  Pool.write_i64 p 0 42L;
  Pool.persist p ~off:0 ~len:8;
  Pool.write_i64 p 64 99L;
  (* not flushed *)
  Pool.crash p;
  Alcotest.(check int64) "flushed survives" 42L (Pool.read_i64 p 0);
  Alcotest.(check int64) "unflushed lost" 0L (Pool.read_i64 p 64)

let test_flush_is_line_granular () =
  let p = mk_pool () in
  (* two stores on the same line; flushing one offset persists the line *)
  Pool.write_i64 p 512 1L;
  Pool.write_i64 p 520 2L;
  Pool.clwb p 516;
  Pool.sfence p;
  Pool.crash p;
  Alcotest.(check int64) "first" 1L (Pool.read_i64 p 512);
  Alcotest.(check int64) "second" 2L (Pool.read_i64 p 520)

let test_atomic_write_alignment () =
  let p = mk_pool () in
  Alcotest.check_raises "unaligned rejected"
    (Invalid_argument "Pool.atomic_write_i64: unaligned") (fun () ->
      Pool.atomic_write_i64 p 12 1L)

let test_dirty_count_and_crash_reset () =
  let p = mk_pool () in
  Alcotest.(check int) "clean" 0 (Pool.dirty_line_count p);
  Pool.write_i64 p 0 1L;
  Pool.write_i64 p 4096 1L;
  Alcotest.(check int) "two dirty" 2 (Pool.dirty_line_count p);
  Pool.crash p;
  Alcotest.(check int) "clean after crash" 0 (Pool.dirty_line_count p)

let test_out_of_bounds () =
  let p = mk_pool ~size:4096 () in
  (match Pool.read_i64 p 4095 with
  | _ -> Alcotest.fail "expected Out_of_bounds"
  | exception Pool.Out_of_bounds _ -> ());
  match Pool.write_i64 p (-8) 0L with
  | () -> Alcotest.fail "expected Out_of_bounds"
  | exception Pool.Out_of_bounds _ -> ()

let test_dram_pool_flush_free () =
  let media = Media.create () in
  let p = Pool.create ~kind:`Dram ~media ~id:7 ~size:4096 () in
  Pool.write_i64 p 0 5L;
  Pool.persist p ~off:0 ~len:8;
  let s = Media.stats media in
  Alcotest.(check int) "no flushes on dram" 0 s.Media.flushes;
  Alcotest.(check int) "no fences on dram" 0 s.Media.fences

let test_media_charges () =
  let media = Media.create () in
  let p = Pool.create ~kind:`Pmem ~media ~id:2 ~size:4096 () in
  let c0 = Media.clock media in
  Pool.write_i64 p 0 1L;
  Pool.persist p ~off:0 ~len:8;
  let c1 = Media.clock media in
  Alcotest.(check bool) "cost charged" true (c1 > c0);
  let s = Media.stats media in
  Alcotest.(check int) "one flush" 1 s.Media.flushes;
  Alcotest.(check int) "one fence" 1 s.Media.fences

let test_sequential_cheaper_than_random () =
  (* DG3: reading 4 KiB sequentially must be cheaper than the same lines
     in a strided pattern *)
  let media = Media.create () in
  let p = Pool.create ~kind:`Pmem ~media ~id:3 ~size:(1 lsl 20) () in
  Media.reset media;
  for i = 0 to 63 do
    ignore (Pool.read_i64 p (i * 64))
  done;
  let seq = Media.clock media in
  Media.reset media;
  for i = 0 to 63 do
    ignore (Pool.read_i64 p (((i * 37) mod 64) * 8192))
  done;
  let random = Media.clock media in
  Alcotest.(check bool)
    (Printf.sprintf "seq %d < random %d" seq random)
    true (seq < random)

(* --- Allocator --------------------------------------------------------- *)

let test_alloc_basic () =
  let p = mk_formatted () in
  let a = Alloc.alloc p 100 in
  let b = Alloc.alloc p 100 in
  Alcotest.(check bool) "distinct" true (a <> b);
  Alcotest.(check bool) "beyond data base" true (a >= Alloc.data_base);
  Alcotest.(check int) "aligned" 0 (a mod 64)

let test_alloc_reuse () =
  let p = mk_formatted () in
  let a = Alloc.alloc p 128 in
  Alloc.free p ~off:a ~size:128;
  let b = Alloc.alloc p 128 in
  Alcotest.(check int) "freed block reused" a b

let test_alloc_classes_disjoint () =
  let p = mk_formatted () in
  let a = Alloc.alloc p 64 in
  Alloc.free p ~off:a ~size:64;
  let b = Alloc.alloc p 128 in
  Alcotest.(check bool) "different class not reused" true (a <> b)

let test_alloc_oom () =
  let p = mk_formatted ~size:(1 lsl 20) () in
  Alcotest.check_raises "oom"
    (Alloc.Out_of_memory { pool = 1; requested = 1 lsl 19 }) (fun () ->
      for _ = 1 to 10 do
        ignore (Alloc.alloc p (1 lsl 19))
      done)

let test_roots_survive_crash () =
  let p = mk_formatted () in
  Alloc.set_root p 3 123_456;
  Pool.crash p;
  Alcotest.(check int) "root durable" 123_456 (Alloc.get_root p 3)

let test_alloc_no_overlap_qcheck =
  QCheck.Test.make ~name:"alloc blocks never overlap" ~count:50
    QCheck.(list_of_size Gen.(1 -- 40) (QCheck.int_range 1 4096))
    (fun sizes ->
      let p = mk_formatted ~size:(1 lsl 23) () in
      let blocks =
        List.map
          (fun sz ->
            let off = Alloc.alloc p sz in
            (off, Alloc.class_bytes (Alloc.class_of_size sz)))
          sizes
      in
      let sorted = List.sort (fun (a, _) (b, _) -> compare a b) blocks in
      let rec ok = function
        | (o1, s1) :: ((o2, _) :: _ as rest) -> o1 + s1 <= o2 && ok rest
        | _ -> true
      in
      ok sorted)

let test_free_list_survives_crash () =
  let p = mk_formatted () in
  let a = Alloc.alloc p 256 in
  Alloc.free p ~off:a ~size:256;
  Pool.crash p;
  Alcotest.(check int) "free list durable" 1
    (Alloc.free_list_length p (Alloc.class_of_size 256));
  let b = Alloc.alloc p 256 in
  Alcotest.(check int) "reused after crash" a b

(* --- PMDK-style transactions ------------------------------------------ *)

let test_tx_commit_persists () =
  let p = mk_formatted () in
  let off = Alloc.alloc p 64 in
  Pmdk_tx.run p (fun tx ->
      Pmdk_tx.add_range tx ~off ~len:16;
      Pool.write_i64 p off 7L;
      Pool.write_i64 p (off + 8) 8L);
  Pool.crash p;
  Alcotest.(check int64) "first word" 7L (Pool.read_i64 p off);
  Alcotest.(check int64) "second word" 8L (Pool.read_i64 p (off + 8))

let test_tx_crash_rolls_back () =
  let p = mk_formatted () in
  let off = Alloc.alloc p 64 in
  Pool.write_i64 p off 1L;
  Pool.persist p ~off ~len:8;
  let tx = Pmdk_tx.begin_ p in
  Pmdk_tx.add_range tx ~off ~len:8;
  Pool.write_i64 p off 2L;
  (* crash mid-transaction; the store may even have been evicted *)
  Pool.crash ~evict_prob:1.0 p;
  let rolled = Pmdk_tx.recover p in
  Alcotest.(check bool) "log applied" true rolled;
  Alcotest.(check int64) "pre-image restored" 1L (Pool.read_i64 p off)

let test_tx_abort_restores () =
  let p = mk_formatted () in
  let off = Alloc.alloc p 64 in
  Pool.write_i64 p off 10L;
  Pool.persist p ~off ~len:8;
  (try
     Pmdk_tx.run p (fun tx ->
         Pmdk_tx.add_range tx ~off ~len:8;
         Pool.write_i64 p off 20L;
         failwith "boom")
   with Failure _ -> ());
  Alcotest.(check int64) "abort rolled back" 10L (Pool.read_i64 p off)

let test_tx_multi_range_reverse_undo () =
  let p = mk_formatted () in
  let a = Alloc.alloc p 64 and b = Alloc.alloc p 64 in
  Pool.write_i64 p a 1L;
  Pool.write_i64 p b 2L;
  Pool.persist p ~off:a ~len:8;
  Pool.persist p ~off:b ~len:8;
  let tx = Pmdk_tx.begin_ p in
  Pmdk_tx.add_range tx ~off:a ~len:8;
  Pool.write_i64 p a 100L;
  Pmdk_tx.add_range tx ~off:b ~len:8;
  Pool.write_i64 p b 200L;
  Pmdk_tx.abort tx;
  Alcotest.(check int64) "a restored" 1L (Pool.read_i64 p a);
  Alcotest.(check int64) "b restored" 2L (Pool.read_i64 p b)

let test_tx_recover_idempotent () =
  let p = mk_formatted () in
  Alcotest.(check bool) "nothing to recover" false (Pmdk_tx.recover p);
  Alcotest.(check bool) "still nothing" false (Pmdk_tx.recover p)

(* A media fault mangles the durable entry count after the cut: recovery
   must clamp to the entries that actually lie within the log instead of
   letting the bogus word drive reads past it. *)
let test_tx_recover_corrupt_count_word () =
  let p = mk_formatted () in
  let off = Alloc.alloc p 64 in
  Pool.write_i64 p off 1L;
  Pool.persist p ~off ~len:8;
  let tx = Pmdk_tx.begin_ p in
  Pmdk_tx.add_range tx ~off ~len:8;
  Pool.write_i64 p off 2L;
  Pool.crash ~evict_prob:1.0 p;
  Pool.write_int p Pmdk_tx.nentries_off max_int;
  Pool.persist p ~off:Pmdk_tx.nentries_off ~len:8;
  Alcotest.(check bool) "rollback applied" true (Pmdk_tx.recover p);
  (* the one real entry is the valid prefix: its pre-image comes back *)
  Alcotest.(check int64) "pre-image restored" 1L (Pool.read_i64 p off);
  Alcotest.(check int) "log cleared" 0 (Pool.read_int p Pmdk_tx.state_off);
  Alcotest.(check int) "count cleared" 0 (Pool.read_int p Pmdk_tx.nentries_off);
  Alcotest.(check bool) "second recover idle" false (Pmdk_tx.recover p);
  (* the pool stays fully usable *)
  Pmdk_tx.run p (fun tx ->
      Pmdk_tx.add_range tx ~off ~len:8;
      Pool.write_i64 p off 3L);
  Alcotest.(check int64) "next tx commits" 3L (Pool.read_i64 p off)

(* Same, but the corruption hits an entry header rather than the count:
   the malformed entry and everything after it are the torn tail - the
   valid prefix is still undone, nothing out-of-bounds is touched. *)
let test_tx_recover_corrupt_entry_off () =
  let p = mk_formatted () in
  let a = Alloc.alloc p 64 and b = Alloc.alloc p 64 in
  Pool.write_i64 p a 1L;
  Pool.write_i64 p b 2L;
  Pool.persist p ~off:a ~len:8;
  Pool.persist p ~off:b ~len:8;
  let tx = Pmdk_tx.begin_ p in
  Pmdk_tx.add_range tx ~off:a ~len:8;
  Pool.write_i64 p a 100L;
  Pmdk_tx.add_range tx ~off:b ~len:8;
  Pool.write_i64 p b 200L;
  Pool.crash ~evict_prob:1.0 p;
  (* second entry = header(16) + padded 8-byte image after the first *)
  let e2 = Pmdk_tx.entries_off + 16 + 8 in
  Pool.write_int p e2 (Pool.size p);
  Pool.persist p ~off:e2 ~len:8;
  Alcotest.(check bool) "rollback applied" true (Pmdk_tx.recover p);
  Alcotest.(check int64) "valid prefix undone" 1L (Pool.read_i64 p a);
  Alcotest.(check int64) "malformed tail not replayed" 200L (Pool.read_i64 p b);
  Alcotest.(check int) "log cleared" 0 (Pool.read_int p Pmdk_tx.state_off);
  Alcotest.(check bool) "second recover idle" false (Pmdk_tx.recover p)

let test_tx_recover_corrupt_entry_len () =
  let p = mk_formatted () in
  let off = Alloc.alloc p 64 in
  Pool.write_i64 p off 5L;
  Pool.persist p ~off ~len:8;
  let tx = Pmdk_tx.begin_ p in
  Pmdk_tx.add_range tx ~off ~len:8;
  Pool.write_i64 p off 6L;
  Pool.crash ~evict_prob:1.0 p;
  (* absurd length: the entry could never fit the log region *)
  Pool.write_int p (Pmdk_tx.entries_off + 8) (Pool.size p * 4);
  Pool.persist p ~off:(Pmdk_tx.entries_off + 8) ~len:8;
  Alcotest.(check bool) "rollback applied" true (Pmdk_tx.recover p);
  Alcotest.(check int64) "malformed entry not replayed" 6L (Pool.read_i64 p off);
  Alcotest.(check int) "log cleared" 0 (Pool.read_int p Pmdk_tx.state_off);
  Alcotest.(check bool) "second recover idle" false (Pmdk_tx.recover p);
  Pmdk_tx.run p (fun tx ->
      Pmdk_tx.add_range tx ~off ~len:8;
      Pool.write_i64 p off 7L);
  Alcotest.(check int64) "next tx commits" 7L (Pool.read_i64 p off)

(* Regression for the interval dedup: a hot range re-snapshotted many
   times while the log is already near-full.  Without the dedup each
   duplicate [add_range] burns a fresh log entry (~2.4 MB here, an
   instant [Log_full]); with it the duplicates cost nothing. *)
let test_tx_dedup_survives_near_full_log () =
  let p = mk_formatted () in
  let len = 256 * 1024 in
  let r1 = Alloc.alloc p len
  and r2 = Alloc.alloc p len
  and r3 = Alloc.alloc p len in
  Pool.write_i64 p r1 1L;
  Pool.write_i64 p r2 2L;
  Pool.write_i64 p r3 3L;
  Pool.persist p ~off:r1 ~len:8;
  Pool.persist p ~off:r2 ~len:8;
  Pool.persist p ~off:r3 ~len:8;
  Pmdk_tx.run p (fun tx ->
      (* three quarter-MiB snapshots fill ~3/4 of the 1 MiB log *)
      Pmdk_tx.add_range tx ~off:r1 ~len;
      Pmdk_tx.add_range tx ~off:r2 ~len;
      Pmdk_tx.add_range tx ~off:r3 ~len;
      (* a hot 8-byte counter re-snapshotted 100k times *)
      for _ = 1 to 100_000 do
        Pmdk_tx.add_range tx ~off:r1 ~len:8
      done;
      (* overlap straddling a covered range's end: only the uncovered
         8-byte tail may stage *)
      Pmdk_tx.add_range tx ~off:(r1 + len - 8) ~len:16;
      Pool.write_i64 p r1 42L;
      Pool.write_i64 p r3 43L);
  Alcotest.(check int64) "committed" 42L (Pool.read_i64 p r1);
  Alcotest.(check int64) "committed tail" 43L (Pool.read_i64 p r3)

(* The dedup must also keep the FIRST pre-image: re-snapshotting a range
   already covered this transaction would capture dirty bytes as the
   "pre-image" and roll back to the wrong value. *)
let test_tx_duplicate_range_keeps_first_preimage () =
  let p = mk_formatted () in
  let off = Alloc.alloc p 64 in
  Pool.write_i64 p off 7L;
  Pool.persist p ~off ~len:8;
  (try
     Pmdk_tx.run p (fun tx ->
         Pmdk_tx.add_range tx ~off ~len:8;
         Pool.write_i64 p off 8L;
         (* a second snapshot now would capture the dirty 8L *)
         Pmdk_tx.add_range tx ~off ~len:8;
         Pool.write_i64 p off 9L;
         failwith "boom")
   with Failure _ -> ());
  Alcotest.(check int64) "first pre-image restored" 7L (Pool.read_i64 p off)

let test_tx_crash_qcheck =
  (* property: for a random set of committed and one interrupted tx, after
     crash+recover every committed write is durable and the interrupted
     one is fully rolled back, regardless of eviction randomness *)
  QCheck.Test.make ~name:"pmdk_tx crash atomicity" ~count:30
    QCheck.(pair (int_range 1 8) (int_range 0 100))
    (fun (ntx, seed) ->
      let p = mk_formatted () in
      let cell i = Alloc.data_base + 65536 + (i * 64) in
      for i = 0 to ntx - 1 do
        Pmdk_tx.run p (fun tx ->
            Pmdk_tx.add_range tx ~off:(cell i) ~len:8;
            Pool.write_i64 p (cell i) (Int64.of_int (i + 1)))
      done;
      let tx = Pmdk_tx.begin_ p in
      for i = 0 to ntx - 1 do
        Pmdk_tx.add_range tx ~off:(cell i) ~len:8;
        Pool.write_i64 p (cell i) 9999L
      done;
      Pool.crash ~evict_prob:0.5 ~rng:(Random.State.make [| seed |]) p;
      ignore (Pmdk_tx.recover p);
      let ok = ref true in
      for i = 0 to ntx - 1 do
        if Pool.read_i64 p (cell i) <> Int64.of_int (i + 1) then ok := false
      done;
      !ok)

(* --- Persistent pointers ----------------------------------------------- *)

let test_pptr_roundtrip () =
  let p = mk_formatted () in
  let reg = Pptr.registry_create () in
  Pptr.register reg p;
  let ptr = Pptr.v ~pool:(Pool.id p) ~off:4096 in
  Pptr.store p ~at:Alloc.data_base ptr;
  let ptr' = Pptr.load p ~at:Alloc.data_base in
  Alcotest.(check bool) "roundtrip" true (Pptr.equal ptr ptr');
  let pool, off = Pptr.deref reg ptr' in
  Alcotest.(check int) "pool" (Pool.id p) (Pool.id pool);
  Alcotest.(check int) "off" 4096 off

let test_pptr_dangling () =
  let reg = Pptr.registry_create () in
  let ptr = Pptr.v ~pool:99 ~off:0 in
  match Pptr.deref reg ptr with
  | _ -> Alcotest.fail "expected Dangling"
  | exception Pptr.Dangling _ -> ()

let test_pptr_null () =
  Alcotest.(check bool) "null is null" true (Pptr.is_null Pptr.null);
  Alcotest.(check bool) "valid not null" false
    (Pptr.is_null (Pptr.v ~pool:0 ~off:0))

let test_pptr_deref_charged () =
  let p = mk_formatted () in
  let media = Pool.media p in
  let reg = Pptr.registry_create () in
  Pptr.register reg p;
  let before = (Media.stats media).Media.derefs in
  ignore (Pptr.deref reg (Pptr.v ~pool:(Pool.id p) ~off:0));
  Alcotest.(check int) "deref counted" (before + 1)
    (Media.stats media).Media.derefs

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~long:false) tests

let () =
  Alcotest.run "pmem"
    [
      ( "pool",
        [
          Alcotest.test_case "rw roundtrip" `Quick test_rw_roundtrip;
          Alcotest.test_case "unflushed lost on crash" `Quick
            test_unflushed_lost_on_crash;
          Alcotest.test_case "flush is line granular" `Quick
            test_flush_is_line_granular;
          Alcotest.test_case "atomic write alignment" `Quick
            test_atomic_write_alignment;
          Alcotest.test_case "dirty count and crash reset" `Quick
            test_dirty_count_and_crash_reset;
          Alcotest.test_case "out of bounds" `Quick test_out_of_bounds;
          Alcotest.test_case "dram pool flush free" `Quick
            test_dram_pool_flush_free;
          Alcotest.test_case "media charges" `Quick test_media_charges;
          Alcotest.test_case "sequential cheaper than random" `Quick
            test_sequential_cheaper_than_random;
        ] );
      ( "alloc",
        [
          Alcotest.test_case "basic" `Quick test_alloc_basic;
          Alcotest.test_case "reuse" `Quick test_alloc_reuse;
          Alcotest.test_case "classes disjoint" `Quick
            test_alloc_classes_disjoint;
          Alcotest.test_case "oom" `Quick test_alloc_oom;
          Alcotest.test_case "roots survive crash" `Quick
            test_roots_survive_crash;
          Alcotest.test_case "free list survives crash" `Quick
            test_free_list_survives_crash;
        ]
        @ qsuite [ test_alloc_no_overlap_qcheck ] );
      ( "pmdk_tx",
        [
          Alcotest.test_case "commit persists" `Quick test_tx_commit_persists;
          Alcotest.test_case "crash rolls back" `Quick test_tx_crash_rolls_back;
          Alcotest.test_case "abort restores" `Quick test_tx_abort_restores;
          Alcotest.test_case "multi range reverse undo" `Quick
            test_tx_multi_range_reverse_undo;
          Alcotest.test_case "recover corrupt count word" `Quick
            test_tx_recover_corrupt_count_word;
          Alcotest.test_case "recover corrupt entry off" `Quick
            test_tx_recover_corrupt_entry_off;
          Alcotest.test_case "recover corrupt entry len" `Quick
            test_tx_recover_corrupt_entry_len;
          Alcotest.test_case "dedup survives near-full log" `Quick
            test_tx_dedup_survives_near_full_log;
          Alcotest.test_case "duplicate range keeps first pre-image" `Quick
            test_tx_duplicate_range_keeps_first_preimage;
          Alcotest.test_case "recover idempotent" `Quick
            test_tx_recover_idempotent;
        ]
        @ qsuite [ test_tx_crash_qcheck ] );
      ( "pptr",
        [
          Alcotest.test_case "roundtrip" `Quick test_pptr_roundtrip;
          Alcotest.test_case "dangling" `Quick test_pptr_dangling;
          Alcotest.test_case "null" `Quick test_pptr_null;
          Alcotest.test_case "deref charged" `Quick test_pptr_deref_charged;
        ] );
    ]
